package mpros

// One benchmark per DESIGN.md experiment (E1–E12) plus system-level
// benchmarks of the assembled station and fleet. Each experiment benchmark
// regenerates the corresponding table; run
//
//	go test -bench=. -benchmem
//
// at the repository root, or use cmd/mprosbench for the printed tables.

import (
	"testing"
	"time"

	"repro/internal/chiller"
	"repro/internal/experiments"
)

func benchExperiment(b *testing.B, id string) {
	run, ok := experiments.Registry()[id]
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := run(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkE1DempsterWorkedExample regenerates the §5.3 worked numbers
// (A 14%, B∨C 64%, unknown 22%).
func BenchmarkE1DempsterWorkedExample(b *testing.B) { benchExperiment(b, "E1") }

// BenchmarkE2PrognosticFusion regenerates both §5.4 fusion examples.
func BenchmarkE2PrognosticFusion(b *testing.B) { benchExperiment(b, "E2") }

// BenchmarkE3StictionDetect regenerates the Figure 3 detection table.
func BenchmarkE3StictionDetect(b *testing.B) { benchExperiment(b, "E3") }

// BenchmarkE4SBFRFootprintAndCycle regenerates the §6.3 footprint/cycle
// bounds (100 machines < 32 KB, cycle < 4 ms).
func BenchmarkE4SBFRFootprintAndCycle(b *testing.B) { benchExperiment(b, "E4") }

// BenchmarkE5ExpertAgreement regenerates the §6.1 agreement study.
func BenchmarkE5ExpertAgreement(b *testing.B) { benchExperiment(b, "E5") }

// BenchmarkE6SeverityMapping regenerates the severity→grade→horizon table.
func BenchmarkE6SeverityMapping(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkE7IngestThroughput regenerates the acquisition-path throughput
// table against the 4×40 kHz hardware requirement.
func BenchmarkE7IngestThroughput(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkE8GroupAblation regenerates the logical-groups-vs-naive-DS
// ablation.
func BenchmarkE8GroupAblation(b *testing.B) { benchExperiment(b, "E8") }

// BenchmarkE9DSvsBayes regenerates the DS-vs-Bayes accuracy sweep over
// historical-data availability.
func BenchmarkE9DSvsBayes(b *testing.B) { benchExperiment(b, "E9") }

// BenchmarkE10Figure2Browser regenerates the Figure 2 browser state.
func BenchmarkE10Figure2Browser(b *testing.B) { benchExperiment(b, "E10") }

// BenchmarkE11EventLatency regenerates the §4.5 event-model measurement.
func BenchmarkE11EventLatency(b *testing.B) { benchExperiment(b, "E11") }

// BenchmarkE12HazardRefinement regenerates the §10.1 survival-refinement
// comparison.
func BenchmarkE12HazardRefinement(b *testing.B) { benchExperiment(b, "E12") }

// BenchmarkE13HistorianIngest regenerates the historian ingest-throughput
// and query-latency table (≥1M samples/s; 24h@1Hz rollup query <5ms).
func BenchmarkE13HistorianIngest(b *testing.B) { benchExperiment(b, "E13") }

// BenchmarkStationDay runs a faulty station through one virtual day of
// scheduled monitoring (vibration tests + process scans + fusion).
func BenchmarkStationDay(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		station, err := NewStation(StationConfig{Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if err := station.InjectFault(chiller.MotorImbalance, 0.7); err != nil {
			b.Fatal(err)
		}
		if err := station.Advance(24 * time.Hour); err != nil {
			b.Fatal(err)
		}
		if err := station.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetHour runs a 4-DC fleet through one virtual hour over real
// TCP connections.
func BenchmarkFleetHour(b *testing.B) {
	fleet, err := NewFleet(FleetConfig{DCCount: 4, SeedBase: 500})
	if err != nil {
		b.Fatal(err)
	}
	defer fleet.Close()
	for i, st := range fleet.Stations {
		if err := st.Plant.SetFault(chiller.Fault(i%chiller.NumFaults), 0.6); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fleet.Advance(time.Hour); err != nil {
			b.Fatal(err)
		}
	}
	if fleet.PDME.ReceivedReports() == 0 {
		b.Fatal("no reports crossed the network")
	}
	b.ReportMetric(float64(fleet.PDME.ReceivedReports())/float64(b.N), "reports/hour")
}

// BenchmarkPrioritizedList measures list assembly over a populated PDME.
func BenchmarkPrioritizedList(b *testing.B) {
	station, err := NewStation(StationConfig{Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	defer station.Close()
	for _, f := range []chiller.Fault{chiller.MotorImbalance, chiller.GearToothWear, chiller.OilWhirl} {
		if err := station.InjectFault(f, 0.7); err != nil {
			b.Fatal(err)
		}
	}
	if err := station.Advance(24 * time.Hour); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if items := station.PrioritizedList(); len(items) == 0 {
			b.Fatal("empty list")
		}
	}
}

// Example-style smoke check so `go test` exercises the rendered tables.
func TestRenderAllExperimentTables(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep is slow")
	}
	for _, id := range experiments.IDs() {
		res, err := experiments.Registry()[id](1)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		out := res.Render()
		if len(out) == 0 {
			t.Fatalf("%s: empty render", id)
		}
	}
}
