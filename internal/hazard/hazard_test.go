package hazard

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// weibullSample draws n lifetimes from a Weibull(k, λ).
func weibullSample(rng *rand.Rand, k, lambda float64, n int) []Observation {
	out := make([]Observation, n)
	for i := range out {
		u := rng.Float64()
		out[i] = Observation{Time: lambda * math.Pow(-math.Log(1-u), 1/k)}
	}
	return out
}

func TestWeibullDistribution(t *testing.T) {
	w := Weibull{Shape: 2, Scale: 100}
	if w.CDF(0) != 0 || w.CDF(-5) != 0 {
		t.Error("CDF at origin")
	}
	// CDF(λ) = 1 - 1/e.
	if math.Abs(w.CDF(100)-(1-1/math.E)) > 1e-12 {
		t.Errorf("CDF(scale) = %g", w.CDF(100))
	}
	// Quantile inverts CDF.
	for _, p := range []float64{0.1, 0.5, 0.9} {
		q := w.Quantile(p)
		if math.Abs(w.CDF(q)-p) > 1e-9 {
			t.Errorf("CDF(Quantile(%g)) = %g", p, w.CDF(q))
		}
	}
	if w.Quantile(0) != 0 || !math.IsInf(w.Quantile(1), 1) {
		t.Error("quantile extremes")
	}
	// Weibull mean for k=2: λ·Γ(1.5) = λ·√π/2.
	want := 100 * math.Sqrt(math.Pi) / 2
	if math.Abs(w.Mean()-want) > 1e-9 {
		t.Errorf("mean %g, want %g", w.Mean(), want)
	}
	// Increasing hazard for k>1, decreasing for k<1.
	if w.Hazard(50) >= w.Hazard(150) {
		t.Error("k=2 hazard should increase")
	}
	infant := Weibull{Shape: 0.5, Scale: 100}
	if infant.Hazard(50) <= infant.Hazard(150) {
		t.Error("k=0.5 hazard should decrease")
	}
}

func TestFitWeibullRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, tc := range []struct{ k, lambda float64 }{
		{1.5, 500}, {3, 1000}, {0.8, 200},
	} {
		obs := weibullSample(rng, tc.k, tc.lambda, 2000)
		w, err := FitWeibull(obs)
		if err != nil {
			t.Fatalf("k=%g: %v", tc.k, err)
		}
		if math.Abs(w.Shape-tc.k)/tc.k > 0.15 {
			t.Errorf("k=%g: fitted shape %g", tc.k, w.Shape)
		}
		if math.Abs(w.Scale-tc.lambda)/tc.lambda > 0.15 {
			t.Errorf("λ=%g: fitted scale %g", tc.lambda, w.Scale)
		}
	}
}

func TestFitWeibullWithCensoring(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	obs := weibullSample(rng, 2, 1000, 400)
	// Right-censor at 1200: units alive at study end.
	for i := range obs {
		if obs[i].Time > 1200 {
			obs[i] = Observation{Time: 1200, Censored: true}
		}
	}
	w, err := FitWeibull(obs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w.Shape-2)/2 > 0.2 {
		t.Errorf("censored fit shape %g, want ≈2", w.Shape)
	}
	if math.Abs(w.Scale-1000)/1000 > 0.2 {
		t.Errorf("censored fit scale %g, want ≈1000", w.Scale)
	}
}

func TestFitWeibullValidation(t *testing.T) {
	if _, err := FitWeibull(nil); err == nil {
		t.Error("empty sample")
	}
	if _, err := FitWeibull([]Observation{{Time: 1}, {Time: 2}}); err == nil {
		t.Error("too few failures")
	}
	if _, err := FitWeibull([]Observation{{Time: -1}, {Time: 2}, {Time: 3}}); err == nil {
		t.Error("negative time")
	}
	if _, err := FitWeibull([]Observation{
		{Time: 1, Censored: true}, {Time: 2, Censored: true},
		{Time: 3, Censored: true}, {Time: 4},
	}); err == nil {
		t.Error("fewer than 3 failures")
	}
	// Degenerate: all identical times still fits (k large) or errors
	// cleanly — must not panic or return NaN.
	w, err := FitWeibull([]Observation{{Time: 5}, {Time: 5}, {Time: 5}})
	if err == nil {
		if math.IsNaN(w.Shape) || math.IsNaN(w.Scale) {
			t.Error("NaN fit")
		}
	}
}

func TestKaplanMeier(t *testing.T) {
	// Classic hand-worked example: failures at 1,2,4; censored at 3.
	obs := []Observation{
		{Time: 1}, {Time: 2}, {Time: 3, Censored: true}, {Time: 4}, {Time: 5, Censored: true},
	}
	km, err := KaplanMeier(obs)
	if err != nil {
		t.Fatal(err)
	}
	if len(km) != 3 {
		t.Fatalf("%d points", len(km))
	}
	// S(1) = 4/5; S(2) = 4/5 * 3/4 = 3/5; S(4) = 3/5 * 1/2 = 3/10.
	want := []float64{0.8, 0.6, 0.3}
	for i, p := range km {
		if math.Abs(p.Survival-want[i]) > 1e-12 {
			t.Errorf("point %d survival %g, want %g", i, p.Survival, want[i])
		}
	}
	if km[0].AtRisk != 5 || km[1].AtRisk != 4 || km[2].AtRisk != 2 {
		t.Errorf("at-risk counts wrong: %+v", km)
	}
	// Step evaluation.
	if SurvivalAt(km, 0.5) != 1 {
		t.Error("S before first failure")
	}
	if math.Abs(SurvivalAt(km, 2.5)-0.6) > 1e-12 {
		t.Error("S mid")
	}
	if math.Abs(SurvivalAt(km, 100)-0.3) > 1e-12 {
		t.Error("S after last")
	}
	// Validation.
	if _, err := KaplanMeier(nil); err == nil {
		t.Error("empty")
	}
	if _, err := KaplanMeier([]Observation{{Time: -1}}); err == nil {
		t.Error("bad time")
	}
	if _, err := KaplanMeier([]Observation{{Time: 1, Censored: true}}); err == nil {
		t.Error("no failures")
	}
}

func TestKaplanMeierMatchesWeibull(t *testing.T) {
	// On a large uncensored Weibull sample, KM should track the true
	// survival function.
	rng := rand.New(rand.NewSource(8))
	w := Weibull{Shape: 2, Scale: 100}
	obs := weibullSample(rng, w.Shape, w.Scale, 2000)
	km, err := KaplanMeier(obs)
	if err != nil {
		t.Fatal(err)
	}
	for _, tq := range []float64{50, 100, 150} {
		got := SurvivalAt(km, tq)
		want := 1 - w.CDF(tq)
		if math.Abs(got-want) > 0.03 {
			t.Errorf("S(%g) = %g, true %g", tq, got, want)
		}
	}
}

func TestKaplanMeierMonotoneProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(100)
		obs := make([]Observation, n)
		hasFailure := false
		for i := range obs {
			obs[i] = Observation{Time: rng.Float64()*100 + 0.1, Censored: rng.Intn(3) == 0}
			if !obs[i].Censored {
				hasFailure = true
			}
		}
		km, err := KaplanMeier(obs)
		if err != nil {
			return !hasFailure
		}
		prev := 1.0
		for _, p := range km {
			if p.Survival > prev+1e-12 || p.Survival < 0 {
				return false
			}
			prev = p.Survival
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRefinePrognostic(t *testing.T) {
	w := Weibull{Shape: 3, Scale: 1000}
	horizons := []float64{100, 300, 600, 1000}
	v, err := RefinePrognostic(w, 500, horizons)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(v) != 4 {
		t.Fatalf("%d points", len(v))
	}
	// Conditioning raises failure probability versus a new unit: an aged
	// wear-out unit fails sooner.
	fresh, err := RefinePrognostic(w, 0, horizons)
	if err != nil {
		t.Fatal(err)
	}
	for i := range v {
		if v[i].Probability <= fresh[i].Probability {
			t.Errorf("horizon %g: aged %g should exceed fresh %g",
				horizons[i], v[i].Probability, fresh[i].Probability)
		}
	}
	// Validation.
	if _, err := RefinePrognostic(w, -1, horizons); err == nil {
		t.Error("negative age")
	}
	if _, err := RefinePrognostic(w, 0, nil); err == nil {
		t.Error("no horizons")
	}
	if _, err := RefinePrognostic(w, 0, []float64{100, 50}); err == nil {
		t.Error("non-increasing horizons")
	}
	if _, err := RefinePrognostic(w, 0, []float64{-5}); err == nil {
		t.Error("negative horizon")
	}
	if _, err := RefinePrognostic(w, 1e9, horizons); err == nil {
		t.Error("age past all support")
	}
}

func BenchmarkFitWeibull500(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	obs := weibullSample(rng, 2, 1000, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitWeibull(obs); err != nil {
			b.Fatal(err)
		}
	}
}
