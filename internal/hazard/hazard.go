// Package hazard implements the survival-analysis extension of §10.1:
// "Prognostic knowledge fusion could be improved with the addition of
// techniques from the analysis of hazard and survival data. These
// approaches scrutinize history data to refine the estimates of life-cycle
// performance for failures."
//
// It provides Weibull maximum-likelihood fitting over (possibly censored)
// failure histories, the Kaplan-Meier product-limit estimator, and a
// refinement step that converts a fitted life distribution into a §7.3
// prognostic vector — the "next generation software [that] will use more
// complex failure analysis using historical data" promised in §1.
package hazard

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/proto"
)

// Observation is one unit's lifetime record: time on test and whether the
// unit failed at that time (Censored=false) or was still running when
// observation stopped (Censored=true).
type Observation struct {
	Time     float64
	Censored bool
}

// Weibull is a two-parameter Weibull life distribution.
type Weibull struct {
	// Shape is k (k>1: wear-out, k==1: exponential, k<1: infant mortality).
	Shape float64
	// Scale is λ, the characteristic life (63.2% failed).
	Scale float64
}

// CDF returns the failure probability by time t.
func (w Weibull) CDF(t float64) float64 {
	if t <= 0 {
		return 0
	}
	return 1 - math.Exp(-math.Pow(t/w.Scale, w.Shape))
}

// Hazard returns the instantaneous hazard rate at time t.
func (w Weibull) Hazard(t float64) float64 {
	if t <= 0 {
		return 0
	}
	return w.Shape / w.Scale * math.Pow(t/w.Scale, w.Shape-1)
}

// Quantile returns the time by which fraction p of units fail.
func (w Weibull) Quantile(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	return w.Scale * math.Pow(-math.Log(1-p), 1/w.Shape)
}

// Mean returns the expected lifetime λ·Γ(1+1/k).
func (w Weibull) Mean() float64 {
	g, _ := math.Lgamma(1 + 1/w.Shape)
	return w.Scale * math.Exp(g)
}

// FitWeibull computes the maximum-likelihood Weibull fit for a censored
// sample by solving the profile-likelihood shape equation with bisection.
// It requires at least three uncensored failures.
func FitWeibull(obs []Observation) (Weibull, error) {
	var failures int
	for _, o := range obs {
		if o.Time <= 0 || math.IsNaN(o.Time) || math.IsInf(o.Time, 0) {
			return Weibull{}, fmt.Errorf("hazard: non-positive or invalid time %g", o.Time)
		}
		if !o.Censored {
			failures++
		}
	}
	if failures < 3 {
		return Weibull{}, fmt.Errorf("hazard: need at least 3 uncensored failures, have %d", failures)
	}
	// Profile likelihood: g(k) = Σt_i^k ln t_i / Σt_i^k − 1/k − (1/r)Σ_f ln t_f = 0,
	// where sums over i run over all observations and f over failures only.
	var sumLnFail float64
	for _, o := range obs {
		if !o.Censored {
			sumLnFail += math.Log(o.Time)
		}
	}
	meanLnFail := sumLnFail / float64(failures)
	g := func(k float64) float64 {
		var num, den float64
		for _, o := range obs {
			tk := math.Pow(o.Time, k)
			num += tk * math.Log(o.Time)
			den += tk
		}
		return num/den - 1/k - meanLnFail
	}
	// Bracket the root: g is increasing in k; search [1e-3, 100].
	lo, hi := 1e-3, 100.0
	glo, ghi := g(lo), g(hi)
	if glo > 0 || ghi < 0 {
		return Weibull{}, fmt.Errorf("hazard: cannot bracket Weibull shape (degenerate sample)")
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if g(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	k := (lo + hi) / 2
	var sumTk float64
	for _, o := range obs {
		sumTk += math.Pow(o.Time, k)
	}
	scale := math.Pow(sumTk/float64(failures), 1/k)
	return Weibull{Shape: k, Scale: scale}, nil
}

// KaplanMeierPoint is one step of the product-limit survival estimate.
type KaplanMeierPoint struct {
	// Time of a distinct failure.
	Time float64
	// Survival is S(t) just after this failure time.
	Survival float64
	// AtRisk is the number of units at risk just before this time.
	AtRisk int
	// Failures at this time.
	Failures int
}

// KaplanMeier computes the product-limit survival estimator over a censored
// sample, one point per distinct failure time.
func KaplanMeier(obs []Observation) ([]KaplanMeierPoint, error) {
	if len(obs) == 0 {
		return nil, fmt.Errorf("hazard: empty sample")
	}
	sorted := append([]Observation(nil), obs...)
	for _, o := range sorted {
		if o.Time <= 0 || math.IsNaN(o.Time) {
			return nil, fmt.Errorf("hazard: non-positive or invalid time %g", o.Time)
		}
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Time < sorted[j].Time })
	var out []KaplanMeierPoint
	surv := 1.0
	atRisk := len(sorted)
	i := 0
	for i < len(sorted) {
		t := sorted[i].Time
		failures, censored := 0, 0
		//lint:allow floateq Kaplan-Meier ties are defined by identical recorded times, copied not computed
		for i < len(sorted) && sorted[i].Time == t {
			if sorted[i].Censored {
				censored++
			} else {
				failures++
			}
			i++
		}
		if failures > 0 {
			surv *= 1 - float64(failures)/float64(atRisk)
			out = append(out, KaplanMeierPoint{Time: t, Survival: surv, AtRisk: atRisk, Failures: failures})
		}
		atRisk -= failures + censored
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("hazard: sample contains no failures")
	}
	return out, nil
}

// SurvivalAt evaluates a Kaplan-Meier curve at time t (step function).
func SurvivalAt(km []KaplanMeierPoint, t float64) float64 {
	s := 1.0
	for _, p := range km {
		if p.Time > t {
			break
		}
		s = p.Survival
	}
	return s
}

// RefinePrognostic converts a fitted life distribution into a §7.3
// prognostic vector conditioned on the unit having survived `age` so far:
// P(fail by age+h | alive at age). Horizons are expressed in the same unit
// as the fit (this package is unit-agnostic; callers pass seconds or
// hours consistently). The §10.1 promise: "these refined inputs to the
// prognostic analysis would yield better projections of future failures."
func RefinePrognostic(w Weibull, age float64, horizons []float64) (proto.PrognosticVector, error) {
	if age < 0 {
		return nil, fmt.Errorf("hazard: negative age")
	}
	if len(horizons) == 0 {
		return nil, fmt.Errorf("hazard: no horizons")
	}
	sAge := 1 - w.CDF(age)
	if sAge <= 0 {
		return nil, fmt.Errorf("hazard: unit already past characteristic life support")
	}
	out := make(proto.PrognosticVector, 0, len(horizons))
	prev := 0.0
	for i, h := range horizons {
		if h <= 0 || (i > 0 && h <= horizons[i-1]) {
			return nil, fmt.Errorf("hazard: horizons must be positive and strictly increasing")
		}
		p := (w.CDF(age+h) - w.CDF(age)) / sAge
		if p < prev {
			p = prev
		}
		if p > 1 {
			p = 1
		}
		out = append(out, proto.PrognosticPoint{Probability: p, HorizonSeconds: h})
		prev = p
	}
	return out, nil
}
