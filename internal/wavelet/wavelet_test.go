package wavelet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	if Haar.String() != "haar" || Daubechies4.String() != "daubechies4" || Kind(9).String() != "unknown" {
		t.Error("bad names")
	}
}

func TestHaarTransformKnownValues(t *testing.T) {
	// Haar of [1 1 2 2]: approx = [sqrt2, 2*sqrt2], detail = [0, 0].
	a, d, err := Transform(Haar, []float64{1, 1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a[0]-math.Sqrt2) > 1e-12 || math.Abs(a[1]-2*math.Sqrt2) > 1e-12 {
		t.Errorf("approx %v", a)
	}
	if math.Abs(d[0]) > 1e-12 || math.Abs(d[1]) > 1e-12 {
		t.Errorf("detail %v", d)
	}
}

func TestTransformErrors(t *testing.T) {
	if _, _, err := Transform(Haar, []float64{1, 2, 3}); err == nil {
		t.Error("odd length should error")
	}
	if _, _, err := Transform(Daubechies4, []float64{1, 2}); err == nil {
		t.Error("too-short frame should error")
	}
	if _, _, err := Transform(Kind(42), make([]float64, 8)); err == nil {
		t.Error("unknown kind should error")
	}
	if _, err := Inverse(Haar, []float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Decompose(Kind(42), make([]float64, 8), 2); err == nil {
		t.Error("unknown kind in Decompose should error")
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Property: Inverse(Transform(x)) == x for both wavelet families.
	f := func(seed int64, useDb4 bool, sizeSel uint8) bool {
		n := 8 << (uint(sizeSel) % 6) // 8..256
		k := Haar
		if useDb4 {
			k = Daubechies4
		}
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 10
		}
		a, d, err := Transform(k, x)
		if err != nil {
			return false
		}
		y, err := Inverse(k, a, d)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(x[i]-y[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEnergyPreservationProperty(t *testing.T) {
	// Property: orthonormal DWT preserves energy: |x|^2 == |a|^2 + |d|^2.
	f := func(seed int64, useDb4 bool) bool {
		k := Haar
		if useDb4 {
			k = Daubechies4
		}
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, 128)
		var ex float64
		for i := range x {
			x[i] = rng.NormFloat64()
			ex += x[i] * x[i]
		}
		a, d, err := Transform(k, x)
		if err != nil {
			return false
		}
		var et float64
		for _, v := range a {
			et += v * v
		}
		for _, v := range d {
			et += v * v
		}
		return math.Abs(ex-et) < 1e-9*math.Max(1, ex)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDecomposeReconstructMultiLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := make([]float64, 256)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for _, k := range []Kind{Haar, Daubechies4} {
		for _, levels := range []int{1, 3, 5} {
			d, err := Decompose(k, x, levels)
			if err != nil {
				t.Fatalf("%v/%d: %v", k, levels, err)
			}
			if d.Levels() != levels {
				t.Fatalf("%v: got %d levels, want %d", k, d.Levels(), levels)
			}
			y, err := d.Reconstruct()
			if err != nil {
				t.Fatal(err)
			}
			for i := range x {
				if math.Abs(x[i]-y[i]) > 1e-8 {
					t.Fatalf("%v/%d: reconstruct mismatch at %d: %g vs %g", k, levels, i, x[i], y[i])
				}
			}
		}
	}
}

func TestDecomposeAutoDepth(t *testing.T) {
	x := make([]float64, 64)
	for i := range x {
		x[i] = float64(i)
	}
	d, err := Decompose(Haar, x, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Levels() < 5 {
		t.Errorf("auto depth only %d levels for 64 samples", d.Levels())
	}
	if _, err := Decompose(Haar, []float64{1}, 0); err == nil {
		t.Error("length-1 frame should error")
	}
}

func TestEnergyMapLocalization(t *testing.T) {
	// A high-frequency alternating signal concentrates in the finest detail
	// band; a slow ramp concentrates in the approximation band.
	n := 128
	alt := make([]float64, n)
	ramp := make([]float64, n)
	for i := range alt {
		if i%2 == 0 {
			alt[i] = 1
		} else {
			alt[i] = -1
		}
		ramp[i] = float64(i)
	}
	dAlt, err := Decompose(Haar, alt, 4)
	if err != nil {
		t.Fatal(err)
	}
	mAlt := dAlt.EnergyMap()
	if mAlt[0] < 0.95 {
		t.Errorf("alternating signal finest-band energy %g, want >0.95 (map %v)", mAlt[0], mAlt)
	}
	dRamp, err := Decompose(Haar, ramp, 4)
	if err != nil {
		t.Fatal(err)
	}
	mRamp := dRamp.EnergyMap()
	if mRamp[len(mRamp)-1] < 0.9 {
		t.Errorf("ramp approx-band energy %g, want >0.9 (map %v)", mRamp[len(mRamp)-1], mRamp)
	}
	// Map sums to 1.
	var sum float64
	for _, v := range mRamp {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("energy map sums to %g", sum)
	}
	// Zero signal: all-zero map, no NaNs.
	dz, err := Decompose(Haar, make([]float64, 32), 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range dz.EnergyMap() {
		if v != 0 {
			t.Errorf("zero-signal map entry %g", v)
		}
	}
}

func TestBandRMS(t *testing.T) {
	x := make([]float64, 64)
	for i := range x {
		x[i] = 1
	}
	d, err := Decompose(Haar, x, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := d.BandRMS()
	if len(r) != 4 {
		t.Fatalf("want 4 bands, got %d", len(r))
	}
	// Constant signal: all detail RMS 0, approx RMS > 0.
	for i := 0; i < 3; i++ {
		if r[i] > 1e-12 {
			t.Errorf("detail band %d RMS %g, want 0", i, r[i])
		}
	}
	if r[3] <= 0 {
		t.Error("approx RMS should be positive")
	}
}

func BenchmarkDecomposeDb4_4096x6(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 4096)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompose(Daubechies4, x, 6); err != nil {
			b.Fatal(err)
		}
	}
}
