package wavelet

import "fmt"

// Workspace is a preallocated multi-level DWT engine for fixed-length
// frames: the allocation-free counterpart of Decompose for the WNN feature
// path, where transitory-phenomenon detection runs on every acquisition
// tick. Filters, per-level coefficient buffers, and the energy-map scratch
// are all sized at construction; Decompose only overwrites them.
//
// The returned *Decomposition aliases the workspace's internal buffers and
// is valid until the next Decompose call.
type Workspace struct {
	kind     Kind
	n        int
	levels   int
	low      []float64
	high     []float64
	approxes [][]float64 // approxes[l] has length n >> (l+1)
	details  [][]float64 // details[l] has length n >> (l+1)
	energy   []float64   // levels+1 bands
	decomp   Decomposition
}

// NewWorkspace sizes a workspace for frames of exactly frameLen samples,
// decomposed levels deep (levels <= 0 selects the maximum usable depth,
// matching Decompose).
func NewWorkspace(k Kind, frameLen, levels int) (*Workspace, error) {
	low, err := k.filters()
	if err != nil {
		return nil, err
	}
	maxLevels := 0
	for n := frameLen; n >= 2*len(low) || (n >= len(low) && n%2 == 0 && maxLevels == 0); n /= 2 {
		if n%2 != 0 {
			break
		}
		maxLevels++
		if n/2 < len(low) {
			break
		}
	}
	if levels <= 0 || levels > maxLevels {
		levels = maxLevels
	}
	if levels == 0 {
		return nil, fmt.Errorf("wavelet: frame of length %d too short for %v", frameLen, k)
	}
	w := &Workspace{
		kind:   k,
		n:      frameLen,
		levels: levels,
		low:    low,
		high:   highPass(low),
		energy: make([]float64, levels+1),
	}
	for l, m := 0, frameLen/2; l < levels; l, m = l+1, m/2 {
		w.approxes = append(w.approxes, make([]float64, m))
		w.details = append(w.details, make([]float64, m))
	}
	w.decomp = Decomposition{
		Kind:    k,
		Details: w.details,
		Approx:  w.approxes[levels-1],
	}
	return w, nil
}

// FrameLen returns the frame length the workspace was sized for.
func (w *Workspace) FrameLen() int { return w.n }

// Levels returns the decomposition depth.
func (w *Workspace) Levels() int { return w.levels }

// Decompose runs the multi-resolution analysis of x into the preallocated
// coefficient buffers. x must be exactly FrameLen samples and is not
// modified. The result aliases internal state and is overwritten by the
// next call.
//
//mpros:hotpath wavelet feature bands on the acquisition tick
func (w *Workspace) Decompose(x []float64) (*Decomposition, error) {
	if len(x) != w.n {
		return nil, fmt.Errorf("wavelet: frame length %d, workspace sized for %d", len(x), w.n)
	}
	src := x
	for l := 0; l < w.levels; l++ {
		transformInto(w.low, w.high, src, w.approxes[l], w.details[l])
		src = w.approxes[l]
	}
	return &w.decomp, nil
}

// EnergyMap computes the relative band-energy vector of the last
// decomposition into the workspace's scratch — the zero-alloc analogue of
// Decomposition.EnergyMap, same ordering and normalization. The result is
// overwritten by the next call.
//
//mpros:hotpath wavelet energy-map classifier features
func (w *Workspace) EnergyMap() []float64 {
	var total float64
	for i, det := range w.details {
		var e float64
		for _, v := range det {
			e += v * v
		}
		w.energy[i] = e
		total += e
	}
	var e float64
	for _, v := range w.decomp.Approx {
		e += v * v
	}
	w.energy[len(w.energy)-1] = e
	total += e
	if total == 0 {
		for i := range w.energy {
			w.energy[i] = 0
		}
		return w.energy
	}
	for i := range w.energy {
		w.energy[i] /= total
	}
	return w.energy
}

// transformInto is one circular-convolution DWT level writing approximation
// and detail coefficients into caller-provided buffers of length len(x)/2.
func transformInto(low, high, x, approx, detail []float64) {
	n := len(x)
	half := n / 2
	for i := 0; i < half; i++ {
		var a, d float64
		for j := 0; j < len(low); j++ {
			v := x[(2*i+j)%n]
			a += low[j] * v
			d += high[j] * v
		}
		approx[i] = a
		detail[i] = d
	}
}
