package wavelet

import (
	"math"
	"testing"
)

func workspaceTestSignal(n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(0.05*float64(i)) + 0.3*math.Cos(0.7*float64(i))
		if i == n/2 {
			x[i] += 4 // a transient for the detail bands to catch
		}
	}
	return x
}

// TestWorkspaceMatchesDecompose checks the preallocated engine against the
// allocating path bit for bit, including the energy map.
func TestWorkspaceMatchesDecompose(t *testing.T) {
	for _, k := range []Kind{Haar, Daubechies4} {
		for _, levels := range []int{0, 1, 3} {
			x := workspaceTestSignal(512)
			want, err := Decompose(k, x, levels)
			if err != nil {
				t.Fatalf("%v levels=%d: Decompose: %v", k, levels, err)
			}
			w, err := NewWorkspace(k, len(x), levels)
			if err != nil {
				t.Fatalf("%v levels=%d: NewWorkspace: %v", k, levels, err)
			}
			for pass := 0; pass < 2; pass++ {
				got, err := w.Decompose(x)
				if err != nil {
					t.Fatalf("%v levels=%d pass %d: %v", k, levels, pass, err)
				}
				if len(got.Details) != len(want.Details) {
					t.Fatalf("%v levels=%d: %d levels, want %d", k, levels, len(got.Details), len(want.Details))
				}
				for l := range want.Details {
					for i := range want.Details[l] {
						if got.Details[l][i] != want.Details[l][i] {
							t.Fatalf("%v level %d detail %d: %v != %v", k, l, i, got.Details[l][i], want.Details[l][i])
						}
					}
				}
				for i := range want.Approx {
					if got.Approx[i] != want.Approx[i] {
						t.Fatalf("%v approx %d: %v != %v", k, i, got.Approx[i], want.Approx[i])
					}
				}
				wantE := want.EnergyMap()
				gotE := w.EnergyMap()
				if len(gotE) != len(wantE) {
					t.Fatalf("%v: energy map of %d bands, want %d", k, len(gotE), len(wantE))
				}
				for i := range wantE {
					if gotE[i] != wantE[i] {
						t.Fatalf("%v energy band %d: %v != %v", k, i, gotE[i], wantE[i])
					}
				}
			}
		}
	}
}

func TestWorkspaceRejects(t *testing.T) {
	if _, err := NewWorkspace(Haar, 1, 0); err == nil {
		t.Error("too-short frame accepted")
	}
	w, err := NewWorkspace(Haar, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Decompose(make([]float64, 32)); err == nil {
		t.Error("wrong-length frame accepted")
	}
}

func BenchmarkDecompose(b *testing.B) {
	x := workspaceTestSignal(512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d, err := Decompose(Daubechies4, x, 0)
		if err != nil {
			b.Fatal(err)
		}
		d.EnergyMap()
	}
}

func BenchmarkWorkspaceDecompose(b *testing.B) {
	x := workspaceTestSignal(512)
	w, err := NewWorkspace(Daubechies4, len(x), 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := w.Decompose(x); err != nil {
			b.Fatal(err)
		}
		w.EnergyMap()
	}
}

// TestWorkspaceZeroAlloc is the hot-path budget for the per-tick wavelet
// features: zero heap allocations per Decompose + EnergyMap.
func TestWorkspaceZeroAlloc(t *testing.T) {
	x := workspaceTestSignal(512)
	w, err := NewWorkspace(Daubechies4, len(x), 0)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := w.Decompose(x); err != nil {
			t.Fatal(err)
		}
		w.EnergyMap()
	})
	if allocs != 0 {
		t.Errorf("Decompose+EnergyMap allocates %.1f times per frame, want 0", allocs)
	}
}
