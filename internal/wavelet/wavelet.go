// Package wavelet implements the discrete wavelet transform substrate for
// the Wavelet Neural Network diagnostics of §6.2. The WNN "belongs to a new
// class of neural networks with such unique capabilities as multi-resolution
// and localization"; this package supplies the multi-resolution analysis:
// Haar and Daubechies-4 DWT/IDWT, multi-level decomposition, and wavelet
// energy maps used as classifier features for transitory phenomena.
package wavelet

import (
	"fmt"
	"math"
)

// Kind selects the wavelet family.
type Kind int

const (
	// Haar is the 2-tap Haar wavelet: maximal time localization, used for
	// sharp transients (spikes, impacts).
	Haar Kind = iota
	// Daubechies4 is the 4-tap Daubechies wavelet (db2 in some namings),
	// smoother basis better suited to oscillatory transients.
	Daubechies4
)

// String returns the wavelet family name.
func (k Kind) String() string {
	switch k {
	case Haar:
		return "haar"
	case Daubechies4:
		return "daubechies4"
	default:
		return "unknown"
	}
}

// filters returns the low-pass (scaling) decomposition filter for k. The
// high-pass filter is derived by the quadrature mirror relation.
func (k Kind) filters() ([]float64, error) {
	switch k {
	case Haar:
		s := 1 / math.Sqrt2
		return []float64{s, s}, nil
	case Daubechies4:
		r3 := math.Sqrt(3)
		den := 4 * math.Sqrt2
		return []float64{
			(1 + r3) / den,
			(3 + r3) / den,
			(3 - r3) / den,
			(1 - r3) / den,
		}, nil
	default:
		return nil, fmt.Errorf("wavelet: unknown kind %d", k)
	}
}

// highPass derives the wavelet (detail) filter from a scaling filter by the
// alternating-sign quadrature mirror construction.
func highPass(low []float64) []float64 {
	n := len(low)
	h := make([]float64, n)
	for i := 0; i < n; i++ {
		sign := 1.0
		if i%2 == 1 {
			sign = -1
		}
		h[i] = sign * low[n-1-i]
	}
	return h
}

// Transform performs one level of the DWT on x (length must be even and
// >= filter length), returning approximation and detail coefficients, each
// of length len(x)/2. Circular (periodic) boundary handling is used so the
// transform is exactly invertible.
func Transform(k Kind, x []float64) (approx, detail []float64, err error) {
	low, err := k.filters()
	if err != nil {
		return nil, nil, err
	}
	n := len(x)
	if n < len(low) {
		return nil, nil, fmt.Errorf("wavelet: frame length %d shorter than filter %d", n, len(low))
	}
	if n%2 != 0 {
		return nil, nil, fmt.Errorf("wavelet: frame length %d is odd", n)
	}
	high := highPass(low)
	half := n / 2
	approx = make([]float64, half)
	detail = make([]float64, half)
	for i := 0; i < half; i++ {
		var a, d float64
		for j := 0; j < len(low); j++ {
			v := x[(2*i+j)%n]
			a += low[j] * v
			d += high[j] * v
		}
		approx[i] = a
		detail[i] = d
	}
	return approx, detail, nil
}

// Inverse reconstructs the signal from one level of approximation and detail
// coefficients produced by Transform with the same kind.
func Inverse(k Kind, approx, detail []float64) ([]float64, error) {
	if len(approx) != len(detail) {
		return nil, fmt.Errorf("wavelet: approx length %d != detail length %d", len(approx), len(detail))
	}
	low, err := k.filters()
	if err != nil {
		return nil, err
	}
	high := highPass(low)
	half := len(approx)
	n := half * 2
	out := make([]float64, n)
	for i := 0; i < half; i++ {
		for j := 0; j < len(low); j++ {
			idx := (2*i + j) % n
			out[idx] += low[j]*approx[i] + high[j]*detail[i]
		}
	}
	return out, nil
}

// Decomposition is a multi-level DWT of a frame: Details[l] holds the detail
// coefficients of level l+1 (finest first) and Approx the final
// approximation.
type Decomposition struct {
	Kind    Kind
	Details [][]float64
	Approx  []float64
}

// Decompose performs a levels-deep multi-resolution analysis of x.
// If levels <= 0 the maximum usable depth for the frame length is used.
func Decompose(k Kind, x []float64, levels int) (*Decomposition, error) {
	low, err := k.filters()
	if err != nil {
		return nil, err
	}
	maxLevels := 0
	for n := len(x); n >= 2*len(low) || (n >= len(low) && n%2 == 0 && maxLevels == 0); n /= 2 {
		if n%2 != 0 {
			break
		}
		maxLevels++
		if n/2 < len(low) {
			break
		}
	}
	if levels <= 0 || levels > maxLevels {
		levels = maxLevels
	}
	if levels == 0 {
		return nil, fmt.Errorf("wavelet: frame of length %d too short for %v", len(x), k)
	}
	d := &Decomposition{Kind: k}
	cur := append([]float64(nil), x...)
	for l := 0; l < levels; l++ {
		a, det, err := Transform(k, cur)
		if err != nil {
			return nil, err
		}
		d.Details = append(d.Details, det)
		cur = a
	}
	d.Approx = cur
	return d, nil
}

// Reconstruct inverts a multi-level decomposition back to the original frame.
func (d *Decomposition) Reconstruct() ([]float64, error) {
	cur := append([]float64(nil), d.Approx...)
	for l := len(d.Details) - 1; l >= 0; l-- {
		next, err := Inverse(d.Kind, cur, d.Details[l])
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return cur, nil
}

// Levels returns the decomposition depth.
func (d *Decomposition) Levels() int { return len(d.Details) }

// EnergyMap returns the relative energy in each detail band plus the final
// approximation band, normalized to sum to 1 (the "wavelet map" feature of
// §6.2). Index 0 is the finest detail band; the last entry is the
// approximation. A zero-energy frame returns all zeros.
func (d *Decomposition) EnergyMap() []float64 {
	out := make([]float64, len(d.Details)+1)
	var total float64
	for i, det := range d.Details {
		var e float64
		for _, v := range det {
			e += v * v
		}
		out[i] = e
		total += e
	}
	var e float64
	for _, v := range d.Approx {
		e += v * v
	}
	out[len(out)-1] = e
	total += e
	if total == 0 {
		return out
	}
	for i := range out {
		out[i] /= total
	}
	return out
}

// BandRMS returns the RMS of each detail band plus the approximation band,
// finest detail first — an absolute-scale companion to EnergyMap.
func (d *Decomposition) BandRMS() []float64 {
	out := make([]float64, len(d.Details)+1)
	rms := func(x []float64) float64 {
		if len(x) == 0 {
			return 0
		}
		var s float64
		for _, v := range x {
			s += v * v
		}
		return math.Sqrt(s / float64(len(x)))
	}
	for i, det := range d.Details {
		out[i] = rms(det)
	}
	out[len(out)-1] = rms(d.Approx)
	return out
}
