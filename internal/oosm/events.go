package oosm

import (
	"sync"
	"time"
)

// EventKind enumerates the model change notifications of §4.5.
type EventKind int

const (
	// ObjectCreated fires when a new object instance is created.
	ObjectCreated EventKind = iota
	// ObjectDeleted fires when an object is deleted.
	ObjectDeleted
	// PropertyChanged fires once per changed property on SetProps.
	PropertyChanged
	// RelationAdded fires when a relationship is recorded.
	RelationAdded
	// RelationRemoved fires when a relationship is removed.
	RelationRemoved
	// ObjectUpdated fires exactly once per SetProps call, after the
	// per-property PropertyChanged events. Subscribers that react to a write
	// as a whole (cache invalidation, display refresh) listen here instead
	// of once per property.
	ObjectUpdated
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case ObjectCreated:
		return "object-created"
	case ObjectDeleted:
		return "object-deleted"
	case PropertyChanged:
		return "property-changed"
	case RelationAdded:
		return "relation-added"
	case RelationRemoved:
		return "relation-removed"
	case ObjectUpdated:
		return "object-updated"
	default:
		return "unknown"
	}
}

// Event describes one model change.
type Event struct {
	Kind     EventKind
	Object   ObjectID
	Property string  // set for PropertyChanged
	Value    any     // set for PropertyChanged
	Relation RelKind // set for RelationAdded/Removed
	Other    ObjectID
	Time     time.Time
}

// Subscription is a handle for cancelling an event subscription.
type Subscription struct {
	hub *eventHub
	id  int
}

// Cancel removes the subscription; it is safe to call more than once.
func (s *Subscription) Cancel() {
	if s == nil || s.hub == nil {
		return
	}
	s.hub.remove(s.id)
	s.hub = nil
}

// Handler receives model events. Handlers run synchronously on the mutating
// goroutine (the paper's OLE Automation events are likewise synchronous
// callbacks); handlers must not block and must not mutate the model
// reentrantly in ways that could deadlock their own goroutine's locks.
type Handler func(Event)

type subscriber struct {
	id     int
	class  string // "" = all classes
	kind   EventKind
	any    bool // ignore kind filter
	handle Handler
}

type eventHub struct {
	mu     sync.RWMutex
	nextID int
	subs   []subscriber
}

func newEventHub() *eventHub { return &eventHub{} }

func (h *eventHub) publish(e Event) {
	h.mu.RLock()
	// Copy the handler list so handlers can subscribe/cancel reentrantly.
	subs := make([]subscriber, len(h.subs))
	copy(subs, h.subs)
	h.mu.RUnlock()
	for _, s := range subs {
		if s.class != "" && s.class != e.Object.Class {
			continue
		}
		if !s.any && s.kind != e.Kind {
			continue
		}
		s.handle(e)
	}
}

func (h *eventHub) add(s subscriber) *Subscription {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.nextID++
	s.id = h.nextID
	h.subs = append(h.subs, s)
	return &Subscription{hub: h, id: s.id}
}

func (h *eventHub) remove(id int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, s := range h.subs {
		if s.id == id {
			h.subs = append(h.subs[:i], h.subs[i+1:]...)
			return
		}
	}
}

// Subscribe registers a handler for every event of the given kind, on any
// class. The returned subscription cancels it.
func (m *Model) Subscribe(kind EventKind, fn Handler) *Subscription {
	return m.events.add(subscriber{kind: kind, handle: fn})
}

// SubscribeClass registers a handler for events of the given kind on objects
// of one class. Knowledge Fusion uses this to "automatically process failure
// prediction reports as they are delivered to the OOSM" (§4.5).
func (m *Model) SubscribeClass(class string, kind EventKind, fn Handler) *Subscription {
	return m.events.add(subscriber{class: class, kind: kind, handle: fn})
}

// SubscribeAll registers a handler for every event on every class — the
// PDME browser uses this to refresh its display.
func (m *Model) SubscribeAll(fn Handler) *Subscription {
	return m.events.add(subscriber{any: true, handle: fn})
}
