// Package oosm implements the Object-Oriented Ship Model of §4: a persistent
// repository of machinery state "used for communication between the various
// prognostic and diagnostic software modules".
//
// Entities are objects with typed properties and relationships to other
// entities ("part-of", "kind-of", "proximity", "flow", "refers-to"). An
// event model notifies client programs of changes "without the need to
// poll" (§4.5) — Knowledge Fusion subscribes to process failure prediction
// reports as they arrive. Persistence follows §4.6: "object types are
// mapped to tables and properties and relationships are mapped to columns
// and helper tables", here on the internal/relstore engine; persistence is
// "entirely managed in the background" — callers never see the tables.
package oosm

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/relstore"
)

// PropType enumerates the value types an object property can hold.
type PropType int

const (
	// PropString is a text property (name, manufacturer, ...).
	PropString PropType = iota
	// PropFloat is a numeric property (capacity, energy usage, ...).
	PropFloat
	// PropInt is an integer property.
	PropInt
	// PropBool is a boolean property.
	PropBool
	// PropTime is a timestamp property.
	PropTime
)

func (p PropType) column() relstore.ColumnType {
	switch p {
	case PropString:
		return relstore.String
	case PropFloat:
		return relstore.Float
	case PropInt:
		return relstore.Int
	case PropBool:
		return relstore.Bool
	case PropTime:
		return relstore.Time
	default:
		return relstore.String
	}
}

// Class describes an object type: its name and property schema. Classes
// mirror the paper's physical entities (sensor, motor, compressor, deck,
// ship) and abstract ones (failure prediction report, knowledge source).
type Class struct {
	// Name is the class name, unique within a model.
	Name string
	// Props maps property names to types.
	Props map[string]PropType
}

// ObjectID identifies an object instance: its class plus a per-class serial.
type ObjectID struct {
	Class string
	Num   int64
}

// String renders the id as "class/num"; this form is also accepted by
// ParseObjectID and used as the SensedObjectID in protocol reports.
func (id ObjectID) String() string { return fmt.Sprintf("%s/%d", id.Class, id.Num) }

// IsZero reports whether the id is the zero value.
func (id ObjectID) IsZero() bool { return id.Class == "" && id.Num == 0 }

// ParseObjectID parses the "class/num" form produced by ObjectID.String.
func ParseObjectID(s string) (ObjectID, error) {
	var id ObjectID
	i := -1
	for j := len(s) - 1; j >= 0; j-- {
		if s[j] == '/' {
			i = j
			break
		}
	}
	if i <= 0 || i == len(s)-1 {
		return id, fmt.Errorf("oosm: malformed object id %q", s)
	}
	id.Class = s[:i]
	if _, err := fmt.Sscanf(s[i+1:], "%d", &id.Num); err != nil {
		return id, fmt.Errorf("oosm: malformed object id %q: %w", s, err)
	}
	return id, nil
}

// Model is the ship model: a set of classes, their object instances, and the
// relationship graph, persisted transparently to a relstore database.
// All methods are safe for concurrent use.
type Model struct {
	mu      sync.RWMutex
	db      *relstore.DB
	classes map[string]Class
	events  *eventHub
}

const relTable = "oosm_relationships"

// NewModel creates a model persisted in db (use relstore.NewMemory for a
// volatile model or relstore.Open for a durable one). Classes registered by
// earlier sessions against the same database are available after re-opening
// once RegisterClass is called again with the same schemas.
func NewModel(db *relstore.DB) (*Model, error) {
	m := &Model{
		db:      db,
		classes: make(map[string]Class),
		events:  newEventHub(),
	}
	err := db.EnsureTable(relstore.Schema{
		Name: relTable,
		Columns: []relstore.Column{
			{Name: "kind", Type: relstore.String, Indexed: true},
			{Name: "from", Type: relstore.String, Indexed: true},
			{Name: "to", Type: relstore.String, Indexed: true},
		},
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}

func classTable(class string) string { return "oosm_obj_" + class }

// RegisterClass declares (or re-attaches to) an object class. Property names
// must not collide with the reserved "id" column.
func (m *Model) RegisterClass(c Class) error {
	if c.Name == "" {
		return fmt.Errorf("oosm: empty class name")
	}
	if len(c.Props) == 0 {
		return fmt.Errorf("oosm: class %q has no properties", c.Name)
	}
	cols := make([]relstore.Column, 0, len(c.Props))
	names := make([]string, 0, len(c.Props))
	//lint:allow maporder property names are sorted before the schema is built
	for n := range c.Props {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		cols = append(cols, relstore.Column{
			Name:     n,
			Type:     c.Props[n].column(),
			Nullable: true,
		})
	}
	if err := m.db.EnsureTable(relstore.Schema{Name: classTable(c.Name), Columns: cols}); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.classes[c.Name]; dup {
		return fmt.Errorf("oosm: class %q already registered", c.Name)
	}
	props := make(map[string]PropType, len(c.Props))
	//lint:allow maporder map-to-map copy; insertion order cannot affect contents
	for k, v := range c.Props {
		props[k] = v
	}
	m.classes[c.Name] = Class{Name: c.Name, Props: props}
	return nil
}

// Classes returns the registered class names in sorted order.
func (m *Model) Classes() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.classes))
	//lint:allow maporder class names are sorted before return
	for n := range m.classes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// checkProps validates property names and value types against a class.
func (m *Model) checkProps(c Class, props map[string]any) error {
	//lint:allow maporder validation only; the accepted (error-free) outcome is order-independent
	for name, v := range props {
		pt, ok := c.Props[name]
		if !ok {
			return fmt.Errorf("oosm: class %q has no property %q", c.Name, name)
		}
		if v == nil {
			continue
		}
		valid := false
		switch pt {
		case PropString:
			_, valid = v.(string)
		case PropFloat:
			_, valid = v.(float64)
		case PropInt:
			_, valid = v.(int64)
		case PropBool:
			_, valid = v.(bool)
		case PropTime:
			_, valid = v.(time.Time)
		}
		if !valid {
			return fmt.Errorf("oosm: property %q of class %q: value %T has wrong type", name, c.Name, v)
		}
	}
	return nil
}

// Create instantiates an object of the class with the given initial
// properties (missing properties are null). It emits an ObjectCreated event.
func (m *Model) Create(class string, props map[string]any) (ObjectID, error) {
	m.mu.RLock()
	c, ok := m.classes[class]
	m.mu.RUnlock()
	if !ok {
		return ObjectID{}, fmt.Errorf("oosm: unknown class %q", class)
	}
	if err := m.checkProps(c, props); err != nil {
		return ObjectID{}, err
	}
	row := relstore.Row{}
	//lint:allow maporder map-to-map copy; insertion order cannot affect contents
	for k, v := range props {
		row[k] = v
	}
	num, err := m.db.Insert(classTable(class), row)
	if err != nil {
		return ObjectID{}, err
	}
	id := ObjectID{Class: class, Num: num}
	m.events.publish(Event{Kind: ObjectCreated, Object: id, Time: time.Now()})
	return id, nil
}

// Get returns all properties of an object (null properties as nil values).
func (m *Model) Get(id ObjectID) (map[string]any, error) {
	row, err := m.db.Get(classTable(id.Class), id.Num)
	if err != nil {
		return nil, fmt.Errorf("oosm: %v: %w", id, err)
	}
	out := make(map[string]any, len(row))
	//lint:allow maporder map-to-map copy; insertion order cannot affect contents
	for k, v := range row {
		if k == "id" {
			continue
		}
		out[k] = v
	}
	return out, nil
}

// GetProp returns one property value of an object.
func (m *Model) GetProp(id ObjectID, name string) (any, error) {
	props, err := m.Get(id)
	if err != nil {
		return nil, err
	}
	v, ok := props[name]
	if !ok {
		return nil, fmt.Errorf("oosm: object %v has no property %q", id, name)
	}
	return v, nil
}

// SetProps updates properties of an object, emitting a PropertyChanged event
// per changed property and one ObjectUpdated event for the write as a whole.
func (m *Model) SetProps(id ObjectID, props map[string]any) error {
	m.mu.RLock()
	c, ok := m.classes[id.Class]
	m.mu.RUnlock()
	if !ok {
		return fmt.Errorf("oosm: unknown class %q", id.Class)
	}
	if err := m.checkProps(c, props); err != nil {
		return err
	}
	row := relstore.Row{}
	//lint:allow maporder map-to-map copy; insertion order cannot affect contents
	for k, v := range props {
		row[k] = v
	}
	if err := m.db.Update(classTable(id.Class), id.Num, row); err != nil {
		return err
	}
	now := time.Now()
	// Publish in sorted property order so watchers see a deterministic event
	// sequence for one write, whatever the map layout.
	changed := make([]string, 0, len(props))
	//lint:allow maporder property names are sorted before events are published
	for k := range props {
		changed = append(changed, k)
	}
	sort.Strings(changed)
	for _, k := range changed {
		m.events.publish(Event{Kind: PropertyChanged, Object: id, Property: k, Value: props[k], Time: now})
	}
	m.events.publish(Event{Kind: ObjectUpdated, Object: id, Time: now})
	return nil
}

// Delete removes an object and all relationships that mention it, emitting
// an ObjectDeleted event.
func (m *Model) Delete(id ObjectID) error {
	if err := m.db.Delete(classTable(id.Class), id.Num); err != nil {
		return err
	}
	// Remove relationships in both directions.
	key := id.String()
	for _, col := range []string{"from", "to"} {
		rows, err := m.db.Select(relTable, relstore.Eq(col, key), 0)
		if err != nil {
			return err
		}
		for _, r := range rows {
			if err := m.db.Delete(relTable, r.ID()); err != nil {
				return err
			}
		}
	}
	m.events.publish(Event{Kind: ObjectDeleted, Object: id, Time: time.Now()})
	return nil
}

// Exists reports whether the object is present in the model.
func (m *Model) Exists(id ObjectID) bool {
	_, err := m.db.Get(classTable(id.Class), id.Num)
	return err == nil
}

// Instances returns all object ids of a class, ordered by creation.
func (m *Model) Instances(class string) ([]ObjectID, error) {
	rows, err := m.db.Select(classTable(class), nil, 0)
	if err != nil {
		return nil, err
	}
	out := make([]ObjectID, len(rows))
	for i, r := range rows {
		out[i] = ObjectID{Class: class, Num: r.ID()}
	}
	return out, nil
}

// FindByProp returns objects of the class whose property equals value.
func (m *Model) FindByProp(class, prop string, value any) ([]ObjectID, error) {
	rows, err := m.db.Select(classTable(class), relstore.Eq(prop, value), 0)
	if err != nil {
		return nil, err
	}
	out := make([]ObjectID, len(rows))
	for i, r := range rows {
		out[i] = ObjectID{Class: class, Num: r.ID()}
	}
	return out, nil
}
