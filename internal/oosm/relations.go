package oosm

import (
	"fmt"
	"time"

	"repro/internal/relstore"
)

// RelKind names a relationship type. The paper's common relationships are
// provided as constants; arbitrary kinds are allowed.
type RelKind string

const (
	// PartOf links a component to its assembly ("compressor part-of chiller").
	PartOf RelKind = "part-of"
	// KindOf links an instance to a more general category.
	KindOf RelKind = "kind-of"
	// Proximity links physically adjacent equipment — the paper's spatial
	// reasoning example: "a device is vibrating because a component next to
	// it is broken and vibrating wildly" (§10.1).
	Proximity RelKind = "proximity"
	// Flow links components along a fluid, electrical, or mechanical energy
	// path ("one component passing fouled fluids on to other components
	// downstream", §10.1).
	Flow RelKind = "flow"
	// RefersTo links an abstract object (e.g. a report) to its subject.
	RefersTo RelKind = "refers-to"
)

// Relate records a directed relationship from -> to of the given kind. Both
// objects must exist. Duplicate identical relationships are idempotent.
func (m *Model) Relate(kind RelKind, from, to ObjectID) error {
	if !m.Exists(from) {
		return fmt.Errorf("oosm: relate: %v does not exist", from)
	}
	if !m.Exists(to) {
		return fmt.Errorf("oosm: relate: %v does not exist", to)
	}
	// Idempotence: check for an identical edge first.
	existing, err := m.db.Select(relTable, relstore.And(
		relstore.Eq("from", from.String()),
		relstore.Eq("kind", string(kind)),
		relstore.Eq("to", to.String()),
	), 1)
	if err != nil {
		return err
	}
	if len(existing) > 0 {
		return nil
	}
	_, err = m.db.Insert(relTable, relstore.Row{
		"kind": string(kind),
		"from": from.String(),
		"to":   to.String(),
	})
	if err != nil {
		return err
	}
	m.events.publish(Event{Kind: RelationAdded, Object: from, Relation: kind, Other: to, Time: time.Now()})
	return nil
}

// Unrelate removes a relationship; removing a non-existent edge is an error.
func (m *Model) Unrelate(kind RelKind, from, to ObjectID) error {
	rows, err := m.db.Select(relTable, relstore.And(
		relstore.Eq("from", from.String()),
		relstore.Eq("kind", string(kind)),
		relstore.Eq("to", to.String()),
	), 1)
	if err != nil {
		return err
	}
	if len(rows) == 0 {
		return fmt.Errorf("oosm: no %s relationship %v -> %v", kind, from, to)
	}
	if err := m.db.Delete(relTable, rows[0].ID()); err != nil {
		return err
	}
	m.events.publish(Event{Kind: RelationRemoved, Object: from, Relation: kind, Other: to, Time: time.Now()})
	return nil
}

// Related returns the targets of relationships of the given kind from the
// object ("what is this part-of?").
func (m *Model) Related(from ObjectID, kind RelKind) ([]ObjectID, error) {
	rows, err := m.db.Select(relTable, relstore.And(
		relstore.Eq("from", from.String()),
		relstore.Eq("kind", string(kind)),
	), 0)
	if err != nil {
		return nil, err
	}
	return idsFromRows(rows, "to")
}

// RelatedTo returns the sources of relationships of the given kind pointing
// at the object ("what are the parts of this?").
func (m *Model) RelatedTo(to ObjectID, kind RelKind) ([]ObjectID, error) {
	rows, err := m.db.Select(relTable, relstore.And(
		relstore.Eq("to", to.String()),
		relstore.Eq("kind", string(kind)),
	), 0)
	if err != nil {
		return nil, err
	}
	return idsFromRows(rows, "from")
}

func idsFromRows(rows []relstore.Row, col string) ([]ObjectID, error) {
	out := make([]ObjectID, 0, len(rows))
	for _, r := range rows {
		s, _ := r[col].(string)
		id, err := ParseObjectID(s)
		if err != nil {
			return nil, err
		}
		out = append(out, id)
	}
	return out, nil
}

// TransitiveRelated walks kind-edges from the object up to maxDepth hops
// (maxDepth <= 0 means unlimited) and returns every reachable object in
// breadth-first order, excluding the start. Cycles are handled. This backs
// the §10.1 multi-level reasoning: "the health of a system based on the
// health of a constituent part".
func (m *Model) TransitiveRelated(from ObjectID, kind RelKind, maxDepth int) ([]ObjectID, error) {
	seen := map[ObjectID]bool{from: true}
	var out []ObjectID
	frontier := []ObjectID{from}
	depth := 0
	for len(frontier) > 0 {
		if maxDepth > 0 && depth >= maxDepth {
			break
		}
		depth++
		var next []ObjectID
		for _, id := range frontier {
			targets, err := m.Related(id, kind)
			if err != nil {
				return nil, err
			}
			for _, t := range targets {
				if !seen[t] {
					seen[t] = true
					out = append(out, t)
					next = append(next, t)
				}
			}
		}
		frontier = next
	}
	return out, nil
}

// Neighbors returns all objects related to id by any kind, in either
// direction, deduplicated — the spatial-reasoning primitive.
func (m *Model) Neighbors(id ObjectID) ([]ObjectID, error) {
	seen := map[ObjectID]bool{id: true}
	var out []ObjectID
	for _, col := range []string{"from", "to"} {
		rows, err := m.db.Select(relTable, relstore.Eq(col, id.String()), 0)
		if err != nil {
			return nil, err
		}
		other := "to"
		if col == "to" {
			other = "from"
		}
		ids, err := idsFromRows(rows, other)
		if err != nil {
			return nil, err
		}
		for _, o := range ids {
			if !seen[o] {
				seen[o] = true
				out = append(out, o)
			}
		}
	}
	return out, nil
}
