package oosm

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/relstore"
)

func newTestModel(t testing.TB) *Model {
	t.Helper()
	m, err := NewModel(relstore.NewMemory())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []Class{
		{Name: "ship", Props: map[string]PropType{"name": PropString}},
		{Name: "chiller", Props: map[string]PropType{
			"name": PropString, "manufacturer": PropString, "capacity_tons": PropFloat,
		}},
		{Name: "motor", Props: map[string]PropType{
			"name": PropString, "power_kw": PropFloat, "poles": PropInt,
			"running": PropBool, "installed": PropTime,
		}},
		{Name: "compressor", Props: map[string]PropType{"name": PropString}},
		{Name: "report", Props: map[string]PropType{
			"condition": PropString, "belief": PropFloat, "severity": PropFloat,
		}},
	} {
		if err := m.RegisterClass(c); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestObjectIDParse(t *testing.T) {
	id := ObjectID{Class: "motor", Num: 42}
	parsed, err := ParseObjectID(id.String())
	if err != nil || parsed != id {
		t.Fatalf("round trip: %v %v", parsed, err)
	}
	// Classes may contain slashes (e.g. "ac/motor"); last slash splits.
	parsed, err = ParseObjectID("ac/motor/7")
	if err != nil || parsed.Class != "ac/motor" || parsed.Num != 7 {
		t.Fatalf("nested: %v %v", parsed, err)
	}
	for _, bad := range []string{"", "noslash", "/7", "motor/", "motor/x"} {
		if _, err := ParseObjectID(bad); err == nil {
			t.Errorf("%q should fail", bad)
		}
	}
	if !(ObjectID{}).IsZero() {
		t.Error("zero id")
	}
	if id.IsZero() {
		t.Error("non-zero id")
	}
}

func TestRegisterClassValidation(t *testing.T) {
	m := newTestModel(t)
	if err := m.RegisterClass(Class{Name: "", Props: map[string]PropType{"a": PropString}}); err == nil {
		t.Error("empty name")
	}
	if err := m.RegisterClass(Class{Name: "x", Props: nil}); err == nil {
		t.Error("no props")
	}
	if err := m.RegisterClass(Class{Name: "ship", Props: map[string]PropType{"a": PropString}}); err == nil {
		t.Error("duplicate class")
	}
	cs := m.Classes()
	if len(cs) != 5 {
		t.Errorf("classes %v", cs)
	}
}

func TestObjectLifecycle(t *testing.T) {
	m := newTestModel(t)
	installed := time.Date(1998, 8, 1, 0, 0, 0, 0, time.UTC)
	id, err := m.Create("motor", map[string]any{
		"name": "A/C Compressor Motor 1", "power_kw": 75.0,
		"poles": int64(4), "running": true, "installed": installed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Exists(id) {
		t.Fatal("created object should exist")
	}
	props, err := m.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if props["name"] != "A/C Compressor Motor 1" || props["power_kw"] != 75.0 ||
		props["poles"] != int64(4) || props["running"] != true {
		t.Errorf("props %v", props)
	}
	if got, _ := props["installed"].(time.Time); !got.Equal(installed) {
		t.Errorf("installed %v", props["installed"])
	}
	v, err := m.GetProp(id, "power_kw")
	if err != nil || v != 75.0 {
		t.Errorf("GetProp %v %v", v, err)
	}
	if _, err := m.GetProp(id, "ghost"); err == nil {
		t.Error("ghost property")
	}
	if err := m.SetProps(id, map[string]any{"running": false}); err != nil {
		t.Fatal(err)
	}
	v, _ = m.GetProp(id, "running")
	if v != false {
		t.Error("SetProps lost")
	}
	if err := m.Delete(id); err != nil {
		t.Fatal(err)
	}
	if m.Exists(id) {
		t.Error("deleted object exists")
	}
	if _, err := m.Get(id); err == nil {
		t.Error("Get after delete")
	}
}

func TestCreateValidation(t *testing.T) {
	m := newTestModel(t)
	if _, err := m.Create("ghost", nil); err == nil {
		t.Error("unknown class")
	}
	if _, err := m.Create("motor", map[string]any{"ghost": 1}); err == nil {
		t.Error("unknown property")
	}
	if _, err := m.Create("motor", map[string]any{"power_kw": "oops"}); err == nil {
		t.Error("wrong type")
	}
	if _, err := m.Create("motor", map[string]any{"power_kw": nil}); err != nil {
		t.Error("nil property should be allowed")
	}
	id, err := m.Create("motor", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetProps(id, map[string]any{"poles": 4}); err == nil {
		t.Error("int (not int64) should be rejected")
	}
	if err := m.SetProps(ObjectID{Class: "ghost", Num: 1}, nil); err == nil {
		t.Error("SetProps unknown class")
	}
}

func TestInstancesAndFind(t *testing.T) {
	m := newTestModel(t)
	for i := 0; i < 5; i++ {
		if _, err := m.Create("motor", map[string]any{"name": fmt.Sprintf("m%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := m.Instances("motor")
	if err != nil || len(ids) != 5 {
		t.Fatalf("instances %v %v", ids, err)
	}
	found, err := m.FindByProp("motor", "name", "m3")
	if err != nil || len(found) != 1 {
		t.Fatalf("find %v %v", found, err)
	}
	if _, err := m.Instances("ghost"); err == nil {
		t.Error("instances of unknown class")
	}
}

func TestRelationships(t *testing.T) {
	m := newTestModel(t)
	ship, _ := m.Create("ship", map[string]any{"name": "Mercy"})
	ch, _ := m.Create("chiller", map[string]any{"name": "Chiller 1"})
	mot, _ := m.Create("motor", map[string]any{"name": "Motor 1"})
	comp, _ := m.Create("compressor", map[string]any{"name": "Compressor 1"})

	if err := m.Relate(PartOf, ch, ship); err != nil {
		t.Fatal(err)
	}
	if err := m.Relate(PartOf, mot, ch); err != nil {
		t.Fatal(err)
	}
	if err := m.Relate(PartOf, comp, ch); err != nil {
		t.Fatal(err)
	}
	if err := m.Relate(Proximity, mot, comp); err != nil {
		t.Fatal(err)
	}
	// Idempotent.
	if err := m.Relate(PartOf, mot, ch); err != nil {
		t.Fatal(err)
	}
	up, err := m.Related(mot, PartOf)
	if err != nil || len(up) != 1 || up[0] != ch {
		t.Fatalf("related %v %v", up, err)
	}
	parts, err := m.RelatedTo(ch, PartOf)
	if err != nil || len(parts) != 2 {
		t.Fatalf("relatedTo %v %v", parts, err)
	}
	// Transitive: motor -> chiller -> ship.
	chain, err := m.TransitiveRelated(mot, PartOf, 0)
	if err != nil || len(chain) != 2 || chain[0] != ch || chain[1] != ship {
		t.Fatalf("transitive %v %v", chain, err)
	}
	// Depth limit.
	chain, _ = m.TransitiveRelated(mot, PartOf, 1)
	if len(chain) != 1 {
		t.Fatalf("depth-limited %v", chain)
	}
	// Neighbors in both directions, any kind.
	nbrs, err := m.Neighbors(mot)
	if err != nil || len(nbrs) != 2 {
		t.Fatalf("neighbors %v %v", nbrs, err)
	}
	// Unrelate.
	if err := m.Unrelate(Proximity, mot, comp); err != nil {
		t.Fatal(err)
	}
	if err := m.Unrelate(Proximity, mot, comp); err == nil {
		t.Error("double unrelate should error")
	}
	// Relating a missing object fails.
	if err := m.Relate(PartOf, ObjectID{Class: "motor", Num: 999}, ch); err == nil {
		t.Error("missing from")
	}
	if err := m.Relate(PartOf, mot, ObjectID{Class: "motor", Num: 999}); err == nil {
		t.Error("missing to")
	}
	// Deleting an object removes its edges.
	if err := m.Delete(comp); err != nil {
		t.Fatal(err)
	}
	parts, _ = m.RelatedTo(ch, PartOf)
	if len(parts) != 1 {
		t.Fatalf("edges not cleaned after delete: %v", parts)
	}
}

func TestTransitiveCycleSafe(t *testing.T) {
	m := newTestModel(t)
	a, _ := m.Create("ship", map[string]any{"name": "a"})
	b, _ := m.Create("ship", map[string]any{"name": "b"})
	if err := m.Relate(Flow, a, b); err != nil {
		t.Fatal(err)
	}
	if err := m.Relate(Flow, b, a); err != nil {
		t.Fatal(err)
	}
	out, err := m.TransitiveRelated(a, Flow, 0)
	if err != nil || len(out) != 1 || out[0] != b {
		t.Fatalf("cycle walk: %v %v", out, err)
	}
}

func TestEvents(t *testing.T) {
	m := newTestModel(t)
	var created, changed, deleted, related atomic.Int32
	subC := m.Subscribe(ObjectCreated, func(e Event) { created.Add(1) })
	m.Subscribe(PropertyChanged, func(e Event) {
		if e.Property == "running" {
			changed.Add(1)
		}
	})
	m.Subscribe(ObjectDeleted, func(e Event) { deleted.Add(1) })
	m.Subscribe(RelationAdded, func(e Event) { related.Add(1) })

	id, _ := m.Create("motor", map[string]any{"name": "m"})
	other, _ := m.Create("motor", map[string]any{"name": "n"})
	if err := m.SetProps(id, map[string]any{"running": true, "power_kw": 1.0}); err != nil {
		t.Fatal(err)
	}
	if err := m.Relate(Proximity, id, other); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete(id); err != nil {
		t.Fatal(err)
	}
	if created.Load() != 2 || changed.Load() != 1 || deleted.Load() != 1 || related.Load() != 1 {
		t.Errorf("events created=%d changed=%d deleted=%d related=%d",
			created.Load(), changed.Load(), deleted.Load(), related.Load())
	}
	// Cancel stops delivery.
	subC.Cancel()
	subC.Cancel() // double-cancel is safe
	if _, err := m.Create("motor", nil); err != nil {
		t.Fatal(err)
	}
	if created.Load() != 2 {
		t.Error("cancelled subscription still firing")
	}
}

func TestSubscribeClassFiltering(t *testing.T) {
	m := newTestModel(t)
	var reports atomic.Int32
	m.SubscribeClass("report", ObjectCreated, func(e Event) { reports.Add(1) })
	var all atomic.Int32
	m.SubscribeAll(func(e Event) { all.Add(1) })
	if _, err := m.Create("motor", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create("report", map[string]any{"condition": "imbalance", "belief": 0.8}); err != nil {
		t.Fatal(err)
	}
	if reports.Load() != 1 {
		t.Errorf("class filter: %d", reports.Load())
	}
	if all.Load() != 2 {
		t.Errorf("subscribe all: %d", all.Load())
	}
}

func TestEventKindString(t *testing.T) {
	kinds := map[EventKind]string{
		ObjectCreated: "object-created", ObjectDeleted: "object-deleted",
		PropertyChanged: "property-changed", RelationAdded: "relation-added",
		RelationRemoved: "relation-removed", EventKind(99): "unknown",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d: %q", k, k.String())
		}
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ship.db")
	db, err := relstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(db)
	if err != nil {
		t.Fatal(err)
	}
	cls := Class{Name: "motor", Props: map[string]PropType{"name": PropString, "power_kw": PropFloat}}
	if err := m.RegisterClass(cls); err != nil {
		t.Fatal(err)
	}
	id, err := m.Create("motor", map[string]any{"name": "M1", "power_kw": 55.0})
	if err != nil {
		t.Fatal(err)
	}
	id2, _ := m.Create("motor", map[string]any{"name": "M2"})
	if err := m.Relate(Proximity, id, id2); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := relstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	m2, err := NewModel(db2)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.RegisterClass(cls); err != nil {
		t.Fatal(err)
	}
	props, err := m2.Get(id)
	if err != nil || props["name"] != "M1" || props["power_kw"] != 55.0 {
		t.Fatalf("reopened props %v %v", props, err)
	}
	nbrs, err := m2.Neighbors(id)
	if err != nil || len(nbrs) != 1 || nbrs[0] != id2 {
		t.Fatalf("reopened neighbors %v %v", nbrs, err)
	}
}

func TestConcurrentCreateAndSubscribe(t *testing.T) {
	m := newTestModel(t)
	var count atomic.Int32
	m.SubscribeClass("motor", ObjectCreated, func(Event) { count.Add(1) })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if _, err := m.Create("motor", nil); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if count.Load() != 200 {
		t.Errorf("events %d, want 200", count.Load())
	}
	ids, _ := m.Instances("motor")
	if len(ids) != 200 {
		t.Errorf("instances %d", len(ids))
	}
}

func TestObjectIDRoundTripProperty(t *testing.T) {
	prop := func(numRaw int64, classSel uint8) bool {
		classes := []string{"motor", "a/c", "deck-2/pump", "x"}
		id := ObjectID{Class: classes[int(classSel)%len(classes)], Num: numRaw & 0x7fffffffffffffff}
		parsed, err := ParseObjectID(id.String())
		return err == nil && parsed == id
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCreateObject(b *testing.B) {
	m := newTestModel(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Create("motor", map[string]any{"name": "m", "power_kw": 1.0}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPropertyChangeWithSubscriber(b *testing.B) {
	m := newTestModel(b)
	id, _ := m.Create("motor", map[string]any{"name": "m"})
	var n int64
	m.Subscribe(PropertyChanged, func(Event) { atomic.AddInt64(&n, 1) })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.SetProps(id, map[string]any{"power_kw": float64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
