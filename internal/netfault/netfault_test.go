package netfault

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// startEcho runs a TCP echo server and returns its address and a stopper.
func startEcho(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				_, _ = io.Copy(conn, conn)
			}()
		}
	}()
	return ln.Addr().String()
}

func roundTrip(t *testing.T, addr string, payload []byte) ([]byte, error) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Write(payload); err != nil {
		return nil, err
	}
	buf := make([]byte, len(payload))
	_, err = io.ReadFull(conn, buf)
	return buf, err
}

func TestProxyPassthrough(t *testing.T) {
	p, err := New(startEcho(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	payload := []byte("the ship's network is calm today")
	got, err := roundTrip(t, p.Addr(), payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("echo mangled without faults: %q", got)
	}
	if s := p.Stats(); s.BytesMoved == 0 || s.Accepted != 1 {
		t.Errorf("stats %+v", s)
	}
}

func TestProxyPartitionAndHeal(t *testing.T) {
	p, err := New(startEcho(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// Establish a connection, then partition: it must die.
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	p.SetPartition(true)
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("connection survived a partition")
	}
	// New connections are refused while partitioned.
	if _, err := roundTrip(t, p.Addr(), []byte("hello")); err == nil {
		t.Fatal("round trip succeeded through a partition")
	}
	// Heal: traffic flows again.
	p.SetPartition(false)
	got, err := roundTrip(t, p.Addr(), []byte("hello"))
	if err != nil || !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("healed partition: %q, %v", got, err)
	}
	if s := p.Stats(); s.Refused == 0 {
		t.Errorf("no refusals counted: %+v", s)
	}
}

func TestProxyCorruption(t *testing.T) {
	p, err := New(startEcho(t), Options{CorruptProb: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	payload := bytes.Repeat([]byte{0x11}, 256)
	got, err := roundTrip(t, p.Addr(), payload)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, payload) {
		t.Error("every chunk should corrupt a byte")
	}
	if s := p.Stats(); s.Corruptions == 0 {
		t.Errorf("no corruptions counted: %+v", s)
	}
}

func TestProxyReset(t *testing.T) {
	p, err := New(startEcho(t), Options{ResetProb: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := roundTrip(t, p.Addr(), []byte("doomed")); err == nil {
		t.Fatal("round trip survived ResetProb=1")
	}
	if s := p.Stats(); s.Resets == 0 {
		t.Errorf("no resets counted: %+v", s)
	}
}

func TestProxyKillConns(t *testing.T) {
	p, err := New(startEcho(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	p.KillConns()
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 2)
	if _, err := io.ReadFull(conn, buf); err == nil {
		t.Fatal("connection survived KillConns")
	}
	// The proxy still accepts fresh connections afterwards.
	got, err := roundTrip(t, p.Addr(), []byte("again"))
	if err != nil || !bytes.Equal(got, []byte("again")) {
		t.Fatalf("post-kill round trip: %q, %v", got, err)
	}
}

func TestProxyLatency(t *testing.T) {
	p, err := New(startEcho(t), Options{Latency: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	start := time.Now()
	if _, err := roundTrip(t, p.Addr(), []byte("slow boat")); err != nil {
		t.Fatal(err)
	}
	// One chunk each way: at least 2× the one-way latency.
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Errorf("round trip took %v, want >= 60ms", elapsed)
	}
}

func TestProxyDropConnEvery(t *testing.T) {
	p, err := New(startEcho(t), Options{DropConnEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var failures int
	for i := 0; i < 4; i++ {
		if _, err := roundTrip(t, p.Addr(), []byte("maybe")); err != nil {
			failures++
		}
	}
	if failures != 2 {
		t.Errorf("%d of 4 connections dropped, want every 2nd", failures)
	}
}
