// Package netfault is a fault-injecting TCP proxy for exercising the
// DC→PDME report path under the communications instability §4.9 flags as a
// shipboard deployment concern. It interposes a net.Listener between a
// client and a real server and mangles the byte streams flowing through it:
// added latency, probabilistic byte corruption, probabilistic mid-frame
// connection resets, every-Nth connection refusal, and full partitions
// toggled at runtime. All randomness is seeded, so chaos tests are
// reproducible.
//
// The proxy is transport-agnostic (it never parses frames); the uplink and
// proto tests point clients at Proxy.Addr() instead of the server and drive
// faults through SetPartition/KillConns/SetOptions.
package netfault

import (
	"math/rand"
	"net"
	"sync"
	"time"
)

// Options selects the fault mix. The zero value forwards cleanly.
type Options struct {
	// Latency is added before each chunk is forwarded (each direction).
	Latency time.Duration
	// CorruptProb is the per-chunk probability of flipping one byte.
	CorruptProb float64
	// ResetProb is the per-chunk probability of resetting the connection
	// mid-stream (both halves are torn down, possibly mid-frame).
	ResetProb float64
	// DropConnEvery refuses (accepts then immediately closes) every Nth
	// accepted connection; 0 never refuses.
	DropConnEvery int
	// Seed drives the proxy's reproducible randomness (0 is used as-is).
	Seed int64
}

// Stats counts injected faults and traffic.
type Stats struct {
	Accepted    int64 // connections accepted
	Refused     int64 // connections dropped at accept (DropConnEvery, partition)
	Resets      int64 // mid-stream connection resets injected
	Corruptions int64 // bytes flipped
	BytesMoved  int64 // payload bytes forwarded (both directions)
}

// Proxy is one listening fault injector in front of a target address.
type Proxy struct {
	target string
	ln     net.Listener

	mu          sync.Mutex
	opts        Options
	rng         *rand.Rand
	partitioned bool
	closed      bool
	conns       map[net.Conn]struct{} // both client- and server-side halves
	stats       Stats

	wg sync.WaitGroup
}

// New starts a proxy on an ephemeral loopback port forwarding to target.
func New(target string, opts Options) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		target: target,
		ln:     ln,
		opts:   opts,
		rng:    rand.New(rand.NewSource(opts.Seed)),
		conns:  make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		p.acceptLoop()
	}()
	return p, nil
}

// Addr returns the address clients should dial instead of the target.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetOptions swaps the fault mix at runtime (existing connections adopt it
// on their next chunk).
func (p *Proxy) SetOptions(opts Options) {
	p.mu.Lock()
	defer p.mu.Unlock()
	seed := p.opts.Seed
	p.opts = opts
	if opts.Seed != seed {
		p.rng = rand.New(rand.NewSource(opts.Seed))
	}
}

// SetPartition opens (true) or heals (false) a full partition: existing
// connections are reset and new ones are refused until healed.
func (p *Proxy) SetPartition(on bool) {
	p.mu.Lock()
	p.partitioned = on
	p.mu.Unlock()
	if on {
		p.KillConns()
	}
}

// KillConns resets every active connection — a burst of mid-frame resets.
func (p *Proxy) KillConns() {
	p.mu.Lock()
	for c := range p.conns {
		_ = c.Close()
	}
	p.stats.Resets++
	p.mu.Unlock()
}

// Stats returns a snapshot of the fault counters.
func (p *Proxy) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Close stops the listener and tears down all connections.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	for c := range p.conns {
		_ = c.Close()
	}
	p.mu.Unlock()
	err := p.ln.Close()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			_ = conn.Close()
			return
		}
		p.stats.Accepted++
		refuse := p.partitioned
		if n := p.opts.DropConnEvery; n > 0 && p.stats.Accepted%int64(n) == 0 {
			refuse = true
		}
		if refuse {
			p.stats.Refused++
			p.mu.Unlock()
			_ = conn.Close()
			continue
		}
		p.mu.Unlock()
		upstream, err := net.Dial("tcp", p.target)
		if err != nil {
			_ = conn.Close()
			continue
		}
		p.mu.Lock()
		if p.closed || p.partitioned {
			p.mu.Unlock()
			_ = conn.Close()
			_ = upstream.Close()
			continue
		}
		p.conns[conn] = struct{}{}
		p.conns[upstream] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(2)
		go p.pipe(conn, upstream)
		go p.pipe(upstream, conn)
	}
}

// pipe forwards src→dst chunk by chunk, applying the fault mix. Closing
// either half tears down both (so a reset injected on one direction kills
// the connection pair, exactly like a RST).
func (p *Proxy) pipe(src, dst net.Conn) {
	defer p.wg.Done()
	defer func() {
		_ = src.Close()
		_ = dst.Close()
		p.mu.Lock()
		delete(p.conns, src)
		delete(p.conns, dst)
		p.mu.Unlock()
	}()
	buf := make([]byte, 4096)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			latency, reset, corruptAt := p.chunkFaults(n)
			if latency > 0 {
				time.Sleep(latency)
			}
			if reset {
				return
			}
			if corruptAt >= 0 {
				buf[corruptAt] ^= 0xA5
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
			p.mu.Lock()
			p.stats.BytesMoved += int64(n)
			p.mu.Unlock()
		}
		if err != nil {
			return // EOF or error: tear down the pair (request/reply protocols redial)
		}
	}
}

// chunkFaults rolls the dice for one forwarded chunk under the lock.
func (p *Proxy) chunkFaults(n int) (latency time.Duration, reset bool, corruptAt int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	latency = p.opts.Latency
	corruptAt = -1
	if p.opts.ResetProb > 0 && p.rng.Float64() < p.opts.ResetProb {
		p.stats.Resets++
		return latency, true, -1
	}
	if p.opts.CorruptProb > 0 && p.rng.Float64() < p.opts.CorruptProb {
		p.stats.Corruptions++
		corruptAt = p.rng.Intn(n)
	}
	return latency, false, corruptAt
}
