package shard

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/health"
	"repro/internal/netfault"
	"repro/internal/oosm"
	"repro/internal/pdme"
	"repro/internal/proto"
	"repro/internal/relstore"
)

// TestMain doubles as the shard-chaos child process: re-executed with
// MPROS_SHARD_CHILD=1, the test binary becomes a journaled shard PDME with a
// summary forwarder attached — a full fleet member the parent test SIGKILLs
// at will. Running the child inside the test binary keeps the harness
// self-contained, and `go test -race ./internal/shard` races the child too.
func TestMain(m *testing.M) {
	if os.Getenv("MPROS_SHARD_CHILD") == "1" {
		shardChildRun()
		return
	}
	os.Exit(m.Run())
}

// shardChildRun is the child body: an in-memory-model PDME with the journal
// open, a forwarder streaming fused conclusions to the aggregator address,
// and the §7 report server on the fixed shard address. It prints READY once
// recovery is done and the listener is up, answers STATUS requests on stdin,
// and otherwise blocks until killed — SIGKILL is the only exit.
func shardChildRun() {
	model, err := oosm.NewModel(relstore.NewMemory())
	if err != nil {
		shardChildFail(err)
	}
	engine, err := pdme.New(model, testGroups())
	if err != nil {
		shardChildFail(err)
	}
	// An aggressive cadence (vs the default) so random kills land
	// mid-checkpoint, not just mid-append.
	if _, err := engine.OpenJournal(pdme.JournalOptions{
		Dir:             os.Getenv("MPROS_SHARD_JOURNAL"),
		CheckpointEvery: 64,
	}); err != nil {
		shardChildFail(err)
	}
	id := os.Getenv("MPROS_SHARD_ID")
	fwd, err := Forward(engine, ForwarderConfig{
		ShardID:        id,
		AggregatorAddr: os.Getenv("MPROS_SHARD_AGG"),
		SpoolDir:       os.Getenv("MPROS_SHARD_FSPOOL"),
		DialTimeout:    500 * time.Millisecond,
		SendTimeout:    2 * time.Second,
		BackoffMin:     10 * time.Millisecond,
		BackoffMax:     80 * time.Millisecond,
		Seed:           int64(hashPair("chaos-child", id)),
	})
	if err != nil {
		shardChildFail(err)
	}
	// Recovery rebuilt conclusions before the subscription existed; resync
	// forwards that recovered state so the aggregator catches up even if no
	// new report arrives after the restart.
	fwd.Resync()
	if _, _, err := engine.Serve(os.Getenv("MPROS_SHARD_ADDR")); err != nil {
		shardChildFail(err)
	}
	fmt.Println("READY")
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		if sc.Text() == "STATUS" {
			fmt.Printf("STATUS received=%d dedup=%d fwdpending=%d fwdboot=%d\n",
				engine.ReceivedReports(), engine.DedupHits(), fwd.Pending(), fwd.Boot())
		}
	}
	select {} // stdin closed: the parent is gone or about to SIGKILL us
}

func shardChildFail(err error) {
	fmt.Fprintln(os.Stderr, "shard child:", err)
	os.Exit(2)
}

// chaosSleep is the harness's single wall-clock wait. The chaos test
// orchestrates real processes and real sockets, so its own pacing is
// inherently wall-clock; everything the FLEET computes stays on virtual
// event time.
func chaosSleep(d time.Duration) {
	//lint:allow noclock chaos harness pacing; fleet state itself is event-time only
	time.Sleep(d)
}

// shardChild manages one child incarnation from the parent side.
type shardChild struct {
	id      string
	addr    string // fixed report address, rebound by every incarnation
	journal string
	fspool  string
	agg     string // aggregator address (shard-7 points at a fault proxy)

	cmd   *exec.Cmd
	stdin io.WriteCloser
	lines chan string
}

// start spawns a fresh child over the same journal/spool dirs and address
// and waits for its READY handshake (recovery finished, listener bound).
func (c *shardChild) start() error {
	cmd := exec.Command(os.Args[0], "-test.run=^$")
	cmd.Env = append(os.Environ(),
		"MPROS_SHARD_CHILD=1",
		"MPROS_SHARD_ID="+c.id,
		"MPROS_SHARD_ADDR="+c.addr,
		"MPROS_SHARD_JOURNAL="+c.journal,
		"MPROS_SHARD_FSPOOL="+c.fspool,
		"MPROS_SHARD_AGG="+c.agg,
	)
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	lines := make(chan string, 256)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			select {
			case lines <- sc.Text():
			default: // never block the child on a full pipe
			}
		}
		close(lines)
	}()
	if _, ok := awaitLine(lines, "READY", 30*time.Second); !ok {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		return fmt.Errorf("shard child %s did not become READY", c.id)
	}
	c.cmd, c.stdin, c.lines = cmd, stdin, lines
	return nil
}

func (c *shardChild) mustStart(t *testing.T) {
	t.Helper()
	if err := c.start(); err != nil {
		t.Fatal(err)
	}
}

// kill SIGKILLs the child — no flush, no checkpoint, no courtesy.
func (c *shardChild) kill() {
	if c.cmd == nil {
		return
	}
	_ = c.cmd.Process.Kill()
	_ = c.cmd.Wait() // reap; error is the expected kill signal
	c.cmd = nil
}

// childStatus is one STATUS round trip.
type childStatus struct {
	received   int
	dedup      int64
	fwdPending int
	fwdBoot    uint64
}

func (c *shardChild) status() (childStatus, error) {
	var st childStatus
	if c.cmd == nil {
		return st, fmt.Errorf("shard child %s not running", c.id)
	}
	if _, err := fmt.Fprintln(c.stdin, "STATUS"); err != nil {
		return st, err
	}
	line, ok := awaitLine(c.lines, "STATUS ", 15*time.Second)
	if !ok {
		return st, fmt.Errorf("shard child %s: no STATUS reply", c.id)
	}
	_, err := fmt.Sscanf(line, "STATUS received=%d dedup=%d fwdpending=%d fwdboot=%d",
		&st.received, &st.dedup, &st.fwdPending, &st.fwdBoot)
	return st, err
}

// awaitLine reads child stdout lines until one has the prefix or the
// timeout elapses.
func awaitLine(lines <-chan string, prefix string, timeout time.Duration) (string, bool) {
	for waited := time.Duration(0); waited < timeout; {
		select {
		case l, ok := <-lines:
			if !ok {
				return "", false
			}
			if strings.HasPrefix(l, prefix) {
				return l, true
			}
		default:
			chaosSleep(10 * time.Millisecond)
			waited += 10 * time.Millisecond
		}
	}
	return "", false
}

// forEachRouter fans fn over the routers with a bounded worker pool.
func forEachRouter(routers []*Router, workers int, fn func(*Router)) {
	ch := make(chan *Router)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range ch {
				fn(r)
			}
		}()
	}
	for _, r := range routers {
		ch <- r
	}
	close(ch)
	wg.Wait()
}

// drainDCs pumps every router until all spools are empty. Each round gives
// a busy router two short flush slices (each followed by a failure-detector
// pump), so DCs pointed at a dead shard accumulate stalls round by round
// and fail over mid-drain, exactly as a real fleet's cadence would drive it.
func drainDCs(t *testing.T, routers []*Router, rounds int) {
	t.Helper()
	for round := 0; round < rounds; round++ {
		// One flush attempt (one Pump) per router per round: stall counts
		// advance at most once per round, so the failover threshold is
		// denominated in drain rounds regardless of how slow the host is
		// (the race detector can stretch a child restart by seconds).
		forEachRouter(routers, 96, func(r *Router) {
			if r.Pending() > 0 {
				_ = r.Flush(1, 250*time.Millisecond)
			}
		})
		pending := 0
		for _, r := range routers {
			pending += r.Pending()
		}
		if pending == 0 {
			return
		}
	}
	var stuck []string
	for _, r := range routers {
		if r.Pending() > 0 {
			stuck = append(stuck, fmt.Sprintf("%s→%s(%d)", r.cfg.DCID, r.Target(), r.Pending()))
			if len(stuck) >= 8 {
				break
			}
		}
	}
	t.Fatalf("DC spools not drained after %d rounds: %v ...", rounds, stuck)
}

// waitChildDrained polls a child's STATUS until its forwarder spool is
// empty — every fused conclusion it holds has been acked by the aggregator.
func waitChildDrained(t *testing.T, c *shardChild, timeout time.Duration) {
	t.Helper()
	for waited := time.Duration(0); ; {
		st, err := c.status()
		if err != nil {
			t.Fatalf("shard %s status: %v", c.id, err)
		}
		if st.fwdPending == 0 {
			return
		}
		if waited >= timeout {
			t.Fatalf("shard %s forwarder still has %d pending after %v", c.id, st.fwdPending, timeout)
		}
		chaosSleep(50 * time.Millisecond)
		waited += 50 * time.Millisecond
	}
}

// globalItemsEqual compares GlobalItem slices field by field: floats must be
// bit-identical (==, no tolerance), times compare as instants.
func globalItemsEqual(t *testing.T, label string, got, want []GlobalItem) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d items, want %d", label, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		same := g.Component == w.Component && g.Condition == w.Condition &&
			g.Group == w.Group && g.Belief == w.Belief &&
			g.Plausibility == w.Plausibility && g.Unknown == w.Unknown &&
			g.Reports == w.Reports && g.Shard == w.Shard &&
			g.ShardState == w.ShardState && g.Reliability == w.Reliability &&
			g.Degraded == w.Degraded && g.TimeToHalf == w.TimeToHalf &&
			g.HasPrognostic == w.HasPrognostic && g.UpdatedAt.Equal(w.UpdatedAt)
		if !same {
			t.Errorf("%s[%d]:\n got %+v\nwant %+v", label, i, g, w)
		}
	}
}

// TestShardChaosFleetFailover is the tentpole acceptance scenario: 1040 DCs
// consistent-hash-routed across 8 shard PDME child processes feeding one
// global aggregator, under randomized kill-9, a netfault partition on one
// shard's upward link, a shard dead to the DCs from t0, and a ring change
// that drains it. Required outcomes:
//
//   - no report loss: every spooled report fuses exactly once at its final
//     shard (counters account for every duplicate and boot epoch)
//   - DCs whose shard is dead fail over to exactly the ring successor; no
//     other DC ever fails over (failover is deliberate, not noise)
//   - while a shard's upward link is partitioned, the global view degrades
//     monotonically toward Unknown and says so (Degraded, coverage)
//   - after heal + drain, the global ranking reconverges BIT-IDENTICALLY to
//     an undisturbed reference fleet, and every surviving shard's recovered
//     journal state is bit-identical to its reference engine
func TestShardChaosFleetFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills an 8-shard fleet of child processes")
	}
	const (
		numDCs    = 1040
		numShards = 8
		numPhases = 4
	)
	conds := []string{"inner race fault", "outer race fault", "imbalance"}
	finalAt := base.Add(time.Duration(numPhases-1) * time.Hour)
	healthCfg := chaosHealthConfig()

	dcids := make([]string, numDCs)
	for i := range dcids {
		dcids[i] = fmt.Sprintf("dc-%04d", i+1)
	}
	reportFor := func(i, phase int) *proto.Report {
		belief := 0.2 + 0.15*float64(phase) + 0.01*float64(i%7)
		return report(dcids[i], "m-"+dcids[i], conds[i%3], belief,
			base.Add(time.Duration(phase)*time.Hour))
	}

	// --- topology -------------------------------------------------------
	// Fixed per-shard report addresses: every child incarnation rebinds its
	// own, so redialing uplinks find restarted shards without help.
	realAddrs := make([]string, numShards)
	for s := range realAddrs {
		realAddrs[s] = reserveAddr(t)
	}
	// shard-8 is dead to the DCs from t0: its ring address is a netfault
	// proxy partitioned before the first report. Its child process still
	// runs (healthy but unreachable) — a true partition, not a crash.
	proxy8, err := netfault.New(realAddrs[7], netfault.Options{Seed: 88})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy8.Close()
	proxy8.SetPartition(true)
	members := make([]Member, numShards)
	for s := 0; s < numShards; s++ {
		members[s] = Member{ID: fmt.Sprintf("shard-%d", s+1), Addr: realAddrs[s]}
	}
	members[7].Addr = proxy8.Addr()

	ring1, err := NewRing(members, dcids)
	if err != nil {
		t.Fatal(err)
	}
	// ring2 is the operator's reaction to the dead shard: shard-8 removed.
	// Built as a separate instance so installing it never mutates the ring
	// the routers are concurrently reading.
	ring2, err := NewRing(members, dcids)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ring2.Remove("shard-8"); err != nil {
		t.Fatal(err)
	}

	agg, err := NewAggregator(AggregatorConfig{Ring: ring1, Health: healthCfg})
	if err != nil {
		t.Fatal(err)
	}
	aggAddr, aggSrv, err := agg.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer aggSrv.Close()
	// shard-7's upward link runs through a second netfault proxy: partition
	// it and the shard keeps fusing for its DCs while the aggregator slowly
	// stops trusting it — the graceful-degradation half of the scenario.
	proxy7, err := netfault.New(aggAddr, netfault.Options{Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy7.Close()

	chaosRoot := t.TempDir()
	children := make([]*shardChild, numShards)
	for s := 0; s < numShards; s++ {
		id := fmt.Sprintf("shard-%d", s+1)
		fwdTarget := aggAddr
		if id == "shard-7" {
			fwdTarget = proxy7.Addr()
		}
		children[s] = &shardChild{
			id:      id,
			addr:    realAddrs[s],
			journal: filepath.Join(chaosRoot, id, "journal"),
			fspool:  filepath.Join(chaosRoot, id, "fwd"),
			agg:     fwdTarget,
		}
		children[s].mustStart(t)
		defer children[s].kill()
	}

	// --- DC fleet -------------------------------------------------------
	routers := make([]*Router, numDCs)
	boots := make([]uint64, numDCs)
	for i := range routers {
		r, err := NewRouter(RouterConfig{
			DCID:        dcids[i],
			Ring:        ring1,
			SpoolDir:    filepath.Join(chaosRoot, "dc", dcids[i]),
			DialTimeout: 300 * time.Millisecond,
			SendTimeout: 700 * time.Millisecond,
			BackoffMin:  5 * time.Millisecond,
			BackoffMax:  30 * time.Millisecond,
			Seed:        int64(1000 + i),
			// Stalls accrue at most one per drain round (see drainDCs), so
			// this is "rounds of continuous no-progress before re-routing":
			// high enough that a kill-and-restart outage (~10-20 rounds under
			// the race detector) never triggers a spurious failover, low
			// enough that the genuinely dead shard's DCs re-route within the
			// phase-0 drain budget.
			FailoverThreshold: 48,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		routers[i] = r
		boots[i] = r.Boot()
	}
	expectSucc := make(map[string]string) // shard-8 DCs → their ring successor
	for _, dc := range dcids {
		if ring1.Assign(dc) == "shard-8" {
			succ, ok := ring1.Successor(dc, map[string]bool{"shard-8": true})
			if !ok {
				t.Fatalf("no successor for %s", dc)
			}
			expectSucc[dc] = succ
		}
	}
	if len(expectSucc) == 0 {
		t.Fatal("no DC assigned to shard-8 — scenario is vacuous")
	}
	// Probe pair for degradation sampling: a DC that lives on shard-7.
	probeComp, probeCond := "", ""
	for i, dc := range dcids {
		if ring1.Assign(dc) == "shard-7" {
			probeComp, probeCond = "m-"+dc, conds[i%3]
			break
		}
	}
	if probeComp == "" {
		t.Fatal("no DC assigned to shard-7")
	}

	// --- chaos phases ---------------------------------------------------
	// Kill-9 schedule: seeded random victims among shards 1..6 (shard-7 is
	// the partition story, shard-8 the dead-shard story), killed mid-drain
	// and restarted over the same journal + forward spool.
	rng := rand.New(rand.NewSource(9001))
	killSchedule := map[int][]int{
		1: {1 + rng.Intn(6), 1 + rng.Intn(6)},
		2: {1 + rng.Intn(6)},
	}
	kills := 0
	var probeSamples []GlobalItem
	for phase := 0; phase < numPhases; phase++ {
		if phase == 2 {
			// The operator removes the dead shard from the ring; DCs that
			// already failed over land exactly where the new ring puts them,
			// so the update must not move anyone.
			for _, r := range routers {
				if r.UpdateRing(ring2) {
					t.Errorf("ring update moved %s to %s — failover and ring removal disagree",
						r.cfg.DCID, r.Target())
				}
			}
			agg.SetRing(ring2)
			// And shard-7's upward link partitions: its DCs keep reporting,
			// its summaries spool, the aggregator's trust in it decays.
			proxy7.SetPartition(true)
		}
		for i := range routers {
			if err := routers[i].Deliver(reportFor(i, phase)); err != nil {
				t.Fatal(err)
			}
		}
		victims := killSchedule[phase]
		delays := make([]time.Duration, len(victims))
		for j := range victims {
			delays[j] = time.Duration(50+rng.Intn(300)) * time.Millisecond
		}
		killErr := make(chan error, 1)
		go func() {
			for j, v := range victims {
				chaosSleep(delays[j])
				children[v-1].kill()
				if err := children[v-1].start(); err != nil {
					killErr <- err
					return
				}
			}
			killErr <- nil
		}()
		drainDCs(t, routers, 200)
		if err := <-killErr; err != nil {
			t.Fatal(err)
		}
		kills += len(victims)
		drainDCs(t, routers, 200) // anything re-spooled around a late kill
		for s := 0; s < numShards; s++ {
			if children[s].id == "shard-7" && phase >= 2 {
				continue // partitioned upward: pending is the point
			}
			waitChildDrained(t, children[s], 60*time.Second)
		}
		if phase >= 1 {
			item, covered := agg.GlobalBelief(probeComp, probeCond)
			if !covered {
				t.Fatalf("phase %d: probe pair %s/%s not covered", phase, probeComp, probeCond)
			}
			probeSamples = append(probeSamples, item)
		}
	}
	if kills != 3 {
		t.Fatalf("chaos schedule performed %d kills, want 3", kills)
	}

	// --- graceful degradation while shard-7 is dark ---------------------
	// Samples are taken after phases 1 (fresh), 2 (1h dark), 3 (2h dark):
	// belief must fall monotonically, unknown must rise monotonically, and
	// the end state must be explicitly labeled.
	for i := 1; i < len(probeSamples); i++ {
		prev, cur := probeSamples[i-1], probeSamples[i]
		if cur.Belief > prev.Belief || cur.Unknown < prev.Unknown {
			t.Errorf("degradation not monotone: sample %d (Bel=%v Unk=%v) → %d (Bel=%v Unk=%v)",
				i-1, prev.Belief, prev.Unknown, i, cur.Belief, cur.Unknown)
		}
	}
	last := probeSamples[len(probeSamples)-1]
	if !(last.Belief < probeSamples[0].Belief) || !(last.Unknown > probeSamples[0].Unknown) {
		t.Errorf("partition caused no degradation: first %+v last %+v", probeSamples[0], last)
	}
	if !last.Degraded || last.ShardState != "silent" {
		t.Errorf("dark shard's pair not labeled: %+v", last)
	}
	if cov := agg.Coverage(); !cov.Degraded {
		t.Errorf("coverage not degraded while shard-7 dark: %+v", cov)
	}

	// --- heal and reconverge --------------------------------------------
	proxy7.SetPartition(false)
	waitChildDrained(t, children[6], 60*time.Second)
	for waited := time.Duration(0); ; {
		cov := agg.Coverage()
		done := !cov.Degraded && cov.ShardsLive == numShards-1
		for _, sc := range cov.Shards {
			done = done && sc.LastUpdated.Equal(finalAt)
		}
		if done {
			break
		}
		if waited > 60*time.Second {
			t.Fatalf("aggregator did not reconverge after heal: %+v", cov)
		}
		chaosSleep(50 * time.Millisecond)
		waited += 50 * time.Millisecond
	}

	// --- per-DC accounting: nothing lost, nothing doubled ---------------
	var totalAcked, totalDedup int64
	for i, r := range routers {
		c := r.Counters()
		if c.Spooled != numPhases || c.Dropped != 0 || c.CapacityDrops != 0 || r.Pending() != 0 {
			t.Errorf("%s: spooled=%d dropped=%d capacity=%d pending=%d, want %d/0/0/0",
				dcids[i], c.Spooled, c.Dropped, c.CapacityDrops, r.Pending(), numPhases)
		}
		if c.Acked+c.DedupAcks != numPhases {
			t.Errorf("%s: acked=%d dup=%d, want sum %d (a report retired twice or never)",
				dcids[i], c.Acked, c.DedupAcks, numPhases)
		}
		totalAcked += c.Acked
		totalDedup += c.DedupAcks
		if r.Boot() != boots[i] {
			t.Errorf("%s: boot epoch moved %d→%d across failovers", dcids[i], boots[i], r.Boot())
		}
		st := r.Stats()
		if succ, dead := expectSucc[dcids[i]]; dead {
			if st.Failovers != 1 || r.Target() != succ {
				t.Errorf("%s: failovers=%d target=%s, want exactly 1 failover to %s",
					dcids[i], st.Failovers, r.Target(), succ)
			}
			if st.PerShard["shard-8"] != 0 {
				t.Errorf("%s: %d reports acked by the partitioned shard", dcids[i], st.PerShard["shard-8"])
			}
		} else if st.Failovers != 0 {
			t.Errorf("%s: %d spurious failovers (target %s)", dcids[i], st.Failovers, r.Target())
		}
	}

	// --- undisturbed reference fleet ------------------------------------
	// In-process shard engines over the final ring, every report delivered
	// in the same per-DC order, forwarded to a reference aggregator through
	// the same forwarder code path. This is the run the chaos fleet must be
	// indistinguishable from.
	refEngines := make(map[string]*pdme.PDME, numShards)
	for s := 1; s <= numShards; s++ {
		model, err := oosm.NewModel(relstore.NewMemory())
		if err != nil {
			t.Fatal(err)
		}
		engine, err := pdme.New(model, testGroups())
		if err != nil {
			t.Fatal(err)
		}
		defer engine.Close()
		refEngines[fmt.Sprintf("shard-%d", s)] = engine
	}
	for i, dc := range dcids {
		owner := ring2.Assign(dc)
		for phase := 0; phase < numPhases; phase++ {
			if err := refEngines[owner].DeliverTagged(reportFor(i, phase), dc, 1, uint64(phase+1)); err != nil {
				t.Fatal(err)
			}
		}
	}
	refAgg, err := NewAggregator(AggregatorConfig{Ring: ring2, Health: healthCfg})
	if err != nil {
		t.Fatal(err)
	}
	refAddr, refSrv, err := refAgg.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer refSrv.Close()
	for s := 1; s <= numShards; s++ {
		id := fmt.Sprintf("shard-%d", s)
		fwd, err := Forward(refEngines[id], ForwarderConfig{
			ShardID:        id,
			AggregatorAddr: refAddr,
			DialTimeout:    time.Second,
			SendTimeout:    5 * time.Second,
			Seed:           int64(s),
		})
		if err != nil {
			t.Fatal(err)
		}
		fwd.Resync()
		if err := fwd.Flush(30 * time.Second); err != nil {
			t.Fatal(err)
		}
		if err := fwd.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// --- bit-identical global reconvergence -----------------------------
	globalItemsEqual(t, "GlobalRanked", agg.GlobalRanked(), refAgg.GlobalRanked())
	cov, refCov := agg.Coverage(), refAgg.Coverage()
	if cov.RingVersion != refCov.RingVersion || cov.ShardsTotal != refCov.ShardsTotal ||
		cov.ShardsLive != refCov.ShardsLive || cov.Degraded || refCov.Degraded ||
		cov.HeldPairs != refCov.HeldPairs {
		t.Errorf("coverage diverged:\n got %+v\nwant %+v", cov, refCov)
	}
	for i := range cov.Shards {
		g, w := cov.Shards[i], refCov.Shards[i]
		if g.ID != w.ID || g.State != w.State || g.InRing != w.InRing ||
			g.Components != w.Components || g.Reliability != w.Reliability {
			t.Errorf("shard coverage[%d] diverged:\n got %+v\nwant %+v", i, g, w)
		}
	}

	// --- surviving shards bit-identical after a final kill-9 ------------
	// SIGKILL every child, recover each journal in-process (exactly what the
	// next pdmed boot would do), and compare against the reference engines.
	totalReceived := 0
	var childDedup int64
	for s := 0; s < numShards; s++ {
		st, err := children[s].status()
		if err != nil {
			t.Fatal(err)
		}
		childDedup += st.dedup
		children[s].kill()
		model, err := oosm.NewModel(relstore.NewMemory())
		if err != nil {
			t.Fatal(err)
		}
		rec, err := pdme.New(model, testGroups())
		if err != nil {
			t.Fatal(err)
		}
		defer rec.Close()
		stats, err := rec.OpenJournal(pdme.JournalOptions{Dir: children[s].journal})
		if err != nil {
			t.Fatal(err)
		}
		if stats.SkippedRecords != 0 {
			t.Errorf("%s: %d journal records skipped on recovery", children[s].id, stats.SkippedRecords)
		}
		totalReceived += rec.ReceivedReports()
		ref := refEngines[children[s].id]
		t.Logf("%s: live received=%d recovered=%d reference=%d (ckpt=%v@%d replayed=%d)",
			children[s].id, st.received, rec.ReceivedReports(), ref.ReceivedReports(),
			stats.CheckpointLoaded, stats.CheckpointSeq, stats.ReportsReplayed)
		if got, want := rec.PrioritizedList(), ref.PrioritizedList(); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: recovered prioritized list diverges from reference\n got %+v\nwant %+v",
				children[s].id, got, want)
		}
	}
	if totalReceived != numDCs*numPhases {
		t.Errorf("fleet fused %d reports, delivered %d (loss or double fusion)",
			totalReceived, numDCs*numPhases)
	}
	t.Logf("kills=%d failed-over DCs=%d dc acks=%d dc dup-acks=%d shard dedup hits=%d agg accepted=%d stale=%d dup=%d",
		kills, len(expectSucc), totalAcked, totalDedup, childDedup,
		agg.Accepted(), agg.StaleDropped(), agg.DedupHits())
}

// chaosHealthConfig is the aggregator's shard-liveness policy for the chaos
// scenario: on the 1-hour phase cadence a shard goes late after 30 virtual
// minutes of silence, silent after an hour, and its evidence decays from
// 30 minutes of age to a floor of zero at 4 hours.
func chaosHealthConfig() health.Config {
	return health.Config{
		LateAfter:        30 * time.Minute,
		SilentAfter:      time.Hour,
		FreshFor:         30 * time.Minute,
		StalenessHorizon: 4 * time.Hour,
	}
}
