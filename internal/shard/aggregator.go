package shard

import (
	"errors"
	"sort"
	"sync"
	"time"

	"repro/internal/fusion"
	"repro/internal/health"
	"repro/internal/proto"
)

// DefaultDedupWindow bounds the aggregator's per-shard duplicate window.
const DefaultDedupWindow = 4096

// AggregatorConfig parametrizes the global tier.
type AggregatorConfig struct {
	// Ring supplies membership for coverage accounting (optional: without
	// it coverage is computed over observed shards only).
	Ring *Ring
	// Health parametrizes the per-shard liveness registry. Leave Clock nil
	// to run on event time (deterministic simulations); point it at
	// time.Now for wall-clock operation. FreshFor/StalenessHorizon set how
	// fast a silent shard's contribution decays toward Unknown.
	Health health.Config
	// DedupWindow bounds the per-shard duplicate-suppression window
	// (0: DefaultDedupWindow).
	DedupWindow int
}

// heldSummary is the newest accepted summary for one pair with its wire tag.
type heldSummary struct {
	s         proto.FusedSummary
	shard     string
	boot, seq uint64
}

// Aggregator is the global PDME tier: it accepts FusedSummary envelopes
// from shard PDMEs (latest-wins per (component, condition), ordered by
// event time), tracks per-shard liveness with the same health registry the
// shards use for DCs, and serves a globally ranked maintenance view in
// which a lost shard's contributions are Shafer-discounted toward Unknown
// — monotone graceful degradation, never an error and never a lie about
// freshness.
//
// Acceptance is arrival-order independent: replays, redeliveries after
// failover, and interleavings across shards all converge to the same held
// state, because the ordering key (UpdatedAt, then shard id, then
// boot/seq) rides the data, not the clock.
type Aggregator struct {
	mu    sync.Mutex
	ring  *Ring
	reg   *health.Registry
	dedup *proto.Dedup
	// held maps component → condition → newest summary.
	held map[string]map[string]*heldSummary
	// accepted/stale count DeliverSummary outcomes; rejectedReports counts
	// raw report frames refused (aggregators speak summary only).
	accepted        int64
	stale           int64
	rejectedReports int64
}

// NewAggregator builds the global tier.
func NewAggregator(cfg AggregatorConfig) (*Aggregator, error) {
	reg, err := health.NewRegistry(cfg.Health)
	if err != nil {
		return nil, err
	}
	window := cfg.DedupWindow
	if window <= 0 {
		window = DefaultDedupWindow
	}
	return &Aggregator{
		ring:  cfg.Ring,
		reg:   reg,
		dedup: proto.NewDedup(window),
		held:  make(map[string]map[string]*heldSummary),
	}, nil
}

// DeliverSummary implements proto.SummarySink: newest summary per pair
// wins, with (UpdatedAt, shard id, boot/seq) as the deterministic order.
// Older frames are counted stale and acked — the sender must retire them,
// and accepting them would reorder history.
func (a *Aggregator) DeliverSummary(s *proto.FusedSummary, shardID string, boot, seq uint64) error {
	if shardID == "" {
		shardID = s.ShardID
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	// Any summary is liveness evidence, stale or not; the registry runs on
	// the summary's event time, so replays never advance the watermark
	// beyond what the evidence supports.
	a.reg.ObserveReport(shardID, "", s.UpdatedAt)
	byCond := a.held[s.Component]
	if byCond == nil {
		byCond = make(map[string]*heldSummary)
		a.held[s.Component] = byCond
	}
	cur := byCond[s.Condition]
	if cur != nil && !a.newer(s, shardID, boot, seq, cur) {
		a.stale++
		return nil
	}
	byCond[s.Condition] = &heldSummary{s: *s, shard: shardID, boot: boot, seq: seq}
	a.accepted++
	return nil
}

// newer reports whether the incoming summary supersedes the held one.
func (a *Aggregator) newer(s *proto.FusedSummary, shardID string, boot, seq uint64, cur *heldSummary) bool {
	switch {
	case s.UpdatedAt.After(cur.s.UpdatedAt):
		return true
	case cur.s.UpdatedAt.After(s.UpdatedAt):
		return false
	case shardID != cur.shard:
		// Same event time from two shards (a failover handed the pair's
		// final state to a successor that re-fused identically): pick the
		// lexicographically larger shard so every arrival order converges.
		return shardID > cur.shard
	default:
		// Same shard, same event time: a later spool write (or a new boot)
		// re-asserts the same state; keep the newest tag.
		return boot != cur.boot || seq >= cur.seq
	}
}

// Deliver implements proto.Sink by refusing: pointing a DC uplink at an
// aggregator is a topology error that must fail loudly, not fuse raw
// reports at the wrong tier.
func (a *Aggregator) Deliver(*proto.Report) error {
	a.mu.Lock()
	a.rejectedReports++
	a.mu.Unlock()
	return errors.New("shard: aggregator accepts fused summaries, not raw reports (route the DC to a shard PDME)")
}

// ObserveHeartbeat implements proto.HeartbeatSink for shard heartbeats.
func (a *Aggregator) ObserveHeartbeat(hb *proto.Heartbeat) error {
	return a.reg.ObserveHeartbeat(hb)
}

// Serve starts a summary server for shard uplinks: dedup window, summary
// sink, and heartbeat sink wired; raw reports rejected.
func (a *Aggregator) Serve(addr string) (string, *proto.Server, error) {
	srv := proto.NewServer(a)
	srv.SetDedup(a.dedup)
	srv.SetSummarySink(a)
	srv.SetHeartbeatSink(a)
	bound, err := srv.Start(addr)
	if err != nil {
		return "", nil, err
	}
	return bound, srv, nil
}

// Health exposes the per-shard liveness registry.
func (a *Aggregator) Health() *health.Registry { return a.reg }

// DedupHits returns how many duplicate summary deliveries the window
// suppressed.
func (a *Aggregator) DedupHits() int64 { return a.dedup.Hits() }

// SetRing installs a new ring generation for coverage accounting.
func (a *Aggregator) SetRing(r *Ring) {
	a.mu.Lock()
	a.ring = r
	a.mu.Unlock()
}

// GlobalItem is one row of the aggregator's global prioritized list: the
// owning shard's fused state, Shafer-discounted by that shard's current
// liveness, with provenance and degradation made explicit.
type GlobalItem struct {
	Component    string
	Condition    string
	Group        string
	Belief       float64
	Plausibility float64
	Unknown      float64
	Reports      int
	// Shard names the contributing shard; ShardState is its liveness at
	// query time.
	Shard      string
	ShardState string
	// Reliability is the shard-level discount α times the shard's own
	// source-level reliability; Degraded is true when either tier
	// discounted.
	Reliability float64
	Degraded    bool
	// TimeToHalf is the fused time to 50% failure probability
	// (HasPrognostic false when the pair has no vector).
	TimeToHalf    time.Duration
	HasPrognostic bool
	UpdatedAt     time.Time
}

// prognosticHorizon matches pdme.PrioritizedList's ranking horizon.
const prognosticHorizon = 2 * 365 * 24 * time.Hour

// globalItemLocked builds one discounted row. Caller holds a.mu.
func (a *Aggregator) globalItemLocked(h *heldSummary) GlobalItem {
	alpha := a.reg.Reliability(h.shard, h.s.UpdatedAt)
	b, pl, u := fusion.DiscountSummary(h.s.Belief, h.s.Plausibility, h.s.Unknown, alpha)
	item := GlobalItem{
		Component:    h.s.Component,
		Condition:    h.s.Condition,
		Group:        h.s.Group,
		Belief:       b,
		Plausibility: pl,
		Unknown:      u,
		Reports:      h.s.Reports,
		Shard:        h.shard,
		ShardState:   a.reg.StateOf(h.shard).String(),
		Reliability:  alpha * h.s.Reliability,
		Degraded:     h.s.Degraded || alpha < 1-1e-9,
		UpdatedAt:    h.s.UpdatedAt,
	}
	if d, ok := h.s.Prognostics.TimeToProbability(0.5, prognosticHorizon); ok {
		item.TimeToHalf = d
		item.HasPrognostic = true
	}
	return item
}

// GlobalRanked returns every held pair, discounted, ranked most-urgent
// first with exactly pdme.PrioritizedList's order (belief desc, then
// prognostic urgency, then component/condition) — so a one-shard fleet's
// global list is bit-identical to that shard's own list when the shard is
// fresh.
func (a *Aggregator) GlobalRanked() []GlobalItem {
	a.mu.Lock()
	defer a.mu.Unlock()
	components := make([]string, 0, len(a.held))
	//lint:allow maporder component names are sorted before the list is assembled
	for component := range a.held {
		components = append(components, component)
	}
	sort.Strings(components)
	var out []GlobalItem
	for _, component := range components {
		byCond := a.held[component]
		conds := make([]string, 0, len(byCond))
		//lint:allow maporder condition names are sorted before the list is assembled
		for cond := range byCond {
			conds = append(conds, cond)
		}
		sort.Strings(conds)
		for _, cond := range conds {
			out = append(out, a.globalItemLocked(byCond[cond]))
		}
	}
	sort.Slice(out, func(i, j int) bool {
		x, y := out[i], out[j]
		//lint:allow floateq sort tie-break needs a strict weak order; a tolerance would make it intransitive
		if x.Belief != y.Belief {
			return x.Belief > y.Belief
		}
		switch {
		case x.HasPrognostic && y.HasPrognostic && x.TimeToHalf != y.TimeToHalf:
			return x.TimeToHalf < y.TimeToHalf
		case x.HasPrognostic != y.HasPrognostic:
			return x.HasPrognostic
		}
		if x.Component != y.Component {
			return x.Component < y.Component
		}
		return x.Condition < y.Condition
	})
	return out
}

// GlobalBelief returns one pair's discounted global state. Unknown pairs
// return a vacuous row with covered false — a partial answer, never an
// error: the caller learns "no shard has concluded on this" plus current
// coverage, exactly the graceful-degradation contract.
func (a *Aggregator) GlobalBelief(component, condition string) (GlobalItem, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if byCond := a.held[component]; byCond != nil {
		if h := byCond[condition]; h != nil {
			return a.globalItemLocked(h), true
		}
	}
	return GlobalItem{
		Component:    component,
		Condition:    condition,
		Plausibility: 1,
		Unknown:      1,
	}, false
}

// ShardCoverage is one shard's slice of the coverage report.
type ShardCoverage struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// InRing is false for shards still reporting after being removed from
	// the ring (drain in progress).
	InRing bool `json:"in_ring"`
	// Components counts distinct components whose newest summary this
	// shard owns.
	Components int `json:"components"`
	// Reliability is the shard-level discount α at its newest evidence.
	Reliability float64   `json:"reliability"`
	LastUpdated time.Time `json:"last_updated,omitempty"`
}

// CoverageReport is the aggregator's per-shard metadata, attached to every
// serving response so partial views are labeled, not silent.
type CoverageReport struct {
	RingVersion  uint64          `json:"ring_version,omitempty"`
	ShardsTotal  int             `json:"shards_total"`
	ShardsLive   int             `json:"shards_live"`
	Degraded     bool            `json:"degraded"`
	Shards       []ShardCoverage `json:"shards"`
	HeldPairs    int             `json:"held_pairs"`
	StaleDropped int64           `json:"stale_dropped"`
}

// Coverage reports per-shard liveness and ownership, sorted by shard id.
func (a *Aggregator) Coverage() CoverageReport {
	a.mu.Lock()
	defer a.mu.Unlock()
	inRing := make(map[string]bool)
	if a.ring != nil {
		for _, m := range a.ring.Members() {
			inRing[m.ID] = true
		}
	}
	// Per shard: components owned and newest update.
	type shardAgg struct {
		components map[string]bool
		newest     time.Time
	}
	byShard := make(map[string]*shardAgg)
	pairs := 0
	//lint:allow maporder aggregation only; output is sorted below
	for component, byCond := range a.held {
		//lint:allow maporder aggregation only; output is sorted below
		for _, h := range byCond {
			pairs++
			sa := byShard[h.shard]
			if sa == nil {
				sa = &shardAgg{components: make(map[string]bool)}
				byShard[h.shard] = sa
			}
			sa.components[component] = true
			if h.s.UpdatedAt.After(sa.newest) {
				sa.newest = h.s.UpdatedAt
			}
		}
	}
	ids := make(map[string]bool, len(byShard)+len(inRing))
	//lint:allow maporder id set union; sorted below
	for id := range byShard {
		ids[id] = true
	}
	//lint:allow maporder id set union; sorted below
	for id := range inRing {
		ids[id] = true
	}
	sorted := make([]string, 0, len(ids))
	//lint:allow maporder collected then sorted
	for id := range ids {
		sorted = append(sorted, id)
	}
	sort.Strings(sorted)
	rep := CoverageReport{ShardsTotal: len(sorted), StaleDropped: a.stale, HeldPairs: pairs}
	if a.ring != nil {
		rep.RingVersion = a.ring.Version()
	}
	for _, id := range sorted {
		sc := ShardCoverage{ID: id, State: a.reg.StateOf(id).String(), InRing: inRing[id], Reliability: 1}
		if sa := byShard[id]; sa != nil {
			sc.Components = len(sa.components)
			sc.LastUpdated = sa.newest
			sc.Reliability = a.reg.Reliability(id, sa.newest)
		}
		if sc.State == "alive" {
			rep.ShardsLive++
		} else {
			rep.Degraded = true
		}
		if sc.Reliability < 1-1e-9 {
			rep.Degraded = true
		}
		rep.Shards = append(rep.Shards, sc)
	}
	return rep
}

// Accepted returns how many summaries were accepted as newest-so-far.
func (a *Aggregator) Accepted() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.accepted
}

// StaleDropped returns how many delivered summaries were older than the
// held state and discarded (acked but not applied).
func (a *Aggregator) StaleDropped() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stale
}

// RejectedReports returns how many raw report frames were refused.
func (a *Aggregator) RejectedReports() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.rejectedReports
}
