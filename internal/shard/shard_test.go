package shard

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/fusion"
	"repro/internal/health"
	"repro/internal/oosm"
	"repro/internal/pdme"
	"repro/internal/proto"
	"repro/internal/relstore"
)

// base is the fixture's virtual epoch (the paper's PDME first ran 1998-08).
var base = time.Date(1998, 8, 1, 0, 0, 0, 0, time.UTC)

func testGroups() fusion.Groups {
	return fusion.Groups{
		"bearing": {"inner race fault", "outer race fault"},
		"motor":   {"imbalance"},
	}
}

func report(dc, component, condition string, belief float64, at time.Time) *proto.Report {
	return &proto.Report{
		DCID:               dc,
		KnowledgeSourceID:  "ks-" + dc,
		SensedObjectID:     component,
		MachineConditionID: condition,
		Severity:           belief,
		Belief:             belief,
		Timestamp:          at,
	}
}

func summary(shardID, component, condition string, belief float64, at time.Time) *proto.FusedSummary {
	return &proto.FusedSummary{
		ShardID:      shardID,
		Component:    component,
		Condition:    condition,
		Group:        "bearing",
		Belief:       belief,
		Plausibility: belief + 0.1,
		Unknown:      1 - belief,
		Reports:      1,
		Reliability:  1,
		UpdatedAt:    at,
	}
}

// sinkCounter counts reports per server, thread-safe.
type sinkCounter struct {
	mu sync.Mutex
	n  int
}

func (s *sinkCounter) Deliver(*proto.Report) error {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	return nil
}

func (s *sinkCounter) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

func reserveAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func fastRouterConfig(dcid string, ring *Ring, dir string) RouterConfig {
	return RouterConfig{
		DCID:              dcid,
		Ring:              ring,
		SpoolDir:          dir,
		DialTimeout:       500 * time.Millisecond,
		SendTimeout:       time.Second,
		BackoffMin:        5 * time.Millisecond,
		BackoffMax:        25 * time.Millisecond,
		Seed:              7,
		FailoverThreshold: 2,
	}
}

// TestRouterFailsOverToRingSuccessor: the router's stall detector must
// re-route a DC to exactly the member Ring.Successor names, keep the spool
// across the swap, and deliver every report exactly once.
func TestRouterFailsOverToRingSuccessor(t *testing.T) {
	deadAddr := reserveAddr(t) // reserved then closed: dials fail fast
	liveSinks := map[string]*sinkCounter{}
	members := []Member{{ID: "shard-1", Addr: deadAddr}}
	for i := 2; i <= 3; i++ {
		id := fmt.Sprintf("shard-%d", i)
		sink := &sinkCounter{}
		srv := proto.NewServer(sink)
		srv.SetDedup(proto.NewDedup(0))
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		liveSinks[id] = sink
		members = append(members, Member{ID: id, Addr: addr})
	}
	// Pick a DC the ring assigns to the dead shard-1.
	var dcid string
	for i := 1; i < 100; i++ {
		k := fmt.Sprintf("dc-%04d", i)
		if r, _ := NewRing(members, []string{k}); r.Assign(k) == "shard-1" {
			dcid = k
			break
		}
	}
	if dcid == "" {
		t.Fatal("no key maps to shard-1")
	}
	ring, err := NewRing(members, []string{dcid})
	if err != nil {
		t.Fatal(err)
	}
	succ, ok := ring.Successor(dcid, map[string]bool{"shard-1": true})
	if !ok {
		t.Fatal("no successor")
	}

	r, err := NewRouter(fastRouterConfig(dcid, ring, t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Target() != "shard-1" {
		t.Fatalf("initial target %s, want shard-1", r.Target())
	}
	boot := r.Boot()
	for i := 0; i < 4; i++ {
		if err := r.Deliver(report(dcid, "m", "imbalance", 0.6, base.Add(time.Duration(i)*time.Minute))); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Flush(40, 250*time.Millisecond); err != nil {
		t.Fatalf("flush never drained across failover: %v (target %s)", err, r.Target())
	}
	if got := r.Target(); got != succ {
		t.Fatalf("failed over to %s, ring successor is %s", got, succ)
	}
	if r.Boot() != boot {
		t.Fatalf("boot changed across failover: %d → %d", boot, r.Boot())
	}
	stats := r.Stats()
	if stats.Failovers != 1 {
		t.Fatalf("failovers %d, want 1", stats.Failovers)
	}
	if got := liveSinks[succ].count(); got != 4 {
		t.Fatalf("successor fused %d reports, want 4", got)
	}
	c := r.Counters()
	if c.Acked+c.DedupAcks != 4 || c.CapacityDrops != 0 {
		t.Fatalf("counters %+v: want 4 acks, 0 capacity drops", c)
	}
	if stats.PerShard[succ] != 4 {
		t.Fatalf("per-shard routing counters %v: want 4 on %s", stats.PerShard, succ)
	}
}

// TestRouterUpdateRing: an operator ring change retargets immediately (no
// stall needed), keeps the spool, and counts as a ring update rather than
// a failover.
func TestRouterUpdateRing(t *testing.T) {
	sinks := map[string]*sinkCounter{}
	var members []Member
	for i := 1; i <= 2; i++ {
		id := fmt.Sprintf("shard-%d", i)
		sink := &sinkCounter{}
		srv := proto.NewServer(sink)
		srv.SetDedup(proto.NewDedup(0))
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		sinks[id] = sink
		members = append(members, Member{ID: id, Addr: addr})
	}
	dcid := "dc-0001"
	ring, err := NewRing(members, []string{dcid})
	if err != nil {
		t.Fatal(err)
	}
	first := ring.Assign(dcid)
	r, err := NewRouter(fastRouterConfig(dcid, ring, t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Deliver(report(dcid, "m", "imbalance", 0.6, base)); err != nil {
		t.Fatal(err)
	}
	if err := r.Flush(10, 250*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	ring2, err := NewRing(members, []string{dcid})
	if err != nil {
		t.Fatal(err)
	}
	moved, err := ring2.Remove(first)
	if err != nil {
		t.Fatal(err)
	}
	if len(moved) != 1 || moved[0] != dcid {
		t.Fatalf("moved %v, want [%s]", moved, dcid)
	}
	if !r.UpdateRing(ring2) {
		t.Fatal("UpdateRing did not retarget")
	}
	second := ring2.Assign(dcid)
	if second == first || r.Target() != second {
		t.Fatalf("target %s, want new owner %s (was %s)", r.Target(), second, first)
	}
	if err := r.Deliver(report(dcid, "m", "imbalance", 0.7, base.Add(time.Hour))); err != nil {
		t.Fatal(err)
	}
	if err := r.Flush(10, 250*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if sinks[first].count() != 1 || sinks[second].count() != 1 {
		t.Fatalf("per-shard deliveries: %s=%d %s=%d, want 1 and 1",
			first, sinks[first].count(), second, sinks[second].count())
	}
	stats := r.Stats()
	if stats.RingUpdates != 1 || stats.Failovers != 0 {
		t.Fatalf("stats %+v: want 1 ring update, 0 failovers", stats)
	}
}

// TestAggregatorLatestWinsAnyOrder: delivery order must not matter — any
// permutation of the same summary set converges to the same held state,
// with older frames counted stale.
func TestAggregatorLatestWinsAnyOrder(t *testing.T) {
	frames := []*proto.FusedSummary{
		summary("shard-1", "m1", "outer race fault", 0.3, base),
		summary("shard-1", "m1", "outer race fault", 0.6, base.Add(time.Hour)),
		summary("shard-2", "m1", "outer race fault", 0.9, base.Add(2*time.Hour)),
		summary("shard-2", "m2", "imbalance", 0.5, base.Add(time.Hour)),
	}
	orders := [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}}
	var ref []GlobalItem
	for _, order := range orders {
		a, err := NewAggregator(AggregatorConfig{})
		if err != nil {
			t.Fatal(err)
		}
		for i, idx := range order {
			if err := a.DeliverSummary(frames[idx], frames[idx].ShardID, 1, uint64(i+1)); err != nil {
				t.Fatal(err)
			}
		}
		got := a.GlobalRanked()
		if len(got) != 2 {
			t.Fatalf("order %v: %d rows, want 2", order, len(got))
		}
		if got[0].Belief != 0.9 || got[0].Shard != "shard-2" {
			t.Fatalf("order %v: head %+v, want shard-2 belief 0.9", order, got[0])
		}
		if ref == nil {
			ref = got
			continue
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("order %v row %d: %+v != %+v", order, i, got[i], ref[i])
			}
		}
	}
}

// TestAggregatorDegradesMonotonically: as other shards' evidence advances
// event time while one shard stays silent, the silent shard's belief falls
// and its Unknown rises — monotonically, ending in a degraded, covered,
// never-erroring view.
func TestAggregatorDegradesMonotonically(t *testing.T) {
	a, err := NewAggregator(AggregatorConfig{Health: health.Config{
		LateAfter:        30 * time.Minute,
		SilentAfter:      time.Hour,
		FreshFor:         time.Hour,
		StalenessHorizon: 6 * time.Hour,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.DeliverSummary(summary("shard-1", "m1", "outer race fault", 0.8, base), "shard-1", 1, 1); err != nil {
		t.Fatal(err)
	}
	item, ok := a.GlobalBelief("m1", "outer race fault")
	if !ok || item.Belief != 0.8 || item.Degraded {
		t.Fatalf("fresh item %+v, want covered, belief 0.8, undegraded", item)
	}
	prev := item
	for h := 1; h <= 8; h++ {
		at := base.Add(time.Duration(h) * time.Hour)
		if err := a.DeliverSummary(summary("shard-2", "m2", "imbalance", 0.5, at), "shard-2", 1, uint64(h)); err != nil {
			t.Fatal(err)
		}
		item, ok = a.GlobalBelief("m1", "outer race fault")
		if !ok {
			t.Fatalf("hour %d: pair lost coverage", h)
		}
		if item.Belief > prev.Belief || item.Unknown < prev.Unknown {
			t.Fatalf("hour %d: degradation not monotone: %+v after %+v", h, item, prev)
		}
		prev = item
	}
	if !prev.Degraded || prev.Belief >= 0.8 || prev.Unknown <= 0.2 {
		t.Fatalf("after 8h silence: %+v, want degraded with belief sunk and unknown risen", prev)
	}
	cov := a.Coverage()
	if !cov.Degraded || cov.ShardsTotal != 2 {
		t.Fatalf("coverage %+v: want degraded, 2 shards", cov)
	}
	// A vacuous answer for an unknown pair is a partial result, not an error.
	vac, ok := a.GlobalBelief("m9", "imbalance")
	if ok || vac.Unknown != 1 || vac.Plausibility != 1 {
		t.Fatalf("unknown pair: %+v ok=%v, want vacuous covered=false", vac, ok)
	}
}

// TestAggregatorRejectsRawReports: topology errors fail loudly.
func TestAggregatorRejectsRawReports(t *testing.T) {
	a, err := NewAggregator(AggregatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Deliver(report("dc-1", "m", "imbalance", 0.5, base)); err == nil {
		t.Fatal("aggregator accepted a raw report")
	}
	if a.RejectedReports() != 1 {
		t.Fatalf("rejected count %d, want 1", a.RejectedReports())
	}
}

// TestForwarderMirrorsShardState: a shard engine's fused conclusions must
// arrive at the aggregator bit-identical — same belief, plausibility,
// unknown, prognostics, and event time — and the single-shard global
// ranking must equal the shard's own prioritized list.
func TestForwarderMirrorsShardState(t *testing.T) {
	model, err := oosm.NewModel(relstore.NewMemory())
	if err != nil {
		t.Fatal(err)
	}
	engine, err := pdme.New(model, testGroups())
	if err != nil {
		t.Fatal(err)
	}
	defer engine.Close()

	agg, err := NewAggregator(AggregatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	addr, srv, err := agg.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	fwd, err := Forward(engine, ForwarderConfig{
		ShardID:        "shard-1",
		AggregatorAddr: addr,
		BackoffMin:     5 * time.Millisecond,
		BackoffMax:     25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fwd.Close()

	for i, rep := range []*proto.Report{
		report("dc-1", "m1", "outer race fault", 0.7, base),
		report("dc-2", "m1", "outer race fault", 0.5, base.Add(time.Minute)),
		report("dc-3", "m2", "imbalance", 0.9, base.Add(2*time.Minute)),
	} {
		if err := engine.DeliverTagged(rep, rep.DCID, 1, uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fwd.Flush(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	fc := fwd.Counters()
	if fc.Forwarded == 0 || fc.Errors != 0 {
		t.Fatalf("forwarder counters %+v", fc)
	}

	local := engine.PrioritizedList()
	global := agg.GlobalRanked()
	if len(global) != len(local) {
		t.Fatalf("global %d rows, local %d", len(global), len(local))
	}
	for i, l := range local {
		g := global[i]
		cs, _, err := engine.ConditionSnapshot(l.Component, l.Condition)
		if err != nil {
			t.Fatal(err)
		}
		if g.Component != l.Component || g.Condition != l.Condition {
			t.Fatalf("row %d: global (%s,%s) != local (%s,%s)", i, g.Component, g.Condition, l.Component, l.Condition)
		}
		if g.Belief != cs.Belief || g.Plausibility != cs.Plausibility || g.Unknown != cs.Unknown {
			t.Fatalf("row %d: global (%g,%g,%g) != shard (%g,%g,%g)",
				i, g.Belief, g.Plausibility, g.Unknown, cs.Belief, cs.Plausibility, cs.Unknown)
		}
		if g.Degraded || g.Reliability != 1 {
			t.Fatalf("row %d: fresh single shard must be undegraded: %+v", i, g)
		}
		if g.HasPrognostic != l.HasPrognostic || g.TimeToHalf != l.TimeToHalf {
			t.Fatalf("row %d: prognostic mismatch: global %v/%v local %v/%v",
				i, g.HasPrognostic, g.TimeToHalf, l.HasPrognostic, l.TimeToHalf)
		}
		at, ok := engine.ConclusionUpdatedAt(l.Component, l.Condition)
		if !ok || !g.UpdatedAt.Equal(at) {
			t.Fatalf("row %d: updated_at %v != conclusion %v (ok=%v)", i, g.UpdatedAt, at, ok)
		}
	}

	// Resync after an aggregator wipe: a fresh aggregator catches up from
	// the shard's current state without any new reports.
	srv.Close()
	agg2, err := NewAggregator(AggregatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	addr2, srv2, err := agg2.Serve(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if addr2 != addr {
		t.Fatalf("rebind moved: %s != %s", addr2, addr)
	}
	if n := fwd.Resync(); n != len(local) {
		t.Fatalf("resync forwarded %d pairs, want %d", n, len(local))
	}
	if err := fwd.Flush(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	global2 := agg2.GlobalRanked()
	if len(global2) != len(global) {
		t.Fatalf("resynced aggregator has %d rows, want %d", len(global2), len(global))
	}
	for i := range global {
		if global2[i] != global[i] {
			t.Fatalf("row %d after resync: %+v != %+v", i, global2[i], global[i])
		}
	}
}
