// Package shard is the hierarchical fleet-of-fleets tier: it partitions a
// large DC population across many shard PDMEs with a deterministic
// consistent-hash ring (ring.go), routes each DC's uplink to its assigned
// shard with automatic failover to the ring successor (router.go), forwards
// each shard's fused conclusions upward as proto.FusedSummary envelopes over
// the ordinary uplink machinery (forwarder.go), and fuses those summaries
// into a global prioritized view with per-shard coverage and staleness
// discounting (aggregator.go). It is Palem's ship→regional→global CBM
// hierarchy (PAPERS.md) built from the paper's single-station parts.
//
// The package is deterministic by construction and linted as such (noclock,
// maporder): it never reads a wall clock, never sleeps, and never iterates
// an unordered map into an output. All waiting happens inside
// internal/uplink; all timestamps arrive as arguments or ride the data.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Member is one shard PDME in the ring.
type Member struct {
	// ID names the shard (it becomes the wire-level sender identity of the
	// shard's own uplink to the aggregator).
	ID string
	// Addr is the shard PDME's report-server address.
	Addr string
}

// Ring is a versioned, deterministic assignment of keys (DC ids) to shard
// members. Two properties make it a consistent-hash ring fit for
// bit-reproducible fleets:
//
//   - Determinism: the assignment is a pure function of the membership
//     history and key set — same inputs, same version, same assignment, in
//     any process on any host (the hash is a fixed FNV-1a, never Go's
//     randomized map order or hash seed).
//   - Bounded churn: initial placement is capacity-bounded highest-random-
//     weight (HRW) assignment, so every member owns at most ceil(N/M) keys;
//     removing a member moves exactly that member's keys (≤ ceil(N/M)) and
//     no others, each to its HRW successor — the same member Successor
//     reports, so router-side failover and ring-side reassignment agree.
//
// Ring is immutable after construction except through Remove/Add, which
// bump Version. It is not safe for concurrent mutation; wrap it or swap
// whole rings under the caller's lock (Router does the latter).
type Ring struct {
	version uint64
	members []Member          // sorted by ID
	keys    []string          // sorted
	assign  map[string]string // key → member ID
}

// hashPair scores (key, member) with 64-bit FNV-1a over key NUL member —
// the HRW weight. FNV is stable across processes and architectures.
func hashPair(key, memberID string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(memberID))
	return h.Sum64()
}

// prefOrder returns member ids sorted by descending HRW weight for key,
// ties broken by id — the key's deterministic preference list.
func prefOrder(key string, members []Member) []string {
	type scored struct {
		id string
		w  uint64
	}
	s := make([]scored, len(members))
	for i, m := range members {
		s[i] = scored{m.ID, hashPair(key, m.ID)}
	}
	sort.Slice(s, func(i, j int) bool {
		if s[i].w != s[j].w {
			return s[i].w > s[j].w
		}
		return s[i].id < s[j].id
	})
	out := make([]string, len(s))
	for i, sc := range s {
		out[i] = sc.id
	}
	return out
}

// NewRing builds version 1 of a ring over the given members and key
// population. Placement walks the sorted keys and gives each to the first
// member in its HRW preference order with spare capacity (ceil(N/M)), which
// structurally guarantees the balance the churn bound needs.
func NewRing(members []Member, keys []string) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("shard: ring needs at least one member")
	}
	ms := append([]Member(nil), members...)
	sort.Slice(ms, func(i, j int) bool { return ms[i].ID < ms[j].ID })
	for i, m := range ms {
		if m.ID == "" {
			return nil, fmt.Errorf("shard: ring member %d has empty id", i)
		}
		if i > 0 && ms[i-1].ID == m.ID {
			return nil, fmt.Errorf("shard: duplicate ring member %q", m.ID)
		}
	}
	ks := append([]string(nil), keys...)
	sort.Strings(ks)
	for i := 1; i < len(ks); i++ {
		if ks[i] == ks[i-1] {
			return nil, fmt.Errorf("shard: duplicate key %q", ks[i])
		}
	}
	r := &Ring{version: 1, members: ms, keys: ks, assign: make(map[string]string, len(ks))}
	capacity := (len(ks) + len(ms) - 1) / len(ms)
	load := make(map[string]int, len(ms))
	for _, k := range ks {
		placed := false
		for _, id := range prefOrder(k, ms) {
			if load[id] < capacity {
				r.assign[k] = id
				load[id]++
				placed = true
				break
			}
		}
		if !placed { // unreachable: total capacity ≥ len(ks)
			return nil, fmt.Errorf("shard: no capacity for key %q", k)
		}
	}
	return r, nil
}

// Version returns the ring's membership-change generation (1 at birth).
func (r *Ring) Version() uint64 { return r.version }

// Members returns the membership, sorted by id.
func (r *Ring) Members() []Member { return append([]Member(nil), r.members...) }

// Keys returns the key population, sorted.
func (r *Ring) Keys() []string { return append([]string(nil), r.keys...) }

// MemberAddr returns a member's address.
func (r *Ring) MemberAddr(id string) (string, bool) {
	for _, m := range r.members {
		if m.ID == id {
			return m.Addr, true
		}
	}
	return "", false
}

// Assign returns the key's owning member. Keys outside the construction
// population fall back to pure HRW first preference, so late-arriving DCs
// still route deterministically.
func (r *Ring) Assign(key string) string {
	if id, ok := r.assign[key]; ok {
		return id
	}
	return prefOrder(key, r.members)[0]
}

// Successor returns the member that should serve the key given the set of
// members currently believed down: the owner when it is up, otherwise the
// first non-down member in the key's HRW preference order — exactly the
// member Remove would reassign the key to, so a router that failed over
// before the ring change needs no second move after it.
func (r *Ring) Successor(key string, down map[string]bool) (string, bool) {
	owner := r.Assign(key)
	if !down[owner] {
		return owner, true
	}
	for _, id := range prefOrder(key, r.members) {
		if !down[id] {
			return id, true
		}
	}
	return "", false
}

// Remove drops a member, bumping the version and reassigning only that
// member's keys — each to its HRW successor among the survivors, with no
// capacity cap (the bound holds because the removed member owned at most
// ceil(N/M) keys). It returns the moved keys, sorted.
func (r *Ring) Remove(id string) ([]string, error) {
	idx := -1
	for i, m := range r.members {
		if m.ID == id {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("shard: ring has no member %q", id)
	}
	if len(r.members) == 1 {
		return nil, fmt.Errorf("shard: cannot remove last ring member %q", id)
	}
	var moved []string
	//lint:allow maporder moved keys are collected then sorted before use
	for k, owner := range r.assign {
		if owner == id {
			moved = append(moved, k)
		}
	}
	sort.Strings(moved)
	r.members = append(r.members[:idx], r.members[idx+1:]...)
	r.version++
	down := map[string]bool{id: true}
	for _, k := range moved {
		next, ok := r.Successor(k, down)
		if !ok { // unreachable: at least one member survives
			return nil, fmt.Errorf("shard: no successor for key %q", k)
		}
		r.assign[k] = next
	}
	return moved, nil
}

// Add introduces a member, bumping the version. Only keys whose pure-HRW
// first preference in the new membership is the new member move to it —
// expected N/M keys, nothing else disturbed.
func (r *Ring) Add(m Member) ([]string, error) {
	if m.ID == "" {
		return nil, fmt.Errorf("shard: ring member has empty id")
	}
	if _, ok := r.MemberAddr(m.ID); ok {
		return nil, fmt.Errorf("shard: ring already has member %q", m.ID)
	}
	r.members = append(r.members, m)
	sort.Slice(r.members, func(i, j int) bool { return r.members[i].ID < r.members[j].ID })
	r.version++
	var moved []string
	for _, k := range r.keys {
		if prefOrder(k, r.members)[0] == m.ID {
			r.assign[k] = m.ID
			moved = append(moved, k)
		}
	}
	return moved, nil
}

// Loads returns the per-member key counts, keyed by member id.
func (r *Ring) Loads() map[string]int {
	out := make(map[string]int, len(r.members))
	for _, m := range r.members {
		out[m.ID] = 0
	}
	for _, k := range r.keys {
		out[r.assign[k]]++
	}
	return out
}
