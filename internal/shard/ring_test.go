package shard

import (
	"fmt"
	"math/rand"
	"testing"
)

func testMembers(n int) []Member {
	out := make([]Member, n)
	for i := range out {
		out[i] = Member{ID: fmt.Sprintf("shard-%d", i+1), Addr: fmt.Sprintf("127.0.0.1:%d", 9000+i+1)}
	}
	return out
}

func testKeys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("dc-%04d", i+1)
	}
	return out
}

// TestRingDeterministicAcrossInputOrder: the assignment is a pure function
// of the membership/key SETS — shuffled construction inputs produce the
// identical ring.
func TestRingDeterministicAcrossInputOrder(t *testing.T) {
	members := testMembers(8)
	keys := testKeys(1000)
	ref, err := NewRing(members, keys)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5; trial++ {
		ms := append([]Member(nil), members...)
		ks := append([]string(nil), keys...)
		rng.Shuffle(len(ms), func(i, j int) { ms[i], ms[j] = ms[j], ms[i] })
		rng.Shuffle(len(ks), func(i, j int) { ks[i], ks[j] = ks[j], ks[i] })
		r, err := NewRing(ms, ks)
		if err != nil {
			t.Fatal(err)
		}
		if r.Version() != ref.Version() {
			t.Fatalf("trial %d: version %d != %d", trial, r.Version(), ref.Version())
		}
		for _, k := range keys {
			if r.Assign(k) != ref.Assign(k) {
				t.Fatalf("trial %d: key %s assigned %s, ref %s", trial, k, r.Assign(k), ref.Assign(k))
			}
		}
	}
}

// TestRingGoldenAssignment pins concrete assignments: the hash is a fixed
// FNV-1a over fixed strings, so THIS table must hold in every process on
// every architecture, forever — the cross-process half of the determinism
// claim without spawning a process.
func TestRingGoldenAssignment(t *testing.T) {
	r, err := NewRing(testMembers(8), testKeys(12))
	if err != nil {
		t.Fatal(err)
	}
	golden := map[string]string{
		"dc-0001": "shard-4",
		"dc-0002": "shard-8",
		"dc-0003": "shard-2",
		"dc-0004": "shard-1",
		"dc-0005": "shard-8",
		"dc-0006": "shard-7",
		"dc-0007": "shard-6",
		"dc-0008": "shard-5",
		"dc-0009": "shard-4",
		"dc-0010": "shard-6",
		"dc-0011": "shard-7",
		"dc-0012": "shard-1",
	}
	for _, k := range testKeys(12) {
		if got := r.Assign(k); got != golden[k] {
			t.Errorf("key %s: got %s, golden %s", k, got, golden[k])
		}
	}
}

// TestRingBalance: capacity-bounded placement guarantees every member owns
// at most ceil(N/M) keys — the structural property the churn bound needs.
func TestRingBalance(t *testing.T) {
	for _, tc := range []struct{ n, m int }{{1000, 8}, {1000, 7}, {13, 4}, {8, 8}, {5, 8}} {
		r, err := NewRing(testMembers(tc.m), testKeys(tc.n))
		if err != nil {
			t.Fatal(err)
		}
		capacity := (tc.n + tc.m - 1) / tc.m
		total := 0
		for id, load := range r.Loads() {
			total += load
			if load > capacity {
				t.Errorf("N=%d M=%d: member %s owns %d > ceil %d", tc.n, tc.m, id, load, capacity)
			}
		}
		if total != tc.n {
			t.Errorf("N=%d M=%d: loads sum to %d", tc.n, tc.m, total)
		}
	}
}

// TestRingRemovalChurnBound: removing any single member moves exactly that
// member's keys — at most ceil(N/M) — and every surviving member's keys
// stay put.
func TestRingRemovalChurnBound(t *testing.T) {
	const n, m = 1000, 8
	capacity := (n + m - 1) / m
	for victim := 1; victim <= m; victim++ {
		r, err := NewRing(testMembers(m), testKeys(n))
		if err != nil {
			t.Fatal(err)
		}
		victimID := fmt.Sprintf("shard-%d", victim)
		before := make(map[string]string, n)
		var owned int
		for _, k := range r.Keys() {
			before[k] = r.Assign(k)
			if before[k] == victimID {
				owned++
			}
		}
		moved, err := r.Remove(victimID)
		if err != nil {
			t.Fatal(err)
		}
		if len(moved) != owned {
			t.Fatalf("remove %s: moved %d keys, member owned %d", victimID, len(moved), owned)
		}
		if len(moved) > capacity {
			t.Fatalf("remove %s: churn %d exceeds ceil(N/M)=%d", victimID, len(moved), capacity)
		}
		if r.Version() != 2 {
			t.Fatalf("remove %s: version %d, want 2", victimID, r.Version())
		}
		movedSet := make(map[string]bool, len(moved))
		for _, k := range moved {
			movedSet[k] = true
		}
		for _, k := range r.Keys() {
			after := r.Assign(k)
			switch {
			case before[k] == victimID:
				if !movedSet[k] {
					t.Fatalf("remove %s: orphan %s not in moved list", victimID, k)
				}
				if after == victimID {
					t.Fatalf("remove %s: key %s still assigned to removed member", victimID, k)
				}
			default:
				if movedSet[k] || after != before[k] {
					t.Fatalf("remove %s: unrelated key %s moved %s→%s", victimID, k, before[k], after)
				}
			}
		}
	}
}

// TestRingSuccessorMatchesRemoval: the router's failover target
// (Successor with the victim marked down) is exactly the post-Remove
// owner, so a DC that failed over before the ring change lands where the
// ring change would put it — no second migration, no evidence split.
func TestRingSuccessorMatchesRemoval(t *testing.T) {
	const n, m = 200, 8
	for victim := 1; victim <= m; victim++ {
		r, err := NewRing(testMembers(m), testKeys(n))
		if err != nil {
			t.Fatal(err)
		}
		victimID := fmt.Sprintf("shard-%d", victim)
		down := map[string]bool{victimID: true}
		predicted := make(map[string]string, n)
		for _, k := range r.Keys() {
			succ, ok := r.Successor(k, down)
			if !ok {
				t.Fatalf("no successor for %s", k)
			}
			predicted[k] = succ
		}
		if _, err := r.Remove(victimID); err != nil {
			t.Fatal(err)
		}
		for _, k := range r.Keys() {
			if got := r.Assign(k); got != predicted[k] {
				t.Fatalf("remove %s: key %s assigned %s, Successor predicted %s", victimID, k, got, predicted[k])
			}
		}
	}
}

// TestRingAddMovesOnlyToNewMember: adding a member only pulls keys toward
// it, never shuffles keys among incumbents.
func TestRingAddMovesOnlyToNewMember(t *testing.T) {
	r, err := NewRing(testMembers(7), testKeys(1000))
	if err != nil {
		t.Fatal(err)
	}
	before := make(map[string]string, 1000)
	for _, k := range r.Keys() {
		before[k] = r.Assign(k)
	}
	moved, err := r.Add(Member{ID: "shard-8", Addr: "127.0.0.1:9008"})
	if err != nil {
		t.Fatal(err)
	}
	if len(moved) == 0 {
		t.Fatal("adding a member to a 1000-key ring moved nothing")
	}
	if r.Version() != 2 {
		t.Fatalf("version %d, want 2", r.Version())
	}
	movedSet := make(map[string]bool, len(moved))
	for _, k := range moved {
		movedSet[k] = true
	}
	for _, k := range r.Keys() {
		after := r.Assign(k)
		if movedSet[k] {
			if after != "shard-8" {
				t.Fatalf("moved key %s landed on %s", k, after)
			}
		} else if after != before[k] {
			t.Fatalf("unmoved key %s shuffled %s→%s", k, before[k], after)
		}
	}
}

// TestRingValidation covers constructor and mutation error paths.
func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, testKeys(3)); err == nil {
		t.Error("empty membership accepted")
	}
	if _, err := NewRing([]Member{{ID: "a"}, {ID: "a"}}, nil); err == nil {
		t.Error("duplicate member accepted")
	}
	if _, err := NewRing([]Member{{ID: ""}}, nil); err == nil {
		t.Error("empty member id accepted")
	}
	if _, err := NewRing(testMembers(2), []string{"k", "k"}); err == nil {
		t.Error("duplicate key accepted")
	}
	r, err := NewRing(testMembers(2), testKeys(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Remove("nope"); err == nil {
		t.Error("removing unknown member accepted")
	}
	if _, err := r.Add(Member{ID: "shard-1"}); err == nil {
		t.Error("re-adding existing member accepted")
	}
	if _, err := r.Remove("shard-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Remove("shard-2"); err == nil {
		t.Error("removing last member accepted")
	}
	// Unknown keys still route deterministically (pure HRW fallback).
	if got, want := r.Assign("dc-9999"), r.Assign("dc-9999"); got != want || got == "" {
		t.Errorf("unknown-key fallback unstable: %q vs %q", got, want)
	}
}
