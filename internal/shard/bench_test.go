package shard

import (
	"fmt"
	"testing"
	"time"
)

// benchMembers builds n ring members with placeholder addresses (placement
// benchmarks never dial).
func benchMembers(n int) []Member {
	ms := make([]Member, n)
	for i := range ms {
		ms[i] = Member{ID: fmt.Sprintf("shard-%d", i+1), Addr: fmt.Sprintf("127.0.0.1:%d", 20000+i)}
	}
	return ms
}

// benchKeys builds the DC key population routed over the ring.
func benchKeys(n int) []string {
	ks := make([]string, n)
	for i := range ks {
		ks[i] = fmt.Sprintf("dc-%04d", i)
	}
	return ks
}

// BenchmarkRingAssign measures steady-state DC→shard placement, the lookup
// every router makes per delivery decision.
func BenchmarkRingAssign(b *testing.B) {
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			keys := benchKeys(1024)
			ring, err := NewRing(benchMembers(shards), keys)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ring.Assign(keys[i%len(keys)])
			}
		})
	}
}

// benchAggregator builds an aggregator over a ring of the given width,
// pre-populated with pairs total (component, condition) pairs spread
// round-robin across the shards — the held-state size a ranking pass walks.
func benchAggregator(b *testing.B, shards, pairs int) (*Aggregator, []Member) {
	b.Helper()
	members := benchMembers(shards)
	ring, err := NewRing(members, benchKeys(1024))
	if err != nil {
		b.Fatal(err)
	}
	agg, err := NewAggregator(AggregatorConfig{Ring: ring, Health: chaosHealthConfig()})
	if err != nil {
		b.Fatal(err)
	}
	conds := testGroups()["bearing"]
	for p := 0; p < pairs; p++ {
		m := members[p%shards]
		sum := summary(m.ID, fmt.Sprintf("c-%04d", p/len(conds)), conds[p%len(conds)], 0.5, base)
		if err := agg.DeliverSummary(sum, m.ID, 1, uint64(p+1)); err != nil {
			b.Fatal(err)
		}
	}
	return agg, members
}

// BenchmarkAggregatorFanIn measures summary ingest at the global tier:
// latest-wins merge, dedup window, and health observation per frame, with
// the fan-in spread over 1/4/8 sending shards.
func BenchmarkAggregatorFanIn(b *testing.B) {
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			agg, members := benchAggregator(b, shards, 512)
			conds := testGroups()["bearing"]
			seqs := make([]uint64, shards)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := i % shards
				m := members[s]
				sum := summary(m.ID, fmt.Sprintf("c-%04d", (i%512)/len(conds)), conds[i%len(conds)], 0.6,
					base.Add(time.Duration(i+1)*time.Millisecond))
				seqs[s] += 513
				if err := agg.DeliverSummary(sum, m.ID, 1, seqs[s]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAggregatorGlobalRanked measures the global ranking pass — the
// read every operator console issues — over 512 held pairs contributed by
// 1/4/8 shards (per-shard staleness discounting runs once per pair).
func BenchmarkAggregatorGlobalRanked(b *testing.B) {
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			agg, _ := benchAggregator(b, shards, 512)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := agg.GlobalRanked(); len(got) == 0 {
					b.Fatal("empty ranking")
				}
			}
		})
	}
}
