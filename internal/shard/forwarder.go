package shard

import (
	"errors"
	"sync"
	"time"

	"repro/internal/oosm"
	"repro/internal/pdme"
	"repro/internal/proto"
	"repro/internal/uplink"
)

// ForwarderConfig parametrizes a shard PDME's upward summary stream.
type ForwarderConfig struct {
	// ShardID is this shard's identity on the wire: it keys the forwarding
	// spool, the aggregator's dedup window, and the aggregator's per-shard
	// health registry.
	ShardID string
	// AggregatorAddr is the aggregator PDME's summary-server address.
	AggregatorAddr string
	// SpoolDir persists the summary spool; empty keeps it in memory.
	SpoolDir string
	// SpoolCap, DialTimeout, SendTimeout, BackoffMin, BackoffMax pass
	// through to the underlying uplink (zero: uplink defaults).
	SpoolCap    int
	DialTimeout time.Duration
	SendTimeout time.Duration
	BackoffMin  time.Duration
	BackoffMax  time.Duration
	// Seed drives the uplink's backoff jitter, reproducibly.
	Seed int64
	// DialVia optionally rewrites the aggregator address before dialing
	// (the netfault hook).
	DialVia func(addr string) string
}

// ForwarderCounters counts the forwarder's conclusion-to-summary work; the
// transport half lives in the uplink Counters.
type ForwarderCounters struct {
	// Forwarded counts summaries handed to the uplink spool.
	Forwarded int64
	// Skipped counts conclusion events that produced no summary (conclusion
	// vanished or snapshot failed between event and read — benign races).
	Skipped int64
	// Errors counts summaries the spool refused.
	Errors int64
}

// Forwarder subscribes to a shard PDME's fused-conclusion objects and
// forwards each write upward as a proto.FusedSummary over an ordinary
// uplink — the "uplink is source-agnostic" half of the hierarchy: the same
// spool/redial/dedup machinery that carries DC reports into the shard
// carries the shard's conclusions into the aggregator, so a dead aggregator
// costs nothing but spool depth and a restarted one replays exactly once.
//
// Forwarding is event-driven and synchronous with the model write (oosm
// publishes events without holding the model lock; DeliverSummary only
// appends to the spool), so the shard's ingest hot path gains one snapshot
// read and one spool append per conclusion write.
type Forwarder struct {
	engine *pdme.PDME
	cfg    ForwarderConfig
	up     *uplink.Uplink

	mu       sync.Mutex
	counters ForwarderCounters
	subs     []*oosm.Subscription
	closed   bool
}

// Forward attaches a forwarder to a shard PDME. Attach it after journal
// recovery and call Resync once: recovery rebuilds conclusions before the
// subscription exists, and Resync forwards that recovered state so the
// aggregator catches up even if nothing changes afterwards.
func Forward(engine *pdme.PDME, cfg ForwarderConfig) (*Forwarder, error) {
	if engine == nil {
		return nil, errors.New("shard: forwarder needs a PDME")
	}
	if cfg.ShardID == "" {
		return nil, errors.New("shard: forwarder needs a shard id")
	}
	addr := cfg.AggregatorAddr
	if cfg.DialVia != nil {
		addr = cfg.DialVia(addr)
	}
	up, err := uplink.New(uplink.Config{
		Addr:        addr,
		DCID:        cfg.ShardID,
		SpoolDir:    cfg.SpoolDir,
		SpoolCap:    cfg.SpoolCap,
		DialTimeout: cfg.DialTimeout,
		SendTimeout: cfg.SendTimeout,
		BackoffMin:  cfg.BackoffMin,
		BackoffMax:  cfg.BackoffMax,
		Seed:        cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	f := &Forwarder{engine: engine, cfg: cfg, up: up}
	model := engine.Model()
	handler := func(e oosm.Event) { f.onConclusion(e.Object) }
	f.subs = append(f.subs,
		model.SubscribeClass(pdme.ConclusionClass, oosm.ObjectCreated, handler),
		model.SubscribeClass(pdme.ConclusionClass, oosm.ObjectUpdated, handler),
	)
	return f, nil
}

// onConclusion turns one conclusion write into one spooled summary.
func (f *Forwarder) onConclusion(id oosm.ObjectID) {
	props, err := f.engine.Model().Get(id)
	if err != nil {
		f.count(func(c *ForwarderCounters) { c.Skipped++ })
		return
	}
	component, _ := props["component"].(string)
	condition, _ := props["condition"].(string)
	f.forwardPair(component, condition)
}

// forwardPair snapshots and spools one (component, condition) summary.
func (f *Forwarder) forwardPair(component, condition string) {
	if component == "" || condition == "" {
		f.count(func(c *ForwarderCounters) { c.Skipped++ })
		return
	}
	cs, vec, err := f.engine.ConditionSnapshot(component, condition)
	if err != nil {
		f.count(func(c *ForwarderCounters) { c.Skipped++ })
		return
	}
	at, ok := f.engine.ConclusionUpdatedAt(component, condition)
	if !ok {
		f.count(func(c *ForwarderCounters) { c.Skipped++ })
		return
	}
	s := &proto.FusedSummary{
		ShardID:   f.cfg.ShardID,
		Component: component,
		Condition: condition,
		Group:     cs.Group,
		// Dempster combination can overshoot the unit interval by a few ULPs
		// (plausibility 1+2e-16 on near-certain conclusions); clamping here
		// keeps the wire invariant [0,1] without silently dropping exactly
		// the most-urgent summaries at Validate.
		Belief:       clamp01(cs.Belief),
		Plausibility: clamp01(cs.Plausibility),
		Unknown:      clamp01(cs.Unknown),
		Reports:      cs.Reports,
		Reliability:  clamp01(cs.Reliability),
		Degraded:     cs.Degraded,
		Prognostics:  vec,
		UpdatedAt:    at,
	}
	if err := f.up.DeliverSummary(s); err != nil {
		f.count(func(c *ForwarderCounters) { c.Errors++ })
		return
	}
	f.count(func(c *ForwarderCounters) { c.Forwarded++ })
}

// clamp01 pins a mass back into [0,1]; fusion arithmetic may exceed the
// bounds by floating-point ULPs, never by anything meaningful.
func clamp01(v float64) float64 {
	switch {
	case v < 0:
		return 0
	case v > 1:
		return 1
	}
	return v
}

func (f *Forwarder) count(fn func(*ForwarderCounters)) {
	f.mu.Lock()
	fn(&f.counters)
	f.mu.Unlock()
}

// Resync forwards the shard's entire current conclusion set — one summary
// per prioritized pair. Call it once after journal recovery, and after an
// aggregator's dedup window is known to have reset (a fresh aggregator
// spool dir).
func (f *Forwarder) Resync() int {
	n := 0
	for _, item := range f.engine.PrioritizedList() {
		f.forwardPair(item.Component, item.Condition)
		n++
	}
	return n
}

// Heartbeat sends the shard's liveness beacon to the aggregator. The
// caller supplies the timestamp (the shard daemon's status tick).
func (f *Forwarder) Heartbeat(at time.Time) error {
	return f.up.SendHeartbeat(&proto.Heartbeat{SentAt: at})
}

// Flush blocks until the summary spool drains or the timeout elapses.
func (f *Forwarder) Flush(timeout time.Duration) error { return f.up.Flush(timeout) }

// Pending returns the number of unresolved spooled summaries.
func (f *Forwarder) Pending() int { return f.up.Pending() }

// Counters returns the forwarder's own counters.
func (f *Forwarder) Counters() ForwarderCounters {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counters
}

// Uplink returns the transport counters of the underlying uplink.
func (f *Forwarder) Uplink() uplink.Counters { return f.up.Counters() }

// Boot returns the forwarding spool's boot epoch.
func (f *Forwarder) Boot() uint64 { return f.up.Boot() }

// Close cancels the conclusion subscriptions and stops the uplink; a
// persistent spool keeps pending summaries for the next Forward.
func (f *Forwarder) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	subs := f.subs
	f.subs = nil
	f.mu.Unlock()
	for _, s := range subs {
		s.Cancel()
	}
	return f.up.Close()
}
