package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/proto"
	"repro/internal/uplink"
)

// Defaults for RouterConfig's zero values.
const (
	// DefaultFailoverThreshold is the number of observed no-progress pump
	// intervals (dial failures or retries with nothing acked while reports
	// are pending) before the router gives up on its shard and fails over
	// to the ring successor.
	DefaultFailoverThreshold = 6
)

// RouterConfig parametrizes a DC-side shard router.
type RouterConfig struct {
	// DCID names the routing DC; it is the ring key and the uplink identity.
	DCID string
	// Ring is the shard assignment; the router targets Ring.Assign(DCID).
	Ring *Ring
	// SpoolDir persists the store-and-forward spool. It is REQUIRED: the
	// whole failover contract is "swap the address, keep the spool", and an
	// in-memory spool cannot survive the swap.
	SpoolDir string
	// SpoolCap, DialTimeout, SendTimeout, BackoffMin, BackoffMax pass
	// through to the underlying uplink (zero: uplink defaults).
	SpoolCap    int
	DialTimeout time.Duration
	SendTimeout time.Duration
	BackoffMin  time.Duration
	BackoffMax  time.Duration
	// Seed drives the failover-threshold jitter and the uplink's backoff
	// jitter, reproducibly.
	Seed int64
	// FailoverThreshold is the stall count that triggers failover
	// (0: DefaultFailoverThreshold). The effective threshold is jittered
	// +[0,threshold) per router so a dead shard's DCs do not stampede the
	// successor in lockstep.
	FailoverThreshold int
	// DialVia optionally rewrites a shard address before dialing — the
	// netfault hook: tests route one shard's traffic through a fault proxy
	// while the ring keeps the logical address.
	DialVia func(addr string) string
}

// RouterStats counts the router's own decisions (the transport work is in
// the merged uplink Counters).
type RouterStats struct {
	// Failovers counts stall-triggered re-routes to a ring successor.
	Failovers int
	// RingUpdates counts UpdateRing calls that changed the target.
	RingUpdates int
	// PerShard counts reports+summaries acked while each shard was the
	// target, keyed by member id.
	PerShard map[string]int64
}

// Router is a DC-side shard-aware uplink: it implements proto.Sink and the
// DC's HeartbeatUplink against whichever shard PDME the ring assigns,
// re-routing to the ring successor when the target stops making progress.
//
// Failover is decided ONLY inside Pump (and Flush, which pumps): the
// router itself never sleeps, never reads a clock, and never spawns a
// goroutine — the DC's own cadence (real or simulated) is the failure
// detector's clock, which keeps chaos tests fully deterministic about WHEN
// a DC may fail over.
type Router struct {
	cfg RouterConfig

	mu     sync.Mutex
	ring   *Ring
	down   map[string]bool // members this router has failed away from
	target string
	up     *uplink.Uplink
	base   uplink.Counters // accumulated from retired uplinks
	stats  RouterStats
	// progress watermarks over the merged counters
	lastAttempts int64 // Retried + DialFailures
	lastProgress int64 // Sent + Dropped
	stall        int
	threshold    int
	rng          *rand.Rand
}

// NewRouter opens the router's uplink to the ring-assigned shard. The first
// dial is lazy (inherited from uplink.New), so construction succeeds while
// the whole fleet is down.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if cfg.DCID == "" {
		return nil, errors.New("shard: router needs a DC id")
	}
	if cfg.Ring == nil {
		return nil, errors.New("shard: router needs a ring")
	}
	if cfg.SpoolDir == "" {
		return nil, errors.New("shard: router requires a persistent spool dir (failover keeps the spool)")
	}
	threshold := cfg.FailoverThreshold
	if threshold <= 0 {
		threshold = DefaultFailoverThreshold
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	r := &Router{
		cfg:       cfg,
		ring:      cfg.Ring,
		down:      make(map[string]bool),
		stats:     RouterStats{PerShard: make(map[string]int64)},
		threshold: threshold + rng.Intn(threshold),
		rng:       rng,
	}
	target := cfg.Ring.Assign(cfg.DCID)
	if err := r.open(target); err != nil {
		return nil, err
	}
	return r, nil
}

// open points the router at a member, replacing any current uplink and
// folding its counters into the accumulated base. Caller must NOT hold mu.
func (r *Router) open(memberID string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.openLocked(memberID)
}

func (r *Router) openLocked(memberID string) error {
	addr, ok := r.ring.MemberAddr(memberID)
	if !ok {
		return fmt.Errorf("shard: ring has no member %q", memberID)
	}
	if r.cfg.DialVia != nil {
		addr = r.cfg.DialVia(addr)
	}
	if r.up != nil {
		c := r.up.Counters()
		r.stats.PerShard[r.target] += c.Acked + c.DedupAcks
		r.accumulate(c)
		_ = r.up.Close()
		r.up = nil
	}
	u, err := uplink.New(uplink.Config{
		Addr:        addr,
		DCID:        r.cfg.DCID,
		SpoolDir:    r.cfg.SpoolDir,
		SpoolCap:    r.cfg.SpoolCap,
		DialTimeout: r.cfg.DialTimeout,
		SendTimeout: r.cfg.SendTimeout,
		BackoffMin:  r.cfg.BackoffMin,
		BackoffMax:  r.cfg.BackoffMax,
		Seed:        r.rng.Int63(),
	})
	if err != nil {
		return err
	}
	r.up = u
	r.target = memberID
	merged := r.mergedLocked()
	r.lastAttempts = merged.Retried + merged.DialFailures
	r.lastProgress = merged.Sent + merged.Dropped
	r.stall = 0
	return nil
}

func (r *Router) accumulate(c uplink.Counters) {
	accumulateInto(&r.base, c)
}

func (r *Router) mergedLocked() uplink.Counters {
	c := r.base
	if r.up != nil {
		accumulateInto(&c, r.up.Counters())
	}
	return c
}

func accumulateInto(dst *uplink.Counters, c uplink.Counters) {
	dst.Sent += c.Sent
	dst.Acked += c.Acked
	dst.Retried += c.Retried
	dst.Spooled += c.Spooled
	dst.Replayed += c.Replayed
	dst.Dropped += c.Dropped
	dst.CapacityDrops += c.CapacityDrops
	dst.DedupAcks += c.DedupAcks
	dst.DialFailures += c.DialFailures
	dst.HeartbeatsSent += c.HeartbeatsSent
	dst.HeartbeatsDropped += c.HeartbeatsDropped
}

// Deliver implements proto.Sink: the report spools to the current target's
// uplink. It never blocks on the network and never triggers failover.
func (r *Router) Deliver(rep *proto.Report) error {
	r.mu.Lock()
	u := r.up
	r.mu.Unlock()
	return u.Deliver(rep)
}

// SendHeartbeat implements the DC's heartbeat uplink against the current
// target.
func (r *Router) SendHeartbeat(hb *proto.Heartbeat) error {
	r.mu.Lock()
	u := r.up
	r.mu.Unlock()
	return u.SendHeartbeat(hb)
}

// Pump runs one failure-detection step: if reports are pending and the
// uplink has attempted (dialed or retried) without progress (acks or
// drops) since the last Pump, the stall count rises; at the jittered
// threshold the router fails over to the ring successor. Call it once per
// DC tick. It returns true if a failover happened.
func (r *Router) Pump() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.mergedLocked()
	attempts := c.Retried + c.DialFailures
	progress := c.Sent + c.Dropped
	pending := 0
	if r.up != nil {
		pending = r.up.Pending()
	}
	switch {
	case pending == 0, progress > r.lastProgress:
		r.stall = 0
	case attempts > r.lastAttempts:
		r.stall++
	}
	r.lastAttempts = attempts
	r.lastProgress = progress
	if r.stall < r.threshold {
		return false
	}
	return r.failoverLocked()
}

// failoverLocked marks the current target down and re-opens on the ring
// successor. False when no live successor exists (the router stays put and
// keeps retrying its current target).
func (r *Router) failoverLocked() bool {
	r.down[r.target] = true
	next, ok := r.ring.Successor(r.cfg.DCID, r.down)
	if !ok || next == r.target {
		delete(r.down, r.target) // nowhere to go: keep trying everyone
		r.stall = 0
		return false
	}
	if err := r.openLocked(next); err != nil {
		r.stall = 0
		return false
	}
	r.stats.Failovers++
	return true
}

// UpdateRing installs a new ring generation: suspicion resets (the
// operator's ring change is authoritative) and the router re-targets the
// new assignment, keeping its spool. Returns true if the target changed.
func (r *Router) UpdateRing(ring *Ring) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ring = ring
	r.down = make(map[string]bool)
	next := ring.Assign(r.cfg.DCID)
	if next == r.target {
		return false
	}
	if err := r.openLocked(next); err != nil {
		return false
	}
	r.stats.RingUpdates++
	return true
}

// Flush drives the spool empty, pumping the failure detector between
// attempts so an outage mid-flush resolves by failover instead of hanging:
// up to attempts rounds of the underlying uplink Flush(slice). The router
// itself stays clock-free — the uplink does all the waiting.
func (r *Router) Flush(attempts int, slice time.Duration) error {
	var err error
	for i := 0; i < attempts; i++ {
		r.mu.Lock()
		u := r.up
		r.mu.Unlock()
		if err = u.Flush(slice); err == nil {
			return nil
		}
		r.Pump()
	}
	return err
}

// Pending returns the number of unresolved spooled frames.
func (r *Router) Pending() int {
	r.mu.Lock()
	u := r.up
	r.mu.Unlock()
	return u.Pending()
}

// Target returns the member currently routed to.
func (r *Router) Target() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.target
}

// Boot returns the spool's boot epoch (stable across failovers: the spool
// file, and with it the boot id, survives every swap).
func (r *Router) Boot() uint64 {
	r.mu.Lock()
	u := r.up
	r.mu.Unlock()
	return u.Boot()
}

// Counters returns transport counters merged across every uplink the
// router has owned.
func (r *Router) Counters() uplink.Counters {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.mergedLocked()
}

// Stats returns the router's failover/routing decisions. PerShard is keyed
// by member id and counts acks observed while that member was the target.
func (r *Router) Stats() RouterStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := RouterStats{
		Failovers:   r.stats.Failovers,
		RingUpdates: r.stats.RingUpdates,
		PerShard:    make(map[string]int64, len(r.stats.PerShard)),
	}
	//lint:allow maporder snapshot copy; consumers sort before display
	for k, v := range r.stats.PerShard {
		out.PerShard[k] = v
	}
	if r.up != nil {
		cur := r.up.Counters()
		out.PerShard[r.target] += cur.Acked + cur.DedupAcks
	}
	return out
}

// Close stops the current uplink; a persistent spool keeps any pending
// frames for the next NewRouter on the same dir.
func (r *Router) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.up == nil {
		return nil
	}
	err := r.up.Close()
	r.up = nil
	return err
}
