package serving

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/health"
	"repro/internal/proto"
)

// These tests pin the tier's one non-negotiable property: a cached response
// is bit-identical to a fresh fuse at the same instant, including the
// health-discounted Degraded/Reliability fields. The sequential test drives
// random interleavings of deliveries, heartbeats, and reads and compares
// every read against a recompute; the concurrent test runs readers against
// live ingest under -race and uses the Epoch guard to compare without racing.

// stripRanked zeroes serve-time metadata so only fused content is compared.
func stripRanked(rv RankedView) RankedView {
	rv.Gen, rv.Cached, rv.Epoch = 0, false, 0
	return rv
}

func stripBelief(bv BeliefView) BeliefView {
	bv.Gen, bv.Cached, bv.Epoch = 0, false, 0
	return bv
}

func TestCoherenceProperty(t *testing.T) {
	const ops = 400
	components := []string{"m1", "m2", "m3"}
	conditions := []string{"inner race fault", "outer race fault", "imbalance"}
	dcs := []string{"dc-1", "dc-2", "dc-3"}

	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			engine := newTestEngine(t)
			// Short freshness window so watermark advances push evidence into
			// the degraded band and the discounted fields actually vary.
			if err := engine.ConfigureHealth(health.Config{
				FreshFor:         30 * time.Minute,
				StalenessHorizon: 4 * time.Hour,
			}); err != nil {
				t.Fatal(err)
			}
			v := openTestViews(t, engine)
			now := base

			for op := 0; op < ops; op++ {
				now = now.Add(time.Duration(rng.Intn(20)+1) * time.Minute)
				switch rng.Intn(6) {
				case 0, 1: // delivery
					r := report(
						dcs[rng.Intn(len(dcs))],
						components[rng.Intn(len(components))],
						conditions[rng.Intn(len(conditions))],
						0.1+0.8*rng.Float64(),
						now,
					)
					r.Severity = rng.Float64()
					if rng.Intn(4) == 0 {
						r.Prognostics = proto.PrognosticVector{{
							Probability:    0.3 + 0.6*rng.Float64(),
							HorizonSeconds: float64(rng.Intn(200)+10) * 3600,
						}}
					}
					deliver(t, engine, r)
				case 2: // heartbeat (advances the event-time watermark)
					if err := engine.ObserveHeartbeat(&proto.Heartbeat{
						DCID:        dcs[rng.Intn(len(dcs))],
						SentAt:      now,
						Incarnation: 1,
					}); err != nil {
						t.Fatal(err)
					}
				case 3, 4: // ranked read vs fresh fuse
					got := v.Ranked()
					want := RankedView{Items: engine.PrioritizedList()}
					if !reflect.DeepEqual(stripRanked(got), want) {
						t.Fatalf("op %d: ranked view diverged (cached=%v)\n got: %+v\nwant: %+v",
							op, got.Cached, got.Items, want.Items)
					}
				default: // belief read vs fresh fuse
					component := components[rng.Intn(len(components))]
					condition := conditions[rng.Intn(len(conditions))]
					got, err := v.Belief(component, condition)
					if err != nil {
						t.Fatal(err)
					}
					want, err := v.freshBelief(component, condition)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(stripBelief(got), stripBelief(want)) {
						t.Fatalf("op %d: belief view diverged (cached=%v)\n got: %+v\nwant: %+v",
							op, got.Cached, got, want)
					}
				}
			}
			st := v.Stats()
			if st.Hits == 0 {
				t.Fatal("property run never served a cache hit — the cache is not being exercised")
			}
			if st.Stores == 0 || st.Invalidations == 0 {
				t.Fatalf("degenerate run: %+v", st)
			}
		})
	}
}

// TestCoherenceConcurrent hammers the tier from reader goroutines while an
// ingest goroutine delivers reports and heartbeats. A mid-flight cached/fresh
// comparison would race ingest, so readers use the Epoch guard: two hits with
// the same non-zero Epoch bracket an interval with no invalidation and no
// health observation, so a fresh fuse taken between them must match the
// cached items exactly.
func TestCoherenceConcurrent(t *testing.T) {
	engine := newTestEngine(t)
	if err := engine.ConfigureHealth(health.Config{
		FreshFor:         30 * time.Minute,
		StalenessHorizon: 4 * time.Hour,
	}); err != nil {
		t.Fatal(err)
	}
	v := openTestViews(t, engine)

	const (
		readers    = 8
		deliveries = 300
		reads      = 400
	)
	var (
		wg       sync.WaitGroup
		checks   atomic.Uint64
		violated atomic.Value // first violation message
	)
	stop := make(chan struct{})

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		rng := rand.New(rand.NewSource(42))
		now := base
		for i := 0; i < deliveries; i++ {
			now = now.Add(time.Duration(rng.Intn(10)+1) * time.Minute)
			if rng.Intn(5) == 0 {
				_ = engine.ObserveHeartbeat(&proto.Heartbeat{DCID: "dc-hb", SentAt: now, Incarnation: 1})
				continue
			}
			r := report("dc-1", fmt.Sprintf("m%d", rng.Intn(3)+1), "imbalance", 0.2+0.7*rng.Float64(), now)
			if err := engine.Deliver(r); err != nil {
				violated.CompareAndSwap(nil, fmt.Sprintf("deliver: %v", err))
				return
			}
		}
	}()

	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < reads; i++ {
				first := v.Ranked()
				if !first.Cached || first.Epoch == 0 {
					continue
				}
				fresh := engine.PrioritizedList()
				second := v.Ranked()
				if !second.Cached || second.Epoch != first.Epoch {
					continue // something changed mid-check: inconclusive
				}
				checks.Add(1)
				if !reflect.DeepEqual(first.Items, fresh) {
					violated.CompareAndSwap(nil, fmt.Sprintf(
						"reader %d check %d: cached items != fresh fuse inside a stable epoch\ncached: %+v\n fresh: %+v",
						w, i, first.Items, fresh))
					return
				}
				if rng.Intn(8) == 0 {
					select {
					case <-stop:
						return
					default:
					}
				}
			}
		}(w)
	}
	wg.Wait()

	if msg := violated.Load(); msg != nil {
		t.Fatal(msg)
	}
	if checks.Load() == 0 {
		t.Fatal("no conclusive epoch-guarded checks ran — guard too strict or cache never hit")
	}
}
