package serving

import (
	"net/http"
	"time"

	"repro/internal/shard"
)

// This file is the HTTP face of the hierarchical fleet tier: the endpoints
// cmd/pdmed mounts in -aggregator mode.
//
//	GET /ranked                        global prioritized list + coverage
//	GET /belief?component=&condition=  one pair's global state + coverage
//	GET /coverage                      per-shard coverage report alone
//
// The graceful-degradation contract: these endpoints NEVER fail because a
// shard is down. A missing shard shows up as degraded rows, rising unknown
// mass, and coverage metadata — a labeled partial answer, not an error.
// The only 4xx is a malformed request (missing query parameters).

// globalItemJSON is the wire shape of one global maintenance-list row.
type globalItemJSON struct {
	Component         string    `json:"component"`
	Condition         string    `json:"condition"`
	Group             string    `json:"group,omitempty"`
	Belief            float64   `json:"belief"`
	Plausibility      float64   `json:"plausibility"`
	Unknown           float64   `json:"unknown"`
	Reports           int       `json:"reports"`
	Shard             string    `json:"shard,omitempty"`
	ShardState        string    `json:"shard_state,omitempty"`
	Reliability       float64   `json:"reliability"`
	Degraded          bool      `json:"degraded,omitempty"`
	TimeToHalfSeconds float64   `json:"time_to_half_seconds,omitempty"`
	HasPrognostic     bool      `json:"has_prognostic,omitempty"`
	UpdatedAt         time.Time `json:"updated_at,omitempty"`
}

func globalItemToJSON(it shard.GlobalItem) globalItemJSON {
	return globalItemJSON{
		Component:         it.Component,
		Condition:         it.Condition,
		Group:             it.Group,
		Belief:            it.Belief,
		Plausibility:      it.Plausibility,
		Unknown:           it.Unknown,
		Reports:           it.Reports,
		Shard:             it.Shard,
		ShardState:        it.ShardState,
		Reliability:       it.Reliability,
		Degraded:          it.Degraded,
		TimeToHalfSeconds: it.TimeToHalf.Seconds(),
		HasPrognostic:     it.HasPrognostic,
		UpdatedAt:         it.UpdatedAt,
	}
}

// globalRankedJSON is the aggregator /ranked response.
type globalRankedJSON struct {
	Degraded bool                 `json:"degraded"`
	Coverage shard.CoverageReport `json:"coverage"`
	Items    []globalItemJSON     `json:"items"`
}

// globalBeliefJSON is the aggregator /belief response. Covered false means
// no shard has concluded on the pair — the numbers are the vacuous state,
// and the coverage block says which shards could still be hiding evidence.
type globalBeliefJSON struct {
	globalItemJSON
	Covered  bool                 `json:"covered"`
	Coverage shard.CoverageReport `json:"coverage"`
}

// AggregatorHandler mounts the global read-side endpoints for an
// aggregator-mode PDME.
func AggregatorHandler(a *shard.Aggregator) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /ranked", func(w http.ResponseWriter, _ *http.Request) {
		cov := a.Coverage()
		items := a.GlobalRanked()
		out := globalRankedJSON{
			Degraded: cov.Degraded,
			Coverage: cov,
			Items:    make([]globalItemJSON, len(items)),
		}
		for i, it := range items {
			out.Items[i] = globalItemToJSON(it)
			if it.Degraded {
				out.Degraded = true
			}
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("GET /belief", func(w http.ResponseWriter, r *http.Request) {
		component, condition, ok := pairParams(w, r)
		if !ok {
			return
		}
		item, covered := a.GlobalBelief(component, condition)
		writeJSON(w, http.StatusOK, globalBeliefJSON{
			globalItemJSON: globalItemToJSON(item),
			Covered:        covered,
			Coverage:       a.Coverage(),
		})
	})
	mux.HandleFunc("GET /coverage", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, a.Coverage())
	})
	return mux
}
