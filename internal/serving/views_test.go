package serving

import (
	"testing"
	"time"

	"repro/internal/fusion"
	"repro/internal/health"
	"repro/internal/oosm"
	"repro/internal/pdme"
	"repro/internal/proto"
	"repro/internal/relstore"
)

// base is the fixture's virtual epoch (the paper's PDME first ran 1998-08).
var base = time.Date(1998, 8, 1, 0, 0, 0, 0, time.UTC)

func testGroups() fusion.Groups {
	return fusion.Groups{
		"bearing": {"inner race fault", "outer race fault"},
		"motor":   {"imbalance"},
	}
}

func newTestEngine(t *testing.T) *pdme.PDME {
	t.Helper()
	model, err := oosm.NewModel(relstore.NewMemory())
	if err != nil {
		t.Fatal(err)
	}
	engine, err := pdme.New(model, testGroups())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(engine.Close)
	return engine
}

func openTestViews(t *testing.T, engine *pdme.PDME) *Views {
	t.Helper()
	v, err := Open(engine, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(v.Close)
	return v
}

func report(dc, component, condition string, belief float64, at time.Time) *proto.Report {
	return &proto.Report{
		DCID:               dc,
		KnowledgeSourceID:  "ks-" + dc,
		SensedObjectID:     component,
		MachineConditionID: condition,
		Severity:           belief,
		Belief:             belief,
		Timestamp:          at,
	}
}

func deliver(t *testing.T, engine *pdme.PDME, r *proto.Report) {
	t.Helper()
	if err := engine.Deliver(r); err != nil {
		t.Fatalf("deliver: %v", err)
	}
}

func TestRankedCacheHitAndInvalidation(t *testing.T) {
	engine := newTestEngine(t)
	v := openTestViews(t, engine)
	deliver(t, engine, report("dc-1", "m1", "imbalance", 0.8, base))

	first := v.Ranked()
	if first.Cached {
		t.Fatal("first read should be a miss")
	}
	second := v.Ranked()
	if !second.Cached {
		t.Fatal("second read should hit the materialized view")
	}
	if len(second.Items) != 1 || second.Items[0].Condition != "imbalance" {
		t.Fatalf("unexpected items: %+v", second.Items)
	}
	// A delivery invalidates: the next read recomputes, then re-materializes.
	deliver(t, engine, report("dc-1", "m1", "imbalance", 0.8, base.Add(time.Minute)))
	third := v.Ranked()
	if third.Cached {
		t.Fatal("read after delivery should recompute")
	}
	if !v.Ranked().Cached {
		t.Fatal("read after recompute should hit again")
	}
	st := v.Stats()
	if st.Hits != 2 || st.Invalidations == 0 || st.Stores == 0 {
		t.Fatalf("unexpected stats: %+v", st)
	}
}

func TestBeliefGroupInvalidation(t *testing.T) {
	engine := newTestEngine(t)
	v := openTestViews(t, engine)
	deliver(t, engine, report("dc-1", "m1", "inner race fault", 0.7, base))

	inner, err := v.Belief("m1", "inner race fault")
	if err != nil {
		t.Fatal(err)
	}
	if inner.Cached {
		t.Fatal("first belief read should miss")
	}
	outer, err := v.Belief("m1", "outer race fault")
	if err != nil {
		t.Fatal(err)
	}
	if outer.Group != "bearing" || outer.Reports != 0 {
		t.Fatalf("unexpected outer view: %+v", outer)
	}
	// Evidence for the sibling condition reweights the whole group: both
	// cached views must be invalidated.
	deliver(t, engine, report("dc-1", "m1", "outer race fault", 0.6, base.Add(time.Minute)))
	inner2, err := v.Belief("m1", "inner race fault")
	if err != nil {
		t.Fatal(err)
	}
	if inner2.Cached {
		t.Fatal("sibling delivery must invalidate the cached inner view")
	}
	if inner2.Belief == inner.Belief {
		t.Fatal("conflicting sibling evidence should have reweighted inner belief")
	}
	// Invalidation granularity is the logical failure group: a delivery for
	// a different group on a different component must not bump the bearing
	// key's generation. (The read after it still recomputes — every report
	// observation bumps the health-registry version, which conservatively
	// covers watermark-driven reliability changes — but that path re-stores
	// under the same generation.)
	if _, err := v.Belief("m1", "inner race fault"); err != nil {
		t.Fatal(err)
	}
	innerKey := viewKey{kind: kindBelief, component: "m1", condition: "inner race fault"}
	genBefore, _, _ := v.snapshotKey(innerKey)
	deliver(t, engine, report("dc-1", "m2", "imbalance", 0.5, base.Add(2*time.Minute)))
	genAfter, _, _ := v.snapshotKey(innerKey)
	if genAfter != genBefore {
		t.Fatalf("group-unrelated delivery bumped the bearing generation: %d -> %d", genBefore, genAfter)
	}
	inner3, err := v.Belief("m1", "inner race fault")
	if err != nil {
		t.Fatal(err)
	}
	if inner3.Belief != inner2.Belief {
		t.Fatal("unrelated delivery must not change the bearing belief")
	}
}

func TestBeliefUnknownCondition(t *testing.T) {
	engine := newTestEngine(t)
	v := openTestViews(t, engine)
	if _, err := v.Belief("m1", "no such condition"); err == nil {
		t.Fatal("expected error for condition outside every group")
	}
	if _, err := v.Belief("", "imbalance"); err == nil {
		t.Fatal("expected error for empty component")
	}
}

func TestHeartbeatInvalidatesDiscountedViews(t *testing.T) {
	engine := newTestEngine(t)
	if err := engine.ConfigureHealth(health.Config{
		FreshFor:         time.Hour,
		StalenessHorizon: 10 * time.Hour,
	}); err != nil {
		t.Fatal(err)
	}
	v := openTestViews(t, engine)
	deliver(t, engine, report("dc-1", "m1", "imbalance", 0.9, base))
	fresh := v.Ranked()
	if got := v.Ranked(); !got.Cached || got.Items[0].Degraded {
		t.Fatalf("expected cached undegraded view, got %+v", got)
	}
	// A heartbeat from another DC advances the event-time watermark far past
	// dc-1's report: its evidence is now stale, so the cached view — computed
	// under the old registry version — must not be served.
	if err := engine.ObserveHeartbeat(&proto.Heartbeat{
		DCID: "dc-2", SentAt: base.Add(8 * time.Hour), Incarnation: 1,
	}); err != nil {
		t.Fatal(err)
	}
	after := v.Ranked()
	if after.Cached {
		t.Fatal("heartbeat must invalidate health-discounted views")
	}
	if !after.Items[0].Degraded || after.Items[0].Reliability >= fresh.Items[0].Reliability {
		t.Fatalf("expected degraded view after watermark advance, got %+v", after.Items[0])
	}
	if after.Items[0].Belief >= fresh.Items[0].Belief {
		t.Fatalf("stale evidence should have drained belief: %g -> %g",
			fresh.Items[0].Belief, after.Items[0].Belief)
	}
}

func TestWallClockToleranceBoundsStaleness(t *testing.T) {
	engine := newTestEngine(t)
	now := base
	clock := func() time.Time { return now }
	if err := engine.ConfigureHealth(health.Config{Clock: clock}); err != nil {
		t.Fatal(err)
	}

	// Tolerance 0 (default): wall-clocked registries disable caching of
	// discounted views entirely.
	v, err := Open(engine, Options{})
	if err != nil {
		t.Fatal(err)
	}
	deliver(t, engine, report("dc-1", "m1", "imbalance", 0.8, base))
	v.Ranked()
	if v.Ranked().Cached {
		t.Fatal("wall-clocked registry with zero tolerance must never serve cached views")
	}
	v.Close()

	// With a tolerance, hits are served until the clock outruns it.
	v2, err := Open(engine, Options{WallClockTolerance: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	v2.Ranked()
	if !v2.Ranked().Cached {
		t.Fatal("expected a hit within the tolerance")
	}
	now = now.Add(2 * time.Minute)
	if v2.Ranked().Cached {
		t.Fatal("entry older than the tolerance must not be served")
	}
}

func TestTrendViewProjectsThreshold(t *testing.T) {
	engine := newTestEngine(t)
	v := openTestViews(t, engine)
	for i := 0; i < 5; i++ {
		sev := 0.2 + 0.1*float64(i)
		r := report("dc-1", "m1", "imbalance", 0.8, base.Add(time.Duration(i)*24*time.Hour))
		r.Severity = sev
		deliver(t, engine, r)
	}
	tv := v.Trend("m1", "imbalance", 0.75)
	if len(tv.History) != 5 {
		t.Fatalf("expected 5 history points, got %d", len(tv.History))
	}
	if tv.Projection == nil {
		t.Fatalf("expected a projection, got error %q", tv.ProjectionError)
	}
	if len(tv.Rollups) == 0 {
		t.Fatal("expected rollup envelope buckets")
	}
	// A pair with no reports yields an empty, projection-less view.
	empty := v.Trend("m1", "outer race fault", 0.75)
	if len(empty.History) != 0 || empty.Projection != nil || empty.ProjectionError == "" {
		t.Fatalf("unexpected empty-pair trend view: %+v", empty)
	}
}

func TestWatchNoticesAndSlowConsumerDrops(t *testing.T) {
	engine := newTestEngine(t)
	v := openTestViews(t, engine)
	all := v.Watch("", 4)
	only := v.Watch("m2", 4)
	defer all.Close()
	defer only.Close()

	deliver(t, engine, report("dc-1", "m1", "imbalance", 0.8, base))
	n := <-all.C
	if n.Component != "m1" || n.Condition != "imbalance" || n.Seq != 1 {
		t.Fatalf("unexpected notice: %+v", n)
	}
	select {
	case n := <-only.C:
		t.Fatalf("m2 watcher should not see m1 traffic, got %+v", n)
	default:
	}
	deliver(t, engine, report("dc-1", "m2", "imbalance", 0.5, base.Add(time.Minute)))
	if n := <-only.C; n.Component != "m2" {
		t.Fatalf("unexpected notice: %+v", n)
	}
	if n := <-all.C; n.Component != "m2" || n.Seq != 2 {
		t.Fatalf("all-watcher should see m2 traffic too, got %+v", n)
	}

	// Overflow the all-watcher's drained 4-slot buffer:
	// deliveries never block, the excess is dropped and counted.
	for i := 0; i < 8; i++ {
		deliver(t, engine, report("dc-1", "m1", "imbalance", 0.8, base.Add(time.Duration(i+2)*time.Minute)))
	}
	if got := all.Dropped(); got != 4 {
		t.Fatalf("expected 4 dropped notices, got %d", got)
	}
	st := v.Stats()
	if st.NoticeDrops != 4 || st.Watchers != 2 {
		t.Fatalf("unexpected stats: %+v", st)
	}
	// Closing stops delivery (no drop counting either); Close is idempotent.
	all.Close()
	all.Close()
	deliver(t, engine, report("dc-1", "m2", "imbalance", 0.5, base.Add(time.Hour)))
	if n, ok := <-only.C; !ok || n.Component != "m2" {
		t.Fatalf("m2 watcher should outlive the closed all-watcher, got %+v (ok=%v)", n, ok)
	}
	if got := all.Dropped(); got != 4 {
		t.Fatalf("closed subscription must stop counting drops, got %d", got)
	}
}

func TestCloseDetachesFromEngine(t *testing.T) {
	engine := newTestEngine(t)
	v := openTestViews(t, engine)
	sub := v.Watch("", 1)
	v.Close()
	if _, ok := <-sub.C; ok {
		t.Fatal("Close must close subscriptions")
	}
	// Deliveries after Close must not panic or notify.
	deliver(t, engine, report("dc-1", "m1", "imbalance", 0.8, base))
	if got := v.Ranked(); got.Cached {
		t.Fatal("closed tier must not serve cached views")
	}
}
