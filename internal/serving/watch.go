package serving

import (
	"sync"
	"sync/atomic"
)

// Notice announces that fused state affecting a component changed: one
// notice per completed delivery, emitted when the write window closes.
// Notices are wake-ups, not data — a consumer reads the current view through
// the cache on receipt, so losing a notice under backpressure costs latency,
// never correctness.
type Notice struct {
	// Component is the mutated component; Condition the delivered condition
	// (other conditions in its group were reweighted too).
	Component string `json:"component"`
	Condition string `json:"condition"`
	// Seq numbers the notices this subscription attempted to deliver
	// (dropped ones included), so gaps are visible to the consumer.
	Seq uint64 `json:"seq"`
	// Dropped is the subscription's cumulative drop count at send time.
	Dropped uint64 `json:"dropped"`
}

// Subscription is one streaming watch: a bounded notice channel plus drop
// accounting. A slow consumer never blocks a delivery — when the buffer is
// full the notice is dropped and counted instead.
type Subscription struct {
	// C delivers notices; it is closed by Close (and by Views.Close).
	C <-chan Notice

	v         *Views
	component string // "" watches every component
	ch        chan Notice

	mu      sync.Mutex
	closed  bool
	seq     uint64
	dropped atomic.Uint64
}

// Watch subscribes to change notices, for every component (component == "")
// or one component. buf bounds the notice buffer (0: Options.WatchBuffer).
func (v *Views) Watch(component string, buf int) *Subscription {
	if buf <= 0 {
		buf = v.opts.WatchBuffer
	}
	ch := make(chan Notice, buf)
	s := &Subscription{v: v, component: component, ch: ch, C: ch}
	v.subMu.Lock()
	v.subs[s] = struct{}{}
	v.subMu.Unlock()
	return s
}

// Dropped returns how many notices this subscription has dropped on a full
// buffer.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// Close unsubscribes and closes C. Safe to call more than once, and
// concurrently with notice delivery.
func (s *Subscription) Close() {
	s.v.subMu.Lock()
	delete(s.v.subs, s)
	s.v.subMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	close(s.ch)
}

// offer delivers a notice without ever blocking: full buffer → drop + count.
func (s *Subscription) offer(component, condition string) (delivered bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.seq++
	n := Notice{
		Component: component,
		Condition: condition,
		Seq:       s.seq,
		Dropped:   s.dropped.Load(),
	}
	select {
	case s.ch <- n:
		return true
	default:
		s.dropped.Add(1)
		return false
	}
}

// notify fans a change out to every matching subscription.
func (v *Views) notify(component, condition string) {
	v.subMu.Lock()
	subs := make([]*Subscription, 0, len(v.subs))
	//lint:allow maporder each subscription has its own channel; cross-subscription delivery order is unobservable
	for s := range v.subs {
		if s.component == "" || s.component == component {
			subs = append(subs, s)
		}
	}
	v.subMu.Unlock()
	for _, s := range subs {
		if s.offer(component, condition) {
			v.notices.Add(1)
		} else {
			v.noticeDrops.Add(1)
		}
	}
}
