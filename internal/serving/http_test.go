package serving

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func newTestServer(t *testing.T) (*httptest.Server, *Views) {
	t.Helper()
	engine := newTestEngine(t)
	v := openTestViews(t, engine)
	srv := httptest.NewServer(NewHandler(v))
	t.Cleanup(srv.Close)
	deliver(t, engine, report("dc-1", "m1", "imbalance", 0.8, base))
	deliver(t, engine, report("dc-1", "m1", "inner race fault", 0.6, base.Add(time.Minute)))
	return srv, v
}

func getJSON(t *testing.T, url string, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
}

func TestHTTPRanked(t *testing.T) {
	srv, _ := newTestServer(t)
	var got rankedJSON
	getJSON(t, srv.URL+"/ranked", http.StatusOK, &got)
	if len(got.Items) != 2 {
		t.Fatalf("expected 2 ranked items, got %+v", got)
	}
	if got.Items[0].Belief < got.Items[1].Belief {
		t.Fatal("ranked items must be most-urgent-first")
	}
	if got.Items[0].Component != "m1" || got.Items[0].Group == "" {
		t.Fatalf("missing fields: %+v", got.Items[0])
	}
	// A repeat read serves the materialized view and says so.
	var again rankedJSON
	getJSON(t, srv.URL+"/ranked", http.StatusOK, &again)
	if !again.Cached || again.Epoch == 0 {
		t.Fatalf("second read should be a cache hit with an epoch, got %+v", again)
	}
}

func TestHTTPBelief(t *testing.T) {
	srv, _ := newTestServer(t)
	var bv BeliefView
	getJSON(t, srv.URL+"/belief?component=m1&condition=imbalance", http.StatusOK, &bv)
	if bv.Component != "m1" || bv.Condition != "imbalance" || bv.Belief <= 0 {
		t.Fatalf("unexpected belief view: %+v", bv)
	}
	if bv.Unknown <= 0 || bv.Unknown >= 1 {
		t.Fatalf("expected residual unknown mass in (0,1), got %g", bv.Unknown)
	}
	getJSON(t, srv.URL+"/belief?component=m1", http.StatusBadRequest, nil)
	getJSON(t, srv.URL+"/belief?component=m1&condition=nope", http.StatusNotFound, nil)
}

func TestHTTPTrend(t *testing.T) {
	srv, _ := newTestServer(t)
	var tv TrendView
	getJSON(t, srv.URL+"/trend?component=m1&condition=imbalance", http.StatusOK, &tv)
	if len(tv.History) != 1 || tv.Threshold != 0.75 {
		t.Fatalf("unexpected trend view: %+v", tv)
	}
	getJSON(t, srv.URL+"/trend?component=m1&condition=imbalance&threshold=0.5", http.StatusOK, &tv)
	if tv.Threshold != 0.5 {
		t.Fatalf("threshold not applied: %+v", tv)
	}
	getJSON(t, srv.URL+"/trend?component=m1&condition=imbalance&threshold=2", http.StatusBadRequest, nil)
	getJSON(t, srv.URL+"/trend?condition=imbalance", http.StatusBadRequest, nil)
}

func TestHTTPHealthAndStats(t *testing.T) {
	srv, v := newTestServer(t)
	getJSON(t, srv.URL+"/ranked", http.StatusOK, new(rankedJSON))
	getJSON(t, srv.URL+"/ranked", http.StatusOK, new(rankedJSON))
	var st Stats
	getJSON(t, srv.URL+"/stats", http.StatusOK, &st)
	if st.Hits == 0 || st != v.Stats() {
		t.Fatalf("stats endpoint out of sync: %+v vs %+v", st, v.Stats())
	}
	getJSON(t, srv.URL+"/health", http.StatusOK, new([]map[string]any))
	// Non-GET methods are rejected by the method-scoped mux patterns.
	resp, err := http.Post(srv.URL+"/ranked", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /ranked: status %d, want 405", resp.StatusCode)
	}
}

func TestHTTPWatchStream(t *testing.T) {
	srv, v := newTestServer(t)
	engine := v.Engine()

	resp, err := http.Get(srv.URL + "/watch?component=m1&buffer=8")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("unexpected content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)

	// First line is the baseline ranked view filtered to m1.
	if !sc.Scan() {
		t.Fatalf("no baseline line: %v", sc.Err())
	}
	var baseline rankedJSON
	if err := json.Unmarshal(sc.Bytes(), &baseline); err != nil {
		t.Fatal(err)
	}
	if len(baseline.Items) != 2 {
		t.Fatalf("baseline should carry m1's 2 items, got %+v", baseline)
	}

	// A delivery for the watched component streams an event with the fresh
	// view attached.
	deliver(t, engine, report("dc-2", "m1", "imbalance", 0.9, base.Add(time.Hour)))
	if !sc.Scan() {
		t.Fatalf("no event line: %v", sc.Err())
	}
	var ev watchEventJSON
	if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Notice.Component != "m1" || ev.Notice.Condition != "imbalance" {
		t.Fatalf("unexpected notice: %+v", ev.Notice)
	}
	if ev.View == nil || ev.View.Reports != 2 {
		t.Fatalf("event should carry the updated view, got %+v", ev.View)
	}

	// Closing the tier ends the stream.
	v.Close()
	for sc.Scan() {
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream should end cleanly, got %v", err)
	}
}

func TestHTTPWatchBadBuffer(t *testing.T) {
	srv, _ := newTestServer(t)
	getJSON(t, srv.URL+"/watch?buffer=0", http.StatusBadRequest, nil)
	getJSON(t, srv.URL+"/watch?buffer=9999", http.StatusBadRequest, nil)
}
