package serving

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// This file is the HTTP+JSON face of the tier: the endpoints cmd/pdmed
// mounts for dashboards and fleet tooling.
//
//	GET /ranked                                  prioritized maintenance list
//	GET /belief?component=&condition=            one pair's fused state
//	GET /trend?component=&condition=&threshold=  severity history + projection
//	GET /watch?component=                        streaming change notices (NDJSON)
//	GET /health                                  fleet-health snapshot
//	GET /stats                                   cache/subscription counters
//
// Every response is JSON. /watch streams one JSON object per line and
// flushes after each; all other endpoints answer and close.

// rankedItemJSON is the wire shape of one maintenance-list row.
type rankedItemJSON struct {
	Component         string  `json:"component"`
	Condition         string  `json:"condition"`
	Group             string  `json:"group"`
	Belief            float64 `json:"belief"`
	Plausibility      float64 `json:"plausibility"`
	Reports           int     `json:"reports"`
	Reliability       float64 `json:"reliability"`
	Degraded          bool    `json:"degraded,omitempty"`
	TimeToHalfSeconds float64 `json:"time_to_half_seconds,omitempty"`
	HasPrognostic     bool    `json:"has_prognostic,omitempty"`
}

// rankedJSON is the /ranked response.
type rankedJSON struct {
	Gen    uint64           `json:"gen"`
	Cached bool             `json:"cached"`
	Epoch  uint64           `json:"epoch,omitempty"`
	Items  []rankedItemJSON `json:"items"`
}

func rankedToJSON(rv RankedView) rankedJSON {
	out := rankedJSON{Gen: rv.Gen, Cached: rv.Cached, Epoch: rv.Epoch,
		Items: make([]rankedItemJSON, len(rv.Items))}
	for i, it := range rv.Items {
		out.Items[i] = rankedItemJSON{
			Component:         it.Component,
			Condition:         it.Condition,
			Group:             it.Group,
			Belief:            it.Belief,
			Plausibility:      it.Plausibility,
			Reports:           it.Reports,
			Reliability:       it.Reliability,
			Degraded:          it.Degraded,
			TimeToHalfSeconds: it.TimeToHalf.Seconds(),
			HasPrognostic:     it.HasPrognostic,
		}
	}
	return out
}

// watchEventJSON is one /watch stream line: the notice plus the affected
// pair's current view (read through the cache on emission).
type watchEventJSON struct {
	Notice Notice      `json:"notice"`
	View   *BeliefView `json:"view,omitempty"`
}

// NewHandler mounts the read-side endpoints on a fresh mux.
func NewHandler(v *Views) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /ranked", v.handleRanked)
	mux.HandleFunc("GET /belief", v.handleBelief)
	mux.HandleFunc("GET /trend", v.handleTrend)
	mux.HandleFunc("GET /watch", v.handleWatch)
	mux.HandleFunc("GET /health", v.handleHealth)
	mux.HandleFunc("GET /stats", v.handleStats)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Best-effort: the peer may hang up mid-body; nothing to recover.
	_ = json.NewEncoder(w).Encode(body)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func (v *Views) handleRanked(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, rankedToJSON(v.Ranked()))
}

// pairParams extracts the component/condition query pair shared by /belief
// and /trend.
func pairParams(w http.ResponseWriter, r *http.Request) (component, condition string, ok bool) {
	q := r.URL.Query()
	component, condition = q.Get("component"), q.Get("condition")
	if component == "" || condition == "" {
		httpError(w, http.StatusBadRequest, "component and condition query parameters are required")
		return "", "", false
	}
	return component, condition, true
}

func (v *Views) handleBelief(w http.ResponseWriter, r *http.Request) {
	component, condition, ok := pairParams(w, r)
	if !ok {
		return
	}
	bv, err := v.Belief(component, condition)
	if err != nil {
		httpError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, bv)
}

func (v *Views) handleTrend(w http.ResponseWriter, r *http.Request) {
	component, condition, ok := pairParams(w, r)
	if !ok {
		return
	}
	threshold := 0.75
	if raw := r.URL.Query().Get("threshold"); raw != "" {
		t, err := strconv.ParseFloat(raw, 64)
		if err != nil || t <= 0 || t > 1 {
			httpError(w, http.StatusBadRequest, "threshold must be a number in (0,1]")
			return
		}
		threshold = t
	}
	writeJSON(w, http.StatusOK, v.Trend(component, condition, threshold))
}

func (v *Views) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, v.engine.Health().Snapshot())
}

func (v *Views) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, v.Stats())
}

// handleWatch streams change events as NDJSON until the client disconnects
// or the tier closes. Each event carries the notice and the affected pair's
// current cached view; drops under backpressure surface in notice.dropped.
func (v *Views) handleWatch(w http.ResponseWriter, r *http.Request) {
	component := r.URL.Query().Get("component")
	buf := 0
	if raw := r.URL.Query().Get("buffer"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 || n > 4096 {
			httpError(w, http.StatusBadRequest, "buffer must be an integer in [1,4096]")
			return
		}
		buf = n
	}
	flusher, canFlush := w.(http.Flusher)
	sub := v.Watch(component, buf)
	defer sub.Close()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	// Opening line: the current ranked view (filtered to the watched
	// component when one is named) so the consumer starts from a baseline
	// instead of waiting for the first change.
	rv := v.Ranked()
	baseline := rankedToJSON(rv)
	if component != "" {
		filtered := baseline.Items[:0]
		for _, it := range baseline.Items {
			if it.Component == component {
				filtered = append(filtered, it)
			}
		}
		baseline.Items = filtered
	}
	if err := enc.Encode(baseline); err != nil {
		return
	}
	if canFlush {
		flusher.Flush()
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case n, ok := <-sub.C:
			if !ok {
				return // tier closed
			}
			ev := watchEventJSON{Notice: n}
			if bv, err := v.Belief(n.Component, n.Condition); err == nil {
				ev.View = &bv
			}
			if err := enc.Encode(ev); err != nil {
				return // client hung up
			}
			if canFlush {
				flusher.Flush()
			}
		}
	}
}

// Server wraps an http.Server over the tier's handler with sane timeouts
// for the non-streaming endpoints left to the caller (streams must not be
// write-deadlined, so WriteTimeout stays 0; use ReadHeaderTimeout against
// slowloris instead).
func Server(v *Views) *http.Server {
	return &http.Server{
		Handler:           NewHandler(v),
		ReadHeaderTimeout: 10 * time.Second,
	}
}
