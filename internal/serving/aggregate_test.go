package serving

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/proto"
	"repro/internal/shard"
)

func testSummary(shardID, component, condition string, belief float64, at time.Time) *proto.FusedSummary {
	return &proto.FusedSummary{
		ShardID:      shardID,
		Component:    component,
		Condition:    condition,
		Group:        "bearing",
		Belief:       belief,
		Plausibility: belief + 0.1,
		Unknown:      1 - belief,
		Reports:      1,
		Reliability:  1,
		UpdatedAt:    at,
	}
}

// TestAggregatorHandlerPartialNeverErrors: the fleet endpoints answer 200
// with coverage metadata even when shards are missing or the pair is
// unknown — partial results with labels, never 5xx.
func TestAggregatorHandlerPartialNeverErrors(t *testing.T) {
	agg, err := shard.NewAggregator(shard.AggregatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	at := time.Date(1998, 8, 1, 0, 0, 0, 0, time.UTC)
	if err := agg.DeliverSummary(testSummary("shard-1", "m1", "outer race fault", 0.8, at), "shard-1", 1, 1); err != nil {
		t.Fatal(err)
	}
	// shard-2's evidence advances event time far past shard-1's horizon:
	// shard-1 is now silent and discounted.
	if err := agg.DeliverSummary(testSummary("shard-2", "m2", "imbalance", 0.5, at.Add(48*time.Hour)), "shard-2", 1, 1); err != nil {
		t.Fatal(err)
	}
	h := AggregatorHandler(agg)

	// /ranked: both rows, shard-1's degraded, response labeled degraded.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/ranked", nil))
	if rec.Code != 200 {
		t.Fatalf("/ranked status %d", rec.Code)
	}
	var ranked struct {
		Degraded bool `json:"degraded"`
		Coverage struct {
			ShardsTotal int  `json:"shards_total"`
			ShardsLive  int  `json:"shards_live"`
			Degraded    bool `json:"degraded"`
		} `json:"coverage"`
		Items []struct {
			Component  string  `json:"component"`
			Shard      string  `json:"shard"`
			ShardState string  `json:"shard_state"`
			Degraded   bool    `json:"degraded"`
			Unknown    float64 `json:"unknown"`
		} `json:"items"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &ranked); err != nil {
		t.Fatal(err)
	}
	if len(ranked.Items) != 2 || !ranked.Degraded || !ranked.Coverage.Degraded {
		t.Fatalf("/ranked: %+v", ranked)
	}
	if ranked.Coverage.ShardsTotal != 2 {
		t.Fatalf("coverage shards: %+v", ranked.Coverage)
	}
	for _, it := range ranked.Items {
		if it.Shard == "shard-1" && (!it.Degraded || it.ShardState == "alive") {
			t.Fatalf("silent shard's row not degraded: %+v", it)
		}
	}

	// /belief on a pair nobody concluded on: 200, covered=false, vacuous.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/belief?component=m9&condition=imbalance", nil))
	if rec.Code != 200 {
		t.Fatalf("/belief unknown pair status %d", rec.Code)
	}
	var belief struct {
		Covered bool    `json:"covered"`
		Unknown float64 `json:"unknown"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &belief); err != nil {
		t.Fatal(err)
	}
	if belief.Covered || belief.Unknown != 1 {
		t.Fatalf("/belief unknown pair: %+v", belief)
	}

	// Malformed request is the only 4xx.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/belief?component=m1", nil))
	if rec.Code != 400 {
		t.Fatalf("/belief missing condition status %d", rec.Code)
	}

	// /coverage standalone.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/coverage", nil))
	if rec.Code != 200 {
		t.Fatalf("/coverage status %d", rec.Code)
	}
}
