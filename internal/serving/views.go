// Package serving is the MPROS read-side serving tier: event-invalidated
// materialized views over the PDME, so operator dashboards and APIs read
// cached fused conclusions instead of recomputing Dempster fusion on every
// query.
//
// The paper's PDME serves one console; the ROADMAP's north star serves
// millions of readers against live ingest. The tier's coherence rule is
//
//	OOSM event ⇒ invalidate ⇒ bit-identical refuse
//
// a cache hit is bit-identical to a freshly recomputed fusion, including the
// health-discounted Reliability/Degraded fields. Three mechanisms enforce it:
//
//  1. Event invalidation, never polling: the tier subscribes to the ship
//     model's conclusion post/update events (§4.5's "without the need to
//     poll"), and every event bumps the generation of the affected keys.
//  2. A write window: the PDME brackets each delivery's fusion mutation with
//     BeginMutation/EndMutation (pdme.Invalidator). While a pair's window is
//     open, reads of views aggregating it bypass the cache (they recompute,
//     serving a fresh value) and nothing computed across the window is ever
//     stored — the seqlock discipline that keeps half-updated fusion state
//     out of the cache.
//  3. A health-registry version guard: staleness discounting makes fused
//     values depend on the health registry as well as on deliveries, and
//     heartbeats reach the registry without touching the OOSM. Every cached
//     entry records the registry identity and observation version it was
//     computed under, and a hit requires both to be unchanged. In event-time
//     mode (the default) registry outputs are a pure function of the
//     observation history, so the guard is exact; with an injected wall
//     clock, entries additionally expire after Options.WallClockTolerance.
//
// Invalidation granularity is the logical failure group: evidence for any
// member condition reweights every other member and the group's unknown
// mass, so a delivery invalidates the global ranked view plus every
// (component, member) belief view of its group.
package serving

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/health"
	"repro/internal/historian"
	"repro/internal/oosm"
	"repro/internal/pdme"
	"repro/internal/proto"
	"repro/internal/trend"
)

// Options tunes the tier.
type Options struct {
	// WallClockTolerance bounds the age of health-discounted entries when
	// the PDME's health registry runs on an injected wall clock (whose
	// discount factors drift between observations, outside the version
	// guard). Zero — the default — disables caching of discounted values
	// under a wall-clocked registry entirely: every read recomputes. In
	// event-time mode (no injected clock) the option is ignored and hits
	// stay bit-exact indefinitely.
	WallClockTolerance time.Duration
	// WatchBuffer is the default per-subscription notice buffer (0: 16).
	WatchBuffer int
}

const defaultWatchBuffer = 16

// viewKey identifies one cached artifact.
type viewKey struct {
	kind      uint8 // kindRanked or kindBelief
	component string
	condition string
}

const (
	kindRanked uint8 = iota
	kindBelief
)

var rankedKey = viewKey{kind: kindRanked}

// entry is one materialized view, stamped with everything that must be
// unchanged for it to still be bit-identical to a fresh fuse.
type entry struct {
	seq    uint64           // unique materialization id (Epoch on hits)
	gen    uint64           // key generation the compute ran under
	reg    *health.Registry // registry identity at compute time
	regVer uint64           // registry observation version at compute time
	at     time.Time        // registry clock at compute time (wall-clock mode)

	ranked []pdme.MaintenanceItem // kindRanked payload (shared, read-only)
	belief *BeliefView            // kindBelief payload (shared, read-only)
}

// keyState is the invalidation state of one key: a generation bumped by
// every invalidation and write-window edge, and the count of open windows.
type keyState struct {
	gen    uint64
	active int
	entry  *entry
}

// Stats are the tier's cumulative counters.
type Stats struct {
	// Hits served straight from a valid materialized view.
	Hits uint64 `json:"hits"`
	// Misses recomputed because no valid view existed.
	Misses uint64 `json:"misses"`
	// Bypasses recomputed because a write window was open on the key.
	Bypasses uint64 `json:"bypasses"`
	// Coalesced reads joined another reader's in-flight recompute instead
	// of fusing again (thundering-herd protection after an invalidation).
	Coalesced uint64 `json:"coalesced"`
	// Stores counts recomputed views accepted into the cache.
	Stores uint64 `json:"stores"`
	// Invalidations counts invalidation events (write windows + OOSM
	// conclusion events), not per-key generation bumps.
	Invalidations uint64 `json:"invalidations"`
	// Notices counts watch notices delivered to subscribers.
	Notices uint64 `json:"notices"`
	// NoticeDrops counts notices dropped on slow subscribers' full buffers.
	NoticeDrops uint64 `json:"notice_drops"`
	// Watchers is the current subscription count.
	Watchers int `json:"watchers"`
}

// HitRatio returns the fraction of reads served without running a fuse of
// their own: hits / (hits + misses + bypasses + coalesced), 0 before any
// read.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses + s.Bypasses + s.Coalesced
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Views is the read-side serving tier over one PDME. Safe for concurrent
// use by any number of readers while deliveries run at full rate.
type Views struct {
	engine *pdme.PDME
	opts   Options

	mu     sync.RWMutex
	keys   map[viewKey]*keyState
	closed bool

	subMu sync.Mutex
	subs  map[*Subscription]struct{}

	flightMu sync.Mutex
	flights  map[viewKey]*flight

	entrySeq      atomic.Uint64
	hits          atomic.Uint64
	misses        atomic.Uint64
	bypasses      atomic.Uint64
	coalesced     atomic.Uint64
	stores        atomic.Uint64
	invalidations atomic.Uint64
	notices       atomic.Uint64
	noticeDrops   atomic.Uint64

	oosmCreated *oosm.Subscription
	oosmUpdated *oosm.Subscription
}

// Open attaches a serving tier to the engine: it installs the write-window
// hook (one tier per PDME — a second Open replaces the first's hook) and
// subscribes to the ship model's conclusion post/update events. Close
// detaches both.
func Open(engine *pdme.PDME, opts Options) (*Views, error) {
	if engine == nil {
		return nil, fmt.Errorf("serving: nil engine")
	}
	if opts.WatchBuffer <= 0 {
		opts.WatchBuffer = defaultWatchBuffer
	}
	v := &Views{
		engine:  engine,
		opts:    opts,
		keys:    make(map[viewKey]*keyState),
		subs:    make(map[*Subscription]struct{}),
		flights: make(map[viewKey]*flight),
	}
	// §4.5 event model, not polling: conclusion posts (first report for a
	// pair) and updates (every refuse) invalidate the affected views. The
	// handlers run synchronously on the delivering goroutine, inside the
	// write window the Invalidator hook opens.
	model := engine.Model()
	v.oosmCreated = model.SubscribeClass(pdme.ConclusionClass, oosm.ObjectCreated, v.onConclusionEvent)
	v.oosmUpdated = model.SubscribeClass(pdme.ConclusionClass, oosm.ObjectUpdated, v.onConclusionEvent)
	engine.SetInvalidator(v)
	return v, nil
}

// Close detaches the tier from the engine and closes every subscription.
// Cached entries are dropped; reads after Close recompute fresh.
func (v *Views) Close() {
	v.engine.SetInvalidator(nil)
	v.oosmCreated.Cancel()
	v.oosmUpdated.Cancel()
	v.mu.Lock()
	v.closed = true
	v.keys = make(map[viewKey]*keyState)
	v.mu.Unlock()
	v.subMu.Lock()
	subs := make([]*Subscription, 0, len(v.subs))
	//lint:allow maporder subscriptions are closed independently; close order is unobservable from any one channel
	for s := range v.subs {
		subs = append(subs, s)
	}
	v.subMu.Unlock()
	for _, s := range subs {
		s.Close()
	}
}

// Engine returns the PDME the tier serves.
func (v *Views) Engine() *pdme.PDME { return v.engine }

// Stats returns the tier's cumulative counters.
func (v *Views) Stats() Stats {
	v.subMu.Lock()
	watchers := len(v.subs)
	v.subMu.Unlock()
	return Stats{
		Hits:          v.hits.Load(),
		Misses:        v.misses.Load(),
		Bypasses:      v.bypasses.Load(),
		Coalesced:     v.coalesced.Load(),
		Stores:        v.stores.Load(),
		Invalidations: v.invalidations.Load(),
		Notices:       v.notices.Load(),
		NoticeDrops:   v.noticeDrops.Load(),
		Watchers:      watchers,
	}
}

// affectedKeys returns every key a mutation of (component, condition)
// invalidates: the global ranked view plus the pair's whole failure group on
// that component.
func (v *Views) affectedKeys(component, condition string) []viewKey {
	keys := []viewKey{rankedKey}
	group, err := v.engine.GroupOf(condition)
	if err != nil {
		// A condition outside every group cannot have been fused; the ranked
		// bump alone is already conservative.
		return keys
	}
	for _, member := range v.engine.GroupMembers(group) {
		keys = append(keys, viewKey{kind: kindBelief, component: component, condition: member})
	}
	return keys
}

// BeginMutation implements pdme.Invalidator: open the write window on every
// affected key before any fusion state changes.
func (v *Views) BeginMutation(component, condition string) {
	v.invalidations.Add(1)
	v.mu.Lock()
	for _, k := range v.affectedKeys(component, condition) {
		ks := v.keyState(k)
		ks.active++
		ks.gen++
	}
	v.mu.Unlock()
}

// EndMutation implements pdme.Invalidator: close the write window (bumping
// the generation again, so views computed across it can never be stored) and
// notify watchers of the component.
//
//mpros:ingest fusion-event invalidation fan-out; must never block the mutator
func (v *Views) EndMutation(component, condition string) {
	v.mu.Lock()
	for _, k := range v.affectedKeys(component, condition) {
		ks := v.keyState(k)
		if ks.active > 0 {
			ks.active--
		}
		ks.gen++
	}
	v.mu.Unlock()
	v.notify(component, condition)
}

// InvalidateAll is the recovery epoch bump (pdme.RecoveryInvalidator):
// every key's generation advances and every materialized entry is dropped,
// so nothing cached before a crash-recovery can ever be served against the
// recovered fusion state. Open write windows (active counts) are
// preserved.
func (v *Views) InvalidateAll() {
	v.invalidations.Add(1)
	v.mu.Lock()
	//lint:allow maporder per-key generation bump; each key is touched exactly once, so order cannot affect the result
	for _, ks := range v.keys {
		ks.gen++
		ks.entry = nil
	}
	v.mu.Unlock()
}

// onConclusionEvent is the §4.5 hook: a conclusion object was posted or
// updated in the ship model. Reads the conclusion's pair back from the model
// and bumps the affected keys.
func (v *Views) onConclusionEvent(e oosm.Event) {
	props, err := v.engine.Model().Get(e.Object)
	if err != nil {
		return // conclusion deleted between event and read: nothing to map
	}
	component, _ := props["component"].(string)
	condition, _ := props["condition"].(string)
	if component == "" || condition == "" {
		return
	}
	v.invalidations.Add(1)
	v.mu.Lock()
	for _, k := range v.affectedKeys(component, condition) {
		v.keyState(k).gen++
	}
	v.mu.Unlock()
}

// keyState returns (creating if absent) a key's state. Callers hold v.mu.
func (v *Views) keyState(k viewKey) *keyState {
	ks, ok := v.keys[k]
	if !ok {
		ks = &keyState{}
		v.keys[k] = ks
	}
	return ks
}

// snapshotKey reads a key's current (generation, window count, entry).
func (v *Views) snapshotKey(k viewKey) (gen uint64, active int, e *entry) {
	v.mu.RLock()
	if ks, ok := v.keys[k]; ok {
		gen, active, e = ks.gen, ks.active, ks.entry
	}
	v.mu.RUnlock()
	return gen, active, e
}

// entryValid reports whether a cached entry's health stamp still holds: same
// registry, same observation version, and (wall-clock mode only) younger
// than the tolerance.
func (v *Views) entryValid(e *entry) bool {
	reg := v.engine.Health()
	if e.reg != reg || reg.Version() != e.regVer {
		return false
	}
	if reg.WallClocked() {
		if v.opts.WallClockTolerance <= 0 {
			return false
		}
		if reg.Now().Sub(e.at) > v.opts.WallClockTolerance {
			return false
		}
	}
	return true
}

// healthStamp samples the registry state a compute is about to run under.
func (v *Views) healthStamp() (*health.Registry, uint64, time.Time) {
	reg := v.engine.Health()
	ver := reg.Version()
	var at time.Time
	if reg.WallClocked() {
		at = reg.Now()
	}
	return reg, ver, at
}

// flight is one in-progress recompute that concurrent readers of the same
// key share instead of fusing again. Without it, every reader arriving
// while a key is invalid (or inside a write window) runs its own full fuse
// — a thundering herd that can keep the CPU so busy the write window never
// closes. A coalesced read returns the leader's result, marked Cached=false
// with no Epoch: it reflects a fuse that was in flight during the call, so
// it may lag the very newest delivery by at most one compute duration.
type flight struct {
	done   chan struct{}
	ranked []pdme.MaintenanceItem
	belief BeliefView
	err    error
}

// joinFlight returns the key's in-progress flight (leader=false) or
// registers a new one owned by the caller (leader=true), who must
// finishFlight it.
func (v *Views) joinFlight(k viewKey) (f *flight, leader bool) {
	v.flightMu.Lock()
	defer v.flightMu.Unlock()
	if f, ok := v.flights[k]; ok {
		return f, false
	}
	f = &flight{done: make(chan struct{})}
	v.flights[k] = f
	return f, true
}

// finishFlight publishes the leader's result and releases the joiners.
func (v *Views) finishFlight(k viewKey, f *flight) {
	v.flightMu.Lock()
	delete(v.flights, k)
	v.flightMu.Unlock()
	close(f.done)
}

// tryStore installs a freshly computed entry, unless an invalidation, a
// write window, or a health observation raced the compute — then the value
// is still served to the caller, just never cached.
func (v *Views) tryStore(k viewKey, g0 uint64, reg *health.Registry, regVer uint64, at time.Time, e *entry) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return
	}
	ks := v.keyState(k)
	if ks.gen != g0 || ks.active != 0 {
		return
	}
	if v.engine.Health() != reg || reg.Version() != regVer {
		return
	}
	e.seq = v.entrySeq.Add(1)
	e.gen, e.reg, e.regVer, e.at = g0, reg, regVer, at
	ks.entry = e
	v.stores.Add(1)
}

// RankedView is the materialized prioritized maintenance list.
type RankedView struct {
	// Items is most-urgent-first, exactly pdme.PrioritizedList. Shared with
	// other readers of the same generation: treat as read-only.
	Items []pdme.MaintenanceItem
	// Gen is the ranked key's generation at serve time.
	Gen uint64
	// Cached reports whether the view came from the cache (true) or was
	// recomputed for this call (false).
	Cached bool
	// Epoch identifies the materialization a hit served (0 on recompute).
	// Two hits with equal non-zero Epoch served the identical entry, with no
	// invalidation and no health observation in between — the handle
	// coherence checkers use to compare a hit against a fresh fuse without
	// racing ingest.
	Epoch uint64
}

// Ranked serves the prioritized maintenance list: from the materialized
// view when coherent, recomputed (and, when safe, re-materialized)
// otherwise. A served cache hit is bit-identical to what
// engine.PrioritizedList() would return at the same instant.
func (v *Views) Ranked() RankedView {
	gen, active, e := v.snapshotKey(rankedKey)
	if e != nil && active == 0 && e.gen == gen && v.entryValid(e) {
		v.hits.Add(1)
		return RankedView{Items: e.ranked, Gen: gen, Cached: true, Epoch: e.seq}
	}
	f, leader := v.joinFlight(rankedKey)
	if !leader {
		<-f.done
		v.coalesced.Add(1)
		return RankedView{Items: f.ranked, Gen: gen, Cached: false}
	}
	if active > 0 {
		v.bypasses.Add(1)
	} else {
		v.misses.Add(1)
	}
	reg, regVer, at := v.healthStamp()
	items := v.engine.PrioritizedList()
	f.ranked = items
	v.finishFlight(rankedKey, f)
	if active == 0 {
		v.tryStore(rankedKey, gen, reg, regVer, at, &entry{ranked: items})
	}
	return RankedView{Items: items, Gen: gen, Cached: false}
}

// BeliefView is the materialized per-pair belief state: the full fused
// diagnostic read (belief, plausibility, group unknown, health-discounted
// reliability) plus the fused prognostic vector.
type BeliefView struct {
	Component    string                 `json:"component"`
	Condition    string                 `json:"condition"`
	Group        string                 `json:"group"`
	Belief       float64                `json:"belief"`
	Plausibility float64                `json:"plausibility"`
	Unknown      float64                `json:"unknown"`
	Reports      int                    `json:"reports"`
	Reliability  float64                `json:"reliability"`
	Degraded     bool                   `json:"degraded"`
	Prognostic   proto.PrognosticVector `json:"prognostics,omitempty"`
	// Gen, Cached, and Epoch mirror RankedView's serve metadata.
	Gen    uint64 `json:"gen"`
	Cached bool   `json:"cached"`
	Epoch  uint64 `json:"epoch,omitempty"`
}

// Belief serves one pair's fused state, cached per (component, condition)
// and invalidated whenever any condition in the pair's failure group
// receives evidence on that component.
func (v *Views) Belief(component, condition string) (BeliefView, error) {
	if component == "" {
		return BeliefView{}, fmt.Errorf("serving: empty component")
	}
	k := viewKey{kind: kindBelief, component: component, condition: condition}
	gen, active, e := v.snapshotKey(k)
	if e != nil && active == 0 && e.gen == gen && v.entryValid(e) {
		v.hits.Add(1)
		bv := *e.belief
		bv.Gen, bv.Cached, bv.Epoch = gen, true, e.seq
		return bv, nil
	}
	f, leader := v.joinFlight(k)
	if !leader {
		<-f.done
		if f.err != nil {
			return BeliefView{}, f.err
		}
		v.coalesced.Add(1)
		bv := f.belief
		bv.Gen = gen
		return bv, nil
	}
	if active > 0 {
		v.bypasses.Add(1)
	} else {
		v.misses.Add(1)
	}
	reg, regVer, at := v.healthStamp()
	cs, vec, err := v.engine.ConditionSnapshot(component, condition)
	if err != nil {
		f.err = err
		v.finishFlight(k, f)
		return BeliefView{}, err
	}
	bv := BeliefView{
		Component:    component,
		Condition:    condition,
		Group:        cs.Group,
		Belief:       cs.Belief,
		Plausibility: cs.Plausibility,
		Unknown:      cs.Unknown,
		Reports:      cs.Reports,
		Reliability:  cs.Reliability,
		Degraded:     cs.Degraded,
		Prognostic:   vec,
	}
	f.belief = bv
	v.finishFlight(k, f)
	if active == 0 {
		stored := bv
		v.tryStore(k, gen, reg, regVer, at, &entry{belief: &stored})
	}
	bv.Gen = gen
	return bv, nil
}

// freshBelief recomputes a pair's view without touching the cache — the
// reference value coherence checks compare hits against.
func (v *Views) freshBelief(component, condition string) (BeliefView, error) {
	cs, vec, err := v.engine.ConditionSnapshot(component, condition)
	if err != nil {
		return BeliefView{}, err
	}
	return BeliefView{
		Component:    component,
		Condition:    condition,
		Group:        cs.Group,
		Belief:       cs.Belief,
		Plausibility: cs.Plausibility,
		Unknown:      cs.Unknown,
		Reports:      cs.Reports,
		Reliability:  cs.Reliability,
		Degraded:     cs.Degraded,
		Prognostic:   vec,
	}, nil
}

// TrendView is a snapshot-isolated severity-history read: the raw points,
// the per-day rollup envelope, and (when three or more points exist) the
// fitted projection to the severity threshold.
type TrendView struct {
	Component string             `json:"component"`
	Condition string             `json:"condition"`
	Threshold float64            `json:"threshold"`
	History   []trend.Point      `json:"history,omitempty"`
	Rollups   []historian.Rollup `json:"rollups,omitempty"`
	// Projection is nil when the pair has too few points to fit.
	Projection *trend.Projection `json:"projection,omitempty"`
	// ProjectionError explains a nil Projection.
	ProjectionError string `json:"projection_error,omitempty"`
}

// Trend reads a pair's severity history, rollup envelope, and threshold
// projection from the historian. The read is snapshot-isolated (sealed
// segments are shared immutably, the head is copied under a read lock), so
// arbitrarily long range reads never block ingest — and are never cached,
// since the snapshot is already consistent by construction.
func (v *Views) Trend(component, condition string, threshold float64) TrendView {
	tv := TrendView{
		Component: component,
		Condition: condition,
		Threshold: threshold,
		History:   v.engine.SeverityHistory(component, condition),
		Rollups:   v.engine.SeverityRollups(component, condition),
	}
	proj, err := trend.ProjectPoints(tv.History, threshold)
	if err != nil {
		tv.ProjectionError = err.Error()
		return tv
	}
	tv.Projection = &proj
	return tv
}
