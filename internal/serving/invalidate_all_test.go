package serving

import (
	"testing"
	"time"
)

// TestInvalidateAllDropsEveryMaterializedView: the recovery epoch bump —
// every cached view recomputes on its next read, and the invalidation
// counter reflects the flush.
func TestInvalidateAllDropsEveryMaterializedView(t *testing.T) {
	engine := newTestEngine(t)
	v := openTestViews(t, engine)
	deliver(t, engine, report("dc-1", "m1", "imbalance", 0.8, base))
	for i := 0; i < 3; i++ {
		deliver(t, engine, report("dc-1", "m1", "imbalance", 0.8, base.Add(time.Duration(i+1)*time.Minute)))
	}

	// Materialize the ranked and belief views, confirm they hit.
	v.Ranked()
	if _, err := v.Belief("m1", "imbalance"); err != nil {
		t.Fatal(err)
	}
	if !v.Ranked().Cached {
		t.Fatal("ranked view not materialized")
	}
	if bv, err := v.Belief("m1", "imbalance"); err != nil || !bv.Cached {
		t.Fatalf("belief view not materialized (err %v)", err)
	}

	before := v.Stats()
	v.InvalidateAll()
	if got := v.Stats().Invalidations; got != before.Invalidations+1 {
		t.Errorf("invalidations = %d, want %d", got, before.Invalidations+1)
	}

	if v.Ranked().Cached {
		t.Error("ranked view served from cache after InvalidateAll")
	}
	if bv, err := v.Belief("m1", "imbalance"); err != nil || bv.Cached {
		t.Errorf("belief view served from cache after InvalidateAll (err %v)", err)
	}
	// The flush is an epoch bump, not a teardown: views re-materialize.
	if !v.Ranked().Cached {
		t.Error("ranked view did not re-materialize after the flush")
	}
}
