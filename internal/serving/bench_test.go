package serving

import (
	"testing"
	"time"

	"repro/internal/oosm"
	"repro/internal/pdme"
	"repro/internal/proto"
	"repro/internal/relstore"
)

func benchEngine(b *testing.B, components int) *pdme.PDME {
	b.Helper()
	model, err := oosm.NewModel(relstore.NewMemory())
	if err != nil {
		b.Fatal(err)
	}
	engine, err := pdme.New(model, testGroups())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(engine.Close)
	for i := 0; i < components; i++ {
		comp := string(rune('a' + i%26))
		for _, cond := range []string{"inner race fault", "imbalance"} {
			if err := engine.Deliver(&proto.Report{
				DCID:               "dc-bench",
				KnowledgeSourceID:  "ks-bench",
				SensedObjectID:     "machine-" + comp,
				MachineConditionID: cond,
				Severity:           0.5,
				Belief:             0.6,
				Timestamp:          base.Add(time.Duration(i) * time.Minute),
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
	return engine
}

// BenchmarkRankedFresh is the no-cache baseline: every read re-fuses.
func BenchmarkRankedFresh(b *testing.B) {
	engine := benchEngine(b, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if items := engine.PrioritizedList(); len(items) == 0 {
			b.Fatal("empty list")
		}
	}
}

// BenchmarkRankedCached reads through the materialized view under steady
// state (no ingest): every read after the first is a hit.
func BenchmarkRankedCached(b *testing.B) {
	engine := benchEngine(b, 16)
	v, err := Open(engine, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(v.Close)
	v.Ranked()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rv := v.Ranked(); len(rv.Items) == 0 {
			b.Fatal("empty view")
		}
	}
}

// BenchmarkRankedCachedParallel is the serving-tier hot path: many readers,
// one materialized entry.
func BenchmarkRankedCachedParallel(b *testing.B) {
	engine := benchEngine(b, 16)
	v, err := Open(engine, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(v.Close)
	v.Ranked()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if rv := v.Ranked(); len(rv.Items) == 0 {
				b.Fatal("empty view")
			}
		}
	})
}

// BenchmarkBeliefCached measures the per-pair view path.
func BenchmarkBeliefCached(b *testing.B) {
	engine := benchEngine(b, 16)
	v, err := Open(engine, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(v.Close)
	if _, err := v.Belief("machine-a", "imbalance"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.Belief("machine-a", "imbalance"); err != nil {
			b.Fatal(err)
		}
	}
}
