package journal

import (
	"fmt"
	"testing"
)

// reportSizedBody approximates a journaled failure-prediction report
// envelope (JSON report + delivery tag) so the append benchmark measures
// the real per-accept durability cost.
func reportSizedBody() []byte {
	body := []byte(`{"dcid":"dc-bench","boot":12345678901,"seq":42,"report":{` +
		`"dcid":"dc-bench","component":"vib/motor-de","suite":"vibration",` +
		`"timestamp":"1998-08-01T12:00:00Z","conditions":[{"condition":"imbalance",` +
		`"severity":0.61,"belief":0.82,"prognostics":[{"p":0.1,"h":2592000},` +
		`{"p":0.35,"h":5184000},{"p":0.8,"h":7776000}]}],"features":{"rms":1.42,` +
		`"crest":3.1,"kurtosis":2.9,"band_1x":0.8,"band_2x":0.22,"band_gmf":0.05}}}`)
	return body
}

// BenchmarkAppendFsync is the per-accepted-report durability overhead: one
// framed write + fsync on the WAL.
func BenchmarkAppendFsync(b *testing.B) {
	j, _, err := Open(b.TempDir())
	if err != nil {
		b.Fatalf("Open: %v", err)
	}
	defer func() { _ = j.Close() }()
	body := reportSizedBody()
	b.SetBytes(int64(len(body)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := j.Append(1, body); err != nil {
			b.Fatalf("Append: %v", err)
		}
	}
}

// BenchmarkRecover measures checkpoint-load + tail-replay scan time as a
// function of journal tail length.
func BenchmarkRecover(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("tail=%d", n), func(b *testing.B) {
			dir := b.TempDir()
			j, _, err := Open(dir)
			if err != nil {
				b.Fatalf("Open: %v", err)
			}
			body := reportSizedBody()
			for i := 0; i < n; i++ {
				if _, err := j.Append(1, body); err != nil {
					b.Fatalf("Append: %v", err)
				}
			}
			if err := j.Close(); err != nil {
				b.Fatalf("Close: %v", err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j2, rec, err := Open(dir)
				if err != nil {
					b.Fatalf("reopen: %v", err)
				}
				if len(rec.Tail) != n {
					b.Fatalf("recovered %d records, want %d", len(rec.Tail), n)
				}
				if err := j2.Close(); err != nil {
					b.Fatalf("close: %v", err)
				}
			}
		})
	}
}
