package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mustOpen(t *testing.T, dir string) (*Journal, *Recovery) {
	t.Helper()
	j, rec, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return j, rec
}

func appendN(t *testing.T, j *Journal, kind byte, n int, label string) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := j.Append(kind, []byte(fmt.Sprintf("%s-%d", label, i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
}

func TestAppendReopenRoundtrip(t *testing.T) {
	dir := t.TempDir()
	j, rec := mustOpen(t, dir)
	if rec.Checkpoint != nil || len(rec.Tail) != 0 {
		t.Fatalf("fresh journal recovered state: %+v", rec)
	}
	bodies := [][]byte{[]byte("alpha"), []byte(""), bytes.Repeat([]byte{0xAB}, 4096)}
	for i, b := range bodies {
		seq, err := j.Append(byte(i+1), b)
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2, rec2 := mustOpen(t, dir)
	defer func() { _ = j2.Close() }()
	if len(rec2.Tail) != len(bodies) {
		t.Fatalf("recovered %d records, want %d", len(rec2.Tail), len(bodies))
	}
	for i, r := range rec2.Tail {
		if r.Seq != uint64(i+1) || r.Kind != byte(i+1) || !bytes.Equal(r.Body, bodies[i]) {
			t.Fatalf("record %d = %+v, want seq %d kind %d body %q", i, r, i+1, i+1, bodies[i])
		}
	}
	if got := j2.LastSeq(); got != uint64(len(bodies)) {
		t.Fatalf("LastSeq = %d, want %d", got, len(bodies))
	}
	if seq, err := j2.Append(9, []byte("next")); err != nil || seq != uint64(len(bodies)+1) {
		t.Fatalf("post-reopen Append = (%d, %v), want seq %d", seq, err, len(bodies)+1)
	}
}

func TestTornTailTruncatedAndReopenStable(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	appendN(t, j, 1, 5, "rec")
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	path := filepath.Join(dir, walName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read wal: %v", err)
	}
	// Chop into the last record's body: a torn single-write append.
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatalf("write torn wal: %v", err)
	}

	j2, rec := mustOpen(t, dir)
	if rec.TornBytes == 0 {
		t.Fatalf("torn tail not detected")
	}
	if len(rec.Tail) != 4 {
		t.Fatalf("recovered %d records after torn tail, want 4", len(rec.Tail))
	}
	if err := j2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen-stable: the truncation is durable, a second recovery sees a
	// clean file with the same prefix.
	j3, rec3 := mustOpen(t, dir)
	defer func() { _ = j3.Close() }()
	if rec3.TornBytes != 0 {
		t.Fatalf("second recovery still torn: %d bytes", rec3.TornBytes)
	}
	if len(rec3.Tail) != 4 {
		t.Fatalf("second recovery %d records, want 4", len(rec3.Tail))
	}
}

func TestInteriorCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	appendN(t, j, 1, 5, "rec")
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	path := filepath.Join(dir, walName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read wal: %v", err)
	}
	// Flip a byte in the middle of the file: a complete record with a bad
	// CRC is not a torn tail.
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write corrupted wal: %v", err)
	}
	if _, _, err := Open(dir); err == nil {
		t.Fatalf("Open accepted interior corruption")
	} else if !strings.Contains(err.Error(), "corrupted") {
		t.Fatalf("corruption error %q lacks diagnosis", err)
	}
}

func TestCheckpointCompactsAndFiltersTail(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	appendN(t, j, 1, 10, "rec")
	if err := j.WriteCheckpoint(7, []byte("state@7")); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	if got := j.SinceCheckpoint(); got != 3 {
		t.Fatalf("SinceCheckpoint = %d, want 3", got)
	}
	appendN(t, j, 2, 2, "post")
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2, rec := mustOpen(t, dir)
	defer func() { _ = j2.Close() }()
	if string(rec.Checkpoint) != "state@7" || rec.CheckpointSeq != 7 {
		t.Fatalf("checkpoint = (%q, %d), want (state@7, 7)", rec.Checkpoint, rec.CheckpointSeq)
	}
	wantSeqs := []uint64{8, 9, 10, 11, 12}
	if len(rec.Tail) != len(wantSeqs) {
		t.Fatalf("tail %d records, want %d", len(rec.Tail), len(wantSeqs))
	}
	for i, r := range rec.Tail {
		if r.Seq != wantSeqs[i] {
			t.Fatalf("tail[%d].Seq = %d, want %d", i, r.Seq, wantSeqs[i])
		}
	}
	if got := j2.LastSeq(); got != 12 {
		t.Fatalf("LastSeq = %d, want 12", got)
	}
}

func TestCrashBetweenCheckpointAndCompactSkipsStaleRecords(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	appendN(t, j, 1, 6, "rec")
	// Capture the WAL as it looks before the checkpoint's compaction...
	preCompact, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatalf("read wal: %v", err)
	}
	if err := j.WriteCheckpoint(4, []byte("state@4")); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// ...and restore it: this is exactly the on-disk state after a crash
	// between the checkpoint rename and the WAL compaction rename.
	if err := os.WriteFile(filepath.Join(dir, walName), preCompact, 0o644); err != nil {
		t.Fatalf("restore pre-compact wal: %v", err)
	}

	j2, rec := mustOpen(t, dir)
	defer func() { _ = j2.Close() }()
	if rec.CheckpointSeq != 4 {
		t.Fatalf("CheckpointSeq = %d, want 4", rec.CheckpointSeq)
	}
	if len(rec.Tail) != 2 || rec.Tail[0].Seq != 5 || rec.Tail[1].Seq != 6 {
		t.Fatalf("tail = %+v, want seqs 5,6 only (stale records skipped)", rec.Tail)
	}
	if got := j2.LastSeq(); got != 6 {
		t.Fatalf("LastSeq = %d, want 6", got)
	}
}

func TestStaleTempFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	appendN(t, j, 1, 3, "rec")
	if err := j.WriteCheckpoint(2, []byte("state@2")); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// A crash mid-replace leaves temp files behind; they must not shadow
	// the committed ones.
	for _, tmp := range []string{ckptName + ".tmp", walName + ".tmp"} {
		if err := os.WriteFile(filepath.Join(dir, tmp), []byte("garbage from a dying process"), 0o644); err != nil {
			t.Fatalf("plant temp: %v", err)
		}
	}
	j2, rec := mustOpen(t, dir)
	defer func() { _ = j2.Close() }()
	if string(rec.Checkpoint) != "state@2" || len(rec.Tail) != 1 || rec.Tail[0].Seq != 3 {
		t.Fatalf("recovery with stale temps = (%q, %+v)", rec.Checkpoint, rec.Tail)
	}
	for _, tmp := range []string{ckptName + ".tmp", walName + ".tmp"} {
		if _, err := os.Stat(filepath.Join(dir, tmp)); !os.IsNotExist(err) {
			t.Fatalf("stale temp %s survived Open", tmp)
		}
	}
}

func TestCorruptedCheckpointRefused(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	appendN(t, j, 1, 3, "rec")
	if err := j.WriteCheckpoint(3, []byte("state@3")); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	path := filepath.Join(dir, ckptName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read checkpoint: %v", err)
	}
	data[len(data)-2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write corrupted checkpoint: %v", err)
	}
	if _, _, err := Open(dir); err == nil {
		t.Fatalf("Open accepted corrupted checkpoint")
	}
}

func TestCheckpointWatermarkValidation(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	defer func() { _ = j.Close() }()
	appendN(t, j, 1, 5, "rec")
	if err := j.WriteCheckpoint(0, nil); err == nil {
		t.Fatalf("accepted zero watermark")
	}
	if err := j.WriteCheckpoint(6, nil); err == nil {
		t.Fatalf("accepted watermark beyond last append")
	}
	if err := j.WriteCheckpoint(4, []byte("s4")); err != nil {
		t.Fatalf("WriteCheckpoint(4): %v", err)
	}
	if err := j.WriteCheckpoint(3, []byte("s3")); err == nil {
		t.Fatalf("accepted watermark regression")
	}
	// Re-checkpointing at the same watermark is legal (idempotent refresh).
	if err := j.WriteCheckpoint(4, []byte("s4b")); err != nil {
		t.Fatalf("same-watermark refresh: %v", err)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := j.Append(1, []byte("x")); err == nil {
		t.Fatalf("Append after Close succeeded")
	}
	if err := j.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestOversizeBodyRefused(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	defer func() { _ = j.Close() }()
	if _, err := j.Append(1, make([]byte, maxBodySize+1)); err == nil {
		t.Fatalf("oversize body accepted")
	}
}
