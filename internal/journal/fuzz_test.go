package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// journalFiles builds realistic WAL + checkpoint bytes by driving the real
// write path, for use as fuzz seeds.
func journalFiles(tb testing.TB, mutate func(j *Journal)) (wal, ckpt []byte) {
	tb.Helper()
	dir := tb.TempDir()
	j, _, err := Open(dir)
	if err != nil {
		tb.Fatalf("seed journal: %v", err)
	}
	mutate(j)
	if err := j.Close(); err != nil {
		tb.Fatalf("close seed journal: %v", err)
	}
	wal, err = os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		tb.Fatalf("read seed wal: %v", err)
	}
	ckpt, _ = os.ReadFile(filepath.Join(dir, ckptName)) // may not exist
	return wal, ckpt
}

// FuzzJournalRecover writes arbitrary bytes as the WAL and checkpoint
// files and opens the journal. Recovery must never panic. When it accepts
// the pair, the rebuilt state must be a consistent prefix (tail sequences
// strictly ascending and above the checkpoint watermark, next-append
// sequence beyond everything recovered) and stable: a second open after
// close must see the identical checkpoint and tail, because recovery
// repairs the WAL in place.
func FuzzJournalRecover(f *testing.F) {
	wal, ckpt := journalFiles(f, func(j *Journal) {
		for i := 0; i < 6; i++ {
			if _, err := j.Append(byte(i%3+1), bytes.Repeat([]byte{byte('a' + i)}, i*7)); err != nil {
				f.Fatalf("seed append: %v", err)
			}
		}
		if err := j.WriteCheckpoint(4, []byte(`{"received":4}`)); err != nil {
			f.Fatalf("seed checkpoint: %v", err)
		}
	})
	walOnly, _ := journalFiles(f, func(j *Journal) {
		for i := 0; i < 3; i++ {
			if _, err := j.Append(1, []byte("rec")); err != nil {
				f.Fatalf("seed append: %v", err)
			}
		}
	})
	f.Add(wal, ckpt)
	f.Add(walOnly, []byte(nil))        // no checkpoint yet
	f.Add(wal[:len(wal)-3], ckpt)      // torn WAL tail mid-record
	f.Add(wal[:len(walMagic)+5], ckpt) // torn first record
	f.Add(wal[:3], ckpt)               // torn header
	f.Add(wal, ckpt[:len(ckpt)-2])     // truncated checkpoint
	flippedWAL := bytes.Clone(wal)
	flippedWAL[len(flippedWAL)-1] ^= 0x40
	f.Add(flippedWAL, ckpt) // CRC breaks on the last WAL record
	flippedCkpt := bytes.Clone(ckpt)
	flippedCkpt[len(flippedCkpt)/2] ^= 0x01
	f.Add(wal, flippedCkpt) // checkpoint body corrupted
	f.Add([]byte{}, []byte{})
	f.Add([]byte("MPROSWJ1 but not really a journal"), []byte("MPROSCK1 nor a checkpoint"))

	f.Fuzz(func(t *testing.T, walData, ckptData []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walName), walData, 0o644); err != nil {
			t.Fatal(err)
		}
		if len(ckptData) > 0 {
			if err := os.WriteFile(filepath.Join(dir, ckptName), ckptData, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		j, rec, err := Open(dir)
		if err != nil {
			return // refused input: any error is acceptable, panics are not
		}
		prev := rec.CheckpointSeq
		for i, r := range rec.Tail {
			if r.Seq <= prev {
				t.Fatalf("tail[%d] seq %d not above %d", i, r.Seq, prev)
			}
			prev = r.Seq
		}
		if last := j.LastSeq(); last < prev {
			t.Fatalf("LastSeq %d behind recovered tail %d", last, prev)
		}
		if err := j.Close(); err != nil {
			t.Fatalf("close recovered journal: %v", err)
		}

		j2, rec2, err := Open(dir)
		if err != nil {
			t.Fatalf("recovery not stable: reopen failed: %v", err)
		}
		defer func() { _ = j2.Close() }()
		if !bytes.Equal(rec2.Checkpoint, rec.Checkpoint) || rec2.CheckpointSeq != rec.CheckpointSeq {
			t.Fatalf("checkpoint changed across reopen")
		}
		if rec2.TornBytes != 0 {
			t.Fatalf("second recovery still torn: %d bytes", rec2.TornBytes)
		}
		if len(rec2.Tail) != len(rec.Tail) {
			t.Fatalf("tail count changed across reopen: %d then %d", len(rec.Tail), len(rec2.Tail))
		}
		for i, r := range rec2.Tail {
			if r.Seq != rec.Tail[i].Seq || r.Kind != rec.Tail[i].Kind || !bytes.Equal(r.Body, rec.Tail[i].Body) {
				t.Fatalf("tail[%d] changed across reopen", i)
			}
		}
	})
}
