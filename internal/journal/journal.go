// Package journal is the PDME's durability substrate: a write-ahead log of
// accepted envelopes plus an atomically-replaced checkpoint of the derived
// state, so a SIGKILL'd engine recovers by checkpoint-load + tail-replay
// instead of losing the fleet's diagnosis.
//
// Layering: this package knows nothing about reports, heartbeats, or fusion.
// Records are (kind, body) blobs under a monotonically increasing journal
// sequence (jseq); the checkpoint is an opaque blob pinned to the jseq
// watermark it covers. The PDME owns both encodings.
//
// WAL file format (append-only, one file per journal dir):
//
//	header:  magic "MPROSWJ1"
//	records: u32 recMagic | u8 kind | u64 jseq | u32 bodyLen | body | u32 crc
//
// Checkpoint file format (whole file replaced via temp + rename):
//
//	magic "MPROSCK1" | u64 jseq | u32 bodyLen | body | u32 crc
//
// All integers little-endian; each CRC covers everything between the magic
// and itself. Every WAL record is appended in a single write and fsynced
// before Append returns, so recovery follows the historian/spool idiom
// exactly: an incomplete final record is a torn tail (truncate and
// continue); a complete record with a bad magic, bad CRC, or non-ascending
// jseq is interior corruption (refuse the file).
//
// After a checkpoint commits (rename + dir sync) the WAL is compacted to
// the records above the watermark, itself via temp + rename. A crash
// between the two renames leaves stale records (jseq ≤ watermark) in the
// WAL; recovery skips them by sequence, so the pair of files is consistent
// no matter where the crash lands.
package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
)

const (
	walName  = "wal.mprosj"
	ckptName = "checkpoint.mprosc"

	walMagic  = "MPROSWJ1"
	ckptMagic = "MPROSCK1"

	recMagic    = uint32(0x4A524E31) // "JRN1"
	recFrame    = 4 + 1 + 8 + 4 + 4  // magic + kind + jseq + len + crc
	maxBodySize = 1 << 20

	// maxCheckpointSize bounds the checkpoint blob far above any real
	// snapshot; it exists only so a corrupted length field cannot drive a
	// giant allocation.
	maxCheckpointSize = 1 << 28
)

// Record is one journaled envelope: an opaque body under a caller-chosen
// kind byte and the jseq the journal assigned at append time.
type Record struct {
	Seq  uint64
	Kind byte
	Body []byte
}

// Recovery reports what Open found on disk: the durable checkpoint blob
// (nil when none has ever been written), the watermark it covers, the live
// WAL tail (records above the watermark, in append order), and how many
// torn bytes were truncated from the WAL.
type Recovery struct {
	Checkpoint    []byte
	CheckpointSeq uint64
	Tail          []Record
	TornBytes     int64
}

// Journal is a single-writer WAL + checkpoint pair rooted in one
// directory. Safe for concurrent use; Append, WriteCheckpoint, and Close
// serialize internally.
type Journal struct {
	mu     sync.Mutex
	dir    string
	path   string
	f      *os.File
	closed bool

	nextSeq uint64
	ckpt    uint64 // watermark of the durable checkpoint (0 = none)
	// tail mirrors the WAL records above the checkpoint watermark so
	// compaction can rewrite the file without re-reading it. Bounded by the
	// owner's checkpoint cadence.
	tail []Record
}

// Open opens (creating if needed) the journal in dir, recovering the
// checkpoint and WAL tail. A torn WAL tail is truncated; interior
// corruption in either file is refused with an error.
func Open(dir string) (*Journal, *Recovery, error) {
	if dir == "" {
		return nil, nil, fmt.Errorf("journal: empty dir")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: create dir: %w", err)
	}
	// Leftover temp files are crashes mid-replace; the rename never
	// happened, so they are dead weight.
	for _, tmp := range []string{ckptName + ".tmp", walName + ".tmp"} {
		if err := os.Remove(filepath.Join(dir, tmp)); err != nil && !os.IsNotExist(err) {
			return nil, nil, fmt.Errorf("journal: clear stale temp: %w", err)
		}
	}
	j := &Journal{dir: dir, path: filepath.Join(dir, walName), nextSeq: 1}
	rec := &Recovery{}

	blob, ckptSeq, err := readCheckpoint(filepath.Join(dir, ckptName))
	if err != nil {
		return nil, nil, err
	}
	if blob != nil {
		j.ckpt = ckptSeq
		j.nextSeq = ckptSeq + 1
		rec.Checkpoint = blob
		rec.CheckpointSeq = ckptSeq
	}

	torn, err := j.recoverWAL()
	if err != nil {
		return nil, nil, err
	}
	rec.TornBytes = torn
	rec.Tail = append([]Record(nil), j.tail...)

	f, err := os.OpenFile(j.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: open wal: %w", err)
	}
	if info, err := f.Stat(); err == nil && info.Size() == 0 {
		if _, err := f.Write([]byte(walMagic)); err != nil {
			_ = f.Close() // best effort: the write error is the story
			return nil, nil, fmt.Errorf("journal: write wal header: %w", err)
		}
		if err := f.Sync(); err != nil {
			_ = f.Close() // best effort: the sync error is the story
			return nil, nil, fmt.Errorf("journal: sync wal header: %w", err)
		}
	}
	j.f = f
	return j, rec, nil
}

// readCheckpoint loads and verifies the checkpoint file. A missing file is
// (nil, 0, nil); anything present but malformed is refused — checkpoints
// are replaced atomically, so a damaged one is external corruption, not a
// crash artifact.
func readCheckpoint(path string) ([]byte, uint64, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("journal: read checkpoint: %w", err)
	}
	hdr := len(ckptMagic) + 8 + 4
	if len(data) < hdr+4 {
		return nil, 0, fmt.Errorf("journal: %s: truncated checkpoint (corrupted)", path)
	}
	if string(data[:len(ckptMagic)]) != ckptMagic {
		return nil, 0, fmt.Errorf("journal: %s: bad checkpoint magic (corrupted)", path)
	}
	seq := binary.LittleEndian.Uint64(data[len(ckptMagic):])
	if seq == 0 || seq == ^uint64(0) {
		return nil, 0, fmt.Errorf("journal: %s: implausible checkpoint watermark (corrupted)", path)
	}
	bodyLen := int(binary.LittleEndian.Uint32(data[len(ckptMagic)+8:]))
	if bodyLen < 0 || bodyLen > maxCheckpointSize {
		return nil, 0, fmt.Errorf("journal: %s: implausible checkpoint body %d (corrupted)", path, bodyLen)
	}
	if len(data) != hdr+bodyLen+4 {
		return nil, 0, fmt.Errorf("journal: %s: checkpoint length mismatch (corrupted)", path)
	}
	payload := data[len(ckptMagic) : hdr+bodyLen]
	wantCRC := binary.LittleEndian.Uint32(data[hdr+bodyLen:])
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return nil, 0, fmt.Errorf("journal: %s: checkpoint CRC mismatch (corrupted)", path)
	}
	return append([]byte(nil), data[hdr:hdr+bodyLen]...), seq, nil
}

// recoverWAL scans the WAL, filling j.tail with records above the
// checkpoint watermark and advancing j.nextSeq. Returns truncated torn
// bytes.
func (j *Journal) recoverWAL() (int64, error) {
	data, err := os.ReadFile(j.path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("journal: read wal: %w", err)
	}
	if len(data) == 0 {
		return 0, nil
	}
	if len(data) < len(walMagic) {
		// The header itself never finished its first write; no record can
		// exist, so treat the whole file as torn.
		if err := truncateFile(j.path, 0); err != nil {
			return 0, err
		}
		return int64(len(data)), nil
	}
	if string(data[:len(walMagic)]) != walMagic {
		return 0, fmt.Errorf("journal: %s: bad wal magic (corrupted)", j.path)
	}
	off := len(walMagic)
	prevSeq := uint64(0)
	tornAt := -1
	for off < len(data) {
		remaining := len(data) - off
		if remaining < recFrame-4 { // not even the fixed fields before the body
			tornAt = off
			break
		}
		magic := binary.LittleEndian.Uint32(data[off:])
		if magic != recMagic {
			return 0, fmt.Errorf("journal: %s: bad record magic at offset %d (corrupted)", j.path, off)
		}
		kind := data[off+4]
		seq := binary.LittleEndian.Uint64(data[off+5:])
		if seq == ^uint64(0) {
			// A legitimate writer can never reach the last sequence;
			// accepting it would overflow nextSeq back to zero.
			return 0, fmt.Errorf("journal: %s: implausible sequence at offset %d (corrupted)", j.path, off)
		}
		if seq <= prevSeq {
			// The writer assigns strictly ascending jseqs; a regression is
			// not something a torn single-write append can produce.
			return 0, fmt.Errorf("journal: %s: non-ascending sequence at offset %d (corrupted)", j.path, off)
		}
		bodyLen := int(binary.LittleEndian.Uint32(data[off+13:]))
		if bodyLen < 0 || bodyLen > maxBodySize {
			return 0, fmt.Errorf("journal: %s: implausible record body %d at offset %d (corrupted)", j.path, bodyLen, off)
		}
		need := recFrame + bodyLen
		if remaining < need {
			// The final record never finished its single-write append.
			tornAt = off
			break
		}
		payload := data[off+4 : off+17+bodyLen]
		wantCRC := binary.LittleEndian.Uint32(data[off+17+bodyLen:])
		if crc32.ChecksumIEEE(payload) != wantCRC {
			return 0, fmt.Errorf("journal: %s: record CRC mismatch at offset %d (corrupted)", j.path, off)
		}
		prevSeq = seq
		if seq > j.ckpt {
			// Records at or below the watermark are a crash between the
			// checkpoint rename and the WAL compaction: already covered.
			body := append([]byte(nil), data[off+17:off+17+bodyLen]...)
			j.tail = append(j.tail, Record{Seq: seq, Kind: kind, Body: body})
		}
		off += need
	}
	var torn int64
	if tornAt >= 0 {
		torn = int64(len(data) - tornAt)
		if err := truncateFile(j.path, int64(tornAt)); err != nil {
			return 0, err
		}
	}
	if prevSeq >= j.nextSeq {
		j.nextSeq = prevSeq + 1
	}
	return torn, nil
}

func truncateFile(path string, size int64) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("journal: open for truncate: %w", err)
	}
	if err := f.Truncate(size); err != nil {
		_ = f.Close() // best effort: the truncate error is the story
		return fmt.Errorf("journal: truncate torn wal tail: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close() // best effort: the sync error is the story
		return fmt.Errorf("journal: sync truncated wal: %w", err)
	}
	return f.Close()
}

// Append frames, writes, and fsyncs one record, returning its jseq. The
// record is durable when Append returns — callers mutate derived state
// only after.
func (j *Journal) Append(kind byte, body []byte) (uint64, error) {
	if len(body) > maxBodySize {
		return 0, fmt.Errorf("journal: record body %d exceeds limit %d", len(body), maxBodySize)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return 0, fmt.Errorf("journal: closed")
	}
	seq := j.nextSeq
	buf := frameRecord(kind, seq, body)
	if _, err := j.f.Write(buf); err != nil {
		return 0, fmt.Errorf("journal: append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return 0, fmt.Errorf("journal: fsync append: %w", err)
	}
	j.nextSeq = seq + 1
	j.tail = append(j.tail, Record{Seq: seq, Kind: kind, Body: append([]byte(nil), body...)})
	return seq, nil
}

// frameRecord builds the single-write on-disk form of one record.
func frameRecord(kind byte, seq uint64, body []byte) []byte {
	buf := make([]byte, recFrame+len(body))
	binary.LittleEndian.PutUint32(buf, recMagic)
	buf[4] = kind
	binary.LittleEndian.PutUint64(buf[5:], seq)
	binary.LittleEndian.PutUint32(buf[13:], uint32(len(body)))
	copy(buf[17:], body)
	crc := crc32.ChecksumIEEE(buf[4 : 17+len(body)])
	binary.LittleEndian.PutUint32(buf[17+len(body):], crc)
	return buf
}

// WriteCheckpoint durably replaces the checkpoint with blob covering every
// record with jseq ≤ seq, then compacts the WAL down to the records above
// seq. The checkpoint commits at the rename: a crash before it keeps the
// old checkpoint, a crash after it but before the WAL compaction leaves
// stale records that recovery skips by sequence.
func (j *Journal) WriteCheckpoint(seq uint64, blob []byte) error {
	if seq == 0 || seq == ^uint64(0) {
		return fmt.Errorf("journal: implausible checkpoint watermark %d", seq)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("journal: closed")
	}
	if seq >= j.nextSeq {
		return fmt.Errorf("journal: checkpoint watermark %d beyond last append %d", seq, j.nextSeq-1)
	}
	if seq < j.ckpt {
		return fmt.Errorf("journal: checkpoint watermark %d behind durable checkpoint %d", seq, j.ckpt)
	}
	path := filepath.Join(j.dir, ckptName)
	hdr := len(ckptMagic) + 8 + 4
	buf := make([]byte, hdr+len(blob)+4)
	copy(buf, ckptMagic)
	binary.LittleEndian.PutUint64(buf[len(ckptMagic):], seq)
	binary.LittleEndian.PutUint32(buf[len(ckptMagic)+8:], uint32(len(blob)))
	copy(buf[hdr:], blob)
	crc := crc32.ChecksumIEEE(buf[len(ckptMagic) : hdr+len(blob)])
	binary.LittleEndian.PutUint32(buf[hdr+len(blob):], crc)
	if err := replaceFile(path, buf); err != nil {
		return err
	}
	if err := syncDir(j.dir); err != nil {
		return err
	}
	j.ckpt = seq
	return j.compactLocked()
}

// compactLocked rewrites the WAL with only the records above the
// checkpoint watermark (temp + rename, old handle swapped for the new
// file). Requires j.mu.
func (j *Journal) compactLocked() error {
	live := j.tail[:0]
	for _, r := range j.tail {
		if r.Seq > j.ckpt {
			live = append(live, r)
		}
	}
	j.tail = live

	tmp := j.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("journal: create compact temp: %w", err)
	}
	if _, err := f.Write([]byte(walMagic)); err != nil {
		_ = f.Close() // best effort: the write error is the story
		return fmt.Errorf("journal: write compact header: %w", err)
	}
	for _, r := range j.tail {
		if _, err := f.Write(frameRecord(r.Kind, r.Seq, r.Body)); err != nil {
			_ = f.Close() // best effort: the write error is the story
			return fmt.Errorf("journal: write compact record: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		_ = f.Close() // best effort: the sync error is the story
		return fmt.Errorf("journal: sync compact temp: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("journal: close compact temp: %w", err)
	}
	if err := os.Rename(tmp, j.path); err != nil {
		return fmt.Errorf("journal: commit compact: %w", err)
	}
	if err := syncDir(j.dir); err != nil {
		return err
	}
	nf, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: reopen compacted wal: %w", err)
	}
	_ = j.f.Close() // best effort: the old handle's file was renamed away
	j.f = nf
	return nil
}

// replaceFile atomically replaces path with data (temp + fsync + rename).
func replaceFile(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("journal: create checkpoint temp: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close() // best effort: the write error is the story
		return fmt.Errorf("journal: write checkpoint temp: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close() // best effort: the sync error is the story
		return fmt.Errorf("journal: sync checkpoint temp: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("journal: close checkpoint temp: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("journal: commit checkpoint: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so a just-committed rename survives power
// loss, not merely process death.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("journal: open dir for sync: %w", err)
	}
	if err := d.Sync(); err != nil {
		_ = d.Close() // best effort: the sync error is the story
		return fmt.Errorf("journal: sync dir: %w", err)
	}
	return d.Close()
}

// LastSeq returns the jseq of the most recent append (0 before any).
func (j *Journal) LastSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.nextSeq - 1
}

// CheckpointSeq returns the durable checkpoint watermark (0 when none).
func (j *Journal) CheckpointSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.ckpt
}

// SinceCheckpoint returns how many records sit above the durable
// checkpoint — the tail a crash right now would have to replay.
func (j *Journal) SinceCheckpoint() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.tail)
}

// Close syncs and closes the WAL. The journal is unusable afterwards.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if err := j.f.Sync(); err != nil {
		_ = j.f.Close() // best effort: the sync error is the story
		return fmt.Errorf("journal: sync on close: %w", err)
	}
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("journal: close wal: %w", err)
	}
	return nil
}
