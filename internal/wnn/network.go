package wnn

import (
	"fmt"
	"math"
	"math/rand"
)

// Network is a wavelet neural network classifier: an input standardization
// layer, one hidden layer of wavelon units with Mexican-hat activation
// ψ(u) = (1-u²)·exp(-u²/2), and a softmax output layer. The localized,
// zero-mean wavelet activation gives the multi-resolution behaviour of
// §6.2; everything else is a standard feed-forward classifier trained by
// SGD with cross-entropy loss.
type Network struct {
	inDim, hidden, classes int

	// Standardization (fit on the training set).
	mean, std []float64

	// w1[h][i], b1[h]: input -> wavelon pre-activation.
	w1 [][]float64
	b1 []float64
	// w2[c][h], b2[c]: wavelon -> class logits.
	w2 [][]float64
	b2 []float64

	rng *rand.Rand
}

// NewNetwork builds an untrained network.
func NewNetwork(inputDim, hidden, classes int, seed int64) (*Network, error) {
	if inputDim < 1 || hidden < 1 || classes < 2 {
		return nil, fmt.Errorf("wnn: invalid dimensions %d/%d/%d", inputDim, hidden, classes)
	}
	n := &Network{
		inDim: inputDim, hidden: hidden, classes: classes,
		mean: make([]float64, inputDim),
		std:  make([]float64, inputDim),
		b1:   make([]float64, hidden),
		b2:   make([]float64, classes),
		rng:  rand.New(rand.NewSource(seed)),
	}
	for i := range n.std {
		n.std[i] = 1
	}
	scale1 := 1 / math.Sqrt(float64(inputDim))
	n.w1 = make([][]float64, hidden)
	for h := range n.w1 {
		n.w1[h] = make([]float64, inputDim)
		for i := range n.w1[h] {
			n.w1[h][i] = n.rng.NormFloat64() * scale1
		}
		n.b1[h] = n.rng.NormFloat64() * 0.5
	}
	scale2 := 1 / math.Sqrt(float64(hidden))
	n.w2 = make([][]float64, classes)
	for c := range n.w2 {
		n.w2[c] = make([]float64, hidden)
		for h := range n.w2[c] {
			n.w2[c][h] = n.rng.NormFloat64() * scale2
		}
	}
	return n, nil
}

// mexicanHat is the wavelon activation and its derivative.
func mexicanHat(u float64) (float64, float64) {
	e := math.Exp(-u * u / 2)
	psi := (1 - u*u) * e
	dpsi := (u*u*u - 3*u) * e
	return psi, dpsi
}

// standardize maps x into z-score space using the fitted statistics.
func (n *Network) standardize(x []float64) []float64 {
	z := make([]float64, len(x))
	for i := range x {
		z[i] = (x[i] - n.mean[i]) / n.std[i]
	}
	return z
}

// fitScaler computes per-feature mean and std over the training set.
func (n *Network) fitScaler(samples [][]float64) {
	m := len(samples)
	for i := 0; i < n.inDim; i++ {
		var sum float64
		for _, s := range samples {
			sum += s[i]
		}
		mu := sum / float64(m)
		var varsum float64
		for _, s := range samples {
			d := s[i] - mu
			varsum += d * d
		}
		sd := math.Sqrt(varsum / float64(m))
		if sd < 1e-9 {
			sd = 1
		}
		n.mean[i] = mu
		n.std[i] = sd
	}
}

// forward computes hidden activations, their derivatives, and class
// probabilities for a standardized input.
func (n *Network) forward(z []float64) (hid, dhid, probs []float64) {
	hid = make([]float64, n.hidden)
	dhid = make([]float64, n.hidden)
	for h := 0; h < n.hidden; h++ {
		u := n.b1[h]
		w := n.w1[h]
		for i, zi := range z {
			u += w[i] * zi
		}
		hid[h], dhid[h] = mexicanHat(u)
	}
	logits := make([]float64, n.classes)
	maxLogit := math.Inf(-1)
	for c := 0; c < n.classes; c++ {
		v := n.b2[c]
		w := n.w2[c]
		for h, a := range hid {
			v += w[h] * a
		}
		logits[c] = v
		if v > maxLogit {
			maxLogit = v
		}
	}
	probs = make([]float64, n.classes)
	var sum float64
	for c, v := range logits {
		p := math.Exp(v - maxLogit)
		probs[c] = p
		sum += p
	}
	for c := range probs {
		probs[c] /= sum
	}
	return hid, dhid, probs
}

// TrainOptions configures SGD.
type TrainOptions struct {
	// Epochs is the number of full passes over the training set.
	Epochs int
	// LearningRate is the SGD step size.
	LearningRate float64
	// L2 is the weight decay coefficient.
	L2 float64
}

// DefaultTrainOptions returns a configuration adequate for the diagnostic
// corpora in this repository.
func DefaultTrainOptions() TrainOptions {
	return TrainOptions{Epochs: 60, LearningRate: 0.02, L2: 1e-4}
}

// Train fits the network on samples with integer class labels. It fits the
// input scaler, then runs SGD with per-epoch shuffling, and returns the
// mean cross-entropy of the final epoch.
func (n *Network) Train(samples [][]float64, labels []int, opt TrainOptions) (float64, error) {
	if len(samples) == 0 || len(samples) != len(labels) {
		return 0, fmt.Errorf("wnn: %d samples, %d labels", len(samples), len(labels))
	}
	for i, s := range samples {
		if len(s) != n.inDim {
			return 0, fmt.Errorf("wnn: sample %d has dim %d, want %d", i, len(s), n.inDim)
		}
		if labels[i] < 0 || labels[i] >= n.classes {
			return 0, fmt.Errorf("wnn: label %d out of range", labels[i])
		}
	}
	if opt.Epochs < 1 || opt.LearningRate <= 0 {
		return 0, fmt.Errorf("wnn: invalid training options %+v", opt)
	}
	n.fitScaler(samples)
	zs := make([][]float64, len(samples))
	for i, s := range samples {
		zs[i] = n.standardize(s)
	}
	order := make([]int, len(samples))
	for i := range order {
		order[i] = i
	}
	var epochLoss float64
	for e := 0; e < opt.Epochs; e++ {
		n.rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		epochLoss = 0
		for _, idx := range order {
			z := zs[idx]
			y := labels[idx]
			hid, dhid, probs := n.forward(z)
			epochLoss += -math.Log(math.Max(probs[y], 1e-12))
			// Output layer gradient: dL/dlogit_c = p_c - 1{c==y}.
			dlogit := make([]float64, n.classes)
			for c := range dlogit {
				dlogit[c] = probs[c]
				if c == y {
					dlogit[c] -= 1
				}
			}
			// Hidden gradient.
			dhidden := make([]float64, n.hidden)
			for c := 0; c < n.classes; c++ {
				g := dlogit[c]
				w := n.w2[c]
				for h := 0; h < n.hidden; h++ {
					dhidden[h] += g * w[h]
				}
			}
			lr := opt.LearningRate
			// Update output layer.
			for c := 0; c < n.classes; c++ {
				g := dlogit[c]
				w := n.w2[c]
				for h := 0; h < n.hidden; h++ {
					w[h] -= lr * (g*hid[h] + opt.L2*w[h])
				}
				n.b2[c] -= lr * g
			}
			// Update wavelon layer through the activation derivative.
			for h := 0; h < n.hidden; h++ {
				g := dhidden[h] * dhid[h]
				if g == 0 {
					continue
				}
				w := n.w1[h]
				for i, zi := range z {
					w[i] -= lr * (g*zi + opt.L2*w[i])
				}
				n.b1[h] -= lr * g
			}
		}
		epochLoss /= float64(len(samples))
	}
	return epochLoss, nil
}

// Predict returns the most probable class and the full probability vector.
func (n *Network) Predict(x []float64) (int, []float64, error) {
	if len(x) != n.inDim {
		return 0, nil, fmt.Errorf("wnn: input dim %d, want %d", len(x), n.inDim)
	}
	_, _, probs := n.forward(n.standardize(x))
	best := 0
	for c, p := range probs {
		if p > probs[best] {
			best = c
		}
	}
	return best, probs, nil
}

// Accuracy evaluates top-1 accuracy over a labelled set.
func (n *Network) Accuracy(samples [][]float64, labels []int) (float64, error) {
	if len(samples) == 0 || len(samples) != len(labels) {
		return 0, fmt.Errorf("wnn: %d samples, %d labels", len(samples), len(labels))
	}
	correct := 0
	for i, s := range samples {
		c, _, err := n.Predict(s)
		if err != nil {
			return 0, err
		}
		if c == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(samples)), nil
}
