package wnn

import (
	"fmt"

	"repro/internal/chiller"
)

// ChillerClassifier packages trained wavelet neural networks as the third
// MPROS knowledge source: one small WNN per measurement point, classifying
// frames into healthy-or-fault for the faults whose signatures concentrate
// at that point. Training data is synthesized from throwaway plants at
// varied severities, loads and seeds — the "seeded faults" validation
// strategy of §9 applied as a training corpus.
type ChillerClassifier struct {
	cfg    chiller.Config
	fc     FeatureConfig
	frames int
	nets   map[chiller.MeasurementPoint]*Network
	// classes[pt][0] is always the healthy class; the rest are faults.
	classes map[chiller.MeasurementPoint][]chiller.Fault
}

// pointFaults lists the faults each per-point network discriminates. The
// healthy class is implicit at index 0.
func pointFaults() map[chiller.MeasurementPoint][]chiller.Fault {
	return map[chiller.MeasurementPoint][]chiller.Fault{
		chiller.MotorDE:    {chiller.MotorImbalance, chiller.MotorBearingOuter},
		chiller.MotorNDE:   {chiller.MotorBearingInner},
		chiller.GearBox:    {chiller.GearToothWear},
		chiller.Compressor: {chiller.CompressorBearingOuter, chiller.OilWhirl},
	}
}

// NewChillerClassifier trains the per-point networks. perClass controls the
// training corpus size per class (16 is adequate for the simulator's
// signature separation; raise it for noisier configurations). frameLen must
// match the frames the classifier will see at run time.
func NewChillerClassifier(cfg chiller.Config, frameLen, perClass int, seed int64) (*ChillerClassifier, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if frameLen < 1<<10 {
		return nil, fmt.Errorf("wnn: frame length %d too short", frameLen)
	}
	if perClass < 4 {
		return nil, fmt.Errorf("wnn: perClass %d too small to train", perClass)
	}
	c := &ChillerClassifier{
		cfg:     cfg,
		fc:      DefaultFeatureConfig(),
		frames:  frameLen,
		nets:    make(map[chiller.MeasurementPoint]*Network),
		classes: pointFaults(),
	}
	for pt, faults := range c.classes {
		var xs [][]float64
		var ys []int
		gen := func(label int, fault chiller.Fault, sev float64, sampleSeed int64) error {
			pc := cfg
			pc.Seed = sampleSeed
			plant, err := chiller.New(pc)
			if err != nil {
				return err
			}
			if sev > 0 {
				if err := plant.SetFault(fault, sev); err != nil {
					return err
				}
			}
			if err := plant.SetLoad(0.4 + 0.6*float64(sampleSeed%7)/7); err != nil {
				return err
			}
			frame, err := plant.AcquireVibration(pt, frameLen)
			if err != nil {
				return err
			}
			x, err := Extract(frame, c.fc)
			if err != nil {
				return err
			}
			xs = append(xs, x)
			ys = append(ys, label)
			return nil
		}
		for k := 0; k < perClass; k++ {
			if err := gen(0, 0, 0, seed+int64(int(pt)*10000+k)); err != nil {
				return nil, err
			}
		}
		for fi, fault := range faults {
			for k := 0; k < perClass; k++ {
				sev := 0.4 + 0.6*float64(k%6)/6
				if err := gen(fi+1, fault, sev, seed+int64(int(pt)*10000+(fi+1)*1000+k)); err != nil {
					return nil, err
				}
			}
		}
		net, err := NewNetwork(c.fc.Dim(), 16, len(faults)+1, seed+int64(pt))
		if err != nil {
			return nil, err
		}
		opt := DefaultTrainOptions()
		if _, err := net.Train(xs, ys, opt); err != nil {
			return nil, err
		}
		c.nets[pt] = net
	}
	return c, nil
}

// Classification is one WNN verdict for a frame.
type Classification struct {
	// Healthy reports whether the healthy class won.
	Healthy bool
	// Fault is the winning fault when not healthy.
	Fault chiller.Fault
	// Confidence is the winning class probability.
	Confidence float64
}

// Classify runs the point's network over a frame.
func (c *ChillerClassifier) Classify(frame []float64, pt chiller.MeasurementPoint) (Classification, error) {
	net, ok := c.nets[pt]
	if !ok {
		return Classification{}, fmt.Errorf("wnn: no classifier for point %v", pt)
	}
	if len(frame) != c.frames {
		return Classification{}, fmt.Errorf("wnn: frame length %d, trained on %d", len(frame), c.frames)
	}
	x, err := Extract(frame, c.fc)
	if err != nil {
		return Classification{}, err
	}
	cls, probs, err := net.Predict(x)
	if err != nil {
		return Classification{}, err
	}
	out := Classification{Confidence: probs[cls]}
	if cls == 0 {
		out.Healthy = true
	} else {
		out.Fault = c.classes[pt][cls-1]
	}
	return out, nil
}

// FrameLen returns the frame length the classifier was trained on.
func (c *ChillerClassifier) FrameLen() int { return c.frames }

// Points returns the instrumented measurement points.
func (c *ChillerClassifier) Points() []chiller.MeasurementPoint {
	out := make([]chiller.MeasurementPoint, 0, len(c.nets))
	for _, pt := range chiller.AllPoints() {
		if _, ok := c.nets[pt]; ok {
			out = append(out, pt)
		}
	}
	return out
}
