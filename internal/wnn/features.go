// Package wnn implements the Wavelet Neural Network diagnostics of §6.2:
// "The Wavelet Neural Network (WNN) belongs to a new class of neural
// networks with such unique capabilities as multi-resolution and
// localization in addressing classification problems. For fault diagnosis,
// the WNN serves as a classifier so as to classify the occurring faults."
//
// Feature extraction follows the paper's list: "the peak of the signal
// amplitude, standard deviation, cepstrum, DCT coefficients, wavelet maps,
// temperature, humidity, speed, and mass" — the waveform-derived features
// are implemented here (with hooks for appending process scalars), feeding
// a network of wavelon units (Mexican-hat activations, the localized
// multi-resolution basis that distinguishes a WNN from a sigmoid MLP)
// trained by stochastic gradient descent. Unlike the steady-state DLI
// rulebook, the wavelet map features respond to transitory phenomena, which
// is the niche the paper assigns this algorithm.
package wnn

import (
	"fmt"

	"repro/internal/dsp"
	"repro/internal/wavelet"
)

// FeatureConfig controls waveform feature extraction.
type FeatureConfig struct {
	// NumCepstral is how many cepstral coefficients to include.
	NumCepstral int
	// NumDCT is how many DCT-II coefficients to include.
	NumDCT int
	// WaveletLevels is the DWT decomposition depth for the energy map.
	WaveletLevels int
	// Kind selects the wavelet family.
	Kind wavelet.Kind
}

// DefaultFeatureConfig returns the extraction used by the Georgia Tech
// reconstruction: 8 cepstral + 8 DCT coefficients and a 6-level db4 map.
func DefaultFeatureConfig() FeatureConfig {
	return FeatureConfig{NumCepstral: 8, NumDCT: 8, WaveletLevels: 6, Kind: wavelet.Daubechies4}
}

// Dim returns the dimensionality of the feature vector this configuration
// produces (before any appended process scalars).
func (fc FeatureConfig) Dim() int {
	// peak, std, crest, kurtosis + cepstral + dct + (levels+1) wavelet map.
	return 4 + fc.NumCepstral + fc.NumDCT + fc.WaveletLevels + 1
}

// Extract computes the feature vector for one waveform frame.
func Extract(frame []float64, fc FeatureConfig) ([]float64, error) {
	if len(frame) < 1<<uint(fc.WaveletLevels) {
		return nil, fmt.Errorf("wnn: frame of %d samples too short for %d wavelet levels",
			len(frame), fc.WaveletLevels)
	}
	out := make([]float64, 0, fc.Dim())
	out = append(out,
		dsp.PeakAbs(frame),
		dsp.StdDev(frame),
		dsp.CrestFactor(frame),
		dsp.Kurtosis(frame),
	)
	ceps, err := dsp.CepstralCoefficients(frame, fc.NumCepstral)
	if err != nil {
		return nil, err
	}
	out = append(out, ceps...)
	out = append(out, dsp.DCT2Coefficients(frame, fc.NumDCT)...)
	dec, err := wavelet.Decompose(fc.Kind, evenPrefix(frame), fc.WaveletLevels)
	if err != nil {
		return nil, err
	}
	out = append(out, dec.EnergyMap()...)
	if len(out) != fc.Dim() {
		return nil, fmt.Errorf("wnn: internal: feature dim %d != declared %d", len(out), fc.Dim())
	}
	return out, nil
}

// evenPrefix trims a frame to the largest power-of-two prefix so the DWT
// can reach full depth.
func evenPrefix(frame []float64) []float64 {
	n := 1
	for n*2 <= len(frame) {
		n *= 2
	}
	return frame[:n]
}
