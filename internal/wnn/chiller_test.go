package wnn

import (
	"testing"

	"repro/internal/chiller"
)

func TestChillerClassifierValidation(t *testing.T) {
	cfg := chiller.DefaultConfig()
	if _, err := NewChillerClassifier(cfg, 100, 12, 1); err == nil {
		t.Error("short frames accepted")
	}
	if _, err := NewChillerClassifier(cfg, 4096, 2, 1); err == nil {
		t.Error("tiny corpus accepted")
	}
	bad := cfg
	bad.SampleRate = 0
	if _, err := NewChillerClassifier(bad, 4096, 12, 1); err == nil {
		t.Error("invalid plant config accepted")
	}
}

func TestChillerClassifierEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("training is slow")
	}
	cfg := chiller.DefaultConfig()
	clf, err := NewChillerClassifier(cfg, 4096, 12, 9)
	if err != nil {
		t.Fatal(err)
	}
	if clf.FrameLen() != 4096 {
		t.Error("frame length")
	}
	if len(clf.Points()) != 4 {
		t.Errorf("points %v", clf.Points())
	}
	// Frame-length mismatch.
	if _, err := clf.Classify(make([]float64, 128), chiller.MotorDE); err == nil {
		t.Error("short frame accepted")
	}

	score := func(fault chiller.Fault, pt chiller.MeasurementPoint, sev float64) (correct, total int) {
		for k := 0; k < 8; k++ {
			pc := cfg
			pc.Seed = int64(40000 + k)
			plant, err := chiller.New(pc)
			if err != nil {
				t.Fatal(err)
			}
			if sev > 0 {
				if err := plant.SetFault(fault, sev); err != nil {
					t.Fatal(err)
				}
			}
			frame, err := plant.AcquireVibration(pt, 4096)
			if err != nil {
				t.Fatal(err)
			}
			cls, err := clf.Classify(frame, pt)
			if err != nil {
				t.Fatal(err)
			}
			total++
			if sev == 0 && cls.Healthy {
				correct++
			}
			if sev > 0 && !cls.Healthy && cls.Fault == fault {
				correct++
			}
		}
		return correct, total
	}
	type tc struct {
		fault chiller.Fault
		pt    chiller.MeasurementPoint
		sev   float64
	}
	cases := []tc{
		{chiller.MotorImbalance, chiller.MotorDE, 0.8},
		{chiller.MotorBearingOuter, chiller.MotorDE, 0.8},
		{chiller.GearToothWear, chiller.GearBox, 0.8},
		{chiller.OilWhirl, chiller.Compressor, 0.8},
		{chiller.MotorImbalance, chiller.MotorDE, 0}, // healthy at MotorDE
	}
	for _, c := range cases {
		correct, total := score(c.fault, c.pt, c.sev)
		if float64(correct)/float64(total) < 0.75 {
			t.Errorf("%v sev=%.1f at %v: %d/%d correct", c.fault, c.sev, c.pt, correct, total)
		}
	}
}
