package wnn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/chiller"
)

func TestFeatureDim(t *testing.T) {
	fc := DefaultFeatureConfig()
	frame := make([]float64, 4096)
	for i := range frame {
		frame[i] = math.Sin(float64(i) / 5)
	}
	f, err := Extract(frame, fc)
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != fc.Dim() {
		t.Fatalf("feature dim %d, declared %d", len(f), fc.Dim())
	}
	if _, err := Extract(make([]float64, 16), fc); err == nil {
		t.Error("short frame should error")
	}
	// Features are finite.
	for i, v := range f {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("feature %d not finite: %g", i, v)
		}
	}
}

func TestFeaturesSeparateTransientFromSteady(t *testing.T) {
	// §6.2: the WNN "will excel in drawing conclusions from transitory
	// phenomena rather than steady state data". The wavelet-map features
	// must separate an impulsive transient from a steady tone of equal RMS.
	fc := DefaultFeatureConfig()
	steady := make([]float64, 4096)
	transient := make([]float64, 4096)
	for i := range steady {
		steady[i] = math.Sin(2 * math.Pi * float64(i) * 0.03)
	}
	// Sparse impulses, scaled to match RMS.
	for i := 0; i < len(transient); i += 512 {
		for j := 0; j < 8 && i+j < len(transient); j++ {
			transient[i+j] = 16 * math.Exp(-float64(j)) * math.Sin(float64(j))
		}
	}
	fs, err := Extract(steady, fc)
	if err != nil {
		t.Fatal(err)
	}
	ft, err := Extract(transient, fc)
	if err != nil {
		t.Fatal(err)
	}
	// Crest factor (index 2) and kurtosis (index 3) must be much larger for
	// the transient.
	if ft[2] < 3*fs[2] {
		t.Errorf("crest factor does not separate: steady %g transient %g", fs[2], ft[2])
	}
	if ft[3] < 3*fs[3] {
		t.Errorf("kurtosis does not separate: steady %g transient %g", fs[3], ft[3])
	}
}

func TestNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(0, 4, 2, 1); err == nil {
		t.Error("zero input dim")
	}
	if _, err := NewNetwork(4, 0, 2, 1); err == nil {
		t.Error("zero hidden")
	}
	if _, err := NewNetwork(4, 4, 1, 1); err == nil {
		t.Error("single class")
	}
	n, err := NewNetwork(3, 5, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Train(nil, nil, DefaultTrainOptions()); err == nil {
		t.Error("empty training set")
	}
	if _, err := n.Train([][]float64{{1, 2}}, []int{0}, DefaultTrainOptions()); err == nil {
		t.Error("wrong sample dim")
	}
	if _, err := n.Train([][]float64{{1, 2, 3}}, []int{5}, DefaultTrainOptions()); err == nil {
		t.Error("label out of range")
	}
	if _, err := n.Train([][]float64{{1, 2, 3}}, []int{0}, TrainOptions{Epochs: 0, LearningRate: 0.1}); err == nil {
		t.Error("zero epochs")
	}
	if _, _, err := n.Predict([]float64{1}); err == nil {
		t.Error("wrong predict dim")
	}
	if _, err := n.Accuracy(nil, nil); err == nil {
		t.Error("empty accuracy set")
	}
}

func TestLearnsLinearlySeparableClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var samples [][]float64
	var labels []int
	for i := 0; i < 300; i++ {
		c := i % 3
		center := []float64{0, 0}
		switch c {
		case 0:
			center = []float64{3, 0}
		case 1:
			center = []float64{-3, 2}
		case 2:
			center = []float64{0, -4}
		}
		samples = append(samples, []float64{
			center[0] + rng.NormFloat64()*0.5,
			center[1] + rng.NormFloat64()*0.5,
		})
		labels = append(labels, c)
	}
	n, err := NewNetwork(2, 12, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	loss, err := n.Train(samples, labels, DefaultTrainOptions())
	if err != nil {
		t.Fatal(err)
	}
	if loss > 0.3 {
		t.Errorf("final loss %g too high", loss)
	}
	acc, err := n.Accuracy(samples, labels)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Errorf("training accuracy %g < 0.95", acc)
	}
}

func TestLearnsXORNonlinearity(t *testing.T) {
	// The wavelon layer must solve a problem a linear model cannot.
	var samples [][]float64
	var labels []int
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 400; i++ {
		x := float64(rng.Intn(2))*2 - 1
		y := float64(rng.Intn(2))*2 - 1
		label := 0
		if x*y > 0 {
			label = 1
		}
		samples = append(samples, []float64{x + rng.NormFloat64()*0.2, y + rng.NormFloat64()*0.2})
		labels = append(labels, label)
	}
	n, err := NewNetwork(2, 16, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultTrainOptions()
	opt.Epochs = 150
	if _, err := n.Train(samples, labels, opt); err != nil {
		t.Fatal(err)
	}
	acc, err := n.Accuracy(samples, labels)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Errorf("XOR accuracy %g < 0.9", acc)
	}
}

func TestSoftmaxIsDistributionProperty(t *testing.T) {
	n, err := NewNetwork(4, 8, 3, 13)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(a, b, c, d float64) bool {
		for _, v := range []float64{a, b, c, d} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		_, probs, err := n.Predict([]float64{
			math.Mod(a, 100), math.Mod(b, 100), math.Mod(c, 100), math.Mod(d, 100),
		})
		if err != nil {
			return false
		}
		var sum float64
		for _, p := range probs {
			if p < 0 || p > 1 {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMexicanHat(t *testing.T) {
	// ψ(0) = 1, ψ(±1) = 0 at... no: ψ(1) = 0? (1-1)e^{-1/2} = 0. Yes.
	if psi, _ := mexicanHat(0); psi != 1 {
		t.Errorf("ψ(0) = %g", psi)
	}
	if psi, _ := mexicanHat(1); math.Abs(psi) > 1e-12 {
		t.Errorf("ψ(1) = %g", psi)
	}
	// Numerically verify the derivative.
	for _, u := range []float64{-2, -0.5, 0.3, 1.7} {
		_, d := mexicanHat(u)
		h := 1e-6
		p1, _ := mexicanHat(u + h)
		p0, _ := mexicanHat(u - h)
		if math.Abs(d-(p1-p0)/(2*h)) > 1e-5 {
			t.Errorf("dψ(%g) = %g, numeric %g", u, d, (p1-p0)/(2*h))
		}
	}
}

// TestChillerFaultClassification trains the WNN on simulator frames and
// verifies it classifies held-out frames well above chance — the §6.2
// fault-classifier role.
func TestChillerFaultClassification(t *testing.T) {
	if testing.Short() {
		t.Skip("training corpus generation is slow")
	}
	fc := DefaultFeatureConfig()
	classes := []chiller.Fault{chiller.MotorImbalance, chiller.MotorBearingOuter, chiller.GearToothWear}
	frameLen := 4096

	build := func(seedBase int64, perClass int) ([][]float64, []int) {
		var xs [][]float64
		var ys []int
		for ci, f := range classes {
			for k := 0; k < perClass; k++ {
				cfg := chiller.DefaultConfig()
				cfg.Seed = seedBase + int64(ci*1000+k)
				p, err := chiller.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := p.SetFault(f, 0.5+0.5*float64(k%5)/5); err != nil {
					t.Fatal(err)
				}
				pt := chiller.MotorDE
				if f == chiller.GearToothWear {
					pt = chiller.GearBox
				}
				frame, err := p.AcquireVibration(pt, frameLen)
				if err != nil {
					t.Fatal(err)
				}
				x, err := Extract(frame, fc)
				if err != nil {
					t.Fatal(err)
				}
				xs = append(xs, x)
				ys = append(ys, ci)
			}
		}
		return xs, ys
	}

	trainX, trainY := build(1, 30)
	testX, testY := build(50000, 10)
	n, err := NewNetwork(fc.Dim(), 20, len(classes), 3)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultTrainOptions()
	opt.Epochs = 80
	if _, err := n.Train(trainX, trainY, opt); err != nil {
		t.Fatal(err)
	}
	acc, err := n.Accuracy(testX, testY)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.8 {
		t.Errorf("held-out accuracy %.2f < 0.8", acc)
	}
	t.Logf("held-out accuracy: %.2f", acc)
}

func BenchmarkExtract4096(b *testing.B) {
	frame := make([]float64, 4096)
	for i := range frame {
		frame[i] = math.Sin(float64(i) / 3)
	}
	fc := DefaultFeatureConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Extract(frame, fc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredict(b *testing.B) {
	fc := DefaultFeatureConfig()
	n, err := NewNetwork(fc.Dim(), 20, 4, 1)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, fc.Dim())
	for i := range x {
		x[i] = float64(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := n.Predict(x); err != nil {
			b.Fatal(err)
		}
	}
}
