// Package core anchors the paper's primary contribution — knowledge fusion
// over a distributed prognostic/diagnostic architecture — and maps it to
// the packages that implement it:
//
//   - Diagnostic knowledge fusion (§5.3): Dempster-Shafer belief
//     maintenance over logical failure groups. The calculus lives in
//     internal/dempster; the grouped fuser in internal/fusion.
//   - Prognostic knowledge fusion (§5.4): conservative combination of
//     (time, probability) vectors. internal/fusion.
//   - The integration fabric: the Object-Oriented Ship Model
//     (internal/oosm), the failure prediction reporting protocol
//     (internal/proto), and the PDME that wires them (internal/pdme).
//
// The aliases below give the contribution a single import point; the
// facade package at the repository root (mpros) builds deployments on top.
package core

import (
	"repro/internal/dempster"
	"repro/internal/fusion"
	"repro/internal/proto"
)

// Frame is a Dempster-Shafer frame of discernment (one logical failure
// group's hypothesis space).
type Frame = dempster.Frame

// Mass is a basic probability assignment over a frame.
type Mass = dempster.Mass

// Groups maps logical failure group names to their member conditions.
type Groups = fusion.Groups

// DiagnosticFuser is the §5.3 grouped Dempster-Shafer fuser.
type DiagnosticFuser = fusion.DiagnosticFuser

// PrognosticFuser is the §5.4 conservative prognostic fuser.
type PrognosticFuser = fusion.PrognosticFuser

// Report is the §7.2 failure prediction report.
type Report = proto.Report

// PrognosticVector is the §7.3 (probability, time) list.
type PrognosticVector = proto.PrognosticVector

// NewDiagnosticFuser constructs the grouped diagnostic fuser.
func NewDiagnosticFuser(groups Groups) (*DiagnosticFuser, error) {
	return fusion.NewDiagnosticFuser(groups)
}

// NewPrognosticFuser constructs the prognostic fuser.
func NewPrognosticFuser() *PrognosticFuser { return fusion.NewPrognosticFuser() }

// Combine applies Dempster's rule of combination (§5.3's calculus),
// returning the combined mass and the conflict K.
func Combine(a, b *Mass) (*Mass, float64, error) { return dempster.Combine(a, b) }

// FuseConservative combines prognostic vectors per §5.4.
func FuseConservative(vectors ...PrognosticVector) (PrognosticVector, error) {
	return fusion.FuseConservative(vectors...)
}
