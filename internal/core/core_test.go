package core

import (
	"math"
	"testing"
)

// TestCoreFacade exercises the contribution through the anchor package: the
// §5.3 worked example and a grouped fusion round trip.
func TestCoreFacade(t *testing.T) {
	groups := Groups{"g1": {"A", "B"}, "g2": {"C"}}
	df, err := NewDiagnosticFuser(groups)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := df.AddReport("m", "A", 0.6); err != nil {
		t.Fatal(err)
	}
	if _, err := df.AddReport("m", "C", 0.9); err != nil {
		t.Fatal(err)
	}
	bA, _ := df.Belief("m", "A")
	bC, _ := df.Belief("m", "C")
	if math.Abs(bA-0.6) > 1e-9 || math.Abs(bC-0.9) > 1e-9 {
		t.Errorf("independent groups: %g %g", bA, bC)
	}
	pf := NewPrognosticFuser()
	v, err := pf.AddReport("m", "A", PrognosticVector{{Probability: 0.5, HorizonSeconds: 100}})
	if err != nil || len(v) != 1 {
		t.Fatalf("prognostic: %v %v", v, err)
	}
	fused, err := FuseConservative(
		PrognosticVector{{Probability: 0.3, HorizonSeconds: 100}},
		PrognosticVector{{Probability: 0.7, HorizonSeconds: 100}},
	)
	if err != nil || len(fused) != 1 || fused[0].Probability != 0.7 {
		t.Fatalf("conservative fusion: %v %v", fused, err)
	}
}
