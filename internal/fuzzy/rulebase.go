package fuzzy

import (
	"fmt"
	"time"

	"repro/internal/chiller"
	"repro/internal/proto"
)

// ChillerDiagnostics wraps a Mamdani system configured for the two
// refrigeration-cycle failure modes the vibration analyzers cannot see:
// low refrigerant charge and condenser fouling. Inputs are the §2 "slower
// changing parameters" read from the plant's process telemetry.
type ChillerDiagnostics struct {
	sys *System
}

// NewChillerDiagnostics builds the standard process-side rulebase.
// Membership functions are calibrated to the simulator's healthy operating
// envelope at typical shipboard loads.
func NewChillerDiagnostics() (*ChillerDiagnostics, error) {
	inputs := []Variable{
		{
			Name: "evap_pressure", Min: 10, Max: 50,
			Terms: map[string]MF{
				"low":    ShoulderLeft{B: 24, C: 31},
				"normal": Trapezoid{A: 28, B: 32, C: 38, D: 42},
				"high":   ShoulderRight{A: 38, B: 44},
			},
		},
		{
			Name: "superheat", Min: 0, Max: 40,
			Terms: map[string]MF{
				"normal": ShoulderLeft{B: 12, C: 17},
				"high":   Trapezoid{A: 13, B: 18, C: 26, D: 30},
				"severe": ShoulderRight{A: 25, B: 32},
			},
		},
		{
			Name: "cond_pressure", Min: 80, Max: 180,
			Terms: map[string]MF{
				"normal": ShoulderLeft{B: 125, C: 136},
				"high":   Trapezoid{A: 128, B: 140, C: 152, D: 160},
				"severe": ShoulderRight{A: 152, B: 165},
			},
		},
		{
			Name: "cond_approach", Min: 0, Max: 20,
			Terms: map[string]MF{
				"normal": ShoulderLeft{B: 5.5, C: 8},
				"high":   ShoulderRight{A: 6.5, B: 10.5},
			},
		},
		{
			Name: "load", Min: 0, Max: 1,
			Terms: map[string]MF{
				"light": ShoulderLeft{B: 0.25, C: 0.45},
				"mid":   Trapezoid{A: 0.3, B: 0.45, C: 0.75, D: 0.9},
				"heavy": ShoulderRight{A: 0.7, B: 0.85},
			},
		},
	}
	sevTerms := func() map[string]MF {
		return map[string]MF{
			"none":     ShoulderLeft{B: 0.05, C: 0.2},
			"slight":   Triangular{A: 0.1, B: 0.3, C: 0.5},
			"moderate": Triangular{A: 0.35, B: 0.55, C: 0.75},
			"serious":  Triangular{A: 0.6, B: 0.78, C: 0.92},
			"extreme":  ShoulderRight{A: 0.82, B: 0.95},
		}
	}
	outputs := []Variable{
		{Name: "low_charge", Min: 0, Max: 1, Terms: sevTerms()},
		{Name: "fouling", Min: 0, Max: 1, Terms: sevTerms()},
	}
	rules := []Rule{
		// Low refrigerant charge: depressed suction pressure with elevated
		// superheat. Both signs together make the strong call; each alone a
		// weaker one (single-symptom rules carry reduced weight).
		{If: []Clause{{"evap_pressure", "low"}, {"superheat", "severe"}}, Op: And,
			Then: Clause{"low_charge", "extreme"}, Weight: 1},
		{If: []Clause{{"evap_pressure", "low"}, {"superheat", "high"}}, Op: And,
			Then: Clause{"low_charge", "serious"}, Weight: 1},
		{If: []Clause{{"evap_pressure", "low"}, {"superheat", "normal"}}, Op: And,
			Then: Clause{"low_charge", "slight"}, Weight: 0.6},
		{If: []Clause{{"superheat", "high"}, {"evap_pressure", "normal"}}, Op: And,
			Then: Clause{"low_charge", "slight"}, Weight: 0.5},
		{If: []Clause{{"evap_pressure", "normal"}, {"superheat", "normal"}}, Op: And,
			Then: Clause{"low_charge", "none"}, Weight: 1},
		{If: []Clause{{"evap_pressure", "high"}}, Op: And,
			Then: Clause{"low_charge", "none"}, Weight: 1},

		// Condenser fouling: elevated head pressure and condenser approach.
		// Heavy load legitimately raises head pressure, so the rules demand
		// the approach-temperature confirmation at heavy load (the fuzzy
		// analogue of §6.1 load sensitization).
		{If: []Clause{{"cond_pressure", "severe"}, {"cond_approach", "high"}}, Op: And,
			Then: Clause{"fouling", "extreme"}, Weight: 1},
		{If: []Clause{{"cond_pressure", "high"}, {"cond_approach", "high"}}, Op: And,
			Then: Clause{"fouling", "serious"}, Weight: 1},
		{If: []Clause{{"cond_pressure", "high"}, {"cond_approach", "normal"}, {"load", "heavy"}}, Op: And,
			Then: Clause{"fouling", "none"}, Weight: 0.9},
		{If: []Clause{{"cond_pressure", "high"}, {"cond_approach", "normal"}, {"load", "mid"}}, Op: And,
			Then: Clause{"fouling", "slight"}, Weight: 0.5},
		{If: []Clause{{"cond_approach", "high"}, {"cond_pressure", "normal"}}, Op: And,
			Then: Clause{"fouling", "moderate"}, Weight: 0.7},
		{If: []Clause{{"cond_pressure", "normal"}, {"cond_approach", "normal"}}, Op: And,
			Then: Clause{"fouling", "none"}, Weight: 1},
	}
	sys, err := NewSystem(inputs, outputs, rules)
	if err != nil {
		return nil, err
	}
	return &ChillerDiagnostics{sys: sys}, nil
}

// Result is one fuzzy diagnostic conclusion.
type Result struct {
	// Condition is the machine condition name.
	Condition string
	// Severity is the defuzzified severity in [0,1].
	Severity float64
	// Grade is the §6.1 gradient category.
	Grade proto.SeverityGrade
	// Belief for fuzzy process diagnoses.
	Belief float64
}

// Diagnose evaluates the rulebase against a process snapshot and returns
// conclusions whose severity clears the call threshold.
func (c *ChillerDiagnostics) Diagnose(ps chiller.ProcessState, threshold float64) ([]Result, error) {
	out, err := c.sys.Infer(map[string]float64{
		"evap_pressure": ps.EvapPressurePSI,
		"superheat":     ps.SuperheatF,
		"cond_pressure": ps.CondPressurePSI,
		"cond_approach": ps.CondApproachF,
		"load":          ps.LoadFraction,
	})
	if err != nil {
		return nil, err
	}
	var results []Result
	add := func(cond string, sev float64) {
		if sev >= threshold {
			results = append(results, Result{
				Condition: cond,
				Severity:  sev,
				Grade:     proto.GradeSeverity(sev),
				Belief:    0.85,
			})
		}
	}
	add(chiller.RefrigerantLowCharge.String(), out["low_charge"])
	add(chiller.CondenserFouling.String(), out["fouling"])
	return results, nil
}

// ToReport packages a fuzzy result as a protocol report.
func (r Result) ToReport(dcID, objectID string, at time.Time) *proto.Report {
	return &proto.Report{
		DCID:               dcID,
		KnowledgeSourceID:  "ks/fuzzy",
		SensedObjectID:     objectID,
		MachineConditionID: r.Condition,
		Severity:           r.Severity,
		Belief:             r.Belief,
		Explanation:        fmt.Sprintf("fuzzy process-data inference, defuzzified severity %.2f", r.Severity),
		Timestamp:          at,
		Prognostics:        processPrognostic(r.Grade),
	}
}

// processPrognostic mirrors vibration.WorstCasePrognostic for process
// faults, which progress more slowly than mechanical ones.
func processPrognostic(g proto.SeverityGrade) proto.PrognosticVector {
	day := 86400.0
	switch g {
	case proto.SeverityExtreme:
		return proto.PrognosticVector{{Probability: 0.5, HorizonSeconds: 7 * day}, {Probability: 0.9, HorizonSeconds: 21 * day}}
	case proto.SeveritySerious:
		return proto.PrognosticVector{{Probability: 0.3, HorizonSeconds: 30 * day}, {Probability: 0.8, HorizonSeconds: 90 * day}}
	case proto.SeverityModerate:
		return proto.PrognosticVector{{Probability: 0.2, HorizonSeconds: 90 * day}, {Probability: 0.6, HorizonSeconds: 270 * day}}
	case proto.SeveritySlight:
		return proto.PrognosticVector{{Probability: 0.1, HorizonSeconds: 365 * day}}
	default:
		return nil
	}
}
