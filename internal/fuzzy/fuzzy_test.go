package fuzzy

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/chiller"
	"repro/internal/proto"
)

func TestMembershipFunctions(t *testing.T) {
	tri := Triangular{A: 0, B: 5, C: 10}
	if tri.Degree(5) != 1 || tri.Degree(0) != 0 || tri.Degree(10) != 0 {
		t.Error("triangular anchors")
	}
	if math.Abs(tri.Degree(2.5)-0.5) > 1e-12 || math.Abs(tri.Degree(7.5)-0.5) > 1e-12 {
		t.Error("triangular slopes")
	}
	trap := Trapezoid{A: 0, B: 2, C: 8, D: 10}
	if trap.Degree(5) != 1 || trap.Degree(2) != 1 || trap.Degree(8) != 1 {
		t.Error("trapezoid plateau")
	}
	if math.Abs(trap.Degree(1)-0.5) > 1e-12 || math.Abs(trap.Degree(9)-0.5) > 1e-12 {
		t.Error("trapezoid slopes")
	}
	sl := ShoulderLeft{B: 3, C: 7}
	if sl.Degree(0) != 1 || sl.Degree(3) != 1 || sl.Degree(7) != 0 || sl.Degree(100) != 0 {
		t.Error("shoulder left")
	}
	sr := ShoulderRight{A: 3, B: 7}
	if sr.Degree(0) != 0 || sr.Degree(7) != 1 || sr.Degree(100) != 1 {
		t.Error("shoulder right")
	}
	g := Gaussian{Mu: 5, Sigma: 2}
	if g.Degree(5) != 1 {
		t.Error("gaussian peak")
	}
	if math.Abs(g.Degree(7)-math.Exp(-0.5)) > 1e-12 {
		t.Error("gaussian sigma point")
	}
}

func TestMembershipInRangeProperty(t *testing.T) {
	prop := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		mfs := []MF{
			Triangular{0, 5, 10}, Trapezoid{0, 2, 8, 10},
			ShoulderLeft{3, 7}, ShoulderRight{3, 7}, Gaussian{5, 2},
		}
		for _, m := range mfs {
			d := m.Degree(x)
			if d < 0 || d > 1 || math.IsNaN(d) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func simpleSystem(t *testing.T) *System {
	t.Helper()
	in := []Variable{{
		Name: "temp", Min: 0, Max: 100,
		Terms: map[string]MF{
			"cold": ShoulderLeft{B: 20, C: 40},
			"warm": Triangular{A: 30, B: 50, C: 70},
			"hot":  ShoulderRight{A: 60, B: 80},
		},
	}}
	out := []Variable{{
		Name: "fan", Min: 0, Max: 10,
		Terms: map[string]MF{
			"slow": Triangular{A: 0, B: 2, C: 4},
			"med":  Triangular{A: 3, B: 5, C: 7},
			"fast": Triangular{A: 6, B: 8, C: 10},
		},
	}}
	rules := []Rule{
		{If: []Clause{{"temp", "cold"}}, Op: And, Then: Clause{"fan", "slow"}, Weight: 1},
		{If: []Clause{{"temp", "warm"}}, Op: And, Then: Clause{"fan", "med"}, Weight: 1},
		{If: []Clause{{"temp", "hot"}}, Op: And, Then: Clause{"fan", "fast"}, Weight: 1},
	}
	s, err := NewSystem(in, out, rules)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestMamdaniInference(t *testing.T) {
	s := simpleSystem(t)
	cold, err := s.Infer(map[string]float64{"temp": 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cold["fan"]-2) > 0.3 {
		t.Errorf("cold -> fan %g, want ≈2", cold["fan"])
	}
	hot, _ := s.Infer(map[string]float64{"temp": 90})
	if math.Abs(hot["fan"]-8) > 0.3 {
		t.Errorf("hot -> fan %g, want ≈8", hot["fan"])
	}
	warm, _ := s.Infer(map[string]float64{"temp": 50})
	if math.Abs(warm["fan"]-5) > 0.3 {
		t.Errorf("warm -> fan %g, want ≈5", warm["fan"])
	}
	// Between terms: interpolated output.
	mid, _ := s.Infer(map[string]float64{"temp": 65})
	if !(mid["fan"] > warm["fan"] && mid["fan"] < hot["fan"]) {
		t.Errorf("interpolation: %g not between %g and %g", mid["fan"], warm["fan"], hot["fan"])
	}
	// Clamping far outside the domain.
	frozen, _ := s.Infer(map[string]float64{"temp": -500})
	if math.Abs(frozen["fan"]-cold["fan"]) > 1e-9 {
		t.Error("clamping failed")
	}
}

func TestInferenceMonotoneProperty(t *testing.T) {
	// Property: for the fan system, output is monotone non-decreasing in
	// temperature (sampled).
	s := simpleSystem(t)
	prev := -1.0
	for temp := 0.0; temp <= 100; temp += 2.5 {
		out, err := s.Infer(map[string]float64{"temp": temp})
		if err != nil {
			t.Fatal(err)
		}
		if out["fan"] < prev-0.15 { // small tolerance for centroid ripple
			t.Fatalf("fan speed decreased at temp %g: %g -> %g", temp, prev, out["fan"])
		}
		prev = out["fan"]
	}
}

func TestSystemValidation(t *testing.T) {
	in := []Variable{{Name: "x", Min: 0, Max: 1, Terms: map[string]MF{"a": Triangular{0, 0.5, 1}}}}
	out := []Variable{{Name: "y", Min: 0, Max: 1, Terms: map[string]MF{"b": Triangular{0, 0.5, 1}}}}
	ok := []Rule{{If: []Clause{{"x", "a"}}, Op: And, Then: Clause{"y", "b"}, Weight: 1}}
	if _, err := NewSystem(in, out, ok); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		in, out []Variable
		rules   []Rule
	}{
		{"no rules", in, out, nil},
		{"unnamed var", []Variable{{Min: 0, Max: 1, Terms: map[string]MF{"a": Gaussian{0, 1}}}}, out, ok},
		{"empty domain", []Variable{{Name: "x", Min: 1, Max: 1, Terms: map[string]MF{"a": Gaussian{0, 1}}}}, out, ok},
		{"no terms", []Variable{{Name: "x", Min: 0, Max: 1, Terms: nil}}, out, ok},
		{"dup var", append(in, in[0]), out, ok},
		{"unknown input", in, out, []Rule{{If: []Clause{{"z", "a"}}, Op: And, Then: Clause{"y", "b"}, Weight: 1}}},
		{"unknown input term", in, out, []Rule{{If: []Clause{{"x", "zzz"}}, Op: And, Then: Clause{"y", "b"}, Weight: 1}}},
		{"unknown output", in, out, []Rule{{If: []Clause{{"x", "a"}}, Op: And, Then: Clause{"z", "b"}, Weight: 1}}},
		{"unknown output term", in, out, []Rule{{If: []Clause{{"x", "a"}}, Op: And, Then: Clause{"y", "zzz"}, Weight: 1}}},
		{"no antecedent", in, out, []Rule{{Op: And, Then: Clause{"y", "b"}, Weight: 1}}},
		{"bad weight", in, out, []Rule{{If: []Clause{{"x", "a"}}, Op: And, Then: Clause{"y", "b"}, Weight: 0}}},
	}
	for _, c := range cases {
		if _, err := NewSystem(c.in, c.out, c.rules); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	// Inference input validation.
	s, _ := NewSystem(in, out, ok)
	if _, err := s.Infer(nil); err == nil {
		t.Error("missing input")
	}
	if _, err := s.Infer(map[string]float64{"x": 0.5, "zzz": 1}); err == nil {
		t.Error("unexpected input")
	}
}

func TestOrConnective(t *testing.T) {
	in := []Variable{
		{Name: "a", Min: 0, Max: 1, Terms: map[string]MF{"hi": ShoulderRight{A: 0.4, B: 0.6}}},
		{Name: "b", Min: 0, Max: 1, Terms: map[string]MF{"hi": ShoulderRight{A: 0.4, B: 0.6}}},
	}
	out := []Variable{{Name: "y", Min: 0, Max: 1, Terms: map[string]MF{
		"on":  ShoulderRight{A: 0.5, B: 0.8},
		"off": ShoulderLeft{B: 0.2, C: 0.5},
	}}}
	rules := []Rule{
		{If: []Clause{{"a", "hi"}, {"b", "hi"}}, Op: Or, Then: Clause{"y", "on"}, Weight: 1},
	}
	s, err := NewSystem(in, out, rules)
	if err != nil {
		t.Fatal(err)
	}
	// Only one antecedent true: OR still activates.
	res, err := s.Infer(map[string]float64{"a": 1, "b": 0})
	if err != nil {
		t.Fatal(err)
	}
	if res["y"] < 0.6 {
		t.Errorf("OR rule did not fire: %g", res["y"])
	}
	// Neither true: output falls back to domain min.
	res, _ = s.Infer(map[string]float64{"a": 0, "b": 0})
	if res["y"] != 0 {
		t.Errorf("no activation should give domain min, got %g", res["y"])
	}
}

// --- chiller rulebase tests ---

func processFor(t *testing.T, faults map[chiller.Fault]float64, load float64) chiller.ProcessState {
	t.Helper()
	cfg := chiller.DefaultConfig()
	cfg.Seed = 23
	p, err := chiller.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for f, s := range faults {
		if err := p.SetFault(f, s); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.SetLoad(load); err != nil {
		t.Fatal(err)
	}
	return p.ProcessState()
}

func TestChillerHealthyNoCalls(t *testing.T) {
	cd, err := NewChillerDiagnostics()
	if err != nil {
		t.Fatal(err)
	}
	for _, load := range []float64{0.2, 0.5, 0.8, 1.0} {
		ps := processFor(t, nil, load)
		res, err := cd.Diagnose(ps, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 0 {
			t.Errorf("healthy at load %g produced calls: %+v (state %+v)", load, res, ps)
		}
	}
}

func TestChillerLowChargeDetected(t *testing.T) {
	cd, err := NewChillerDiagnostics()
	if err != nil {
		t.Fatal(err)
	}
	ps := processFor(t, map[chiller.Fault]float64{chiller.RefrigerantLowCharge: 0.9}, 0.8)
	res, err := cd.Diagnose(ps, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res {
		if r.Condition == chiller.RefrigerantLowCharge.String() {
			found = true
			if r.Severity < 0.5 {
				t.Errorf("low charge severity %g too small", r.Severity)
			}
			if r.Grade == proto.SeverityNone {
				t.Error("grade none")
			}
		}
		if r.Condition == chiller.CondenserFouling.String() {
			t.Errorf("false fouling call: %+v", r)
		}
	}
	if !found {
		t.Fatalf("low charge missed: state %+v results %+v", ps, res)
	}
}

func TestChillerFoulingDetected(t *testing.T) {
	cd, err := NewChillerDiagnostics()
	if err != nil {
		t.Fatal(err)
	}
	ps := processFor(t, map[chiller.Fault]float64{chiller.CondenserFouling: 0.9}, 0.7)
	res, err := cd.Diagnose(ps, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res {
		if r.Condition == chiller.CondenserFouling.String() {
			found = true
			if r.Severity < 0.5 {
				t.Errorf("fouling severity %g too small", r.Severity)
			}
		}
	}
	if !found {
		t.Fatalf("fouling missed: state %+v results %+v", ps, res)
	}
}

func TestChillerHeavyLoadNotFouling(t *testing.T) {
	// Heavy load raises head pressure; without approach confirmation the
	// rulebase must not call fouling (load sensitization).
	cd, err := NewChillerDiagnostics()
	if err != nil {
		t.Fatal(err)
	}
	ps := processFor(t, nil, 1.0)
	res, err := cd.Diagnose(ps, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Condition == chiller.CondenserFouling.String() {
			t.Fatalf("heavy-load false fouling call (sev %g, state %+v)", r.Severity, ps)
		}
	}
}

func TestSeverityTracksFaultLevel(t *testing.T) {
	cd, err := NewChillerDiagnostics()
	if err != nil {
		t.Fatal(err)
	}
	sev := func(level float64) float64 {
		ps := processFor(t, map[chiller.Fault]float64{chiller.RefrigerantLowCharge: level}, 0.8)
		res, err := cd.Diagnose(ps, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			if r.Condition == chiller.RefrigerantLowCharge.String() {
				return r.Severity
			}
		}
		return 0
	}
	lo, hi := sev(0.5), sev(1.0)
	if hi <= lo {
		t.Errorf("severity not increasing: %.2f -> %.2f", lo, hi)
	}
}

func TestResultToReport(t *testing.T) {
	r := Result{Condition: chiller.CondenserFouling.String(), Severity: 0.6,
		Grade: proto.SeveritySerious, Belief: 0.85}
	rep := r.ToReport("dc-1", "chiller/1", time.Date(1998, 9, 1, 0, 0, 0, 0, time.UTC))
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Prognostics) == 0 {
		t.Error("missing prognostics")
	}
	// All grades produce valid vectors.
	for _, g := range []proto.SeverityGrade{proto.SeveritySlight, proto.SeverityModerate,
		proto.SeveritySerious, proto.SeverityExtreme} {
		if err := processPrognostic(g).Validate(); err != nil {
			t.Errorf("%v: %v", g, err)
		}
	}
	if processPrognostic(proto.SeverityNone) != nil {
		t.Error("none grade prognostic")
	}
}

func BenchmarkInfer(b *testing.B) {
	cd, err := NewChillerDiagnostics()
	if err != nil {
		b.Fatal(err)
	}
	ps := chiller.ProcessState{
		EvapPressurePSI: 25, SuperheatF: 25, CondPressurePSI: 140,
		CondApproachF: 8, LoadFraction: 0.8,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cd.Diagnose(ps, 0.25); err != nil {
			b.Fatal(err)
		}
	}
}
