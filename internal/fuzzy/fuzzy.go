// Package fuzzy implements the Mamdani fuzzy-logic inference engine behind
// the fourth MPROS algorithm suite (§1.1): "Fuzzy Logic diagnostics and
// prognostics also developed by Georgia Tech which draws diagnostic and
// prognostic conclusions from non-vibrational data."
//
// The engine is classical Mamdani: triangular/trapezoidal/Gaussian
// membership functions over linguistic variables, min/max rule evaluation,
// max aggregation of clipped consequents, and centroid defuzzification.
// The chiller rulebase in rulebase.go maps process telemetry (pressures,
// superheat, approach temperatures) to refrigeration-cycle fault severities.
package fuzzy

import (
	"fmt"
	"math"
	"sort"
)

// MF is a membership function over a real domain.
type MF interface {
	// Degree returns the membership in [0,1] of x.
	Degree(x float64) float64
}

// Triangular is a triangle with feet at A and C and apex at B.
type Triangular struct{ A, B, C float64 }

// Degree implements MF.
func (t Triangular) Degree(x float64) float64 {
	switch {
	case x <= t.A || x >= t.C:
		return 0
	case x < t.B:
		return (x - t.A) / (t.B - t.A)
	default:
		// x == t.B lands here and yields exactly (C-B)/(C-B) == 1, so the
		// apex needs no exact float comparison of its own.
		return (t.C - x) / (t.C - t.B)
	}
}

// Trapezoid has feet at A and D and a plateau from B to C.
type Trapezoid struct{ A, B, C, D float64 }

// Degree implements MF.
func (t Trapezoid) Degree(x float64) float64 {
	switch {
	case x <= t.A || x >= t.D:
		return 0
	case x >= t.B && x <= t.C:
		return 1
	case x < t.B:
		return (x - t.A) / (t.B - t.A)
	default:
		return (t.D - x) / (t.D - t.C)
	}
}

// ShoulderLeft is 1 below B, ramping to 0 at C (open to the left).
type ShoulderLeft struct{ B, C float64 }

// Degree implements MF.
func (s ShoulderLeft) Degree(x float64) float64 {
	switch {
	case x <= s.B:
		return 1
	case x >= s.C:
		return 0
	default:
		return (s.C - x) / (s.C - s.B)
	}
}

// ShoulderRight is 0 below A, ramping to 1 at B (open to the right).
type ShoulderRight struct{ A, B float64 }

// Degree implements MF.
func (s ShoulderRight) Degree(x float64) float64 {
	switch {
	case x <= s.A:
		return 0
	case x >= s.B:
		return 1
	default:
		return (x - s.A) / (s.B - s.A)
	}
}

// Gaussian is exp(-(x-Mu)²/(2·Sigma²)).
type Gaussian struct{ Mu, Sigma float64 }

// Degree implements MF.
func (g Gaussian) Degree(x float64) float64 {
	d := (x - g.Mu) / g.Sigma
	return math.Exp(-d * d / 2)
}

// Variable is a linguistic variable: a named domain with term membership
// functions.
type Variable struct {
	// Name identifies the variable in rules and inference inputs.
	Name string
	// Min and Max bound the domain (used for defuzzification sampling).
	Min, Max float64
	// Terms maps linguistic term names to membership functions.
	Terms map[string]MF
}

// Clause is "Var is Term".
type Clause struct {
	Var  string
	Term string
}

// Connective joins antecedent clauses.
type Connective int

const (
	// And uses min of clause degrees.
	And Connective = iota
	// Or uses max of clause degrees.
	Or
)

// Rule is a Mamdani rule: IF antecedents (joined by Op) THEN consequent,
// scaled by Weight in (0,1].
type Rule struct {
	If     []Clause
	Op     Connective
	Then   Clause
	Weight float64
}

// System is a compiled Mamdani inference system.
type System struct {
	inputs  map[string]Variable
	outputs map[string]Variable
	rules   []Rule
	samples int
}

// NewSystem builds a system from variables and rules. Every rule clause
// must reference a declared variable and term; antecedents reference
// inputs and consequents reference outputs.
func NewSystem(inputs, outputs []Variable, rules []Rule) (*System, error) {
	s := &System{
		inputs:  make(map[string]Variable, len(inputs)),
		outputs: make(map[string]Variable, len(outputs)),
		rules:   rules,
		samples: 201,
	}
	addVars := func(dst map[string]Variable, vars []Variable, kind string) error {
		for _, v := range vars {
			if v.Name == "" {
				return fmt.Errorf("fuzzy: unnamed %s variable", kind)
			}
			if v.Max <= v.Min {
				return fmt.Errorf("fuzzy: variable %q has empty domain", v.Name)
			}
			if len(v.Terms) == 0 {
				return fmt.Errorf("fuzzy: variable %q has no terms", v.Name)
			}
			if _, dup := dst[v.Name]; dup {
				return fmt.Errorf("fuzzy: duplicate variable %q", v.Name)
			}
			dst[v.Name] = v
		}
		return nil
	}
	if err := addVars(s.inputs, inputs, "input"); err != nil {
		return nil, err
	}
	if err := addVars(s.outputs, outputs, "output"); err != nil {
		return nil, err
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("fuzzy: no rules")
	}
	for i, r := range rules {
		if len(r.If) == 0 {
			return nil, fmt.Errorf("fuzzy: rule %d has no antecedents", i)
		}
		if r.Weight <= 0 || r.Weight > 1 {
			return nil, fmt.Errorf("fuzzy: rule %d weight %g outside (0,1]", i, r.Weight)
		}
		for _, c := range r.If {
			v, ok := s.inputs[c.Var]
			if !ok {
				return nil, fmt.Errorf("fuzzy: rule %d references unknown input %q", i, c.Var)
			}
			if _, ok := v.Terms[c.Term]; !ok {
				return nil, fmt.Errorf("fuzzy: rule %d: input %q has no term %q", i, c.Var, c.Term)
			}
		}
		v, ok := s.outputs[r.Then.Var]
		if !ok {
			return nil, fmt.Errorf("fuzzy: rule %d references unknown output %q", i, r.Then.Var)
		}
		if _, ok := v.Terms[r.Then.Term]; !ok {
			return nil, fmt.Errorf("fuzzy: rule %d: output %q has no term %q", i, r.Then.Var, r.Then.Term)
		}
	}
	return s, nil
}

// Infer runs Mamdani inference: fuzzify, evaluate rules, aggregate clipped
// consequents per output, and defuzzify by centroid. Inputs outside a
// variable's domain are clamped. Missing inputs are an error. Outputs with
// no activated rule defuzzify to the domain minimum.
func (s *System) Infer(in map[string]float64) (map[string]float64, error) {
	for name := range s.inputs {
		if _, ok := in[name]; !ok {
			return nil, fmt.Errorf("fuzzy: missing input %q", name)
		}
	}
	for name := range in {
		if _, ok := s.inputs[name]; !ok {
			return nil, fmt.Errorf("fuzzy: unexpected input %q", name)
		}
	}
	// Rule activations grouped by output variable, recording the clip level
	// per consequent term.
	type clipped struct {
		term  string
		level float64
	}
	activations := make(map[string][]clipped)
	for _, r := range s.rules {
		var level float64
		if r.Op == And {
			level = 1
		}
		for _, c := range r.If {
			v := s.inputs[c.Var]
			x := clamp(in[c.Var], v.Min, v.Max)
			d := v.Terms[c.Term].Degree(x)
			if r.Op == And {
				level = math.Min(level, d)
			} else {
				level = math.Max(level, d)
			}
		}
		level *= r.Weight
		if level > 0 {
			activations[r.Then.Var] = append(activations[r.Then.Var], clipped{r.Then.Term, level})
		}
	}
	out := make(map[string]float64, len(s.outputs))
	names := make([]string, 0, len(s.outputs))
	for n := range s.outputs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		v := s.outputs[name]
		acts := activations[name]
		if len(acts) == 0 {
			out[name] = v.Min
			continue
		}
		// Centroid of the max-aggregated clipped membership functions.
		var num, den float64
		step := (v.Max - v.Min) / float64(s.samples-1)
		for i := 0; i < s.samples; i++ {
			x := v.Min + float64(i)*step
			var mu float64
			for _, a := range acts {
				d := math.Min(v.Terms[a.term].Degree(x), a.level)
				if d > mu {
					mu = d
				}
			}
			num += x * mu
			den += mu
		}
		if den == 0 {
			out[name] = v.Min
		} else {
			out[name] = num / den
		}
	}
	return out, nil
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
