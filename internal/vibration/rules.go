package vibration

import (
	"math"

	"repro/internal/chiller"
)

// Context carries the process parameters a rule may condition on — §6.1's
// "analyzed in conjunction with process parameters such as load or bearing
// temperatures".
type Context struct {
	// Load is the plant load fraction in [0,1] (vane position is the §6.1
	// load indicator).
	Load float64
	// Process is the full scalar telemetry snapshot.
	Process chiller.ProcessState
}

// Rule is one frame-based diagnostic rule: it scores a severity in [0,1]
// for one machine condition from the features of its primary measurement
// point plus process context.
type Rule struct {
	// Condition is the machine condition this rule diagnoses; it matches
	// chiller.Fault.String() so ground truth can be compared directly.
	Condition string
	// Point is the measurement point the rule reads.
	Point chiller.MeasurementPoint
	// Believability is the §6.1 per-diagnosis accuracy factor, "based on
	// [the] statistical database that demonstrates the individual accuracy
	// of each diagnosis by tracking how often each was reversed or modified
	// by a human analyst".
	Believability float64
	// Score maps features+context to severity in [0,1]; 0 means no call.
	Score func(f *Features, ctx *Context) float64
	// Explanation and Recommendation fill the report text fields.
	Explanation    string
	Recommendation string
}

// ramp maps x linearly from [lo,hi] onto [0,1], clamped.
func ramp(x, lo, hi float64) float64 {
	if hi <= lo {
		return 0
	}
	v := (x - lo) / (hi - lo)
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// StandardRules returns the reconstruction of the DLI rulebook for the
// centrifugal chiller train. Amplitude thresholds are calibrated against
// the plant simulator's healthy baselines (≈0.05 g residual 1×) and
// full-severity signatures; believability factors encode that some
// diagnoses (imbalance, electrical) are historically more reliable than
// subtle ones (inner race, gear wear).
func StandardRules() []Rule {
	return []Rule{
		{
			Condition:     chiller.MotorImbalance.String(),
			Point:         chiller.MotorDE,
			Believability: 0.95,
			Score: func(f *Features, ctx *Context) float64 {
				one := f.MotorOrders[0]
				two := f.MotorOrders[1]
				// Imbalance is 1×-dominant; a high 2× points elsewhere.
				if two > 0.6*one {
					return 0
				}
				return ramp(one, 0.12, 1.0)
			},
			Explanation:    "elevated 1x radial vibration at motor bearings, 1x-dominant pattern",
			Recommendation: "field balance motor rotor at next availability",
		},
		{
			Condition:     chiller.MotorMisalignment.String(),
			Point:         chiller.MotorDE,
			Believability: 0.90,
			Score: func(f *Features, ctx *Context) float64 {
				one := f.MotorOrders[0]
				two := f.MotorOrders[1]
				if two < 0.5*one || two < 0.08 {
					return 0
				}
				return ramp(two, 0.08, 0.78)
			},
			Explanation:    "elevated 2x vibration with 2x/1x ratio above 0.5 across the coupling",
			Recommendation: "check coupling and realign motor to gearbox",
		},
		{
			Condition:     chiller.MotorBearingOuter.String(),
			Point:         chiller.MotorDE,
			Believability: 0.88,
			Score: func(f *Features, ctx *Context) float64 {
				s := ramp(f.MotorBPFO, 0.03, 0.33)
				// Impulsive waveform corroborates a rolling element defect.
				if f.Kurtosis > 3.5 {
					s = math.Min(1, s*1.25)
				}
				return s
			},
			Explanation:    "ball pass frequency (outer race) tone family with impulsive time waveform",
			Recommendation: "schedule motor drive-end bearing replacement; increase monitoring interval",
		},
		{
			Condition:     chiller.MotorBearingInner.String(),
			Point:         chiller.MotorNDE,
			Believability: 0.80,
			Score: func(f *Features, ctx *Context) float64 {
				s := ramp(f.MotorBPFI, 0.025, 0.28)
				if f.Kurtosis > 3.5 {
					s = math.Min(1, s*1.25)
				}
				return s
			},
			Explanation:    "ball pass frequency (inner race) tones modulated at shaft speed",
			Recommendation: "schedule motor non-drive-end bearing replacement",
		},
		{
			Condition:     chiller.MotorRotorBar.String(),
			Point:         chiller.MotorNDE,
			Believability: 0.85,
			Score: func(f *Features, ctx *Context) float64 {
				// Load sensitization per §6.1: the sidebands scale with
				// load, so de-bias by the expected load gain and do not
				// call the fault at all at very light load where the
				// signature is unreliable.
				if ctx.Load < 0.2 {
					return 0
				}
				loadGain := 0.15 + 0.85*ctx.Load
				return ramp(f.PolePassSidebands/loadGain, 0.08, 0.72)
			},
			Explanation:    "pole-pass sidebands around line frequency, scaling with load",
			Recommendation: "perform current signature analysis; inspect rotor bars at overhaul",
		},
		{
			Condition:     chiller.StatorElectrical.String(),
			Point:         chiller.MotorNDE,
			Believability: 0.92,
			Score: func(f *Features, ctx *Context) float64 {
				return ramp(f.TwoXLine, 0.07, 0.68)
			},
			Explanation:    "elevated vibration at twice line frequency indicating electromagnetic unbalance",
			Recommendation: "megger stator windings and check phase balance",
		},
		{
			Condition:     chiller.GearToothWear.String(),
			Point:         chiller.GearBox,
			Believability: 0.78,
			Score: func(f *Features, ctx *Context) float64 {
				// Mesh amplitude rises with load even when healthy;
				// normalize against the load-dependent baseline.
				baseline := 0.07 * (0.5 + 0.5*ctx.Load)
				s := ramp(f.GearMesh[0]-baseline, 0.05, 0.45)
				if f.GearMeshSidebands > 0.1 {
					s = math.Min(1, s*1.2)
				}
				return s
			},
			Explanation:    "elevated gear mesh harmonics with shaft-speed sidebands",
			Recommendation: "sample gear oil for wear metals; inspect tooth contact pattern",
		},
		{
			Condition:     chiller.BearingLooseness.String(),
			Point:         chiller.Compressor,
			Believability: 0.82,
			Score: func(f *Features, ctx *Context) float64 {
				// §6.1's own example: "the DLI expert system rule for
				// bearing looseness can be sensitized to available load
				// indicators (such as pre-rotation vane position) in order
				// to ensure that a false positive bearing looseness call is
				// not made when the compressor enters a low load period."
				harmonics := 0.0
				for k := 1; k < 8; k++ {
					harmonics += f.CompOrders[k]
				}
				looseGain := 1.4 - 0.8*ctx.Load
				s := ramp(harmonics/looseGain, 0.12, 0.62)
				if f.HalfCompOrder > 0.05 {
					s = math.Min(1, s*1.2) // subharmonic confirms
				}
				return s
			},
			Explanation:    "harmonic series of running speed with subharmonics, normalized for load",
			Recommendation: "check compressor bearing housing bolts and fits",
		},
		{
			Condition:     chiller.OilWhirl.String(),
			Point:         chiller.Compressor,
			Believability: 0.87,
			Score: func(f *Features, ctx *Context) float64 {
				return ramp(f.SubSyncComp, 0.06, 0.55)
			},
			Explanation:    "subsynchronous vibration at 0.38-0.48x compressor speed",
			Recommendation: "check oil temperature and pressure; consider bearing redesign if persistent",
		},
		{
			Condition:     chiller.CompressorBearingOuter.String(),
			Point:         chiller.Compressor,
			Believability: 0.86,
			Score: func(f *Features, ctx *Context) float64 {
				s := ramp(f.CompBPFO, 0.025, 0.28)
				if f.Kurtosis > 3.5 {
					s = math.Min(1, s*1.25)
				}
				return s
			},
			Explanation:    "compressor bearing outer race tone family with impacts",
			Recommendation: "schedule compressor bearing replacement",
		},
	}
}
