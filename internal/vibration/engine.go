package vibration

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/chiller"
	"repro/internal/proto"
)

// Diagnosis is one expert-system conclusion before protocol packaging.
type Diagnosis struct {
	// Condition is the machine condition name.
	Condition string
	// Point is the measurement point the call was made from.
	Point chiller.MeasurementPoint
	// Severity is the numeric severity in [0,1] (§6.1's "numerical severity
	// score along with the fault diagnosis").
	Severity float64
	// Grade is the §6.1 gradient category.
	Grade proto.SeverityGrade
	// Belief is the believability factor of the diagnosis.
	Belief float64
	// Explanation and Recommendation are the human-readable report fields.
	Explanation    string
	Recommendation string
}

// Engine is the frame-based rule engine.
type Engine struct {
	cfg       chiller.Config
	rules     []Rule
	threshold float64
}

// NewEngine builds an engine with the standard rulebook. Diagnoses scoring
// below threshold severity are suppressed (the call threshold separating
// "no call" from a Slight call).
func NewEngine(cfg chiller.Config, threshold float64) *Engine {
	return &Engine{cfg: cfg, rules: StandardRules(), threshold: threshold}
}

// NewEngineWithRules builds an engine with a custom rulebook.
func NewEngineWithRules(cfg chiller.Config, rules []Rule, threshold float64) *Engine {
	return &Engine{cfg: cfg, rules: rules, threshold: threshold}
}

// Rules returns the engine's rulebook.
func (e *Engine) Rules() []Rule { return e.rules }

// Diagnose runs every rule whose measurement point is present in the
// feature set and returns the diagnoses scoring at or above the call
// threshold, sorted by descending severity-weighted belief.
func (e *Engine) Diagnose(features map[chiller.MeasurementPoint]*Features, ctx *Context) ([]Diagnosis, error) {
	if ctx == nil {
		return nil, fmt.Errorf("vibration: nil context")
	}
	var out []Diagnosis
	for _, r := range e.rules {
		f, ok := features[r.Point]
		if !ok {
			continue
		}
		s := r.Score(f, ctx)
		if s < 0 || s > 1 {
			return nil, fmt.Errorf("vibration: rule %q scored %g outside [0,1]", r.Condition, s)
		}
		if s < e.threshold {
			continue
		}
		out = append(out, Diagnosis{
			Condition:      r.Condition,
			Point:          r.Point,
			Severity:       s,
			Grade:          proto.GradeSeverity(s),
			Belief:         r.Believability,
			Explanation:    r.Explanation,
			Recommendation: r.Recommendation,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Severity*out[i].Belief > out[j].Severity*out[j].Belief
	})
	return out, nil
}

// DiagnosePlant acquires one frame per measurement point from the plant and
// diagnoses it — the all-in-one entry point used by the Data Concentrator's
// scheduled vibration test.
func (e *Engine) DiagnosePlant(p *chiller.Plant, frameLen int) ([]Diagnosis, error) {
	features := make(map[chiller.MeasurementPoint]*Features, chiller.NumPoints)
	for _, pt := range chiller.AllPoints() {
		frame, err := p.AcquireVibration(pt, frameLen)
		if err != nil {
			return nil, err
		}
		f, err := Extract(frame, e.cfg, pt)
		if err != nil {
			return nil, err
		}
		features[pt] = f
	}
	ctx := &Context{Load: p.Load(), Process: p.ProcessState()}
	return e.Diagnose(features, ctx)
}

// WorstCasePrognostic builds the §5.4-style "worst-case scenario" vector
// for a severity grade: the §6.1 category horizons (months/weeks/days)
// rendered as (probability, time) pairs.
func WorstCasePrognostic(grade proto.SeverityGrade, severity float64) proto.PrognosticVector {
	day := 86400.0
	switch grade {
	case proto.SeverityExtreme:
		return proto.PrognosticVector{
			{Probability: 0.5, HorizonSeconds: 1 * day},
			{Probability: 0.9, HorizonSeconds: 3 * day},
			{Probability: 0.99, HorizonSeconds: 7 * day},
		}
	case proto.SeveritySerious:
		return proto.PrognosticVector{
			{Probability: 0.2, HorizonSeconds: 7 * day},
			{Probability: 0.6, HorizonSeconds: 21 * day},
			{Probability: 0.95, HorizonSeconds: 45 * day},
		}
	case proto.SeverityModerate:
		return proto.PrognosticVector{
			{Probability: 0.1, HorizonSeconds: 30 * day},
			{Probability: 0.5, HorizonSeconds: 90 * day},
			{Probability: 0.9, HorizonSeconds: 180 * day},
		}
	case proto.SeveritySlight:
		return proto.PrognosticVector{
			{Probability: 0.05, HorizonSeconds: 90 * day},
			{Probability: 0.2, HorizonSeconds: 365 * day},
		}
	default:
		return nil
	}
}

// ToReport packages a diagnosis as a protocol report from the given
// knowledge source about the given sensed object.
func (d Diagnosis) ToReport(dcID, ksID, objectID string, at time.Time) *proto.Report {
	return &proto.Report{
		DCID:               dcID,
		KnowledgeSourceID:  ksID,
		SensedObjectID:     objectID,
		MachineConditionID: d.Condition,
		Severity:           d.Severity,
		Belief:             d.Belief,
		Explanation:        d.Explanation,
		Recommendations:    d.Recommendation,
		Timestamp:          at,
		AdditionalInfo:     "measurement point: " + d.Point.String(),
		Prognostics:        WorstCasePrognostic(d.Grade, d.Severity),
	}
}
