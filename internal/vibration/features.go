// Package vibration reimplements the shape of the DLI vibration expert
// system of §6.1: "all standard machinery vibration FFT analysis and
// associated diagnostics ... The frame based rules application method
// employed allows the spectral vibration features to be analyzed in
// conjunction with process parameters such as load or bearing temperatures
// to arrive at a more accurate and knowledgeable machinery diagnosis."
//
// The engine extracts an order-domain feature frame per measurement point,
// applies a rulebook of frame-based rules (each sensitized to load where
// the physics demands it — the paper's bearing-looseness example), scores a
// numeric severity, grades it Slight/Moderate/Serious/Extreme, attaches a
// believability factor per diagnosis (§6.1: "based on DLI's statistical
// database that demonstrates the individual accuracy of each diagnosis"),
// and emits protocol reports with worst-case prognostic vectors.
package vibration

import (
	"fmt"

	"repro/internal/chiller"
	"repro/internal/dsp"
)

// Features is the spectral/time feature frame for one measurement point —
// the quantities the rulebook conditions on.
type Features struct {
	// Point is where the frame was measured.
	Point chiller.MeasurementPoint
	// OverallRMS is the broadband vibration RMS.
	OverallRMS float64
	// CrestFactor and Kurtosis capture impulsiveness (bearing defects).
	CrestFactor float64
	Kurtosis    float64
	// MotorOrders[k] is the amplitude at (k+1)× motor shaft speed, k<8.
	MotorOrders [8]float64
	// CompOrders[k] is the amplitude at (k+1)× compressor shaft speed.
	CompOrders [8]float64
	// HalfCompOrder is the amplitude at 0.5× compressor speed
	// (looseness subharmonic).
	HalfCompOrder float64
	// SubSyncComp is the peak amplitude in the 0.35×–0.48× compressor band
	// (oil whirl).
	SubSyncComp float64
	// TwoXLine is the amplitude at twice line frequency (electrical).
	TwoXLine float64
	// PolePassSidebands is the summed sideband amplitude at line ± pole
	// pass frequency (rotor bar).
	PolePassSidebands float64
	// MotorBPFO/MotorBPFI are bearing tone amplitudes (fundamental).
	MotorBPFO float64
	MotorBPFI float64
	// CompBPFO is the compressor bearing outer race tone amplitude.
	CompBPFO float64
	// GearMesh[k] is the amplitude at (k+1)× gear mesh frequency, k<3.
	GearMesh [3]float64
	// GearMeshSidebands is the 1× sideband energy around the mesh
	// fundamental.
	GearMeshSidebands float64
}

// Extract computes the feature frame for a vibration waveform acquired at
// point pt on a plant with configuration cfg.
func Extract(frame []float64, cfg chiller.Config, pt chiller.MeasurementPoint) (*Features, error) {
	if len(frame) < 1024 {
		return nil, fmt.Errorf("vibration: frame of %d samples too short for diagnosis", len(frame))
	}
	spec, err := dsp.AnalyzeFrame(frame, cfg.SampleRate, dsp.Hann)
	if err != nil {
		return nil, err
	}
	shaft := cfg.MotorShaftHz()
	comp := cfg.CompShaftHz()
	mesh := cfg.GearMeshHz()
	line := cfg.LineFreqHz
	pp := cfg.PolePassHz()
	// Frequency tolerance: a couple of bins or 1% of shaft speed.
	tol := 2 * spec.Resolution

	f := &Features{
		Point:       pt,
		OverallRMS:  dsp.RMS(frame),
		CrestFactor: dsp.CrestFactor(frame),
		Kurtosis:    dsp.Kurtosis(frame),
	}
	for k := 0; k < 8; k++ {
		f.MotorOrders[k] = spec.AmpAt(float64(k+1)*shaft, tol)
		f.CompOrders[k] = spec.AmpAt(float64(k+1)*comp, tol)
	}
	f.HalfCompOrder = spec.AmpAt(0.5*comp, tol)
	// Oil whirl: search the subsynchronous band.
	lo, hi := 0.35*comp, 0.48*comp
	var best float64
	for b := spec.Bin(lo); b <= spec.Bin(hi); b++ {
		if spec.Amp[b] > best {
			best = spec.Amp[b]
		}
	}
	f.SubSyncComp = best
	f.TwoXLine = spec.AmpAt(2*line, tol)
	// Rotor-bar sidebands need fine resolution (pole pass ≈ 1.3 Hz); use a
	// tight tolerance of one bin.
	f.PolePassSidebands = spec.AmpAt(line-pp, spec.Resolution) + spec.AmpAt(line+pp, spec.Resolution)
	f.MotorBPFO = spec.AmpAt(cfg.MotorBearing.BPFO*shaft, 2*tol)
	f.MotorBPFI = spec.AmpAt(cfg.MotorBearing.BPFI*shaft, 2*tol)
	f.CompBPFO = spec.AmpAt(cfg.CompBearing.BPFO*comp, 2*tol)
	for k := 0; k < 3; k++ {
		f.GearMesh[k] = spec.AmpAt(float64(k+1)*mesh, 2*tol)
	}
	f.GearMeshSidebands = dsp.SidebandEnergy(spec, mesh, shaft, tol, 1)
	return f, nil
}
