package vibration

import (
	"fmt"

	"repro/internal/chiller"
	"repro/internal/dsp"
)

// Extractor computes feature frames with zero steady-state heap allocation:
// the spectral analyzer scratch is sized once for the configured frame
// length and every ExtractInto call writes into a caller-provided Features
// value. This is the allocation-free counterpart of Extract for the
// scheduled vibration test, where the data concentrator sweeps every
// measurement point on a fixed acquisition budget.
type Extractor struct {
	cfg chiller.Config
	fa  *dsp.FrameAnalyzer
}

// NewExtractor sizes an extractor for frames of exactly frameLen samples
// under cfg. frameLen must be at least 1024 samples, as for Extract.
func NewExtractor(cfg chiller.Config, frameLen int) (*Extractor, error) {
	if frameLen < 1024 {
		return nil, fmt.Errorf("vibration: frame of %d samples too short for diagnosis", frameLen)
	}
	fa, err := dsp.NewFrameAnalyzer(frameLen, cfg.SampleRate, dsp.Hann)
	if err != nil {
		return nil, err
	}
	return &Extractor{cfg: cfg, fa: fa}, nil
}

// FrameLen returns the frame length the extractor was sized for.
func (e *Extractor) FrameLen() int { return e.fa.FrameLen() }

// ExtractInto computes the feature frame for a waveform acquired at point
// pt, overwriting *f. frame must be exactly FrameLen samples. The feature
// values match Extract bit-for-bit on the same input.
//
//mpros:hotpath per-point feature extraction on the scheduled vibration test
func (e *Extractor) ExtractInto(f *Features, frame []float64, pt chiller.MeasurementPoint) error {
	spec, err := e.fa.Analyze(frame)
	if err != nil {
		return err
	}
	cfg := e.cfg
	shaft := cfg.MotorShaftHz()
	comp := cfg.CompShaftHz()
	mesh := cfg.GearMeshHz()
	line := cfg.LineFreqHz
	pp := cfg.PolePassHz()
	// Frequency tolerance: a couple of bins or 1% of shaft speed.
	tol := 2 * spec.Resolution

	*f = Features{
		Point:       pt,
		OverallRMS:  dsp.RMS(frame),
		CrestFactor: dsp.CrestFactor(frame),
		Kurtosis:    dsp.Kurtosis(frame),
	}
	for k := 0; k < 8; k++ {
		f.MotorOrders[k] = spec.AmpAt(float64(k+1)*shaft, tol)
		f.CompOrders[k] = spec.AmpAt(float64(k+1)*comp, tol)
	}
	f.HalfCompOrder = spec.AmpAt(0.5*comp, tol)
	// Oil whirl: search the subsynchronous band.
	lo, hi := 0.35*comp, 0.48*comp
	var best float64
	for b := spec.Bin(lo); b <= spec.Bin(hi); b++ {
		if spec.Amp[b] > best {
			best = spec.Amp[b]
		}
	}
	f.SubSyncComp = best
	f.TwoXLine = spec.AmpAt(2*line, tol)
	// Rotor-bar sidebands need fine resolution (pole pass ≈ 1.3 Hz); use a
	// tight tolerance of one bin.
	f.PolePassSidebands = spec.AmpAt(line-pp, spec.Resolution) + spec.AmpAt(line+pp, spec.Resolution)
	f.MotorBPFO = spec.AmpAt(cfg.MotorBearing.BPFO*shaft, 2*tol)
	f.MotorBPFI = spec.AmpAt(cfg.MotorBearing.BPFI*shaft, 2*tol)
	f.CompBPFO = spec.AmpAt(cfg.CompBearing.BPFO*comp, 2*tol)
	for k := 0; k < 3; k++ {
		f.GearMesh[k] = spec.AmpAt(float64(k+1)*mesh, 2*tol)
	}
	f.GearMeshSidebands = dsp.SidebandEnergy(spec, mesh, shaft, tol, 1)
	return nil
}
