package vibration

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/chiller"
	"repro/internal/proto"
)

func plantWith(t testing.TB, faults map[chiller.Fault]float64, load float64, seed int64) *chiller.Plant {
	t.Helper()
	cfg := chiller.DefaultConfig()
	cfg.Seed = seed
	p, err := chiller.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for f, s := range faults {
		if err := p.SetFault(f, s); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.SetLoad(load); err != nil {
		t.Fatal(err)
	}
	return p
}

func diagnose(t testing.TB, p *chiller.Plant) []Diagnosis {
	t.Helper()
	e := NewEngine(p.Config(), 0.15)
	ds, err := e.DiagnosePlant(p, 16384)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func hasCondition(ds []Diagnosis, f chiller.Fault) (Diagnosis, bool) {
	for _, d := range ds {
		if d.Condition == f.String() {
			return d, true
		}
	}
	return Diagnosis{}, false
}

func TestHealthyPlantNoCalls(t *testing.T) {
	p := plantWith(t, nil, 0.8, 1)
	ds := diagnose(t, p)
	if len(ds) != 0 {
		t.Fatalf("healthy plant produced calls: %+v", ds)
	}
}

func TestEachVibrationalFaultIsDetected(t *testing.T) {
	for _, f := range chiller.AllFaults() {
		if !f.IsVibrational() {
			continue
		}
		p := plantWith(t, map[chiller.Fault]float64{f: 0.8}, 0.8, 7)
		ds := diagnose(t, p)
		if len(ds) == 0 {
			t.Errorf("%v at severity 0.8 produced no diagnosis", f)
			continue
		}
		// The correct condition must be the top-ranked call.
		if ds[0].Condition != f.String() {
			got, ok := hasCondition(ds, f)
			t.Errorf("%v: top call was %q (correct call present=%v severity=%.2f)",
				f, ds[0].Condition, ok, got.Severity)
		}
	}
}

func TestSeverityTracksInjectedSeverity(t *testing.T) {
	sev := func(inject float64) float64 {
		p := plantWith(t, map[chiller.Fault]float64{chiller.MotorImbalance: inject}, 0.8, 3)
		ds := diagnose(t, p)
		d, ok := hasCondition(ds, chiller.MotorImbalance)
		if !ok {
			return 0
		}
		return d.Severity
	}
	s3, s6, s9 := sev(0.3), sev(0.6), sev(0.9)
	if !(s3 < s6 && s6 < s9) {
		t.Errorf("estimated severity not monotone: %.2f %.2f %.2f", s3, s6, s9)
	}
}

func TestLoosenessLoadSensitization(t *testing.T) {
	// The §6.1 scenario: a healthy compressor entering low-load operation
	// must NOT trigger a bearing looseness call.
	p := plantWith(t, nil, 0.05, 11)
	ds := diagnose(t, p)
	if d, ok := hasCondition(ds, chiller.BearingLooseness); ok {
		t.Fatalf("false positive looseness call at low load (severity %.2f)", d.Severity)
	}
	// A genuinely loose bearing is still called at low load.
	p2 := plantWith(t, map[chiller.Fault]float64{chiller.BearingLooseness: 0.8}, 0.05, 12)
	ds2 := diagnose(t, p2)
	if _, ok := hasCondition(ds2, chiller.BearingLooseness); !ok {
		t.Fatal("real looseness missed at low load")
	}
}

func TestRotorBarNotCalledUnloaded(t *testing.T) {
	// At near-zero load the rotor bar signature is unreliable; the rule
	// abstains rather than guessing.
	p := plantWith(t, map[chiller.Fault]float64{chiller.MotorRotorBar: 0.9}, 0.1, 13)
	ds := diagnose(t, p)
	if _, ok := hasCondition(ds, chiller.MotorRotorBar); ok {
		t.Fatal("rotor bar called at 10% load where the rule should abstain")
	}
	// At full load it is called.
	if err := p.SetLoad(1.0); err != nil {
		t.Fatal(err)
	}
	ds = diagnose(t, p)
	if _, ok := hasCondition(ds, chiller.MotorRotorBar); !ok {
		t.Fatal("rotor bar missed at full load")
	}
}

func TestMultipleConcurrentFaults(t *testing.T) {
	// §5.3: "there can, in fact, be several failures at one time". Two
	// independent faults in different groups must both be called.
	p := plantWith(t, map[chiller.Fault]float64{
		chiller.MotorImbalance: 0.7,
		chiller.GearToothWear:  0.7,
	}, 0.8, 17)
	ds := diagnose(t, p)
	if _, ok := hasCondition(ds, chiller.MotorImbalance); !ok {
		t.Error("imbalance missed in multi-fault scenario")
	}
	if _, ok := hasCondition(ds, chiller.GearToothWear); !ok {
		t.Error("gear wear missed in multi-fault scenario")
	}
}

func TestGradeAssignment(t *testing.T) {
	p := plantWith(t, map[chiller.Fault]float64{chiller.MotorImbalance: 0.95}, 0.8, 19)
	ds := diagnose(t, p)
	d, ok := hasCondition(ds, chiller.MotorImbalance)
	if !ok {
		t.Fatal("no call")
	}
	if d.Grade != proto.GradeSeverity(d.Severity) {
		t.Error("grade inconsistent with severity")
	}
	if d.Grade < proto.SeveritySerious {
		t.Errorf("severity 0.95 injection graded only %v (est %.2f)", d.Grade, d.Severity)
	}
}

func TestWorstCasePrognosticShapes(t *testing.T) {
	for _, g := range []proto.SeverityGrade{
		proto.SeveritySlight, proto.SeverityModerate, proto.SeveritySerious, proto.SeverityExtreme,
	} {
		v := WorstCasePrognostic(g, 0.5)
		if len(v) == 0 {
			t.Errorf("%v: empty prognostic", g)
			continue
		}
		if err := v.Validate(); err != nil {
			t.Errorf("%v: invalid vector: %v", g, err)
		}
	}
	if WorstCasePrognostic(proto.SeverityNone, 0) != nil {
		t.Error("none grade should have no prognostic")
	}
	// More severe grades reach 50% failure probability sooner.
	tExt, _ := WorstCasePrognostic(proto.SeverityExtreme, 1).TimeToProbability(0.5, 400*24*time.Hour)
	tMod, _ := WorstCasePrognostic(proto.SeverityModerate, 1).TimeToProbability(0.5, 400*24*time.Hour)
	if tExt >= tMod {
		t.Errorf("extreme (%v) should fail before moderate (%v)", tExt, tMod)
	}
}

func TestToReport(t *testing.T) {
	d := Diagnosis{
		Condition: chiller.MotorImbalance.String(), Point: chiller.MotorDE,
		Severity: 0.6, Grade: proto.SeveritySerious, Belief: 0.95,
		Explanation: "x", Recommendation: "y",
	}
	r := d.ToReport("dc-1", "ks/dli", "motor/1", time.Date(1998, 9, 1, 0, 0, 0, 0, time.UTC))
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.MachineConditionID != "motor imbalance" || r.Belief != 0.95 || len(r.Prognostics) == 0 {
		t.Errorf("report %+v", r)
	}
}

func TestDiagnoseValidation(t *testing.T) {
	e := NewEngine(chiller.DefaultConfig(), 0.15)
	if _, err := e.Diagnose(nil, nil); err == nil {
		t.Error("nil context should error")
	}
	// Missing points: rules simply skip.
	ds, err := e.Diagnose(map[chiller.MeasurementPoint]*Features{}, &Context{Load: 0.8})
	if err != nil || len(ds) != 0 {
		t.Errorf("empty features: %v %v", ds, err)
	}
	// A rule scoring out of range is rejected.
	badRules := []Rule{{
		Condition: "bogus", Point: chiller.MotorDE, Believability: 1,
		Score: func(*Features, *Context) float64 { return 2 },
	}}
	e2 := NewEngineWithRules(chiller.DefaultConfig(), badRules, 0.1)
	if _, err := e2.Diagnose(map[chiller.MeasurementPoint]*Features{
		chiller.MotorDE: {},
	}, &Context{}); err == nil {
		t.Error("out-of-range score should error")
	}
	if len(e.Rules()) == 0 {
		t.Error("rulebook empty")
	}
}

func TestExtractValidation(t *testing.T) {
	if _, err := Extract(make([]float64, 100), chiller.DefaultConfig(), chiller.MotorDE); err == nil {
		t.Error("short frame should error")
	}
}

// TestExpertAgreementSample is a small inline version of experiment E5: on a
// labelled corpus the engine's top call agrees with ground truth at a rate
// comparable to the paper's 95% claim.
func TestExpertAgreementSample(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	vibFaults := []chiller.Fault{}
	for _, f := range chiller.AllFaults() {
		if f.IsVibrational() {
			vibFaults = append(vibFaults, f)
		}
	}
	const trials = 80
	agree := 0
	for i := 0; i < trials; i++ {
		f := vibFaults[rng.Intn(len(vibFaults))]
		sev := 0.5 + 0.5*rng.Float64()
		load := 0.5 + 0.5*rng.Float64() // operating band where all rules apply
		p := plantWith(t, map[chiller.Fault]float64{f: sev}, load, int64(1000+i))
		ds := diagnose(t, p)
		if len(ds) > 0 && ds[0].Condition == f.String() {
			agree++
		}
	}
	rate := float64(agree) / trials
	if rate < 0.9 {
		t.Errorf("agreement rate %.2f below 0.9 (paper claims ≥0.95)", rate)
	}
	t.Logf("agreement rate: %.3f (%d/%d)", rate, agree, trials)
}

func BenchmarkDiagnosePlant(b *testing.B) {
	cfg := chiller.DefaultConfig()
	p, err := chiller.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := p.SetFault(chiller.MotorBearingOuter, 0.6); err != nil {
		b.Fatal(err)
	}
	e := NewEngine(cfg, 0.15)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.DiagnosePlant(p, 16384); err != nil {
			b.Fatal(err)
		}
	}
}
