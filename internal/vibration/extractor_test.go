package vibration

import (
	"testing"

	"repro/internal/chiller"
)

func acquireFrame(t testing.TB, n int) ([]float64, chiller.Config) {
	t.Helper()
	cfg := chiller.DefaultConfig()
	cfg.Seed = 11
	p, err := chiller.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetFault(chiller.MotorImbalance, 0.7); err != nil {
		t.Fatal(err)
	}
	frame, err := p.AcquireVibration(chiller.MotorDE, n)
	if err != nil {
		t.Fatal(err)
	}
	return frame, cfg
}

// TestExtractIntoMatchesExtract checks the preallocated extractor against
// the one-shot path bit for bit on a plant-acquired frame.
func TestExtractIntoMatchesExtract(t *testing.T) {
	frame, cfg := acquireFrame(t, 4096)
	want, err := Extract(frame, cfg, chiller.MotorDE)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewExtractor(cfg, len(frame))
	if err != nil {
		t.Fatal(err)
	}
	if e.FrameLen() != len(frame) {
		t.Fatalf("FrameLen = %d, want %d", e.FrameLen(), len(frame))
	}
	var got Features
	for pass := 0; pass < 2; pass++ {
		if err := e.ExtractInto(&got, frame, chiller.MotorDE); err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		if got != *want {
			t.Fatalf("pass %d: ExtractInto differs from Extract:\ngot  %+v\nwant %+v", pass, got, *want)
		}
	}
}

func TestExtractorRejects(t *testing.T) {
	cfg := chiller.DefaultConfig()
	if _, err := NewExtractor(cfg, 512); err == nil {
		t.Error("too-short frame length accepted")
	}
	e, err := NewExtractor(cfg, 2048)
	if err != nil {
		t.Fatal(err)
	}
	var f Features
	if err := e.ExtractInto(&f, make([]float64, 1024), chiller.MotorDE); err == nil {
		t.Error("wrong-length frame accepted")
	}
}

func BenchmarkExtract(b *testing.B) {
	frame, cfg := acquireFrame(b, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Extract(frame, cfg, chiller.MotorDE); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtractInto(b *testing.B) {
	frame, cfg := acquireFrame(b, 4096)
	e, err := NewExtractor(cfg, len(frame))
	if err != nil {
		b.Fatal(err)
	}
	var f Features
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := e.ExtractInto(&f, frame, chiller.MotorDE); err != nil {
			b.Fatal(err)
		}
	}
}

// TestExtractIntoZeroAlloc is the hot-path budget for the per-point feature
// extraction on the scheduled vibration test: zero heap allocations.
func TestExtractIntoZeroAlloc(t *testing.T) {
	frame, cfg := acquireFrame(t, 4096)
	e, err := NewExtractor(cfg, len(frame))
	if err != nil {
		t.Fatal(err)
	}
	var f Features
	allocs := testing.AllocsPerRun(20, func() {
		if err := e.ExtractInto(&f, frame, chiller.MotorDE); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("ExtractInto allocates %.1f times per point, want 0", allocs)
	}
}
