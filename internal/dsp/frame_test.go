package dsp

import (
	"math"
	"testing"
)

func frameTestSignal(n int, rate float64) []float64 {
	x := make([]float64, n)
	for i := range x {
		t := float64(i) / rate
		x[i] = 1.5*math.Sin(2*math.Pi*60*t) + 0.4*math.Sin(2*math.Pi*247.5*t+0.3) + 0.05*math.Cos(2*math.Pi*1833*t)
	}
	return x
}

// TestFrameAnalyzerMatchesAnalyzeFrame checks the preallocated analyzer
// against the one-shot path bit for bit.
func TestFrameAnalyzerMatchesAnalyzeFrame(t *testing.T) {
	const rate = 8192.0
	for _, n := range []int{1024, 3000, 4096} {
		x := frameTestSignal(n, rate)
		want, err := AnalyzeFrame(x, rate, Hann)
		if err != nil {
			t.Fatalf("n=%d: AnalyzeFrame: %v", n, err)
		}
		fa, err := NewFrameAnalyzer(n, rate, Hann)
		if err != nil {
			t.Fatalf("n=%d: NewFrameAnalyzer: %v", n, err)
		}
		// Run twice so state reuse is exercised.
		for pass := 0; pass < 2; pass++ {
			got, err := fa.Analyze(x)
			if err != nil {
				t.Fatalf("n=%d pass %d: Analyze: %v", n, pass, err)
			}
			if got.SampleRate != want.SampleRate || got.Resolution != want.Resolution {
				t.Fatalf("n=%d: header mismatch: got (%g, %g), want (%g, %g)",
					n, got.SampleRate, got.Resolution, want.SampleRate, want.Resolution)
			}
			if len(got.Amp) != len(want.Amp) {
				t.Fatalf("n=%d: %d bins, want %d", n, len(got.Amp), len(want.Amp))
			}
			for i := range want.Amp {
				if got.Amp[i] != want.Amp[i] || got.Phase[i] != want.Phase[i] {
					t.Fatalf("n=%d bin %d: (%v, %v) != (%v, %v)",
						n, i, got.Amp[i], got.Phase[i], want.Amp[i], want.Phase[i])
				}
			}
		}
	}
}

func TestFrameAnalyzerRejects(t *testing.T) {
	if _, err := NewFrameAnalyzer(0, 8192, Hann); err == nil {
		t.Error("zero frame length accepted")
	}
	if _, err := NewFrameAnalyzer(1024, 0, Hann); err == nil {
		t.Error("zero sample rate accepted")
	}
	fa, err := NewFrameAnalyzer(1024, 8192, Hann)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fa.Analyze(make([]float64, 512)); err == nil {
		t.Error("wrong-length frame accepted")
	}
}

func BenchmarkAnalyzeFrame(b *testing.B) {
	x := frameTestSignal(4096, 8192)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := AnalyzeFrame(x, 8192, Hann); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrameAnalyzerAnalyze(b *testing.B) {
	x := frameTestSignal(4096, 8192)
	fa, err := NewFrameAnalyzer(len(x), 8192, Hann)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := fa.Analyze(x); err != nil {
			b.Fatal(err)
		}
	}
}

// TestFrameAnalyzerZeroAlloc is the hot-path budget for the per-frame
// spectral analysis: zero heap allocations per Analyze call.
func TestFrameAnalyzerZeroAlloc(t *testing.T) {
	const rate = 8192.0
	x := frameTestSignal(4096, rate)
	fa, err := NewFrameAnalyzer(len(x), rate, Hann)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := fa.Analyze(x); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Analyze allocates %.1f times per frame, want 0", allocs)
	}
}
