package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Spectrum holds a one-sided amplitude spectrum of a real-valued frame.
// Amplitudes are corrected for window coherent gain so that a pure sine of
// amplitude A shows a bin amplitude close to A.
type Spectrum struct {
	// SampleRate is the acquisition rate in Hz of the source frame.
	SampleRate float64
	// Resolution is the bin width in Hz.
	Resolution float64
	// Amp[i] is the amplitude of the tone at frequency i*Resolution.
	Amp []float64
	// Phase[i] is the phase in radians of bin i.
	Phase []float64
}

// NumBins returns the number of frequency bins in the spectrum.
func (s *Spectrum) NumBins() int { return len(s.Amp) }

// Freq returns the centre frequency of bin i in Hz.
func (s *Spectrum) Freq(i int) float64 { return float64(i) * s.Resolution }

// Bin returns the bin index nearest to frequency f, clamped to range.
func (s *Spectrum) Bin(f float64) int {
	if s.Resolution == 0 || len(s.Amp) == 0 {
		return 0
	}
	i := int(math.Round(f / s.Resolution))
	if i < 0 {
		i = 0
	}
	if i >= len(s.Amp) {
		i = len(s.Amp) - 1
	}
	return i
}

// AmpAt returns the peak amplitude within ±tol Hz of frequency f. Vibration
// rules use a tolerance of one or two bins to absorb slight speed drift.
func (s *Spectrum) AmpAt(f, tol float64) float64 {
	lo := s.Bin(f - tol)
	hi := s.Bin(f + tol)
	var m float64
	for i := lo; i <= hi; i++ {
		if s.Amp[i] > m {
			m = s.Amp[i]
		}
	}
	return m
}

// BandRMS returns the RMS amplitude over [fLo, fHi] Hz.
func (s *Spectrum) BandRMS(fLo, fHi float64) float64 {
	lo := s.Bin(fLo)
	hi := s.Bin(fHi)
	var sum float64
	n := 0
	for i := lo; i <= hi; i++ {
		// Each spectral line of amplitude A contributes A^2/2 to signal power.
		sum += s.Amp[i] * s.Amp[i] / 2
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Sqrt(sum)
}

// TotalRMS returns the overall RMS estimated from all spectral lines,
// excluding the DC bin.
func (s *Spectrum) TotalRMS() float64 {
	if len(s.Amp) < 2 {
		return 0
	}
	return s.BandRMS(s.Resolution, s.Freq(len(s.Amp)-1))
}

// AnalyzeFrame computes a one-sided amplitude spectrum of frame sampled at
// sampleRate Hz, applying the given window. Frames whose length is not a
// power of two are zero-padded.
func AnalyzeFrame(frame []float64, sampleRate float64, window WindowKind) (*Spectrum, error) {
	if len(frame) == 0 {
		return nil, fmt.Errorf("dsp: empty frame")
	}
	if sampleRate <= 0 {
		return nil, fmt.Errorf("dsp: non-positive sample rate %g", sampleRate)
	}
	n := NextPow2(len(frame))
	work := make([]float64, len(frame))
	copy(work, frame)
	gain := ApplyWindow(window, work)
	work = ZeroPad(work, n)
	spec, err := RealFFT(work)
	if err != nil {
		return nil, err
	}
	out := &Spectrum{
		SampleRate: sampleRate,
		Resolution: sampleRate / float64(n),
		Amp:        make([]float64, len(spec)),
		Phase:      make([]float64, len(spec)),
	}
	// Scale by frame length (not padded length) and window gain; double
	// interior bins to fold negative frequencies into the one-sided view.
	scale := 1 / (float64(len(frame)) * gain)
	for i, c := range spec {
		a := cmplx.Abs(c) * scale
		if i != 0 && i != len(spec)-1 {
			a *= 2
		}
		out.Amp[i] = a
		out.Phase[i] = cmplx.Phase(c)
	}
	return out, nil
}

// PSD returns the power spectral density estimate (amplitude squared per Hz)
// for each bin of s.
func (s *Spectrum) PSD() []float64 {
	out := make([]float64, len(s.Amp))
	if s.Resolution == 0 {
		return out
	}
	for i, a := range s.Amp {
		out[i] = a * a / (2 * s.Resolution)
	}
	return out
}
