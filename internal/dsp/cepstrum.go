package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Cepstrum computes the real cepstrum of frame: IFFT(log|FFT(frame)|).
// The cepstrum exposes periodic families of harmonics and sidebands (gear
// mesh and rotor-bar signatures) as single peaks at the corresponding
// quefrency; the wavelet neural network's feature vector includes cepstral
// coefficients per §6.2 of the paper.
func Cepstrum(frame []float64) ([]float64, error) {
	if len(frame) == 0 {
		return nil, fmt.Errorf("dsp: empty frame")
	}
	n := NextPow2(len(frame))
	buf := ToComplex(ZeroPad(frame, n))
	if err := FFT(buf); err != nil {
		return nil, err
	}
	const floor = 1e-12
	for i, c := range buf {
		mag := cmplx.Abs(c)
		if mag < floor {
			mag = floor
		}
		buf[i] = complex(math.Log(mag), 0)
	}
	if err := IFFT(buf); err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i, c := range buf {
		out[i] = real(c)
	}
	return out, nil
}

// CepstralCoefficients returns the first k cepstral coefficients of frame,
// skipping the zeroth (overall level) coefficient.
func CepstralCoefficients(frame []float64, k int) ([]float64, error) {
	ceps, err := Cepstrum(frame)
	if err != nil {
		return nil, err
	}
	if k > len(ceps)-1 {
		k = len(ceps) - 1
	}
	out := make([]float64, k)
	copy(out, ceps[1:1+k])
	return out, nil
}

// DCT2 computes the (unnormalized) type-II discrete cosine transform of x.
// DCT coefficients are another §6.2 feature family for the WNN classifier.
func DCT2(x []float64) []float64 {
	n := len(x)
	out := make([]float64, n)
	for k := 0; k < n; k++ {
		var sum float64
		for i := 0; i < n; i++ {
			sum += x[i] * math.Cos(math.Pi/float64(n)*(float64(i)+0.5)*float64(k))
		}
		out[k] = sum
	}
	return out
}

// DCT2Coefficients returns the first k type-II DCT coefficients of x,
// normalized by the frame length so that magnitudes are comparable across
// frame sizes. Only the requested coefficients are computed (O(n·k) rather
// than the full O(n²) transform).
func DCT2Coefficients(x []float64, k int) []float64 {
	n := len(x)
	if k > n {
		k = n
	}
	if k < 0 {
		k = 0
	}
	out := make([]float64, k)
	if n == 0 {
		return out
	}
	for c := 0; c < k; c++ {
		var sum float64
		w := math.Pi / float64(n) * float64(c)
		for i := 0; i < n; i++ {
			sum += x[i] * math.Cos(w*(float64(i)+0.5))
		}
		out[c] = sum / float64(n)
	}
	return out
}
