package dsp

import (
	"math"
	"sort"
)

// RMS returns the root-mean-square value of x; 0 for an empty slice.
func RMS(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var sum float64
	for _, v := range x {
		sum += v * v
	}
	return math.Sqrt(sum / float64(len(x)))
}

// Mean returns the arithmetic mean of x; 0 for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var sum float64
	for _, v := range x {
		sum += v
	}
	return sum / float64(len(x))
}

// StdDev returns the population standard deviation of x.
func StdDev(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	var sum float64
	for _, v := range x {
		d := v - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(x)))
}

// PeakAbs returns the maximum absolute value in x.
func PeakAbs(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// PeakToPeak returns max(x) - min(x).
func PeakToPeak(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	mn, mx := x[0], x[0]
	for _, v := range x[1:] {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	return mx - mn
}

// CrestFactor returns peak/RMS, a standard early-warning indicator for
// impulsive bearing faults. Returns 0 when the RMS is 0.
func CrestFactor(x []float64) float64 {
	r := RMS(x)
	if r == 0 {
		return 0
	}
	return PeakAbs(x) / r
}

// Kurtosis returns the excess-free kurtosis (normal process ≈ 3) of x,
// another impulsiveness indicator used in bearing diagnostics.
func Kurtosis(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	var m2, m4 float64
	for _, v := range x {
		d := v - m
		d2 := d * d
		m2 += d2
		m4 += d2 * d2
	}
	n := float64(len(x))
	m2 /= n
	m4 /= n
	if m2 == 0 {
		return 0
	}
	return m4 / (m2 * m2)
}

// Median returns the median of x without modifying it.
func Median(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	tmp := make([]float64, len(x))
	copy(tmp, x)
	sort.Float64s(tmp)
	n := len(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}

// Skewness returns the sample skewness of x.
func Skewness(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	var m2, m3 float64
	for _, v := range x {
		d := v - m
		m2 += d * d
		m3 += d * d * d
	}
	n := float64(len(x))
	m2 /= n
	m3 /= n
	if m2 == 0 {
		return 0
	}
	return m3 / math.Pow(m2, 1.5)
}
