package dsp

import (
	"fmt"
	"math/cmplx"
)

// FrameAnalyzer computes one-sided amplitude spectra of fixed-length frames
// with zero steady-state heap allocation. All scratch — window coefficients,
// the complex FFT buffer, and the output spectrum's bins — is sized at
// construction; the per-frame Analyze call only overwrites it. This is the
// allocation-free counterpart of AnalyzeFrame for the data concentrator's
// ingest tick, where a GC pause is a missed sampling deadline.
//
// The returned *Spectrum aliases the analyzer's internal buffers and is
// valid until the next Analyze call; callers that need to keep a spectrum
// must copy it.
type FrameAnalyzer struct {
	frameLen   int
	fftLen     int
	sampleRate float64
	window     []float64
	gain       float64
	buf        []complex128
	spec       Spectrum
}

// NewFrameAnalyzer sizes an analyzer for frames of exactly frameLen samples
// at sampleRate Hz under the given window. Frames shorter than the next
// power of two are zero-padded internally, exactly as AnalyzeFrame does.
func NewFrameAnalyzer(frameLen int, sampleRate float64, window WindowKind) (*FrameAnalyzer, error) {
	if frameLen <= 0 {
		return nil, fmt.Errorf("dsp: non-positive frame length %d", frameLen)
	}
	if sampleRate <= 0 {
		return nil, fmt.Errorf("dsp: non-positive sample rate %g", sampleRate)
	}
	fftLen := NextPow2(frameLen)
	w := Window(window, frameLen)
	var sum float64
	for _, c := range w {
		sum += c
	}
	bins := fftLen/2 + 1
	return &FrameAnalyzer{
		frameLen:   frameLen,
		fftLen:     fftLen,
		sampleRate: sampleRate,
		window:     w,
		gain:       sum / float64(frameLen),
		buf:        make([]complex128, fftLen),
		spec: Spectrum{
			SampleRate: sampleRate,
			Resolution: sampleRate / float64(fftLen),
			Amp:        make([]float64, bins),
			Phase:      make([]float64, bins),
		},
	}, nil
}

// FrameLen returns the frame length the analyzer was sized for.
func (fa *FrameAnalyzer) FrameLen() int { return fa.frameLen }

// Analyze windows frame, transforms it, and fills the internal spectrum.
// frame must be exactly FrameLen samples. The result aliases internal state
// and is overwritten by the next call.
//
//mpros:hotpath per-frame spectral analysis on the acquisition tick
func (fa *FrameAnalyzer) Analyze(frame []float64) (*Spectrum, error) {
	if len(frame) != fa.frameLen {
		return nil, fmt.Errorf("dsp: frame length %d, analyzer sized for %d", len(frame), fa.frameLen)
	}
	for i, v := range frame {
		fa.buf[i] = complex(v*fa.window[i], 0)
	}
	for i := fa.frameLen; i < fa.fftLen; i++ {
		fa.buf[i] = 0
	}
	if err := FFT(fa.buf); err != nil {
		return nil, err
	}
	// Scale by frame length (not padded length) and window gain; double
	// interior bins to fold negative frequencies into the one-sided view.
	scale := 1 / (float64(fa.frameLen) * fa.gain)
	bins := len(fa.spec.Amp)
	for i := 0; i < bins; i++ {
		c := fa.buf[i]
		a := cmplx.Abs(c) * scale
		if i != 0 && i != bins-1 {
			a *= 2
		}
		fa.spec.Amp[i] = a
		fa.spec.Phase[i] = cmplx.Phase(c)
	}
	return &fa.spec, nil
}
