package dsp

import (
	"math"
	"testing"
)

func multiTone(n int, fs float64, freqs, amps []float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		ti := float64(i) / fs
		for j, f := range freqs {
			out[i] += amps[j] * math.Sin(2*math.Pi*f*ti)
		}
	}
	return out
}

func TestFindPeaks(t *testing.T) {
	const fs = 4096.0
	x := multiTone(4096, fs, []float64{50, 150, 400}, []float64{1.0, 0.6, 0.3})
	s, err := AnalyzeFrame(x, fs, Hann)
	if err != nil {
		t.Fatal(err)
	}
	peaks := FindPeaks(s, 0.1, 3, 0)
	if len(peaks) != 3 {
		t.Fatalf("found %d peaks, want 3: %+v", len(peaks), peaks)
	}
	// Sorted by amplitude descending.
	wantFreqs := []float64{50, 150, 400}
	for i, p := range peaks {
		if math.Abs(p.Freq-wantFreqs[i]) > 2 {
			t.Errorf("peak %d at %g Hz, want %g", i, p.Freq, wantFreqs[i])
		}
	}
	// maxPeaks truncation keeps the largest.
	top := FindPeaks(s, 0.1, 3, 1)
	if len(top) != 1 || math.Abs(top[0].Freq-50) > 2 {
		t.Errorf("top peak wrong: %+v", top)
	}
	// High threshold removes all.
	if got := FindPeaks(s, 100, 3, 0); len(got) != 0 {
		t.Errorf("threshold should remove all peaks, got %+v", got)
	}
}

func TestHarmonicAmps(t *testing.T) {
	const fs = 8192.0
	// Fundamental 60 Hz with 2nd and 3rd harmonics.
	x := multiTone(8192, fs, []float64{60, 120, 180}, []float64{1.0, 0.5, 0.25})
	s, err := AnalyzeFrame(x, fs, Hann)
	if err != nil {
		t.Fatal(err)
	}
	h := HarmonicAmps(s, 60, 2, 4)
	if len(h) != 4 {
		t.Fatalf("want 4 harmonics, got %d", len(h))
	}
	if math.Abs(h[0]-1.0) > 0.05 || math.Abs(h[1]-0.5) > 0.05 || math.Abs(h[2]-0.25) > 0.05 {
		t.Errorf("harmonics %v, want ≈[1.0 0.5 0.25 ~0]", h)
	}
	if h[3] > 0.05 {
		t.Errorf("4th harmonic should be ≈0, got %g", h[3])
	}
}

func TestSidebandEnergy(t *testing.T) {
	const fs = 16384.0
	// Carrier at 1000 Hz with ±25 Hz sideband pairs (two orders).
	x := multiTone(16384, fs,
		[]float64{1000, 975, 1025, 950, 1050},
		[]float64{1.0, 0.3, 0.3, 0.15, 0.15})
	s, err := AnalyzeFrame(x, fs, Hann)
	if err != nil {
		t.Fatal(err)
	}
	e := SidebandEnergy(s, 1000, 25, 2, 2)
	want := 0.3 + 0.3 + 0.15 + 0.15
	if math.Abs(e-want) > 0.08 {
		t.Errorf("sideband energy %g, want ≈%g", e, want)
	}
	// A clean carrier has near-zero sideband energy.
	clean := multiTone(16384, fs, []float64{1000}, []float64{1.0})
	s2, err := AnalyzeFrame(clean, fs, Hann)
	if err != nil {
		t.Fatal(err)
	}
	if e := SidebandEnergy(s2, 1000, 25, 2, 2); e > 0.05 {
		t.Errorf("clean carrier sideband energy %g, want ≈0", e)
	}
}

func TestCepstrumDetectsHarmonicFamily(t *testing.T) {
	const fs = 8192.0
	// Harmonic family at multiples of 64 Hz produces a cepstral peak at
	// quefrency 1/64 s = fs/64 samples = 128 samples.
	freqs := make([]float64, 10)
	amps := make([]float64, 10)
	for i := range freqs {
		freqs[i] = 64 * float64(i+1)
		amps[i] = 1
	}
	x := multiTone(8192, fs, freqs, amps)
	ceps, err := Cepstrum(x)
	if err != nil {
		t.Fatal(err)
	}
	q := int(fs / 64) // 128 samples
	// The rahmonic at q should dominate its neighbourhood.
	peak := ceps[q]
	for off := 20; off <= 60; off += 10 {
		if ceps[q+off] >= peak || ceps[q-off] >= peak {
			t.Fatalf("cepstral peak at %d (%g) not dominant vs offset %d", q, peak, off)
		}
	}
}

func TestCepstralCoefficients(t *testing.T) {
	x := sine(512, 1024, 100, 1)
	c, err := CepstralCoefficients(x, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(c) != 20 {
		t.Fatalf("got %d coefficients", len(c))
	}
	if _, err := Cepstrum(nil); err == nil {
		t.Error("want error on empty frame")
	}
	// k larger than frame clamps.
	c2, err := CepstralCoefficients(x, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(c2) != 511 {
		t.Fatalf("clamped length %d", len(c2))
	}
}

func TestDCT2(t *testing.T) {
	// DCT of a constant signal concentrates in coefficient 0.
	x := []float64{1, 1, 1, 1, 1, 1, 1, 1}
	d := DCT2(x)
	if math.Abs(d[0]-8) > 1e-9 {
		t.Errorf("DC coefficient %g, want 8", d[0])
	}
	for i := 1; i < len(d); i++ {
		if math.Abs(d[i]) > 1e-9 {
			t.Errorf("coefficient %d = %g, want 0", i, d[i])
		}
	}
	c := DCT2Coefficients(x, 4)
	if len(c) != 4 || math.Abs(c[0]-1) > 1e-9 {
		t.Errorf("normalized coefficients %v", c)
	}
	if got := DCT2Coefficients(x, 100); len(got) != 8 {
		t.Errorf("clamp to frame length failed: %d", len(got))
	}
	if got := DCT2Coefficients(nil, 3); len(got) != 0 {
		t.Errorf("empty input: %v", got)
	}
}

func BenchmarkCepstrum4096(b *testing.B) {
	x := sine(4096, 8192, 200, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Cepstrum(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFindPeaks(b *testing.B) {
	x := multiTone(8192, 8192, []float64{50, 150, 400, 800, 1600}, []float64{1, .8, .6, .4, .2})
	s, err := AnalyzeFrame(x, 8192, Hann)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FindPeaks(s, 0.05, 3, 10)
	}
}
