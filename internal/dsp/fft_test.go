package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	if err := FFT(make([]complex128, 3)); err == nil {
		t.Fatal("expected error for length 3")
	}
	if err := FFT(make([]complex128, 100)); err == nil {
		t.Fatal("expected error for length 100")
	}
}

func TestFFTEmptyAndSingle(t *testing.T) {
	if err := FFT(nil); err != nil {
		t.Fatalf("empty FFT: %v", err)
	}
	x := []complex128{complex(3.5, -1)}
	if err := FFT(x); err != nil {
		t.Fatalf("single FFT: %v", err)
	}
	if x[0] != complex(3.5, -1) {
		t.Fatalf("length-1 FFT must be identity, got %v", x[0])
	}
}

func TestFFTImpulse(t *testing.T) {
	// FFT of a unit impulse is all ones.
	x := make([]complex128, 8)
	x[0] = 1
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if !almostEqual(real(v), 1, 1e-12) || !almostEqual(imag(v), 0, 1e-12) {
			t.Fatalf("bin %d = %v, want 1", i, v)
		}
	}
}

func TestFFTSingleTone(t *testing.T) {
	// A cosine at bin k puts N/2 into bins k and N-k.
	const n = 64
	const k = 5
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(math.Cos(2*math.Pi*float64(k)*float64(i)/n), 0)
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		want := 0.0
		if i == k || i == n-k {
			want = n / 2
		}
		if !almostEqual(cmplx.Abs(x[i]), want, 1e-9) {
			t.Fatalf("bin %d magnitude %g, want %g", i, cmplx.Abs(x[i]), want)
		}
	}
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 32
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	want := naiveDFT(x)
	got := append([]complex128(nil), x...)
	if err := FFT(got); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if cmplx.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("bin %d: fft %v, dft %v", i, got[i], want[i])
		}
	}
}

func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for i := 0; i < n; i++ {
			angle := -2 * math.Pi * float64(k) * float64(i) / float64(n)
			sum += x[i] * cmplx.Exp(complex(0, angle))
		}
		out[k] = sum
	}
	return out
}

func TestIFFTRoundTripProperty(t *testing.T) {
	// Property: IFFT(FFT(x)) == x for random frames (power-of-two lengths).
	f := func(seed int64, sizeSel uint8) bool {
		n := 1 << (uint(sizeSel)%8 + 1) // 2..256
		rng := rand.New(rand.NewSource(seed))
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		y := append([]complex128(nil), x...)
		if err := FFT(y); err != nil {
			return false
		}
		if err := IFFT(y); err != nil {
			return false
		}
		for i := range x {
			if cmplx.Abs(x[i]-y[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestParsevalProperty(t *testing.T) {
	// Property: sum |x|^2 == (1/N) sum |X|^2.
	f := func(seed int64) bool {
		const n = 128
		rng := rand.New(rand.NewSource(seed))
		x := make([]complex128, n)
		var tdEnergy float64
		for i := range x {
			x[i] = complex(rng.NormFloat64(), 0)
			tdEnergy += real(x[i]) * real(x[i])
		}
		if err := FFT(x); err != nil {
			return false
		}
		var fdEnergy float64
		for _, v := range x {
			fdEnergy += real(v)*real(v) + imag(v)*imag(v)
		}
		fdEnergy /= n
		return math.Abs(tdEnergy-fdEnergy) < 1e-6*math.Max(1, tdEnergy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTLinearityProperty(t *testing.T) {
	// Property: FFT(a*x + b*y) == a*FFT(x) + b*FFT(y).
	f := func(seed int64, ar, br float64) bool {
		if math.IsNaN(ar) || math.IsInf(ar, 0) || math.IsNaN(br) || math.IsInf(br, 0) {
			return true
		}
		// Keep coefficients bounded to avoid float blow-up obscuring the check.
		a := complex(math.Mod(ar, 10), 0)
		b := complex(math.Mod(br, 10), 0)
		const n = 64
		rng := rand.New(rand.NewSource(seed))
		x := make([]complex128, n)
		y := make([]complex128, n)
		mix := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			y[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			mix[i] = a*x[i] + b*y[i]
		}
		if err := FFT(x); err != nil {
			return false
		}
		if err := FFT(y); err != nil {
			return false
		}
		if err := FFT(mix); err != nil {
			return false
		}
		for i := range mix {
			if cmplx.Abs(mix[i]-(a*x[i]+b*y[i])) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{-5: 1, 0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1000: 1024, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestZeroPad(t *testing.T) {
	x := []float64{1, 2, 3}
	y := ZeroPad(x, 5)
	if len(y) != 5 || y[0] != 1 || y[2] != 3 || y[3] != 0 || y[4] != 0 {
		t.Fatalf("bad pad: %v", y)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when target shorter than input")
		}
	}()
	ZeroPad(x, 2)
}

func BenchmarkFFT1024(b *testing.B) {
	x := make([]complex128, 1024)
	rng := rand.New(rand.NewSource(7))
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
	}
	buf := make([]complex128, len(x))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		if err := FFT(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFFT16384(b *testing.B) {
	x := make([]complex128, 16384)
	rng := rand.New(rand.NewSource(7))
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
	}
	buf := make([]complex128, len(x))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		if err := FFT(buf); err != nil {
			b.Fatal(err)
		}
	}
}
