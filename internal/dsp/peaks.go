package dsp

import "sort"

// Peak describes a local maximum in a spectrum.
type Peak struct {
	// Bin is the index of the peak bin.
	Bin int
	// Freq is the centre frequency of the peak in Hz.
	Freq float64
	// Amp is the peak amplitude.
	Amp float64
}

// FindPeaks locates local maxima in the spectrum whose amplitude exceeds
// threshold and which dominate their neighbourhood of ±guard bins. Peaks are
// returned sorted by descending amplitude, at most maxPeaks of them
// (maxPeaks <= 0 means unlimited).
func FindPeaks(s *Spectrum, threshold float64, guard, maxPeaks int) []Peak {
	if guard < 1 {
		guard = 1
	}
	var peaks []Peak
	for i := 1; i < len(s.Amp)-1; i++ {
		a := s.Amp[i]
		if a < threshold {
			continue
		}
		isPeak := true
		lo := i - guard
		if lo < 0 {
			lo = 0
		}
		hi := i + guard
		if hi > len(s.Amp)-1 {
			hi = len(s.Amp) - 1
		}
		for j := lo; j <= hi; j++ {
			if j != i && s.Amp[j] > a {
				isPeak = false
				break
			}
		}
		if isPeak {
			peaks = append(peaks, Peak{Bin: i, Freq: s.Freq(i), Amp: a})
		}
	}
	sort.Slice(peaks, func(i, j int) bool { return peaks[i].Amp > peaks[j].Amp })
	if maxPeaks > 0 && len(peaks) > maxPeaks {
		peaks = peaks[:maxPeaks]
	}
	return peaks
}

// HarmonicAmps returns the amplitudes of the first count harmonics of the
// fundamental frequency f0 (1×, 2×, ... count×), each searched within ±tol Hz.
// Vibration diagnosis is organized around orders of running speed; this is
// the order-tracking primitive the rule engine uses.
func HarmonicAmps(s *Spectrum, f0, tol float64, count int) []float64 {
	out := make([]float64, count)
	for k := 1; k <= count; k++ {
		out[k-1] = s.AmpAt(f0*float64(k), tol)
	}
	return out
}

// SidebandEnergy returns the summed amplitude of sideband pairs around a
// carrier frequency at spacing delta: carrier ± delta, ± 2*delta, ...
// count pairs, each searched within ±tol Hz. Rotor-bar and gear-tooth faults
// show up as sideband families around line frequency or gear mesh.
func SidebandEnergy(s *Spectrum, carrier, delta, tol float64, count int) float64 {
	var sum float64
	for k := 1; k <= count; k++ {
		d := delta * float64(k)
		sum += s.AmpAt(carrier-d, tol) + s.AmpAt(carrier+d, tol)
	}
	return sum
}
