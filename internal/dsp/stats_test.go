package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRMS(t *testing.T) {
	if RMS(nil) != 0 {
		t.Error("RMS(nil) != 0")
	}
	if got := RMS([]float64{3, 4, 3, 4}); math.Abs(got-math.Sqrt(12.5)) > 1e-12 {
		t.Errorf("RMS = %g", got)
	}
	// Sine of amplitude A has RMS A/sqrt(2).
	x := sine(10000, 10000, 50, 2)
	if got := RMS(x); math.Abs(got-2/math.Sqrt2) > 0.01 {
		t.Errorf("sine RMS = %g, want %g", got, 2/math.Sqrt2)
	}
}

func TestMeanMedianStd(t *testing.T) {
	x := []float64{1, 2, 3, 4, 100}
	if Mean(x) != 22 {
		t.Errorf("mean = %g", Mean(x))
	}
	if Median(x) != 3 {
		t.Errorf("median = %g", Median(x))
	}
	if Median([]float64{1, 2, 3, 4}) != 2.5 {
		t.Error("even median")
	}
	if Median(nil) != 0 || Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty-slice stats should be 0")
	}
	if StdDev([]float64{5, 5, 5, 5}) != 0 {
		t.Error("constant stddev should be 0")
	}
}

func TestCrestFactorAndKurtosis(t *testing.T) {
	// A pure sine has crest factor sqrt(2) and kurtosis 1.5.
	x := sine(8192, 8192, 100, 1)
	if cf := CrestFactor(x); math.Abs(cf-math.Sqrt2) > 0.01 {
		t.Errorf("sine crest factor %g, want %g", cf, math.Sqrt2)
	}
	if k := Kurtosis(x); math.Abs(k-1.5) > 0.02 {
		t.Errorf("sine kurtosis %g, want 1.5", k)
	}
	// Gaussian noise has kurtosis ≈ 3.
	rng := rand.New(rand.NewSource(11))
	g := make([]float64, 100000)
	for i := range g {
		g[i] = rng.NormFloat64()
	}
	if k := Kurtosis(g); math.Abs(k-3) > 0.1 {
		t.Errorf("gaussian kurtosis %g, want ≈3", k)
	}
	// An impulsive signal has much higher crest factor and kurtosis.
	imp := make([]float64, 1024)
	imp[100] = 10
	imp[500] = -10
	if CrestFactor(imp) < 10 {
		t.Error("impulsive crest factor should be large")
	}
	if CrestFactor(make([]float64, 4)) != 0 {
		t.Error("zero signal crest factor should be 0")
	}
}

func TestPeakToPeak(t *testing.T) {
	if PeakToPeak(nil) != 0 {
		t.Error("empty")
	}
	if PeakToPeak([]float64{-3, 2, 7, -1}) != 10 {
		t.Error("p2p")
	}
}

func TestSkewness(t *testing.T) {
	// Symmetric data: ~0 skewness.
	if s := Skewness([]float64{-2, -1, 0, 1, 2}); math.Abs(s) > 1e-12 {
		t.Errorf("symmetric skewness %g", s)
	}
	// Right-skewed data: positive.
	if s := Skewness([]float64{1, 1, 1, 1, 10}); s <= 0 {
		t.Errorf("right-skewed skewness %g", s)
	}
	if Skewness([]float64{2, 2, 2}) != 0 {
		t.Error("constant skewness should be 0")
	}
}

func TestStatsInvariantsProperty(t *testing.T) {
	// Properties on random data: RMS >= |mean|; peak >= RMS; shift invariance
	// of stddev; scale covariance of RMS.
	f := func(seed int64, shift float64) bool {
		if math.IsNaN(shift) || math.IsInf(shift, 0) {
			return true
		}
		shift = math.Mod(shift, 1e3)
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, 257)
		for i := range x {
			x[i] = rng.NormFloat64() * 5
		}
		if RMS(x) < math.Abs(Mean(x))-1e-9 {
			return false
		}
		if PeakAbs(x) < RMS(x)-1e-9 {
			return false
		}
		shifted := make([]float64, len(x))
		scaled := make([]float64, len(x))
		for i, v := range x {
			shifted[i] = v + shift
			scaled[i] = v * 3
		}
		if math.Abs(StdDev(shifted)-StdDev(x)) > 1e-6 {
			return false
		}
		if math.Abs(RMS(scaled)-3*RMS(x)) > 1e-6 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
