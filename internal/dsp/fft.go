// Package dsp provides the digital signal processing substrate used by the
// MPROS data concentrator analyzers: FFT and power spectra, window functions,
// cepstrum, DCT, RMS/envelope detection, peak finding and order tracking.
//
// The paper's Data Concentrator carries a 4-channel PCMCIA spectrum analyzer
// sampling above 40 kHz; every vibration-based diagnostic technique in MPROS
// (the DLI expert system's FFT analysis, SBFR's feature channels, the wavelet
// neural network's feature extraction) consumes the primitives in this
// package.
package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
)

// FFT computes the discrete Fourier transform of x in place using an
// iterative radix-2 Cooley-Tukey algorithm. The length of x must be a power
// of two; use NextPow2 and ZeroPad to prepare arbitrary-length frames.
func FFT(x []complex128) error {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) != 0 {
		return fmt.Errorf("dsp: FFT length %d is not a power of two", n)
	}
	bitReverse(x)
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := -2 * math.Pi / float64(size)
		wn := cmplx.Exp(complex(0, step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				even := x[start+k]
				odd := x[start+k+half] * w
				x[start+k] = even + odd
				x[start+k+half] = even - odd
				w *= wn
			}
		}
	}
	return nil
}

// IFFT computes the inverse discrete Fourier transform of x in place,
// including the 1/N normalization. The length of x must be a power of two.
func IFFT(x []complex128) error {
	n := len(x)
	if n == 0 {
		return nil
	}
	for i := range x {
		x[i] = cmplx.Conj(x[i])
	}
	if err := FFT(x); err != nil {
		return err
	}
	inv := 1 / float64(n)
	for i := range x {
		x[i] = cmplx.Conj(x[i]) * complex(inv, 0)
	}
	return nil
}

// bitReverse permutes x into bit-reversed index order.
func bitReverse(x []complex128) {
	n := len(x)
	j := 0
	for i := 1; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j &^= bit
		}
		j |= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
}

// NextPow2 returns the smallest power of two >= n, and 1 for n <= 0.
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// ZeroPad returns x copied into a new slice of length n (n >= len(x)),
// padded with zeros. It panics if n < len(x).
func ZeroPad(x []float64, n int) []float64 {
	if n < len(x) {
		panic("dsp: ZeroPad target shorter than input")
	}
	out := make([]float64, n)
	copy(out, x)
	return out
}

// ToComplex converts a real-valued frame to a complex slice suitable for FFT.
func ToComplex(x []float64) []complex128 {
	out := make([]complex128, len(x))
	for i, v := range x {
		out[i] = complex(v, 0)
	}
	return out
}

// RealFFT computes the FFT of a real frame and returns the one-sided complex
// spectrum (bins 0..n/2 inclusive). The input length must be a power of two.
func RealFFT(x []float64) ([]complex128, error) {
	buf := ToComplex(x)
	if err := FFT(buf); err != nil {
		return nil, err
	}
	return buf[:len(buf)/2+1], nil
}
