package dsp

import "math"

// WindowKind selects a tapering window for spectral analysis frames.
type WindowKind int

const (
	// Rectangular applies no tapering (all ones).
	Rectangular WindowKind = iota
	// Hann is the raised-cosine window; the default for vibration spectra
	// because of its good sidelobe behaviour on rotating-machinery tones.
	Hann
	// Hamming is the classic Hamming window.
	Hamming
	// Blackman is the three-term Blackman window with very low sidelobes.
	Blackman
	// FlatTop is a five-term flat-top window used when amplitude accuracy
	// of discrete tones matters more than frequency resolution.
	FlatTop
)

// String returns the human-readable window name.
func (w WindowKind) String() string {
	switch w {
	case Rectangular:
		return "rectangular"
	case Hann:
		return "hann"
	case Hamming:
		return "hamming"
	case Blackman:
		return "blackman"
	case FlatTop:
		return "flattop"
	default:
		return "unknown"
	}
}

// Window returns the n window coefficients for kind.
func Window(kind WindowKind, n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	den := float64(n - 1)
	for i := 0; i < n; i++ {
		t := float64(i) / den
		switch kind {
		case Rectangular:
			w[i] = 1
		case Hann:
			w[i] = 0.5 - 0.5*math.Cos(2*math.Pi*t)
		case Hamming:
			w[i] = 0.54 - 0.46*math.Cos(2*math.Pi*t)
		case Blackman:
			w[i] = 0.42 - 0.5*math.Cos(2*math.Pi*t) + 0.08*math.Cos(4*math.Pi*t)
		case FlatTop:
			w[i] = 0.21557895 -
				0.41663158*math.Cos(2*math.Pi*t) +
				0.277263158*math.Cos(4*math.Pi*t) -
				0.083578947*math.Cos(6*math.Pi*t) +
				0.006947368*math.Cos(8*math.Pi*t)
		}
	}
	return w
}

// ApplyWindow multiplies x element-wise by the window coefficients for kind
// and returns the coherent gain of the window (mean of its coefficients),
// which callers use to correct tone amplitudes.
func ApplyWindow(kind WindowKind, x []float64) float64 {
	w := Window(kind, len(x))
	var sum float64
	for i := range x {
		x[i] *= w[i]
		sum += w[i]
	}
	if len(x) == 0 {
		return 1
	}
	return sum / float64(len(x))
}
