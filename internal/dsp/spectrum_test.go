package dsp

import (
	"math"
	"math/rand"
	"testing"
)

// sine builds n samples of amplitude*sin(2π f t) at rate fs.
func sine(n int, fs, f, amplitude float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = amplitude * math.Sin(2*math.Pi*f*float64(i)/fs)
	}
	return out
}

func TestAnalyzeFrameToneAmplitude(t *testing.T) {
	// A 100 Hz tone of amplitude 2.0 must be recovered within a few percent
	// across windows when the tone is bin-centred.
	const fs = 1024.0
	const n = 1024
	x := sine(n, fs, 100, 2.0)
	for _, w := range []WindowKind{Rectangular, Hann, Hamming, Blackman} {
		s, err := AnalyzeFrame(x, fs, w)
		if err != nil {
			t.Fatal(err)
		}
		got := s.AmpAt(100, 2)
		if math.Abs(got-2.0) > 0.05 {
			t.Errorf("window %v: amplitude %g, want ≈2.0", w, got)
		}
	}
}

func TestAnalyzeFrameResolution(t *testing.T) {
	const fs = 2048.0
	x := sine(4096, fs, 250, 1)
	s, err := AnalyzeFrame(x, fs, Hann)
	if err != nil {
		t.Fatal(err)
	}
	if s.Resolution != fs/4096 {
		t.Fatalf("resolution %g, want %g", s.Resolution, fs/4096)
	}
	if s.NumBins() != 4096/2+1 {
		t.Fatalf("bins %d, want %d", s.NumBins(), 4096/2+1)
	}
}

func TestAnalyzeFrameRejectsBadInput(t *testing.T) {
	if _, err := AnalyzeFrame(nil, 1000, Hann); err == nil {
		t.Error("want error for empty frame")
	}
	if _, err := AnalyzeFrame([]float64{1, 2}, 0, Hann); err == nil {
		t.Error("want error for zero sample rate")
	}
	if _, err := AnalyzeFrame([]float64{1, 2}, -5, Hann); err == nil {
		t.Error("want error for negative sample rate")
	}
}

func TestSpectrumBinClamping(t *testing.T) {
	s := &Spectrum{SampleRate: 1000, Resolution: 1, Amp: make([]float64, 501)}
	if s.Bin(-10) != 0 {
		t.Error("negative frequency should clamp to 0")
	}
	if s.Bin(1e9) != 500 {
		t.Error("huge frequency should clamp to last bin")
	}
	if s.Bin(250.4) != 250 {
		t.Error("rounding down failed")
	}
	if s.Bin(250.6) != 251 {
		t.Error("rounding up failed")
	}
}

func TestTwoTonesSeparated(t *testing.T) {
	const fs = 8192.0
	x := make([]float64, 8192)
	for i := range x {
		ti := float64(i) / fs
		x[i] = 1.0*math.Sin(2*math.Pi*60*ti) + 0.5*math.Sin(2*math.Pi*120*ti)
	}
	s, err := AnalyzeFrame(x, fs, Hann)
	if err != nil {
		t.Fatal(err)
	}
	if a := s.AmpAt(60, 2); math.Abs(a-1.0) > 0.05 {
		t.Errorf("60 Hz amp %g, want 1.0", a)
	}
	if a := s.AmpAt(120, 2); math.Abs(a-0.5) > 0.05 {
		t.Errorf("120 Hz amp %g, want 0.5", a)
	}
	if a := s.AmpAt(90, 2); a > 0.05 {
		t.Errorf("90 Hz amp %g, want ≈0", a)
	}
}

func TestBandRMSMatchesTimeDomain(t *testing.T) {
	// Wideband check: band RMS over the full spectrum approximates time RMS.
	const fs = 4096.0
	x := sine(4096, fs, 333, 1.5)
	timeRMS := RMS(x)
	s, err := AnalyzeFrame(x, fs, Rectangular)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.TotalRMS(); math.Abs(got-timeRMS) > 0.02*timeRMS {
		t.Fatalf("spectral RMS %g vs time RMS %g", got, timeRMS)
	}
}

func TestPSDNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := make([]float64, 512)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	s, err := AnalyzeFrame(x, 1000, Hann)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range s.PSD() {
		if p < 0 {
			t.Fatalf("PSD bin %d negative: %g", i, p)
		}
	}
}

func TestWindowProperties(t *testing.T) {
	for _, kind := range []WindowKind{Rectangular, Hann, Hamming, Blackman, FlatTop} {
		w := Window(kind, 128)
		if len(w) != 128 {
			t.Fatalf("%v: wrong length", kind)
		}
		// Symmetry.
		for i := range w {
			j := len(w) - 1 - i
			if math.Abs(w[i]-w[j]) > 1e-9 {
				t.Fatalf("%v: asymmetric at %d (%g vs %g)", kind, i, w[i], w[j])
			}
		}
	}
	// Hann endpoints are 0, midpoint is 1.
	h := Window(Hann, 129)
	if math.Abs(h[0]) > 1e-12 || math.Abs(h[128]) > 1e-12 {
		t.Error("hann endpoints should be 0")
	}
	if math.Abs(h[64]-1) > 1e-12 {
		t.Error("hann midpoint should be 1")
	}
	if Window(Hann, 1)[0] != 1 {
		t.Error("length-1 window should be 1")
	}
}

func TestWindowString(t *testing.T) {
	names := map[WindowKind]string{
		Rectangular: "rectangular", Hann: "hann", Hamming: "hamming",
		Blackman: "blackman", FlatTop: "flattop", WindowKind(99): "unknown",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func BenchmarkAnalyzeFrame4096(b *testing.B) {
	x := sine(4096, 8192, 123, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AnalyzeFrame(x, 8192, Hann); err != nil {
			b.Fatal(err)
		}
	}
}
