package chiller

// ProcessState is the slowly changing scalar telemetry of §2: "Slower
// changing parameters such as temperatures and pressures must also be
// monitored, but at a lower frequency and can be treated as scalars."
// Units are engineering units typical of a shipboard R-134a centrifugal
// chiller.
type ProcessState struct {
	// EvapPressurePSI is the evaporator (suction) pressure.
	EvapPressurePSI float64
	// CondPressurePSI is the condenser (discharge) pressure.
	CondPressurePSI float64
	// EvapApproachF is evaporator approach temperature (CHW supply minus
	// saturated suction temperature), °F.
	EvapApproachF float64
	// CondApproachF is condenser approach temperature, °F.
	CondApproachF float64
	// SuperheatF is suction superheat, °F.
	SuperheatF float64
	// ChilledSupplyF and ChilledReturnF are chilled water temperatures.
	ChilledSupplyF float64
	ChilledReturnF float64
	// MotorCurrentA is motor line current, amps.
	MotorCurrentA float64
	// OilPressurePSI is lubrication oil differential pressure.
	OilPressurePSI float64
	// OilTempF is oil sump temperature.
	OilTempF float64
	// VanePosition is the pre-rotation vane position in [0,1] — the §6.1
	// load indicator the bearing looseness rule is sensitized to.
	VanePosition float64
	// LoadFraction is the delivered cooling as a fraction of rated.
	LoadFraction float64
}

// ProcessState computes the current scalar telemetry from load and the
// process-side fault severities, with small measurement noise.
func (p *Plant) ProcessState() ProcessState {
	load := p.load
	lowCharge := p.severity[RefrigerantLowCharge]
	fouling := p.severity[CondenserFouling]
	oilWhirl := p.severity[OilWhirl]
	rotorBar := p.severity[MotorRotorBar]

	noise := func(scale float64) float64 { return p.rng.NormFloat64() * scale }

	s := ProcessState{
		// Healthy: ~36 psi suction, ~118 psi discharge at 80% load.
		EvapPressurePSI: 36 - 4*load - 14*lowCharge + noise(0.3),
		CondPressurePSI: 100 + 22*load + 35*fouling + noise(0.8),
		EvapApproachF:   2 + 3*load + 6*lowCharge + noise(0.1),
		CondApproachF:   2 + 3*load + 9*fouling + noise(0.1),
		SuperheatF:      8 + 2*load + 18*lowCharge + noise(0.2),
		ChilledSupplyF:  44 + 2.5*lowCharge*load + noise(0.1),
		ChilledReturnF:  44 + 10*load + noise(0.15),
		// Current rises with load; rotor bar faults add slip and draw.
		MotorCurrentA:  120 + 260*load + 25*rotorBar*load + noise(1.5),
		OilPressurePSI: 22 - 6*oilWhirl + noise(0.2),
		OilTempF:       130 + 15*load + 20*oilWhirl + noise(0.5),
		VanePosition:   load,
		LoadFraction:   load,
	}
	// Capacity loss: at severe low charge the chiller cannot hold setpoint.
	if lowCharge > 0.6 {
		s.ChilledSupplyF += (lowCharge - 0.6) * 10 * load
	}
	return s
}
