package chiller

import (
	"fmt"
	"math"
	"math/rand"
)

// MeasurementPoint identifies a vibration sensor location.
type MeasurementPoint int

const (
	// MotorDE is the motor drive-end bearing housing.
	MotorDE MeasurementPoint = iota
	// MotorNDE is the motor non-drive-end bearing housing.
	MotorNDE
	// GearBox is the gearbox casing.
	GearBox
	// Compressor is the compressor bearing housing.
	Compressor

	// NumPoints is the number of measurement points.
	NumPoints int = iota
)

// String names the measurement point.
func (p MeasurementPoint) String() string {
	switch p {
	case MotorDE:
		return "motor-de"
	case MotorNDE:
		return "motor-nde"
	case GearBox:
		return "gearbox"
	case Compressor:
		return "compressor"
	default:
		return fmt.Sprintf("point(%d)", int(p))
	}
}

// AllPoints lists the measurement points.
func AllPoints() []MeasurementPoint {
	out := make([]MeasurementPoint, NumPoints)
	for i := range out {
		out[i] = MeasurementPoint(i)
	}
	return out
}

// Plant is a running chiller with an adjustable fault state and load.
// It is not safe for concurrent use; the DC serializes acquisitions.
type Plant struct {
	cfg      Config
	rng      *rand.Rand
	severity [NumFaults]float64
	load     float64 // 0..1 fraction of rated load
	phase    float64 // running phase offset so consecutive frames differ
	hours    float64 // operating hours, advanced by Degrade
}

// New creates a plant at full health and 80% load.
func New(cfg Config) (*Plant, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Plant{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		load: 0.8,
	}, nil
}

// Config returns the plant configuration.
func (p *Plant) Config() Config { return p.cfg }

// SetFault sets the severity of a fault in [0,1].
func (p *Plant) SetFault(f Fault, severity float64) error {
	if int(f) < 0 || int(f) >= NumFaults {
		return fmt.Errorf("chiller: unknown fault %d", f)
	}
	if severity < 0 || severity > 1 || math.IsNaN(severity) {
		return fmt.Errorf("chiller: severity %g outside [0,1]", severity)
	}
	p.severity[f] = severity
	return nil
}

// FaultSeverity returns the current severity of a fault.
func (p *Plant) FaultSeverity(f Fault) float64 {
	if int(f) < 0 || int(f) >= NumFaults {
		return 0
	}
	return p.severity[f]
}

// ActiveFaults returns faults with severity above threshold.
func (p *Plant) ActiveFaults(threshold float64) []Fault {
	var out []Fault
	for i, s := range p.severity {
		if s > threshold {
			out = append(out, Fault(i))
		}
	}
	return out
}

// SetLoad sets the plant load fraction in [0,1].
func (p *Plant) SetLoad(frac float64) error {
	if frac < 0 || frac > 1 || math.IsNaN(frac) {
		return fmt.Errorf("chiller: load %g outside [0,1]", frac)
	}
	p.load = frac
	return nil
}

// Load returns the current load fraction.
func (p *Plant) Load() float64 { return p.load }

// Hours returns accumulated operating hours.
func (p *Plant) Hours() float64 { return p.hours }

// tone accumulates amplitude*sin(2π f t + phase) into dst.
func (p *Plant) tone(dst []float64, f, amplitude, phase float64) {
	if amplitude == 0 || f <= 0 || f >= p.cfg.SampleRate/2 {
		return
	}
	w := 2 * math.Pi * f / p.cfg.SampleRate
	for i := range dst {
		dst[i] += amplitude * math.Sin(w*float64(i)+phase)
	}
}

// modulatedTone accumulates a tone whose amplitude is modulated at modFreq
// (depth in [0,1]) — the signature of inner-race defects rotating through
// the load zone.
func (p *Plant) modulatedTone(dst []float64, f, amplitude, modFreq, depth, phase float64) {
	if amplitude == 0 || f <= 0 || f >= p.cfg.SampleRate/2 {
		return
	}
	w := 2 * math.Pi * f / p.cfg.SampleRate
	wm := 2 * math.Pi * modFreq / p.cfg.SampleRate
	for i := range dst {
		env := 1 + depth*math.Sin(wm*float64(i))
		dst[i] += amplitude * env * math.Sin(w*float64(i)+phase)
	}
}

// impulses adds repetitive impacts at rate hz with exponential ring-down —
// the time-domain signature of rolling element defects (drives crest factor
// and kurtosis up before spectral lines emerge).
func (p *Plant) impulses(dst []float64, hz, amplitude float64) {
	if amplitude == 0 || hz <= 0 {
		return
	}
	period := p.cfg.SampleRate / hz
	ring := p.cfg.SampleRate / 8000 // ~0.125 ms ring-down: sharp impacts
	if ring < 1 {
		ring = 1
	}
	for start := p.rng.Float64() * period; start < float64(len(dst)); start += period {
		s := int(start)
		for j := 0; j < int(6*ring) && s+j < len(dst); j++ {
			dst[s+j] += amplitude * math.Exp(-float64(j)/ring) *
				math.Sin(2*math.Pi*float64(j)/(2*ring))
		}
	}
}

// pointGain returns how strongly a fault couples into a measurement point.
// Faults read strongest at their own location and attenuate elsewhere.
func pointGain(f Fault, pt MeasurementPoint) float64 {
	type key struct {
		f  Fault
		pt MeasurementPoint
	}
	// Primary locations.
	primary := map[Fault]MeasurementPoint{
		MotorImbalance:         MotorDE,
		MotorMisalignment:      MotorDE,
		MotorBearingOuter:      MotorDE,
		MotorBearingInner:      MotorNDE,
		MotorRotorBar:          MotorNDE,
		StatorElectrical:       MotorNDE,
		GearToothWear:          GearBox,
		BearingLooseness:       Compressor,
		OilWhirl:               Compressor,
		CompressorBearingOuter: Compressor,
	}
	// Secondary coupling overrides.
	secondary := map[key]float64{
		{MotorImbalance, MotorNDE}:        0.7,
		{MotorMisalignment, GearBox}:      0.6,
		{MotorBearingOuter, MotorNDE}:     0.4,
		{MotorBearingInner, MotorDE}:      0.4,
		{GearToothWear, MotorDE}:          0.3,
		{GearToothWear, Compressor}:       0.4,
		{BearingLooseness, GearBox}:       0.3,
		{OilWhirl, GearBox}:               0.25,
		{CompressorBearingOuter, GearBox}: 0.3,
	}
	loc, ok := primary[f]
	if !ok {
		return 0 // process faults have no vibration signature
	}
	if loc == pt {
		return 1
	}
	if g, ok := secondary[key{f, pt}]; ok {
		return g
	}
	return 0.12 // weak structural cross-coupling
}

// AcquireVibration synthesizes n samples of acceleration at the point. The
// healthy baseline contains modest 1× residual imbalance, gear mesh, blade
// pass, and broadband noise; faults add their signatures scaled by severity
// and (where physics says so) by load.
func (p *Plant) AcquireVibration(pt MeasurementPoint, n int) ([]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("chiller: non-positive frame length %d", n)
	}
	if int(pt) < 0 || int(pt) >= NumPoints {
		return nil, fmt.Errorf("chiller: unknown measurement point %d", pt)
	}
	out := make([]float64, n)
	shaft := p.cfg.MotorShaftHz()
	comp := p.cfg.CompShaftHz()
	mesh := p.cfg.GearMeshHz()
	blade := p.cfg.BladePassHz()
	line := p.cfg.LineFreqHz

	// Healthy baseline. Residual imbalance 0.05 g at 1×; light mesh and
	// blade-pass tones at their locations; 2× line from magnetic hum.
	p.phase = math.Mod(p.phase+0.7, 2*math.Pi)
	ph := p.phase
	base1x := 0.05
	if pt == MotorDE || pt == MotorNDE {
		p.tone(out, shaft, base1x, ph)
		p.tone(out, 2*line, 0.02, ph*1.3)
	}
	if pt == GearBox {
		p.tone(out, shaft, 0.03, ph)
		p.tone(out, mesh, 0.06*(0.5+0.5*p.load), ph*0.7)
		p.tone(out, 2*mesh, 0.02, ph*1.9)
	}
	if pt == Compressor {
		p.tone(out, comp, 0.04, ph)
		p.tone(out, blade, 0.05*(0.3+0.7*p.load), ph*0.3)
	}

	// Fault signatures.
	for fi := 0; fi < NumFaults; fi++ {
		f := Fault(fi)
		sev := p.severity[fi]
		if sev == 0 {
			continue
		}
		g := pointGain(f, pt)
		if g == 0 {
			continue
		}
		a := sev * g
		switch f {
		case MotorImbalance:
			// 1× grows to ~1 g at full severity.
			p.tone(out, shaft, 1.0*a, ph)
		case MotorMisalignment:
			p.tone(out, 2*shaft, 0.8*a, ph*0.9)
			p.tone(out, shaft, 0.25*a, ph)
			p.tone(out, 3*shaft, 0.2*a, ph*1.1)
		case MotorBearingOuter:
			bpfo := p.cfg.MotorBearing.BPFO * shaft
			for h := 1; h <= 4; h++ {
				p.tone(out, float64(h)*bpfo, 0.35*a/float64(h), ph*float64(h))
			}
			p.impulses(out, bpfo, 2.5*a)
		case MotorBearingInner:
			bpfi := p.cfg.MotorBearing.BPFI * shaft
			for h := 1; h <= 3; h++ {
				p.modulatedTone(out, float64(h)*bpfi, 0.3*a/float64(h), shaft, 0.8, ph*float64(h))
			}
			p.impulses(out, bpfi, 2.2*a)
		case MotorRotorBar:
			// Pole-pass sidebands around line frequency, load dependent:
			// barely visible unloaded.
			pp := p.cfg.PolePassHz()
			loadGain := 0.15 + 0.85*p.load
			p.tone(out, line-pp, 0.4*a*loadGain, ph)
			p.tone(out, line+pp, 0.4*a*loadGain, ph*1.2)
			p.tone(out, 2*line-pp, 0.15*a*loadGain, ph*0.8)
			p.tone(out, 2*line+pp, 0.15*a*loadGain, ph*0.6)
		case StatorElectrical:
			p.tone(out, 2*line, 0.7*a, ph)
		case GearToothWear:
			for h := 1; h <= 3; h++ {
				hm := float64(h) * mesh
				p.tone(out, hm, 0.5*a/float64(h), ph*float64(h))
				// 1× sidebands of the motor shaft around each mesh harmonic.
				p.tone(out, hm-shaft, 0.2*a/float64(h), ph)
				p.tone(out, hm+shaft, 0.2*a/float64(h), ph)
			}
		case BearingLooseness:
			// Harmonic series of compressor shaft speed; unloaded operation
			// exaggerates it (§6.1's false-positive hazard).
			looseGain := 1.4 - 0.8*p.load
			for h := 1; h <= 8; h++ {
				p.tone(out, float64(h)*comp, 0.3*a*looseGain/float64(h), ph*float64(h)*0.5)
			}
			if sev > 0.5 {
				p.tone(out, 0.5*comp, 0.25*a*looseGain, ph*0.4)
			}
		case OilWhirl:
			p.tone(out, 0.43*comp, 0.6*a, ph*0.8)
		case CompressorBearingOuter:
			bpfo := p.cfg.CompBearing.BPFO * comp
			for h := 1; h <= 4; h++ {
				p.tone(out, float64(h)*bpfo, 0.3*a/float64(h), ph*float64(h))
			}
			p.impulses(out, bpfo, 2.2*a)
		}
	}

	// Broadband noise.
	for i := range out {
		out[i] += p.rng.NormFloat64() * p.cfg.NoiseFloor
	}
	return out, nil
}
