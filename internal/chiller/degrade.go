package chiller

import (
	"fmt"
	"math"
)

// DegradationProfile describes how a fault's severity grows with operating
// hours — the substrate for prognostics validation. Profiles follow the
// common bathtub-wall shapes: slow incubation then accelerating growth
// (bearing spall propagation), or near-linear drift (fouling).
type DegradationProfile struct {
	// Fault is the failure mode being grown.
	Fault Fault
	// OnsetHours is when degradation begins.
	OnsetHours float64
	// GrowthHours is the scale over which severity goes from ~0 to ~1
	// after onset.
	GrowthHours float64
	// Shape selects the growth law.
	Shape GrowthShape
}

// GrowthShape enumerates degradation growth laws.
type GrowthShape int

const (
	// Linear severity growth (fouling, distributed wear).
	Linear GrowthShape = iota
	// Exponential growth (crack/spall propagation): slow then fast.
	Exponential
	// SCurve logistic growth: incubation, rapid transition, saturation.
	SCurve
)

// SeverityAt returns the profile's severity at the given operating hours,
// clamped to [0,1].
func (d DegradationProfile) SeverityAt(hours float64) float64 {
	t := hours - d.OnsetHours
	if t <= 0 || d.GrowthHours <= 0 {
		return 0
	}
	x := t / d.GrowthHours
	var s float64
	switch d.Shape {
	case Linear:
		s = x
	case Exponential:
		// Normalized so s(1) == 1: (e^(k x) - 1)/(e^k - 1) with k = 4.
		const k = 4
		s = (math.Exp(k*x) - 1) / (math.Exp(k) - 1)
	case SCurve:
		// Logistic centred at x = 0.5.
		s = 1 / (1 + math.Exp(-10*(x-0.5)))
	default:
		s = x
	}
	if s < 0 {
		s = 0
	}
	if s > 1 {
		s = 1
	}
	return s
}

// TimeToSeverity inverts the profile: the operating hours at which severity
// first reaches target (0 < target <= 1), or +Inf if never.
func (d DegradationProfile) TimeToSeverity(target float64) float64 {
	if target <= 0 {
		return d.OnsetHours
	}
	if target > 1 || d.GrowthHours <= 0 {
		return math.Inf(1)
	}
	var x float64
	switch d.Shape {
	case Linear:
		x = target
	case Exponential:
		const k = 4
		x = math.Log(target*(math.Exp(k)-1)+1) / k
	case SCurve:
		if target >= 1 {
			return math.Inf(1)
		}
		x = 0.5 - math.Log(1/target-1)/10
		if x < 0 {
			x = 0
		}
	}
	return d.OnsetHours + x*d.GrowthHours
}

// Degrader advances a plant's fault severities along a set of profiles.
type Degrader struct {
	plant    *Plant
	profiles []DegradationProfile
}

// NewDegrader attaches profiles to a plant. At most one profile per fault.
func NewDegrader(p *Plant, profiles []DegradationProfile) (*Degrader, error) {
	seen := map[Fault]bool{}
	for _, pr := range profiles {
		if int(pr.Fault) < 0 || int(pr.Fault) >= NumFaults {
			return nil, fmt.Errorf("chiller: profile for unknown fault %d", pr.Fault)
		}
		if seen[pr.Fault] {
			return nil, fmt.Errorf("chiller: duplicate profile for %v", pr.Fault)
		}
		if pr.GrowthHours <= 0 {
			return nil, fmt.Errorf("chiller: profile for %v has non-positive growth", pr.Fault)
		}
		seen[pr.Fault] = true
	}
	return &Degrader{plant: p, profiles: profiles}, nil
}

// Advance moves the plant forward by dt operating hours, updating every
// profiled fault's severity.
func (d *Degrader) Advance(dtHours float64) error {
	if dtHours < 0 {
		return fmt.Errorf("chiller: negative time step")
	}
	d.plant.hours += dtHours
	for _, pr := range d.profiles {
		if err := d.plant.SetFault(pr.Fault, pr.SeverityAt(d.plant.hours)); err != nil {
			return err
		}
	}
	return nil
}

// Profiles returns the attached profiles.
func (d *Degrader) Profiles() []DegradationProfile {
	return append([]DegradationProfile(nil), d.profiles...)
}
