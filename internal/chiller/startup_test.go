package chiller

import (
	"math"
	"testing"

	"repro/internal/dsp"
	"repro/internal/wavelet"
)

// dominantFreq returns the frequency of the largest spectral line above
// fLo in a frame segment.
func dominantFreq(t *testing.T, frame []float64, fs, fLo, fHi float64) float64 {
	t.Helper()
	s, err := dsp.AnalyzeFrame(frame, fs, dsp.Hann)
	if err != nil {
		t.Fatal(err)
	}
	best, bestAmp := 0.0, 0.0
	for i := s.Bin(fLo); i <= s.Bin(fHi); i++ {
		if s.Amp[i] > bestAmp {
			bestAmp = s.Amp[i]
			best = s.Freq(i)
		}
	}
	return best
}

func TestStartupValidation(t *testing.T) {
	p := newPlant(t)
	if _, err := p.StartupTransient(MotorDE, 0, 0.5); err == nil {
		t.Error("zero length")
	}
	if _, err := p.StartupTransient(MeasurementPoint(99), 1024, 0.5); err == nil {
		t.Error("bad point")
	}
	if _, err := p.StartupTransient(MotorDE, 1024, 0); err == nil {
		t.Error("zero ramp")
	}
	if _, err := p.StartupTransient(MotorDE, 1024, 1.5); err == nil {
		t.Error("ramp > 1")
	}
}

func TestStartupChirpsUpward(t *testing.T) {
	p := newPlant(t)
	const n = 32768
	frame, err := p.StartupTransient(MotorDE, n, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	fs := p.Config().SampleRate
	// The early segment's dominant rotating component sits well below the
	// late segment's (which should be near rated shaft speed). Search the
	// sub-line band (4..45 Hz) so the 120 Hz inrush hum does not mask the
	// weak early chirp.
	early := dominantFreq(t, frame[:n/4], fs, 4, 45)
	late := dominantFreq(t, frame[3*n/4:], fs, 4, 45)
	shaft := p.Config().MotorShaftHz()
	if !(late > early) {
		t.Errorf("no upward chirp: early %g Hz, late %g Hz", early, late)
	}
	if math.Abs(late-shaft) > 3 {
		// The late window may still be dominated by residual inrush at 120
		// Hz on an unfaulted machine; check the shaft line is present.
		s, err := dsp.AnalyzeFrame(frame[3*n/4:], fs, dsp.Hann)
		if err != nil {
			t.Fatal(err)
		}
		if s.AmpAt(shaft, 2) < 0.02 {
			t.Errorf("late segment lacks shaft line: dominant %g Hz", late)
		}
	}
}

func TestStartupInrushDecays(t *testing.T) {
	p := newPlant(t)
	const n = 32768
	frame, err := p.StartupTransient(MotorNDE, n, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	fs := p.Config().SampleRate
	line2 := 2 * p.Config().LineFreqHz
	earlySpec, err := dsp.AnalyzeFrame(frame[:n/4], fs, dsp.Hann)
	if err != nil {
		t.Fatal(err)
	}
	lateSpec, err := dsp.AnalyzeFrame(frame[3*n/4:], fs, dsp.Hann)
	if err != nil {
		t.Fatal(err)
	}
	if earlySpec.AmpAt(line2, 3) < 3*lateSpec.AmpAt(line2, 3) {
		t.Errorf("inrush did not decay: early %g late %g",
			earlySpec.AmpAt(line2, 3), lateSpec.AmpAt(line2, 3))
	}
}

// TestStartupResonanceBurstSeparatesFaulted is the §6.2 "transitory
// phenomena" scenario: the ramp-through resonance burst of a loose/
// imbalanced machine is localized in time, so wavelet band RMS separates
// healthy from faulted startups far better than it separates their overall
// steady levels.
func TestStartupResonanceBurstSeparatesFaulted(t *testing.T) {
	const n = 32768
	startup := func(sev float64) []float64 {
		cfg := DefaultConfig()
		cfg.Seed = 5
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if sev > 0 {
			if err := p.SetFault(MotorImbalance, sev); err != nil {
				t.Fatal(err)
			}
		}
		frame, err := p.StartupTransient(MotorDE, n, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		return frame
	}
	healthy := startup(0)
	faulted := startup(0.8)
	// Peak amplitude during the ramp (the burst) separates strongly.
	if dsp.PeakAbs(faulted) < 2*dsp.PeakAbs(healthy) {
		t.Errorf("resonance burst missing: healthy peak %g, faulted peak %g",
			dsp.PeakAbs(healthy), dsp.PeakAbs(faulted))
	}
	// And the burst is time-localized: a mid-level wavelet detail band
	// carries far more energy for the faulted start.
	dh, err := wavelet.Decompose(wavelet.Daubechies4, healthy, 8)
	if err != nil {
		t.Fatal(err)
	}
	df, err := wavelet.Decompose(wavelet.Daubechies4, faulted, 8)
	if err != nil {
		t.Fatal(err)
	}
	rh, rf := dh.BandRMS(), df.BandRMS()
	better := false
	for band := range rh {
		if rf[band] > 2.5*rh[band] && rh[band] > 1e-6 {
			better = true
		}
	}
	if !better {
		t.Errorf("no wavelet band separates the burst: healthy %v faulted %v", rh, rf)
	}
}
