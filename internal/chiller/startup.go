package chiller

import (
	"fmt"
	"math"
)

// StartupTransient synthesizes the vibration waveform of a chiller start at
// a measurement point: the §3.3 "Carrier Chiller startup" scenario. The
// motor accelerates from rest toward rated speed with an exponential
// approach; the waveform contains:
//
//   - a 1× chirp tracking the instantaneous shaft speed (phase-coherent
//     frequency sweep);
//   - electromagnetic inrush at twice line frequency, decaying as the
//     motor comes up to speed;
//   - a structural resonance burst as the accelerating 1× sweeps through
//     the casing resonance — small on a healthy machine, violent with
//     imbalance or looseness (the classic ramp-through signature);
//   - rotating-fault signatures scaled by the instantaneous speed
//     fraction (a bearing tone family chirps up with the shaft).
//
// This is exactly the "transitory phenomena rather than steady state data"
// regime §6.2 assigns to the wavelet neural network: the steady-state FFT
// rulebook cannot see a resonance burst that lasts a fraction of a second,
// but wavelet energy maps localize it.
//
// rampFraction in (0,1] places the end of the acceleration within the
// frame: 0.5 means the motor reaches ~95% speed halfway through.
func (p *Plant) StartupTransient(pt MeasurementPoint, n int, rampFraction float64) ([]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("chiller: non-positive frame length %d", n)
	}
	if int(pt) < 0 || int(pt) >= NumPoints {
		return nil, fmt.Errorf("chiller: unknown measurement point %d", pt)
	}
	if rampFraction <= 0 || rampFraction > 1 {
		return nil, fmt.Errorf("chiller: ramp fraction %g outside (0,1]", rampFraction)
	}
	out := make([]float64, n)
	fs := p.cfg.SampleRate
	shaft := p.cfg.MotorShaftHz()
	line := p.cfg.LineFreqHz
	tau := rampFraction * float64(n) / fs / 3 // 3τ ≈ 95% speed at ramp end

	// Resonance model: casing mode a bit above running speed so the 1×
	// sweeps through it during the ramp.
	resFreq := shaft * 1.4
	resBandwidth := 4.0 // Hz half-width

	imbalance := p.severity[MotorImbalance]
	looseness := p.severity[BearingLooseness]
	bearing := p.severity[MotorBearingOuter]

	// Amplification while crossing the resonance: healthy machines carry
	// residual imbalance only; faulted ones ring hard.
	resGain := 0.3 + 4*imbalance + 3*looseness

	phase := 0.0
	for i := 0; i < n; i++ {
		t := float64(i) / fs
		speedFrac := 1 - math.Exp(-t/tau)
		f1 := shaft * speedFrac
		phase += 2 * math.Pi * f1 / fs
		// 1× amplitude: residual + imbalance, boosted near resonance.
		amp1 := (0.05 + 0.9*imbalance) * speedFrac
		if d := math.Abs(f1 - resFreq); d < resBandwidth {
			amp1 *= 1 + resGain*(1-d/resBandwidth)
		}
		v := amp1 * math.Sin(phase)
		// Inrush hum at 2× line, decaying with speed.
		v += 0.35 * (1 - speedFrac) * math.Sin(2*math.Pi*2*line*t)
		// Bearing tone family chirps with the shaft.
		if bearing > 0 && (pt == MotorDE || pt == MotorNDE) {
			bpfo := p.cfg.MotorBearing.BPFO * f1
			v += 0.3 * bearing * speedFrac * math.Sin(2*math.Pi*bpfo*t)
		}
		// Looseness rattle: harmonic bursts during the ramp (sub-resonance
		// impacts each revolution), strongest mid-ramp.
		if looseness > 0 && pt == Compressor {
			rattle := looseness * speedFrac * (1 - speedFrac) * 4
			v += rattle * math.Sin(3*phase)
		}
		out[i] = v
	}
	// Measurement noise.
	for i := range out {
		out[i] += p.rng.NormFloat64() * p.cfg.NoiseFloor
	}
	return out, nil
}
