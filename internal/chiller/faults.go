package chiller

import "fmt"

// Fault enumerates the twelve FMEA-selected candidate failure modes (§3.3:
// "A failure effects mode analysis (FMEA) was completed and used to select
// 12 candidate failure modes"). The paper does not list them; this set is
// reconstructed from the machine conditions it names (motor imbalance,
// motor rotor bar problem, pump bearing housing looseness, bearing
// looseness sensitized to load) plus the standard centrifugal chiller FMEA
// canon covering every §2 equipment type: motor, gears, compressor, and the
// fluid cycle.
type Fault int

const (
	// MotorImbalance: mass imbalance on the motor rotor — elevated 1×
	// radial vibration at the motor bearings.
	MotorImbalance Fault = iota
	// MotorMisalignment: shaft misalignment motor-to-gearbox — elevated 2×
	// (and axial 1×) components.
	MotorMisalignment
	// MotorBearingOuter: outer-race defect — BPFO tone family with
	// harmonics and impulsive time waveform.
	MotorBearingOuter
	// MotorBearingInner: inner-race defect — BPFI family modulated at 1×.
	MotorBearingInner
	// MotorRotorBar: broken/cracked rotor bars — pole-pass sidebands around
	// line frequency and 1×, load dependent.
	MotorRotorBar
	// StatorElectrical: stator/phase unbalance — elevated 2× line frequency
	// vibration that disappears when power is cut.
	StatorElectrical
	// GearToothWear: distributed gear tooth wear — elevated gear mesh
	// harmonics with 1× sidebands.
	GearToothWear
	// BearingLooseness: bearing housing looseness — harmonic series of 1×
	// (up to 10×) with 0.5× subharmonics at higher severity; the paper's
	// §6.1 example notes this rule must be sensitized to load because "some
	// compressors vibrate more at certain frequencies when unloaded".
	BearingLooseness
	// OilWhirl: journal-bearing oil whirl on the high-speed compressor
	// shaft — subsynchronous tone at ~0.43× compressor speed.
	OilWhirl
	// CompressorBearingOuter: compressor rolling bearing outer race defect.
	CompressorBearingOuter
	// RefrigerantLowCharge: low refrigerant charge — process-side fault:
	// depressed evaporator pressure, elevated superheat, capacity loss.
	// Non-vibrational; detected by the fuzzy-logic subsystem.
	RefrigerantLowCharge
	// CondenserFouling: condenser tube fouling — elevated condensing
	// pressure and condenser approach temperature. Non-vibrational.
	CondenserFouling

	// NumFaults is the number of modelled failure modes.
	NumFaults int = iota
)

// String returns the machine-condition name used in protocol reports.
func (f Fault) String() string {
	switch f {
	case MotorImbalance:
		return "motor imbalance"
	case MotorMisalignment:
		return "motor misalignment"
	case MotorBearingOuter:
		return "motor bearing outer race defect"
	case MotorBearingInner:
		return "motor bearing inner race defect"
	case MotorRotorBar:
		return "motor rotor bar problem"
	case StatorElectrical:
		return "stator electrical unbalance"
	case GearToothWear:
		return "gear tooth wear"
	case BearingLooseness:
		return "bearing housing looseness"
	case OilWhirl:
		return "oil whirl"
	case CompressorBearingOuter:
		return "compressor bearing outer race defect"
	case RefrigerantLowCharge:
		return "refrigerant low charge"
	case CondenserFouling:
		return "condenser fouling"
	default:
		return fmt.Sprintf("fault(%d)", int(f))
	}
}

// AllFaults lists every modelled fault.
func AllFaults() []Fault {
	out := make([]Fault, NumFaults)
	for i := range out {
		out[i] = Fault(i)
	}
	return out
}

// ParseFault resolves a machine-condition name back to a Fault.
func ParseFault(name string) (Fault, error) {
	for _, f := range AllFaults() {
		if f.String() == name {
			return f, nil
		}
	}
	return 0, fmt.Errorf("chiller: unknown fault %q", name)
}

// IsVibrational reports whether the fault has a vibration signature (as
// opposed to the purely process-side faults handled by fuzzy logic).
func (f Fault) IsVibrational() bool {
	return f != RefrigerantLowCharge && f != CondenserFouling
}

// Group returns the logical failure group of §5.3: "failures, which are all
// part of the same logical groups, are related to each other (for example,
// one group might be electrical failures, another lubricant failures)".
// Faults in one group may be mistaken for one another and share Dempster-
// Shafer frames; faults in different groups are independent.
func (f Fault) Group() string {
	switch f {
	case MotorImbalance, MotorMisalignment, BearingLooseness:
		return "rotating-structural"
	case MotorBearingOuter, MotorBearingInner, CompressorBearingOuter, OilWhirl:
		return "bearing-lubrication"
	case MotorRotorBar, StatorElectrical:
		return "electrical"
	case GearToothWear:
		return "gearing"
	case RefrigerantLowCharge, CondenserFouling:
		return "refrigeration-cycle"
	default:
		return "unknown"
	}
}

// FaultGroups returns the group names and their member faults.
func FaultGroups() map[string][]Fault {
	out := make(map[string][]Fault)
	for _, f := range AllFaults() {
		g := f.Group()
		out[g] = append(out[g], f)
	}
	return out
}
