// Package chiller simulates the paper's target plant: a Navy shipboard
// centrifugal chilled-water system. §2 motivates the choice: "These A/C
// systems combine several rotating machinery equipment types (i.e.
// induction motors, gear transmissions, pumps, and centrifugal compressors)
// with a fluid power cycle to form a complex system with several different
// parameters to monitor."
//
// The simulator produces exactly what the paper's Data Concentrator
// acquires: dynamic vibration waveforms at high sample rates per
// measurement point, and slowly changing process scalars (temperatures and
// pressures) "treated as scalars rather than vectors". Each of the twelve
// FMEA-selected failure modes injects its textbook spectral signature into
// the vibration channels and/or perturbs the thermodynamic state, with a
// continuous severity in [0,1], so diagnostic accuracy can be measured
// against known ground truth (substituting for the paper's seeded-fault and
// destructive testing programme, §9).
package chiller

import "fmt"

// BearingGeometry gives the characteristic defect frequencies of a rolling
// element bearing as multiples of shaft speed (orders).
type BearingGeometry struct {
	// BPFO is the ball pass frequency, outer race (order).
	BPFO float64
	// BPFI is the ball pass frequency, inner race (order).
	BPFI float64
	// BSF is the ball spin frequency (order).
	BSF float64
	// FTF is the fundamental train (cage) frequency (order).
	FTF float64
}

// DefaultBearing returns a geometry typical of a medium deep-groove ball
// bearing (SKF 6211-class orders).
func DefaultBearing() BearingGeometry {
	return BearingGeometry{BPFO: 4.93, BPFI: 7.07, BSF: 2.32, FTF: 0.41}
}

// Config describes the physical plant.
type Config struct {
	// LineFreqHz is the electrical supply frequency.
	LineFreqHz float64
	// MotorRPM is the nominal induction motor speed under load (includes
	// slip; e.g. 1780 RPM for a 4-pole 60 Hz motor).
	MotorRPM float64
	// Poles is the motor pole count (used for rotor bar sideband spacing).
	Poles int
	// RotorBars is the number of rotor bars.
	RotorBars int
	// GearRatio is the speed-increasing ratio into the compressor.
	GearRatio float64
	// GearTeeth is the tooth count of the gear on the motor shaft (mesh
	// frequency = motor shaft speed × GearTeeth).
	GearTeeth int
	// ImpellerBlades is the compressor impeller blade count.
	ImpellerBlades int
	// MotorBearing and CompBearing give the defect-frequency geometry.
	MotorBearing BearingGeometry
	CompBearing  BearingGeometry
	// SampleRate is the vibration acquisition rate in Hz. The paper's DSP
	// card samples above 40 kHz; diagnostic frames here default to 16384 Hz
	// which comfortably covers gear mesh and blade pass.
	SampleRate float64
	// NoiseFloor is the broadband vibration noise standard deviation (g).
	NoiseFloor float64
	// Seed makes runs reproducible.
	Seed int64
}

// DefaultConfig returns a plant matching a Carrier-class shipboard
// centrifugal chiller: 4-pole 60 Hz induction motor (~29.7 Hz shaft),
// speed-increasing gearbox to ~95 Hz impeller speed.
func DefaultConfig() Config {
	return Config{
		LineFreqHz:     60,
		MotorRPM:       1780,
		Poles:          4,
		RotorBars:      45,
		GearRatio:      3.2,
		GearTeeth:      67,
		ImpellerBlades: 17,
		MotorBearing:   DefaultBearing(),
		CompBearing:    BearingGeometry{BPFO: 3.58, BPFI: 5.42, BSF: 1.87, FTF: 0.39},
		SampleRate:     16384,
		NoiseFloor:     0.015,
		Seed:           1,
	}
}

// Validate checks physical plausibility.
func (c Config) Validate() error {
	if c.LineFreqHz <= 0 || c.MotorRPM <= 0 || c.SampleRate <= 0 {
		return fmt.Errorf("chiller: non-positive frequency in config")
	}
	if c.Poles < 2 || c.Poles%2 != 0 {
		return fmt.Errorf("chiller: pole count %d invalid", c.Poles)
	}
	if c.GearRatio <= 0 || c.GearTeeth <= 0 || c.ImpellerBlades <= 0 || c.RotorBars <= 0 {
		return fmt.Errorf("chiller: non-positive gear/impeller parameters")
	}
	syncRPM := 120 * c.LineFreqHz / float64(c.Poles)
	if c.MotorRPM >= syncRPM {
		return fmt.Errorf("chiller: motor RPM %g at or above synchronous %g", c.MotorRPM, syncRPM)
	}
	// Highest synthesized tone is gear mesh 3rd harmonic; require Nyquist.
	mesh := c.MotorRPM / 60 * float64(c.GearTeeth)
	if 3*mesh >= c.SampleRate/2 {
		return fmt.Errorf("chiller: sample rate %g too low for gear mesh %g", c.SampleRate, mesh)
	}
	return nil
}

// MotorShaftHz returns the motor shaft rotation frequency.
func (c Config) MotorShaftHz() float64 { return c.MotorRPM / 60 }

// CompShaftHz returns the compressor (impeller) shaft frequency.
func (c Config) CompShaftHz() float64 { return c.MotorShaftHz() * c.GearRatio }

// GearMeshHz returns the gear mesh frequency.
func (c Config) GearMeshHz() float64 { return c.MotorShaftHz() * float64(c.GearTeeth) }

// BladePassHz returns the impeller blade pass frequency.
func (c Config) BladePassHz() float64 { return c.CompShaftHz() * float64(c.ImpellerBlades) }

// SlipHz returns the motor slip frequency (synchronous minus actual).
func (c Config) SlipHz() float64 {
	return 120*c.LineFreqHz/float64(c.Poles)/60 - c.MotorShaftHz()
}

// PolePassHz returns the pole pass frequency (slip × poles) — the sideband
// spacing of rotor bar faults around line frequency and its harmonics.
func (c Config) PolePassHz() float64 { return c.SlipHz() * float64(c.Poles) }
