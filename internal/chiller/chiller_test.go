package chiller

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dsp"
)

func newPlant(t testing.TB) *Plant {
	t.Helper()
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func spectrumOf(t testing.TB, p *Plant, pt MeasurementPoint) *dsp.Spectrum {
	t.Helper()
	frame, err := p.AcquireVibration(pt, 16384)
	if err != nil {
		t.Fatal(err)
	}
	s, err := dsp.AnalyzeFrame(frame, p.Config().SampleRate, dsp.Hann)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidation(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	mut := func(f func(*Config)) Config {
		c := DefaultConfig()
		f(&c)
		return c
	}
	bad := []Config{
		mut(func(c *Config) { c.LineFreqHz = 0 }),
		mut(func(c *Config) { c.MotorRPM = -1 }),
		mut(func(c *Config) { c.SampleRate = 0 }),
		mut(func(c *Config) { c.Poles = 3 }),
		mut(func(c *Config) { c.Poles = 0 }),
		mut(func(c *Config) { c.GearTeeth = 0 }),
		mut(func(c *Config) { c.ImpellerBlades = 0 }),
		mut(func(c *Config) { c.RotorBars = 0 }),
		mut(func(c *Config) { c.GearRatio = 0 }),
		mut(func(c *Config) { c.MotorRPM = 1800 }),   // at synchronous speed
		mut(func(c *Config) { c.SampleRate = 2000 }), // mesh above Nyquist
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
		if _, err := New(c); err == nil {
			t.Errorf("New accepted bad config %d", i)
		}
	}
}

func TestDerivedFrequencies(t *testing.T) {
	c := DefaultConfig()
	if math.Abs(c.MotorShaftHz()-1780.0/60) > 1e-9 {
		t.Error("shaft hz")
	}
	if math.Abs(c.CompShaftHz()-c.MotorShaftHz()*3.2) > 1e-9 {
		t.Error("comp hz")
	}
	if math.Abs(c.GearMeshHz()-c.MotorShaftHz()*67) > 1e-9 {
		t.Error("mesh hz")
	}
	if math.Abs(c.BladePassHz()-c.CompShaftHz()*17) > 1e-9 {
		t.Error("blade hz")
	}
	// 4-pole 60 Hz synchronous = 30 Hz shaft; slip = 30 - 29.67 = 1/3 Hz.
	if math.Abs(c.SlipHz()-(30-1780.0/60)) > 1e-9 {
		t.Error("slip hz")
	}
	if math.Abs(c.PolePassHz()-4*c.SlipHz()) > 1e-9 {
		t.Error("pole pass hz")
	}
}

func TestFaultNamesRoundTrip(t *testing.T) {
	if NumFaults != 12 {
		t.Fatalf("paper's FMEA selected 12 failure modes; have %d", NumFaults)
	}
	for _, f := range AllFaults() {
		parsed, err := ParseFault(f.String())
		if err != nil || parsed != f {
			t.Errorf("%v: round trip failed (%v, %v)", f, parsed, err)
		}
	}
	if _, err := ParseFault("bogus"); err == nil {
		t.Error("bogus fault name")
	}
	// Every fault belongs to a named group; groups partition the faults.
	groups := FaultGroups()
	total := 0
	for name, fs := range groups {
		if name == "unknown" {
			t.Errorf("faults in unknown group: %v", fs)
		}
		total += len(fs)
	}
	if total != NumFaults {
		t.Errorf("groups cover %d faults", total)
	}
	if !MotorImbalance.IsVibrational() || RefrigerantLowCharge.IsVibrational() {
		t.Error("IsVibrational wrong")
	}
}

func TestSetFaultValidation(t *testing.T) {
	p := newPlant(t)
	if err := p.SetFault(Fault(99), 0.5); err == nil {
		t.Error("unknown fault")
	}
	if err := p.SetFault(MotorImbalance, -0.1); err == nil {
		t.Error("negative severity")
	}
	if err := p.SetFault(MotorImbalance, 1.5); err == nil {
		t.Error("severity > 1")
	}
	if err := p.SetFault(MotorImbalance, math.NaN()); err == nil {
		t.Error("NaN severity")
	}
	if err := p.SetLoad(-0.1); err == nil {
		t.Error("negative load")
	}
	if err := p.SetLoad(2); err == nil {
		t.Error("load > 1")
	}
	if _, err := p.AcquireVibration(MotorDE, 0); err == nil {
		t.Error("zero frame")
	}
	if _, err := p.AcquireVibration(MeasurementPoint(99), 128); err == nil {
		t.Error("unknown point")
	}
	if err := p.SetFault(MotorImbalance, 0.7); err != nil {
		t.Fatal(err)
	}
	if p.FaultSeverity(MotorImbalance) != 0.7 {
		t.Error("severity readback")
	}
	if p.FaultSeverity(Fault(99)) != 0 {
		t.Error("oob severity readback")
	}
	active := p.ActiveFaults(0.1)
	if len(active) != 1 || active[0] != MotorImbalance {
		t.Errorf("active %v", active)
	}
}

func TestHealthyBaselineIsQuiet(t *testing.T) {
	p := newPlant(t)
	s := spectrumOf(t, p, MotorDE)
	shaft := p.Config().MotorShaftHz()
	// Residual 1× is present but small.
	oneX := s.AmpAt(shaft, 2)
	if oneX < 0.02 || oneX > 0.12 {
		t.Errorf("healthy 1× = %g, want ≈0.05", oneX)
	}
	// No bearing tones.
	bpfo := p.Config().MotorBearing.BPFO * shaft
	if a := s.AmpAt(bpfo, 3); a > 0.03 {
		t.Errorf("healthy BPFO = %g", a)
	}
}

func TestImbalanceSignature(t *testing.T) {
	p := newPlant(t)
	if err := p.SetFault(MotorImbalance, 0.8); err != nil {
		t.Fatal(err)
	}
	s := spectrumOf(t, p, MotorDE)
	shaft := p.Config().MotorShaftHz()
	oneX := s.AmpAt(shaft, 2)
	twoX := s.AmpAt(2*shaft, 2)
	if oneX < 0.5 {
		t.Errorf("imbalance 1× = %g, want > 0.5", oneX)
	}
	if twoX > oneX/3 {
		t.Errorf("imbalance should be 1×-dominant (1×=%g 2×=%g)", oneX, twoX)
	}
}

func TestMisalignmentSignature(t *testing.T) {
	p := newPlant(t)
	if err := p.SetFault(MotorMisalignment, 0.8); err != nil {
		t.Fatal(err)
	}
	s := spectrumOf(t, p, MotorDE)
	shaft := p.Config().MotorShaftHz()
	if s.AmpAt(2*shaft, 2) < 2*s.AmpAt(shaft, 2)/3 {
		t.Errorf("misalignment should elevate 2× relative to 1× (1×=%g 2×=%g)",
			s.AmpAt(shaft, 2), s.AmpAt(2*shaft, 2))
	}
}

func TestBearingSignatures(t *testing.T) {
	p := newPlant(t)
	if err := p.SetFault(MotorBearingOuter, 0.7); err != nil {
		t.Fatal(err)
	}
	s := spectrumOf(t, p, MotorDE)
	shaft := p.Config().MotorShaftHz()
	bpfo := p.Config().MotorBearing.BPFO * shaft
	if a := s.AmpAt(bpfo, 4); a < 0.1 {
		t.Errorf("BPFO tone %g too small", a)
	}
	// Impulsiveness shows in the time domain.
	frame, _ := p.AcquireVibration(MotorDE, 16384)
	if k := dsp.Kurtosis(frame); k < 3.5 {
		t.Errorf("outer race kurtosis %g, want impulsive (>3.5)", k)
	}
	// Inner race at its point.
	p2 := newPlant(t)
	if err := p2.SetFault(MotorBearingInner, 0.7); err != nil {
		t.Fatal(err)
	}
	s2 := spectrumOf(t, p2, MotorNDE)
	bpfi := p2.Config().MotorBearing.BPFI * shaft
	if a := s2.AmpAt(bpfi, 4); a < 0.08 {
		t.Errorf("BPFI tone %g too small", a)
	}
}

func TestRotorBarLoadDependence(t *testing.T) {
	// §6.1: rules must be load sensitive. Rotor bar sidebands nearly vanish
	// unloaded.
	p := newPlant(t)
	if err := p.SetFault(MotorRotorBar, 0.8); err != nil {
		t.Fatal(err)
	}
	line := p.Config().LineFreqHz
	pp := p.Config().PolePassHz()

	if err := p.SetLoad(1.0); err != nil {
		t.Fatal(err)
	}
	loaded := spectrumOf(t, p, MotorNDE)
	loadedSB := loaded.AmpAt(line-pp, 0.5) + loaded.AmpAt(line+pp, 0.5)

	if err := p.SetLoad(0.0); err != nil {
		t.Fatal(err)
	}
	unloaded := spectrumOf(t, p, MotorNDE)
	unloadedSB := unloaded.AmpAt(line-pp, 0.5) + unloaded.AmpAt(line+pp, 0.5)

	if loadedSB < 3*unloadedSB {
		t.Errorf("rotor bar sidebands should grow with load: loaded=%g unloaded=%g",
			loadedSB, unloadedSB)
	}
}

func TestLoosenessLoadDependence(t *testing.T) {
	// Looseness reads HIGHER unloaded — the §6.1 false-positive trap.
	p := newPlant(t)
	if err := p.SetFault(BearingLooseness, 0.6); err != nil {
		t.Fatal(err)
	}
	comp := p.Config().CompShaftHz()
	if err := p.SetLoad(0.1); err != nil {
		t.Fatal(err)
	}
	unloaded := spectrumOf(t, p, Compressor)
	uAmp := unloaded.AmpAt(2*comp, 3) + unloaded.AmpAt(3*comp, 3)
	if err := p.SetLoad(1.0); err != nil {
		t.Fatal(err)
	}
	loaded := spectrumOf(t, p, Compressor)
	lAmp := loaded.AmpAt(2*comp, 3) + loaded.AmpAt(3*comp, 3)
	if uAmp <= lAmp {
		t.Errorf("looseness should read higher unloaded: unloaded=%g loaded=%g", uAmp, lAmp)
	}
}

func TestGearWearSignature(t *testing.T) {
	p := newPlant(t)
	if err := p.SetFault(GearToothWear, 0.7); err != nil {
		t.Fatal(err)
	}
	s := spectrumOf(t, p, GearBox)
	mesh := p.Config().GearMeshHz()
	shaft := p.Config().MotorShaftHz()
	if a := s.AmpAt(mesh, 4); a < 0.2 {
		t.Errorf("mesh tone %g too small", a)
	}
	sb := dsp.SidebandEnergy(s, mesh, shaft, 2, 1)
	if sb < 0.1 {
		t.Errorf("mesh sidebands %g too small", sb)
	}
}

func TestOilWhirlSubsynchronous(t *testing.T) {
	p := newPlant(t)
	if err := p.SetFault(OilWhirl, 0.8); err != nil {
		t.Fatal(err)
	}
	s := spectrumOf(t, p, Compressor)
	comp := p.Config().CompShaftHz()
	if a := s.AmpAt(0.43*comp, 3); a < 0.3 {
		t.Errorf("oil whirl tone %g too small", a)
	}
}

func TestProcessFaultsAffectScalarsNotVibration(t *testing.T) {
	p := newPlant(t)
	healthy := p.ProcessState()
	if err := p.SetFault(RefrigerantLowCharge, 0.8); err != nil {
		t.Fatal(err)
	}
	low := p.ProcessState()
	if low.EvapPressurePSI >= healthy.EvapPressurePSI-5 {
		t.Errorf("low charge should depress evap pressure: %g vs %g",
			low.EvapPressurePSI, healthy.EvapPressurePSI)
	}
	if low.SuperheatF <= healthy.SuperheatF+5 {
		t.Errorf("low charge should raise superheat: %g vs %g",
			low.SuperheatF, healthy.SuperheatF)
	}
	// Vibration unchanged (within noise) by a pure process fault.
	s := spectrumOf(t, p, MotorDE)
	if a := s.AmpAt(p.Config().MotorShaftHz(), 2); a > 0.12 {
		t.Errorf("process fault leaked into vibration: 1× = %g", a)
	}
	// Condenser fouling raises head pressure.
	p2 := newPlant(t)
	if err := p2.SetFault(CondenserFouling, 0.9); err != nil {
		t.Fatal(err)
	}
	fouled := p2.ProcessState()
	if fouled.CondPressurePSI < healthy.CondPressurePSI+15 {
		t.Errorf("fouling should raise condenser pressure: %g vs %g",
			fouled.CondPressurePSI, healthy.CondPressurePSI)
	}
}

func TestSeverityMonotoneProperty(t *testing.T) {
	// Property: for any vibrational fault, its primary signature amplitude
	// is non-decreasing in severity.
	prop := func(faultSel uint8, s1, s2 float64) bool {
		f := Fault(int(faultSel) % NumFaults)
		if !f.IsVibrational() {
			return true
		}
		s1 = math.Abs(math.Mod(s1, 1))
		s2 = math.Abs(math.Mod(s2, 1))
		if math.IsNaN(s1) || math.IsNaN(s2) {
			return true
		}
		lo, hi := math.Min(s1, s2), math.Max(s1, s2)
		if hi-lo < 0.3 {
			return true // too close to distinguish over noise
		}
		cfg := DefaultConfig()
		cfg.NoiseFloor = 0.001
		amp := func(sev float64) float64 {
			p, err := New(cfg)
			if err != nil {
				return -1
			}
			if err := p.SetFault(f, sev); err != nil {
				return -1
			}
			var best float64
			for _, pt := range AllPoints() {
				frame, err := p.AcquireVibration(pt, 8192)
				if err != nil {
					return -1
				}
				r := dsp.RMS(frame)
				if r > best {
					best = r
				}
			}
			return best
		}
		return amp(hi) >= amp(lo)-0.01
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDegradationProfiles(t *testing.T) {
	for _, shape := range []GrowthShape{Linear, Exponential, SCurve} {
		d := DegradationProfile{Fault: MotorBearingOuter, OnsetHours: 100, GrowthHours: 1000, Shape: shape}
		if d.SeverityAt(50) != 0 {
			t.Errorf("%v: severity before onset", shape)
		}
		if d.SeverityAt(0) != 0 {
			t.Errorf("%v: severity at 0", shape)
		}
		// Monotone, clamped.
		prev := -1.0
		for h := 0.0; h < 2000; h += 50 {
			s := d.SeverityAt(h)
			if s < prev-1e-12 || s < 0 || s > 1 {
				t.Fatalf("%v: non-monotone or out of range at %g: %g", shape, h, s)
			}
			prev = s
		}
		if d.SeverityAt(5000) != 1 {
			t.Errorf("%v: should saturate at 1", shape)
		}
		// TimeToSeverity inverts SeverityAt.
		for _, target := range []float64{0.1, 0.5, 0.9} {
			h := d.TimeToSeverity(target)
			if math.IsInf(h, 1) {
				t.Fatalf("%v: no time to %g", shape, target)
			}
			if got := d.SeverityAt(h); math.Abs(got-target) > 0.02 {
				t.Errorf("%v: SeverityAt(TimeToSeverity(%g)) = %g", shape, target, got)
			}
		}
	}
	d := DegradationProfile{Fault: MotorImbalance, GrowthHours: 100, Shape: Linear}
	if !math.IsInf(d.TimeToSeverity(1.5), 1) {
		t.Error("unreachable target should be Inf")
	}
	if d.TimeToSeverity(0) != d.OnsetHours {
		t.Error("zero target is onset")
	}
}

func TestDegrader(t *testing.T) {
	p := newPlant(t)
	profiles := []DegradationProfile{
		{Fault: MotorBearingOuter, OnsetHours: 10, GrowthHours: 100, Shape: Exponential},
		{Fault: CondenserFouling, OnsetHours: 0, GrowthHours: 500, Shape: Linear},
	}
	d, err := NewDegrader(p, profiles)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Profiles()) != 2 {
		t.Error("profiles")
	}
	if err := d.Advance(-1); err == nil {
		t.Error("negative step")
	}
	for i := 0; i < 10; i++ {
		if err := d.Advance(20); err != nil {
			t.Fatal(err)
		}
	}
	if p.Hours() != 200 {
		t.Errorf("hours %g", p.Hours())
	}
	if p.FaultSeverity(MotorBearingOuter) <= 0.5 {
		t.Errorf("bearing severity %g after 200h", p.FaultSeverity(MotorBearingOuter))
	}
	if got := p.FaultSeverity(CondenserFouling); math.Abs(got-0.4) > 0.01 {
		t.Errorf("fouling severity %g, want 0.4", got)
	}
	// Validation.
	if _, err := NewDegrader(p, []DegradationProfile{{Fault: Fault(99), GrowthHours: 1}}); err == nil {
		t.Error("bad fault")
	}
	if _, err := NewDegrader(p, []DegradationProfile{
		{Fault: MotorImbalance, GrowthHours: 1},
		{Fault: MotorImbalance, GrowthHours: 2},
	}); err == nil {
		t.Error("duplicate profile")
	}
	if _, err := NewDegrader(p, []DegradationProfile{{Fault: MotorImbalance, GrowthHours: 0}}); err == nil {
		t.Error("zero growth")
	}
}

func TestReproducibility(t *testing.T) {
	run := func() []float64 {
		p := newPlant(t)
		if err := p.SetFault(MotorBearingOuter, 0.5); err != nil {
			t.Fatal(err)
		}
		frame, err := p.AcquireVibration(MotorDE, 1024)
		if err != nil {
			t.Fatal(err)
		}
		return frame
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
}

func TestPointNames(t *testing.T) {
	if MotorDE.String() != "motor-de" || Compressor.String() != "compressor" {
		t.Error("point names")
	}
	if MeasurementPoint(99).String() == "" {
		t.Error("unknown point name")
	}
	if len(AllPoints()) != 4 {
		t.Error("point count")
	}
}

func BenchmarkAcquireVibration16k(b *testing.B) {
	p, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	if err := p.SetFault(MotorBearingOuter, 0.5); err != nil {
		b.Fatal(err)
	}
	if err := p.SetFault(GearToothWear, 0.3); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(16384 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.AcquireVibration(GearBox, 16384); err != nil {
			b.Fatal(err)
		}
	}
}
