package bayes

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// sprinkler builds the classic rain/sprinkler/wet-grass network with known
// posterior values for cross-checking the inference engine.
func sprinkler(t testing.TB) *Network {
	t.Helper()
	n := NewNetwork()
	boolStates := []string{"true", "false"}
	if err := n.AddVariable(Variable{Name: "rain", States: boolStates}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddVariable(Variable{Name: "sprinkler", States: boolStates}, "rain"); err != nil {
		t.Fatal(err)
	}
	if err := n.AddVariable(Variable{Name: "wet", States: boolStates}, "rain", "sprinkler"); err != nil {
		t.Fatal(err)
	}
	if err := n.SetCPT("rain", [][]float64{{0.2, 0.8}}); err != nil {
		t.Fatal(err)
	}
	// P(sprinkler|rain=true)=0.01, P(sprinkler|rain=false)=0.4.
	if err := n.SetCPT("sprinkler", [][]float64{{0.01, 0.99}, {0.4, 0.6}}); err != nil {
		t.Fatal(err)
	}
	// Rows: (rain=T,spr=T),(T,F),(F,T),(F,F).
	if err := n.SetCPT("wet", [][]float64{
		{0.99, 0.01},
		{0.8, 0.2},
		{0.9, 0.1},
		{0.0, 1.0},
	}); err != nil {
		t.Fatal(err)
	}
	if err := n.Compile(); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestSprinklerPosterior(t *testing.T) {
	n := sprinkler(t)
	// Known result: P(rain=true | wet=true) ≈ 0.3577.
	p, err := n.Query("rain", Evidence{"wet": "true"})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p["true"]-0.3577) > 0.001 {
		t.Errorf("P(rain|wet) = %g, want ≈0.3577", p["true"])
	}
	if math.Abs(p["true"]+p["false"]-1) > 1e-9 {
		t.Errorf("posterior not normalized: %v", p)
	}
	// Known result: P(sprinkler=true | wet=true) ≈ 0.6467.
	q, err := n.Query("sprinkler", Evidence{"wet": "true"})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q["true"]-0.6467) > 0.001 {
		t.Errorf("P(sprinkler|wet) = %g, want ≈0.6467", q["true"])
	}
}

func TestPriorQuery(t *testing.T) {
	n := sprinkler(t)
	p, err := n.Query("rain", nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p["true"]-0.2) > 1e-9 {
		t.Errorf("prior P(rain) = %g", p["true"])
	}
	// Marginal of a downstream variable: P(wet) = sum over configs.
	w, err := n.Query("wet", nil)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.2*0.01*0.99 + 0.2*0.99*0.8 + 0.8*0.4*0.9
	if math.Abs(w["true"]-want) > 1e-9 {
		t.Errorf("P(wet) = %g, want %g", w["true"], want)
	}
}

func TestExplainingAway(t *testing.T) {
	n := sprinkler(t)
	// Observing the sprinkler on should lower belief in rain given wet grass.
	base, err := n.Query("rain", Evidence{"wet": "true"})
	if err != nil {
		t.Fatal(err)
	}
	away, err := n.Query("rain", Evidence{"wet": "true", "sprinkler": "true"})
	if err != nil {
		t.Fatal(err)
	}
	if away["true"] >= base["true"] {
		t.Errorf("explaining away failed: %g >= %g", away["true"], base["true"])
	}
}

func TestValidationErrors(t *testing.T) {
	n := NewNetwork()
	if err := n.AddVariable(Variable{Name: "", States: []string{"a", "b"}}); err == nil {
		t.Error("empty name")
	}
	if err := n.AddVariable(Variable{Name: "x", States: []string{"only"}}); err == nil {
		t.Error("single state")
	}
	if err := n.AddVariable(Variable{Name: "x", States: []string{"a", "a"}}); err == nil {
		t.Error("duplicate state")
	}
	if err := n.AddVariable(Variable{Name: "x", States: []string{"a", "b"}}, "ghost"); err == nil {
		t.Error("undeclared parent")
	}
	if err := n.AddVariable(Variable{Name: "x", States: []string{"a", "b"}}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddVariable(Variable{Name: "x", States: []string{"a", "b"}}); err == nil {
		t.Error("duplicate variable")
	}
	if err := n.SetCPT("ghost", nil); err == nil {
		t.Error("unknown variable CPT")
	}
	if err := n.SetCPT("x", [][]float64{{0.5, 0.5}, {0.5, 0.5}}); err == nil {
		t.Error("wrong row count")
	}
	if err := n.SetCPT("x", [][]float64{{0.5}}); err == nil {
		t.Error("wrong row width")
	}
	if err := n.SetCPT("x", [][]float64{{0.7, 0.7}}); err == nil {
		t.Error("row not summing to 1")
	}
	if err := n.SetCPT("x", [][]float64{{-0.5, 1.5}}); err == nil {
		t.Error("negative probability")
	}
	if err := n.Compile(); err == nil {
		t.Error("compile without CPT should error")
	}
	if err := n.SetCPT("x", [][]float64{{0.5, 0.5}}); err != nil {
		t.Fatal(err)
	}
	if err := n.Compile(); err != nil {
		t.Fatal(err)
	}
	if err := n.AddVariable(Variable{Name: "y", States: []string{"a", "b"}}); err == nil {
		t.Error("add after compile should error")
	}
	if _, err := n.Query("ghost", nil); err == nil {
		t.Error("query unknown variable")
	}
	if _, err := n.Query("x", Evidence{"ghost": "a"}); err == nil {
		t.Error("unknown evidence variable")
	}
	if _, err := n.Query("x", Evidence{"x": "zzz"}); err == nil {
		t.Error("unknown evidence state")
	}
	if _, err := n.Query("x", Evidence{"x": "a"}); err == nil {
		t.Error("query == evidence should error")
	}
}

func TestQueryBeforeCompile(t *testing.T) {
	n := NewNetwork()
	if err := n.AddVariable(Variable{Name: "x", States: []string{"a", "b"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Query("x", nil); err == nil {
		t.Error("query before compile should error")
	}
	if _, err := n.JointSample(func() float64 { return 0.5 }); err == nil {
		t.Error("sample before compile should error")
	}
	if err := NewNetwork().Compile(); err == nil {
		t.Error("compiling empty network should error")
	}
}

func TestZeroProbabilityEvidence(t *testing.T) {
	n := NewNetwork()
	if err := n.AddVariable(Variable{Name: "a", States: []string{"t", "f"}}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddVariable(Variable{Name: "b", States: []string{"t", "f"}}, "a"); err != nil {
		t.Fatal(err)
	}
	if err := n.SetCPT("a", [][]float64{{1, 0}}); err != nil {
		t.Fatal(err)
	}
	if err := n.SetCPT("b", [][]float64{{1, 0}, {0, 1}}); err != nil {
		t.Fatal(err)
	}
	if err := n.Compile(); err != nil {
		t.Fatal(err)
	}
	// b=f is impossible (a is always t, so b is always t).
	if _, err := n.Query("a", Evidence{"b": "f"}); err == nil {
		t.Error("zero-probability evidence should error")
	}
}

func TestJointSampleMatchesMarginals(t *testing.T) {
	n := sprinkler(t)
	rng := rand.New(rand.NewSource(42))
	const trials = 200000
	counts := map[string]int{}
	for i := 0; i < trials; i++ {
		s, err := n.JointSample(rng.Float64)
		if err != nil {
			t.Fatal(err)
		}
		if s["rain"] == "true" {
			counts["rain"]++
		}
		if s["wet"] == "true" {
			counts["wet"]++
		}
	}
	if got := float64(counts["rain"]) / trials; math.Abs(got-0.2) > 0.01 {
		t.Errorf("sampled P(rain) = %g", got)
	}
	wantWet := 0.2*0.01*0.99 + 0.2*0.99*0.8 + 0.8*0.4*0.9
	if got := float64(counts["wet"]) / trials; math.Abs(got-wantWet) > 0.01 {
		t.Errorf("sampled P(wet) = %g, want %g", got, wantWet)
	}
}

func TestVariablesAndStates(t *testing.T) {
	n := sprinkler(t)
	vs := n.Variables()
	if len(vs) != 3 || vs[0] != "rain" || vs[2] != "wet" {
		t.Errorf("variables %v", vs)
	}
	st, err := n.States("wet")
	if err != nil || len(st) != 2 {
		t.Errorf("states %v err %v", st, err)
	}
	if _, err := n.States("ghost"); err == nil {
		t.Error("unknown variable states")
	}
}

// randomChain builds a random 4-node chain network a->b->c->d.
func randomChain(rng *rand.Rand, t testing.TB) *Network {
	n := NewNetwork()
	names := []string{"a", "b", "c", "d"}
	states := []string{"s0", "s1"}
	for i, name := range names {
		var parents []string
		if i > 0 {
			parents = []string{names[i-1]}
		}
		if err := n.AddVariable(Variable{Name: name, States: states}, parents...); err != nil {
			t.Fatal(err)
		}
		rows := 1
		if i > 0 {
			rows = 2
		}
		cpt := make([][]float64, rows)
		for r := range cpt {
			p := 0.05 + 0.9*rng.Float64()
			cpt[r] = []float64{p, 1 - p}
		}
		if err := n.SetCPT(name, cpt); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Compile(); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestPosteriorNormalizationProperty(t *testing.T) {
	// Property: every posterior is a distribution and conditioning on an
	// independent downstream variable never produces values outside [0,1].
	prop := func(seed int64, obsState bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomChain(rng, t)
		state := "s0"
		if obsState {
			state = "s1"
		}
		p, err := n.Query("b", Evidence{"d": state})
		if err != nil {
			return false
		}
		var sum float64
		for _, v := range p {
			if v < -1e-12 || v > 1+1e-12 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestInferenceMatchesEnumerationProperty(t *testing.T) {
	// Property: variable elimination agrees with brute-force enumeration on
	// random chain networks.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomChain(rng, t)
		got, err := n.Query("a", Evidence{"c": "s0"})
		if err != nil {
			return false
		}
		want := bruteForceChain(n, rng)
		return math.Abs(got["s0"]-want) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// bruteForceChain computes P(a=s0 | c=s0) on the chain a->b->c->d by full
// enumeration using JointSample's underlying CPTs via importance-free
// enumeration of all 16 joint states.
func bruteForceChain(n *Network, rng *rand.Rand) float64 {
	// Enumerate via repeated conditional queries — reconstruct joint from
	// CPTs by querying each variable given its parent chain using the
	// network itself with full evidence. Instead, since states are binary,
	// enumerate with JointSample probabilities computed from the CPTs: we
	// can recover the joint via Query with full evidence chains.
	// Simpler: compute P(a,c) via law of total probability with Query calls.
	// P(c=s0|a=x) obtained by querying c given a.
	pa, _ := n.Query("a", nil)
	pcGivenA0, _ := n.Query("c", Evidence{"a": "s0"})
	pcGivenA1, _ := n.Query("c", Evidence{"a": "s1"})
	num := pa["s0"] * pcGivenA0["s0"]
	den := num + pa["s1"]*pcGivenA1["s0"]
	return num / den
}

func BenchmarkQueryChain(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n := randomChain(rng, b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.Query("a", Evidence{"d": "s0"}); err != nil {
			b.Fatal(err)
		}
	}
}
