// Package bayes implements discrete Bayesian networks with exact inference
// by variable elimination.
//
// The paper rejects Bayes nets for phase-1 diagnostic fusion "because they
// require prior estimates of the conditional probability relating two
// failures" which "is not yet available for the CBM domain", while naming
// them the promising approach "when causal relations and a priori
// relationships can be teased out of historical data" (§10.1). This package
// exists so that trade-off is measurable: experiment E9 compares
// Dempster-Shafer fusion against a Bayes net whose conditionals are
// estimated from varying amounts of historical data.
package bayes

import (
	"fmt"
	"math"
	"sort"
)

// Variable is a named discrete random variable with a fixed set of states.
type Variable struct {
	Name   string
	States []string
}

// Network is a directed acyclic graph of discrete variables with
// conditional probability tables. Build with NewNetwork/AddVariable/SetCPT,
// then call Compile before querying.
type Network struct {
	vars     []*node
	index    map[string]int
	compiled bool
}

type node struct {
	v       Variable
	parents []int
	// cpt maps a joint parent-state assignment (mixed-radix index over
	// parent cardinalities) to a distribution over the node's states.
	cpt [][]float64
}

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{index: make(map[string]int)}
}

// AddVariable declares a variable with its parents. Parents must already be
// declared (topological insertion order), which also guarantees acyclicity.
func (n *Network) AddVariable(v Variable, parents ...string) error {
	if n.compiled {
		return fmt.Errorf("bayes: network already compiled")
	}
	if v.Name == "" {
		return fmt.Errorf("bayes: empty variable name")
	}
	if len(v.States) < 2 {
		return fmt.Errorf("bayes: variable %q needs at least two states", v.Name)
	}
	if _, dup := n.index[v.Name]; dup {
		return fmt.Errorf("bayes: duplicate variable %q", v.Name)
	}
	seen := make(map[string]bool, len(v.States))
	for _, s := range v.States {
		if s == "" || seen[s] {
			return fmt.Errorf("bayes: variable %q has empty or duplicate state", v.Name)
		}
		seen[s] = true
	}
	nd := &node{v: v}
	for _, p := range parents {
		pi, ok := n.index[p]
		if !ok {
			return fmt.Errorf("bayes: parent %q of %q not declared (declare parents first)", p, v.Name)
		}
		nd.parents = append(nd.parents, pi)
	}
	n.index[v.Name] = len(n.vars)
	n.vars = append(n.vars, nd)
	return nil
}

// parentConfigs returns the number of joint parent configurations of nd.
func (n *Network) parentConfigs(nd *node) int {
	c := 1
	for _, pi := range nd.parents {
		c *= len(n.vars[pi].v.States)
	}
	return c
}

// SetCPT sets the conditional probability table for variable name. rows must
// have one row per joint parent configuration (mixed-radix order with the
// first parent varying slowest) and each row must be a distribution over the
// variable's states summing to 1.
func (n *Network) SetCPT(name string, rows [][]float64) error {
	i, ok := n.index[name]
	if !ok {
		return fmt.Errorf("bayes: unknown variable %q", name)
	}
	nd := n.vars[i]
	want := n.parentConfigs(nd)
	if len(rows) != want {
		return fmt.Errorf("bayes: variable %q needs %d CPT rows, got %d", name, want, len(rows))
	}
	for r, row := range rows {
		if len(row) != len(nd.v.States) {
			return fmt.Errorf("bayes: variable %q row %d has %d entries, want %d", name, r, len(row), len(nd.v.States))
		}
		var sum float64
		for _, p := range row {
			if p < 0 || p > 1 || math.IsNaN(p) {
				return fmt.Errorf("bayes: variable %q row %d has invalid probability %g", name, r, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			return fmt.Errorf("bayes: variable %q row %d sums to %g", name, r, sum)
		}
	}
	cpt := make([][]float64, len(rows))
	for r, row := range rows {
		cpt[r] = append([]float64(nil), row...)
	}
	nd.cpt = cpt
	return nil
}

// Compile validates that every variable has a CPT and freezes the network.
func (n *Network) Compile() error {
	if len(n.vars) == 0 {
		return fmt.Errorf("bayes: empty network")
	}
	for _, nd := range n.vars {
		if nd.cpt == nil {
			return fmt.Errorf("bayes: variable %q has no CPT", nd.v.Name)
		}
	}
	n.compiled = true
	return nil
}

// Evidence maps variable names to observed state names.
type Evidence map[string]string

// factor is a table over a subset of variables used by variable elimination.
type factor struct {
	vars []int     // network variable indices, ascending
	vals []float64 // mixed-radix over vars' cardinalities, first var slowest
}

func (n *Network) card(i int) int { return len(n.vars[i].v.States) }

func (n *Network) newFactor(vars []int) *factor {
	size := 1
	for _, v := range vars {
		size *= n.card(v)
	}
	return &factor{vars: vars, vals: make([]float64, size)}
}

// indexOf computes the flat index of assignment (var->state index) in f.
func (n *Network) indexOf(f *factor, assign map[int]int) int {
	idx := 0
	for _, v := range f.vars {
		idx = idx*n.card(v) + assign[v]
	}
	return idx
}

// eachAssignment iterates all assignments of f's variables.
func (n *Network) eachAssignment(f *factor, fn func(assign map[int]int, flat int)) {
	assign := make(map[int]int, len(f.vars))
	var rec func(d, flat int)
	rec = func(d, flat int) {
		if d == len(f.vars) {
			fn(assign, flat)
			return
		}
		v := f.vars[d]
		for s := 0; s < n.card(v); s++ {
			assign[v] = s
			rec(d+1, flat*n.card(v)+s)
		}
	}
	rec(0, 0)
}

// nodeFactor builds the initial factor for node i, reduced by evidence.
func (n *Network) nodeFactor(i int, ev map[int]int) *factor {
	nd := n.vars[i]
	vars := append(append([]int(nil), nd.parents...), i)
	sort.Ints(vars)
	f := n.newFactor(vars)
	n.eachAssignment(f, func(assign map[int]int, flat int) {
		// Respect evidence: zero out contradicting entries.
		for v, s := range ev {
			if got, in := assign[v]; in && got != s {
				f.vals[flat] = 0
				return
			}
		}
		row := 0
		for _, pi := range nd.parents {
			row = row*n.card(pi) + assign[pi]
		}
		f.vals[flat] = nd.cpt[row][assign[i]]
	})
	return f
}

// multiply returns the product factor of a and b.
func (n *Network) multiply(a, b *factor) *factor {
	merged := mergeVars(a.vars, b.vars)
	out := n.newFactor(merged)
	n.eachAssignment(out, func(assign map[int]int, flat int) {
		out.vals[flat] = a.vals[n.indexOf(a, assign)] * b.vals[n.indexOf(b, assign)]
	})
	return out
}

// sumOut marginalizes variable v out of f.
func (n *Network) sumOut(f *factor, v int) *factor {
	rest := make([]int, 0, len(f.vars)-1)
	for _, x := range f.vars {
		if x != v {
			rest = append(rest, x)
		}
	}
	out := n.newFactor(rest)
	n.eachAssignment(f, func(assign map[int]int, flat int) {
		out.vals[n.indexOf(out, assign)] += f.vals[flat]
	})
	return out
}

func mergeVars(a, b []int) []int {
	seen := make(map[int]bool, len(a)+len(b))
	var out []int
	for _, v := range a {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for _, v := range b {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

// Query returns P(query | evidence) as a map from state name to probability,
// computed by variable elimination. It returns an error for unknown
// variables/states, for querying an evidence variable, or when the evidence
// has zero probability.
func (n *Network) Query(query string, evidence Evidence) (map[string]float64, error) {
	if !n.compiled {
		return nil, fmt.Errorf("bayes: network not compiled")
	}
	qi, ok := n.index[query]
	if !ok {
		return nil, fmt.Errorf("bayes: unknown query variable %q", query)
	}
	ev := make(map[int]int, len(evidence))
	for name, state := range evidence {
		vi, ok := n.index[name]
		if !ok {
			return nil, fmt.Errorf("bayes: unknown evidence variable %q", name)
		}
		si := -1
		for j, s := range n.vars[vi].v.States {
			if s == state {
				si = j
				break
			}
		}
		if si < 0 {
			return nil, fmt.Errorf("bayes: variable %q has no state %q", name, state)
		}
		ev[vi] = si
	}
	if _, isEv := ev[qi]; isEv {
		return nil, fmt.Errorf("bayes: query variable %q is also evidence", query)
	}

	factors := make([]*factor, 0, len(n.vars))
	for i := range n.vars {
		factors = append(factors, n.nodeFactor(i, ev))
	}
	// Eliminate every variable except the query, smallest-cardinality first
	// (a simple min-fill-ish heuristic adequate for diagnostic-scale nets).
	elim := make([]int, 0, len(n.vars)-1)
	for i := range n.vars {
		if i != qi {
			elim = append(elim, i)
		}
	}
	sort.Slice(elim, func(a, b int) bool { return n.card(elim[a]) < n.card(elim[b]) })
	for _, v := range elim {
		var touching []*factor
		var rest []*factor
		for _, f := range factors {
			uses := false
			for _, fv := range f.vars {
				if fv == v {
					uses = true
					break
				}
			}
			if uses {
				touching = append(touching, f)
			} else {
				rest = append(rest, f)
			}
		}
		if len(touching) == 0 {
			continue
		}
		prod := touching[0]
		for _, f := range touching[1:] {
			prod = n.multiply(prod, f)
		}
		factors = append(rest, n.sumOut(prod, v))
	}
	// Multiply the remaining factors (all over the query variable or empty).
	result := factors[0]
	for _, f := range factors[1:] {
		result = n.multiply(result, f)
	}
	// result may still include evidence variables pinned by zeros; sum them.
	for _, v := range result.vars {
		if v != qi {
			result = n.sumOut(result, v)
		}
	}
	var z float64
	for _, p := range result.vals {
		z += p
	}
	if z == 0 {
		return nil, fmt.Errorf("bayes: evidence has zero probability")
	}
	out := make(map[string]float64, n.card(qi))
	for s, name := range n.vars[qi].v.States {
		out[name] = result.vals[s] / z
	}
	return out, nil
}

// JointSample draws one sample from the network's joint distribution using
// the supplied uniform-random source (values in [0,1)), in declaration
// order. It is used to synthesize "historical maintenance data" for E9.
func (n *Network) JointSample(uniforms func() float64) (map[string]string, error) {
	if !n.compiled {
		return nil, fmt.Errorf("bayes: network not compiled")
	}
	states := make(map[int]int, len(n.vars))
	out := make(map[string]string, len(n.vars))
	for i, nd := range n.vars {
		row := 0
		for _, pi := range nd.parents {
			row = row*n.card(pi) + states[pi]
		}
		u := uniforms()
		cum := 0.0
		pick := len(nd.v.States) - 1
		for s, p := range nd.cpt[row] {
			cum += p
			if u < cum {
				pick = s
				break
			}
		}
		states[i] = pick
		out[nd.v.Name] = nd.v.States[pick]
	}
	return out, nil
}

// Variables returns the declared variable names in topological order.
func (n *Network) Variables() []string {
	out := make([]string, len(n.vars))
	for i, nd := range n.vars {
		out[i] = nd.v.Name
	}
	return out
}

// States returns the state names of a variable.
func (n *Network) States(name string) ([]string, error) {
	i, ok := n.index[name]
	if !ok {
		return nil, fmt.Errorf("bayes: unknown variable %q", name)
	}
	return append([]string(nil), n.vars[i].v.States...), nil
}
