package dempster_test

import (
	"fmt"

	"repro/internal/dempster"
)

// ExampleCombine reproduces the §5.3 worked example from the paper: a 40%
// belief in A combined with a 75% belief in B∨C.
func ExampleCombine() {
	frame := dempster.MustFrame("A", "B", "C")
	a, _ := frame.Hypothesis("A")
	bc, _ := frame.SetOf("B", "C")
	m1, _ := dempster.SimpleSupport(frame, a, 0.40)
	m2, _ := dempster.SimpleSupport(frame, bc, 0.75)
	combined, conflict, err := dempster.Combine(m1, m2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("m(A)    = %.1f%%\n", 100*combined.Get(a))
	fmt.Printf("m(B∨C)  = %.1f%%\n", 100*combined.Get(bc))
	fmt.Printf("m(Θ)    = %.1f%%\n", 100*combined.Unknown())
	fmt.Printf("conflict = %.2f\n", conflict)
	// Output:
	// m(A)    = 14.3%
	// m(B∨C)  = 64.3%
	// m(Θ)    = 21.4%
	// conflict = 0.30
}
