// Package dempster implements Dempster-Shafer theory of evidence, the
// calculus MPROS uses for diagnostic knowledge fusion (§5.3).
//
// "Dempster-Shafer theory is a calculus for qualifying beliefs using
// numerical expressions. [...] given a belief of 40% that A will occur and
// another belief of 75% that B or C will occur, it will [be] concluded that
// A is 14% likely, 'B or C' is 64% likely and there is 22% of belief
// assigned to unknown possibilities."
//
// The package represents a frame of discernment of up to 64 hypotheses;
// subsets of the frame are bitmasks (type Set). Mass functions assign
// basic probability to subsets; Combine applies Dempster's rule of
// combination with conflict renormalization. The maintenance of mass on the
// full frame Θ — the "unknown possibilities" — is, per the paper, "both a
// differentiator and a strength" of the approach, so Unknown() is a
// first-class query.
package dempster

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
)

// MaxHypotheses is the largest number of atomic hypotheses a Frame supports.
const MaxHypotheses = 64

// Set is a subset of a frame of discernment, one bit per atomic hypothesis.
type Set uint64

// Empty is the empty hypothesis set.
const Empty Set = 0

// Singleton returns the set containing only hypothesis i.
func Singleton(i int) Set { return 1 << uint(i) }

// Union returns s ∪ t.
func (s Set) Union(t Set) Set { return s | t }

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set { return s & t }

// Contains reports whether every element of t is in s.
func (s Set) Contains(t Set) bool { return s&t == t }

// IsEmpty reports whether s has no elements.
func (s Set) IsEmpty() bool { return s == 0 }

// Count returns the number of atomic hypotheses in s.
func (s Set) Count() int { return bits.OnesCount64(uint64(s)) }

// Frame is a frame of discernment: the exhaustive set of mutually exclusive
// hypotheses under consideration (within one logical failure group, in MPROS
// terms). A Frame is immutable after construction.
type Frame struct {
	names []string
	index map[string]int
}

// NewFrame builds a frame from hypothesis names. Names must be unique,
// non-empty, and at most MaxHypotheses of them.
func NewFrame(names ...string) (*Frame, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("dempster: frame needs at least one hypothesis")
	}
	if len(names) > MaxHypotheses {
		return nil, fmt.Errorf("dempster: %d hypotheses exceeds maximum %d", len(names), MaxHypotheses)
	}
	f := &Frame{index: make(map[string]int, len(names))}
	for _, n := range names {
		if n == "" {
			return nil, fmt.Errorf("dempster: empty hypothesis name")
		}
		if _, dup := f.index[n]; dup {
			return nil, fmt.Errorf("dempster: duplicate hypothesis %q", n)
		}
		f.index[n] = len(f.names)
		f.names = append(f.names, n)
	}
	return f, nil
}

// MustFrame is NewFrame that panics on error; for tests and static tables.
func MustFrame(names ...string) *Frame {
	f, err := NewFrame(names...)
	if err != nil {
		panic(err)
	}
	return f
}

// Size returns the number of atomic hypotheses in the frame.
func (f *Frame) Size() int { return len(f.names) }

// Theta returns the full set Θ (all hypotheses).
func (f *Frame) Theta() Set {
	if len(f.names) == 64 {
		return Set(^uint64(0))
	}
	return Set(1<<uint(len(f.names))) - 1
}

// Hypothesis returns the singleton set for the named hypothesis.
func (f *Frame) Hypothesis(name string) (Set, error) {
	i, ok := f.index[name]
	if !ok {
		return 0, fmt.Errorf("dempster: unknown hypothesis %q", name)
	}
	return Singleton(i), nil
}

// SetOf returns the subset containing the named hypotheses.
func (f *Frame) SetOf(names ...string) (Set, error) {
	var s Set
	for _, n := range names {
		h, err := f.Hypothesis(n)
		if err != nil {
			return 0, err
		}
		s |= h
	}
	return s, nil
}

// Names returns the hypothesis names present in s, in frame order.
func (f *Frame) Names(s Set) []string {
	var out []string
	for i, n := range f.names {
		if s&Singleton(i) != 0 {
			out = append(out, n)
		}
	}
	return out
}

// Format renders s as a human-readable disjunction, "∅" for the empty set
// and "Θ" for the full frame.
func (f *Frame) Format(s Set) string {
	if s.IsEmpty() {
		return "∅"
	}
	if s == f.Theta() {
		return "Θ"
	}
	return strings.Join(f.Names(s), "∨")
}

// Mass is a basic probability assignment over subsets of a frame. Masses
// must be non-negative and sum to 1 (checked by Validate). The zero value is
// not usable; construct with NewMass.
type Mass struct {
	frame *Frame
	m     map[Set]float64
}

// NewMass returns an empty mass function over f.
func NewMass(f *Frame) *Mass {
	return &Mass{frame: f, m: make(map[Set]float64)}
}

// VacuousMass returns the mass function that assigns everything to Θ —
// total ignorance, the identity element of Dempster combination.
func VacuousMass(f *Frame) *Mass {
	m := NewMass(f)
	m.m[f.Theta()] = 1
	return m
}

// SimpleSupport returns the mass function that assigns belief b to focal set
// s and the remainder 1-b to Θ. This is exactly how MPROS turns an incoming
// diagnostic report (machine condition + belief) into evidence.
func SimpleSupport(f *Frame, s Set, belief float64) (*Mass, error) {
	if belief < 0 || belief > 1 {
		return nil, fmt.Errorf("dempster: belief %g outside [0,1]", belief)
	}
	if s.IsEmpty() {
		return nil, fmt.Errorf("dempster: simple support on empty set")
	}
	if !f.Theta().Contains(s) {
		return nil, fmt.Errorf("dempster: focal set outside frame")
	}
	m := NewMass(f)
	if belief > 0 {
		m.m[s] = belief
	}
	if belief < 1 {
		m.m[f.Theta()] += 1 - belief
	}
	return m, nil
}

// Frame returns the frame the mass function is defined over.
func (m *Mass) Frame() *Frame { return m.frame }

// Set assigns mass v to focal set s, replacing any previous assignment.
func (m *Mass) Set(s Set, v float64) error {
	if v < 0 {
		return fmt.Errorf("dempster: negative mass %g", v)
	}
	if s.IsEmpty() && v > 0 {
		return fmt.Errorf("dempster: positive mass on empty set")
	}
	if !m.frame.Theta().Contains(s) {
		return fmt.Errorf("dempster: focal set outside frame")
	}
	if v == 0 {
		delete(m.m, s)
		return nil
	}
	m.m[s] = v
	return nil
}

// Get returns the mass assigned to exactly the focal set s.
func (m *Mass) Get(s Set) float64 { return m.m[s] }

// FocalSets returns the focal sets (sets with positive mass) in ascending
// bitmask order, for deterministic iteration.
func (m *Mass) FocalSets() []Set {
	out := make([]Set, 0, len(m.m))
	//lint:allow maporder the one sanctioned raw range: keys are sorted before return, so order cannot leak
	for s := range m.m {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Validate checks that masses are non-negative and sum to 1 within tol.
func (m *Mass) Validate(tol float64) error {
	var sum float64
	for _, s := range m.FocalSets() {
		v := m.m[s]
		if v < 0 {
			return fmt.Errorf("dempster: negative mass %g on %s", v, m.frame.Format(s))
		}
		if s.IsEmpty() && v > 0 {
			return fmt.Errorf("dempster: mass on empty set")
		}
		sum += v
	}
	if math.Abs(sum-1) > tol {
		return fmt.Errorf("dempster: masses sum to %g, want 1", sum)
	}
	return nil
}

// Normalize rescales masses to sum to 1. It returns an error if total mass
// is zero.
func (m *Mass) Normalize() error {
	var sum float64
	// Deterministic summation order, as in Belief.
	for _, s := range m.FocalSets() {
		sum += m.m[s]
	}
	if sum == 0 {
		return fmt.Errorf("dempster: cannot normalize zero mass")
	}
	for _, s := range m.FocalSets() {
		m.m[s] /= sum
	}
	return nil
}

// Belief returns Bel(s): the total mass committed to subsets of s — the
// degree to which the evidence supports s. Summation runs in ascending
// focal-set order so repeated calls on equal mass functions are
// bit-identical (float addition is not associative; map order is random).
func (m *Mass) Belief(s Set) float64 {
	var sum float64
	for _, focal := range m.FocalSets() {
		if s.Contains(focal) && !focal.IsEmpty() {
			sum += m.m[focal]
		}
	}
	return sum
}

// Plausibility returns Pl(s): the total mass not committed against s —
// the degree to which the evidence fails to refute s. Deterministic
// summation order, as in Belief.
func (m *Mass) Plausibility(s Set) float64 {
	var sum float64
	for _, focal := range m.FocalSets() {
		if !focal.Intersect(s).IsEmpty() {
			sum += m.m[focal]
		}
	}
	return sum
}

// Unknown returns the mass still assigned to the whole frame Θ — the
// "likelihood of unknown possibilities" the paper calls out as the
// differentiator of Dempster-Shafer.
func (m *Mass) Unknown() float64 { return m.m[m.frame.Theta()] }

// Clone returns a deep copy of m.
func (m *Mass) Clone() *Mass {
	c := NewMass(m.frame)
	for _, s := range m.FocalSets() {
		c.m[s] = m.m[s]
	}
	return c
}

// Discount applies Shafer's classical discounting: the source providing m
// is trusted with reliability alpha in [0,1], so every focal mass is scaled
// by alpha and the forfeited confidence 1-alpha is reassigned to Θ (total
// ignorance). Discounting a source before combination is how MPROS degrades
// stale or suspect evidence gracefully: at alpha=1 the evidence passes
// through untouched, at alpha=0 it vanishes into the vacuous mass, and in
// between beliefs shrink while the unknown mass grows — never the reverse.
func Discount(m *Mass, alpha float64) (*Mass, error) {
	if math.IsNaN(alpha) || alpha < 0 || alpha > 1 {
		return nil, fmt.Errorf("dempster: discount factor %g outside [0,1]", alpha)
	}
	if alpha >= 1 {
		return m.Clone(), nil
	}
	if alpha <= 0 {
		return VacuousMass(m.frame), nil
	}
	out := NewMass(m.frame)
	theta := m.frame.Theta()
	for _, s := range m.FocalSets() {
		if s == theta {
			continue
		}
		out.m[s] = alpha * m.m[s]
	}
	out.m[theta] = 1 - alpha + alpha*m.m[theta]
	return out, nil
}

// Combine applies Dempster's rule of combination to a and b, which must be
// defined over the same frame. It returns the combined mass function and the
// conflict K (the total probability mass the two sources assign to
// incompatible conclusions). Combination fails if the sources are in total
// conflict (K == 1).
func Combine(a, b *Mass) (*Mass, float64, error) {
	if a.frame != b.frame {
		return nil, 0, fmt.Errorf("dempster: cannot combine masses over different frames")
	}
	out := NewMass(a.frame)
	var conflict float64
	// Accumulate in ascending (sa, sb) order: the sums here are float
	// additions, so a fixed order makes combination a pure function of the
	// inputs bit-for-bit — the property the serving tier's cache coherence
	// check (cached view == fresh fuse) depends on.
	for _, sa := range a.FocalSets() {
		va := a.m[sa]
		for _, sb := range b.FocalSets() {
			vb := b.m[sb]
			inter := sa.Intersect(sb)
			p := va * vb
			if inter.IsEmpty() {
				conflict += p
			} else {
				out.m[inter] += p
			}
		}
	}
	if conflict >= 1-1e-12 {
		return nil, conflict, fmt.Errorf("dempster: total conflict between sources (K=%.6f)", conflict)
	}
	norm := 1 / (1 - conflict)
	for _, s := range out.FocalSets() {
		out.m[s] *= norm
	}
	return out, conflict, nil
}

// CombineAll folds Combine over any number of mass functions; per the paper,
// Dempster's rule "can be extended to handle any number of inputs". Returns
// the vacuous mass for an empty input list (frame must then be supplied via
// at least one mass, so empty input is an error).
func CombineAll(masses ...*Mass) (*Mass, error) {
	if len(masses) == 0 {
		return nil, fmt.Errorf("dempster: no masses to combine")
	}
	acc := masses[0].Clone()
	for _, m := range masses[1:] {
		next, _, err := Combine(acc, m)
		if err != nil {
			return nil, err
		}
		acc = next
	}
	return acc, nil
}

// Pignistic returns the pignistic probability transform BetP of m: each
// focal set's mass divided evenly among its atoms. It is the standard way to
// turn a belief state into a point probability for ranking — the PDME uses
// it to prioritize the maintenance list.
func (m *Mass) Pignistic() map[string]float64 {
	out := make(map[string]float64, m.frame.Size())
	for i, n := range m.frame.names {
		out[n] = 0
		_ = i
	}
	// Ascending focal-set order keeps the per-atom sums bit-reproducible.
	for _, s := range m.FocalSets() {
		c := s.Count()
		if c == 0 {
			continue
		}
		share := m.m[s] / float64(c)
		for i, n := range m.frame.names {
			if s&Singleton(i) != 0 {
				out[n] += share
			}
		}
	}
	return out
}

// String renders the mass function for debugging.
func (m *Mass) String() string {
	var b strings.Builder
	for _, s := range m.FocalSets() {
		fmt.Fprintf(&b, "m(%s)=%.4f ", m.frame.Format(s), m.m[s])
	}
	return strings.TrimSpace(b.String())
}
