package dempster

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// TestFocalSetsIsOnlyMapIteration pins the package's determinism contract at
// the source level: the raw `range m.m` over the mass map exists exactly once,
// inside FocalSets (which sorts before returning), and the calculus entry
// points Combine, Belief, and Pignistic iterate only via FocalSets() or the
// frame's ordered name slice. The maporder analyzer enforces the same rule
// module-wide; this test keeps the contract honest even when the linter's
// scope map is edited.
func TestFocalSetsIsOnlyMapIteration(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "dempster.go", nil, 0)
	if err != nil {
		t.Fatal(err)
	}

	rangesByFunc := map[string][]ast.Expr{}
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if rng, ok := n.(*ast.RangeStmt); ok {
				rangesByFunc[fd.Name.Name] = append(rangesByFunc[fd.Name.Name], rng.X)
			}
			return true
		})
	}

	// Rule 1: `range <recv>.m` appears only inside FocalSets itself.
	for fn, exprs := range rangesByFunc {
		for _, x := range exprs {
			sel, ok := x.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "m" {
				continue
			}
			if fn != "FocalSets" {
				t.Errorf("%s: function %s ranges the raw mass map; iterate FocalSets() instead",
					fset.Position(x.Pos()), fn)
			}
		}
	}
	if len(rangesByFunc["FocalSets"]) != 1 {
		t.Errorf("FocalSets: want exactly one range (the sorted-key collection), got %d",
			len(rangesByFunc["FocalSets"]))
	}

	// Rule 2: the calculus entry points iterate only ordered sources —
	// FocalSets() calls or the frame's registration-ordered names slice.
	for _, fn := range []string{"Combine", "Belief", "Pignistic"} {
		exprs, ok := rangesByFunc[fn]
		if !ok {
			t.Errorf("function %s not found or has no loops; the contract test needs updating", fn)
			continue
		}
		for _, x := range exprs {
			switch x := x.(type) {
			case *ast.CallExpr:
				if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "FocalSets" {
					continue
				}
			case *ast.SelectorExpr:
				if x.Sel.Name == "names" {
					continue
				}
			}
			t.Errorf("%s: %s ranges a non-ordered source; only FocalSets() and frame.names are deterministic",
				fset.Position(x.Pos()), fn)
		}
	}
}
