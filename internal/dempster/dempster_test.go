package dempster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewFrameValidation(t *testing.T) {
	if _, err := NewFrame(); err == nil {
		t.Error("empty frame should error")
	}
	if _, err := NewFrame("a", "a"); err == nil {
		t.Error("duplicate names should error")
	}
	if _, err := NewFrame("a", ""); err == nil {
		t.Error("empty name should error")
	}
	big := make([]string, 65)
	for i := range big {
		big[i] = string(rune('a')) + string(rune('0'+i/10)) + string(rune('0'+i%10))
	}
	if _, err := NewFrame(big...); err == nil {
		t.Error("65 hypotheses should error")
	}
	f, err := NewFrame("x", "y", "z")
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 3 || f.Theta() != 0b111 {
		t.Errorf("size %d theta %b", f.Size(), f.Theta())
	}
}

func TestFrame64Hypotheses(t *testing.T) {
	names := make([]string, 64)
	for i := range names {
		names[i] = string(rune('A'+i/26)) + string(rune('a'+i%26))
	}
	f := MustFrame(names...)
	if f.Theta() != Set(^uint64(0)) {
		t.Errorf("64-wide theta wrong: %x", f.Theta())
	}
}

func TestSetOperations(t *testing.T) {
	f := MustFrame("a", "b", "c", "d")
	ab, err := f.SetOf("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	bc, _ := f.SetOf("b", "c")
	if ab.Intersect(bc) != Singleton(1) {
		t.Error("intersect")
	}
	if ab.Union(bc).Count() != 3 {
		t.Error("union")
	}
	if !ab.Contains(Singleton(0)) || ab.Contains(Singleton(2)) {
		t.Error("contains")
	}
	if _, err := f.SetOf("a", "nope"); err == nil {
		t.Error("unknown name should error")
	}
	if got := f.Format(ab); got != "a∨b" {
		t.Errorf("format %q", got)
	}
	if f.Format(Empty) != "∅" || f.Format(f.Theta()) != "Θ" {
		t.Error("special formats")
	}
	if ns := f.Names(bc); len(ns) != 2 || ns[0] != "b" || ns[1] != "c" {
		t.Errorf("names %v", ns)
	}
}

// TestPaperWorkedExample reproduces the §5.3 numbers exactly: belief 40% in
// A combined with belief 75% in B∨C yields A 14%, B∨C 64%, unknown 22%.
func TestPaperWorkedExample(t *testing.T) {
	f := MustFrame("A", "B", "C")
	a, _ := f.Hypothesis("A")
	bc, _ := f.SetOf("B", "C")
	m1, err := SimpleSupport(f, a, 0.40)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := SimpleSupport(f, bc, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	comb, conflict, err := Combine(m1, m2)
	if err != nil {
		t.Fatal(err)
	}
	// Conflict K = 0.40 × 0.75 = 0.30.
	if math.Abs(conflict-0.30) > 1e-12 {
		t.Errorf("conflict %g, want 0.30", conflict)
	}
	// Exact values: 0.1/0.7, 0.45/0.7, 0.15/0.7.
	if got := comb.Get(a); math.Abs(got-0.1/0.7) > 1e-12 {
		t.Errorf("m(A) = %g, want %g", got, 0.1/0.7)
	}
	if got := comb.Get(bc); math.Abs(got-0.45/0.7) > 1e-12 {
		t.Errorf("m(B∨C) = %g, want %g", got, 0.45/0.7)
	}
	if got := comb.Unknown(); math.Abs(got-0.15/0.7) > 1e-12 {
		t.Errorf("m(Θ) = %g, want %g", got, 0.15/0.7)
	}
	// Paper's rounded presentation: 14%, 64%, 22%.
	if pct := math.Round(comb.Get(a) * 100); pct != 14 {
		t.Errorf("A%% = %g, want 14", pct)
	}
	if pct := math.Round(comb.Get(bc) * 100); pct != 64 {
		t.Errorf("B∨C%% = %g, want 64", pct)
	}
	if pct := math.Round(comb.Unknown() * 100); pct != 21 && pct != 22 {
		// 0.15/0.7 = 21.43% — the paper rounds its three numbers to sum to
		// 100 (14+64+22); the exact mass rounds to 21.
		t.Errorf("unknown%% = %g, want ≈22", pct)
	}
	if err := comb.Validate(1e-9); err != nil {
		t.Errorf("combined mass invalid: %v", err)
	}
}

func TestSimpleSupportValidation(t *testing.T) {
	f := MustFrame("A", "B")
	a, _ := f.Hypothesis("A")
	if _, err := SimpleSupport(f, a, -0.1); err == nil {
		t.Error("negative belief")
	}
	if _, err := SimpleSupport(f, a, 1.1); err == nil {
		t.Error("belief > 1")
	}
	if _, err := SimpleSupport(f, Empty, 0.5); err == nil {
		t.Error("empty focal set")
	}
	if _, err := SimpleSupport(f, Set(0b100), 0.5); err == nil {
		t.Error("focal set outside frame")
	}
	// belief 1 leaves no mass on theta; belief 0 is vacuous.
	m, err := SimpleSupport(f, a, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Unknown() != 0 || m.Get(a) != 1 {
		t.Error("belief 1 support wrong")
	}
	v, err := SimpleSupport(f, a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.Unknown() != 1 {
		t.Error("belief 0 should be vacuous")
	}
}

func TestMassSetValidation(t *testing.T) {
	f := MustFrame("A", "B")
	m := NewMass(f)
	if err := m.Set(Singleton(0), -1); err == nil {
		t.Error("negative mass")
	}
	if err := m.Set(Empty, 0.5); err == nil {
		t.Error("mass on empty set")
	}
	if err := m.Set(Set(0b1000), 0.5); err == nil {
		t.Error("mass outside frame")
	}
	if err := m.Set(Singleton(0), 0.5); err != nil {
		t.Fatal(err)
	}
	if err := m.Set(Singleton(0), 0); err != nil {
		t.Fatal(err)
	}
	if len(m.FocalSets()) != 0 {
		t.Error("zero mass should delete focal set")
	}
}

func TestVacuousIsIdentity(t *testing.T) {
	f := MustFrame("A", "B", "C")
	a, _ := f.Hypothesis("A")
	m, _ := SimpleSupport(f, a, 0.6)
	comb, conflict, err := Combine(m, VacuousMass(f))
	if err != nil {
		t.Fatal(err)
	}
	if conflict != 0 {
		t.Errorf("conflict with vacuous: %g", conflict)
	}
	if math.Abs(comb.Get(a)-0.6) > 1e-12 || math.Abs(comb.Unknown()-0.4) > 1e-12 {
		t.Errorf("vacuous not identity: %v", comb)
	}
}

func TestTotalConflict(t *testing.T) {
	f := MustFrame("A", "B")
	a, _ := f.Hypothesis("A")
	b, _ := f.Hypothesis("B")
	m1, _ := SimpleSupport(f, a, 1)
	m2, _ := SimpleSupport(f, b, 1)
	if _, k, err := Combine(m1, m2); err == nil {
		t.Errorf("total conflict should error (K=%g)", k)
	}
}

func TestCombineDifferentFramesFails(t *testing.T) {
	f1 := MustFrame("A", "B")
	f2 := MustFrame("A", "B")
	m1 := VacuousMass(f1)
	m2 := VacuousMass(f2)
	if _, _, err := Combine(m1, m2); err == nil {
		t.Error("different frame instances should not combine")
	}
}

func TestBeliefPlausibility(t *testing.T) {
	f := MustFrame("A", "B", "C")
	a, _ := f.Hypothesis("A")
	ab, _ := f.SetOf("A", "B")
	m := NewMass(f)
	if err := m.Set(a, 0.3); err != nil {
		t.Fatal(err)
	}
	if err := m.Set(ab, 0.4); err != nil {
		t.Fatal(err)
	}
	if err := m.Set(f.Theta(), 0.3); err != nil {
		t.Fatal(err)
	}
	if got := m.Belief(a); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("Bel(A) = %g", got)
	}
	if got := m.Belief(ab); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("Bel(A∨B) = %g", got)
	}
	if got := m.Plausibility(a); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("Pl(A) = %g", got)
	}
	c, _ := f.Hypothesis("C")
	if got := m.Plausibility(c); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("Pl(C) = %g", got)
	}
}

func TestCombineAll(t *testing.T) {
	f := MustFrame("A", "B", "C")
	a, _ := f.Hypothesis("A")
	var ms []*Mass
	for i := 0; i < 5; i++ {
		m, _ := SimpleSupport(f, a, 0.5)
		ms = append(ms, m)
	}
	comb, err := CombineAll(ms...)
	if err != nil {
		t.Fatal(err)
	}
	// Five independent 0.5-supports for A: unknown mass is 0.5^5 (no
	// conflict when all sources agree).
	if got := comb.Unknown(); math.Abs(got-math.Pow(0.5, 5)) > 1e-12 {
		t.Errorf("unknown %g, want %g", got, math.Pow(0.5, 5))
	}
	if got := comb.Belief(a); got < 0.96 {
		t.Errorf("Bel(A) after 5 agreeing sources = %g", got)
	}
	if _, err := CombineAll(); err == nil {
		t.Error("empty CombineAll should error")
	}
}

func TestPignistic(t *testing.T) {
	f := MustFrame("A", "B", "C")
	bc, _ := f.SetOf("B", "C")
	m := NewMass(f)
	if err := m.Set(bc, 0.6); err != nil {
		t.Fatal(err)
	}
	if err := m.Set(f.Theta(), 0.4); err != nil {
		t.Fatal(err)
	}
	p := m.Pignistic()
	// BetP(A) = 0.4/3; BetP(B) = BetP(C) = 0.6/2 + 0.4/3.
	if math.Abs(p["A"]-0.4/3) > 1e-12 {
		t.Errorf("BetP(A) = %g", p["A"])
	}
	if math.Abs(p["B"]-(0.3+0.4/3)) > 1e-12 {
		t.Errorf("BetP(B) = %g", p["B"])
	}
	var sum float64
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("pignistic sums to %g", sum)
	}
}

func randomMass(rng *rand.Rand, f *Frame) *Mass {
	m := NewMass(f)
	n := rng.Intn(4) + 1
	total := 0.0
	weights := make([]float64, n+1)
	for i := range weights {
		weights[i] = rng.Float64() + 0.01
		total += weights[i]
	}
	for i := 0; i < n; i++ {
		s := Set(rng.Int63n(int64(f.Theta())) + 1)
		m.m[s] += weights[i] / total
	}
	m.m[f.Theta()] += weights[n] / total
	return m
}

func TestCombineProperties(t *testing.T) {
	// Properties of Dempster combination on random masses:
	// 1. result is a valid mass function;
	// 2. commutativity: a⊕b == b⊕a;
	// 3. unknown mass never increases: m(Θ) of a⊕b <= min of inputs' m(Θ)
	//    (more evidence can only reduce ignorance).
	f := MustFrame("A", "B", "C", "D")
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomMass(rng, f)
		b := randomMass(rng, f)
		ab, k1, err1 := Combine(a, b)
		ba, k2, err2 := Combine(b, a)
		if err1 != nil || err2 != nil {
			// Total conflict is possible but must be symmetric.
			return (err1 != nil) == (err2 != nil)
		}
		if math.Abs(k1-k2) > 1e-12 {
			return false
		}
		if ab.Validate(1e-9) != nil {
			return false
		}
		for _, s := range ab.FocalSets() {
			if math.Abs(ab.Get(s)-ba.Get(s)) > 1e-9 {
				return false
			}
		}
		minUnknown := math.Min(a.Unknown(), b.Unknown())
		return ab.Unknown() <= minUnknown+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestBeliefPlausibilityInvariantProperty(t *testing.T) {
	// Property: Bel(s) <= Pl(s) for any subset, and Bel(s) + Bel(¬s) <= 1.
	f := MustFrame("A", "B", "C", "D", "E")
	prop := func(seed int64, raw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomMass(rng, f)
		s := Set(raw) & f.Theta()
		if s.IsEmpty() {
			s = Singleton(0)
		}
		bel := m.Belief(s)
		pl := m.Plausibility(s)
		if bel > pl+1e-9 {
			return false
		}
		not := f.Theta() &^ s
		return bel+m.Belief(not) <= 1+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalize(t *testing.T) {
	f := MustFrame("A", "B")
	m := NewMass(f)
	if err := m.Normalize(); err == nil {
		t.Error("zero mass normalize should error")
	}
	a, _ := f.Hypothesis("A")
	if err := m.Set(a, 2); err != nil {
		t.Fatal(err)
	}
	if err := m.Set(f.Theta(), 2); err != nil {
		t.Fatal(err)
	}
	if err := m.Normalize(); err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(1e-12); err != nil {
		t.Error(err)
	}
}

func TestMassString(t *testing.T) {
	f := MustFrame("A", "B")
	a, _ := f.Hypothesis("A")
	m, _ := SimpleSupport(f, a, 0.4)
	s := m.String()
	if s == "" {
		t.Error("empty string rendering")
	}
}

func BenchmarkCombineTwoSources(b *testing.B) {
	f := MustFrame("A", "B", "C", "D", "E", "F")
	rng := rand.New(rand.NewSource(9))
	m1 := randomMass(rng, f)
	m2 := randomMass(rng, f)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Combine(m1, m2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCombineTenSources(b *testing.B) {
	f := MustFrame("A", "B", "C", "D", "E", "F", "G", "H")
	rng := rand.New(rand.NewSource(10))
	masses := make([]*Mass, 10)
	for i := range masses {
		masses[i] = randomMass(rng, f)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CombineAll(masses...); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDiscount(t *testing.T) {
	f := MustFrame("A", "B", "C")
	a, _ := f.Hypothesis("A")
	m, err := SimpleSupport(f, a, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	// alpha=1 is the identity.
	same, err := Discount(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := same.Belief(a); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("Discount(m,1) belief %g, want 0.8", got)
	}
	// alpha=0 is total ignorance.
	vac, err := Discount(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := vac.Unknown(); math.Abs(got-1) > 1e-12 {
		t.Errorf("Discount(m,0) unknown %g, want 1", got)
	}
	// Intermediate alpha scales belief and shifts the rest to Θ.
	half, err := Discount(m, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := half.Belief(a); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("Discount(m,0.5) belief %g, want 0.4", got)
	}
	if got := half.Unknown(); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("Discount(m,0.5) unknown %g, want 0.6", got)
	}
	if err := half.Validate(1e-12); err != nil {
		t.Errorf("discounted mass invalid: %v", err)
	}
	for _, bad := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := Discount(m, bad); err == nil {
			t.Errorf("Discount with alpha %g should error", bad)
		}
	}
}

// TestDiscountMonotone: as alpha falls, belief never rises and unknown never
// falls — the graceful-degradation invariant staleness discounting rests on.
func TestDiscountMonotone(t *testing.T) {
	f := MustFrame("A", "B", "C")
	a, _ := f.Hypothesis("A")
	rng := rand.New(rand.NewSource(42))
	m := randomMass(rng, f)
	prevBel, prevUnk := m.Belief(a), m.Unknown()
	for alpha := 0.95; alpha >= -0.001; alpha -= 0.05 {
		d, err := Discount(m, math.Max(alpha, 0))
		if err != nil {
			t.Fatal(err)
		}
		if b := d.Belief(a); b > prevBel+1e-12 {
			t.Fatalf("belief rose from %g to %g at alpha %g", prevBel, b, alpha)
		} else {
			prevBel = b
		}
		if u := d.Unknown(); u < prevUnk-1e-12 {
			t.Fatalf("unknown fell from %g to %g at alpha %g", prevUnk, u, alpha)
		} else {
			prevUnk = u
		}
	}
}
