package dc

import (
	"fmt"
	"math"
	"sort"
)

// GuardConfig parametrizes the DC's raw sensor-channel guards. The §5.5
// reports already carry believability factors for conclusions; the guards
// extend the idea one level down: a conclusion computed from a channel that
// is behaving like a broken sensor — stuck, dropped out, or spiking — gets
// its believability capped at the source, and the channel is flagged in the
// report so the PDME can show maintenance personnel why.
type GuardConfig struct {
	// StuckFrames is how many consecutive identical (or flat) observations
	// mark a channel stuck (0: DefaultStuckFrames).
	StuckFrames int
	// FlatEpsilon is the peak-to-peak amplitude below which a vibration
	// frame counts as flat — a live accelerometer on running machinery is
	// never this quiet (0: DefaultFlatEpsilon).
	FlatEpsilon float64
	// DropoutFraction is the fraction of exactly-zero samples beyond which
	// a frame counts as dropped out (0: DefaultDropoutFraction).
	DropoutFraction float64
	// SpikeFactor is the multiple of the frame RMS beyond which a sample is
	// an impossible excursion (0: DefaultSpikeFactor). Real bearing impacts
	// produce crest factors of single digits; a loose connector produces
	// isolated full-scale hits far beyond that.
	SpikeFactor float64
	// BelievabilityCap is the maximum Belief a report derived from a
	// suspect channel may carry (0: DefaultBelievabilityCap).
	BelievabilityCap float64
}

// Defaults for GuardConfig's zero values.
const (
	DefaultStuckFrames      = 3
	DefaultFlatEpsilon      = 1e-9
	DefaultDropoutFraction  = 0.25
	DefaultSpikeFactor      = 25.0
	DefaultBelievabilityCap = 0.2
)

func (c *GuardConfig) applyDefaults() {
	if c.StuckFrames <= 0 {
		c.StuckFrames = DefaultStuckFrames
	}
	if c.FlatEpsilon <= 0 {
		c.FlatEpsilon = DefaultFlatEpsilon
	}
	if c.DropoutFraction <= 0 {
		c.DropoutFraction = DefaultDropoutFraction
	}
	if c.SpikeFactor <= 0 {
		c.SpikeFactor = DefaultSpikeFactor
	}
	if c.BelievabilityCap <= 0 {
		c.BelievabilityCap = DefaultBelievabilityCap
	}
}

// channelState is the guard's per-channel history.
type channelState struct {
	// fingerprint summarizes the last observation (frame statistics or
	// scalar value); repeats count toward stuck-at.
	fingerprint [3]float64
	hasPrint    bool
	repeats     int
	// everChanged records whether the channel has ever produced two
	// different observations. Scalar stuck-at detection only arms after
	// variation: a reading that has been constant since boot is
	// indistinguishable from a setpoint or an idle machine.
	everChanged bool
	// suspect is the latest verdict ("" = healthy).
	suspect string
}

// ChannelGuard runs stuck-at, dropout, and spike detection over raw sensor
// channels. It is driven synchronously from the DC's scheduled tasks and is
// not safe for concurrent use (the DC is single-threaded by design).
type ChannelGuard struct {
	cfg      GuardConfig
	channels map[string]*channelState
}

// NewChannelGuard builds a guard; zero config fields take defaults.
func NewChannelGuard(cfg GuardConfig) *ChannelGuard {
	cfg.applyDefaults()
	return &ChannelGuard{cfg: cfg, channels: make(map[string]*channelState)}
}

func (g *ChannelGuard) state(channel string) *channelState {
	st, ok := g.channels[channel]
	if !ok {
		st = &channelState{}
		g.channels[channel] = st
	}
	return st
}

// observe folds one fingerprint into a channel's stuck-at history and
// returns how many consecutive identical observations it has seen.
func (st *channelState) observe(fp [3]float64) int {
	if st.hasPrint && fp == st.fingerprint {
		st.repeats++
	} else {
		if st.hasPrint {
			st.everChanged = true
		}
		st.repeats = 1
	}
	st.fingerprint = fp
	st.hasPrint = true
	return st.repeats
}

// InspectFrame screens one vibration frame and records the verdict for the
// channel. It returns the suspicion reason ("" when the frame looks like a
// live sensor).
func (g *ChannelGuard) InspectFrame(channel string, frame []float64) string {
	st := g.state(channel)
	verdict := g.frameVerdict(st, frame)
	st.suspect = verdict
	return verdict
}

func (g *ChannelGuard) frameVerdict(st *channelState, frame []float64) string {
	if len(frame) == 0 {
		return "dropout: empty frame"
	}
	min, max := frame[0], frame[0]
	var sumSq float64
	zeros := 0
	for _, v := range frame {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return "invalid: non-finite sample"
		}
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		sumSq += v * v
		if v == 0 {
			zeros++
		}
	}
	if frac := float64(zeros) / float64(len(frame)); frac >= g.cfg.DropoutFraction {
		return fmt.Sprintf("dropout: %.0f%% zero samples", frac*100)
	}
	if max-min < g.cfg.FlatEpsilon {
		if st.observe([3]float64{min, max, sumSq}) >= g.cfg.StuckFrames {
			return "stuck-at: flatlined frame"
		}
		return ""
	}
	// Stuck-at on a live-looking signal: the exact same frame statistics
	// repeating means the acquisition path is replaying one buffer.
	if st.observe([3]float64{min, max, sumSq}) >= g.cfg.StuckFrames {
		return "stuck-at: identical frame statistics repeating"
	}
	rms := math.Sqrt(sumSq / float64(len(frame)))
	if rms > 0 {
		limit := g.cfg.SpikeFactor * rms
		for _, v := range frame {
			if math.Abs(v) > limit {
				return fmt.Sprintf("spike: excursion beyond %.0fx RMS", g.cfg.SpikeFactor)
			}
		}
	}
	return ""
}

// InspectValue screens one process-scalar observation and records the
// verdict for the channel. Scalars legitimately repeat (a steady plant is
// steady, and setpoint-like channels may be constant forever), so stuck-at
// only arms once the channel has shown variation and then freezes; a
// non-finite reading is always suspect.
func (g *ChannelGuard) InspectValue(channel string, v float64) string {
	st := g.state(channel)
	verdict := ""
	switch {
	case math.IsNaN(v) || math.IsInf(v, 0):
		verdict = "invalid: non-finite reading"
	case st.observe([3]float64{v, 0, 0}) >= g.cfg.StuckFrames && st.everChanged:
		verdict = "stuck-at: constant reading"
	}
	st.suspect = verdict
	return verdict
}

// Suspect returns the channel's latest verdict ("" = healthy or unseen).
func (g *ChannelGuard) Suspect(channel string) string {
	if st, ok := g.channels[channel]; ok {
		return st.suspect
	}
	return ""
}

// Suspects returns every currently suspect channel, sorted.
func (g *ChannelGuard) Suspects() []string {
	var out []string
	for name, st := range g.channels {
		if st.suspect != "" {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Cap returns the believability ceiling for suspect-derived reports.
func (g *ChannelGuard) Cap() float64 { return g.cfg.BelievabilityCap }
