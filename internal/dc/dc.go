package dc

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/chiller"
	"repro/internal/fuzzy"
	"repro/internal/historian"
	"repro/internal/proto"
	"repro/internal/relstore"
	"repro/internal/sbfr"
	"repro/internal/vibration"
	"repro/internal/wnn"
)

// Source is the plant the DC instruments. chiller.Plant satisfies it.
type Source interface {
	AcquireVibration(pt chiller.MeasurementPoint, n int) ([]float64, error)
	ProcessState() chiller.ProcessState
	Load() float64
	Config() chiller.Config
}

// Config parametrizes a Data Concentrator.
type Config struct {
	// ID is the DC identifier carried in every report (§5.5 "DC ID").
	ID string
	// ObjectID is the sensed object the DC monitors (OOSM id string).
	ObjectID string
	// FrameLen is the vibration acquisition length per measurement point.
	FrameLen int
	// VibrationInterval is the standard vibration test period.
	VibrationInterval time.Duration
	// ProcessInterval is the process-scan (fuzzy diagnostics) period.
	ProcessInterval time.Duration
	// CallThreshold is the minimum severity that generates a report.
	CallThreshold float64
	// Start is the initial virtual time.
	Start time.Time
	// EnableSBFR activates the SBFR process monitor (§5.8's "state based
	// feature recognition routines to collect and analyze process
	// variables") as a third knowledge source.
	EnableSBFR bool
	// SBFRInterval is the process-channel sampling period for the SBFR
	// monitor. New normalizes zero/negative to DefaultSBFRInterval.
	SBFRInterval time.Duration
	// Historian receives every acquisition's feature scalars, process-scan
	// vector, and SBFR status transition. Nil means the DC opens a private
	// in-memory store (use dc.Historian() to query it).
	Historian *historian.Store
	// HistorianRetention bounds per-channel history age (0 = keep all).
	HistorianRetention time.Duration
	// HeartbeatInterval schedules fleet-health heartbeats announcing
	// liveness, spool depth, and per-suite last-run info to the PDME's
	// health registry (0 disables; heartbeats also require an uplink that
	// implements HeartbeatUplink).
	HeartbeatInterval time.Duration
	// Guard parametrizes the raw sensor-channel guards; the zero value
	// takes defaults. Guards always run — they are cheap and silent on
	// healthy channels.
	Guard GuardConfig
}

// HeartbeatUplink is the optional uplink capability behind fleet-health
// heartbeats. uplink.Uplink implements it; a bare proto.Sink does not, and
// the DC then simply never emits heartbeats.
type HeartbeatUplink interface {
	SendHeartbeat(*proto.Heartbeat) error
}

// DefaultSBFRInterval is the documented SBFR process-channel sampling
// period — the single place the 5-minute default lives.
const DefaultSBFRInterval = 5 * time.Minute

// DefaultConfig returns lab-prototype settings: vibration tests every four
// hours, process scans every thirty minutes.
func DefaultConfig(id, objectID string) Config {
	return Config{
		ID:                id,
		ObjectID:          objectID,
		FrameLen:          16384,
		VibrationInterval: 4 * time.Hour,
		ProcessInterval:   30 * time.Minute,
		SBFRInterval:      DefaultSBFRInterval,
		CallThreshold:     0.15,
		Start:             time.Date(1998, 8, 1, 0, 0, 0, 0, time.UTC),
	}
}

// DC is one Data Concentrator instance.
type DC struct {
	cfg    Config
	src    Source
	db     *relstore.DB
	uplink proto.Sink
	vib    *vibration.Engine
	fz     *fuzzy.ChillerDiagnostics
	mux    *Mux
	sched  *Scheduler

	// sbfrSys is the optional SBFR process monitor (Config.EnableSBFR).
	sbfrSys *sbfr.System
	// wnnClf is the optional wavelet neural network source (AttachWNN).
	wnnClf *wnn.ChillerClassifier

	// hist is the acquisition historian; ownHist marks a private in-memory
	// store the DC must close itself.
	hist    *historian.Store
	ownHist bool
	// sbfrStatus remembers each SBFR machine's last recorded status so only
	// transitions are appended.
	sbfrStatus map[string]float64

	// guard screens raw channels for stuck-at/dropout/spike behavior.
	guard *ChannelGuard

	reportsSent     int
	reportErrors    int
	sbfrScans       int
	heartbeatsSent  int
	heartbeatErrors int
}

// heartbeatTask is the scheduler name of the fleet-health heartbeat.
const heartbeatTask = "heartbeat"

const (
	measurementsTable = "dc_measurements"
	reportsTable      = "dc_condition_reports"
)

// New builds a DC over a plant source, a database (its schema is created if
// absent), and an uplink sink. Pass relstore.NewMemory() for a volatile lab
// DC or relstore.Open(path) for the shipboard configuration.
func New(cfg Config, src Source, db *relstore.DB, uplink proto.Sink) (*DC, error) {
	if cfg.ID == "" || cfg.ObjectID == "" {
		return nil, fmt.Errorf("dc: missing ID or ObjectID")
	}
	if cfg.FrameLen < 1024 {
		return nil, fmt.Errorf("dc: frame length %d too short", cfg.FrameLen)
	}
	if cfg.VibrationInterval <= 0 || cfg.ProcessInterval <= 0 {
		return nil, fmt.Errorf("dc: non-positive test interval")
	}
	if src == nil || db == nil || uplink == nil {
		return nil, fmt.Errorf("dc: nil source, db, or uplink")
	}
	if cfg.SBFRInterval <= 0 {
		cfg.SBFRInterval = DefaultSBFRInterval
	}
	fz, err := fuzzy.NewChillerDiagnostics()
	if err != nil {
		return nil, err
	}
	d := &DC{
		cfg:        cfg,
		src:        src,
		db:         db,
		uplink:     uplink,
		vib:        vibration.NewEngine(src.Config(), cfg.CallThreshold),
		fz:         fz,
		mux:        NewMux(),
		sched:      NewScheduler(cfg.Start),
		hist:       cfg.Historian,
		sbfrStatus: make(map[string]float64),
		guard:      NewChannelGuard(cfg.Guard),
	}
	if d.hist == nil {
		d.hist, err = historian.Open(historian.Options{})
		if err != nil {
			return nil, err
		}
		d.ownHist = true
	}
	if err := d.ensureHistorianChannels(); err != nil {
		return nil, err
	}
	if err := db.EnsureTable(relstore.Schema{
		Name: measurementsTable,
		Columns: []relstore.Column{
			{Name: "point", Type: relstore.String, Indexed: true},
			{Name: "rms", Type: relstore.Float},
			{Name: "crest", Type: relstore.Float},
			{Name: "kurtosis", Type: relstore.Float},
			{Name: "taken_at", Type: relstore.Time},
		},
	}); err != nil {
		return nil, err
	}
	if err := db.EnsureTable(relstore.Schema{
		Name: reportsTable,
		Columns: []relstore.Column{
			{Name: "condition", Type: relstore.String, Indexed: true},
			{Name: "source", Type: relstore.String},
			{Name: "severity", Type: relstore.Float},
			{Name: "belief", Type: relstore.Float},
			{Name: "issued_at", Type: relstore.Time},
			{Name: "delivered", Type: relstore.Bool},
		},
	}); err != nil {
		return nil, err
	}
	if err := d.sched.Schedule(&Task{
		Name: "vibration-test", Interval: cfg.VibrationInterval, Run: d.RunVibrationTest,
	}, 0); err != nil {
		return nil, err
	}
	if err := d.sched.Schedule(&Task{
		Name: "process-scan", Interval: cfg.ProcessInterval, Run: d.RunProcessScan,
	}, 0); err != nil {
		return nil, err
	}
	if cfg.EnableSBFR {
		d.sbfrSys, err = newProcessMonitor()
		if err != nil {
			return nil, err
		}
		if err := d.sched.Schedule(&Task{
			Name: "sbfr-scan", Interval: cfg.SBFRInterval, Run: d.RunSBFRScan,
		}, 0); err != nil {
			return nil, err
		}
	}
	if cfg.HeartbeatInterval > 0 {
		if err := d.sched.Schedule(&Task{
			Name: heartbeatTask, Interval: cfg.HeartbeatInterval, Run: d.sendHeartbeat,
		}, 0); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// SetUplink swaps the report sink, e.g. after restarting an uplink process
// in fault-injection tests. The DC is single-threaded (virtual-time
// scheduler), so call it only between RunFor advances.
func (d *DC) SetUplink(s proto.Sink) error {
	if s == nil {
		return fmt.Errorf("dc: nil uplink")
	}
	d.uplink = s
	return nil
}

// sendHeartbeat is the scheduled fleet-health task: it announces liveness
// and per-suite last-run info through the uplink. Delivery failure is the
// health signal itself, so it never aborts the scheduler run.
func (d *DC) sendHeartbeat(now time.Time) error {
	hu, ok := d.uplink.(HeartbeatUplink)
	if !ok {
		return nil
	}
	sts := d.sched.Statuses()
	suites := make([]proto.SuiteStatus, 0, len(sts))
	for _, st := range sts {
		if st.Name == heartbeatTask {
			continue
		}
		suites = append(suites, proto.SuiteStatus{Name: st.Name, LastRun: st.LastRun, Runs: st.Runs})
	}
	if err := hu.SendHeartbeat(&proto.Heartbeat{DCID: d.cfg.ID, SentAt: now, Suites: suites}); err != nil {
		d.heartbeatErrors++
		return nil
	}
	d.heartbeatsSent++
	return nil
}

// HeartbeatsSent returns how many heartbeats were handed to the uplink.
func (d *DC) HeartbeatsSent() int { return d.heartbeatsSent }

// Guard exposes the DC's sensor-channel guard for inspection.
func (d *DC) Guard() *ChannelGuard { return d.guard }

// AttachWNN installs a trained wavelet neural network classifier as an
// additional knowledge source; it runs on the same frames as the scheduled
// vibration test. Training is the caller's job (wnn.NewChillerClassifier)
// because it is expensive relative to DC construction. The classifier's
// frame length must match the DC's.
func (d *DC) AttachWNN(clf *wnn.ChillerClassifier) error {
	if clf == nil {
		return fmt.Errorf("dc: nil classifier")
	}
	if clf.FrameLen() != d.cfg.FrameLen {
		return fmt.Errorf("dc: classifier trained on %d-sample frames, DC acquires %d",
			clf.FrameLen(), d.cfg.FrameLen)
	}
	d.wnnClf = clf
	return nil
}

// Scheduler exposes the DC's event scheduler so callers can add tasks (e.g.
// a degradation advance for long-horizon simulations) or drive time.
func (d *DC) Scheduler() *Scheduler { return d.sched }

// Mux exposes the acquisition front end.
func (d *DC) Mux() *Mux { return d.mux }

// RunFor advances the DC's virtual clock by the duration, executing every
// scheduled test that falls due.
func (d *DC) RunFor(dur time.Duration) error {
	return d.sched.RunUntil(d.sched.Now().Add(dur))
}

// RunVibrationTest performs the standard §5.8 vibration test: acquire every
// measurement point through the MUX, store waveform statistics, run the
// expert system, persist and uplink the resulting condition reports.
func (d *DC) RunVibrationTest(now time.Time) error {
	features := make(map[chiller.MeasurementPoint]*vibration.Features, chiller.NumPoints)
	type wnnCall struct {
		pt  chiller.MeasurementPoint
		cls wnn.Classification
	}
	var wnnCalls []wnnCall
	suspects := make(map[chiller.MeasurementPoint]string)
	for i, pt := range chiller.AllPoints() {
		// Each point occupies one MUX lane of bank i/bankSize.
		if err := d.mux.SelectBank(i / d.mux.BankSize()); err != nil {
			return err
		}
		frame, err := d.src.AcquireVibration(pt, d.cfg.FrameLen)
		if err != nil {
			return err
		}
		if reason := d.guard.InspectFrame(vibGuardChannel(pt), frame); reason != "" {
			suspects[pt] = reason
		}
		if _, _, err := d.mux.Ingest(i%d.mux.BankSize(), frame); err != nil {
			return err
		}
		f, err := vibration.Extract(frame, d.src.Config(), pt)
		if err != nil {
			return err
		}
		features[pt] = f
		if err := d.recordVibrationFeatures(pt, f, now); err != nil {
			return err
		}
		if d.wnnClf != nil {
			cls, err := d.wnnClf.Classify(frame, pt)
			if err != nil {
				return err
			}
			// Only confident fault calls become reports; the WNN abstains
			// otherwise (§3.1: overlapping sources may disagree — that is
			// Knowledge Fusion's job to arbitrate, not the DC's).
			if !cls.Healthy && cls.Confidence >= 0.6 {
				wnnCalls = append(wnnCalls, wnnCall{pt: pt, cls: cls})
			}
		}
		if _, err := d.db.Insert(measurementsTable, relstore.Row{
			"point":    pt.String(),
			"rms":      f.OverallRMS,
			"crest":    f.CrestFactor,
			"kurtosis": f.Kurtosis,
			"taken_at": now,
		}); err != nil {
			return err
		}
	}
	ctx := &vibration.Context{Load: d.src.Load(), Process: d.src.ProcessState()}
	diags, err := d.vib.Diagnose(features, ctx)
	if err != nil {
		return err
	}
	for _, diag := range diags {
		report := diag.ToReport(d.cfg.ID, "ks/dli", d.cfg.ObjectID, now)
		if reason, ok := suspects[diag.Point]; ok {
			d.quarantineReport(report, vibGuardChannel(diag.Point), reason)
		}
		if err := d.emit(report, now); err != nil {
			return err
		}
	}
	for _, call := range wnnCalls {
		sev := 0.3 + 0.4*call.cls.Confidence // classifier gives class, not magnitude
		report := &proto.Report{
			DCID:               d.cfg.ID,
			KnowledgeSourceID:  "ks/wnn",
			SensedObjectID:     d.cfg.ObjectID,
			MachineConditionID: call.cls.Fault.String(),
			Severity:           sev,
			Belief:             0.8 * call.cls.Confidence,
			Explanation: fmt.Sprintf("WNN classification at %s, confidence %.2f",
				call.pt, call.cls.Confidence),
			Timestamp:   now,
			Prognostics: vibration.WorstCasePrognostic(proto.GradeSeverity(sev), sev),
		}
		if reason, ok := suspects[call.pt]; ok {
			d.quarantineReport(report, vibGuardChannel(call.pt), reason)
		}
		if err := d.emit(report, now); err != nil {
			return err
		}
	}
	return nil
}

// vibGuardChannel names a measurement point's raw acquisition channel for
// the guard and report annotations.
func vibGuardChannel(pt chiller.MeasurementPoint) string { return "vib/" + pt.String() }

// quarantineReport caps a report's believability because it derives from a
// suspect raw channel, and flags the channel so the PDME can explain the
// weak belief to maintenance personnel.
func (d *DC) quarantineReport(r *proto.Report, channel, reason string) {
	if r.Belief > d.guard.Cap() {
		r.Belief = d.guard.Cap()
	}
	r.SuspectChannels = append(r.SuspectChannels, channel)
	note := fmt.Sprintf("channel %s suspect (%s); believability capped", channel, reason)
	if r.AdditionalInfo != "" {
		r.AdditionalInfo += "; "
	}
	r.AdditionalInfo += note
}

// RunProcessScan performs the fuzzy process-parameter diagnosis.
func (d *DC) RunProcessScan(now time.Time) error {
	ps := d.src.ProcessState()
	if err := d.recordProcessScan(ps, now); err != nil {
		return err
	}
	// Screen every process scalar; fuzzy conclusions draw on the whole
	// vector, so any suspect channel quarantines the scan's reports.
	scalars := ProcessScalars(ps)
	fields := make([]string, 0, len(scalars))
	for f := range scalars {
		fields = append(fields, f)
	}
	sort.Strings(fields)
	type suspectChan struct{ channel, reason string }
	var procSuspects []suspectChan
	for _, f := range fields {
		ch := ProcChannel(f)
		if reason := d.guard.InspectValue(ch, scalars[f]); reason != "" {
			procSuspects = append(procSuspects, suspectChan{channel: ch, reason: reason})
		}
	}
	results, err := d.fz.Diagnose(ps, d.cfg.CallThreshold)
	if err != nil {
		return err
	}
	for _, r := range results {
		report := r.ToReport(d.cfg.ID, d.cfg.ObjectID, now)
		for _, s := range procSuspects {
			d.quarantineReport(report, s.channel, s.reason)
		}
		if err := d.emit(report, now); err != nil {
			return err
		}
	}
	return nil
}

// emit persists a report locally then delivers it upstream, recording
// delivery status — the DC database is the ship-side audit log when the
// network is down (§4.9).
func (d *DC) emit(r *proto.Report, now time.Time) error {
	delivered := true
	if err := d.uplink.Deliver(r); err != nil {
		delivered = false
		d.reportErrors++
	} else {
		d.reportsSent++
	}
	_, err := d.db.Insert(reportsTable, relstore.Row{
		"condition": r.MachineConditionID,
		"source":    r.KnowledgeSourceID,
		"severity":  r.Severity,
		"belief":    r.Belief,
		"issued_at": now,
		"delivered": delivered,
	})
	return err
}

// Historian exposes the DC's acquisition history store.
func (d *DC) Historian() *historian.Store { return d.hist }

// SBFRScans returns how many SBFR scan cycles have executed.
func (d *DC) SBFRScans() int { return d.sbfrScans }

// Close releases DC-owned resources: the private historian, if the DC
// opened one. Caller-supplied historians are the caller's to close.
func (d *DC) Close() error {
	if d.ownHist {
		return d.hist.Close()
	}
	return nil
}

// ReportsSent returns how many reports were delivered upstream.
func (d *DC) ReportsSent() int { return d.reportsSent }

// ReportErrors returns how many uplink deliveries failed.
func (d *DC) ReportErrors() int { return d.reportErrors }

// Measurements returns stored measurement rows for a point.
func (d *DC) Measurements(pt chiller.MeasurementPoint) ([]relstore.Row, error) {
	return d.db.Select(measurementsTable, relstore.Eq("point", pt.String()), 0)
}

// StoredReports returns locally persisted condition reports, optionally
// filtered by condition ("" for all).
func (d *DC) StoredReports(condition string) ([]relstore.Row, error) {
	if condition == "" {
		return d.db.Select(reportsTable, nil, 0)
	}
	return d.db.Select(reportsTable, relstore.Eq("condition", condition), 0)
}

// IngestThroughput measures the raw acquisition+RMS-detector path: frames
// of frameLen samples pushed through every MUX lane for rounds bank sweeps.
// It returns the total samples processed (the E7 experiment's inner loop).
func (d *DC) IngestThroughput(frameLen, rounds int) (int64, error) {
	frame := make([]float64, frameLen)
	for i := range frame {
		frame[i] = float64(i%7) * 0.1
	}
	var samples int64
	for r := 0; r < rounds; r++ {
		for b := 0; b < d.mux.Banks(); b++ {
			if err := d.mux.SelectBank(b); err != nil {
				return samples, err
			}
			for lane := 0; lane < d.mux.BankSize(); lane++ {
				if _, _, err := d.mux.Ingest(lane, frame); err != nil {
					return samples, err
				}
				samples += int64(frameLen)
			}
		}
	}
	return samples, nil
}
