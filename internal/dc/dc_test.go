package dc

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/chiller"
	"repro/internal/proto"
	"repro/internal/relstore"
)

// collector is a Sink recording everything delivered.
type collector struct {
	mu      sync.Mutex
	reports []*proto.Report
	fail    bool
}

func (c *collector) Deliver(r *proto.Report) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fail {
		return fmt.Errorf("uplink down")
	}
	c.reports = append(c.reports, r)
	return nil
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.reports)
}

func (c *collector) byCondition(cond string) []*proto.Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*proto.Report
	for _, r := range c.reports {
		if r.MachineConditionID == cond {
			out = append(out, r)
		}
	}
	return out
}

func newTestDC(t testing.TB, faults map[chiller.Fault]float64) (*DC, *chiller.Plant, *collector) {
	t.Helper()
	cfg := chiller.DefaultConfig()
	cfg.Seed = 31
	plant, err := chiller.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for f, s := range faults {
		if err := plant.SetFault(f, s); err != nil {
			t.Fatal(err)
		}
	}
	sink := &collector{}
	d, err := New(DefaultConfig("dc-1", "chiller/1"), plant, relstore.NewMemory(), sink)
	if err != nil {
		t.Fatal(err)
	}
	return d, plant, sink
}

func TestSchedulerOrderAndPeriodicity(t *testing.T) {
	start := time.Date(1998, 8, 1, 0, 0, 0, 0, time.UTC)
	s := NewScheduler(start)
	var order []string
	add := func(name string, interval, delay time.Duration) {
		if err := s.Schedule(&Task{
			Name: name, Interval: interval,
			Run: func(now time.Time) error {
				order = append(order, fmt.Sprintf("%s@%s", name, now.Sub(start)))
				return nil
			},
		}, delay); err != nil {
			t.Fatal(err)
		}
	}
	add("a", 10*time.Minute, 0)
	add("b", 0, 15*time.Minute) // one-shot
	if err := s.RunUntil(start.Add(30 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	want := []string{"a@0s", "a@10m0s", "b@15m0s", "a@20m0s", "a@30m0s"}
	if len(order) != len(want) {
		t.Fatalf("got %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("event %d: %s, want %s", i, order[i], want[i])
		}
	}
	if s.Pending() != 1 {
		t.Errorf("pending %d (periodic a should remain)", s.Pending())
	}
	if !s.Now().Equal(start.Add(30 * time.Minute)) {
		t.Errorf("clock %v", s.Now())
	}
	// Validation.
	if err := s.Schedule(nil, 0); err == nil {
		t.Error("nil task")
	}
	if err := s.Schedule(&Task{Name: "x", Run: func(time.Time) error { return nil }}, -time.Second); err == nil {
		t.Error("negative delay")
	}
	// Task errors abort.
	if err := s.Schedule(&Task{Name: "boom", Run: func(time.Time) error { return fmt.Errorf("boom") }}, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntil(s.Now().Add(time.Minute)); err == nil {
		t.Error("task error should propagate")
	}
}

func TestSchedulerDeterministicTieBreak(t *testing.T) {
	start := time.Unix(0, 0)
	s := NewScheduler(start)
	var order []string
	for _, name := range []string{"first", "second", "third"} {
		name := name
		if err := s.Schedule(&Task{Name: name, Run: func(time.Time) error {
			order = append(order, name)
			return nil
		}}, time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RunUntil(start.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if order[0] != "first" || order[1] != "second" || order[2] != "third" {
		t.Errorf("tie-break order %v", order)
	}
}

func TestMuxGeometryAndAlarms(t *testing.T) {
	m := NewMux()
	if m.Channels() != 32 || m.Banks() != 8 || m.BankSize() != 4 {
		t.Fatalf("paper geometry: %d channels %d banks", m.Channels(), m.Banks())
	}
	if err := m.SelectBank(7); err != nil {
		t.Fatal(err)
	}
	if m.SelectedBank() != 7 {
		t.Error("selected bank")
	}
	if err := m.SelectBank(8); err == nil {
		t.Error("bank out of range")
	}
	ch, err := m.ChannelOf(3)
	if err != nil || ch != 31 {
		t.Errorf("channel mapping %d %v", ch, err)
	}
	if _, err := m.ChannelOf(4); err == nil {
		t.Error("lane out of range")
	}
	// Alarm latching.
	if err := m.SetAlarmThreshold(31, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := m.SetAlarmThreshold(99, 0.5); err == nil {
		t.Error("threshold channel oob")
	}
	if err := m.SetAlarmThreshold(0, -1); err == nil {
		t.Error("negative threshold")
	}
	quiet := make([]float64, 256)
	loud := make([]float64, 256)
	for i := range loud {
		loud[i] = 2
	}
	if _, alarmed, err := m.Ingest(3, quiet); err != nil || alarmed {
		t.Errorf("quiet frame alarmed=%v err=%v", alarmed, err)
	}
	level, alarmed, err := m.Ingest(3, loud)
	if err != nil || !alarmed {
		t.Errorf("loud frame alarmed=%v err=%v", alarmed, err)
	}
	if level != 2 {
		t.Errorf("rms %g", level)
	}
	// Latched: stays alarmed on quiet frames until cleared.
	if _, alarmed, _ := m.Ingest(3, quiet); !alarmed {
		t.Error("alarm should latch")
	}
	if got := m.AlarmedChannels(); len(got) != 1 || got[0] != 31 {
		t.Errorf("alarmed channels %v", got)
	}
	m.ClearAlarm(31)
	if m.Alarmed(31) {
		t.Error("clear failed")
	}
	if m.Alarmed(-1) || m.Alarmed(99) {
		t.Error("oob alarmed")
	}
}

func TestNewDCValidation(t *testing.T) {
	plant, err := chiller.New(chiller.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	db := relstore.NewMemory()
	sink := &collector{}
	good := DefaultConfig("dc-1", "chiller/1")
	bad := []Config{
		func() Config { c := good; c.ID = ""; return c }(),
		func() Config { c := good; c.ObjectID = ""; return c }(),
		func() Config { c := good; c.FrameLen = 10; return c }(),
		func() Config { c := good; c.VibrationInterval = 0; return c }(),
		func() Config { c := good; c.ProcessInterval = 0; return c }(),
	}
	for i, c := range bad {
		if _, err := New(c, plant, db, sink); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(good, nil, db, sink); err == nil {
		t.Error("nil source")
	}
	if _, err := New(good, plant, nil, sink); err == nil {
		t.Error("nil db")
	}
	if _, err := New(good, plant, db, nil); err == nil {
		t.Error("nil uplink")
	}
}

func TestHealthyRunProducesNoReports(t *testing.T) {
	d, _, sink := newTestDC(t, nil)
	if err := d.RunFor(24 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if sink.count() != 0 {
		t.Fatalf("healthy plant produced %d reports", sink.count())
	}
	// But measurements were stored: 24h/4h = 7 vibration tests (including
	// t=0) × 4 points.
	rows, err := d.Measurements(chiller.MotorDE)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Errorf("stored %d motor-de measurements, want 7", len(rows))
	}
}

func TestFaultyRunEmitsReports(t *testing.T) {
	d, _, sink := newTestDC(t, map[chiller.Fault]float64{
		chiller.MotorImbalance:       0.8,
		chiller.RefrigerantLowCharge: 0.8,
	})
	if err := d.RunFor(8 * time.Hour); err != nil {
		t.Fatal(err)
	}
	imb := sink.byCondition(chiller.MotorImbalance.String())
	if len(imb) == 0 {
		t.Error("no imbalance reports")
	}
	low := sink.byCondition(chiller.RefrigerantLowCharge.String())
	if len(low) == 0 {
		t.Error("no low-charge reports")
	}
	for _, r := range append(imb, low...) {
		if err := r.Validate(); err != nil {
			t.Errorf("invalid report: %v", err)
		}
		if r.DCID != "dc-1" || r.SensedObjectID != "chiller/1" {
			t.Errorf("report identity: %+v", r)
		}
	}
	if d.ReportsSent() != sink.count() {
		t.Errorf("sent counter %d != delivered %d", d.ReportsSent(), sink.count())
	}
	// Local persistence mirrors the stream.
	stored, err := d.StoredReports("")
	if err != nil {
		t.Fatal(err)
	}
	if len(stored) != sink.count() {
		t.Errorf("stored %d != delivered %d", len(stored), sink.count())
	}
	byCond, err := d.StoredReports(chiller.MotorImbalance.String())
	if err != nil || len(byCond) != len(imb) {
		t.Errorf("stored by condition %d want %d", len(byCond), len(imb))
	}
}

func TestUplinkFailureIsRecordedLocally(t *testing.T) {
	d, _, sink := newTestDC(t, map[chiller.Fault]float64{chiller.MotorImbalance: 0.8})
	sink.fail = true
	if err := d.RunFor(4 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if d.ReportErrors() == 0 {
		t.Fatal("no delivery errors recorded")
	}
	if d.ReportsSent() != 0 {
		t.Error("sent counter should be zero")
	}
	stored, err := d.StoredReports("")
	if err != nil {
		t.Fatal(err)
	}
	if len(stored) == 0 {
		t.Fatal("reports must persist locally when the uplink is down")
	}
	for _, row := range stored {
		if row["delivered"] != false {
			t.Error("delivered flag should be false")
		}
	}
}

func TestDegradationScenarioEscalates(t *testing.T) {
	// Attach a degradation profile and verify that reported severity grades
	// escalate over the run — the condition-based maintenance story end to
	// end on one DC.
	d, plant, sink := newTestDC(t, nil)
	deg, err := chiller.NewDegrader(plant, []chiller.DegradationProfile{
		{Fault: chiller.MotorImbalance, OnsetHours: 0, GrowthHours: 72, Shape: chiller.Linear},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Scheduler().Schedule(&Task{
		Name: "degrade", Interval: time.Hour,
		Run: func(time.Time) error { return deg.Advance(1) },
	}, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.RunFor(72 * time.Hour); err != nil {
		t.Fatal(err)
	}
	reports := sink.byCondition(chiller.MotorImbalance.String())
	if len(reports) < 3 {
		t.Fatalf("only %d imbalance reports over degradation run", len(reports))
	}
	first, last := reports[0], reports[len(reports)-1]
	if last.Severity <= first.Severity {
		t.Errorf("severity did not escalate: %.2f -> %.2f", first.Severity, last.Severity)
	}
	if last.Grade() <= first.Grade() {
		t.Errorf("grade did not escalate: %v -> %v", first.Grade(), last.Grade())
	}
}

func TestIngestThroughput(t *testing.T) {
	d, _, _ := newTestDC(t, nil)
	samples, err := d.IngestThroughput(4096, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(4096 * 3 * 32)
	if samples != want {
		t.Errorf("samples %d, want %d", samples, want)
	}
}

func BenchmarkVibrationTest(b *testing.B) {
	cfg := chiller.DefaultConfig()
	plant, err := chiller.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := plant.SetFault(chiller.MotorBearingOuter, 0.5); err != nil {
		b.Fatal(err)
	}
	d, err := New(DefaultConfig("dc-b", "chiller/1"), plant, relstore.NewMemory(), &collector{})
	if err != nil {
		b.Fatal(err)
	}
	now := time.Date(1998, 8, 1, 0, 0, 0, 0, time.UTC)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.RunVibrationTest(now); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIngestPath(b *testing.B) {
	plant, err := chiller.New(chiller.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	d, err := New(DefaultConfig("dc-b", "chiller/1"), plant, relstore.NewMemory(), &collector{})
	if err != nil {
		b.Fatal(err)
	}
	const frameLen = 4096
	b.SetBytes(frameLen * 32 * 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.IngestThroughput(frameLen, 1); err != nil {
			b.Fatal(err)
		}
	}
}
