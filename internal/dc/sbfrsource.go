package dc

import (
	"fmt"
	"time"

	"repro/internal/chiller"
	"repro/internal/proto"
	"repro/internal/sbfr"
)

// The SBFR process monitor is the DC-resident use of State-Based Feature
// Recognition the paper describes: "state based feature recognition
// routines to collect and analyze process variables" (§5.8). Two enhanced
// state machines watch slow process channels for temporally persistent
// excursions — exactly the time-correlation job SBFR was built for — and
// flag their status registers; the DC acts as the §6.3 "other agent" that
// notices a flagged condition, emits a §7 report, and resets the register.

// ProcessMonitorChannels are the process channels the monitor samples.
var ProcessMonitorChannels = []string{"oil_pressure", "evap_pressure"}

// ProcessMonitorSource is the SBFR assembly for the process monitor.
// Thresholds are calibrated to the chiller simulator's healthy envelope
// (oil ≈ 22 psi, suction ≈ 30–36 psi): a reading must stay depressed for
// more than four consecutive samples before a condition is flagged, the
// same debouncing idea as Figure 3's ΔT constraints.
const ProcessMonitorSource = `
# Persistent lubrication-pressure depression: oil whirl precursor.
machine OilPressureLow
  locals 1
  state Watch
    when local.0 > 4 do status.self = 1 goto Alarm
    when in.oil_pressure < 18.5 do local.0 = local.0 + 1 goto Watch
    when in.oil_pressure >= 18.5 do local.0 = 0 goto Watch
  state Alarm
    when status.self == 0 do local.0 = 0 goto Watch

# Persistent suction-pressure depression: refrigerant loss precursor.
machine SuctionLow
  locals 1
  state Watch
    when local.0 > 4 do status.self = 1 goto Alarm
    when in.evap_pressure < 26 do local.0 = local.0 + 1 goto Watch
    when in.evap_pressure >= 26 do local.0 = 0 goto Watch
  state Alarm
    when status.self == 0 do local.0 = 0 goto Watch
`

// machineCondition maps a monitor machine to the §7.2 machine condition it
// reports, with its severity and believability.
var monitorConditions = map[string]struct {
	condition string
	severity  float64
	belief    float64
	explain   string
}{
	"OilPressureLow": {
		condition: chiller.OilWhirl.String(),
		severity:  0.45,
		belief:    0.6,
		explain:   "SBFR: lubrication oil pressure persistently below 18.5 psi (5+ consecutive samples)",
	},
	"SuctionLow": {
		condition: chiller.RefrigerantLowCharge.String(),
		severity:  0.45,
		belief:    0.55,
		explain:   "SBFR: suction pressure persistently below 26 psi (5+ consecutive samples)",
	},
}

// newProcessMonitor assembles the monitor system.
func newProcessMonitor() (*sbfr.System, error) {
	return sbfr.NewSystemFromSource(ProcessMonitorSource, ProcessMonitorChannels)
}

// RunSBFRScan samples the process channels into the SBFR system and emits a
// report for each machine whose status register is flagged, then resets the
// register (the DC is the acknowledging agent).
func (d *DC) RunSBFRScan(now time.Time) error {
	if d.sbfrSys == nil {
		return fmt.Errorf("dc: SBFR monitor not enabled")
	}
	d.sbfrScans++
	ps := d.src.ProcessState()
	if err := d.sbfrSys.Cycle([]float64{ps.OilPressurePSI, ps.EvapPressurePSI}); err != nil {
		return err
	}
	for _, name := range d.sbfrSys.MachineNames() {
		status, err := d.sbfrSys.Status(name)
		if err != nil {
			return err
		}
		if err := d.recordSBFRStatus(name, status, now); err != nil {
			return err
		}
		if status == 0 {
			continue
		}
		mc, ok := monitorConditions[name]
		if !ok {
			return fmt.Errorf("dc: SBFR machine %q has no report mapping", name)
		}
		report := &proto.Report{
			DCID:               d.cfg.ID,
			KnowledgeSourceID:  "ks/sbfr",
			SensedObjectID:     d.cfg.ObjectID,
			MachineConditionID: mc.condition,
			Severity:           mc.severity,
			Belief:             mc.belief,
			Explanation:        mc.explain,
			Timestamp:          now,
			Prognostics:        proto.PrognosticVector{{Probability: 0.4, HorizonSeconds: 60 * 86400}},
		}
		if err := d.emit(report, now); err != nil {
			return err
		}
		if err := d.sbfrSys.SetStatus(name, 0); err != nil {
			return err
		}
	}
	return nil
}
