// Package dc implements the MPROS Data Concentrator (§5.8): "The DC
// software is coordinated by an event scheduler. It coordinates standard
// vibration test[s] including data acquisition and communication of the
// results ... The data is processed and then sent to an expert system
// [which] applies stored rules for each equipment type and derives the
// diagnoses ... Each of the components extract information from and store
// data in the DC database."
//
// The DC owns: a virtual-time event scheduler; a MUX/channel acquisition
// model mirroring the §8 hardware (two 16×4 multiplexer cards with RMS
// alarm detectors feeding a 4-channel DSP card); the analyzer suite
// (vibration rulebook, fuzzy process diagnostics, optional SBFR system);
// a relstore database for measurements, diagnostic results and condition
// reports; and an uplink Sink that carries reports to the PDME.
package dc

import (
	"container/heap"
	"fmt"
	"sort"
	"time"
)

// Task is a scheduled activity.
type Task struct {
	// Name identifies the task in logs and the task table.
	Name string
	// Interval is the repetition period (0 means one-shot).
	Interval time.Duration
	// Run executes the activity at virtual time now.
	Run func(now time.Time) error
}

// TaskStatus is one task's execution record, reported in heartbeats so the
// PDME can see not just that a DC is alive but that its analysis suites are
// actually running.
type TaskStatus struct {
	// Name is the task name.
	Name string
	// LastRun is the virtual time of the most recent execution (zero:
	// never ran).
	LastRun time.Time
	// Runs counts executions.
	Runs int64
}

// Scheduler is a deterministic virtual-time event scheduler. The paper's DC
// runs tests on wall-clock schedules; driving the same queue with virtual
// time lets a month of shipboard operation execute in milliseconds of test
// time. It is not safe for concurrent use.
type Scheduler struct {
	now    time.Time
	queue  eventQueue
	seq    int64
	status map[string]*TaskStatus
}

type event struct {
	at   time.Time
	seq  int64 // tiebreak for deterministic ordering
	task *Task
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// NewScheduler creates a scheduler starting at the given virtual time.
func NewScheduler(start time.Time) *Scheduler {
	s := &Scheduler{now: start, status: make(map[string]*TaskStatus)}
	heap.Init(&s.queue)
	return s
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Time { return s.now }

// Schedule enqueues a task to first run after delay, then repeat at its
// interval (if non-zero).
func (s *Scheduler) Schedule(t *Task, delay time.Duration) error {
	if t == nil || t.Run == nil {
		return fmt.Errorf("dc: nil task")
	}
	if delay < 0 {
		return fmt.Errorf("dc: negative delay")
	}
	s.seq++
	heap.Push(&s.queue, &event{at: s.now.Add(delay), seq: s.seq, task: t})
	return nil
}

// RunUntil executes due tasks in time order until the virtual clock passes
// end. Task errors abort the run. One-shot tasks are dropped after running;
// periodic tasks re-enqueue at their interval.
func (s *Scheduler) RunUntil(end time.Time) error {
	for len(s.queue) > 0 {
		next := s.queue[0]
		if next.at.After(end) {
			break
		}
		heap.Pop(&s.queue)
		s.now = next.at
		if err := next.task.Run(s.now); err != nil {
			return fmt.Errorf("dc: task %q at %v: %w", next.task.Name, s.now, err)
		}
		st, ok := s.status[next.task.Name]
		if !ok {
			st = &TaskStatus{Name: next.task.Name}
			s.status[next.task.Name] = st
		}
		st.LastRun = s.now
		st.Runs++
		if next.task.Interval > 0 {
			s.seq++
			heap.Push(&s.queue, &event{at: s.now.Add(next.task.Interval), seq: s.seq, task: next.task})
		}
	}
	if s.now.Before(end) {
		s.now = end
	}
	return nil
}

// Pending returns the number of queued events.
func (s *Scheduler) Pending() int { return len(s.queue) }

// Statuses returns every executed task's last-run record, sorted by name.
func (s *Scheduler) Statuses() []TaskStatus {
	out := make([]TaskStatus, 0, len(s.status))
	for _, st := range s.status {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
