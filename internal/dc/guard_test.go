package dc

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/chiller"
	"repro/internal/proto"
	"repro/internal/relstore"
)

func sineFrame(n int, amp, phase float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = amp * math.Sin(phase+float64(i)*0.37)
	}
	return out
}

func TestGuardHealthyFramePasses(t *testing.T) {
	g := NewChannelGuard(GuardConfig{})
	for i := 0; i < 10; i++ {
		// Phase drifts: consecutive frames differ like a live sensor's.
		if v := g.InspectFrame("vib/motor-de", sineFrame(2048, 1.0, float64(i))); v != "" {
			t.Fatalf("healthy frame %d flagged: %s", i, v)
		}
	}
	if got := g.Suspects(); len(got) != 0 {
		t.Fatalf("suspects: %v", got)
	}
}

func TestGuardFlatlineStuck(t *testing.T) {
	g := NewChannelGuard(GuardConfig{StuckFrames: 3})
	flat := make([]float64, 1024)
	for i := range flat {
		flat[i] = 2.5 // stuck at a non-zero DC level: not a dropout
	}
	verdicts := make([]string, 0, 3)
	for i := 0; i < 3; i++ {
		verdicts = append(verdicts, g.InspectFrame("ch", flat))
	}
	if verdicts[0] != "" || verdicts[1] != "" {
		t.Fatalf("flagged before threshold: %v", verdicts)
	}
	if !strings.HasPrefix(verdicts[2], "stuck-at") {
		t.Fatalf("third flat frame verdict %q, want stuck-at", verdicts[2])
	}
	// Recovery: one live frame clears the channel.
	if v := g.InspectFrame("ch", sineFrame(1024, 1.0, 0)); v != "" {
		t.Fatalf("live frame still flagged: %s", v)
	}
	if g.Suspect("ch") != "" {
		t.Fatal("channel should have recovered")
	}
}

func TestGuardRepeatedFrameStuck(t *testing.T) {
	// A live-looking waveform replayed identically is a stuck acquisition
	// path even though it is not flat.
	g := NewChannelGuard(GuardConfig{StuckFrames: 3})
	frame := sineFrame(2048, 1.0, 0.5)
	var last string
	for i := 0; i < 3; i++ {
		last = g.InspectFrame("ch", frame)
	}
	if !strings.HasPrefix(last, "stuck-at") {
		t.Fatalf("replayed frame verdict %q, want stuck-at", last)
	}
}

func TestGuardDropout(t *testing.T) {
	g := NewChannelGuard(GuardConfig{})
	frame := sineFrame(1000, 1.0, 0)
	for i := 300; i < 700; i++ { // 40% zeros
		frame[i] = 0
	}
	if v := g.InspectFrame("ch", frame); !strings.HasPrefix(v, "dropout") {
		t.Fatalf("verdict %q, want dropout", v)
	}
	if v := g.InspectFrame("ch", nil); !strings.HasPrefix(v, "dropout") {
		t.Fatalf("empty frame verdict %q, want dropout", v)
	}
}

func TestGuardSpike(t *testing.T) {
	g := NewChannelGuard(GuardConfig{})
	frame := sineFrame(4096, 0.1, 0)
	frame[100] = 50 // ~700x the RMS: a connector hit, not machinery
	if v := g.InspectFrame("ch", frame); !strings.HasPrefix(v, "spike") {
		t.Fatalf("verdict %q, want spike", v)
	}
	nan := sineFrame(1024, 1.0, 0)
	nan[5] = math.NaN()
	if v := g.InspectFrame("ch", nan); !strings.HasPrefix(v, "invalid") {
		t.Fatalf("verdict %q, want invalid", v)
	}
}

func TestGuardScalarStuck(t *testing.T) {
	g := NewChannelGuard(GuardConfig{StuckFrames: 3})
	// A steady-but-jittering plant reading never trips the guard.
	for i := 0; i < 10; i++ {
		if v := g.InspectValue("proc/evap_temp", 4.2+float64(i%3)*1e-6); v != "" {
			t.Fatalf("jittering scalar flagged: %s", v)
		}
	}
	// A channel constant since boot never trips: it is indistinguishable
	// from a setpoint.
	for i := 0; i < 10; i++ {
		if v := g.InspectValue("proc/setpoint", 7.0); v != "" {
			t.Fatalf("boot-constant scalar flagged: %s", v)
		}
	}
	// A channel that varied and then froze does trip.
	if v := g.InspectValue("proc/cond_pressure", 11.0); v != "" {
		t.Fatalf("first reading flagged: %s", v)
	}
	var last string
	for i := 0; i < 3; i++ {
		last = g.InspectValue("proc/cond_pressure", 11.25)
	}
	if !strings.HasPrefix(last, "stuck-at") {
		t.Fatalf("frozen scalar verdict %q, want stuck-at", last)
	}
	if v := g.InspectValue("proc/flow", math.Inf(1)); !strings.HasPrefix(v, "invalid") {
		t.Fatalf("verdict %q, want invalid", v)
	}
	if got := g.Suspects(); len(got) != 2 {
		t.Fatalf("suspects %v, want cond_pressure and flow", got)
	}
}

// frozenSource replays the first acquired frame for one measurement point
// forever — a stuck acquisition path in front of a genuinely faulty machine.
type frozenSource struct {
	Source
	pt     chiller.MeasurementPoint
	cached []float64
}

func (f *frozenSource) AcquireVibration(pt chiller.MeasurementPoint, n int) ([]float64, error) {
	if pt != f.pt {
		return f.Source.AcquireVibration(pt, n)
	}
	if f.cached == nil {
		frame, err := f.Source.AcquireVibration(pt, n)
		if err != nil {
			return nil, err
		}
		f.cached = frame
	}
	return append([]float64(nil), f.cached...), nil
}

func TestStuckChannelQuarantinesReports(t *testing.T) {
	cfg := chiller.DefaultConfig()
	cfg.Seed = 31
	plant, err := chiller.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := plant.SetFault(chiller.MotorImbalance, 0.8); err != nil {
		t.Fatal(err)
	}
	src := &frozenSource{Source: plant, pt: chiller.MotorDE}
	sink := &collector{}
	d, err := New(DefaultConfig("dc-1", "chiller/1"), src, relstore.NewMemory(), sink)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	// Vibration tests run every 4h; three runs arm the stuck detector.
	if err := d.RunFor(16 * time.Hour); err != nil {
		t.Fatal(err)
	}
	imb := sink.byCondition(chiller.MotorImbalance.String())
	if len(imb) == 0 {
		t.Fatal("no imbalance reports")
	}
	var clean, quarantined []*proto.Report
	for _, r := range imb {
		if len(r.SuspectChannels) > 0 {
			quarantined = append(quarantined, r)
		} else {
			clean = append(clean, r)
		}
	}
	if len(clean) == 0 {
		t.Error("early reports (before the detector arms) should be clean")
	}
	if len(quarantined) == 0 {
		t.Fatal("no quarantined reports after the channel froze")
	}
	cap := d.Guard().Cap()
	for _, r := range quarantined {
		if r.Belief > cap {
			t.Errorf("quarantined belief %g exceeds cap %g", r.Belief, cap)
		}
		if r.SuspectChannels[0] != "vib/motor-de" {
			t.Errorf("suspect channels %v", r.SuspectChannels)
		}
		if !strings.Contains(r.AdditionalInfo, "suspect") {
			t.Errorf("additional info lacks explanation: %q", r.AdditionalInfo)
		}
		if err := r.Validate(); err != nil {
			t.Errorf("quarantined report invalid: %v", err)
		}
	}
	if got := d.Guard().Suspects(); len(got) != 1 || got[0] != "vib/motor-de" {
		t.Errorf("guard suspects %v", got)
	}
}

// hbRecorder implements HeartbeatUplink plus proto.Sink.
type hbRecorder struct {
	collector
	hbs []*proto.Heartbeat
}

func (h *hbRecorder) SendHeartbeat(hb *proto.Heartbeat) error {
	h.hbs = append(h.hbs, hb)
	return nil
}

func TestDCHeartbeatTask(t *testing.T) {
	cfg := chiller.DefaultConfig()
	cfg.Seed = 31
	plant, err := chiller.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sink := &hbRecorder{}
	dcfg := DefaultConfig("dc-1", "chiller/1")
	dcfg.HeartbeatInterval = time.Hour
	d, err := New(dcfg, plant, relstore.NewMemory(), sink)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.RunFor(4 * time.Hour); err != nil {
		t.Fatal(err)
	}
	// t=0,1h,2h,3h,4h inclusive.
	if len(sink.hbs) != 5 || d.HeartbeatsSent() != 5 {
		t.Fatalf("heartbeats %d / counter %d, want 5", len(sink.hbs), d.HeartbeatsSent())
	}
	last := sink.hbs[len(sink.hbs)-1]
	if last.DCID != "dc-1" {
		t.Errorf("heartbeat DCID %q", last.DCID)
	}
	if !last.SentAt.Equal(dcfg.Start.Add(4 * time.Hour)) {
		t.Errorf("heartbeat SentAt %v", last.SentAt)
	}
	// Suites reflect scheduler status, excluding the heartbeat task itself.
	names := map[string]proto.SuiteStatus{}
	for _, s := range last.Suites {
		names[s.Name] = s
	}
	if _, ok := names[heartbeatTask]; ok {
		t.Error("heartbeat task should not self-report as a suite")
	}
	vib, ok := names["vibration-test"]
	if !ok || vib.Runs != 2 || !vib.LastRun.Equal(dcfg.Start.Add(4*time.Hour)) {
		t.Errorf("vibration-test suite status %+v", vib)
	}
	// At t=4h the heartbeat fires before the process scan due at the same
	// instant (scheduler seq order), so it reports the 3:30 run.
	if ps, ok := names["process-scan"]; !ok || ps.Runs != 8 {
		t.Errorf("process-scan suite status %+v (want 8 runs seen at the 4h heartbeat)", ps)
	}
}

func TestDCNoHeartbeatWithoutCapability(t *testing.T) {
	// A plain Sink uplink: the heartbeat task is a no-op, not an error.
	cfg := chiller.DefaultConfig()
	cfg.Seed = 31
	plant, err := chiller.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sink := &collector{}
	dcfg := DefaultConfig("dc-1", "chiller/1")
	dcfg.HeartbeatInterval = time.Hour
	d, err := New(dcfg, plant, relstore.NewMemory(), sink)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.RunFor(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if d.HeartbeatsSent() != 0 {
		t.Fatalf("heartbeats sent %d over a non-heartbeat sink", d.HeartbeatsSent())
	}
}

func TestSchedulerStatuses(t *testing.T) {
	s := NewScheduler(time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC))
	runs := 0
	if err := s.Schedule(&Task{Name: "b-task", Interval: time.Hour, Run: func(time.Time) error { runs++; return nil }}, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Schedule(&Task{Name: "a-task", Interval: 2 * time.Hour, Run: func(time.Time) error { return nil }}, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntil(s.Now().Add(3 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	sts := s.Statuses()
	if len(sts) != 2 || sts[0].Name != "a-task" || sts[1].Name != "b-task" {
		t.Fatalf("statuses %+v, want sorted by name", sts)
	}
	if sts[1].Runs != 4 || !sts[1].LastRun.Equal(s.Now()) {
		t.Fatalf("b-task status %+v, want 4 runs ending now", sts[1])
	}
	if sts[0].Runs != 2 {
		t.Fatalf("a-task runs %d, want 2", sts[0].Runs)
	}
}
