package dc

import (
	"fmt"
	"time"

	"repro/internal/chiller"
	"repro/internal/historian"
	"repro/internal/vibration"
)

// The DC's historian channels reproduce the §4.6 data-management layer at
// acquisition rate: every vibration test stores its per-point feature
// scalars, every process scan stores the full process-state vector, and
// the SBFR monitor stores its status-register transitions. The historian
// is what makes the DC's history *queryable* — the relstore tables remain
// the row-oriented audit log.

// Historian channel name helpers. Names are stable API: the replay example
// and downstream consumers reconstruct state from them.
func VibChannel(pt chiller.MeasurementPoint, feature string) string {
	return "vib/" + pt.String() + "/" + feature
}

// ProcChannel names a process-scalar channel.
func ProcChannel(field string) string { return "proc/" + field }

// SBFRChannel names an SBFR machine's status-transition channel.
func SBFRChannel(machine string) string { return "sbfr/" + machine + "/status" }

// VibFeatures are the per-point feature scalars recorded each vibration
// test.
var VibFeatures = []string{"rms", "crest", "kurtosis"}

// ProcFields lists the recorded process scalars in a fixed order.
var ProcFields = []string{
	"evap_pressure", "cond_pressure", "evap_approach", "cond_approach",
	"superheat", "chw_supply", "chw_return", "motor_current",
	"oil_pressure", "oil_temp", "vane_position", "load",
}

// ProcessScalars flattens a process snapshot into the recorded channels.
func ProcessScalars(ps chiller.ProcessState) map[string]float64 {
	return map[string]float64{
		"evap_pressure": ps.EvapPressurePSI,
		"cond_pressure": ps.CondPressurePSI,
		"evap_approach": ps.EvapApproachF,
		"cond_approach": ps.CondApproachF,
		"superheat":     ps.SuperheatF,
		"chw_supply":    ps.ChilledSupplyF,
		"chw_return":    ps.ChilledReturnF,
		"motor_current": ps.MotorCurrentA,
		"oil_pressure":  ps.OilPressurePSI,
		"oil_temp":      ps.OilTempF,
		"vane_position": ps.VanePosition,
		"load":          ps.LoadFraction,
	}
}

// ProcessStateFromScalars rebuilds a process snapshot from recorded
// scalars — the replay path: stored history back through the analyzers.
func ProcessStateFromScalars(vals map[string]float64) (chiller.ProcessState, error) {
	for _, f := range ProcFields {
		if _, ok := vals[f]; !ok {
			return chiller.ProcessState{}, fmt.Errorf("dc: replay scalar %q missing", f)
		}
	}
	return chiller.ProcessState{
		EvapPressurePSI: vals["evap_pressure"],
		CondPressurePSI: vals["cond_pressure"],
		EvapApproachF:   vals["evap_approach"],
		CondApproachF:   vals["cond_approach"],
		SuperheatF:      vals["superheat"],
		ChilledSupplyF:  vals["chw_supply"],
		ChilledReturnF:  vals["chw_return"],
		MotorCurrentA:   vals["motor_current"],
		OilPressurePSI:  vals["oil_pressure"],
		OilTempF:        vals["oil_temp"],
		VanePosition:    vals["vane_position"],
		LoadFraction:    vals["load"],
	}, nil
}

// Rollup tiers per channel family: vibration tests run every few hours, so
// a daily envelope suffices; process scans are sub-hourly, so both hourly
// and daily tiers are kept.
var (
	vibTiers  = []time.Duration{24 * time.Hour}
	procTiers = []time.Duration{time.Hour, 24 * time.Hour}
)

// ensureHistorianChannels registers every channel the DC records.
func (d *DC) ensureHistorianChannels() error {
	for _, pt := range chiller.AllPoints() {
		for _, feat := range VibFeatures {
			if err := d.hist.EnsureChannel(historian.ChannelConfig{
				Name:      VibChannel(pt, feat),
				Retention: d.cfg.HistorianRetention,
				Tiers:     vibTiers,
			}); err != nil {
				return err
			}
		}
	}
	for _, f := range ProcFields {
		if err := d.hist.EnsureChannel(historian.ChannelConfig{
			Name:      ProcChannel(f),
			Retention: d.cfg.HistorianRetention,
			Tiers:     procTiers,
		}); err != nil {
			return err
		}
	}
	return nil
}

// recordVibrationFeatures stores one acquisition's feature scalars.
func (d *DC) recordVibrationFeatures(pt chiller.MeasurementPoint, f *vibration.Features, now time.Time) error {
	for feat, v := range map[string]float64{
		"rms": f.OverallRMS, "crest": f.CrestFactor, "kurtosis": f.Kurtosis,
	} {
		if err := d.hist.Append(VibChannel(pt, feat), now, v); err != nil {
			return err
		}
	}
	return nil
}

// recordProcessScan stores the full process-state vector.
func (d *DC) recordProcessScan(ps chiller.ProcessState, now time.Time) error {
	for f, v := range ProcessScalars(ps) {
		if err := d.hist.Append(ProcChannel(f), now, v); err != nil {
			return err
		}
	}
	return nil
}

// recordSBFRStatus stores a machine's status register whenever it changes
// (transitions only, so the channel stays sparse).
func (d *DC) recordSBFRStatus(machine string, status float64, now time.Time) error {
	//lint:allow floateq SBFR status registers hold exact small integers; change detection must be exact
	if last, ok := d.sbfrStatus[machine]; ok && last == status {
		return nil
	}
	name := SBFRChannel(machine)
	if !d.hist.HasChannel(name) {
		if err := d.hist.EnsureChannel(historian.ChannelConfig{
			Name:      name,
			Retention: d.cfg.HistorianRetention,
		}); err != nil {
			return err
		}
	}
	if err := d.hist.Append(name, now, status); err != nil {
		return err
	}
	d.sbfrStatus[machine] = status
	return nil
}
