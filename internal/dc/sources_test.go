package dc

import (
	"testing"
	"time"

	"repro/internal/chiller"
	"repro/internal/relstore"
	"repro/internal/wnn"
)

func newSBFRDC(t testing.TB, faults map[chiller.Fault]float64) (*DC, *collector) {
	t.Helper()
	cfg := chiller.DefaultConfig()
	cfg.Seed = 77
	plant, err := chiller.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for f, s := range faults {
		if err := plant.SetFault(f, s); err != nil {
			t.Fatal(err)
		}
	}
	sink := &collector{}
	dcCfg := DefaultConfig("dc-sbfr", "chiller/1")
	dcCfg.EnableSBFR = true
	dcCfg.SBFRInterval = time.Minute
	d, err := New(dcCfg, plant, relstore.NewMemory(), sink)
	if err != nil {
		t.Fatal(err)
	}
	return d, sink
}

func TestSBFRScanFlagsOilPressureDrop(t *testing.T) {
	d, sink := newSBFRDC(t, map[chiller.Fault]float64{chiller.OilWhirl: 0.9})
	if err := d.RunFor(time.Hour); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range sink.byCondition(chiller.OilWhirl.String()) {
		if r.KnowledgeSourceID == "ks/sbfr" {
			found = true
			if err := r.Validate(); err != nil {
				t.Error(err)
			}
		}
	}
	if !found {
		t.Fatal("SBFR monitor did not report persistent oil pressure drop")
	}
}

func TestSBFRScanFlagsSuctionDrop(t *testing.T) {
	d, sink := newSBFRDC(t, map[chiller.Fault]float64{chiller.RefrigerantLowCharge: 0.9})
	if err := d.RunFor(time.Hour); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range sink.byCondition(chiller.RefrigerantLowCharge.String()) {
		if r.KnowledgeSourceID == "ks/sbfr" {
			found = true
		}
	}
	if !found {
		t.Fatal("SBFR monitor did not report persistent suction drop")
	}
	// The fuzzy source reports the same condition from the same telemetry —
	// the overlapping-expertise situation KF exists for (§1.1).
	fuzzySaw := false
	for _, r := range sink.byCondition(chiller.RefrigerantLowCharge.String()) {
		if r.KnowledgeSourceID == "ks/fuzzy" {
			fuzzySaw = true
		}
	}
	if !fuzzySaw {
		t.Error("fuzzy source should also report low charge (overlapping sources)")
	}
}

func TestSBFRScanQuietWhenHealthy(t *testing.T) {
	d, sink := newSBFRDC(t, nil)
	if err := d.RunFor(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	for _, r := range sink.reports {
		if r.KnowledgeSourceID == "ks/sbfr" {
			t.Fatalf("healthy plant produced SBFR report: %+v", r)
		}
	}
}

func TestSBFRScanWithoutEnableErrors(t *testing.T) {
	d, _, _ := newTestDC(t, nil)
	if err := d.RunSBFRScan(time.Now()); err == nil {
		t.Fatal("RunSBFRScan without EnableSBFR should error")
	}
}

func TestWNNSourceReports(t *testing.T) {
	if testing.Short() {
		t.Skip("WNN training is slow")
	}
	cfg := chiller.DefaultConfig()
	cfg.Seed = 88
	plant, err := chiller.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := plant.SetFault(chiller.MotorBearingOuter, 0.8); err != nil {
		t.Fatal(err)
	}
	sink := &collector{}
	dcCfg := DefaultConfig("dc-wnn", "chiller/1")
	dcCfg.FrameLen = 4096 // classifier training cost scales with frames
	d, err := New(dcCfg, plant, relstore.NewMemory(), sink)
	if err != nil {
		t.Fatal(err)
	}
	clf, err := wnn.NewChillerClassifier(cfg, 4096, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AttachWNN(clf); err != nil {
		t.Fatal(err)
	}
	// Frame-length mismatch is rejected.
	clfBig, err := wnn.NewChillerClassifier(cfg, 2048, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AttachWNN(clfBig); err == nil {
		t.Error("mismatched frame length accepted")
	}
	if err := d.AttachWNN(nil); err == nil {
		t.Error("nil classifier accepted")
	}

	if err := d.RunFor(12 * time.Hour); err != nil {
		t.Fatal(err)
	}
	wnnReports := 0
	for _, r := range sink.byCondition(chiller.MotorBearingOuter.String()) {
		if r.KnowledgeSourceID == "ks/wnn" {
			wnnReports++
			if err := r.Validate(); err != nil {
				t.Error(err)
			}
		}
	}
	if wnnReports == 0 {
		t.Fatal("WNN source produced no reports for a strong bearing fault")
	}
	// The DLI source reports the same condition: reinforcing sources.
	dliReports := 0
	for _, r := range sink.byCondition(chiller.MotorBearingOuter.String()) {
		if r.KnowledgeSourceID == "ks/dli" {
			dliReports++
		}
	}
	if dliReports == 0 {
		t.Error("DLI source missing — reinforcement scenario incomplete")
	}
}
