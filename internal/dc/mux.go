package dc

import (
	"fmt"

	"repro/internal/dsp"
)

// Mux models the §8 acquisition front end: "Each of the 2 MUX cards can
// switch between 4 sets of 4 channels each yielding up to 32 channels of
// data ... all channels are equipped with an RMS detector which can be
// configure[d] to provide a digital signal when the RMS of the incoming
// signal exceeds a programmed value. This allows for real-time and constant
// alarming for all sensors."
//
// The DSP card digitizes one 4-channel bank at a time; the Mux selects
// banks and runs the per-channel RMS alarm detectors over every frame.
type Mux struct {
	cards           int
	banksPerCard    int
	channelsPerBank int
	thresholds      []float64 // RMS alarm level per absolute channel; 0 = disabled
	selected        int       // currently selected bank (absolute index)
	alarms          []bool
}

// NewMux builds the paper's configuration: 2 cards × 4 banks × 4 channels.
func NewMux() *Mux {
	return NewMuxWith(2, 4, 4)
}

// NewMuxWith builds a custom multiplexer geometry.
func NewMuxWith(cards, banksPerCard, channelsPerBank int) *Mux {
	n := cards * banksPerCard * channelsPerBank
	return &Mux{
		cards:           cards,
		banksPerCard:    banksPerCard,
		channelsPerBank: channelsPerBank,
		thresholds:      make([]float64, n),
		alarms:          make([]bool, n),
	}
}

// Channels returns the total channel count.
func (m *Mux) Channels() int { return len(m.thresholds) }

// Banks returns the number of selectable banks.
func (m *Mux) Banks() int { return m.cards * m.banksPerCard }

// BankSize returns channels per bank (the DSP card width).
func (m *Mux) BankSize() int { return m.channelsPerBank }

// SelectBank switches the DSP card input to the given bank.
func (m *Mux) SelectBank(bank int) error {
	if bank < 0 || bank >= m.Banks() {
		return fmt.Errorf("dc: bank %d out of range (have %d)", bank, m.Banks())
	}
	m.selected = bank
	return nil
}

// SelectedBank returns the active bank.
func (m *Mux) SelectedBank() int { return m.selected }

// ChannelOf maps (selected bank, lane) to the absolute channel index.
func (m *Mux) ChannelOf(lane int) (int, error) {
	if lane < 0 || lane >= m.channelsPerBank {
		return 0, fmt.Errorf("dc: lane %d out of range", lane)
	}
	return m.selected*m.channelsPerBank + lane, nil
}

// SetAlarmThreshold programs an RMS alarm level for an absolute channel
// (0 disables the detector).
func (m *Mux) SetAlarmThreshold(channel int, rms float64) error {
	if channel < 0 || channel >= len(m.thresholds) {
		return fmt.Errorf("dc: channel %d out of range", channel)
	}
	if rms < 0 {
		return fmt.Errorf("dc: negative threshold")
	}
	m.thresholds[channel] = rms
	return nil
}

// Ingest runs the RMS detector for the lane's frame on the selected bank
// and latches an alarm when the level exceeds the channel's threshold.
// It returns the measured RMS and whether the alarm is (now) latched.
func (m *Mux) Ingest(lane int, frame []float64) (float64, bool, error) {
	ch, err := m.ChannelOf(lane)
	if err != nil {
		return 0, false, err
	}
	level := dsp.RMS(frame)
	if th := m.thresholds[ch]; th > 0 && level > th {
		m.alarms[ch] = true
	}
	return level, m.alarms[ch], nil
}

// Alarmed reports whether an absolute channel's alarm is latched.
func (m *Mux) Alarmed(channel int) bool {
	if channel < 0 || channel >= len(m.alarms) {
		return false
	}
	return m.alarms[channel]
}

// ClearAlarm resets a latched alarm.
func (m *Mux) ClearAlarm(channel int) {
	if channel >= 0 && channel < len(m.alarms) {
		m.alarms[channel] = false
	}
}

// AlarmedChannels returns all latched channels.
func (m *Mux) AlarmedChannels() []int {
	var out []int
	for ch, a := range m.alarms {
		if a {
			out = append(out, ch)
		}
	}
	return out
}
