package dc

import (
	"testing"
	"time"

	"repro/internal/chiller"
	"repro/internal/historian"
	"repro/internal/relstore"
)

// TestHistorianRecordsAcquisitions: a day of scheduled operation fills the
// vibration-feature and process-scalar channels at their test rates, and
// the rollup tiers envelope them.
func TestHistorianRecordsAcquisitions(t *testing.T) {
	d, _, _ := newTestDC(t, nil)
	defer d.Close()
	if err := d.RunFor(24 * time.Hour); err != nil {
		t.Fatal(err)
	}
	h := d.Historian()
	// Vibration tests every 4h, inclusive of t=0 and t=24h: 7 acquisitions.
	for _, pt := range chiller.AllPoints() {
		for _, feat := range VibFeatures {
			st, err := h.Stats(VibChannel(pt, feat))
			if err != nil {
				t.Fatal(err)
			}
			if st.Samples != 7 {
				t.Fatalf("%s: %d samples, want 7", VibChannel(pt, feat), st.Samples)
			}
		}
	}
	// Process scans every 30m: 49 samples per scalar.
	for _, f := range ProcFields {
		st, err := h.Stats(ProcChannel(f))
		if err != nil {
			t.Fatal(err)
		}
		if st.Samples != 49 {
			t.Fatalf("%s: %d samples, want 49", ProcChannel(f), st.Samples)
		}
	}
	// Hourly rollups over the oil-pressure channel envelope the raw series.
	rolls, err := h.QueryRollup(ProcChannel("oil_pressure"), time.Hour, time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rolls) == 0 {
		t.Fatal("no hourly rollups for oil_pressure")
	}
	it, err := h.Query(ProcChannel("oil_pressure"), time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	raw := it.Collect()
	var total int
	for _, r := range rolls {
		if r.Min > r.Max || r.Mean() < r.Min || r.Mean() > r.Max {
			t.Fatalf("degenerate rollup %+v", r)
		}
		total += r.Count
	}
	if total != len(raw) {
		t.Fatalf("rollups count %d raw samples, query returns %d", total, len(raw))
	}
}

// TestHistorianRecordsSBFRTransitions: a plant driven into persistent
// oil-pressure depression produces a 0→1 status transition on the
// OilPressureLow channel, and transitions only — consecutive identical
// statuses are not re-recorded.
func TestHistorianRecordsSBFRTransitions(t *testing.T) {
	cfg := chiller.DefaultConfig()
	cfg.Seed = 31
	plant, err := chiller.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := plant.SetFault(chiller.OilWhirl, 0.9); err != nil {
		t.Fatal(err)
	}
	dcfg := DefaultConfig("dc-1", "chiller/1")
	dcfg.EnableSBFR = true
	d, err := New(dcfg, plant, relstore.NewMemory(), &collector{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.RunFor(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	ch := SBFRChannel("OilPressureLow")
	if !d.Historian().HasChannel(ch) {
		t.Fatal("no SBFR status channel recorded")
	}
	it, err := d.Historian().Query(ch, time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	samples := it.Collect()
	if len(samples) < 2 {
		t.Fatalf("want at least a 0→1 transition, got %d samples", len(samples))
	}
	sawFlag := false
	for i, s := range samples {
		if i > 0 && samples[i-1].Value == s.Value {
			t.Fatalf("consecutive identical statuses recorded at %d: %v", i, samples)
		}
		if s.Value == 1 {
			sawFlag = true
		}
	}
	if !sawFlag {
		t.Fatal("status never flagged despite severe oil fault")
	}
}

// TestSharedHistorianAndClose: a caller-supplied store is used directly and
// survives DC.Close; a private store is closed with the DC.
func TestSharedHistorianAndClose(t *testing.T) {
	shared, err := historian.Open(historian.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer shared.Close()
	cfg := chiller.DefaultConfig()
	cfg.Seed = 31
	plant, err := chiller.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dcfg := DefaultConfig("dc-1", "chiller/1")
	dcfg.Historian = shared
	d, err := New(dcfg, plant, relstore.NewMemory(), &collector{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Historian() != shared {
		t.Fatal("DC did not adopt the supplied store")
	}
	if err := d.RunFor(time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Still queryable: Close must not have touched the shared store.
	if _, err := shared.Query(ProcChannel("load"), time.Time{}, time.Time{}); err != nil {
		t.Fatalf("shared store closed by DC: %v", err)
	}

	d2, _, _ := newTestDC(t, nil)
	priv := d2.Historian()
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := priv.Append(ProcChannel("load"), time.Now(), 0.5); err == nil {
		t.Fatal("private store still accepts appends after DC.Close")
	}
}

// TestSBFRIntervalDefault: the documented 5-minute default is applied in
// DefaultConfig AND normalized in New, so a zero-value SBFRInterval can
// never produce a zero-period scheduler tick (which would spin the
// scheduler forever at one instant).
func TestSBFRIntervalDefault(t *testing.T) {
	if got := DefaultConfig("dc-1", "chiller/1").SBFRInterval; got != DefaultSBFRInterval {
		t.Fatalf("DefaultConfig SBFRInterval = %v, want %v", got, DefaultSBFRInterval)
	}
	cfg := chiller.DefaultConfig()
	cfg.Seed = 31
	plant, err := chiller.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dcfg := DefaultConfig("dc-1", "chiller/1")
	dcfg.EnableSBFR = true
	dcfg.SBFRInterval = 0 // hand-built config that skipped the default
	d, err := New(dcfg, plant, relstore.NewMemory(), &collector{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.RunFor(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	// 5-minute period inclusive of both endpoints: exactly 7 scans in 30
	// virtual minutes. A zero-period tick would have run unboundedly; a
	// misapplied default would change the count.
	if d.SBFRScans() != 7 {
		t.Fatalf("%d SBFR scans in 30 virtual minutes, want 7", d.SBFRScans())
	}
}
