package uplink

import (
	crand "crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/proto"
)

// Spool file format (one file per uplink, append-only):
//
//	header: magic "MPROSUP2" | u64 boot | u16 dcidLen | dcid bytes
//	records: u32 recMagic | u8 type | u64 seq | u32 bodyLen | body | u32 crc
//
// All integers little-endian; the CRC covers type..body. Record types:
//
//	recReport  — body is the JSON report; the sequence is its delivery id
//	recAck     — the report with this sequence was acked by the PDME
//	recDrop    — the report was dropped by the capacity policy (still final)
//	recSeqMark — sequence watermark written on compaction so monotonic ids
//	             survive a rewrite that leaves no report records behind
//	recSummary — body is a JSON fused summary (PDME→PDME forwarding); it
//	             shares the report sequence space, so one spool carries both
//	             kinds in FIFO order under one dedup window
//
// Every record is appended in a single write, so recovery follows the
// historian segment idiom exactly: an incomplete final record is a torn
// tail (truncate and continue); a complete record with a bad magic or CRC
// is interior corruption (refuse the file).
//
// The boot id names the sequence-counter incarnation on the wire (see
// proto.Dedup): a persistent spool keeps it for the file's lifetime, so
// replayed sequences stay deduplicable across DC restarts; an in-memory
// spool draws a fresh one per process, telling the PDME its restarted
// counter is not a replay.
const (
	spoolMagic  = "MPROSUP2"
	recMagic    = uint32(0x5B001ED0)
	recFrame    = 4 + 1 + 8 + 4 + 4 // magic + type + seq + len + crc
	maxBodySize = 1 << 20

	recReport  = byte(1)
	recAck     = byte(2)
	recDrop    = byte(3)
	recSeqMark = byte(4)
	recSummary = byte(5)

	// compactEvery bounds resolved (acked/dropped) records retained in the
	// file before it is rewritten with only pending reports.
	compactEvery = 512
)

// pendingRec is one spooled frame awaiting ack: a report or, on the
// PDME→PDME forwarding path, a fused summary (exactly one of the two is
// set).
type pendingRec struct {
	seq     uint64
	report  *proto.Report
	summary *proto.FusedSummary
	// attempts counts sends tried so far; recovered marks a frame replayed
	// from disk after a process restart. Both feed the Replayed counter.
	attempts  int
	recovered bool
}

// recType returns the spool record type for the frame this rec carries.
func (rec *pendingRec) recType() byte {
	if rec.summary != nil {
		return recSummary
	}
	return recReport
}

// marshalBody encodes the frame this rec carries for spooling.
func (rec *pendingRec) marshalBody() ([]byte, error) {
	if rec.summary != nil {
		return json.Marshal(rec.summary)
	}
	return json.Marshal(rec.report)
}

// spool is the uplink's store-and-forward queue: every outbound report is
// appended before the first send attempt (write-ahead), and retired by an
// ack record once the PDME confirms it, so anything in flight when the DC
// process dies replays on the next start. With an empty dir the spool is a
// volatile in-memory queue with the same interface.
type spool struct {
	path string   // "" for in-memory
	f    *os.File // nil for in-memory
	dcid string   // sender identity the file header is bound to
	cap  int
	boot uint64 // sequence-counter incarnation announced on the wire

	nextSeq  uint64
	pending  []*pendingRec // oldest first
	resolved int           // resolved records in the file since last compact
}

// newBootID draws a random boot incarnation id; zero is reserved for
// untagged frames.
func newBootID() (uint64, error) {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return 0, fmt.Errorf("uplink: draw boot id: %w", err)
	}
	id := binary.LittleEndian.Uint64(b[:])
	if id == 0 {
		id = 1
	}
	return id, nil
}

// encodeSpoolFile maps a DC id to a filesystem-safe spool file name (same
// escaping as the historian's channel files).
func encodeSpoolFile(dcid string) string {
	var b strings.Builder
	for i := 0; i < len(dcid); i++ {
		c := dcid[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
			b.WriteByte(c)
		default:
			fmt.Fprintf(&b, "%%%02X", c)
		}
	}
	return b.String() + ".spool"
}

// openSpool opens (recovering) or creates the spool for dcid under dir.
// An empty dir yields an in-memory spool.
func openSpool(dir, dcid string, capacity int) (*spool, error) {
	if capacity <= 0 {
		capacity = DefaultSpoolCap
	}
	s := &spool{dcid: dcid, cap: capacity, nextSeq: 1}
	if dir == "" {
		boot, err := newBootID()
		if err != nil {
			return nil, err
		}
		s.boot = boot
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("uplink: create spool dir: %w", err)
	}
	s.path = filepath.Join(dir, encodeSpoolFile(dcid))
	if err := s.recover(dcid); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(s.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("uplink: open spool: %w", err)
	}
	s.f = f
	if info, err := f.Stat(); err == nil && info.Size() == 0 {
		if s.boot, err = newBootID(); err != nil {
			_ = f.Close()
			return nil, err
		}
		if err := s.writeHeader(dcid); err != nil {
			_ = f.Close()
			return nil, err
		}
	}
	// Start compacted: resolved records recovered from a previous run carry
	// no information once pending is rebuilt.
	if s.resolved > 0 {
		if err := s.compact(dcid); err != nil {
			_ = s.f.Close()
			return nil, err
		}
	}
	return s, nil
}

func (s *spool) writeHeader(dcid string) error {
	hdr := make([]byte, 0, len(spoolMagic)+8+2+len(dcid))
	hdr = append(hdr, spoolMagic...)
	hdr = binary.LittleEndian.AppendUint64(hdr, s.boot)
	hdr = binary.LittleEndian.AppendUint16(hdr, uint16(len(dcid)))
	hdr = append(hdr, dcid...)
	if _, err := s.f.Write(hdr); err != nil {
		return fmt.Errorf("uplink: write spool header: %w", err)
	}
	return nil
}

// recover reads the spool file back: pending reports, the sequence
// watermark, and the resolved-record count. A torn tail is truncated; a
// header or interior record that is present but wrong is refused.
func (s *spool) recover(dcid string) error {
	data, err := os.ReadFile(s.path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("uplink: read spool: %w", err)
	}
	if len(data) == 0 {
		return nil
	}
	if len(data) < len(spoolMagic)+8+2 {
		return fmt.Errorf("uplink: %s: truncated header", s.path)
	}
	if string(data[:len(spoolMagic)]) != spoolMagic {
		return fmt.Errorf("uplink: %s: bad file magic", s.path)
	}
	s.boot = binary.LittleEndian.Uint64(data[len(spoolMagic):])
	idLen := int(binary.LittleEndian.Uint16(data[len(spoolMagic)+8:]))
	off := len(spoolMagic) + 8 + 2
	if len(data) < off+idLen {
		return fmt.Errorf("uplink: %s: truncated DC id", s.path)
	}
	if got := string(data[off : off+idLen]); got != dcid {
		return fmt.Errorf("uplink: %s: spool belongs to DC %q, not %q", s.path, got, dcid)
	}
	off += idLen

	frames := make(map[uint64]*pendingRec)
	var order []uint64
	resolved := make(map[uint64]bool)
	var maxSeq uint64
	tornAt := -1
	for off < len(data) {
		remaining := len(data) - off
		if remaining < recFrame-4 { // not even the fixed fields before the body
			tornAt = off
			break
		}
		magic := binary.LittleEndian.Uint32(data[off:])
		if magic != recMagic {
			return fmt.Errorf("uplink: %s: bad record magic at offset %d (corrupted spool)", s.path, off)
		}
		typ := data[off+4]
		seq := binary.LittleEndian.Uint64(data[off+5:])
		if seq == ^uint64(0) {
			// A legitimate writer can never reach the last sequence; accepting
			// it would overflow the nextSeq watermark back to zero.
			return fmt.Errorf("uplink: %s: implausible sequence at offset %d (corrupted spool)", s.path, off)
		}
		bodyLen := int(binary.LittleEndian.Uint32(data[off+13:]))
		if bodyLen < 0 || bodyLen > maxBodySize {
			return fmt.Errorf("uplink: %s: implausible record body %d at offset %d (corrupted spool)", s.path, bodyLen, off)
		}
		need := recFrame + bodyLen
		if remaining < need {
			// The final record never finished its single-write append.
			tornAt = off
			break
		}
		payload := data[off+4 : off+17+bodyLen]
		wantCRC := binary.LittleEndian.Uint32(data[off+17+bodyLen:])
		if crc32.ChecksumIEEE(payload) != wantCRC {
			return fmt.Errorf("uplink: %s: record CRC mismatch at offset %d (corrupted spool)", s.path, off)
		}
		if seq > maxSeq {
			maxSeq = seq
		}
		switch typ {
		case recReport:
			var r proto.Report
			if err := json.Unmarshal(data[off+17:off+17+bodyLen], &r); err != nil {
				return fmt.Errorf("uplink: %s: undecodable report at offset %d: %w", s.path, off, err)
			}
			if _, dup := frames[seq]; !dup {
				frames[seq] = &pendingRec{seq: seq, report: &r, recovered: true}
				order = append(order, seq)
			}
		case recSummary:
			var sum proto.FusedSummary
			if err := json.Unmarshal(data[off+17:off+17+bodyLen], &sum); err != nil {
				return fmt.Errorf("uplink: %s: undecodable summary at offset %d: %w", s.path, off, err)
			}
			if _, dup := frames[seq]; !dup {
				frames[seq] = &pendingRec{seq: seq, summary: &sum, recovered: true}
				order = append(order, seq)
			}
		case recAck, recDrop:
			resolved[seq] = true
		case recSeqMark:
			// watermark only: maxSeq already advanced above
		default:
			return fmt.Errorf("uplink: %s: unknown record type %d at offset %d (corrupted spool)", s.path, typ, off)
		}
		off += need
	}
	if tornAt >= 0 {
		if err := truncateFile(s.path, int64(tornAt)); err != nil {
			return err
		}
	}
	for _, seq := range order {
		if resolved[seq] {
			s.resolved++
			continue
		}
		s.pending = append(s.pending, frames[seq])
	}
	s.nextSeq = maxSeq + 1
	return nil
}

func truncateFile(path string, size int64) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("uplink: open spool for truncation: %w", err)
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		return fmt.Errorf("uplink: truncate torn spool tail: %w", err)
	}
	return f.Sync()
}

// appendRecord writes one framed record in a single write.
func (s *spool) appendRecord(typ byte, seq uint64, body []byte) error {
	if s.f == nil {
		return nil
	}
	if len(body) > maxBodySize {
		return fmt.Errorf("uplink: spool record body %d exceeds limit", len(body))
	}
	buf := make([]byte, 0, recFrame+len(body))
	buf = binary.LittleEndian.AppendUint32(buf, recMagic)
	buf = append(buf, typ)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(body)))
	buf = append(buf, body...)
	crc := crc32.ChecksumIEEE(buf[4:])
	buf = binary.LittleEndian.AppendUint32(buf, crc)
	if _, err := s.f.Write(buf); err != nil {
		return fmt.Errorf("uplink: append spool record: %w", err)
	}
	return nil
}

// add assigns the next sequence to the report and appends it (write-ahead:
// the spool entry exists before the first send attempt). When the pending
// queue exceeds capacity the oldest frames are dropped; their sequences
// are returned so the caller can count them.
func (s *spool) add(r *proto.Report) (seq uint64, droppedSeqs []uint64, err error) {
	return s.enqueue(&pendingRec{report: r})
}

// addSummary spools one PDME→PDME fused summary; it shares the report
// sequence space and capacity policy, so a single FIFO drains both kinds.
func (s *spool) addSummary(sum *proto.FusedSummary) (seq uint64, droppedSeqs []uint64, err error) {
	return s.enqueue(&pendingRec{summary: sum})
}

func (s *spool) enqueue(rec *pendingRec) (seq uint64, droppedSeqs []uint64, err error) {
	rec.seq = s.nextSeq
	s.nextSeq++
	body, err := rec.marshalBody()
	if err != nil {
		return 0, nil, fmt.Errorf("uplink: encode spool frame: %w", err)
	}
	if err := s.appendRecord(rec.recType(), rec.seq, body); err != nil {
		return 0, nil, err
	}
	s.pending = append(s.pending, rec)
	for len(s.pending) > s.cap {
		oldest := s.pending[0]
		s.pending = s.pending[1:]
		droppedSeqs = append(droppedSeqs, oldest.seq)
		if err := s.appendRecord(recDrop, oldest.seq, nil); err != nil {
			return 0, nil, err
		}
		s.resolved++
	}
	if err := s.maybeCompact(); err != nil {
		return 0, nil, err
	}
	return rec.seq, droppedSeqs, nil
}

// peek returns the oldest pending report without removing it.
func (s *spool) peek() (*pendingRec, bool) {
	if len(s.pending) == 0 {
		return nil, false
	}
	return s.pending[0], true
}

// resolve retires an acked (or permanently rejected) sequence.
func (s *spool) resolve(seq uint64) error {
	for i, rec := range s.pending {
		if rec.seq == seq {
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			break
		}
	}
	if err := s.appendRecord(recAck, seq, nil); err != nil {
		return err
	}
	s.resolved++
	return s.maybeCompact()
}

func (s *spool) maybeCompact() error {
	if s.f == nil || s.resolved < compactEvery {
		return nil
	}
	return s.compact(s.dcid)
}

// compact rewrites the file with only pending reports plus a sequence
// watermark, via temp-file-and-rename so a crash mid-compaction leaves
// either the old or the new file intact.
func (s *spool) compact(dcid string) error {
	if s.f == nil {
		return nil
	}
	tmp := s.path + ".tmp"
	old := s.f
	s.f = nil // appendRecord must not touch the old handle during rewrite
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		s.f = old
		return fmt.Errorf("uplink: create compaction file: %w", err)
	}
	s.f = f
	err = s.writeHeader(dcid)
	if err == nil && s.nextSeq > 1 {
		err = s.appendRecord(recSeqMark, s.nextSeq-1, nil)
	}
	for _, rec := range s.pending {
		if err != nil {
			break
		}
		var body []byte
		if body, err = rec.marshalBody(); err == nil {
			err = s.appendRecord(rec.recType(), rec.seq, body)
		}
	}
	if err == nil {
		err = f.Sync()
	}
	if err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		s.f = old
		return err
	}
	if err := f.Close(); err != nil {
		s.f = old
		return err
	}
	_ = old.Close()
	if err := os.Rename(tmp, s.path); err != nil {
		return fmt.Errorf("uplink: swap compacted spool: %w", err)
	}
	s.f, err = os.OpenFile(s.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("uplink: reopen compacted spool: %w", err)
	}
	s.resolved = 0
	return nil
}

// close syncs and closes the spool file; pending reports stay on disk for
// the next open.
func (s *spool) close() error {
	if s.f == nil {
		return nil
	}
	if err := s.f.Sync(); err != nil {
		_ = s.f.Close()
		return err
	}
	return s.f.Close()
}
