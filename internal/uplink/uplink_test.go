package uplink

import (
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/netfault"
	"repro/internal/proto"
)

// collector records delivered reports, optionally failing the first n.
type collector struct {
	mu      sync.Mutex
	reports []*proto.Report
}

func (c *collector) Deliver(r *proto.Report) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	cp := *r
	c.reports = append(c.reports, &cp)
	return nil
}

func (c *collector) explanations() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.reports))
	for i, r := range c.reports {
		out[i] = r.Explanation
	}
	return out
}

// startServer runs a dedup-enabled report server on addr ("127.0.0.1:0"
// for ephemeral) and returns the bound address.
func startServer(t *testing.T, addr string, sink proto.Sink, dedup *proto.Dedup) (string, *proto.Server) {
	t.Helper()
	srv := proto.NewServer(sink)
	srv.SetDedup(dedup)
	bound, err := srv.Start(addr)
	if err != nil {
		t.Fatal(err)
	}
	return bound, srv
}

// reserveAddr returns a loopback address that is currently free.
func reserveAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func fastConfig(addr, dir string) Config {
	return Config{
		Addr:        addr,
		DCID:        "dc-1",
		SpoolDir:    dir,
		DialTimeout: 2 * time.Second,
		SendTimeout: 2 * time.Second,
		BackoffMin:  5 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
	}
}

func TestDeliverHappyPath(t *testing.T) {
	sink := &collector{}
	addr, srv := startServer(t, "127.0.0.1:0", sink, proto.NewDedup(0))
	defer srv.Close()
	u, err := New(fastConfig(addr, ""))
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	for i := 1; i <= 5; i++ {
		if err := u.Deliver(testReport(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := u.Flush(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	got := sink.explanations()
	if len(got) != 5 {
		t.Fatalf("delivered %d, want 5", len(got))
	}
	for i, e := range got {
		if want := "r" + string(rune('1'+i)); e != want {
			t.Errorf("delivery %d = %q, want %q (in-order drain)", i, e, want)
		}
	}
	c := u.Counters()
	if c.Sent != 5 || c.Acked != 5 || c.Spooled != 5 || c.Retried != 0 || c.Dropped != 0 || c.DedupAcks != 0 {
		t.Errorf("counters %+v", c)
	}
}

func TestOutageSpoolsThenDrainsOnReconnect(t *testing.T) {
	addr := reserveAddr(t)
	u, err := New(fastConfig(addr, ""))
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	for i := 1; i <= 3; i++ {
		if err := u.Deliver(testReport(i)); err != nil {
			t.Fatal(err)
		}
	}
	// No listener: everything queues.
	time.Sleep(50 * time.Millisecond)
	if got := u.Pending(); got != 3 {
		t.Fatalf("pending %d during outage, want 3", got)
	}
	sink := &collector{}
	_, srv := startServer(t, addr, sink, proto.NewDedup(0))
	defer srv.Close()
	if err := u.Flush(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := sink.explanations(); len(got) != 3 || got[0] != "r1" {
		t.Fatalf("drained %v", got)
	}
	c := u.Counters()
	if c.Replayed == 0 {
		t.Errorf("outage deliveries not counted as replayed: %+v", c)
	}
}

func TestSpoolSurvivesProcessRestart(t *testing.T) {
	dir := t.TempDir()
	addr := reserveAddr(t)
	u, err := New(fastConfig(addr, dir))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		if err := u.Deliver(testReport(i)); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(20 * time.Millisecond) // let the sender fail a dial or two
	if err := u.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart" the DC process: a fresh uplink over the same spool dir.
	u2, err := New(fastConfig(addr, dir))
	if err != nil {
		t.Fatal(err)
	}
	defer u2.Close()
	if got := u2.Pending(); got != 4 {
		t.Fatalf("recovered %d pending after restart, want 4", got)
	}
	dedup := proto.NewDedup(0)
	sink := &collector{}
	_, srv := startServer(t, addr, sink, dedup)
	defer srv.Close()
	if err := u2.Flush(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// New reports after the restart keep monotonic sequences, so dedup
	// must not swallow them.
	if err := u2.Deliver(testReport(5)); err != nil {
		t.Fatal(err)
	}
	if err := u2.Flush(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	got := sink.explanations()
	if len(got) != 5 || got[0] != "r1" || got[4] != "r5" {
		t.Fatalf("after restart delivered %v, want r1..r5", got)
	}
	c := u2.Counters()
	if c.Replayed < 4 {
		t.Errorf("restart replays not counted: %+v", c)
	}
	if dedup.Hits() != 0 {
		t.Errorf("%d fresh reports treated as duplicates", dedup.Hits())
	}
}

// TestVolatileRestartNotSwallowedByDedup: a DC restarting with an
// in-memory spool restarts its sequence counter at 1; against a long-lived
// PDME whose window already saw those sequences, its reports must still be
// fused — the fresh boot id resets the window instead of suppressing them.
func TestVolatileRestartNotSwallowedByDedup(t *testing.T) {
	sink := &collector{}
	dedup := proto.NewDedup(0)
	addr, srv := startServer(t, "127.0.0.1:0", sink, dedup)
	defer srv.Close()

	u, err := New(fastConfig(addr, ""))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := u.Deliver(testReport(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := u.Flush(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := u.Close(); err != nil {
		t.Fatal(err)
	}

	// Same DCID, new process, volatile spool: sequences restart at 1.
	u2, err := New(fastConfig(addr, ""))
	if err != nil {
		t.Fatal(err)
	}
	defer u2.Close()
	for i := 4; i <= 6; i++ {
		if err := u2.Deliver(testReport(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := u2.Flush(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	got := sink.explanations()
	if len(got) != 6 || got[3] != "r4" {
		t.Fatalf("sink saw %v, want r1..r6 (restarted DC's reports swallowed)", got)
	}
	if dedup.Hits() != 0 {
		t.Errorf("%d fresh reports suppressed as duplicates", dedup.Hits())
	}
	if c := u2.Counters(); c.DedupAcks != 0 || c.Acked != 3 {
		t.Errorf("second incarnation counters %+v", c)
	}
}

func TestCapacityDropOldestFirst(t *testing.T) {
	addr := reserveAddr(t)
	cfg := fastConfig(addr, "")
	cfg.SpoolCap = 3
	u, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	for i := 1; i <= 5; i++ {
		if err := u.Deliver(testReport(i)); err != nil {
			t.Fatal(err)
		}
	}
	if c := u.Counters(); c.Dropped != 2 || c.CapacityDrops != 2 {
		t.Fatalf("dropped %d / capacity drops %d, want 2 and 2", c.Dropped, c.CapacityDrops)
	}
	sink := &collector{}
	_, srv := startServer(t, addr, sink, proto.NewDedup(0))
	defer srv.Close()
	if err := u.Flush(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	got := sink.explanations()
	if len(got) != 3 || got[0] != "r3" || got[2] != "r5" {
		t.Fatalf("survivors %v, want the newest three (oldest-first drop)", got)
	}
}

func TestRejectedReportDroppedQueueKeepsMoving(t *testing.T) {
	// A sink that permanently refuses one condition: the uplink must drop
	// that report (counting it) rather than wedge the queue behind it.
	inner := &collector{}
	sink := proto.SinkFunc(func(r *proto.Report) error {
		if r.Explanation == "r2" {
			return &permanentErr{}
		}
		return inner.Deliver(r)
	})
	addr, srv := startServer(t, "127.0.0.1:0", sink, proto.NewDedup(0))
	defer srv.Close()
	u, err := New(fastConfig(addr, ""))
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	for i := 1; i <= 3; i++ {
		if err := u.Deliver(testReport(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := u.Flush(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := inner.explanations(); len(got) != 2 || got[0] != "r1" || got[1] != "r3" {
		t.Fatalf("delivered %v, want r1,r3 with r2 dropped", got)
	}
	if c := u.Counters(); c.Dropped != 1 || c.CapacityDrops != 0 {
		t.Errorf("counters %+v, want Dropped=1 with no capacity drops", c)
	}
}

type permanentErr struct{}

func (*permanentErr) Error() string { return "condition not in any failure group" }

// TestChaosResendNeverDoubleDelivers drives the uplink through the
// netfault proxy with aggressive mid-stream resets: sends are retried until
// acked, and the server-side dedup window guarantees each report reaches
// the sink exactly once.
func TestChaosResendNeverDoubleDelivers(t *testing.T) {
	sink := &collector{}
	dedup := proto.NewDedup(0)
	addr, srv := startServer(t, "127.0.0.1:0", sink, dedup)
	defer srv.Close()
	proxy, err := netfault.New(addr, netfault.Options{ResetProb: 0.3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	u, err := New(fastConfig(proxy.Addr(), t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	const n = 40
	for i := 0; i < n; i++ {
		r := testReport(i % 10)
		r.Timestamp = r.Timestamp.Add(time.Duration(i) * time.Hour)
		if err := u.Deliver(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := u.Flush(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := len(sink.explanations()); got != n {
		t.Fatalf("sink saw %d deliveries, want exactly %d (resets=%d, dedup hits=%d)",
			got, n, proxy.Stats().Resets, dedup.Hits())
	}
	c := u.Counters()
	if c.Retried == 0 {
		t.Logf("note: no retries triggered (resets=%d)", proxy.Stats().Resets)
	}
	if c.Acked+c.DedupAcks != n {
		t.Errorf("acked %d + dup %d != %d", c.Acked, c.DedupAcks, n)
	}
}
