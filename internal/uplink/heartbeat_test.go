package uplink

import (
	"sync"
	"testing"
	"time"

	"repro/internal/proto"
)

var hbT0 = time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)

// hbCollector records heartbeats observed server-side.
type hbCollector struct {
	mu  sync.Mutex
	hbs []*proto.Heartbeat
}

func (c *hbCollector) ObserveHeartbeat(hb *proto.Heartbeat) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	cp := *hb
	c.hbs = append(c.hbs, &cp)
	return nil
}

func (c *hbCollector) snapshot() []*proto.Heartbeat {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*proto.Heartbeat(nil), c.hbs...)
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not met before timeout")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSendHeartbeatFillsIdentity(t *testing.T) {
	sink := &collector{}
	hbs := &hbCollector{}
	srv := proto.NewServer(sink)
	srv.SetHeartbeatSink(hbs)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	u, err := New(fastConfig(addr, ""))
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	err = u.SendHeartbeat(&proto.Heartbeat{
		SentAt: hbT0,
		Suites: []proto.SuiteStatus{{Name: "vibration-test", LastRun: hbT0.Add(-time.Minute), Runs: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return len(hbs.snapshot()) == 1 })
	hb := hbs.snapshot()[0]
	if hb.DCID != "dc-1" {
		t.Errorf("DCID = %q, want filled from config", hb.DCID)
	}
	if hb.Boot == 0 || hb.Incarnation != u.Incarnation() {
		t.Errorf("identity not filled: boot %d incarnation %d (want %d)", hb.Boot, hb.Incarnation, u.Incarnation())
	}
	if hb.SpoolDepth != 0 {
		t.Errorf("spool depth = %d, want 0 on idle uplink", hb.SpoolDepth)
	}
	if len(hb.Suites) != 1 || hb.Suites[0].Runs != 4 {
		t.Errorf("suites lost: %+v", hb.Suites)
	}
	if c := u.Counters(); c.HeartbeatsSent != 1 || c.HeartbeatsDropped != 0 {
		t.Errorf("counters %+v", c)
	}
}

func TestHeartbeatMailboxLatestWins(t *testing.T) {
	// With the PDME down, queued heartbeats supersede each other; after the
	// server appears only the newest one can possibly arrive, and earlier
	// ones count as dropped — never spooled, never replayed.
	addr := reserveAddr(t)
	u, err := New(fastConfig(addr, ""))
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	for i := 0; i < 3; i++ {
		if err := u.SendHeartbeat(&proto.Heartbeat{SentAt: hbT0.Add(time.Duration(i) * time.Minute)}); err != nil {
			t.Fatal(err)
		}
	}
	// Let the sender chew on the dead address until at least one heartbeat
	// is dropped (single dial attempt, no retry).
	waitFor(t, 5*time.Second, func() bool { return u.Counters().HeartbeatsDropped >= 1 })

	hbs := &hbCollector{}
	srv := proto.NewServer(proto.SinkFunc(func(*proto.Report) error { return nil }))
	srv.SetHeartbeatSink(hbs)
	if _, err := srv.Start(addr); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := u.SendHeartbeat(&proto.Heartbeat{SentAt: hbT0.Add(time.Hour)}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return len(hbs.snapshot()) >= 1 })
	got := hbs.snapshot()
	if len(got) != 1 || !got[0].SentAt.Equal(hbT0.Add(time.Hour)) {
		t.Fatalf("delivered %d heartbeats (%+v), want exactly the latest", len(got), got)
	}
	if c := u.Counters(); c.HeartbeatsSent != 1 {
		t.Errorf("counters %+v, want HeartbeatsSent=1", c)
	}
}

func TestHeartbeatAnnouncesSpoolDepth(t *testing.T) {
	// Queue reports against a dead PDME, then heartbeat: once the server
	// appears, the heartbeat must announce the backlog that existed when it
	// was issued.
	addr := reserveAddr(t)
	u, err := New(fastConfig(addr, ""))
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	for i := 1; i <= 4; i++ {
		if err := u.Deliver(testReport(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := u.SendHeartbeat(&proto.Heartbeat{SentAt: hbT0}); err != nil {
		t.Fatal(err)
	}
	u.mu.Lock()
	depth := 0
	if u.hbPending != nil {
		depth = u.hbPending.SpoolDepth
	}
	u.mu.Unlock()
	// The mailbox may already be drained (and dropped) by the sender; only
	// assert when the frame is still queued.
	if depth != 0 && depth != 4 {
		t.Fatalf("queued heartbeat announces depth %d, want 4", depth)
	}
	sink := &collector{}
	_, srv := startServer(t, addr, sink, proto.NewDedup(0))
	defer srv.Close()
	if err := u.Flush(10 * time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestHeartbeatClosedUplink(t *testing.T) {
	addr := reserveAddr(t)
	u, err := New(fastConfig(addr, ""))
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Close(); err != nil {
		t.Fatal(err)
	}
	if err := u.SendHeartbeat(&proto.Heartbeat{SentAt: hbT0}); err == nil {
		t.Fatal("closed uplink should refuse heartbeats")
	}
}
