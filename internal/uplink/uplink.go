// Package uplink is the resilient DC→PDME report transport. The paper's
// architecture sends every conclusion "over the ship's network to a
// centrally located machine" (§1.1) and flags communications instability on
// COTS shipboard networks as a deployment concern; telematics CBM practice
// treats intermittent uplinks as the norm and store-and-forward as the
// baseline answer. The uplink therefore wraps proto.Client with:
//
//   - automatic redial using exponential backoff with seeded jitter, plus
//     per-dial and per-send deadlines, so a dropped socket or PDME restart
//     heals without operator action;
//   - a persistent write-ahead spool (see spool.go): every report is
//     appended before its first send attempt and retired only on ack, so
//     reports queued during an outage survive both the outage and a DC
//     process restart, with bounded capacity and an oldest-first drop
//     policy;
//   - monotonic per-DC sequence tagging on the wire, which the PDME-side
//     proto.Dedup window uses to suppress at-least-once redelivery — the
//     wire is at-least-once, the fusion effect exactly-once.
//
// Deliver is asynchronous: it returns once the report is durably spooled,
// and a single sender goroutine drains the spool in sequence order. Flush
// blocks until the spool is empty (everything acked or dropped).
package uplink

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/proto"
)

// Defaults for Config's zero values.
const (
	DefaultSpoolCap    = 8192
	DefaultDialTimeout = 5 * time.Second
	DefaultSendTimeout = 10 * time.Second
	DefaultBackoffMin  = 50 * time.Millisecond
	DefaultBackoffMax  = 15 * time.Second
)

// Config parametrizes an uplink.
type Config struct {
	// Addr is the PDME report server address.
	Addr string
	// DCID names the sending data concentrator; it keys the spool file and
	// the server-side dedup window and must match the reports' DCID.
	DCID string
	// SpoolDir persists the store-and-forward spool; empty keeps it in
	// memory (reports then survive outages but not a process restart).
	SpoolDir string
	// SpoolCap bounds pending reports; beyond it the oldest are dropped
	// (0: DefaultSpoolCap).
	SpoolCap int
	// DialTimeout bounds each connection attempt (0: DefaultDialTimeout).
	DialTimeout time.Duration
	// SendTimeout bounds each send+ack exchange (0: DefaultSendTimeout).
	SendTimeout time.Duration
	// BackoffMin/BackoffMax bound the exponential redial backoff
	// (0: DefaultBackoffMin/DefaultBackoffMax).
	BackoffMin time.Duration
	BackoffMax time.Duration
	// Seed drives the jitter's reproducible randomness.
	Seed int64
}

func (c *Config) applyDefaults() {
	if c.SpoolCap <= 0 {
		c.SpoolCap = DefaultSpoolCap
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = DefaultDialTimeout
	}
	if c.SendTimeout <= 0 {
		c.SendTimeout = DefaultSendTimeout
	}
	if c.BackoffMin <= 0 {
		c.BackoffMin = DefaultBackoffMin
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = DefaultBackoffMax
	}
}

// Counters is a snapshot of the uplink's delivery statistics.
type Counters struct {
	// Sent counts successful send+ack exchanges (including duplicate acks).
	Sent int64
	// Acked counts reports confirmed fused by the PDME (first delivery).
	Acked int64
	// Retried counts send attempts that failed on transport errors and
	// were rescheduled.
	Retried int64
	// Spooled counts reports accepted into the spool (every Deliver).
	Spooled int64
	// Replayed counts reports delivered after surviving a reconnect or a
	// process restart (attempts beyond the first, or recovered from disk).
	Replayed int64
	// Dropped counts reports abandoned: capacity-policy evictions plus
	// permanent server rejections.
	Dropped int64
	// CapacityDrops counts the oldest-first evictions alone — reports lost
	// because the spool hit capacity during an outage. They are included in
	// Dropped; a non-zero value here is silent data loss that operators
	// should see (raise SpoolCap or fix the link).
	CapacityDrops int64
	// DedupAcks counts acks the server flagged as duplicate suppression —
	// redelivery the PDME had already fused exactly once.
	DedupAcks int64
	// DialFailures counts connection attempts that never produced a live
	// socket. Shard routers watch it (together with Retried) as the
	// no-progress signal that triggers ring failover.
	DialFailures int64
	// HeartbeatsSent counts acked heartbeat frames.
	HeartbeatsSent int64
	// HeartbeatsDropped counts heartbeats abandoned because no connection
	// could be made or the exchange failed. Heartbeats are never spooled:
	// a missing heartbeat IS the outage signal the health registry wants.
	HeartbeatsDropped int64
}

// Uplink is a resilient report sender; it implements proto.Sink so it slots
// in wherever a DC expects an uplink.
type Uplink struct {
	cfg Config

	mu       sync.Mutex
	spool    *spool
	client   *proto.Client
	counters Counters
	closed   bool
	// incarnation identifies this sender process instance for flap
	// detection: unlike the spool's boot id it never persists, so it
	// changes on every restart even with a durable spool.
	incarnation uint64
	// hbPending is a one-slot heartbeat mailbox (latest wins): heartbeats
	// carry point-in-time state, so an undeliverable one is superseded, not
	// queued.
	hbPending *proto.Heartbeat

	wake chan struct{} // buffered(1): signals the sender that work arrived
	stop chan struct{}
	wg   sync.WaitGroup
	rng  *rand.Rand // guarded by mu (jitter only)
}

// New opens (recovering any persisted spool) and starts an uplink. The
// first dial happens lazily on the first pending report, so New succeeds
// while the PDME is down — that is the point.
func New(cfg Config) (*Uplink, error) {
	if cfg.Addr == "" {
		return nil, fmt.Errorf("uplink: missing PDME address")
	}
	if cfg.DCID == "" {
		return nil, fmt.Errorf("uplink: missing DC id")
	}
	cfg.applyDefaults()
	sp, err := openSpool(cfg.SpoolDir, cfg.DCID, cfg.SpoolCap)
	if err != nil {
		return nil, err
	}
	incarnation, err := newBootID()
	if err != nil {
		_ = sp.close() // best-effort: the open spool is the only resource held
		return nil, err
	}
	u := &Uplink{
		cfg:         cfg,
		spool:       sp,
		incarnation: incarnation,
		wake:        make(chan struct{}, 1),
		stop:        make(chan struct{}),
		rng:         rand.New(rand.NewSource(cfg.Seed)),
	}
	u.wg.Add(1)
	go func() {
		defer u.wg.Done()
		u.run()
	}()
	if len(sp.pending) > 0 {
		u.signal()
	}
	return u, nil
}

// Deliver implements proto.Sink: the report is durably spooled with a fresh
// sequence number and delivered asynchronously, oldest first. It only
// errors when the report is invalid or the spool cannot accept it.
//
//mpros:ingest report intake from diagnosis; must never block on the sender goroutine
func (u *Uplink) Deliver(r *proto.Report) error {
	if err := r.Validate(); err != nil {
		return err
	}
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return errors.New("uplink: closed")
	}
	_, droppedSeqs, err := u.spool.add(r)
	if err == nil {
		u.counters.Spooled++
		u.counters.Dropped += int64(len(droppedSeqs))
		u.counters.CapacityDrops += int64(len(droppedSeqs))
	}
	u.mu.Unlock()
	if err != nil {
		return err
	}
	u.signal()
	return nil
}

// DeliverSummary spools one PDME→PDME fused summary for asynchronous
// delivery. Summaries share the report FIFO, sequence space, capacity
// policy, and server-side dedup window, so a shard uplink pointed at an
// aggregator inherits the whole store-and-forward contract unchanged.
//
//mpros:ingest summary intake from the shard forwarder; must never block on the sender goroutine
func (u *Uplink) DeliverSummary(s *proto.FusedSummary) error {
	if err := s.Validate(); err != nil {
		return err
	}
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return errors.New("uplink: closed")
	}
	_, droppedSeqs, err := u.spool.addSummary(s)
	if err == nil {
		u.counters.Spooled++
		u.counters.Dropped += int64(len(droppedSeqs))
		u.counters.CapacityDrops += int64(len(droppedSeqs))
	}
	u.mu.Unlock()
	if err != nil {
		return err
	}
	u.signal()
	return nil
}

// Incarnation returns the sender-process instance id announced in
// heartbeats (fresh on every New, even with a persistent spool).
func (u *Uplink) Incarnation() uint64 { return u.incarnation }

// Boot returns the spool's boot incarnation — the epoch half of the wire's
// (boot, seq) delivery tag. It persists with a durable spool, so replays
// after a process restart stay inside the same dedup window.
func (u *Uplink) Boot() uint64 { return u.spool.boot }

// SendHeartbeat queues a fleet-health heartbeat for delivery. The uplink
// fills in its own identity (DCID, spool boot id, process incarnation) and
// the current spool depth; the caller supplies SentAt and per-suite status.
// Heartbeats use a one-slot latest-wins mailbox and are never spooled or
// retried across backoff: if the link is down the heartbeat is dropped and
// counted, and the resulting silence is exactly what tells the PDME's
// health registry the DC is unreachable.
func (u *Uplink) SendHeartbeat(hb *proto.Heartbeat) error {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return errors.New("uplink: closed")
	}
	filled := *hb
	if filled.DCID == "" {
		filled.DCID = u.cfg.DCID
	}
	filled.Boot = u.spool.boot
	filled.Incarnation = u.incarnation
	filled.SpoolDepth = len(u.spool.pending)
	err := filled.Validate()
	if err == nil {
		u.hbPending = &filled
	}
	u.mu.Unlock()
	if err != nil {
		return err
	}
	u.signal()
	return nil
}

// takeHeartbeat swaps the heartbeat mailbox empty.
func (u *Uplink) takeHeartbeat() *proto.Heartbeat {
	u.mu.Lock()
	defer u.mu.Unlock()
	hb := u.hbPending
	u.hbPending = nil
	return hb
}

// flushHeartbeat delivers the pending heartbeat, if any, with a single
// connection attempt and no retry.
func (u *Uplink) flushHeartbeat() {
	hb := u.takeHeartbeat()
	if hb == nil {
		return
	}
	drop := func() {
		u.mu.Lock()
		u.counters.HeartbeatsDropped++
		u.mu.Unlock()
	}
	if !u.ensureConnected() {
		drop()
		return
	}
	u.mu.Lock()
	client := u.client
	u.mu.Unlock()
	if client == nil {
		drop()
		return
	}
	err := client.SendHeartbeat(hb)
	switch {
	case err == nil:
		u.mu.Lock()
		u.counters.HeartbeatsSent++
		u.mu.Unlock()
	case errors.Is(err, proto.ErrRejected):
		// Link is fine; the server refused the frame (old PDME, registry
		// fault). Nothing to retry.
		drop()
	default:
		// Transport failure: the connection is suspect.
		u.mu.Lock()
		if u.client != nil {
			_ = u.client.Close()
			u.client = nil
		}
		u.mu.Unlock()
		drop()
	}
}

// Pending returns how many reports await acknowledgement.
func (u *Uplink) Pending() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return len(u.spool.pending)
}

// Counters returns a snapshot of the delivery statistics.
func (u *Uplink) Counters() Counters {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.counters
}

// Flush blocks until every spooled report is resolved (acked or dropped)
// or the timeout elapses.
func (u *Uplink) Flush(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if u.Pending() == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("uplink: flush timed out with %d reports pending", u.Pending())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Close stops the sender and closes the connection and spool file. Pending
// reports stay in a persistent spool and replay on the next New.
func (u *Uplink) Close() error {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return nil
	}
	u.closed = true
	u.mu.Unlock()
	close(u.stop)
	u.wg.Wait()
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.client != nil {
		_ = u.client.Close()
		u.client = nil
	}
	return u.spool.close()
}

func (u *Uplink) signal() {
	select {
	case u.wake <- struct{}{}:
	default:
	}
}

// run is the single sender goroutine: it drains the spool in order,
// redialing with backoff across transport failures.
func (u *Uplink) run() {
	backoff := u.cfg.BackoffMin
	for {
		select {
		case <-u.stop:
			return
		case <-u.wake:
		}
		u.flushHeartbeat()
		for {
			u.mu.Lock()
			rec, ok := u.spool.peek()
			u.mu.Unlock()
			if !ok {
				break
			}
			u.flushHeartbeat()
			if !u.ensureConnected() {
				// The head report is now outage-delayed; count its eventual
				// delivery as a replay.
				u.mu.Lock()
				rec.attempts++
				u.counters.DialFailures++
				u.mu.Unlock()
				if !u.sleepBackoff(&backoff) {
					return
				}
				continue
			}
			dup, err := u.sendOne(rec)
			switch {
			case err == nil:
				backoff = u.cfg.BackoffMin
				u.retire(rec, dup, false)
			case errors.Is(err, proto.ErrRejected):
				// The link is fine but the PDME will never accept this
				// report (validation, unknown condition); drop it so the
				// queue keeps moving.
				backoff = u.cfg.BackoffMin
				u.retire(rec, false, true)
			default:
				// Transport failure: the connection is suspect. Drop it,
				// mark the attempt, and retry after backoff.
				u.mu.Lock()
				rec.attempts++
				u.counters.Retried++
				if u.client != nil {
					_ = u.client.Close()
					u.client = nil
				}
				u.mu.Unlock()
				if !u.sleepBackoff(&backoff) {
					return
				}
			}
			select {
			case <-u.stop:
				return
			default:
			}
		}
	}
}

// ensureConnected dials if there is no live connection; false means the
// dial failed (caller backs off) — unless the uplink is stopping.
func (u *Uplink) ensureConnected() bool {
	u.mu.Lock()
	if u.client != nil {
		u.mu.Unlock()
		return true
	}
	u.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), u.cfg.DialTimeout)
	client, err := proto.DialContext(ctx, u.cfg.Addr)
	cancel()
	if err != nil {
		return false
	}
	client.SetTimeout(u.cfg.SendTimeout)
	u.mu.Lock()
	u.client = client
	u.mu.Unlock()
	return true
}

// sendOne performs one tagged exchange for the head-of-line frame.
func (u *Uplink) sendOne(rec *pendingRec) (dup bool, err error) {
	u.mu.Lock()
	client := u.client
	u.mu.Unlock()
	if client == nil {
		return false, errors.New("uplink: not connected")
	}
	if rec.summary != nil {
		return client.SendSummary(rec.summary, u.cfg.DCID, u.spool.boot, rec.seq)
	}
	return client.SendTagged(rec.report, u.spool.boot, rec.seq)
}

// retire resolves a report out of the spool and updates counters.
func (u *Uplink) retire(rec *pendingRec, dup, rejected bool) {
	u.mu.Lock()
	defer u.mu.Unlock()
	_ = u.spool.resolve(rec.seq)
	if rejected {
		u.counters.Dropped++
		return
	}
	u.counters.Sent++
	if dup {
		u.counters.DedupAcks++
	} else {
		u.counters.Acked++
	}
	if rec.attempts > 0 || rec.recovered {
		u.counters.Replayed++
	}
}

// sleepBackoff sleeps the current backoff with ±50% jitter, doubling it for
// next time; false means the uplink is stopping.
func (u *Uplink) sleepBackoff(backoff *time.Duration) bool {
	u.mu.Lock()
	jitter := 0.5 + u.rng.Float64()
	u.mu.Unlock()
	d := time.Duration(float64(*backoff) * jitter)
	*backoff *= 2
	if *backoff > u.cfg.BackoffMax {
		*backoff = u.cfg.BackoffMax
	}
	select {
	case <-u.stop:
		return false
	case <-time.After(d):
		return true
	}
}
