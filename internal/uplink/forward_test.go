package uplink

import (
	"sync"
	"testing"
	"time"

	"repro/internal/proto"
)

// forward_test exercises the tentpole claim that the uplink is
// source-agnostic: the same spool/redial/dedup machinery that carries
// DC→PDME reports carries PDME→PDME fused summaries, with no DC anywhere
// in the loop. A "shard PDME" here is just an uplink delivering summaries;
// the "aggregator PDME" is a proto.Server with a summary sink and a dedup
// window.

// summaryCollector records delivered summaries with their wire tags.
type summaryCollector struct {
	mu        sync.Mutex
	summaries []*proto.FusedSummary
	tags      []struct {
		shard     string
		boot, seq uint64
	}
}

func (c *summaryCollector) DeliverSummary(s *proto.FusedSummary, shardID string, boot, seq uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	cp := *s
	c.summaries = append(c.summaries, &cp)
	c.tags = append(c.tags, struct {
		shard     string
		boot, seq uint64
	}{shardID, boot, seq})
	return nil
}

func (c *summaryCollector) conditions() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.summaries))
	for i, s := range c.summaries {
		out[i] = s.Condition
	}
	return out
}

// rejectReports fails any raw report, mimicking an aggregator-only server.
type rejectReports struct{}

func (rejectReports) Deliver(*proto.Report) error {
	return proto.ErrRejected
}

func testSummary(i int) *proto.FusedSummary {
	return &proto.FusedSummary{
		ShardID:      "shard-a",
		Component:    "machine/m1",
		Condition:    "cond-" + string(rune('a'+i)),
		Group:        "g",
		Belief:       0.5,
		Plausibility: 0.9,
		Unknown:      0.4,
		Reports:      i + 1,
		Reliability:  1,
		Prognostics: proto.PrognosticVector{
			{Probability: 0.2, HorizonSeconds: 3600},
		},
		UpdatedAt: time.Date(2026, 1, 1, 0, i, 0, 0, time.UTC),
	}
}

func startAggServer(t *testing.T, addr string, sink *summaryCollector, dedup *proto.Dedup) *proto.Server {
	t.Helper()
	srv := proto.NewServer(rejectReports{})
	srv.SetDedup(dedup)
	srv.SetSummarySink(sink)
	if _, err := srv.Start(addr); err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestForwardSummariesPDMEToPDME drives the full forwarding contract:
// happy-path FIFO delivery, spooling across an aggregator outage with
// redial, dedup-window continuity across an aggregator restart, and spool
// replay across a sender restart on the same spool dir — exactly-once
// end to end, no DC involved.
func TestForwardSummariesPDMEToPDME(t *testing.T) {
	addr := reserveAddr(t)
	sink := &summaryCollector{}
	dedup := proto.NewDedup(0)
	srv := startAggServer(t, addr, sink, dedup)

	cfg := fastConfig(addr, t.TempDir())
	cfg.DCID = "shard-a"
	u, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	boot := u.Boot()

	// Phase 1: happy path.
	for i := 0; i < 3; i++ {
		if err := u.DeliverSummary(testSummary(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := u.Flush(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Phase 2: aggregator outage. Summaries spool; the sender redials until
	// a new server (sharing the dedup window, as a journal-recovered
	// aggregator would) comes back on the same address.
	srv.Close()
	for i := 3; i < 6; i++ {
		if err := u.DeliverSummary(testSummary(i)); err != nil {
			t.Fatal(err)
		}
	}
	srv2 := startAggServer(t, addr, sink, dedup)
	defer srv2.Close()
	if err := u.Flush(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Phase 3: sender restart. Spool two more, close immediately (the
	// sender may or may not have drained them), and let the recovered spool
	// redeliver on a fresh uplink; the dedup window absorbs any overlap.
	for i := 6; i < 8; i++ {
		if err := u.DeliverSummary(testSummary(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := u.Close(); err != nil {
		t.Fatal(err)
	}
	u2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer u2.Close()
	if got := u2.Boot(); got != boot {
		t.Fatalf("boot changed across restart on persistent spool: %d != %d", got, boot)
	}
	if err := u2.Flush(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Exactly-once: each condition fused once, in FIFO order.
	want := make([]string, 8)
	for i := range want {
		want[i] = testSummary(i).Condition
	}
	got := sink.conditions()
	if len(got) != len(want) {
		t.Fatalf("got %d summaries %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("summary order: got %v, want %v", got, want)
		}
	}

	// Wire tags: sender identity is the shard id; boot is stable; sequences
	// strictly increase (FIFO under one dedup window).
	sink.mu.Lock()
	defer sink.mu.Unlock()
	var lastSeq uint64
	for i, tag := range sink.tags {
		if tag.shard != "shard-a" {
			t.Fatalf("tag %d: shard %q, want shard-a", i, tag.shard)
		}
		if tag.boot != boot {
			t.Fatalf("tag %d: boot %d, want %d", i, tag.boot, boot)
		}
		if tag.seq <= lastSeq {
			t.Fatalf("tag %d: seq %d not increasing past %d", i, tag.seq, lastSeq)
		}
		lastSeq = tag.seq
	}
}

// TestForwardSummariesMixWithReports proves summaries and reports share one
// FIFO: interleaved Deliver/DeliverSummary drain in spool order through the
// same connection.
func TestForwardSummariesMixWithReports(t *testing.T) {
	reports := &collector{}
	sums := &summaryCollector{}
	srv := proto.NewServer(reports)
	srv.SetDedup(proto.NewDedup(0))
	srv.SetSummarySink(sums)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	u, err := New(fastConfig(addr, ""))
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	for i := 0; i < 4; i++ {
		if err := u.Deliver(testReport(i)); err != nil {
			t.Fatal(err)
		}
		if err := u.DeliverSummary(testSummary(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := u.Flush(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := len(reports.explanations()); got != 4 {
		t.Fatalf("reports delivered %d, want 4", got)
	}
	if got := len(sums.conditions()); got != 4 {
		t.Fatalf("summaries delivered %d, want 4", got)
	}
	c := u.Counters()
	if c.Acked+c.DedupAcks != 8 || c.Dropped != 0 {
		t.Fatalf("counters %+v: want 8 acked total, 0 dropped", c)
	}
}

// TestSummaryRejectedWithoutSink: a shard uplink aimed at a plain PDME (no
// summary sink) must fail loudly — the frame is rejected and counted as a
// drop, never silently ignored.
func TestSummaryRejectedWithoutSink(t *testing.T) {
	sink := &collector{}
	addr, srv := startServer(t, "127.0.0.1:0", sink, proto.NewDedup(0))
	defer srv.Close()
	u, err := New(fastConfig(addr, ""))
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	if err := u.DeliverSummary(testSummary(0)); err != nil {
		t.Fatal(err)
	}
	if err := u.Flush(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	c := u.Counters()
	if c.Dropped != 1 || c.Acked != 0 {
		t.Fatalf("counters %+v: want the summary rejected (Dropped=1)", c)
	}
}
