package uplink

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/proto"
)

func testReport(i int) *proto.Report {
	return &proto.Report{
		DCID:               "dc-1",
		KnowledgeSourceID:  "ks/dli",
		SensedObjectID:     "motor/1",
		MachineConditionID: "motor imbalance",
		Severity:           0.5,
		Belief:             0.8,
		Explanation:        "r" + string(rune('0'+i)),
		Timestamp:          time.Date(1998, 8, 15, 12, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Minute),
	}
}

func TestSpoolRecoversPendingAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := openSpool(dir, "dc-1", 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		seq, dropped, err := s.add(testReport(i))
		if err != nil || len(dropped) != 0 {
			t.Fatal(seq, dropped, err)
		}
		if seq != uint64(i) {
			t.Fatalf("seq %d, want %d", seq, i)
		}
	}
	if err := s.resolve(1); err != nil {
		t.Fatal(err)
	}
	if err := s.close(); err != nil {
		t.Fatal(err)
	}

	s2, err := openSpool(dir, "dc-1", 100)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.close()
	if len(s2.pending) != 2 {
		t.Fatalf("recovered %d pending, want 2", len(s2.pending))
	}
	// The boot incarnation persists with the file, so replayed sequences
	// stay deduplicable on the PDME across DC restarts.
	if s2.boot != s.boot || s2.boot == 0 {
		t.Errorf("boot %d after reopen, want the persisted %d", s2.boot, s.boot)
	}
	for i, rec := range s2.pending {
		if rec.seq != uint64(i+2) || !rec.recovered {
			t.Errorf("pending[%d] = seq %d recovered %v", i, rec.seq, rec.recovered)
		}
		if want := "r" + string(rune('0'+i+2)); rec.report.Explanation != want {
			t.Errorf("pending[%d] explanation %q, want %q", i, rec.report.Explanation, want)
		}
	}
	// Monotonic sequences continue where the previous process stopped.
	seq, _, err := s2.add(testReport(4))
	if err != nil || seq != 4 {
		t.Fatalf("next seq %d err %v, want 4", seq, err)
	}
}

func TestSpoolSequenceSurvivesFullDrain(t *testing.T) {
	dir := t.TempDir()
	s, err := openSpool(dir, "dc-1", 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, _, err := s.add(testReport(i)); err != nil {
			t.Fatal(err)
		}
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if err := s.resolve(seq); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.close(); err != nil {
		t.Fatal(err)
	}
	// Reopen compacts (resolved records recovered); the sequence watermark
	// must keep new sequences monotonic — reuse would make the PDME's dedup
	// window swallow brand-new reports.
	s2, err := openSpool(dir, "dc-1", 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(s2.pending) != 0 || s2.nextSeq != 4 {
		t.Fatalf("pending %d nextSeq %d, want 0 and 4", len(s2.pending), s2.nextSeq)
	}
	if err := s2.close(); err != nil {
		t.Fatal(err)
	}
	// And again, after the compacted file (watermark only) is re-read.
	s3, err := openSpool(dir, "dc-1", 100)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.close()
	if seq, _, err := s3.add(testReport(4)); err != nil || seq != 4 {
		t.Fatalf("seq %d err %v, want 4", seq, err)
	}
}

func TestSpoolTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, err := openSpool(dir, "dc-1", 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if _, _, err := s.add(testReport(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, encodeSpoolFile("dc-1"))
	// Simulate a power loss mid-append: a prefix of a record's frame.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := make([]byte, 9)
	torn[0] = 0xD0 // first byte of recMagic (little-endian)
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := openSpool(dir, "dc-1", 100)
	if err != nil {
		t.Fatalf("torn tail not recovered: %v", err)
	}
	defer s2.close()
	if len(s2.pending) != 2 {
		t.Fatalf("recovered %d pending after torn tail, want 2", len(s2.pending))
	}
}

func TestSpoolInteriorCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	s, err := openSpool(dir, "dc-1", 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, _, err := s.add(testReport(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, encodeSpoolFile("dc-1"))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF // flip a bit mid-file
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := openSpool(dir, "dc-1", 100); err == nil {
		t.Fatal("interior corruption accepted")
	} else if !strings.Contains(err.Error(), "corrupted") && !strings.Contains(err.Error(), "undecodable") {
		t.Errorf("unexpected corruption error: %v", err)
	}
}

func TestSpoolRefusesForeignDCID(t *testing.T) {
	dir := t.TempDir()
	s, err := openSpool(dir, "dc-1", 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.close(); err != nil {
		t.Fatal(err)
	}
	// Rename the spool so another DC id would open the same file.
	old := filepath.Join(dir, encodeSpoolFile("dc-1"))
	if err := os.Rename(old, filepath.Join(dir, encodeSpoolFile("dc-2"))); err != nil {
		t.Fatal(err)
	}
	if _, err := openSpool(dir, "dc-2", 100); err == nil {
		t.Fatal("foreign spool accepted")
	}
}

func TestSpoolCapacityDropsOldest(t *testing.T) {
	s, err := openSpool("", "dc-1", 3)
	if err != nil {
		t.Fatal(err)
	}
	var droppedAll []uint64
	for i := 1; i <= 5; i++ {
		_, dropped, err := s.add(testReport(i))
		if err != nil {
			t.Fatal(err)
		}
		droppedAll = append(droppedAll, dropped...)
	}
	if len(droppedAll) != 2 || droppedAll[0] != 1 || droppedAll[1] != 2 {
		t.Fatalf("dropped %v, want oldest-first [1 2]", droppedAll)
	}
	if len(s.pending) != 3 || s.pending[0].seq != 3 {
		t.Fatalf("pending head %d len %d", s.pending[0].seq, len(s.pending))
	}
}

func TestSpoolCompactionShrinksFile(t *testing.T) {
	dir := t.TempDir()
	s, err := openSpool(dir, "dc-1", 10000)
	if err != nil {
		t.Fatal(err)
	}
	defer s.close()
	// Cycle well past compactEvery resolved records.
	for i := 0; i < compactEvery+10; i++ {
		seq, _, err := s.add(testReport(i % 10))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.resolve(seq); err != nil {
			t.Fatal(err)
		}
	}
	if s.resolved >= compactEvery {
		t.Errorf("resolved count %d never compacted", s.resolved)
	}
	info, err := os.Stat(filepath.Join(dir, encodeSpoolFile("dc-1")))
	if err != nil {
		t.Fatal(err)
	}
	// A compacted empty spool is just header + watermark; give slack for a
	// few post-compaction records.
	if info.Size() > 4096 {
		t.Errorf("spool file %d bytes after full drain; compaction missing", info.Size())
	}
	if s.nextSeq != uint64(compactEvery+11) {
		t.Errorf("nextSeq %d after compaction, want %d", s.nextSeq, compactEvery+11)
	}
}
