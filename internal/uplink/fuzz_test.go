package uplink

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// spoolFileBytes builds a realistic spool file by driving the real
// write path, then returns its raw bytes for use as a fuzz seed.
func spoolFileBytes(tb testing.TB, mutate func(s *spool)) []byte {
	tb.Helper()
	dir := tb.TempDir()
	s, err := openSpool(dir, "dc-fuzz", 8)
	if err != nil {
		tb.Fatalf("seed spool: %v", err)
	}
	mutate(s)
	if err := s.close(); err != nil {
		tb.Fatalf("close seed spool: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, encodeSpoolFile("dc-fuzz")))
	if err != nil {
		tb.Fatalf("read seed spool: %v", err)
	}
	return data
}

// FuzzSpoolRecover writes arbitrary bytes as a spool file and opens it.
// Recovery must never panic. When it accepts the file, the rebuilt state
// must be internally consistent (every pending sequence below the
// next-sequence watermark, no duplicate pending sequences) and stable: a
// second open after close must see the same boot id, pending sequences,
// and watermark, because recovery repairs the file in place (torn tails
// are truncated, resolved records compacted away).
func FuzzSpoolRecover(f *testing.F) {
	full := spoolFileBytes(f, func(s *spool) {
		for i := 0; i < 4; i++ {
			if _, _, err := s.add(testReport(i)); err != nil {
				f.Fatalf("seed add: %v", err)
			}
		}
		if err := s.resolve(2); err != nil {
			f.Fatalf("seed resolve: %v", err)
		}
	})
	f.Add(full)
	f.Add(spoolFileBytes(f, func(s *spool) {})) // header only
	f.Add(full[:len(full)-3])                   // torn tail mid-record
	f.Add(full[:len(spoolMagic)+4])             // torn header
	flipped := bytes.Clone(full)
	flipped[len(flipped)-1] ^= 0x40 // CRC breaks on the last record
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte("MPROSUP2 but not really a spool"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, encodeSpoolFile("dc-fuzz"))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := openSpool(dir, "dc-fuzz", 8)
		if err != nil {
			return // refused input: any error is acceptable, panics are not
		}
		seqs := make(map[uint64]bool)
		for _, rec := range s.pending {
			if rec.seq >= s.nextSeq {
				t.Fatalf("pending seq %d not below watermark %d", rec.seq, s.nextSeq)
			}
			if seqs[rec.seq] {
				t.Fatalf("duplicate pending seq %d", rec.seq)
			}
			seqs[rec.seq] = true
			if rec.report == nil {
				t.Fatalf("pending seq %d recovered without a report", rec.seq)
			}
		}
		if err := s.close(); err != nil {
			t.Fatalf("close recovered spool: %v", err)
		}

		s2, err := openSpool(dir, "dc-fuzz", 8)
		if err != nil {
			t.Fatalf("recovery not stable: reopen failed: %v", err)
		}
		defer func() { _ = s2.close() }()
		if s2.boot != s.boot {
			t.Fatalf("boot changed across reopen: %d then %d", s.boot, s2.boot)
		}
		if s2.nextSeq != s.nextSeq {
			t.Fatalf("watermark changed across reopen: %d then %d", s.nextSeq, s2.nextSeq)
		}
		if len(s2.pending) != len(s.pending) {
			t.Fatalf("pending count changed across reopen: %d then %d", len(s.pending), len(s2.pending))
		}
		for i, rec := range s2.pending {
			if rec.seq != s.pending[i].seq {
				t.Fatalf("pending[%d] seq changed across reopen: %d then %d", i, s.pending[i].seq, rec.seq)
			}
		}
	})
}
