package relstore

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func machineSchema() Schema {
	return Schema{
		Name: "machines",
		Columns: []Column{
			{Name: "name", Type: String, Indexed: true},
			{Name: "kind", Type: String},
			{Name: "power_kw", Type: Float},
			{Name: "installed", Type: Time},
			{Name: "active", Type: Bool},
			{Name: "hours", Type: Int},
			{Name: "notes", Type: String, Nullable: true},
			{Name: "blob", Type: Bytes, Nullable: true},
		},
	}
}

func sampleRow(i int) Row {
	return Row{
		"name":      fmt.Sprintf("machine-%d", i),
		"kind":      "chiller",
		"power_kw":  float64(i) * 1.5,
		"installed": time.Date(1998, 8, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Hour),
		"active":    i%2 == 0,
		"hours":     int64(i * 100),
	}
}

func TestSchemaValidation(t *testing.T) {
	bad := []Schema{
		{Name: ""},
		{Name: "t"},
		{Name: "t", Columns: []Column{{Name: "", Type: Int}}},
		{Name: "t", Columns: []Column{{Name: "a", Type: Int}, {Name: "a", Type: Int}}},
		{Name: "t", Columns: []Column{{Name: "id", Type: Int}}},
		{Name: "t", Columns: []Column{{Name: "a", Type: ColumnType(99)}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	if err := machineSchema().Validate(); err != nil {
		t.Errorf("good schema rejected: %v", err)
	}
}

func TestColumnTypeString(t *testing.T) {
	want := map[ColumnType]string{Int: "INTEGER", Float: "REAL", String: "TEXT",
		Bool: "BOOLEAN", Time: "TIMESTAMP", Bytes: "BLOB", ColumnType(9): "UNKNOWN"}
	for ct, s := range want {
		if ct.String() != s {
			t.Errorf("%d: %q != %q", ct, ct.String(), s)
		}
	}
}

func TestCRUD(t *testing.T) {
	db := NewMemory()
	if err := db.CreateTable(machineSchema()); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(machineSchema()); err == nil {
		t.Error("duplicate table should error")
	}
	id, err := db.Insert("machines", sampleRow(1))
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Errorf("first id %d", id)
	}
	got, err := db.Get("machines", id)
	if err != nil {
		t.Fatal(err)
	}
	if got["name"] != "machine-1" || got.ID() != 1 {
		t.Errorf("row %v", got)
	}
	if err := db.Update("machines", id, Row{"hours": int64(999)}); err != nil {
		t.Fatal(err)
	}
	got, _ = db.Get("machines", id)
	if got["hours"] != int64(999) || got["name"] != "machine-1" {
		t.Errorf("update lost data: %v", got)
	}
	if err := db.Delete("machines", id); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get("machines", id); err == nil {
		t.Error("get after delete should error")
	}
	if err := db.Delete("machines", id); err == nil {
		t.Error("double delete should error")
	}
	if err := db.Update("machines", 42, Row{"hours": int64(1)}); err == nil {
		t.Error("update missing row should error")
	}
	// Unknown-table errors.
	if _, err := db.Insert("nope", sampleRow(1)); err == nil {
		t.Error("insert into missing table")
	}
	if _, err := db.Get("nope", 1); err == nil {
		t.Error("get from missing table")
	}
	if _, err := db.Select("nope", nil, 0); err == nil {
		t.Error("select from missing table")
	}
	if _, err := db.Count("nope", nil); err == nil {
		t.Error("count missing table")
	}
	if err := db.Update("nope", 1, nil); err == nil {
		t.Error("update missing table")
	}
	if err := db.Delete("nope", 1); err == nil {
		t.Error("delete missing table")
	}
}

func TestTypeEnforcement(t *testing.T) {
	db := NewMemory()
	if err := db.CreateTable(machineSchema()); err != nil {
		t.Fatal(err)
	}
	r := sampleRow(1)
	r["hours"] = "not an int"
	if _, err := db.Insert("machines", r); err == nil {
		t.Error("wrong type should be rejected")
	}
	r = sampleRow(1)
	r["ghost"] = 1
	if _, err := db.Insert("machines", r); err == nil {
		t.Error("unknown column should be rejected")
	}
	r = sampleRow(1)
	r["id"] = int64(5)
	if _, err := db.Insert("machines", r); err == nil {
		t.Error("explicit id should be rejected")
	}
	r = sampleRow(1)
	delete(r, "name")
	if _, err := db.Insert("machines", r); err == nil {
		t.Error("missing non-nullable column should be rejected")
	}
	r = sampleRow(1)
	r["notes"] = nil // nullable: fine
	if _, err := db.Insert("machines", r); err != nil {
		t.Errorf("nullable nil rejected: %v", err)
	}
	r = sampleRow(2)
	r["name"] = nil // non-nullable nil
	if _, err := db.Insert("machines", r); err != nil {
		// expected
	} else {
		t.Error("nil in non-nullable column should be rejected")
	}
}

func TestSelectAndPredicates(t *testing.T) {
	db := NewMemory()
	if err := db.CreateTable(machineSchema()); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 20; i++ {
		if _, err := db.Insert("machines", sampleRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	all, err := db.Select("machines", nil, 0)
	if err != nil || len(all) != 20 {
		t.Fatalf("select all: %d rows err %v", len(all), err)
	}
	// Sorted by id.
	for i := 1; i < len(all); i++ {
		if all[i].ID() <= all[i-1].ID() {
			t.Fatal("rows not sorted by id")
		}
	}
	// Indexed equality.
	rows, err := db.Select("machines", Eq("name", "machine-7"), 0)
	if err != nil || len(rows) != 1 || rows[0]["hours"] != int64(700) {
		t.Fatalf("indexed eq: %v err %v", rows, err)
	}
	// Limit.
	rows, _ = db.Select("machines", nil, 5)
	if len(rows) != 5 {
		t.Errorf("limit: %d", len(rows))
	}
	// And with index hint plus residual condition.
	rows, _ = db.Select("machines", And(Eq("name", "machine-8"), GtFloat("power_kw", 100)), 0)
	if len(rows) != 0 {
		t.Errorf("and residual: %v", rows)
	}
	rows, _ = db.Select("machines", And(Eq("name", "machine-8"), GtFloat("power_kw", 1)), 0)
	if len(rows) != 1 {
		t.Errorf("and match: %v", rows)
	}
	// Or / Not / range predicates.
	rows, _ = db.Select("machines", Or(Eq("name", "machine-1"), Eq("name", "machine-2")), 0)
	if len(rows) != 2 {
		t.Errorf("or: %d", len(rows))
	}
	n, _ := db.Count("machines", Not(Eq("kind", "chiller")))
	if n != 0 {
		t.Errorf("not: %d", n)
	}
	n, _ = db.Count("machines", GtInt("hours", 1500))
	if n != 5 {
		t.Errorf("gtint: %d", n)
	}
	n, _ = db.Count("machines", LtFloat("power_kw", 3.1))
	if n != 2 {
		t.Errorf("ltfloat: %d", n)
	}
	cut := time.Date(1998, 8, 1, 10, 30, 0, 0, time.UTC)
	n, _ = db.Count("machines", After("installed", cut))
	if n != 10 {
		t.Errorf("after: %d", n)
	}
	n, _ = db.Count("machines", Before("installed", cut))
	if n != 10 {
		t.Errorf("before: %d", n)
	}
	// SelectOne.
	one, err := db.SelectOne("machines", Eq("name", "machine-3"))
	if err != nil || one["hours"] != int64(300) {
		t.Errorf("selectone: %v %v", one, err)
	}
	if _, err := db.SelectOne("machines", Eq("name", "nope")); err == nil {
		t.Error("selectone miss should error")
	}
	// Returned rows are clones: mutating them must not affect the store.
	one["hours"] = int64(-1)
	again, _ := db.SelectOne("machines", Eq("name", "machine-3"))
	if again["hours"] != int64(300) {
		t.Error("row mutation leaked into store")
	}
}

func TestIndexMaintenance(t *testing.T) {
	db := NewMemory()
	if err := db.CreateTable(machineSchema()); err != nil {
		t.Fatal(err)
	}
	id, _ := db.Insert("machines", sampleRow(1))
	// Rename; old index entry must be gone, new one live.
	if err := db.Update("machines", id, Row{"name": "renamed"}); err != nil {
		t.Fatal(err)
	}
	rows, _ := db.Select("machines", Eq("name", "machine-1"), 0)
	if len(rows) != 0 {
		t.Error("stale index entry after update")
	}
	rows, _ = db.Select("machines", Eq("name", "renamed"), 0)
	if len(rows) != 1 {
		t.Error("missing index entry after update")
	}
	if err := db.Delete("machines", id); err != nil {
		t.Fatal(err)
	}
	rows, _ = db.Select("machines", Eq("name", "renamed"), 0)
	if len(rows) != 0 {
		t.Error("stale index entry after delete")
	}
}

func TestEnsureTableAndNames(t *testing.T) {
	db := NewMemory()
	if err := db.EnsureTable(machineSchema()); err != nil {
		t.Fatal(err)
	}
	if err := db.EnsureTable(machineSchema()); err != nil {
		t.Fatalf("second ensure: %v", err)
	}
	if !db.HasTable("machines") || db.HasTable("nope") {
		t.Error("HasTable wrong")
	}
	if names := db.TableNames(); len(names) != 1 || names[0] != "machines" {
		t.Errorf("names %v", names)
	}
	s, err := db.TableSchema("machines")
	if err != nil || s.Name != "machines" {
		t.Errorf("schema %v err %v", s, err)
	}
	if _, err := db.TableSchema("nope"); err == nil {
		t.Error("schema of missing table")
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dc", "dc.db")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(machineSchema()); err != nil {
		t.Fatal(err)
	}
	var ids []int64
	for i := 1; i <= 10; i++ {
		r := sampleRow(i)
		if i == 3 {
			r["notes"] = "needs bearing check"
			r["blob"] = []byte{1, 2, 3, 255}
		}
		id, err := db.Insert("machines", r)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := db.Update("machines", ids[0], Row{"hours": int64(12345)}); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete("machines", ids[9]); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	n, _ := re.Count("machines", nil)
	if n != 9 {
		t.Fatalf("replayed %d rows, want 9", n)
	}
	r, err := re.Get("machines", ids[0])
	if err != nil || r["hours"] != int64(12345) {
		t.Errorf("replayed update lost: %v err %v", r, err)
	}
	r, _ = re.Get("machines", ids[2])
	if r["notes"] != "needs bearing check" {
		t.Errorf("string round trip: %v", r["notes"])
	}
	if b, ok := r["blob"].([]byte); !ok || len(b) != 4 || b[3] != 255 {
		t.Errorf("bytes round trip: %v", r["blob"])
	}
	it, ok := r["installed"].(time.Time)
	if !ok || !it.Equal(time.Date(1998, 8, 1, 3, 0, 0, 0, time.UTC)) {
		t.Errorf("time round trip: %v", r["installed"])
	}
	// New ids continue past the replayed maximum.
	id, err := re.Insert("machines", sampleRow(100))
	if err != nil {
		t.Fatal(err)
	}
	if id <= ids[8] {
		t.Errorf("id %d not past replayed max", id)
	}
}

func TestCompact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dc.db")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(machineSchema()); err != nil {
		t.Fatal(err)
	}
	// Generate churn: many updates that compaction should collapse.
	id, _ := db.Insert("machines", sampleRow(1))
	for i := 0; i < 500; i++ {
		if err := db.Update("machines", id, Row{"hours": int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Compact(path); err != nil {
		t.Fatal(err)
	}
	// Post-compact writes still work.
	if _, err := db.Insert("machines", sampleRow(2)); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	n, _ := re.Count("machines", nil)
	if n != 2 {
		t.Fatalf("after compact+reopen: %d rows", n)
	}
	r, _ := re.Get("machines", id)
	if r["hours"] != int64(499) {
		t.Errorf("compacted state lost final update: %v", r["hours"])
	}
	if err := NewMemory().Compact(path); err == nil {
		t.Error("compact on memory db should error")
	}
}

func TestConcurrentAccess(t *testing.T) {
	db := NewMemory()
	if err := db.CreateTable(machineSchema()); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := db.Insert("machines", sampleRow(g*1000+i)); err != nil {
					errs <- err
					return
				}
				if _, err := db.Select("machines", Eq("kind", "chiller"), 10); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	n, _ := db.Count("machines", nil)
	if n != 400 {
		t.Fatalf("concurrent inserts: %d rows, want 400", n)
	}
	// All ids unique.
	rows, _ := db.Select("machines", nil, 0)
	seen := map[int64]bool{}
	for _, r := range rows {
		if seen[r.ID()] {
			t.Fatalf("duplicate id %d", r.ID())
		}
		seen[r.ID()] = true
	}
}

func TestEncodeDecodeRowProperty(t *testing.T) {
	// Property: decodeRow(encodeRow(r)) == r for random rows.
	s := machineSchema()
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := Row{
			"name":      fmt.Sprintf("m-%d", rng.Int63()),
			"kind":      "k",
			"power_kw":  rng.NormFloat64() * 1e6,
			"installed": time.Unix(rng.Int63n(1e9), rng.Int63n(1e9)).UTC(),
			"active":    rng.Intn(2) == 0,
			"hours":     rng.Int63() - rng.Int63(),
		}
		if rng.Intn(2) == 0 {
			r["notes"] = nil
		} else {
			b := make([]byte, rng.Intn(32))
			rng.Read(b)
			r["blob"] = b
			r["notes"] = string(b) // arbitrary-ish text
		}
		enc, err := encodeRow(r, s)
		if err != nil {
			return false
		}
		dec, err := decodeRow(enc, s)
		if err != nil {
			return false
		}
		for k, v := range r {
			if !valuesEqual(dec[k], v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsertMemory(b *testing.B) {
	db := NewMemory()
	if err := db.CreateTable(machineSchema()); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Insert("machines", sampleRow(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndexedLookup(b *testing.B) {
	db := NewMemory()
	if err := db.CreateTable(machineSchema()); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		if _, err := db.Insert("machines", sampleRow(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := db.Select("machines", Eq("name", "machine-5000"), 0)
		if err != nil || len(rows) != 1 {
			b.Fatalf("lookup failed: %v %v", rows, err)
		}
	}
}

func BenchmarkInsertDurable(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.db")
	db, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if err := db.CreateTable(machineSchema()); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Insert("machines", sampleRow(i)); err != nil {
			b.Fatal(err)
		}
	}
}
