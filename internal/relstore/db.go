package relstore

import (
	"fmt"
	"sort"
	"sync"
)

// DB is an embedded relational database: a set of typed tables guarded by a
// single RW mutex, with optional durability (see Open). The zero value is
// not usable; construct with NewMemory or Open.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*table
	logger *walLogger // nil for pure in-memory databases
}

// NewMemory returns a volatile in-memory database.
func NewMemory() *DB {
	return &DB{tables: make(map[string]*table)}
}

// CreateTable creates a table from the schema. It fails if the table exists.
func (db *DB) CreateTable(s Schema) error {
	if err := s.Validate(); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.tables[s.Name]; exists {
		return fmt.Errorf("relstore: table %q already exists", s.Name)
	}
	db.tables[s.Name] = newTable(s)
	if db.logger != nil {
		return db.logger.appendCreateTable(s)
	}
	return nil
}

// EnsureTable creates the table if it does not already exist. If it exists,
// the existing schema is kept (no migration support).
func (db *DB) EnsureTable(s Schema) error {
	db.mu.RLock()
	_, exists := db.tables[s.Name]
	db.mu.RUnlock()
	if exists {
		return nil
	}
	err := db.CreateTable(s)
	if err != nil && db.HasTable(s.Name) {
		return nil // lost a benign race with another creator
	}
	return err
}

// HasTable reports whether a table exists.
func (db *DB) HasTable(name string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, ok := db.tables[name]
	return ok
}

// TableNames returns the table names in sorted order.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TableSchema returns the schema of a table.
func (db *DB) TableSchema(name string) (Schema, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return Schema{}, fmt.Errorf("relstore: no table %q", name)
	}
	return t.schema, nil
}

// Insert adds a row and returns its assigned id.
func (db *DB) Insert(tableName string, r Row) (int64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[tableName]
	if !ok {
		return 0, fmt.Errorf("relstore: no table %q", tableName)
	}
	id, err := t.insert(r, 0)
	if err != nil {
		return 0, err
	}
	if db.logger != nil {
		if err := db.logger.appendInsert(tableName, id, t.rows[id], t.schema); err != nil {
			// Roll back the in-memory insert so memory and disk agree.
			_ = t.delete(id)
			return 0, err
		}
	}
	return id, nil
}

// Get returns the row with the given id.
func (db *DB) Get(tableName string, id int64) (Row, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[tableName]
	if !ok {
		return nil, fmt.Errorf("relstore: no table %q", tableName)
	}
	r, ok := t.get(id)
	if !ok {
		return nil, fmt.Errorf("relstore: table %q has no row %d", tableName, id)
	}
	return r, nil
}

// Update applies the non-id column changes to the row with the given id.
func (db *DB) Update(tableName string, id int64, changes Row) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[tableName]
	if !ok {
		return fmt.Errorf("relstore: no table %q", tableName)
	}
	if err := t.update(id, changes); err != nil {
		return err
	}
	if db.logger != nil {
		return db.logger.appendUpdate(tableName, id, changes, t.schema)
	}
	return nil
}

// Delete removes the row with the given id.
func (db *DB) Delete(tableName string, id int64) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[tableName]
	if !ok {
		return fmt.Errorf("relstore: no table %q", tableName)
	}
	if err := t.delete(id); err != nil {
		return err
	}
	if db.logger != nil {
		return db.logger.appendDelete(tableName, id)
	}
	return nil
}

// Select returns rows matching the predicate, sorted by id, at most limit of
// them (limit <= 0 means unlimited). A nil predicate matches all rows.
func (db *DB) Select(tableName string, p Predicate, limit int) ([]Row, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[tableName]
	if !ok {
		return nil, fmt.Errorf("relstore: no table %q", tableName)
	}
	return t.selectRows(p, limit), nil
}

// SelectOne returns the first row matching the predicate, or an error when
// none matches.
func (db *DB) SelectOne(tableName string, p Predicate) (Row, error) {
	rows, err := db.Select(tableName, p, 1)
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("relstore: no row in %q matches predicate", tableName)
	}
	return rows[0], nil
}

// Count returns the number of rows matching the predicate.
func (db *DB) Count(tableName string, p Predicate) (int, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[tableName]
	if !ok {
		return 0, fmt.Errorf("relstore: no table %q", tableName)
	}
	return t.count(p), nil
}

// Close flushes and closes the underlying log, if any. The database must not
// be used after Close.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.logger != nil {
		return db.logger.close()
	}
	return nil
}
