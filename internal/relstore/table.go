package relstore

import (
	"fmt"
	"sort"
	"time"
)

// table is the in-memory representation of one relation.
type table struct {
	schema  Schema
	cols    map[string]Column
	rows    map[int64]Row
	indexes map[string]map[any][]int64 // column -> value -> row ids
	nextID  int64
}

func newTable(s Schema) *table {
	t := &table{
		schema:  s,
		cols:    make(map[string]Column, len(s.Columns)),
		rows:    make(map[int64]Row),
		indexes: make(map[string]map[any][]int64),
		nextID:  1,
	}
	for _, c := range s.Columns {
		t.cols[c.Name] = c
		if c.Indexed {
			t.indexes[c.Name] = make(map[any][]int64)
		}
	}
	return t
}

// indexHintOf safely extracts an index hint from a possibly-nil predicate.
func indexHintOf(p Predicate) (string, any, bool) {
	if p == nil {
		return "", nil, false
	}
	return p.indexHint()
}

// indexKey converts a value into a comparable map key for hash indexes.
// time.Time is normalized to UnixNano; []byte to string.
func indexKey(v any) any {
	switch x := v.(type) {
	case time.Time:
		return x.UnixNano()
	case []byte:
		return string(x)
	default:
		return x
	}
}

func (t *table) checkRow(r Row, partial bool) error {
	for name, v := range r {
		if name == "id" {
			return fmt.Errorf("relstore: cannot set id column explicitly")
		}
		c, ok := t.cols[name]
		if !ok {
			return fmt.Errorf("relstore: table %q has no column %q", t.schema.Name, name)
		}
		if err := checkValue(c.Type, c.Nullable, v); err != nil {
			return fmt.Errorf("relstore: table %q column %q: %w", t.schema.Name, name, err)
		}
	}
	if !partial {
		for _, c := range t.schema.Columns {
			if _, present := r[c.Name]; !present && !c.Nullable {
				return fmt.Errorf("relstore: table %q missing non-nullable column %q", t.schema.Name, c.Name)
			}
		}
	}
	return nil
}

func (t *table) addToIndexes(id int64, r Row) {
	for col, idx := range t.indexes {
		v, ok := r[col]
		if !ok || v == nil {
			continue
		}
		k := indexKey(v)
		idx[k] = append(idx[k], id)
	}
}

func (t *table) removeFromIndexes(id int64, r Row) {
	for col, idx := range t.indexes {
		v, ok := r[col]
		if !ok || v == nil {
			continue
		}
		k := indexKey(v)
		ids := idx[k]
		for i, x := range ids {
			if x == id {
				idx[k] = append(ids[:i], ids[i+1:]...)
				break
			}
		}
		if len(idx[k]) == 0 {
			delete(idx, k)
		}
	}
}

// insert adds the row (without id) and returns the assigned id. If forceID
// is > 0 the row is inserted with that id (used during log replay).
func (t *table) insert(r Row, forceID int64) (int64, error) {
	if err := t.checkRow(r, false); err != nil {
		return 0, err
	}
	id := forceID
	if id <= 0 {
		id = t.nextID
	}
	if _, exists := t.rows[id]; exists {
		return 0, fmt.Errorf("relstore: table %q id %d already exists", t.schema.Name, id)
	}
	if id >= t.nextID {
		t.nextID = id + 1
	}
	stored := r.clone()
	stored["id"] = id
	t.rows[id] = stored
	t.addToIndexes(id, stored)
	return id, nil
}

func (t *table) get(id int64) (Row, bool) {
	r, ok := t.rows[id]
	if !ok {
		return nil, false
	}
	return r.clone(), true
}

func (t *table) update(id int64, changes Row) error {
	old, ok := t.rows[id]
	if !ok {
		return fmt.Errorf("relstore: table %q has no row %d", t.schema.Name, id)
	}
	if err := t.checkRow(changes, true); err != nil {
		return err
	}
	t.removeFromIndexes(id, old)
	for k, v := range changes {
		old[k] = v
	}
	t.addToIndexes(id, old)
	return nil
}

func (t *table) delete(id int64) error {
	old, ok := t.rows[id]
	if !ok {
		return fmt.Errorf("relstore: table %q has no row %d", t.schema.Name, id)
	}
	t.removeFromIndexes(id, old)
	delete(t.rows, id)
	return nil
}

// selectRows evaluates the predicate over the table, using an index when the
// predicate declares an equality hint. Results are sorted by id.
func (t *table) selectRows(p Predicate, limit int) []Row {
	var ids []int64
	if hintCol, hintVal, ok := indexHintOf(p); ok {
		if idx, indexed := t.indexes[hintCol]; indexed {
			ids = append(ids, idx[indexKey(hintVal)]...)
		}
	}
	if ids == nil {
		ids = make([]int64, 0, len(t.rows))
		for id := range t.rows {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var out []Row
	for _, id := range ids {
		r := t.rows[id]
		if p == nil || p.Match(r) {
			out = append(out, r.clone())
			if limit > 0 && len(out) >= limit {
				break
			}
		}
	}
	return out
}

func (t *table) count(p Predicate) int {
	if p == nil {
		return len(t.rows)
	}
	n := 0
	for _, r := range t.rows {
		if p.Match(r) {
			n++
		}
	}
	return n
}
