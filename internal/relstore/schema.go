// Package relstore is a small embedded relational engine: typed tables,
// secondary indexes, predicate queries, and durable persistence via a
// snapshot plus append-only change log.
//
// The paper's Data Concentrator is "an open architecture ODBC compliant
// relational database designed to store all of the instrumentation
// configuration information, machinery configuration information, test
// schedules, resultant measurements, diagnostic results, and condition
// reports" (§5.8), and the OOSM persists objects by mapping "object types
// to tables and properties and relationships to columns and helper tables"
// (§4.6). Both ride on this package; it substitutes for the commercial
// database of the original system while preserving the relational mapping
// the paper describes.
package relstore

import (
	"fmt"
	"time"
)

// ColumnType enumerates the value types a column can hold.
type ColumnType int

const (
	// Int is a 64-bit signed integer column.
	Int ColumnType = iota
	// Float is a float64 column.
	Float
	// String is a UTF-8 text column.
	String
	// Bool is a boolean column.
	Bool
	// Time is a time.Time column (stored as RFC3339Nano on disk).
	Time
	// Bytes is a raw byte-slice column.
	Bytes
)

// String returns the SQL-ish name of the column type.
func (c ColumnType) String() string {
	switch c {
	case Int:
		return "INTEGER"
	case Float:
		return "REAL"
	case String:
		return "TEXT"
	case Bool:
		return "BOOLEAN"
	case Time:
		return "TIMESTAMP"
	case Bytes:
		return "BLOB"
	default:
		return "UNKNOWN"
	}
}

// Column declares one column of a table schema.
type Column struct {
	// Name is the column name, unique within the table.
	Name string
	// Type is the value type enforced on writes.
	Type ColumnType
	// Nullable permits nil values when true.
	Nullable bool
	// Indexed builds a hash index over the column for fast equality lookups.
	Indexed bool
}

// Schema declares a table: its name and columns. Every table additionally
// has an implicit auto-assigned "id" INTEGER primary key.
type Schema struct {
	Name    string
	Columns []Column
}

// Validate checks schema well-formedness.
func (s Schema) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("relstore: empty table name")
	}
	if len(s.Columns) == 0 {
		return fmt.Errorf("relstore: table %q has no columns", s.Name)
	}
	seen := map[string]bool{"id": true}
	for _, c := range s.Columns {
		if c.Name == "" {
			return fmt.Errorf("relstore: table %q has an unnamed column", s.Name)
		}
		if seen[c.Name] {
			return fmt.Errorf("relstore: table %q duplicate column %q", s.Name, c.Name)
		}
		seen[c.Name] = true
		switch c.Type {
		case Int, Float, String, Bool, Time, Bytes:
		default:
			return fmt.Errorf("relstore: table %q column %q has unknown type", s.Name, c.Name)
		}
	}
	return nil
}

// checkValue verifies that v is assignable to a column of type t.
func checkValue(t ColumnType, nullable bool, v any) error {
	if v == nil {
		if !nullable {
			return fmt.Errorf("relstore: nil value in non-nullable column")
		}
		return nil
	}
	ok := false
	switch t {
	case Int:
		_, ok = v.(int64)
	case Float:
		_, ok = v.(float64)
	case String:
		_, ok = v.(string)
	case Bool:
		_, ok = v.(bool)
	case Time:
		_, ok = v.(time.Time)
	case Bytes:
		_, ok = v.([]byte)
	}
	if !ok {
		return fmt.Errorf("relstore: value %T not assignable to %s column", v, t)
	}
	return nil
}

// Row is a map from column name to value. The engine owns rows it returns;
// callers must not mutate them (use Update).
type Row map[string]any

// ID returns the row's primary key.
func (r Row) ID() int64 {
	id, _ := r["id"].(int64)
	return id
}

// clone returns a shallow copy of the row (values are immutable types except
// Bytes, which callers must treat as read-only).
func (r Row) clone() Row {
	out := make(Row, len(r))
	for k, v := range r {
		out[k] = v
	}
	return out
}
