package relstore

import (
	"bufio"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// The durability format is a single append-only log file of JSON records,
// one per line. Reopening a database replays the log. Compact rewrites the
// log as a snapshot (one create-table plus one insert per live row), which
// bounds file growth; the paper's DC runs "disconnected from our labs for
// months at a time", so unattended long-term operation is the design point.

type walRecord struct {
	Op     string            `json:"op"` // create_table | insert | update | delete
	Table  string            `json:"table"`
	ID     int64             `json:"id,omitempty"`
	Schema *Schema           `json:"schema,omitempty"`
	Row    map[string]string `json:"row,omitempty"` // column -> encoded value
}

type walLogger struct {
	f *os.File
	w *bufio.Writer
}

func (l *walLogger) append(rec walRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("relstore: encode wal record: %w", err)
	}
	if _, err := l.w.Write(b); err != nil {
		return err
	}
	if err := l.w.WriteByte('\n'); err != nil {
		return err
	}
	return l.w.Flush()
}

func (l *walLogger) appendCreateTable(s Schema) error {
	sc := s // copy so the caller's schema cannot alias
	return l.append(walRecord{Op: "create_table", Table: s.Name, Schema: &sc})
}

func (l *walLogger) appendInsert(table string, id int64, r Row, s Schema) error {
	enc, err := encodeRow(r, s)
	if err != nil {
		return err
	}
	return l.append(walRecord{Op: "insert", Table: table, ID: id, Row: enc})
}

func (l *walLogger) appendUpdate(table string, id int64, changes Row, s Schema) error {
	enc, err := encodeRow(changes, s)
	if err != nil {
		return err
	}
	return l.append(walRecord{Op: "update", Table: table, ID: id, Row: enc})
}

func (l *walLogger) appendDelete(table string, id int64) error {
	return l.append(walRecord{Op: "delete", Table: table, ID: id})
}

func (l *walLogger) close() error {
	if err := l.w.Flush(); err != nil {
		_ = l.f.Close()
		return err
	}
	return l.f.Close()
}

// encodeRow converts row values to strings using the schema's column types.
// nil values encode as the literal "∅" sentinel with prefix handling below.
func encodeRow(r Row, s Schema) (map[string]string, error) {
	types := make(map[string]ColumnType, len(s.Columns))
	for _, c := range s.Columns {
		types[c.Name] = c.Type
	}
	out := make(map[string]string, len(r))
	for k, v := range r {
		if k == "id" {
			continue
		}
		t, ok := types[k]
		if !ok {
			return nil, fmt.Errorf("relstore: encode: unknown column %q", k)
		}
		if v == nil {
			out[k] = "N"
			continue
		}
		switch t {
		case Int:
			out[k] = fmt.Sprintf("V%d", v.(int64))
		case Float:
			out[k] = fmt.Sprintf("V%g", v.(float64))
		case String:
			out[k] = "V" + v.(string)
		case Bool:
			if v.(bool) {
				out[k] = "Vtrue"
			} else {
				out[k] = "Vfalse"
			}
		case Time:
			out[k] = "V" + v.(time.Time).UTC().Format(time.RFC3339Nano)
		case Bytes:
			out[k] = "V" + base64.StdEncoding.EncodeToString(v.([]byte))
		}
	}
	return out, nil
}

// decodeRow reverses encodeRow.
func decodeRow(enc map[string]string, s Schema) (Row, error) {
	types := make(map[string]ColumnType, len(s.Columns))
	for _, c := range s.Columns {
		types[c.Name] = c.Type
	}
	out := make(Row, len(enc))
	for k, raw := range enc {
		t, ok := types[k]
		if !ok {
			return nil, fmt.Errorf("relstore: decode: unknown column %q", k)
		}
		if raw == "N" {
			out[k] = nil
			continue
		}
		if len(raw) < 1 || raw[0] != 'V' {
			return nil, fmt.Errorf("relstore: decode: malformed value %q", raw)
		}
		body := raw[1:]
		switch t {
		case Int:
			var v int64
			if _, err := fmt.Sscanf(body, "%d", &v); err != nil {
				return nil, fmt.Errorf("relstore: decode int %q: %w", body, err)
			}
			out[k] = v
		case Float:
			var v float64
			if _, err := fmt.Sscanf(body, "%g", &v); err != nil {
				return nil, fmt.Errorf("relstore: decode float %q: %w", body, err)
			}
			out[k] = v
		case String:
			out[k] = body
		case Bool:
			out[k] = body == "true"
		case Time:
			tv, err := time.Parse(time.RFC3339Nano, body)
			if err != nil {
				return nil, fmt.Errorf("relstore: decode time %q: %w", body, err)
			}
			out[k] = tv
		case Bytes:
			bv, err := base64.StdEncoding.DecodeString(body)
			if err != nil {
				return nil, fmt.Errorf("relstore: decode bytes: %w", err)
			}
			out[k] = bv
		}
	}
	return out, nil
}

// Open opens (or creates) a durable database backed by the log file at path.
// An existing log is replayed into memory before the handle is returned.
func Open(path string) (*DB, error) {
	db := NewMemory()
	if err := replayInto(db, path); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("relstore: create db directory: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("relstore: open log: %w", err)
	}
	db.logger = &walLogger{f: f, w: bufio.NewWriter(f)}
	return db, nil
}

// replayInto applies every record of the log file at path to db. A missing
// file is not an error (fresh database).
func replayInto(db *DB, path string) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("relstore: open log for replay: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	line := 0
	tornTail := false
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		var rec walRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			// A malformed FINAL line is the signature of a torn write
			// (power loss mid-append — §4.9's shipboard reality). Recover
			// to the last complete record; a malformed interior line is
			// real corruption and is refused.
			tornTail = true
			continue
		}
		if tornTail {
			return fmt.Errorf("relstore: log line %d: valid record after malformed line %d (corrupted log)", line, line-1)
		}
		if err := db.apply(rec); err != nil {
			return fmt.Errorf("relstore: log line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil && err != io.EOF {
		return fmt.Errorf("relstore: read log: %w", err)
	}
	if tornTail {
		// Truncate the torn tail so the next append produces a clean log.
		if err := truncateToCompleteRecords(path); err != nil {
			return err
		}
	}
	return nil
}

// truncateToCompleteRecords rewrites the log file keeping only its leading
// JSON-complete lines.
func truncateToCompleteRecords(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("relstore: reread log for truncation: %w", err)
	}
	keep := 0
	start := 0
	for i := 0; i < len(data); i++ {
		if data[i] != '\n' {
			continue
		}
		var rec walRecord
		if json.Unmarshal(data[start:i], &rec) != nil {
			break
		}
		keep = i + 1
		start = i + 1
	}
	if keep == len(data) {
		return nil
	}
	if err := os.WriteFile(path+".trunc", data[:keep], 0o644); err != nil {
		return fmt.Errorf("relstore: write truncated log: %w", err)
	}
	if err := os.Rename(path+".trunc", path); err != nil {
		return fmt.Errorf("relstore: swap truncated log: %w", err)
	}
	return nil
}

// apply replays one log record against the in-memory state (no re-logging).
func (db *DB) apply(rec walRecord) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	switch rec.Op {
	case "create_table":
		if rec.Schema == nil {
			return fmt.Errorf("create_table without schema")
		}
		if err := rec.Schema.Validate(); err != nil {
			return err
		}
		if _, exists := db.tables[rec.Schema.Name]; exists {
			return fmt.Errorf("table %q already exists", rec.Schema.Name)
		}
		db.tables[rec.Schema.Name] = newTable(*rec.Schema)
		return nil
	case "insert":
		t, ok := db.tables[rec.Table]
		if !ok {
			return fmt.Errorf("no table %q", rec.Table)
		}
		r, err := decodeRow(rec.Row, t.schema)
		if err != nil {
			return err
		}
		_, err = t.insert(r, rec.ID)
		return err
	case "update":
		t, ok := db.tables[rec.Table]
		if !ok {
			return fmt.Errorf("no table %q", rec.Table)
		}
		changes, err := decodeRow(rec.Row, t.schema)
		if err != nil {
			return err
		}
		return t.update(rec.ID, changes)
	case "delete":
		t, ok := db.tables[rec.Table]
		if !ok {
			return fmt.Errorf("no table %q", rec.Table)
		}
		return t.delete(rec.ID)
	default:
		return fmt.Errorf("unknown op %q", rec.Op)
	}
}

// Compact rewrites the log file as a minimal snapshot of the current state
// and swaps it in atomically. Only valid for databases created with Open.
func (db *DB) Compact(path string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.logger == nil {
		return fmt.Errorf("relstore: Compact on in-memory database")
	}
	tmp := path + ".compact"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("relstore: create compact file: %w", err)
	}
	w := bufio.NewWriter(f)
	writeRec := func(rec walRecord) error {
		b, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
		return w.WriteByte('\n')
	}
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		t := db.tables[name]
		sc := t.schema
		if err := writeRec(walRecord{Op: "create_table", Table: name, Schema: &sc}); err != nil {
			_ = f.Close()
			return err
		}
		ids := make([]int64, 0, len(t.rows))
		for id := range t.rows {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			enc, err := encodeRow(t.rows[id], t.schema)
			if err != nil {
				_ = f.Close()
				return err
			}
			if err := writeRec(walRecord{Op: "insert", Table: name, ID: id, Row: enc}); err != nil {
				_ = f.Close()
				return err
			}
		}
	}
	if err := w.Flush(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	// Swap: close old log, rename, reopen for append.
	if err := db.logger.close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("relstore: swap compacted log: %w", err)
	}
	nf, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("relstore: reopen log after compact: %w", err)
	}
	db.logger = &walLogger{f: nf, w: bufio.NewWriter(nf)}
	return nil
}
