package relstore

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// buildLog writes a fresh durable database with n rows and returns its path.
func buildLog(t *testing.T, n int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "crash.db")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(machineSchema()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := db.Insert("machines", sampleRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTornFinalLineIsRecovered(t *testing.T) {
	path := buildLog(t, 10)
	// Simulate a power loss mid-append: chop the file mid-way through the
	// final record.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-17], 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := Open(path)
	if err != nil {
		t.Fatalf("torn tail must be recoverable: %v", err)
	}
	n, err := db.Count("machines", nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 9 {
		t.Errorf("recovered %d rows, want 9 (last insert torn)", n)
	}
	// The log is clean again: new writes then reopen see everything.
	if _, err := db.Insert("machines", sampleRow(100)); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(path)
	if err != nil {
		t.Fatalf("second reopen after recovery: %v", err)
	}
	defer db2.Close()
	n, _ = db2.Count("machines", nil)
	if n != 10 {
		t.Errorf("after recovery + insert: %d rows, want 10", n)
	}
}

func TestTornTailWithoutNewlineIsRecovered(t *testing.T) {
	path := buildLog(t, 5)
	// Append garbage with no trailing newline (partial record).
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"insert","table":"mach`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	db, err := Open(path)
	if err != nil {
		t.Fatalf("partial trailing record must be recoverable: %v", err)
	}
	defer db.Close()
	n, _ := db.Count("machines", nil)
	if n != 5 {
		t.Errorf("recovered %d rows, want 5", n)
	}
}

func TestInteriorCorruptionIsRefused(t *testing.T) {
	path := buildLog(t, 10)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a line in the middle: this is not a torn tail and must be
	// surfaced, not silently dropped.
	lines := strings.Split(string(data), "\n")
	lines[4] = `{"op": CORRUPT`
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("interior corruption must refuse to open")
	}
}
