package relstore

import (
	"bytes"
	"time"
)

// Predicate filters rows in Select/Count/Delete queries. A nil Predicate
// matches every row.
type Predicate interface {
	// Match reports whether the row satisfies the predicate.
	Match(Row) bool
	// indexHint optionally exposes a single equality constraint the engine
	// can satisfy with a hash index: column name and value.
	indexHint() (string, any, bool)
}

// eq is an equality predicate.
type eq struct {
	col string
	val any
}

func (p eq) Match(r Row) bool               { return valuesEqual(r[p.col], p.val) }
func (p eq) indexHint() (string, any, bool) { return p.col, p.val, true }

// Eq matches rows whose column equals val.
func Eq(col string, val any) Predicate { return eq{col, val} }

func valuesEqual(a, b any) bool {
	if ta, ok := a.(time.Time); ok {
		tb, ok := b.(time.Time)
		return ok && ta.Equal(tb)
	}
	if ba, ok := a.([]byte); ok {
		bb, ok := b.([]byte)
		return ok && bytes.Equal(ba, bb)
	}
	return a == b
}

// fn is an arbitrary-function predicate (no index support).
type fn struct{ f func(Row) bool }

func (p fn) Match(r Row) bool               { return p.f(r) }
func (p fn) indexHint() (string, any, bool) { return "", nil, false }

// Where wraps an arbitrary row-matching function as a Predicate.
func Where(f func(Row) bool) Predicate { return fn{f} }

// and is a conjunction; it forwards the first child's index hint.
type and struct{ ps []Predicate }

func (p and) Match(r Row) bool {
	for _, c := range p.ps {
		if !c.Match(r) {
			return false
		}
	}
	return true
}

func (p and) indexHint() (string, any, bool) {
	for _, c := range p.ps {
		if col, v, ok := c.indexHint(); ok {
			return col, v, true
		}
	}
	return "", nil, false
}

// And matches rows satisfying all child predicates; an indexable equality
// among the children is used as the scan hint.
func And(ps ...Predicate) Predicate { return and{ps} }

// or is a disjunction (no index support).
type or struct{ ps []Predicate }

func (p or) Match(r Row) bool {
	for _, c := range p.ps {
		if c.Match(r) {
			return true
		}
	}
	return false
}

func (p or) indexHint() (string, any, bool) { return "", nil, false }

// Or matches rows satisfying any child predicate.
func Or(ps ...Predicate) Predicate { return or{ps} }

// not negates a predicate (no index support).
type not struct{ p Predicate }

func (p not) Match(r Row) bool               { return !p.p.Match(r) }
func (p not) indexHint() (string, any, bool) { return "", nil, false }

// Not matches rows failing the child predicate.
func Not(p Predicate) Predicate { return not{p} }

// GtFloat matches rows whose Float column strictly exceeds v. Missing or
// non-float values do not match.
func GtFloat(col string, v float64) Predicate {
	return Where(func(r Row) bool {
		f, ok := r[col].(float64)
		return ok && f > v
	})
}

// LtFloat matches rows whose Float column is strictly below v.
func LtFloat(col string, v float64) Predicate {
	return Where(func(r Row) bool {
		f, ok := r[col].(float64)
		return ok && f < v
	})
}

// GtInt matches rows whose Int column strictly exceeds v.
func GtInt(col string, v int64) Predicate {
	return Where(func(r Row) bool {
		i, ok := r[col].(int64)
		return ok && i > v
	})
}

// After matches rows whose Time column is strictly after v.
func After(col string, v time.Time) Predicate {
	return Where(func(r Row) bool {
		t, ok := r[col].(time.Time)
		return ok && t.After(v)
	})
}

// Before matches rows whose Time column is strictly before v.
func Before(col string, v time.Time) Predicate {
	return Where(func(r Row) bool {
		t, ok := r[col].(time.Time)
		return ok && t.Before(v)
	})
}
