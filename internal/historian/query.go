package historian

import (
	"sort"
	"time"
)

// Iterator walks raw samples in ascending time order. It iterates over an
// immutable snapshot taken at Query time, so it never blocks (or is
// invalidated by) the channel's writer.
type Iterator struct {
	runs [][]Sample // each sorted ascending
	cur  Sample
}

// Next advances to the next sample, returning false when exhausted.
func (it *Iterator) Next() bool {
	best := -1
	for i, run := range it.runs {
		if len(run) == 0 {
			continue
		}
		if best < 0 || run[0].At.Before(it.runs[best][0].At) {
			best = i
		}
	}
	if best < 0 {
		return false
	}
	it.cur = it.runs[best][0]
	it.runs[best] = it.runs[best][1:]
	return true
}

// At returns the current sample (valid after a true Next).
func (it *Iterator) At() Sample { return it.cur }

// Remaining returns how many samples the iterator still holds (including
// the ones not yet visited, excluding the current one).
func (it *Iterator) Remaining() int {
	n := 0
	for _, run := range it.runs {
		n += len(run)
	}
	return n
}

// Collect drains the iterator into a slice.
func (it *Iterator) Collect() []Sample {
	out := make([]Sample, 0, it.Remaining())
	for it.Next() {
		out = append(out, it.cur)
	}
	return out
}

// Query returns an iterator over the channel's raw samples in [from, to]
// (zero bounds are open-ended). The snapshot is consistent: sealed
// segments are shared immutably and the unsealed head is copied, so the
// iterator is unaffected by concurrent appends.
func (s *Store) Query(name string, from, to time.Time) (*Iterator, error) {
	ch, err := s.channel(name)
	if err != nil {
		return nil, err
	}
	ch.mu.RLock()
	runs := make([][]Sample, 0, len(ch.segments)+1)
	for _, seg := range ch.segments {
		if run := seg.slice(from, to); len(run) > 0 {
			runs = append(runs, run)
		}
	}
	var headCopy []Sample
	for _, smp := range ch.head {
		if !from.IsZero() && smp.At.Before(from) {
			continue
		}
		if !to.IsZero() && smp.At.After(to) {
			continue
		}
		headCopy = append(headCopy, smp)
	}
	ch.mu.RUnlock()
	if len(headCopy) > 0 {
		sort.SliceStable(headCopy, func(i, j int) bool {
			return headCopy[i].At.Before(headCopy[j].At)
		})
		runs = append(runs, headCopy)
	}
	return &Iterator{runs: runs}, nil
}

// QueryAll returns every raw sample of the channel, oldest first.
func (s *Store) QueryAll(name string) ([]Sample, error) {
	it, err := s.Query(name, time.Time{}, time.Time{})
	if err != nil {
		return nil, err
	}
	return it.Collect(), nil
}
