package historian

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"
	"time"
)

var t0 = time.Date(1998, 8, 1, 0, 0, 0, 0, time.UTC)

func mustOpen(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func ensure(t *testing.T, s *Store, cfg ChannelConfig) {
	t.Helper()
	if err := s.EnsureChannel(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestAppendAndQueryOrdered(t *testing.T) {
	s := mustOpen(t, "")
	ensure(t, s, ChannelConfig{Name: "a", HeadCap: 8})
	for i := 0; i < 30; i++ {
		if err := s.Append("a", t0.Add(time.Duration(i)*time.Second), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.QueryAll("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 30 {
		t.Fatalf("got %d samples, want 30", len(got))
	}
	for i, smp := range got {
		if smp.Value != float64(i) || !smp.At.Equal(t0.Add(time.Duration(i)*time.Second)) {
			t.Fatalf("sample %d = %+v", i, smp)
		}
	}
	st, err := s.Stats("a")
	if err != nil {
		t.Fatal(err)
	}
	if st.Samples != 30 || st.Segments != 3 || st.HeadLen != 6 {
		t.Fatalf("stats %+v", st)
	}
	if !st.Oldest.Equal(t0) || !st.Latest.Equal(t0.Add(29*time.Second)) {
		t.Fatalf("range %v..%v", st.Oldest, st.Latest)
	}
}

// TestOutOfOrderAppends mirrors §5.1's time-disordered inputs: shuffled
// appends still query back in time order, across segment boundaries.
func TestOutOfOrderAppends(t *testing.T) {
	s := mustOpen(t, "")
	ensure(t, s, ChannelConfig{Name: "a", HeadCap: 16})
	const n = 100
	perm := rand.New(rand.NewSource(7)).Perm(n)
	for _, i := range perm {
		if err := s.Append("a", t0.Add(time.Duration(i)*time.Minute), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.QueryAll("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("got %d, want %d", len(got), n)
	}
	for i, smp := range got {
		if smp.Value != float64(i) {
			t.Fatalf("position %d holds value %g (disordered result)", i, smp.Value)
		}
	}
	latest, ok := s.Latest("a")
	if !ok || latest.Value != n-1 {
		t.Fatalf("latest %+v ok=%v", latest, ok)
	}
}

func TestQueryRange(t *testing.T) {
	s := mustOpen(t, "")
	ensure(t, s, ChannelConfig{Name: "a", HeadCap: 10})
	for i := 0; i < 50; i++ {
		if err := s.Append("a", t0.Add(time.Duration(i)*time.Hour), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	it, err := s.Query("a", t0.Add(10*time.Hour), t0.Add(20*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	got := it.Collect()
	if len(got) != 11 {
		t.Fatalf("inclusive range returned %d samples, want 11", len(got))
	}
	if got[0].Value != 10 || got[10].Value != 20 {
		t.Fatalf("range bounds %g..%g", got[0].Value, got[10].Value)
	}
	// Open-ended from.
	it, _ = s.Query("a", time.Time{}, t0.Add(2*time.Hour))
	if got := it.Collect(); len(got) != 3 {
		t.Fatalf("open-from returned %d", len(got))
	}
	// Open-ended to.
	it, _ = s.Query("a", t0.Add(47*time.Hour), time.Time{})
	if got := it.Collect(); len(got) != 3 {
		t.Fatalf("open-to returned %d", len(got))
	}
}

func TestAppendValidation(t *testing.T) {
	s := mustOpen(t, "")
	ensure(t, s, ChannelConfig{Name: "a"})
	if err := s.Append("a", time.Time{}, 1); err == nil {
		t.Error("zero timestamp accepted")
	}
	if err := s.Append("a", t0, math.NaN()); err == nil {
		t.Error("NaN accepted")
	}
	if err := s.Append("a", t0, math.Inf(1)); err == nil {
		t.Error("Inf accepted")
	}
	if err := s.Append("nope", t0, 1); err == nil {
		t.Error("unknown channel accepted")
	}
	if err := s.EnsureChannel(ChannelConfig{Name: ""}); err == nil {
		t.Error("empty channel name accepted")
	}
	if err := s.EnsureChannel(ChannelConfig{Name: "b", Tiers: []time.Duration{0}}); err == nil {
		t.Error("zero tier accepted")
	}
	if err := s.EnsureChannel(ChannelConfig{Name: "b", Tiers: []time.Duration{time.Minute, time.Minute}}); err == nil {
		t.Error("duplicate tier accepted")
	}
}

func TestRetentionDropsOldSegments(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	ensure(t, s, ChannelConfig{
		Name: "a", HeadCap: 10,
		Retention: 24 * time.Hour,
		Tiers:     []time.Duration{time.Hour},
	})
	// 100 hours of 6/hour data: everything older than latest-24h must go.
	for i := 0; i < 600; i++ {
		if err := s.Append("a", t0.Add(time.Duration(i)*10*time.Minute), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.QueryAll("a")
	if err != nil {
		t.Fatal(err)
	}
	latest := t0.Add(599 * 10 * time.Minute)
	cutoff := latest.Add(-24 * time.Hour)
	if len(got) >= 600 {
		t.Fatalf("retention kept all %d samples", len(got))
	}
	// Whole-segment granularity: nothing sealed strictly before the cutoff
	// survives beyond one segment's worth of slack.
	slack := 10 * 10 * time.Minute
	for _, smp := range got {
		if smp.At.Before(cutoff.Add(-slack)) {
			t.Fatalf("sample at %v survived cutoff %v", smp.At, cutoff)
		}
	}
	// Rollup buckets older than the cutoff are trimmed too.
	rolls, err := s.QueryRollup("a", time.Hour, time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rolls {
		if r.End().Before(cutoff.Add(-slack)) {
			t.Fatalf("rollup bucket ending %v survived cutoff %v", r.End(), cutoff)
		}
	}
	// The compacted file reopens to the same retained view.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, filepath.Dir(chanPath(t, s, "a")))
	defer s2.Close()
	got2, err := s2.QueryAll("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != len(got) {
		t.Fatalf("reopened %d samples, want %d", len(got2), len(got))
	}
}

// chanPath digs out the channel's file path for reopen tests.
func chanPath(t *testing.T, s *Store, name string) string {
	t.Helper()
	ch, err := s.channel(name)
	if err != nil {
		// Closed store: fall back to reconstructing from dir.
		return filepath.Join(s.dir, encodeChannelFile(name))
	}
	if ch.path == "" {
		t.Fatal("memory channel has no path")
	}
	return ch.path
}

func TestRollupTiers(t *testing.T) {
	s := mustOpen(t, "")
	ensure(t, s, ChannelConfig{
		Name: "a", HeadCap: 64,
		Tiers: []time.Duration{time.Minute, time.Hour},
	})
	// Two hours of 1 Hz data, value = seconds since start.
	for i := 0; i < 7200; i++ {
		if err := s.Append("a", t0.Add(time.Duration(i)*time.Second), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	mins, err := s.QueryRollup("a", time.Minute, time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if len(mins) != 120 {
		t.Fatalf("%d minute buckets, want 120", len(mins))
	}
	b := mins[3] // minute 3: values 180..239
	if b.Min != 180 || b.Max != 239 || b.Count != 60 {
		t.Fatalf("minute bucket %+v", b)
	}
	if mean := b.Mean(); math.Abs(mean-209.5) > 1e-9 {
		t.Fatalf("mean %g, want 209.5", mean)
	}
	hours, err := s.QueryRollup("a", time.Hour, time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if len(hours) != 2 || hours[1].Min != 3600 || hours[1].Max != 7199 {
		t.Fatalf("hour buckets %+v", hours)
	}
	// Range query clips to overlapping buckets.
	clip, err := s.QueryRollup("a", time.Minute, t0.Add(90*time.Second), t0.Add(150*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if len(clip) != 2 || !clip[0].Start.Equal(t0.Add(time.Minute)) {
		t.Fatalf("clipped buckets %+v", clip)
	}
	// Unconfigured tier is an explicit error.
	if _, err := s.QueryRollup("a", time.Second, time.Time{}, time.Time{}); err == nil {
		t.Fatal("unknown tier accepted")
	}
}

// TestRollupEnvelopeProperty is the invariant the trend layer depends on:
// for any series, every raw sample lies within [Min, Max] of its bucket,
// and Min <= Mean <= Max for every bucket.
func TestRollupEnvelopeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		s := mustOpen(t, "")
		tier := time.Duration(1+rng.Intn(120)) * time.Second
		ensure(t, s, ChannelConfig{
			Name: "p", HeadCap: 1 + rng.Intn(200),
			Tiers: []time.Duration{tier},
		})
		n := 200 + rng.Intn(800)
		// Random walk with jittered, sometimes-duplicated timestamps,
		// appended in shuffled order.
		samples := make([]Sample, n)
		v := rng.NormFloat64()
		for i := range samples {
			v += rng.NormFloat64()
			at := t0.Add(time.Duration(rng.Int63n(int64(6 * time.Hour))))
			samples[i] = Sample{At: at, Value: v}
		}
		if err := s.AppendBatch("p", samples); err != nil {
			t.Fatal(err)
		}
		rolls, err := s.QueryRollup("p", tier, time.Time{}, time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		byStart := make(map[int64]Rollup, len(rolls))
		total := 0
		for _, r := range rolls {
			byStart[r.Start.UnixNano()] = r
			total += r.Count
			if r.Min > r.Max || r.Mean() < r.Min-1e-9 || r.Mean() > r.Max+1e-9 {
				t.Fatalf("trial %d: degenerate bucket %+v", trial, r)
			}
		}
		if total != n {
			t.Fatalf("trial %d: buckets cover %d samples, want %d", trial, total, n)
		}
		tt := newTier(tier)
		for _, smp := range samples {
			r, ok := byStart[tt.bucketStart(smp.At)]
			if !ok {
				t.Fatalf("trial %d: sample at %v has no bucket", trial, smp.At)
			}
			if smp.Value < r.Min || smp.Value > r.Max {
				t.Fatalf("trial %d: sample %g escapes envelope [%g,%g]",
					trial, smp.Value, r.Min, r.Max)
			}
		}
	}
}

func TestSealAndLatest(t *testing.T) {
	s := mustOpen(t, "")
	ensure(t, s, ChannelConfig{Name: "a", HeadCap: 1000})
	if _, ok := s.Latest("a"); ok {
		t.Fatal("empty channel has a latest sample")
	}
	for i := 0; i < 5; i++ {
		if err := s.Append("a", t0.Add(time.Duration(i)*time.Second), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Seal("a"); err != nil {
		t.Fatal(err)
	}
	st, _ := s.Stats("a")
	if st.Segments != 1 || st.HeadLen != 0 || st.Samples != 5 {
		t.Fatalf("stats after seal %+v", st)
	}
	got, _ := s.QueryAll("a")
	if len(got) != 5 {
		t.Fatalf("%d samples after seal", len(got))
	}
}

func TestClosedStoreRefusesOperations(t *testing.T) {
	s := mustOpen(t, "")
	ensure(t, s, ChannelConfig{Name: "a"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Append("a", t0, 1); err == nil {
		t.Error("append on closed store accepted")
	}
	if _, err := s.Query("a", time.Time{}, time.Time{}); err == nil {
		t.Error("query on closed store accepted")
	}
	if err := s.EnsureChannel(ChannelConfig{Name: "b"}); err == nil {
		t.Error("ensure on closed store accepted")
	}
	// Idempotent close.
	if err := s.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestChannelsListing(t *testing.T) {
	s := mustOpen(t, "")
	for _, name := range []string{"z/b", "a/1", "m"} {
		ensure(t, s, ChannelConfig{Name: name})
	}
	got := s.Channels()
	want := []string{"a/1", "m", "z/b"}
	if len(got) != len(want) {
		t.Fatalf("channels %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("channels %v, want %v", got, want)
		}
	}
	if !s.HasChannel("m") || s.HasChannel("nope") {
		t.Fatal("HasChannel wrong")
	}
}
