// Package historian is the embedded time-series store behind the §4.6 data
// management layer: "the data management functions of the DC [use] a
// relational database ... to store sensor data, intermediate results, and
// condition reports." The relational engine (internal/relstore) keeps the
// low-rate audit rows; the historian keeps the high-rate numeric history
// the prognostics need — per-acquisition vibration features, process-scan
// scalars, SBFR status transitions, fused severities, and lifetime
// archives — and serves the §10.1 consumers ("scrutinize failure histories
// and provide better projections of future faults as they develop").
//
// The design is a write-optimized multi-channel store:
//
//   - One in-memory head buffer per channel absorbs appends (out-of-order
//     timestamps are accepted — §5.1 requires tolerating time-disordered
//     inputs). When the head fills it is sorted and sealed into an
//     immutable segment.
//   - Sealed segments are persisted as CRC-framed blocks in one
//     append-only segment file per channel. Recovery mirrors relstore's
//     WAL semantics: a torn final block (power loss mid-append) is
//     truncated away; interior corruption is refused.
//   - Per-channel retention drops whole expired segments and compacts the
//     segment file.
//   - Multi-resolution rollup tiers (min/max/mean/count per bucket) are
//     maintained incrementally on append and rebuilt on open, so trend
//     queries over days of data touch thousands of buckets, not millions
//     of raw samples.
//   - Queries take a consistent snapshot under a read lock and then
//     iterate lock-free, so concurrent readers never block the single
//     writer per channel for longer than the snapshot.
package historian

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Sample is one observation on a channel.
type Sample struct {
	At    time.Time
	Value float64
}

// DefaultHeadCap is the head-buffer capacity used when a channel does not
// set one: the number of samples accumulated before a segment is sealed.
const DefaultHeadCap = 4096

// ChannelConfig describes one channel of the store.
type ChannelConfig struct {
	// Name identifies the channel ("vib/motor drive end/rms").
	Name string
	// Retention bounds how far back samples are kept relative to the
	// newest sample (0: keep everything).
	Retention time.Duration
	// Tiers are the rollup resolutions maintained for the channel
	// (e.g. time.Minute, time.Hour). Queries at a tier must name one of
	// these durations exactly.
	Tiers []time.Duration
	// HeadCap overrides the head-buffer capacity (0: DefaultHeadCap).
	HeadCap int
}

func (c ChannelConfig) validate() error {
	if c.Name == "" {
		return fmt.Errorf("historian: empty channel name")
	}
	if c.Retention < 0 {
		return fmt.Errorf("historian: channel %q: negative retention", c.Name)
	}
	if c.HeadCap < 0 {
		return fmt.Errorf("historian: channel %q: negative head capacity", c.Name)
	}
	seen := make(map[time.Duration]bool, len(c.Tiers))
	for _, d := range c.Tiers {
		if d <= 0 {
			return fmt.Errorf("historian: channel %q: non-positive tier %v", c.Name, d)
		}
		if seen[d] {
			return fmt.Errorf("historian: channel %q: duplicate tier %v", c.Name, d)
		}
		seen[d] = true
	}
	return nil
}

// Options configures a store.
type Options struct {
	// Dir is the segment directory. Empty runs the store purely in memory
	// (a lab DC); non-empty persists every sealed segment (the shipboard
	// configuration, like relstore.Open vs NewMemory).
	Dir string
}

// Store is a multi-channel time-series historian. Channel creation and
// lookup are guarded by the store lock; each channel then has its own
// lock, so writers on different channels never contend.
type Store struct {
	dir string

	mu       sync.RWMutex
	channels map[string]*channel
	closed   bool
}

// channel is one named series. The intended concurrency regime is one
// writer per channel with any number of concurrent readers; the mutex
// makes even multi-writer use safe, just not ordered.
type channel struct {
	cfg ChannelConfig

	mu       sync.RWMutex
	head     []Sample   // arrival-order buffer, sealed when full
	segments []*segment // immutable, each sorted by time
	tiers    []*tier
	file     *os.File // nil for in-memory stores
	path     string
	total    int64 // samples currently held (head + segments)
	latest   Sample
	hasData  bool
}

// Open opens (or creates) a store. With a directory, every existing
// segment file is recovered: torn tails are truncated to the last complete
// block, rollup tiers are rebuilt from the recovered raw data.
func Open(opts Options) (*Store, error) {
	s := &Store{dir: opts.Dir, channels: make(map[string]*channel)}
	if opts.Dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("historian: create dir: %w", err)
	}
	entries, err := os.ReadDir(opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("historian: read dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != segmentExt {
			continue
		}
		path := filepath.Join(opts.Dir, e.Name())
		name, segments, err := recoverSegmentFile(path)
		if err != nil {
			return nil, err
		}
		ch := &channel{
			cfg:      ChannelConfig{Name: name},
			segments: segments,
			path:     path,
		}
		for _, seg := range segments {
			ch.total += int64(len(seg.samples))
			if last := seg.samples[len(seg.samples)-1]; !ch.hasData || last.At.After(ch.latest.At) {
				ch.latest = last
				ch.hasData = true
			}
		}
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("historian: reopen segment file: %w", err)
		}
		ch.file = f
		s.channels[name] = ch
	}
	return s, nil
}

// EnsureChannel creates the channel if absent and applies the
// configuration's retention/tiers/head capacity. Re-ensuring an existing
// channel with new tiers rebuilds the missing tiers from stored data, so
// recovered channels (whose files do not record tier configuration) regain
// their rollups.
func (s *Store) EnsureChannel(cfg ChannelConfig) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	if cfg.HeadCap == 0 {
		cfg.HeadCap = DefaultHeadCap
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("historian: store closed")
	}
	ch, ok := s.channels[cfg.Name]
	if !ok {
		ch = &channel{cfg: cfg}
		if s.dir != "" {
			path := filepath.Join(s.dir, encodeChannelFile(cfg.Name))
			f, err := createSegmentFile(path, cfg.Name)
			if err != nil {
				s.mu.Unlock()
				return err
			}
			ch.file = f
			ch.path = path
		}
		s.channels[cfg.Name] = ch
	}
	s.mu.Unlock()

	ch.mu.Lock()
	defer ch.mu.Unlock()
	ch.cfg.Retention = cfg.Retention
	if cfg.HeadCap > 0 {
		ch.cfg.HeadCap = cfg.HeadCap
	}
	// Add requested tiers that are not yet maintained, rebuilt over the
	// data already held.
	for _, d := range cfg.Tiers {
		if ch.tierFor(d) != nil {
			continue
		}
		t := newTier(d)
		for _, seg := range ch.segments {
			for _, smp := range seg.samples {
				t.add(smp)
			}
		}
		for _, smp := range ch.head {
			t.add(smp)
		}
		ch.tiers = append(ch.tiers, t)
		ch.cfg.Tiers = append(ch.cfg.Tiers, d)
	}
	return nil
}

func (ch *channel) tierFor(d time.Duration) *tier {
	for _, t := range ch.tiers {
		if t.dur == d {
			return t
		}
	}
	return nil
}

func (s *Store) channel(name string) (*channel, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, fmt.Errorf("historian: store closed")
	}
	ch, ok := s.channels[name]
	if !ok {
		return nil, fmt.Errorf("historian: unknown channel %q", name)
	}
	return ch, nil
}

// Append records one observation. Timestamps may arrive out of order
// (§5.1's time-disordered inputs); ordering is restored at seal time and
// at query time.
func (s *Store) Append(name string, at time.Time, value float64) error {
	return s.AppendBatch(name, []Sample{{At: at, Value: value}})
}

// AppendBatch records a batch of observations under one lock acquisition —
// the high-rate ingest path.
func (s *Store) AppendBatch(name string, batch []Sample) error {
	ch, err := s.channel(name)
	if err != nil {
		return err
	}
	ch.mu.Lock()
	defer ch.mu.Unlock()
	for _, smp := range batch {
		if smp.At.IsZero() {
			return fmt.Errorf("historian: channel %q: zero timestamp", name)
		}
		if math.IsNaN(smp.Value) || math.IsInf(smp.Value, 0) {
			return fmt.Errorf("historian: channel %q: non-finite value", name)
		}
		ch.head = append(ch.head, smp)
		ch.total++
		if !ch.hasData || smp.At.After(ch.latest.At) {
			ch.latest = smp
			ch.hasData = true
		}
		for _, t := range ch.tiers {
			t.add(smp)
		}
		if len(ch.head) >= ch.headCap() {
			if err := ch.sealLocked(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (ch *channel) headCap() int {
	if ch.cfg.HeadCap > 0 {
		return ch.cfg.HeadCap
	}
	return DefaultHeadCap
}

// sealLocked sorts the head into an immutable segment, persists it as one
// block, and applies retention. Caller holds ch.mu.
func (ch *channel) sealLocked() error {
	if len(ch.head) == 0 {
		return nil
	}
	samples := make([]Sample, len(ch.head))
	copy(samples, ch.head)
	sort.SliceStable(samples, func(i, j int) bool { return samples[i].At.Before(samples[j].At) })
	seg := newSegment(samples)
	if ch.file != nil {
		if err := appendBlock(ch.file, samples); err != nil {
			return fmt.Errorf("historian: channel %q: %w", ch.cfg.Name, err)
		}
	}
	ch.segments = append(ch.segments, seg)
	ch.head = ch.head[:0]
	return ch.applyRetentionLocked()
}

// applyRetentionLocked drops whole segments past the retention horizon and
// compacts the segment file when anything was dropped. Caller holds ch.mu.
func (ch *channel) applyRetentionLocked() error {
	if ch.cfg.Retention <= 0 || !ch.hasData {
		return nil
	}
	cutoff := ch.latest.At.Add(-ch.cfg.Retention)
	keep := ch.segments[:0]
	dropped := 0
	for _, seg := range ch.segments {
		if seg.maxAt.Before(cutoff) {
			dropped++
			ch.total -= int64(len(seg.samples))
			continue
		}
		keep = append(keep, seg)
	}
	if dropped == 0 {
		return nil
	}
	ch.segments = keep
	for _, t := range ch.tiers {
		t.trim(cutoff)
	}
	if ch.file != nil {
		if err := ch.rewriteFileLocked(); err != nil {
			return err
		}
	}
	return nil
}

// rewriteFileLocked rewrites the channel's segment file from the in-memory
// segments (the compaction step after retention drops), swapping it in
// atomically like relstore.Compact. Caller holds ch.mu.
func (ch *channel) rewriteFileLocked() error {
	tmp := ch.path + ".compact"
	f, err := createSegmentFile(tmp, ch.cfg.Name)
	if err != nil {
		return err
	}
	for _, seg := range ch.segments {
		if err := appendBlock(f, seg.samples); err != nil {
			_ = f.Close()
			return err
		}
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := ch.file.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, ch.path); err != nil {
		return fmt.Errorf("historian: swap compacted segment file: %w", err)
	}
	nf, err := os.OpenFile(ch.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("historian: reopen segment file after compact: %w", err)
	}
	ch.file = nf
	return nil
}

// Seal forces the channel's head buffer into a sealed (and, on disk-backed
// stores, persisted) segment without waiting for it to fill.
func (s *Store) Seal(name string) error {
	ch, err := s.channel(name)
	if err != nil {
		return err
	}
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return ch.sealLocked()
}

// Sync seals every channel's head and fsyncs the segment files, making
// everything appended so far durable.
func (s *Store) Sync() error {
	for _, name := range s.Channels() {
		ch, err := s.channel(name)
		if err != nil {
			return err
		}
		ch.mu.Lock()
		err = ch.sealLocked()
		if err == nil && ch.file != nil {
			err = ch.file.Sync()
		}
		ch.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Close syncs and closes the store. Further operations fail; closing an
// already-closed store is a no-op.
func (s *Store) Close() error {
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return nil
	}
	if err := s.Sync(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	for _, ch := range s.channels {
		ch.mu.Lock()
		if ch.file != nil {
			if err := ch.file.Close(); err != nil {
				ch.mu.Unlock()
				return err
			}
			ch.file = nil
		}
		ch.mu.Unlock()
	}
	return nil
}

// Channels returns the channel names in sorted order.
func (s *Store) Channels() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.channels))
	for name := range s.channels {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// HasChannel reports whether the channel exists.
func (s *Store) HasChannel(name string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.channels[name]
	return ok
}

// Latest returns the newest sample on a channel (ok=false when empty or
// the channel does not exist).
func (s *Store) Latest(name string) (Sample, bool) {
	ch, err := s.channel(name)
	if err != nil {
		return Sample{}, false
	}
	ch.mu.RLock()
	defer ch.mu.RUnlock()
	return ch.latest, ch.hasData
}

// ChannelStats summarizes a channel's state.
type ChannelStats struct {
	// Samples currently held (head + sealed segments).
	Samples int64
	// Segments is the sealed segment count.
	Segments int
	// HeadLen is the unsealed head length.
	HeadLen int
	// Oldest and Latest bound the held time range (zero when empty).
	Oldest, Latest time.Time
	// Tiers lists the maintained rollup resolutions.
	Tiers []time.Duration
}

// Stats returns a channel's statistics.
func (s *Store) Stats(name string) (ChannelStats, error) {
	ch, err := s.channel(name)
	if err != nil {
		return ChannelStats{}, err
	}
	ch.mu.RLock()
	defer ch.mu.RUnlock()
	st := ChannelStats{
		Samples:  ch.total,
		Segments: len(ch.segments),
		HeadLen:  len(ch.head),
	}
	for _, t := range ch.tiers {
		st.Tiers = append(st.Tiers, t.dur)
	}
	if ch.hasData {
		st.Latest = ch.latest.At
		oldest := ch.latest.At
		for _, seg := range ch.segments {
			if seg.minAt.Before(oldest) {
				oldest = seg.minAt
			}
		}
		for _, smp := range ch.head {
			if smp.At.Before(oldest) {
				oldest = smp.At
			}
		}
		st.Oldest = oldest
	}
	return st, nil
}
