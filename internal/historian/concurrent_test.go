package historian

import (
	"sync"
	"testing"
	"time"
)

// TestConcurrentReadersOneWriter is the store's concurrency contract, run
// under -race in CI: one writer per channel appends (crossing several seal
// boundaries) while readers continuously query raw ranges, rollups, stats
// and latest. Readers must always observe a prefix-consistent, time-ordered
// view.
func TestConcurrentReadersOneWriter(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	const (
		channels = 4
		perChan  = 5000
		readers  = 3
	)
	names := []string{"c/0", "c/1", "c/2", "c/3"}
	for _, n := range names {
		ensure(t, s, ChannelConfig{
			Name: n, HeadCap: 256,
			Tiers: []time.Duration{time.Minute},
		})
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, channels+readers*channels)

	for _, name := range names {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			for i := 0; i < perChan; i++ {
				at := t0.Add(time.Duration(i) * time.Second)
				if err := s.Append(name, at, float64(i)); err != nil {
					errs <- err
					return
				}
			}
		}(name)
	}
	for r := 0; r < readers; r++ {
		for _, name := range names {
			wg.Add(1)
			go func(name string) {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					it, err := s.Query(name, time.Time{}, time.Time{})
					if err != nil {
						errs <- err
						return
					}
					var prev time.Time
					n := 0
					for it.Next() {
						if it.At().At.Before(prev) {
							errs <- errDisordered(name)
							return
						}
						prev = it.At().At
						n++
					}
					if _, err := s.QueryRollup(name, time.Minute, time.Time{}, time.Time{}); err != nil {
						errs <- err
						return
					}
					if _, err := s.Stats(name); err != nil {
						errs <- err
						return
					}
					s.Latest(name)
				}
			}(name)
		}
	}

	// Wait for all writers, then release the readers.
	writerDone := make(chan struct{})
	go func() {
		// The writer goroutines are the first `channels` Adds; simplest is
		// to poll completion via sample counts.
		for {
			done := 0
			for _, n := range names {
				st, err := s.Stats(n)
				if err == nil && st.Samples == perChan {
					done++
				}
			}
			if done == channels {
				close(writerDone)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	<-writerDone
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for _, n := range names {
		got, err := s.QueryAll(n)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != perChan {
			t.Fatalf("%s: %d samples, want %d", n, len(got), perChan)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

type errDisordered string

func (e errDisordered) Error() string { return "disordered read on channel " + string(e) }
