package historian

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func fillChannel(t *testing.T, dir string, n int) string {
	t.Helper()
	s := mustOpen(t, dir)
	ensure(t, s, ChannelConfig{Name: "vib/motor/rms", HeadCap: 32})
	for i := 0; i < n; i++ {
		if err := s.Append("vib/motor/rms", t0.Add(time.Duration(i)*time.Second), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, encodeChannelFile("vib/motor/rms"))
}

func TestReopenRecoversAllSamples(t *testing.T) {
	dir := t.TempDir()
	fillChannel(t, dir, 100)
	s := mustOpen(t, dir)
	defer s.Close()
	if !s.HasChannel("vib/motor/rms") {
		t.Fatalf("channel not recovered; have %v", s.Channels())
	}
	got, err := s.QueryAll("vib/motor/rms")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("recovered %d samples, want 100", len(got))
	}
	for i, smp := range got {
		if smp.Value != float64(i) {
			t.Fatalf("sample %d = %g", i, smp.Value)
		}
	}
	// Appends continue after recovery and survive another cycle.
	if err := s.Append("vib/motor/rms", t0.Add(200*time.Second), 200); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir)
	defer s2.Close()
	got, _ = s2.QueryAll("vib/motor/rms")
	if len(got) != 101 {
		t.Fatalf("after append+reopen: %d samples", len(got))
	}
}

// TestEnsureAfterRecoveryRebuildsTiers: tier configuration is not stored
// in segment files; re-ensuring the channel rebuilds rollups from the
// recovered raw data.
func TestEnsureAfterRecoveryRebuildsTiers(t *testing.T) {
	dir := t.TempDir()
	fillChannel(t, dir, 120)
	s := mustOpen(t, dir)
	defer s.Close()
	ensure(t, s, ChannelConfig{Name: "vib/motor/rms", Tiers: []time.Duration{time.Minute}})
	rolls, err := s.QueryRollup("vib/motor/rms", time.Minute, time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rolls) != 2 || rolls[0].Count != 60 || rolls[0].Min != 0 || rolls[0].Max != 59 {
		t.Fatalf("rebuilt rollups %+v", rolls)
	}
}

// TestTornTailTruncated mirrors relstore's crash test: a partial final
// block (power loss mid-append) is silently truncated to the last complete
// record boundary and the store reopens clean.
func TestTornTailTruncated(t *testing.T) {
	for _, cut := range []int{1, 7, 8, 20, recordSize*5 + 11} {
		dir := t.TempDir()
		path := fillChannel(t, dir, 96) // 3 full blocks of 32
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Simulate a torn append: a prefix of a fourth block.
		torn := make([]byte, 0, len(data)+cut)
		torn = append(torn, data...)
		block := make([]byte, 0, blockFrame+32*recordSize)
		block = binary.LittleEndian.AppendUint32(block, blockMagic)
		block = binary.LittleEndian.AppendUint32(block, 32)
		for len(block) < blockFrame+32*recordSize {
			block = append(block, 0xAB)
		}
		if cut > len(block) {
			t.Fatalf("cut %d exceeds block", cut)
		}
		torn = append(torn, block[:cut]...)
		if err := os.WriteFile(path, torn, 0o644); err != nil {
			t.Fatal(err)
		}
		s := mustOpen(t, dir)
		got, err := s.QueryAll("vib/motor/rms")
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 96 {
			t.Fatalf("cut=%d: recovered %d samples, want the 96 complete ones", cut, len(got))
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		// The truncation is physical: the file is back to its clean size.
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() != int64(len(data)) {
			t.Fatalf("cut=%d: file size %d after recovery, want %d", cut, info.Size(), len(data))
		}
	}
}

// TestInteriorCorruptionRefused: a flipped bit inside a non-final block is
// real corruption, not a torn tail, and must fail loudly (relstore's
// "valid record after malformed line" rule).
func TestInteriorCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	path := fillChannel(t, dir, 96)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the first block (well past the header).
	hdr := len(fileMagic) + 2 + len("vib/motor/rms")
	data[hdr+blockFrame] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("interior corruption accepted")
	}
}

// TestCorruptFinalBlockRefused: a full-length final block with a bad CRC
// cannot come from a torn append (the CRC is written in the same single
// write), so it too is refused.
func TestCorruptFinalBlockRefused(t *testing.T) {
	dir := t.TempDir()
	path := fillChannel(t, dir, 96)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-5] ^= 0x01 // inside the last block's payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("corrupt final block accepted")
	}
}

func TestBadHeaderRefused(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x"+segmentExt)
	if err := os.WriteFile(path, []byte("NOTMAGIC\x00\x00"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("bad header accepted")
	}
}

func TestChannelFileNameEncoding(t *testing.T) {
	names := []string{
		"vib/motor drive end/rms",
		"proc/evap_pressure",
		"severity/chiller|1%weird",
	}
	seen := map[string]bool{}
	for _, n := range names {
		f := encodeChannelFile(n)
		if seen[f] {
			t.Fatalf("collision on %q", f)
		}
		seen[f] = true
		for _, c := range f {
			if c == '/' || c == 0 {
				t.Fatalf("unsafe char in %q", f)
			}
		}
	}
	// Round trip through a real store.
	dir := t.TempDir()
	s := mustOpen(t, dir)
	for _, n := range names {
		ensure(t, s, ChannelConfig{Name: n})
		if err := s.Append(n, t0, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir)
	defer s2.Close()
	for _, n := range names {
		if !s2.HasChannel(n) {
			t.Fatalf("channel %q lost in round trip; have %v", n, s2.Channels())
		}
	}
}
