package historian

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"time"
)

// Segment file format (one file per channel, append-only):
//
//	header: magic "MPROSHS1" | u16 nameLen | name bytes
//	blocks: u32 blockMagic | u32 count | count×(i64 unixnano, f64 bits) | u32 crc
//
// All integers little-endian. Each sealed segment is appended as exactly
// one block in a single write, so a power loss mid-append leaves a prefix
// of the final block. Recovery therefore distinguishes, exactly like
// relstore's WAL replay:
//
//   - an incomplete final block (fewer bytes than its frame declares, or a
//     truncated frame header) is a torn tail: truncate to the last
//     complete block and continue;
//   - a complete block whose CRC does not match, or a broken block magic
//     with bytes remaining, is interior corruption: refuse the file.

const (
	segmentExt   = ".hseg"
	fileMagic    = "MPROSHS1"
	blockMagic   = uint32(0x5EA1B10C)
	recordSize   = 16 // i64 nanos + f64 value
	blockFrame   = 12 // u32 magic + u32 count + u32 crc
	maxBlockSize = 1 << 24
)

// segment is an immutable sorted run of samples.
type segment struct {
	samples      []Sample // sorted ascending by At
	minAt, maxAt time.Time
}

func newSegment(sorted []Sample) *segment {
	return &segment{
		samples: sorted,
		minAt:   sorted[0].At,
		maxAt:   sorted[len(sorted)-1].At,
	}
}

// slice returns the sub-run overlapping [from, to] (zero bounds are open).
func (g *segment) slice(from, to time.Time) []Sample {
	lo := 0
	if !from.IsZero() {
		lo = sort.Search(len(g.samples), func(i int) bool {
			return !g.samples[i].At.Before(from)
		})
	}
	hi := len(g.samples)
	if !to.IsZero() {
		hi = sort.Search(len(g.samples), func(i int) bool {
			return g.samples[i].At.After(to)
		})
	}
	if lo >= hi {
		return nil
	}
	return g.samples[lo:hi]
}

// encodeChannelFile maps a channel name to a filesystem-safe file name,
// escaping every byte outside [A-Za-z0-9._-] as %XX (collision-free and
// reversible, though the header name is authoritative on recovery).
func encodeChannelFile(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
			b.WriteByte(c)
		default:
			fmt.Fprintf(&b, "%%%02X", c)
		}
	}
	return b.String() + segmentExt
}

// createSegmentFile creates a fresh segment file with its header.
func createSegmentFile(path, name string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("historian: create segment file: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	if info.Size() > 0 {
		// Re-ensured existing channel: header already written.
		return f, nil
	}
	hdr := make([]byte, 0, len(fileMagic)+2+len(name))
	hdr = append(hdr, fileMagic...)
	hdr = binary.LittleEndian.AppendUint16(hdr, uint16(len(name)))
	hdr = append(hdr, name...)
	if _, err := f.Write(hdr); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("historian: write header: %w", err)
	}
	return f, nil
}

// appendBlock appends one sealed segment as a single framed block.
func appendBlock(f *os.File, samples []Sample) error {
	if len(samples) == 0 {
		return nil
	}
	buf := make([]byte, 0, blockFrame+len(samples)*recordSize)
	buf = binary.LittleEndian.AppendUint32(buf, blockMagic)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(samples)))
	for _, s := range samples {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(s.At.UnixNano()))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.Value))
	}
	crc := crc32.ChecksumIEEE(buf[4:]) // count + records
	buf = binary.LittleEndian.AppendUint32(buf, crc)
	if _, err := f.Write(buf); err != nil {
		return fmt.Errorf("write segment block: %w", err)
	}
	return nil
}

// recoverSegmentFile reads a channel segment file back into sorted
// segments, truncating a torn tail and refusing interior corruption.
func recoverSegmentFile(path string) (string, []*segment, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", nil, fmt.Errorf("historian: read segment file: %w", err)
	}
	if len(data) < len(fileMagic)+2 {
		return "", nil, fmt.Errorf("historian: %s: truncated header", path)
	}
	if string(data[:len(fileMagic)]) != fileMagic {
		return "", nil, fmt.Errorf("historian: %s: bad file magic", path)
	}
	nameLen := int(binary.LittleEndian.Uint16(data[len(fileMagic):]))
	off := len(fileMagic) + 2
	if len(data) < off+nameLen {
		return "", nil, fmt.Errorf("historian: %s: truncated channel name", path)
	}
	name := string(data[off : off+nameLen])
	if name == "" {
		return "", nil, fmt.Errorf("historian: %s: empty channel name", path)
	}
	off += nameLen

	var segments []*segment
	tornAt := -1
	for off < len(data) {
		remaining := len(data) - off
		if remaining < 8 {
			// A frame header prefix: only a torn append can leave this.
			tornAt = off
			break
		}
		magic := binary.LittleEndian.Uint32(data[off:])
		count := int(binary.LittleEndian.Uint32(data[off+4:]))
		if magic != blockMagic {
			return "", nil, fmt.Errorf("historian: %s: bad block magic at offset %d (corrupted file)", path, off)
		}
		if count <= 0 || count*recordSize > maxBlockSize {
			return "", nil, fmt.Errorf("historian: %s: implausible block count %d at offset %d (corrupted file)", path, count, off)
		}
		need := blockFrame + count*recordSize
		if remaining < need {
			// The final block never finished its single-write append.
			tornAt = off
			break
		}
		payload := data[off+4 : off+8+count*recordSize]
		wantCRC := binary.LittleEndian.Uint32(data[off+8+count*recordSize:])
		if crc32.ChecksumIEEE(payload) != wantCRC {
			// A torn single-write append leaves a short block (handled
			// above), never a full-length one with a bad CRC — that is bit
			// corruption, refused even at the tail.
			return "", nil, fmt.Errorf("historian: %s: block CRC mismatch at offset %d (corrupted file)", path, off)
		}
		samples := make([]Sample, count)
		rec := off + 8
		for i := 0; i < count; i++ {
			nanos := int64(binary.LittleEndian.Uint64(data[rec:]))
			bits := binary.LittleEndian.Uint64(data[rec+8:])
			samples[i] = Sample{At: time.Unix(0, nanos).UTC(), Value: math.Float64frombits(bits)}
			rec += recordSize
		}
		// Blocks are written sorted; tolerate (and repair) any drift.
		sort.SliceStable(samples, func(i, j int) bool { return samples[i].At.Before(samples[j].At) })
		segments = append(segments, newSegment(samples))
		off += need
	}
	if tornAt >= 0 {
		if err := truncateFile(path, int64(tornAt)); err != nil {
			return "", nil, err
		}
	}
	return name, segments, nil
}

// truncateFile cuts the file to size bytes (torn-tail repair).
func truncateFile(path string, size int64) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("historian: open for truncation: %w", err)
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		return fmt.Errorf("historian: truncate torn tail: %w", err)
	}
	if err := f.Sync(); err != nil && err != io.EOF {
		return err
	}
	return nil
}
