package historian

import (
	"fmt"
	"sort"
	"time"
)

// Rollup is one downsampled bucket of a tier: the min/max envelope and the
// mean of every raw sample whose timestamp falls in [Start, Start+Dur).
type Rollup struct {
	Start time.Time
	Dur   time.Duration
	Min   float64
	Max   float64
	Sum   float64
	Count int
}

// Mean returns the bucket average.
func (r Rollup) Mean() float64 {
	if r.Count == 0 {
		return 0
	}
	return r.Sum / float64(r.Count)
}

// End returns the exclusive bucket end.
func (r Rollup) End() time.Time { return r.Start.Add(r.Dur) }

// tier maintains one rollup resolution incrementally. Buckets are keyed by
// their start nanos; a sorted key cache is rebuilt lazily on query, so the
// append path stays a map upsert.
type tier struct {
	dur     time.Duration
	buckets map[int64]*Rollup
	sorted  []int64 // ascending bucket starts; nil when dirty
}

func newTier(d time.Duration) *tier {
	return &tier{dur: d, buckets: make(map[int64]*Rollup)}
}

// bucketStart floors t to the tier grid (correct for pre-epoch times too).
func (t *tier) bucketStart(at time.Time) int64 {
	n := at.UnixNano()
	d := int64(t.dur)
	q := n / d
	if n%d < 0 {
		q--
	}
	return q * d
}

func (t *tier) add(s Sample) {
	key := t.bucketStart(s.At)
	b, ok := t.buckets[key]
	if !ok {
		t.buckets[key] = &Rollup{
			Start: time.Unix(0, key).UTC(), Dur: t.dur,
			Min: s.Value, Max: s.Value, Sum: s.Value, Count: 1,
		}
		t.sorted = nil
		return
	}
	if s.Value < b.Min {
		b.Min = s.Value
	}
	if s.Value > b.Max {
		b.Max = s.Value
	}
	b.Sum += s.Value
	b.Count++
}

// trim drops buckets that end at or before the cutoff.
func (t *tier) trim(cutoff time.Time) {
	for key, b := range t.buckets {
		if !b.End().After(cutoff) {
			delete(t.buckets, key)
			t.sorted = nil
		}
	}
}

// query returns copies of the buckets overlapping [from, to] in start
// order (zero bounds are open).
func (t *tier) query(from, to time.Time) []Rollup {
	if t.sorted == nil {
		t.sorted = make([]int64, 0, len(t.buckets))
		for key := range t.buckets {
			t.sorted = append(t.sorted, key)
		}
		sort.Slice(t.sorted, func(i, j int) bool { return t.sorted[i] < t.sorted[j] })
	}
	var out []Rollup
	for _, key := range t.sorted {
		b := t.buckets[key]
		if !from.IsZero() && !b.End().After(from) {
			continue
		}
		if !to.IsZero() && b.Start.After(to) {
			break
		}
		out = append(out, *b)
	}
	return out
}

// QueryRollup returns the rollup buckets of one maintained tier
// overlapping [from, to] (zero bounds are open), oldest first. The tier
// duration must match one configured via EnsureChannel exactly.
func (s *Store) QueryRollup(name string, dur time.Duration, from, to time.Time) ([]Rollup, error) {
	ch, err := s.channel(name)
	if err != nil {
		return nil, err
	}
	ch.mu.Lock()
	defer ch.mu.Unlock()
	t := ch.tierFor(dur)
	if t == nil {
		return nil, fmt.Errorf("historian: channel %q has no %v tier (have %v)",
			name, dur, ch.cfg.Tiers)
	}
	return t.query(from, to), nil
}
