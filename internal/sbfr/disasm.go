package sbfr

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"
)

// Disassemble renders a compiled program as human-readable pseudo-assembly,
// one line per transition, for the sbfrc tool and debugging. Channel and
// machine names are resolved through env when provided (nil env prints raw
// indices).
func Disassemble(p *Program, env *Env) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "machine %s  # %d bytes, %d states\n",
		p.Name, p.Size(), p.NumStates())
	if p.NumLocals() > 0 {
		fmt.Fprintf(&b, "  locals %d\n", p.NumLocals())
	}
	code := p.Code
	off := 2
	for s := 0; s < p.NumStates(); s++ {
		fmt.Fprintf(&b, "  state %s\n", p.StateNames[s])
		if off >= len(code) {
			return "", fmt.Errorf("sbfr: truncated state %d", s)
		}
		nTrans := int(code[off])
		off++
		for t := 0; t < nTrans; t++ {
			if off+2 > len(code) {
				return "", fmt.Errorf("sbfr: truncated transition")
			}
			target := int(code[off])
			nActions := int(code[off+1])
			off += 2
			cond, next, err := disasmExpr(code, off, env)
			if err != nil {
				return "", err
			}
			off = next
			var actions []string
			for a := 0; a < nActions; a++ {
				kind := code[off]
				idx := int(code[off+1])
				off += 2
				expr, next, err := disasmExpr(code, off, env)
				if err != nil {
					return "", err
				}
				off = next
				var lhs string
				switch kind {
				case targetLocal:
					lhs = fmt.Sprintf("local.%d", idx)
				case targetSelfStatus:
					lhs = "status.self"
				case targetStatus:
					lhs = fmt.Sprintf("status.%s", machineName(env, idx))
				default:
					return "", fmt.Errorf("sbfr: unknown action target %d", kind)
				}
				actions = append(actions, lhs+" = "+expr)
			}
			line := "    when " + cond
			if len(actions) > 0 {
				line += " do " + strings.Join(actions, "; ")
			}
			if target >= len(p.StateNames) {
				return "", fmt.Errorf("sbfr: transition target %d out of range", target)
			}
			line += " goto " + p.StateNames[target]
			b.WriteString(line + "\n")
		}
	}
	return b.String(), nil
}

func machineName(env *Env, idx int) string {
	if env != nil {
		for name, i := range env.Machines {
			if i == idx {
				return name
			}
		}
	}
	return fmt.Sprintf("%d", idx)
}

func channelName(env *Env, idx int) string {
	if env != nil {
		for name, i := range env.Channels {
			if i == idx {
				return name
			}
		}
	}
	return fmt.Sprintf("%d", idx)
}

// disasmExpr decompiles a postfix expression back to infix source form.
func disasmExpr(code []byte, off int, env *Env) (string, int, error) {
	var stack []string
	push := func(s string) { stack = append(stack, s) }
	pop2 := func() (string, string, error) {
		if len(stack) < 2 {
			return "", "", fmt.Errorf("sbfr: disasm stack underflow")
		}
		a, b := stack[len(stack)-2], stack[len(stack)-1]
		stack = stack[:len(stack)-2]
		return a, b, nil
	}
	binop := func(op string) error {
		a, b, err := pop2()
		if err != nil {
			return err
		}
		push("(" + a + " " + op + " " + b + ")")
		return nil
	}
	for off < len(code) {
		op := code[off]
		off++
		switch op {
		case opEnd:
			if len(stack) != 1 {
				return "", off, fmt.Errorf("sbfr: disasm leaves %d values", len(stack))
			}
			return stack[0], off, nil
		case opConst:
			bits := binary.BigEndian.Uint32(code[off : off+4])
			off += 4
			push(fmt.Sprintf("%g", math.Float32frombits(bits)))
		case opSensor:
			push("in." + channelName(env, int(code[off])))
			off++
		case opDelta:
			push("delta." + channelName(env, int(code[off])))
			off++
		case opLocal:
			push(fmt.Sprintf("local.%d", code[off]))
			off++
		case opStatus:
			push("status." + machineName(env, int(code[off])))
			off++
		case opElapsed:
			push("elapsed")
		case opSelfStatus:
			push("status.self")
		case opNot:
			if len(stack) < 1 {
				return "", off, fmt.Errorf("sbfr: disasm stack underflow")
			}
			stack[len(stack)-1] = "!" + stack[len(stack)-1]
		case opAdd:
			if err := binop("+"); err != nil {
				return "", off, err
			}
		case opSub:
			if err := binop("-"); err != nil {
				return "", off, err
			}
		case opMul:
			if err := binop("*"); err != nil {
				return "", off, err
			}
		case opGT:
			if err := binop(">"); err != nil {
				return "", off, err
			}
		case opLT:
			if err := binop("<"); err != nil {
				return "", off, err
			}
		case opGE:
			if err := binop(">="); err != nil {
				return "", off, err
			}
		case opLE:
			if err := binop("<="); err != nil {
				return "", off, err
			}
		case opEQ:
			if err := binop("=="); err != nil {
				return "", off, err
			}
		case opNE:
			if err := binop("!="); err != nil {
				return "", off, err
			}
		case opAnd:
			if err := binop("&&"); err != nil {
				return "", off, err
			}
		case opOr:
			if err := binop("||"); err != nil {
				return "", off, err
			}
		case opBitOr:
			if err := binop("|"); err != nil {
				return "", off, err
			}
		default:
			return "", off, fmt.Errorf("sbfr: disasm unknown opcode 0x%02x", op)
		}
	}
	return "", off, fmt.Errorf("sbfr: disasm ran off end")
}
