package sbfr

import (
	"fmt"
)

// System schedules a set of machines over shared sensor channels and status
// registers — "several enhanced finite-state machines operating in
// parallel". Machines are stepped in declaration order each cycle; status
// register writes are visible immediately, which is what lets the Figure 3
// stiction machine reset the spike machine's status within the same cycle
// family of ticks.
type System struct {
	channels   []string
	chanIdx    map[string]int
	machines   []*Runtime
	machineIdx map[string]int
	status     []float64
	sensors    []float64
	prev       []float64
	ticks      int64
	started    bool
}

// NewSystem builds a system from compiled programs sharing the channel list
// used at assembly time.
func NewSystem(channels []string, progs []*Program) (*System, error) {
	if len(progs) == 0 {
		return nil, fmt.Errorf("sbfr: system needs at least one machine")
	}
	if len(progs) > 255 {
		return nil, fmt.Errorf("sbfr: too many machines (%d)", len(progs))
	}
	s := &System{
		channels:   append([]string(nil), channels...),
		chanIdx:    make(map[string]int, len(channels)),
		machineIdx: make(map[string]int, len(progs)),
		status:     make([]float64, len(progs)),
		sensors:    make([]float64, len(channels)),
		prev:       make([]float64, len(channels)),
	}
	for i, c := range channels {
		if _, dup := s.chanIdx[c]; dup {
			return nil, fmt.Errorf("sbfr: duplicate channel %q", c)
		}
		s.chanIdx[c] = i
	}
	for i, p := range progs {
		if p.SelfIndex != i {
			return nil, fmt.Errorf("sbfr: machine %q has self index %d, expected %d (assemble all machines together)", p.Name, p.SelfIndex, i)
		}
		if _, dup := s.machineIdx[p.Name]; dup {
			return nil, fmt.Errorf("sbfr: duplicate machine %q", p.Name)
		}
		rt, err := newRuntime(p)
		if err != nil {
			return nil, err
		}
		s.machines = append(s.machines, rt)
		s.machineIdx[p.Name] = i
	}
	return s, nil
}

// NewSystemFromSource assembles source against channels and builds a system.
func NewSystemFromSource(source string, channels []string) (*System, error) {
	progs, err := AssembleSystem(source, channels)
	if err != nil {
		return nil, err
	}
	return NewSystem(channels, progs)
}

// Cycle advances the system one tick with the given sensor values (one per
// channel, in the order given to NewSystem). The first cycle establishes the
// baseline, so deltas are zero on tick one.
func (s *System) Cycle(inputs []float64) error {
	if len(inputs) != len(s.sensors) {
		return fmt.Errorf("sbfr: got %d inputs, want %d", len(inputs), len(s.sensors))
	}
	if s.started {
		copy(s.prev, s.sensors)
	}
	copy(s.sensors, inputs)
	if !s.started {
		copy(s.prev, s.sensors)
		s.started = true
	}
	env := evalEnv{
		sensors: s.sensors,
		deltas:  make([]float64, len(s.sensors)),
		status:  s.status,
	}
	for i := range env.deltas {
		env.deltas[i] = s.sensors[i] - s.prev[i]
	}
	for _, m := range s.machines {
		if _, err := m.step(&env); err != nil {
			return err
		}
	}
	s.ticks++
	return nil
}

// CycleInto is Cycle with a caller-provided delta buffer, for the
// allocation-free hot path used by benchmarks and the DC embedding.
//
//mpros:hotpath rule-machine tick on the embedded cycle
func (s *System) CycleInto(inputs, deltaBuf []float64) error {
	if len(inputs) != len(s.sensors) || len(deltaBuf) != len(s.sensors) {
		return fmt.Errorf("sbfr: buffer size mismatch")
	}
	if s.started {
		copy(s.prev, s.sensors)
	}
	copy(s.sensors, inputs)
	if !s.started {
		copy(s.prev, s.sensors)
		s.started = true
	}
	for i := range deltaBuf {
		deltaBuf[i] = s.sensors[i] - s.prev[i]
	}
	env := evalEnv{sensors: s.sensors, deltas: deltaBuf, status: s.status}
	for _, m := range s.machines {
		if _, err := m.step(&env); err != nil {
			return err
		}
	}
	s.ticks++
	return nil
}

// Ticks returns the number of completed cycles.
func (s *System) Ticks() int64 { return s.ticks }

// MachineNames returns machine names in scheduling order.
func (s *System) MachineNames() []string {
	out := make([]string, len(s.machines))
	for i, m := range s.machines {
		out[i] = m.prog.Name
	}
	return out
}

// Status returns a machine's status register.
func (s *System) Status(machine string) (float64, error) {
	i, ok := s.machineIdx[machine]
	if !ok {
		return 0, fmt.Errorf("sbfr: no machine %q", machine)
	}
	return s.status[i], nil
}

// SetStatus writes a machine's status register — the paper's external-agent
// handshake: after a higher-level component notices a flagged condition it
// "has the responsibility to then reset [the] status register to 0".
func (s *System) SetStatus(machine string, v float64) error {
	i, ok := s.machineIdx[machine]
	if !ok {
		return fmt.Errorf("sbfr: no machine %q", machine)
	}
	s.status[i] = v
	return nil
}

// StateOf returns a machine's current state name.
func (s *System) StateOf(machine string) (string, error) {
	i, ok := s.machineIdx[machine]
	if !ok {
		return "", fmt.Errorf("sbfr: no machine %q", machine)
	}
	return s.machines[i].State(), nil
}

// LocalOf returns local variable n of a machine.
func (s *System) LocalOf(machine string, n int) (float64, error) {
	i, ok := s.machineIdx[machine]
	if !ok {
		return 0, fmt.Errorf("sbfr: no machine %q", machine)
	}
	return s.machines[i].Local(n), nil
}

// Reset returns every machine to its initial state and zeroes all status
// registers and tick counts.
func (s *System) Reset() {
	for _, m := range s.machines {
		m.Reset()
	}
	for i := range s.status {
		s.status[i] = 0
	}
	s.ticks = 0
	s.started = false
}

// FootprintBytes returns the total compiled bytecode size of all machines —
// the quantity the paper bounds at 32 KB for 100 machines plus interpreter.
func (s *System) FootprintBytes() int {
	total := 0
	for _, m := range s.machines {
		total += m.prog.Size()
	}
	return total
}

// RuntimeBytes estimates the RAM the machine runtimes need: locals and
// status registers at 8 bytes each plus per-machine bookkeeping.
func (s *System) RuntimeBytes() int {
	total := 8 * len(s.status)
	for _, m := range s.machines {
		total += 8*len(m.locals) + 16 // state + elapsed
	}
	return total
}
