package sbfr

import (
	"strings"
	"testing"
)

// counter is a trivial one-machine source used across tests.
const counterSource = `
machine Counter
  locals 1
  state Run
    when in.x > 0.5 do local.0 = local.0 + 1 goto Run
    when local.0 > 2 do status.self = 1 goto Done
  state Done
    when status.self == 0 do local.0 = 0 goto Run
`

func TestAssembleAndRunCounter(t *testing.T) {
	sys, err := NewSystemFromSource(counterSource, []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	// Three pulses, then a quiet tick to let the count check fire.
	seq := []float64{1, 1, 1, 0, 0}
	for _, v := range seq {
		if err := sys.Cycle([]float64{v}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := sys.Status("Counter")
	if err != nil {
		t.Fatal(err)
	}
	if st != 1 {
		t.Fatalf("status %g, want 1", st)
	}
	name, _ := sys.StateOf("Counter")
	if name != "Done" {
		t.Fatalf("state %q", name)
	}
	// External agent resets the status; the machine returns to Run and
	// clears its local.
	if err := sys.SetStatus("Counter", 0); err != nil {
		t.Fatal(err)
	}
	if err := sys.Cycle([]float64{0}); err != nil {
		t.Fatal(err)
	}
	name, _ = sys.StateOf("Counter")
	if name != "Run" {
		t.Fatalf("state after reset %q", name)
	}
	if v, _ := sys.LocalOf("Counter", 0); v != 0 {
		t.Fatalf("local not cleared: %g", v)
	}
}

func TestElapsedSemantics(t *testing.T) {
	src := `
machine Timer
  state Wait
    when elapsed >= 3 goto Fired
  state Fired
    when 0 goto Fired
`
	sys, err := NewSystemFromSource(src, []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	// Elapsed increments on each non-firing tick; fires on the 4th cycle.
	for i := 0; i < 3; i++ {
		if err := sys.Cycle([]float64{0}); err != nil {
			t.Fatal(err)
		}
		if st, _ := sys.StateOf("Timer"); st != "Wait" {
			t.Fatalf("cycle %d: state %s", i, st)
		}
	}
	if err := sys.Cycle([]float64{0}); err != nil {
		t.Fatal(err)
	}
	if st, _ := sys.StateOf("Timer"); st != "Fired" {
		t.Fatal("timer did not fire at elapsed>=3")
	}
}

func TestDeltaSemantics(t *testing.T) {
	src := `
machine Rise
  state Wait
    when delta.x > 0.5 goto Hit
  state Hit
    when 0 goto Hit
`
	sys, err := NewSystemFromSource(src, []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	// First cycle establishes baseline: a high initial value is NOT a rise.
	if err := sys.Cycle([]float64{10}); err != nil {
		t.Fatal(err)
	}
	if st, _ := sys.StateOf("Rise"); st != "Wait" {
		t.Fatal("baseline tick must not trigger delta")
	}
	if err := sys.Cycle([]float64{10.1}); err != nil {
		t.Fatal(err)
	}
	if st, _ := sys.StateOf("Rise"); st != "Wait" {
		t.Fatal("small delta must not trigger")
	}
	if err := sys.Cycle([]float64{11}); err != nil {
		t.Fatal(err)
	}
	if st, _ := sys.StateOf("Rise"); st != "Hit" {
		t.Fatal("0.9 delta should trigger")
	}
}

func TestCrossMachineStatus(t *testing.T) {
	src := `
machine Producer
  state S
    when in.x > 0 do status.self = 5 goto S

machine Consumer
  locals 1
  state S
    when status.Producer == 5 do local.0 = 1; status.Producer = 0 goto S
`
	sys, err := NewSystemFromSource(src, []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Cycle([]float64{1}); err != nil {
		t.Fatal(err)
	}
	// Producer runs first and sets status; Consumer sees it the same cycle
	// (in-order scheduling) and resets it.
	if v, _ := sys.LocalOf("Consumer", 0); v != 1 {
		t.Fatal("consumer did not observe producer status")
	}
	if st, _ := sys.Status("Producer"); st != 0 {
		t.Fatal("consumer did not reset producer status")
	}
}

func TestTransitionPriorityOrder(t *testing.T) {
	src := `
machine P
  locals 1
  state S
    when in.x > 0 do local.0 = 1 goto S
    when in.x > 0 do local.0 = 2 goto S
`
	sys, err := NewSystemFromSource(src, []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Cycle([]float64{1}); err != nil {
		t.Fatal(err)
	}
	if v, _ := sys.LocalOf("P", 0); v != 1 {
		t.Fatalf("first transition must win, local=%g", v)
	}
}

func TestSelfTransitionResetsElapsed(t *testing.T) {
	src := `
machine P
  locals 1
  state S
    when in.x > 0 goto S
    when elapsed >= 2 do local.0 = 1 goto S
`
	sys, err := NewSystemFromSource(src, []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	// Keep x high: elapsed never accumulates because the self-transition
	// fires every cycle.
	for i := 0; i < 10; i++ {
		if err := sys.Cycle([]float64{1}); err != nil {
			t.Fatal(err)
		}
	}
	if v, _ := sys.LocalOf("P", 0); v != 0 {
		t.Fatal("elapsed should have been reset by self-transitions")
	}
}

func TestExpressionOperators(t *testing.T) {
	// Exercise each operator through a machine that computes into locals.
	src := `
machine Ops
  locals 8
  state S
    when 1 do local.0 = 2 + 3; local.1 = 10 - 4; local.2 = 6 * 7; \
      local.3 = (1 | 4) + (2 | 2); local.4 = !0 + !5; \
      local.5 = (3 >= 3) + (3 <= 2) + (1 == 1) + (1 != 1); \
      local.6 = (2 > 1 && 1 > 2) + (2 > 1 || 1 > 2); \
      local.7 = -3 * -2 goto S
`
	sys, err := NewSystemFromSource(src, []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Cycle([]float64{0}); err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 6, 42, 7, 1, 2, 1, 6}
	for i, w := range want {
		if v, _ := sys.LocalOf("Ops", i); v != w {
			t.Errorf("local.%d = %g, want %g", i, v, w)
		}
	}
}

func TestAssemblerErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"empty", ""},
		{"no machine", "state S\n"},
		{"machine two names", "machine A B\n state S\n when 1 goto S"},
		{"no states", "machine A\n locals 1"},
		{"dup state", "machine A\n state S\n state S"},
		{"dup machine", "machine A\n state S\n when 1 goto S\nmachine A\n state S\n when 1 goto S"},
		{"bad target", "machine A\n state S\n when 1 goto Ghost"},
		{"missing goto", "machine A\n state S\n when 1"},
		{"empty cond", "machine A\n state S\n when  goto S"},
		{"bad channel", "machine A\n state S\n when in.ghost > 0 goto S"},
		{"bad delta channel", "machine A\n state S\n when delta.ghost > 0 goto S"},
		{"bad status machine", "machine A\n state S\n when status.Ghost > 0 goto S"},
		{"local out of range", "machine A\n locals 1\n state S\n when local.5 > 0 goto S"},
		{"action local oob", "machine A\n locals 1\n state S\n when 1 do local.7 = 1 goto S"},
		{"action no equals", "machine A\n state S\n when 1 do local.0 goto S"},
		{"action bad target", "machine A\n state S\n when 1 do bogus = 1 goto S"},
		{"single equals expr", "machine A\n state S\n when in.x = 1 goto S"},
		{"stray amp", "machine A\n state S\n when 1 & 1 goto S"},
		{"unbalanced paren", "machine A\n state S\n when (1 goto S"},
		{"trailing token", "machine A\n state S\n when 1 2 goto S"},
		{"bad locals", "machine A\n locals x\n state S\n when 1 goto S"},
		{"transition outside state", "machine A\n when 1 goto S\n state S"},
		{"unknown stmt", "machine A\n state S\n bogus"},
		{"unknown ident", "machine A\n state S\n when frobnicate > 0 goto S"},
		{"action status ghost", "machine A\n state S\n when 1 do status.Ghost = 1 goto S"},
	}
	for _, c := range cases {
		if _, err := AssembleSystem(c.src, []string{"x"}); err == nil {
			t.Errorf("%s: expected assembly error", c.name)
		}
	}
	if _, err := AssembleSystem("machine A\n state S\n when 1 goto S", []string{"x", "x"}); err == nil {
		t.Error("duplicate channel should error")
	}
}

func TestSystemErrors(t *testing.T) {
	sys, err := NewSystemFromSource(counterSource, []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Cycle([]float64{1, 2}); err == nil {
		t.Error("wrong input width should error")
	}
	if _, err := sys.Status("Ghost"); err == nil {
		t.Error("unknown machine status")
	}
	if err := sys.SetStatus("Ghost", 1); err == nil {
		t.Error("unknown machine set status")
	}
	if _, err := sys.StateOf("Ghost"); err == nil {
		t.Error("unknown machine state")
	}
	if _, err := sys.LocalOf("Ghost", 0); err == nil {
		t.Error("unknown machine local")
	}
	if _, err := NewSystem([]string{"x"}, nil); err == nil {
		t.Error("empty system should error")
	}
	// Programs must be assembled together (self index contiguity).
	progs, _ := AssembleSystem(counterSource, []string{"x"})
	if _, err := NewSystem([]string{"x"}, []*Program{progs[0], progs[0]}); err == nil {
		t.Error("mis-indexed programs should error")
	}
}

func TestResetAndTicks(t *testing.T) {
	sys, err := NewSystemFromSource(counterSource, []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := sys.Cycle([]float64{1}); err != nil {
			t.Fatal(err)
		}
	}
	if sys.Ticks() != 5 {
		t.Errorf("ticks %d", sys.Ticks())
	}
	sys.Reset()
	if sys.Ticks() != 0 {
		t.Error("ticks after reset")
	}
	if st, _ := sys.StateOf("Counter"); st != "Run" {
		t.Error("state after reset")
	}
	if v, _ := sys.Status("Counter"); v != 0 {
		t.Error("status after reset")
	}
}

func TestMachineNamesAndFootprint(t *testing.T) {
	sys, err := NewEMASystem()
	if err != nil {
		t.Fatal(err)
	}
	names := sys.MachineNames()
	if len(names) != 2 || names[0] != "Spike" || names[1] != "Stiction" {
		t.Fatalf("names %v", names)
	}
	if sys.FootprintBytes() <= 0 || sys.FootprintBytes() > 1024 {
		t.Errorf("EMA system footprint %d bytes, expected small", sys.FootprintBytes())
	}
	if sys.RuntimeBytes() <= 0 {
		t.Error("runtime bytes")
	}
}

// TestFigure3MachineSizes pins the compiled sizes of the Figure 3 machines
// to the same order of magnitude the paper reports (229 and 93 bytes).
func TestFigure3MachineSizes(t *testing.T) {
	progs, err := AssembleSystem(EMASource, EMAChannels)
	if err != nil {
		t.Fatal(err)
	}
	spike, stiction := progs[0], progs[1]
	if spike.Size() < 50 || spike.Size() > 500 {
		t.Errorf("spike machine %d bytes, paper reports 229", spike.Size())
	}
	if stiction.Size() < 50 || stiction.Size() > 500 {
		t.Errorf("stiction machine %d bytes, paper reports 93", stiction.Size())
	}
	t.Logf("spike=%dB stiction=%dB (paper: 229B, 93B)", spike.Size(), stiction.Size())
	if spike.NumStates() != 4 {
		t.Errorf("spike machine has %d states, Figure 3 shows 4", spike.NumStates())
	}
	if stiction.NumStates() != 2 {
		t.Errorf("stiction machine has %d states, Figure 3 shows 2", stiction.NumStates())
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	progs, err := AssembleSystem(EMASource, EMAChannels)
	if err != nil {
		t.Fatal(err)
	}
	env := Env{Channels: map[string]int{"current": 0, "cpos": 1},
		Machines: map[string]int{"Spike": 0, "Stiction": 1}}
	for _, p := range progs {
		text, err := Disassemble(p, &env)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if !strings.Contains(text, "machine "+p.Name) {
			t.Errorf("missing header in %q", text)
		}
		for _, s := range p.StateNames {
			if !strings.Contains(text, "state "+s) {
				t.Errorf("missing state %s", s)
			}
		}
	}
	// The disassembly re-assembles to semantically identical machines.
	var combined strings.Builder
	for _, p := range progs {
		text, _ := Disassemble(p, &env)
		// Strip the "; N bytes" comment — the assembler ignores comments anyway.
		combined.WriteString(text)
	}
	reprogs, err := AssembleSystem(combined.String(), EMAChannels)
	if err != nil {
		t.Fatalf("reassemble: %v\nsource:\n%s", err, combined.String())
	}
	if len(reprogs) != len(progs) {
		t.Fatal("machine count changed through round trip")
	}
	for i := range progs {
		if reprogs[i].NumStates() != progs[i].NumStates() {
			t.Errorf("machine %d state count changed", i)
		}
	}
}

func BenchmarkCycleEMASystem(b *testing.B) {
	sys, err := NewEMASystem()
	if err != nil {
		b.Fatal(err)
	}
	in := []float64{1.0, 0}
	buf := make([]float64, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in[0] = 1.0 + float64(i%3)*0.01
		if err := sys.CycleInto(in, buf); err != nil {
			b.Fatal(err)
		}
	}
}
