// Package sbfr implements State-Based Feature Recognition (§6.3): "a
// technique for the hierarchical recognition of temporally correlated
// features in multi-channel input. It consists of a set of several enhanced
// finite-state machines operating in parallel. Each state machine can
// transition based on sensor input, its own state, the state of another
// state machine, measured elapsed time, or any logical combination of
// these."
//
// Machines are compiled to a compact bytecode so the paper's embedded
// footprint claims are measurable: the original interpreter plus 100
// machines fits "in less than 32K bytes" and cycles "with a period of less
// than 4 milliseconds"; the Figure 3 spike and stiction machines are "229
// and 93 bytes". Experiment E4 reproduces those numbers against this
// implementation; the Figure 3 machines ship in machines.go.
//
// Each machine has: a current state; local variables ("each machine can
// have any number of local variables"); and a status register, "readable
// and writeable by any of the state machines". Transitions carry a
// condition expression and an action list; the first matching transition in
// declaration order fires, executes its actions, and enters the target
// state (self-transitions re-enter and reset the elapsed-time counter).
package sbfr

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Bytecode opcodes. Expressions are postfix sequences terminated by opEnd.
const (
	opEnd        byte = 0x00
	opConst      byte = 0x01 // + float32 big-endian
	opSensor     byte = 0x02 // + channel index
	opDelta      byte = 0x03 // + channel index (current - previous sample)
	opLocal      byte = 0x04 // + local index
	opStatus     byte = 0x05 // + machine index
	opElapsed    byte = 0x06 // ticks since state entry
	opSelfStatus byte = 0x07

	opAdd byte = 0x10
	opSub byte = 0x11
	opMul byte = 0x12

	opGT byte = 0x20
	opLT byte = 0x21
	opGE byte = 0x22
	opLE byte = 0x23
	opEQ byte = 0x24
	opNE byte = 0x25

	opAnd   byte = 0x30
	opOr    byte = 0x31
	opNot   byte = 0x32
	opBitOr byte = 0x33
)

// Action target kinds in bytecode.
const (
	targetLocal      byte = 0
	targetStatus     byte = 1
	targetSelfStatus byte = 2
)

// Program is one compiled state machine. The bytecode layout is:
//
//	[numLocals][numStates] state*
//	state      = [numTransitions] transition*
//	transition = [targetState][numActions] condExpr action*
//	action     = [targetKind][targetIndex] expr
//	expr       = op* opEnd
//
// Name, state names and the self index are metadata kept outside the
// bytecode (they are not needed at run time on the embedded target).
type Program struct {
	// Name is the machine name used for status references.
	Name string
	// StateNames maps state index to source-level name.
	StateNames []string
	// Code is the compiled bytecode.
	Code []byte
	// SelfIndex is the machine's index within its system (for status.self).
	SelfIndex int
}

// Size returns the compiled machine size in bytes — the figure the paper
// reports as 229 and 93 bytes for the Figure 3 machines.
func (p *Program) Size() int { return len(p.Code) }

// NumLocals returns the machine's local variable count.
func (p *Program) NumLocals() int {
	if len(p.Code) == 0 {
		return 0
	}
	return int(p.Code[0])
}

// NumStates returns the machine's state count.
func (p *Program) NumStates() int {
	if len(p.Code) < 2 {
		return 0
	}
	return int(p.Code[1])
}

// Runtime is the mutable execution state of one machine: current state,
// elapsed ticks in that state, and local variables. Status registers live in
// the System because they are shared between machines.
type Runtime struct {
	prog    *Program
	state   int
	elapsed float64
	locals  []float64
	// stateOffsets[i] is the byte offset of state i's transition block.
	stateOffsets []int
}

// newRuntime prepares a runtime and pre-indexes state offsets.
func newRuntime(p *Program) (*Runtime, error) {
	if len(p.Code) < 2 {
		return nil, fmt.Errorf("sbfr: machine %q has empty bytecode", p.Name)
	}
	r := &Runtime{
		prog:   p,
		locals: make([]float64, p.NumLocals()),
	}
	off := 2
	n := p.NumStates()
	r.stateOffsets = make([]int, n)
	for s := 0; s < n; s++ {
		r.stateOffsets[s] = off
		end, err := skipState(p.Code, off)
		if err != nil {
			return nil, fmt.Errorf("sbfr: machine %q state %d: %w", p.Name, s, err)
		}
		off = end
	}
	if off != len(p.Code) {
		return nil, fmt.Errorf("sbfr: machine %q has %d trailing bytes", p.Name, len(p.Code)-off)
	}
	return r, nil
}

// skipState returns the offset just past the state block starting at off.
func skipState(code []byte, off int) (int, error) {
	if off >= len(code) {
		return 0, fmt.Errorf("truncated state header")
	}
	nTrans := int(code[off])
	off++
	for t := 0; t < nTrans; t++ {
		if off+2 > len(code) {
			return 0, fmt.Errorf("truncated transition header")
		}
		nActions := int(code[off+1])
		off += 2
		var err error
		off, err = skipExpr(code, off)
		if err != nil {
			return 0, err
		}
		for a := 0; a < nActions; a++ {
			if off+2 > len(code) {
				return 0, fmt.Errorf("truncated action header")
			}
			off += 2
			off, err = skipExpr(code, off)
			if err != nil {
				return 0, err
			}
		}
	}
	return off, nil
}

// skipExpr returns the offset just past the opEnd-terminated expression.
func skipExpr(code []byte, off int) (int, error) {
	for off < len(code) {
		op := code[off]
		off++
		switch op {
		case opEnd:
			return off, nil
		case opConst:
			off += 4
		case opSensor, opDelta, opLocal, opStatus:
			off++
		}
		if off > len(code) {
			break
		}
	}
	return 0, fmt.Errorf("unterminated expression")
}

// evalEnv is what an expression can read during evaluation.
type evalEnv struct {
	sensors []float64
	deltas  []float64
	status  []float64
	locals  []float64
	elapsed float64
	self    int
}

const maxStack = 32

// evalExpr runs one postfix expression and returns its value and the offset
// just past the terminating opEnd.
func evalExpr(code []byte, off int, env *evalEnv) (float64, int, error) {
	var stack [maxStack]float64
	sp := 0
	push := func(v float64) error {
		if sp >= maxStack {
			return fmt.Errorf("sbfr: expression stack overflow")
		}
		stack[sp] = v
		sp++
		return nil
	}
	pop2 := func() (float64, float64, error) {
		if sp < 2 {
			return 0, 0, fmt.Errorf("sbfr: expression stack underflow")
		}
		sp -= 2
		return stack[sp], stack[sp+1], nil
	}
	b2f := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	for off < len(code) {
		op := code[off]
		off++
		switch op {
		case opEnd:
			if sp != 1 {
				return 0, off, fmt.Errorf("sbfr: expression leaves %d values on stack", sp)
			}
			return stack[0], off, nil
		case opConst:
			if off+4 > len(code) {
				return 0, off, fmt.Errorf("sbfr: truncated constant")
			}
			bits := binary.BigEndian.Uint32(code[off : off+4])
			off += 4
			if err := push(float64(math.Float32frombits(bits))); err != nil {
				return 0, off, err
			}
		case opSensor, opDelta, opLocal, opStatus:
			if off >= len(code) {
				return 0, off, fmt.Errorf("sbfr: truncated operand")
			}
			idx := int(code[off])
			off++
			var v float64
			switch op {
			case opSensor:
				if idx >= len(env.sensors) {
					return 0, off, fmt.Errorf("sbfr: sensor %d out of range", idx)
				}
				v = env.sensors[idx]
			case opDelta:
				if idx >= len(env.deltas) {
					return 0, off, fmt.Errorf("sbfr: delta %d out of range", idx)
				}
				v = env.deltas[idx]
			case opLocal:
				if idx >= len(env.locals) {
					return 0, off, fmt.Errorf("sbfr: local %d out of range", idx)
				}
				v = env.locals[idx]
			case opStatus:
				if idx >= len(env.status) {
					return 0, off, fmt.Errorf("sbfr: status %d out of range", idx)
				}
				v = env.status[idx]
			}
			if err := push(v); err != nil {
				return 0, off, err
			}
		case opElapsed:
			if err := push(env.elapsed); err != nil {
				return 0, off, err
			}
		case opSelfStatus:
			if err := push(env.status[env.self]); err != nil {
				return 0, off, err
			}
		case opNot:
			if sp < 1 {
				return 0, off, fmt.Errorf("sbfr: stack underflow")
			}
			stack[sp-1] = b2f(stack[sp-1] == 0)
		default:
			a, b, err := pop2()
			if err != nil {
				return 0, off, err
			}
			var v float64
			switch op {
			case opAdd:
				v = a + b
			case opSub:
				v = a - b
			case opMul:
				v = a * b
			case opGT:
				v = b2f(a > b)
			case opLT:
				v = b2f(a < b)
			case opGE:
				v = b2f(a >= b)
			case opLE:
				v = b2f(a <= b)
			case opEQ:
				//lint:allow floateq the SBFR ISA defines an exact-equality opcode; E3/E4 demand bit-identical machine behaviour
				v = b2f(a == b)
			case opNE:
				//lint:allow floateq the SBFR ISA defines an exact-inequality opcode; E3/E4 demand bit-identical machine behaviour
				v = b2f(a != b)
			case opAnd:
				v = b2f(a != 0 && b != 0)
			case opOr:
				v = b2f(a != 0 || b != 0)
			case opBitOr:
				v = float64(int64(a) | int64(b))
			default:
				return 0, off, fmt.Errorf("sbfr: unknown opcode 0x%02x", op)
			}
			if err := push(v); err != nil {
				return 0, off, err
			}
		}
	}
	return 0, off, fmt.Errorf("sbfr: expression ran off end of code")
}

// step advances the machine one tick: evaluates the current state's
// transitions in order and fires the first whose condition is non-zero.
// Returns whether a transition fired.
func (r *Runtime) step(env *evalEnv) (bool, error) {
	env.locals = r.locals
	env.elapsed = r.elapsed
	env.self = r.prog.SelfIndex
	code := r.prog.Code
	off := r.stateOffsets[r.state]
	nTrans := int(code[off])
	off++
	for t := 0; t < nTrans; t++ {
		target := int(code[off])
		nActions := int(code[off+1])
		off += 2
		cond, next, err := evalExpr(code, off, env)
		if err != nil {
			return false, fmt.Errorf("sbfr: machine %q state %s transition %d: %w",
				r.prog.Name, r.prog.StateNames[r.state], t, err)
		}
		off = next
		if cond != 0 {
			// Fire: run each action, then enter the target state.
			for a := 0; a < nActions; a++ {
				kind := code[off]
				idx := int(code[off+1])
				off += 2
				v, next, err := evalExpr(code, off, env)
				if err != nil {
					return false, fmt.Errorf("sbfr: machine %q action %d: %w", r.prog.Name, a, err)
				}
				off = next
				switch kind {
				case targetLocal:
					if idx >= len(r.locals) {
						return false, fmt.Errorf("sbfr: machine %q writes local %d out of range", r.prog.Name, idx)
					}
					r.locals[idx] = v
				case targetStatus:
					if idx >= len(env.status) {
						return false, fmt.Errorf("sbfr: machine %q writes status %d out of range", r.prog.Name, idx)
					}
					env.status[idx] = v
				case targetSelfStatus:
					env.status[env.self] = v
				default:
					return false, fmt.Errorf("sbfr: machine %q unknown action target %d", r.prog.Name, kind)
				}
			}
			if target >= r.prog.NumStates() {
				return false, fmt.Errorf("sbfr: machine %q transition to state %d out of range", r.prog.Name, target)
			}
			r.state = target
			r.elapsed = 0
			return true, nil
		}
		// Skip this transition's actions.
		for a := 0; a < nActions; a++ {
			off += 2
			var err error
			off, err = skipExpr(code, off)
			if err != nil {
				return false, err
			}
		}
	}
	r.elapsed++
	return false, nil
}

// State returns the current state name.
func (r *Runtime) State() string { return r.prog.StateNames[r.state] }

// Local returns local variable i (0 if out of range).
func (r *Runtime) Local(i int) float64 {
	if i < 0 || i >= len(r.locals) {
		return 0
	}
	return r.locals[i]
}

// Reset returns the machine to its initial state with zeroed locals.
func (r *Runtime) Reset() {
	r.state = 0
	r.elapsed = 0
	for i := range r.locals {
		r.locals[i] = 0
	}
}
