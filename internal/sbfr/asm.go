package sbfr

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// The SBFR assembly language. One source file declares one or more machines:
//
//	# comment
//	machine Spike
//	  locals 1
//	  state Wait
//	    when delta.current > 0.5 goto PossibleSpike1
//	  state PossibleSpike1
//	    when delta.current < -0.5 && elapsed <= 4 goto PossibleSpike2
//	    when elapsed > 4 goto Wait
//	  state PossibleSpike2
//	    when elapsed <= 4 && delta.current < 0.2 && delta.current > -0.2 \
//	      do status.self = status.self | 1 goto Spike
//	  state Spike
//	    when status.self == 0 goto Wait
//
// Expressions read: `in.<channel>` (sensor value), `delta.<channel>`
// (change since previous tick), `elapsed` (ticks in current state),
// `local.<n>`, `status.<machine>` or `status.self`. Operators:
// `&& || ! < > <= >= == != + - * |` and parentheses. Actions assign an
// expression to `local.<n>`, `status.<machine>`, or `status.self`,
// separated by `;`. The first state declared is the initial state.

// Env resolves channel and machine names during assembly.
type Env struct {
	// Channels maps sensor channel names to indices.
	Channels map[string]int
	// Machines maps machine names to system indices.
	Machines map[string]int
}

// AssembleSystem compiles all machines in source against the given channel
// list. Machine indices are assigned in declaration order, so forward
// status.<name> references work.
func AssembleSystem(source string, channels []string) ([]*Program, error) {
	env := Env{Channels: map[string]int{}, Machines: map[string]int{}}
	for i, c := range channels {
		if _, dup := env.Channels[c]; dup {
			return nil, fmt.Errorf("sbfr: duplicate channel %q", c)
		}
		env.Channels[c] = i
	}
	decls, err := splitMachines(source)
	if err != nil {
		return nil, err
	}
	for i, d := range decls {
		if _, dup := env.Machines[d.name]; dup {
			return nil, fmt.Errorf("sbfr: duplicate machine %q", d.name)
		}
		env.Machines[d.name] = i
	}
	progs := make([]*Program, 0, len(decls))
	for i, d := range decls {
		p, err := compileMachine(d, env)
		if err != nil {
			return nil, err
		}
		p.SelfIndex = i
		progs = append(progs, p)
	}
	return progs, nil
}

type machineDecl struct {
	name  string
	lines []srcLine
}

type srcLine struct {
	num  int
	text string
}

// splitMachines separates the source into per-machine line groups, handling
// comments and backslash line continuation.
func splitMachines(source string) ([]machineDecl, error) {
	var decls []machineDecl
	var cur *machineDecl
	raw := strings.Split(source, "\n")
	for i := 0; i < len(raw); i++ {
		lineNum := i + 1
		text := raw[i]
		// Line continuation.
		for strings.HasSuffix(strings.TrimRight(text, " \t"), "\\") && i+1 < len(raw) {
			text = strings.TrimSuffix(strings.TrimRight(text, " \t"), "\\")
			i++
			text += " " + raw[i]
		}
		if j := strings.Index(text, "#"); j >= 0 {
			text = text[:j]
		}
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		if fields[0] == "machine" {
			if len(fields) != 2 {
				return nil, fmt.Errorf("sbfr: line %d: machine needs exactly one name", lineNum)
			}
			decls = append(decls, machineDecl{name: fields[1]})
			cur = &decls[len(decls)-1]
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("sbfr: line %d: statement outside machine block", lineNum)
		}
		cur.lines = append(cur.lines, srcLine{num: lineNum, text: text})
	}
	if len(decls) == 0 {
		return nil, fmt.Errorf("sbfr: no machines in source")
	}
	return decls, nil
}

type transDecl struct {
	line    int
	cond    string
	actions []string
	target  string
}

type stateDecl struct {
	name  string
	trans []transDecl
}

func compileMachine(d machineDecl, env Env) (*Program, error) {
	numLocals := 0
	var states []stateDecl
	for _, ln := range d.lines {
		fields := strings.Fields(ln.text)
		switch fields[0] {
		case "locals":
			if len(fields) != 2 {
				return nil, fmt.Errorf("sbfr: line %d: locals needs a count", ln.num)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 || n > 255 {
				return nil, fmt.Errorf("sbfr: line %d: bad locals count %q", ln.num, fields[1])
			}
			numLocals = n
		case "state":
			if len(fields) != 2 {
				return nil, fmt.Errorf("sbfr: line %d: state needs exactly one name", ln.num)
			}
			name := strings.TrimSuffix(fields[1], ":")
			for _, s := range states {
				if s.name == name {
					return nil, fmt.Errorf("sbfr: line %d: duplicate state %q", ln.num, name)
				}
			}
			states = append(states, stateDecl{name: name})
		case "when":
			if len(states) == 0 {
				return nil, fmt.Errorf("sbfr: line %d: transition outside state", ln.num)
			}
			td, err := parseTransition(ln)
			if err != nil {
				return nil, err
			}
			st := &states[len(states)-1]
			st.trans = append(st.trans, td)
		default:
			return nil, fmt.Errorf("sbfr: line %d: unknown statement %q", ln.num, fields[0])
		}
	}
	if len(states) == 0 {
		return nil, fmt.Errorf("sbfr: machine %q has no states", d.name)
	}
	if len(states) > 255 {
		return nil, fmt.Errorf("sbfr: machine %q has too many states", d.name)
	}
	stateIdx := map[string]int{}
	names := make([]string, len(states))
	for i, s := range states {
		stateIdx[s.name] = i
		names[i] = s.name
	}

	code := []byte{byte(numLocals), byte(len(states))}
	for _, s := range states {
		if len(s.trans) > 255 {
			return nil, fmt.Errorf("sbfr: state %q has too many transitions", s.name)
		}
		code = append(code, byte(len(s.trans)))
		for _, tr := range s.trans {
			target, ok := stateIdx[tr.target]
			if !ok {
				return nil, fmt.Errorf("sbfr: line %d: unknown target state %q", tr.line, tr.target)
			}
			if len(tr.actions) > 255 {
				return nil, fmt.Errorf("sbfr: line %d: too many actions", tr.line)
			}
			code = append(code, byte(target), byte(len(tr.actions)))
			condCode, err := compileExpr(tr.cond, env, numLocals)
			if err != nil {
				return nil, fmt.Errorf("sbfr: line %d: condition: %w", tr.line, err)
			}
			code = append(code, condCode...)
			for _, a := range tr.actions {
				actCode, err := compileAction(a, env, numLocals)
				if err != nil {
					return nil, fmt.Errorf("sbfr: line %d: action %q: %w", tr.line, a, err)
				}
				code = append(code, actCode...)
			}
		}
	}
	return &Program{Name: d.name, StateNames: names, Code: code}, nil
}

// parseTransition splits "when COND [do A; B] goto STATE".
func parseTransition(ln srcLine) (transDecl, error) {
	body := strings.TrimSpace(strings.TrimPrefix(ln.text, "when"))
	gi := strings.LastIndex(body, "goto ")
	if gi < 0 {
		return transDecl{}, fmt.Errorf("sbfr: line %d: transition missing goto", ln.num)
	}
	target := strings.TrimSpace(body[gi+len("goto "):])
	if target == "" || strings.ContainsAny(target, " \t") {
		return transDecl{}, fmt.Errorf("sbfr: line %d: bad goto target %q", ln.num, target)
	}
	head := strings.TrimSpace(body[:gi])
	td := transDecl{line: ln.num, target: target}
	if di := strings.Index(head, " do "); di >= 0 {
		td.cond = strings.TrimSpace(head[:di])
		for _, a := range strings.Split(head[di+4:], ";") {
			a = strings.TrimSpace(a)
			if a != "" {
				td.actions = append(td.actions, a)
			}
		}
	} else {
		td.cond = head
	}
	if td.cond == "" {
		return transDecl{}, fmt.Errorf("sbfr: line %d: empty condition", ln.num)
	}
	return td, nil
}

// compileAction compiles "target = expr" into action bytecode.
func compileAction(src string, env Env, numLocals int) ([]byte, error) {
	i := strings.Index(src, "=")
	if i < 0 {
		return nil, fmt.Errorf("action missing '='")
	}
	// Guard against == being mistaken for assignment.
	if i+1 < len(src) && src[i+1] == '=' {
		return nil, fmt.Errorf("action left side cannot contain ==")
	}
	lhs := strings.TrimSpace(src[:i])
	rhs := strings.TrimSpace(src[i+1:])
	var head []byte
	switch {
	case strings.HasPrefix(lhs, "local."):
		n, err := strconv.Atoi(lhs[len("local."):])
		if err != nil || n < 0 || n > 255 {
			return nil, fmt.Errorf("bad local target %q", lhs)
		}
		if n >= numLocals {
			return nil, fmt.Errorf("local %d exceeds declared locals %d", n, numLocals)
		}
		head = []byte{targetLocal, byte(n)}
	case lhs == "status.self":
		head = []byte{targetSelfStatus, 0}
	case strings.HasPrefix(lhs, "status."):
		name := lhs[len("status."):]
		idx, ok := env.Machines[name]
		if !ok {
			return nil, fmt.Errorf("unknown machine %q in status target", name)
		}
		head = []byte{targetStatus, byte(idx)}
	default:
		return nil, fmt.Errorf("bad action target %q", lhs)
	}
	expr, err := compileExpr(rhs, env, numLocals)
	if err != nil {
		return nil, err
	}
	return append(head, expr...), nil
}

// ---- expression compiler (recursive descent to postfix bytecode) ----

type exprParser struct {
	toks      []string
	pos       int
	env       Env
	numLocals int
	out       []byte
}

func compileExpr(src string, env Env, numLocals int) ([]byte, error) {
	toks, err := tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &exprParser{toks: toks, env: env, numLocals: numLocals}
	if err := p.orExpr(); err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("unexpected token %q", p.toks[p.pos])
	}
	return append(p.out, opEnd), nil
}

func tokenize(src string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case strings.ContainsRune("()", rune(c)):
			toks = append(toks, string(c))
			i++
		case c == '&' || c == '|':
			if i+1 < len(src) && src[i+1] == c {
				toks = append(toks, string(c)+string(c))
				i += 2
			} else if c == '|' {
				toks = append(toks, "|")
				i++
			} else {
				return nil, fmt.Errorf("stray '&'")
			}
		case c == '<' || c == '>' || c == '=' || c == '!':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, string(c)+"=")
				i += 2
			} else if c == '=' {
				return nil, fmt.Errorf("single '=' in expression (use ==)")
			} else {
				toks = append(toks, string(c))
				i++
			}
		case c == '+' || c == '*':
			toks = append(toks, string(c))
			i++
		case c == '-':
			toks = append(toks, "-")
			i++
		case c >= '0' && c <= '9' || c == '.':
			j := i
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.') {
				j++
			}
			toks = append(toks, src[i:j])
			i = j
		case isIdentChar(c):
			j := i
			for j < len(src) && (isIdentChar(src[j]) || src[j] == '.' || src[j] >= '0' && src[j] <= '9') {
				j++
			}
			toks = append(toks, src[i:j])
			i = j
		default:
			return nil, fmt.Errorf("unexpected character %q", string(c))
		}
	}
	return toks, nil
}

func isIdentChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func (p *exprParser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *exprParser) emit(ops ...byte) { p.out = append(p.out, ops...) }

func (p *exprParser) emitConst(v float64) {
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], math.Float32bits(float32(v)))
	p.emit(opConst, buf[0], buf[1], buf[2], buf[3])
}

func (p *exprParser) orExpr() error {
	if err := p.andExpr(); err != nil {
		return err
	}
	for p.peek() == "||" {
		p.pos++
		if err := p.andExpr(); err != nil {
			return err
		}
		p.emit(opOr)
	}
	return nil
}

func (p *exprParser) andExpr() error {
	if err := p.cmpExpr(); err != nil {
		return err
	}
	for p.peek() == "&&" {
		p.pos++
		if err := p.cmpExpr(); err != nil {
			return err
		}
		p.emit(opAnd)
	}
	return nil
}

var cmpOps = map[string]byte{">": opGT, "<": opLT, ">=": opGE, "<=": opLE, "==": opEQ, "!=": opNE}

func (p *exprParser) cmpExpr() error {
	if err := p.addExpr(); err != nil {
		return err
	}
	if op, ok := cmpOps[p.peek()]; ok {
		p.pos++
		if err := p.addExpr(); err != nil {
			return err
		}
		p.emit(op)
	}
	return nil
}

func (p *exprParser) addExpr() error {
	if err := p.mulExpr(); err != nil {
		return err
	}
	for {
		switch p.peek() {
		case "+":
			p.pos++
			if err := p.mulExpr(); err != nil {
				return err
			}
			p.emit(opAdd)
		case "-":
			p.pos++
			if err := p.mulExpr(); err != nil {
				return err
			}
			p.emit(opSub)
		case "|":
			p.pos++
			if err := p.mulExpr(); err != nil {
				return err
			}
			p.emit(opBitOr)
		default:
			return nil
		}
	}
}

func (p *exprParser) mulExpr() error {
	if err := p.unary(); err != nil {
		return err
	}
	for p.peek() == "*" {
		p.pos++
		if err := p.unary(); err != nil {
			return err
		}
		p.emit(opMul)
	}
	return nil
}

func (p *exprParser) unary() error {
	switch p.peek() {
	case "!":
		p.pos++
		if err := p.unary(); err != nil {
			return err
		}
		p.emit(opNot)
		return nil
	case "-":
		p.pos++
		if err := p.unary(); err != nil {
			return err
		}
		p.emitConst(-1)
		p.emit(opMul)
		return nil
	}
	return p.primary()
}

func (p *exprParser) primary() error {
	tok := p.peek()
	if tok == "" {
		return fmt.Errorf("unexpected end of expression")
	}
	if tok == "(" {
		p.pos++
		if err := p.orExpr(); err != nil {
			return err
		}
		if p.peek() != ")" {
			return fmt.Errorf("missing ')'")
		}
		p.pos++
		return nil
	}
	if tok[0] >= '0' && tok[0] <= '9' || tok[0] == '.' {
		v, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return fmt.Errorf("bad number %q", tok)
		}
		p.pos++
		p.emitConst(v)
		return nil
	}
	p.pos++
	switch {
	case tok == "elapsed":
		p.emit(opElapsed)
	case tok == "status.self":
		p.emit(opSelfStatus)
	case strings.HasPrefix(tok, "in."):
		idx, ok := p.env.Channels[tok[3:]]
		if !ok {
			return fmt.Errorf("unknown channel %q", tok[3:])
		}
		p.emit(opSensor, byte(idx))
	case strings.HasPrefix(tok, "delta."):
		idx, ok := p.env.Channels[tok[6:]]
		if !ok {
			return fmt.Errorf("unknown channel %q", tok[6:])
		}
		p.emit(opDelta, byte(idx))
	case strings.HasPrefix(tok, "local."):
		n, err := strconv.Atoi(tok[6:])
		if err != nil || n < 0 || n > 255 {
			return fmt.Errorf("bad local reference %q", tok)
		}
		if n >= p.numLocals {
			return fmt.Errorf("local %d exceeds declared locals %d", n, p.numLocals)
		}
		p.emit(opLocal, byte(n))
	case strings.HasPrefix(tok, "status."):
		name := tok[7:]
		idx, ok := p.env.Machines[name]
		if !ok {
			return fmt.Errorf("unknown machine %q", name)
		}
		p.emit(opStatus, byte(idx))
	default:
		return fmt.Errorf("unknown identifier %q", tok)
	}
	return nil
}
