package sbfr

import (
	"testing"

	"repro/internal/ema"
)

// DESIGN.md ablation: bytecode interpretation vs native Go closures. The
// paper chose an interpreter because new machines "may be downloaded into
// the smart sensor" at run time (§6.3) and because bytecode is what fits in
// 32 KB; the ablation quantifies what that flexibility costs in cycle time
// against a hand-compiled native implementation of the same two machines.

// nativeEMA is the Figure 3 system hand-written as Go code: the upper bound
// on interpreter performance.
type nativeEMA struct {
	// Spike machine.
	spikeState  int // 0 Wait, 1 PossibleSpike1, 2 PossibleSpike2, 3 Spike
	spikeElaps  float64
	spikeStatus float64
	// Stiction machine.
	stictState  int // 0 Wait, 1 Stiction
	stictStatus float64
	count       float64 // local.0
	window      float64 // local.1
	prevCur     float64
	prevCPOS    float64
	started     bool
}

func (n *nativeEMA) cycle(current, cpos float64) {
	dCur, dPOS := 0.0, 0.0
	if n.started {
		dCur = current - n.prevCur
		dPOS = cpos - n.prevCPOS
	}
	n.prevCur, n.prevCPOS = current, cpos
	n.started = true

	// Spike machine (first matching transition fires).
	fired := false
	switch n.spikeState {
	case 0:
		if dCur > 0.5 {
			n.spikeState, fired = 1, true
		}
	case 1:
		switch {
		case dCur < -0.5 && n.spikeElaps <= 4:
			n.spikeStatus = float64(int64(n.spikeStatus) | 1)
			n.spikeState, fired = 3, true
		case dCur > 0.5 && n.spikeElaps <= 4:
			n.spikeState, fired = 2, true
		case n.spikeElaps > 4:
			n.spikeState, fired = 0, true
		}
	case 2:
		switch {
		case dCur < -0.5 && n.spikeElaps <= 4:
			n.spikeStatus = float64(int64(n.spikeStatus) | 1)
			n.spikeState, fired = 3, true
		case n.spikeElaps > 4:
			n.spikeState, fired = 0, true
		}
	case 3:
		if n.spikeStatus == 0 {
			n.spikeState, fired = 0, true
		}
	}
	if fired {
		n.spikeElaps = 0
	} else {
		n.spikeElaps++
	}

	// Stiction machine.
	switch n.stictState {
	case 0:
		switch {
		case dPOS != 0:
			n.window = 8
		case n.spikeStatus != 0 && n.window > 0:
			n.spikeStatus = 0
			n.window--
		case n.spikeStatus != 0:
			n.spikeStatus = 0
			n.count++
		case n.count > 4:
			n.stictStatus = float64(int64(n.stictStatus) | 1)
			n.stictState = 1
		case n.window > 0:
			n.window--
		}
	case 1:
		if n.stictStatus == 0 {
			n.count = 0
			n.stictState = 0
		}
	}
}

// TestNativeMatchesBytecode drives both implementations over identical
// stimulus and checks they flag stiction on the same runs.
func TestNativeMatchesBytecode(t *testing.T) {
	scenarios := []struct {
		name   string
		events []ema.Event
	}{
		{"healthy", ema.HealthyScenario(10, 12, 20)},
		{"stiction", ema.StictionScenario(10, 6, 20)},
		{"mixed", ema.MergeEvents(ema.HealthyScenario(10, 5, 50), ema.StictionScenario(30, 6, 50))},
	}
	for _, sc := range scenarios {
		sys, err := NewEMASystem()
		if err != nil {
			t.Fatal(err)
		}
		nat := &nativeEMA{}
		sim, err := ema.NewSimulator(ema.DefaultConfig(), sc.events)
		if err != nil {
			t.Fatal(err)
		}
		vmFlag, natFlag := false, false
		for i := 0; i < 400; i++ {
			s := sim.Step()
			if err := sys.Cycle([]float64{s.Current, s.CPOS}); err != nil {
				t.Fatal(err)
			}
			nat.cycle(s.Current, s.CPOS)
			if st, _ := sys.Status("Stiction"); st != 0 {
				vmFlag = true
			}
			if nat.stictStatus != 0 {
				natFlag = true
			}
		}
		if vmFlag != natFlag {
			t.Errorf("%s: vm=%v native=%v", sc.name, vmFlag, natFlag)
		}
		vmCount, _ := sys.LocalOf("Stiction", 0)
		if vmCount != nat.count {
			t.Errorf("%s: vm count %g native %g", sc.name, vmCount, nat.count)
		}
	}
}

func BenchmarkAblationBytecodeVM(b *testing.B) {
	sys, err := NewEMASystem()
	if err != nil {
		b.Fatal(err)
	}
	sim, err := ema.NewSimulator(ema.DefaultConfig(), ema.StictionScenario(5, 100, 7))
	if err != nil {
		b.Fatal(err)
	}
	samples := sim.Run(4096)
	buf := make([]float64, 2)
	in := make([]float64, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := samples[i%len(samples)]
		in[0], in[1] = s.Current, s.CPOS
		if err := sys.CycleInto(in, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationNativeClosures(b *testing.B) {
	nat := &nativeEMA{}
	sim, err := ema.NewSimulator(ema.DefaultConfig(), ema.StictionScenario(5, 100, 7))
	if err != nil {
		b.Fatal(err)
	}
	samples := sim.Run(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := samples[i%len(samples)]
		nat.cycle(s.Current, s.CPOS)
	}
}
