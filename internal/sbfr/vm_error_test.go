package sbfr

import (
	"strings"
	"testing"
)

// These tests exercise the defensive paths of the bytecode machinery:
// corrupted programs must be rejected at load or fail cleanly at run time,
// never panic — the DC downloads machines into long-running processes.

func validProgram(t *testing.T) *Program {
	t.Helper()
	progs, err := AssembleSystem(counterSource, []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	return progs[0]
}

func corrupt(p *Program, mutate func(code []byte)) *Program {
	code := append([]byte(nil), p.Code...)
	mutate(code)
	return &Program{Name: p.Name, StateNames: p.StateNames, Code: code, SelfIndex: p.SelfIndex}
}

func TestNewRuntimeRejectsCorruptBytecode(t *testing.T) {
	good := validProgram(t)
	if _, err := newRuntime(good); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
	cases := []struct {
		name string
		prog *Program
	}{
		{"empty", &Program{Name: "e", StateNames: []string{"s"}, Code: nil}},
		{"truncated", corrupt(good, func(c []byte) {})},
	}
	// Truncated: chop the code.
	cases[1].prog.Code = cases[1].prog.Code[:len(cases[1].prog.Code)/2]
	for _, c := range cases {
		if _, err := newRuntime(c.prog); err == nil {
			t.Errorf("%s: corrupt program accepted", c.name)
		}
	}
	// Trailing garbage.
	trailing := corrupt(good, func([]byte) {})
	trailing.Code = append(trailing.Code, 0x00, 0x00)
	if _, err := newRuntime(trailing); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestRuntimeErrorsSurfaceThroughCycle(t *testing.T) {
	// A machine whose condition reads a sensor index that the system does
	// not provide: assemble against a 2-channel env, run with 1 channel.
	progs, err := AssembleSystem(`
machine M
  state S
    when in.y > 0 goto S
`, []string{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem([]string{"x"}, progs)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Cycle([]float64{1}); err == nil {
		t.Fatal("out-of-range sensor read should error, not panic")
	}
}

func TestDisassembleCorruptProgram(t *testing.T) {
	good := validProgram(t)
	// Unknown opcode in the condition stream.
	bad := corrupt(good, func(c []byte) {
		// First state header is at offset 2; transition header is 2 bytes;
		// the condition expression starts at offset 5.
		c[5] = 0xEE
	})
	if _, err := Disassemble(bad, nil); err == nil {
		t.Error("unknown opcode disassembled")
	}
	// Nil env prints raw indices and still works on valid programs.
	text, err := Disassemble(good, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "machine Counter") {
		t.Errorf("disassembly: %s", text)
	}
}

func TestCycleIntoBufferValidation(t *testing.T) {
	sys, err := NewSystemFromSource(counterSource, []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.CycleInto([]float64{1}, make([]float64, 2)); err == nil {
		t.Error("mismatched delta buffer accepted")
	}
	if err := sys.CycleInto([]float64{1, 2}, make([]float64, 2)); err == nil {
		t.Error("mismatched input accepted")
	}
	// Valid call works and matches Cycle semantics.
	buf := make([]float64, 1)
	for _, v := range []float64{1, 1, 1, 0} {
		if err := sys.CycleInto([]float64{v}, buf); err != nil {
			t.Fatal(err)
		}
	}
	if st, _ := sys.Status("Counter"); st != 1 {
		t.Errorf("CycleInto semantics diverged: status %g", st)
	}
}

func TestStackDepthGuard(t *testing.T) {
	// Build an expression deeper than the VM stack: 40 nested additions of
	// constants pushes >32 values before reducing only with left-assoc...
	// left-associative addition reduces eagerly, so force depth with
	// parentheses nesting on the right.
	expr := "1"
	for i := 0; i < maxStack+4; i++ {
		expr = "1 + (" + expr + ")"
	}
	src := "machine M\n  state S\n    when " + expr + " > 0 goto S\n"
	progs, err := AssembleSystem(src, []string{"x"})
	if err != nil {
		t.Fatal(err) // assembly is fine; the VM guards at run time
	}
	sys, err := NewSystem([]string{"x"}, progs)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Cycle([]float64{0}); err == nil {
		t.Fatal("stack overflow not caught")
	} else if !strings.Contains(err.Error(), "stack") {
		t.Fatalf("unexpected error: %v", err)
	}
}
