package sbfr

import "testing"

// TestCycleIntoMatchesCycle checks the buffer-reusing tick against the
// allocating one on the same input sequence.
func TestCycleIntoMatchesCycle(t *testing.T) {
	mk := func() *System {
		sys, err := NewSystemFromSource(counterSource, []string{"x"})
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	a, b := mk(), mk()
	deltas := make([]float64, 1)
	for i, v := range []float64{1, 1, 1, 0, 0, 1} {
		if err := a.Cycle([]float64{v}); err != nil {
			t.Fatalf("tick %d: Cycle: %v", i, err)
		}
		if err := b.CycleInto([]float64{v}, deltas); err != nil {
			t.Fatalf("tick %d: CycleInto: %v", i, err)
		}
		sa, _ := a.Status("Counter")
		sb, _ := b.Status("Counter")
		if sa != sb {
			t.Fatalf("tick %d: status %v != %v", i, sb, sa)
		}
	}
}

// BenchmarkCycleEMASystemAllocating is the before side of the PR 9 zero-alloc
// sweep: the same tick as BenchmarkCycleEMASystem through the allocating
// Cycle entry point.
func BenchmarkCycleEMASystemAllocating(b *testing.B) {
	sys, err := NewEMASystem()
	if err != nil {
		b.Fatal(err)
	}
	in := []float64{1.0, 0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in[0] = 1.0 + float64(i%3)*0.01
		if err := sys.Cycle(in); err != nil {
			b.Fatal(err)
		}
	}
}

// TestCycleIntoZeroAlloc is the hot-path budget for the rule-machine tick on
// the embedded cycle: zero heap allocations per CycleInto.
func TestCycleIntoZeroAlloc(t *testing.T) {
	sys, err := NewSystemFromSource(counterSource, []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]float64, 1)
	deltas := make([]float64, 1)
	allocs := testing.AllocsPerRun(200, func() {
		inputs[0] = 1 - inputs[0]
		if err := sys.CycleInto(inputs, deltas); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("CycleInto allocates %.1f times per tick, want 0", allocs)
	}
}
