package sbfr

import (
	"testing"

	"repro/internal/ema"
)

// runEMA drives the Figure 3 system over a simulated EMA scenario and
// returns whether stiction was flagged and the final spike count.
func runEMA(t *testing.T, events []ema.Event, ticks int) (bool, float64) {
	t.Helper()
	sys, err := NewEMASystem()
	if err != nil {
		t.Fatal(err)
	}
	sim, err := ema.NewSimulator(ema.DefaultConfig(), events)
	if err != nil {
		t.Fatal(err)
	}
	flagged := false
	for i := 0; i < ticks; i++ {
		s := sim.Step()
		if err := sys.Cycle([]float64{s.Current, s.CPOS}); err != nil {
			t.Fatal(err)
		}
		if st, _ := sys.Status("Stiction"); st != 0 {
			flagged = true
		}
	}
	count, _ := sys.LocalOf("Stiction", 0)
	return flagged, count
}

// TestFigure3StictionDetection reproduces the E3 experiment inline: more
// than four uncommanded spikes flag stiction.
func TestFigure3StictionDetection(t *testing.T) {
	events := ema.StictionScenario(10, 6, 20)
	flagged, _ := runEMA(t, events, 200)
	if !flagged {
		t.Fatal("six uncommanded spikes should flag stiction")
	}
}

func TestFigure3HealthyCommandsNotFlagged(t *testing.T) {
	// Many commanded moves: spikes are all associated with CPOS changes, so
	// no stiction must be flagged.
	events := ema.HealthyScenario(10, 12, 20)
	flagged, count := runEMA(t, events, 300)
	if flagged {
		t.Fatalf("commanded moves flagged as stiction (count=%g)", count)
	}
	if count > 0 {
		t.Errorf("commanded spikes were counted: %g", count)
	}
}

func TestFigure3FewSpikesBelowThreshold(t *testing.T) {
	// Exactly four uncommanded spikes: the paper's threshold is "greater
	// than 4", so four must not flag.
	events := ema.StictionScenario(10, 4, 20)
	flagged, count := runEMA(t, events, 200)
	if flagged {
		t.Fatal("four spikes must not flag (threshold is >4)")
	}
	if count != 4 {
		t.Errorf("counted %g spikes, want 4", count)
	}
}

func TestFigure3MixedWorkload(t *testing.T) {
	// Commanded moves interleaved with enough stiction spikes to flag.
	// Spikes are scheduled clear of the recent-command windows: a stiction
	// spike inside a command window is (correctly) attributed to the move.
	events := ema.MergeEvents(
		ema.HealthyScenario(10, 5, 50),
		ema.StictionScenario(30, 6, 50),
	)
	flagged, _ := runEMA(t, events, 400)
	if !flagged {
		t.Fatal("mixed workload with 6 stiction spikes should flag")
	}
}

func TestFigure3ResetHandshake(t *testing.T) {
	// After the PDME acknowledges (resets status), the machine returns to
	// Wait with a cleared count and can flag again.
	sys, err := NewEMASystem()
	if err != nil {
		t.Fatal(err)
	}
	drive := func(events []ema.Event, ticks int, seed int64) bool {
		cfg := ema.DefaultConfig()
		cfg.Seed = seed
		sim, err := ema.NewSimulator(cfg, events)
		if err != nil {
			t.Fatal(err)
		}
		flagged := false
		for i := 0; i < ticks; i++ {
			s := sim.Step()
			if err := sys.Cycle([]float64{s.Current, s.CPOS}); err != nil {
				t.Fatal(err)
			}
			if st, _ := sys.Status("Stiction"); st != 0 {
				flagged = true
			}
		}
		return flagged
	}
	if !drive(ema.StictionScenario(10, 6, 20), 200, 1) {
		t.Fatal("first episode should flag")
	}
	// Acknowledge.
	if err := sys.SetStatus("Stiction", 0); err != nil {
		t.Fatal(err)
	}
	if err := sys.Cycle([]float64{1, 0}); err != nil {
		t.Fatal(err)
	}
	if st, _ := sys.StateOf("Stiction"); st != "Wait" {
		t.Fatalf("state after ack: %s", st)
	}
	if c, _ := sys.LocalOf("Stiction", 0); c != 0 {
		t.Fatalf("count after ack: %g", c)
	}
	if !drive(ema.StictionScenario(5, 6, 20), 200, 2) {
		t.Fatal("second episode should flag again")
	}
}
