package sbfr

// Figure 3 of the paper: the two-machine system "used to predict a seize-up
// failure mode in an electro-mechanical actuator (EMA)". Machine 0 (Spike)
// "recognizes spikes in the drive motor current"; Machine 1 (Stiction)
// "counts the spikes that are not associated with a commanded position
// change (CPOS). When the count is greater than 4, a stiction condition is
// flagged, and higher level software (e.g., the PDME) can conclude that a
// seize-up failure is imminent."
//
// The reconstruction below preserves the published structure: the spike
// machine has four states (Wait, PossibleSpike1, PossibleSpike2, Spike) and
// seven transitions with ΔT time constraints so it is "relatively noise
// free"; the stiction machine has two states (Wait, Stiction). Uncommanded
// spikes are distinguished from commanded ones with a recent-command window
// (local.1), since a commanded move's current spike trails the CPOS change
// by a few ticks.
//
// EMAChannels are the sensor channels the system consumes: drive motor
// current and commanded position.
var EMAChannels = []string{"current", "cpos"}

// EMASource is the SBFR assembly for the Figure 3 system. Thresholds assume
// a normalized current channel where the quiescent level is ~1.0 and spikes
// rise by >0.5 within a tick.
const EMASource = `
# Figure 3, Machine 0: current spike recognizer.
machine Spike
  state Wait
    when delta.current > 0.5 goto PossibleSpike1
  state PossibleSpike1
    when delta.current < -0.5 && elapsed <= 4 do status.self = status.self | 1 goto Spike
    when delta.current > 0.5 && elapsed <= 4 goto PossibleSpike2
    when elapsed > 4 goto Wait
  state PossibleSpike2
    when delta.current < -0.5 && elapsed <= 4 do status.self = status.self | 1 goto Spike
    when elapsed > 4 goto Wait
  state Spike
    when status.self == 0 goto Wait

# Figure 3, Machine 1: stiction counter.
machine Stiction
  locals 2
  state Wait
    when delta.cpos != 0 do local.1 = 8 goto Wait
    when status.Spike != 0 && local.1 > 0 do status.Spike = 0; local.1 = local.1 - 1 goto Wait
    when status.Spike != 0 do status.Spike = 0; local.0 = local.0 + 1 goto Wait
    when local.0 > 4 do status.self = status.self | 1 goto Stiction
    when local.1 > 0 do local.1 = local.1 - 1 goto Wait
  state Stiction
    when status.self == 0 do local.0 = 0 goto Wait
`

// NewEMASystem assembles the Figure 3 system.
func NewEMASystem() (*System, error) {
	return NewSystemFromSource(EMASource, EMAChannels)
}
