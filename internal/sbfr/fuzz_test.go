package sbfr

import "testing"

// FuzzAssemble feeds arbitrary source text to the SBFR assembler. The
// assembler must never panic — only return an error — and anything it
// accepts must yield programs that load into a system, disassemble
// cleanly (the emitted bytecode is structurally well formed), and run
// several cycles without a VM fault.
func FuzzAssemble(f *testing.F) {
	channels := []string{"current", "temp"}
	// Seeds: the package doc example plus the shapes the test suite uses.
	f.Add(`
machine Spike
  locals 1
  state Wait
    when delta.current > 0.5 goto PossibleSpike1
  state PossibleSpike1
    when delta.current < -0.5 && elapsed <= 4 goto PossibleSpike2
    when elapsed > 4 goto Wait
  state PossibleSpike2
    when elapsed <= 4 && delta.current < 0.2 && delta.current > -0.2 \
      do status.self = status.self | 1 goto Spike
  state Spike
    when status.self == 0 goto Wait
`)
	f.Add(`
machine Counter
  locals 1
  state Run
    when in.current > 0.5 do local.0 = local.0 + 1 goto Run
    when local.0 > 2 do status.self = 1 goto Done
  state Done
    when status.self == 0 do local.0 = 0 goto Run
`)
	f.Add(`
machine Producer
  state Idle
    when in.temp >= 1 do status.Consumer = status.Consumer + 1 goto Idle
machine Consumer
  state Watch
    when status.self > 2 do status.self = 0 goto Watch
`)
	f.Add("machine M\n  state S\n")
	f.Add("# just a comment\n")
	f.Add("machine M\n  locals 99\n  state S\n    when local.98 != 0 goto S\n")

	f.Fuzz(func(t *testing.T, source string) {
		progs, err := AssembleSystem(source, channels)
		if err != nil {
			return // rejected source: any error is acceptable, panics are not
		}
		sys, err := NewSystem(channels, progs)
		if err != nil {
			t.Fatalf("assembled programs rejected by the loader: %v", err)
		}
		env := &Env{Channels: map[string]int{"current": 0, "temp": 1}}
		for i, p := range progs {
			if _, err := Disassemble(p, env); err != nil {
				t.Fatalf("assembled program %d does not disassemble: %v", i, err)
			}
		}
		inputs := [][]float64{{0, 0}, {1, 1}, {-1, 2}, {0.6, 0.4}, {0, 0}}
		for _, in := range inputs {
			if err := sys.Cycle(in); err != nil {
				t.Fatalf("assembled system faulted on cycle: %v", err)
			}
		}
	})
}
