// Package fusion implements MPROS Knowledge Fusion (§5): "the coordination
// of individual data reports from a variety of sensors ... higher level
// than pure 'data fusion'".
//
// Diagnostic fusion (§5.3) combines incoming condition reports with
// Dempster-Shafer belief maintenance, "facilitated by use of a heuristic
// that groups similar failures into logical groups": a plain single-frame
// Dempster-Shafer treatment "assumes that any one failure precludes any
// other failures. However this is not the case in CBM, there can, in fact,
// be several failures at one time". Failures within a group "might be
// mistaken for one another, so they are logically related and should share
// probabilities"; failures in different groups stay independent, each group
// carrying its own frame of discernment and its own unknown mass.
//
// Prognostic fusion (§5.4) combines (time, probability) vectors by "taking
// the most conservative estimate at any given time period, and
// interpolating a smooth curve from point to point".
package fusion

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/dempster"
)

// Discounter supplies per-source reliability factors for Shafer discounting.
// Reliability returns α ∈ [0,1] for evidence from the named source whose
// latest report carries the given timestamp: 1 means fully reliable
// (combine as-is), 0 means worthless (evidence collapses to total
// ignorance). The health registry implements this from report age and DC
// liveness state.
type Discounter interface {
	Reliability(source string, lastReport time.Time) float64
}

// Groups maps a logical failure group name to its member condition names.
type Groups map[string][]string

// otherHypothesis is a reserved frame member added to every group so the
// frame of discernment is never exhausted by the known failures: even a
// single-condition group keeps a representable "some other failure"
// alternative, and with it a meaningful unknown mass. Without it a
// one-condition group's Θ would equal the condition itself and its belief
// would be degenerately 1 before any report arrived.
const otherHypothesis = "__other__"

// Validate checks that groups are non-empty and no condition appears twice.
func (g Groups) Validate() error {
	if len(g) == 0 {
		return fmt.Errorf("fusion: no failure groups")
	}
	names := make([]string, 0, len(g))
	//lint:allow maporder keys are sorted before validation, so error selection is deterministic
	for name := range g {
		names = append(names, name)
	}
	sort.Strings(names)
	seen := map[string]string{}
	for _, name := range names {
		conds := g[name]
		if len(conds) == 0 {
			return fmt.Errorf("fusion: group %q is empty", name)
		}
		if len(conds) >= dempster.MaxHypotheses-1 {
			return fmt.Errorf("fusion: group %q too large", name)
		}
		for _, c := range conds {
			if c == otherHypothesis {
				return fmt.Errorf("fusion: condition name %q is reserved", c)
			}
			if prev, dup := seen[c]; dup {
				return fmt.Errorf("fusion: condition %q in both %q and %q", c, prev, name)
			}
			seen[c] = name
		}
	}
	return nil
}

// ConditionBelief is one fused conclusion for the prioritized maintenance
// list.
type ConditionBelief struct {
	// Condition is the machine condition name.
	Condition string
	// Group is the logical failure group it belongs to.
	Group string
	// Belief is the fused Dempster-Shafer belief in this condition.
	Belief float64
	// Plausibility is the fused upper bound.
	Plausibility float64
	// Reports is how many reports have mentioned this condition.
	Reports int
	// Reliability is the best discount factor among the sources asserting
	// this condition (1 when discounting is disabled or all sources fresh).
	Reliability float64
	// Degraded marks conclusions whose every supporting source is being
	// discounted for staleness or ill health — the belief shown is weaker
	// than the evidence originally asserted.
	Degraded bool
}

// sourceEvidence is the running evidence one knowledge source has
// contributed to a (component, group) pair. Keeping sources separate (and
// combining at query time) lets each source's whole contribution be
// discounted by its current reliability: Dempster combination is
// commutative and associative, so splitting per source changes nothing
// when every α is 1.
type sourceEvidence struct {
	mass *dempster.Mass
	// lastReport is the latest sensed-at timestamp this source asserted
	// (zero for untimestamped reports — never discounted).
	lastReport time.Time
	// conditions is the set of conditions this source has reported.
	conditions map[string]struct{}
}

// groupState is the running belief state of one (component, group) pair.
type groupState struct {
	frame *dempster.Frame
	// sources holds per-knowledge-source evidence, keyed by source id
	// ("" for reports with no source attribution).
	sources map[string]*sourceEvidence
	// reports counts per-condition report arrivals.
	reports map[string]int
}

// DiagnosticFuser maintains fused beliefs per component, partitioned into
// logical failure groups. Safe for concurrent use.
type DiagnosticFuser struct {
	mu sync.RWMutex
	//lint:allow snapshotparity failure-group topology is construction config; Restore refuses snapshots that disagree with it
	groups Groups
	//lint:allow snapshotparity derived from groups at construction; rebuilding it from a snapshot would desync it from groups
	groupOf map[string]string
	states  map[string]map[string]*groupState // component -> group -> state
	//lint:allow snapshotparity fixed clamp constant set at construction, not accumulated state
	maxBelief   float64
	totalFusedN int
	//lint:allow snapshotparity runtime wiring to the health registry, re-injected by SetDiscounter after restore
	discounter Discounter
}

// SetDiscounter installs a reliability source for staleness discounting.
// Nil (the default) disables discounting: all evidence combines at full
// strength. Evidence from the anonymous source "" is never discounted.
func (df *DiagnosticFuser) SetDiscounter(d Discounter) {
	df.mu.Lock()
	defer df.mu.Unlock()
	df.discounter = d
}

// NewDiagnosticFuser builds a fuser over the given failure groups. Incoming
// report beliefs are clamped to 0.999 so two certain-but-contradictory
// sources discount each other instead of producing total conflict.
func NewDiagnosticFuser(groups Groups) (*DiagnosticFuser, error) {
	if err := groups.Validate(); err != nil {
		return nil, err
	}
	df := &DiagnosticFuser{
		groups:    groups,
		groupOf:   make(map[string]string),
		states:    make(map[string]map[string]*groupState),
		maxBelief: 0.999,
	}
	//lint:allow maporder builds a reverse-lookup map from validated-unique conditions; insertion order cannot affect contents
	for name, conds := range groups {
		for _, c := range conds {
			df.groupOf[c] = name
		}
	}
	return df, nil
}

// GroupOf returns the logical group of a condition.
func (df *DiagnosticFuser) GroupOf(condition string) (string, error) {
	g, ok := df.groupOf[condition]
	if !ok {
		return "", fmt.Errorf("fusion: condition %q not in any failure group", condition)
	}
	return g, nil
}

// newGroupFrame builds a group's frame of discernment: its configured
// conditions plus the reserved unknown hypothesis.
func newGroupFrame(groups Groups, group string) (*dempster.Frame, error) {
	return dempster.NewFrame(append(append([]string(nil), groups[group]...), otherHypothesis)...)
}

func (df *DiagnosticFuser) state(component, group string) (*groupState, error) {
	byGroup, ok := df.states[component]
	if !ok {
		byGroup = make(map[string]*groupState)
		df.states[component] = byGroup
	}
	st, ok := byGroup[group]
	if !ok {
		frame, err := newGroupFrame(df.groups, group)
		if err != nil {
			return nil, err
		}
		st = &groupState{
			frame:   frame,
			sources: make(map[string]*sourceEvidence),
			reports: make(map[string]int),
		}
		byGroup[group] = st
	}
	return st, nil
}

// AddReport fuses one diagnostic report from an anonymous source — see
// AddReportFrom. Anonymous evidence is never discounted.
func (df *DiagnosticFuser) AddReport(component, condition string, belief float64) (float64, error) {
	return df.AddReportFrom(component, condition, "", time.Time{}, belief)
}

// AddReportFrom fuses one diagnostic report: the named knowledge source
// asserting the condition on the component with the given belief, sensed at
// the given time. It returns the updated fused belief in that condition.
// Per §5.6, the update also reweights every other failure in the
// condition's logical group and the group's unknown mass — all readable
// afterwards via Belief/Unknown/Ranked. When a Discounter is installed the
// source's accumulated evidence is Shafer-discounted by its current
// reliability on every read, so beliefs decay toward ignorance as the
// source goes stale and recover when fresh reports resume.
func (df *DiagnosticFuser) AddReportFrom(component, condition, source string, at time.Time, belief float64) (float64, error) {
	if component == "" {
		return 0, fmt.Errorf("fusion: empty component")
	}
	if belief < 0 || belief > 1 {
		return 0, fmt.Errorf("fusion: belief %g outside [0,1]", belief)
	}
	group, err := df.GroupOf(condition)
	if err != nil {
		return 0, err
	}
	if belief > df.maxBelief {
		belief = df.maxBelief
	}
	df.mu.Lock()
	defer df.mu.Unlock()
	st, err := df.state(component, group)
	if err != nil {
		return 0, err
	}
	hyp, err := st.frame.Hypothesis(condition)
	if err != nil {
		return 0, err
	}
	evidence, err := dempster.SimpleSupport(st.frame, hyp, belief)
	if err != nil {
		return 0, err
	}
	src, ok := st.sources[source]
	if !ok {
		src = &sourceEvidence{
			mass:       dempster.VacuousMass(st.frame),
			conditions: make(map[string]struct{}),
		}
		st.sources[source] = src
	}
	combined, _, err := dempster.Combine(src.mass, evidence)
	if err != nil {
		return 0, err
	}
	src.mass = combined
	src.conditions[condition] = struct{}{}
	if at.After(src.lastReport) {
		src.lastReport = at
	}
	st.reports[condition]++
	df.totalFusedN++
	fused, err := df.fusedLocked(st)
	if err != nil {
		return 0, err
	}
	return fused.Belief(hyp), nil
}

// sourceAlpha returns the discount factor currently applied to a source's
// evidence. Callers hold df.mu (read or write).
func (df *DiagnosticFuser) sourceAlpha(name string, src *sourceEvidence) float64 {
	if df.discounter == nil || name == "" || src.lastReport.IsZero() {
		return 1
	}
	return df.discounter.Reliability(name, src.lastReport)
}

// fusedLocked combines every source's discounted evidence for one group
// state. Sources combine in sorted-id order so the result is deterministic
// regardless of arrival interleaving across sources. Callers hold df.mu.
func (df *DiagnosticFuser) fusedLocked(st *groupState) (*dempster.Mass, error) {
	names := make([]string, 0, len(st.sources))
	//lint:allow maporder source ids are sorted before combination, so the fused result is order-independent
	for name := range st.sources {
		names = append(names, name)
	}
	sort.Strings(names)
	out := dempster.VacuousMass(st.frame)
	for _, name := range names {
		src := st.sources[name]
		m := src.mass
		if alpha := df.sourceAlpha(name, src); alpha < 1 {
			dm, err := dempster.Discount(m, alpha)
			if err != nil {
				return nil, err
			}
			m = dm
		}
		combined, _, err := dempster.Combine(out, m)
		if err != nil {
			return nil, err
		}
		out = combined
	}
	return out, nil
}

// Belief returns the fused belief in a condition on a component (0 when no
// reports have arrived).
func (df *DiagnosticFuser) Belief(component, condition string) (float64, error) {
	group, err := df.GroupOf(condition)
	if err != nil {
		return 0, err
	}
	df.mu.RLock()
	defer df.mu.RUnlock()
	byGroup := df.states[component]
	if byGroup == nil || byGroup[group] == nil {
		return 0, nil
	}
	st := byGroup[group]
	hyp, err := st.frame.Hypothesis(condition)
	if err != nil {
		return 0, err
	}
	fused, err := df.fusedLocked(st)
	if err != nil {
		return 0, err
	}
	return fused.Belief(hyp), nil
}

// Plausibility returns the fused plausibility of a condition.
func (df *DiagnosticFuser) Plausibility(component, condition string) (float64, error) {
	group, err := df.GroupOf(condition)
	if err != nil {
		return 0, err
	}
	df.mu.RLock()
	defer df.mu.RUnlock()
	byGroup := df.states[component]
	if byGroup == nil || byGroup[group] == nil {
		return 1, nil // vacuous: everything fully plausible
	}
	st := byGroup[group]
	hyp, err := st.frame.Hypothesis(condition)
	if err != nil {
		return 0, err
	}
	fused, err := df.fusedLocked(st)
	if err != nil {
		return 0, err
	}
	return fused.Plausibility(hyp), nil
}

// Unknown returns the §5.3 "likelihood of unknown possibilities" for a
// component's failure group — 1.0 before any report arrives.
func (df *DiagnosticFuser) Unknown(component, group string) (float64, error) {
	if _, ok := df.groups[group]; !ok {
		return 0, fmt.Errorf("fusion: unknown group %q", group)
	}
	df.mu.RLock()
	defer df.mu.RUnlock()
	byGroup := df.states[component]
	if byGroup == nil || byGroup[group] == nil {
		return 1, nil
	}
	fused, err := df.fusedLocked(byGroup[group])
	if err != nil {
		return 0, err
	}
	return fused.Unknown(), nil
}

// Ranked returns every condition reported against the component, ranked by
// fused belief descending — the prioritized list the PDME shows maintenance
// personnel.
func (df *DiagnosticFuser) Ranked(component string) []ConditionBelief {
	df.mu.RLock()
	defer df.mu.RUnlock()
	return df.rankedLocked(component)
}

// RankedAll returns Ranked for every component with at least one fused
// report, keyed by component, computed under a single lock acquisition so
// the result is one consistent snapshot: no report fused concurrently with
// the call can appear for one component and be missing for another.
func (df *DiagnosticFuser) RankedAll() map[string][]ConditionBelief {
	df.mu.RLock()
	defer df.mu.RUnlock()
	out := make(map[string][]ConditionBelief, len(df.states))
	//lint:allow maporder each component's ranking is computed independently into a map; order cannot affect any entry
	for component := range df.states {
		out[component] = df.rankedLocked(component)
	}
	return out
}

// rankedLocked computes Ranked for one component. Callers hold df.mu.
func (df *DiagnosticFuser) rankedLocked(component string) []ConditionBelief {
	var out []ConditionBelief
	//lint:allow maporder rows are fully sorted by (belief, condition) before return and conditions are unique per component
	for group, st := range df.states[component] {
		fused, err := df.fusedLocked(st)
		if err != nil {
			continue
		}
		// Best reliability per condition across the sources asserting it:
		// a conclusion is degraded only when no fresh source backs it.
		rel := make(map[string]float64, len(st.reports))
		//lint:allow maporder computes a per-condition maximum reliability; max is order-independent
		for name, src := range st.sources {
			alpha := df.sourceAlpha(name, src)
			//lint:allow maporder contributes to an order-independent per-condition maximum
			for cond := range src.conditions {
				if best, ok := rel[cond]; !ok || alpha > best {
					rel[cond] = alpha
				}
			}
		}
		//lint:allow maporder rows are fully sorted by (belief, condition) before return
		for cond, n := range st.reports {
			hyp, err := st.frame.Hypothesis(cond)
			if err != nil {
				continue
			}
			alpha, ok := rel[cond]
			if !ok {
				alpha = 1
			}
			out = append(out, ConditionBelief{
				Condition:    cond,
				Group:        group,
				Belief:       fused.Belief(hyp),
				Plausibility: fused.Plausibility(hyp),
				Reports:      n,
				Reliability:  alpha,
				Degraded:     alpha < 1-1e-9,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		//lint:allow floateq sort tie-break needs a strict weak order; a tolerance would make it intransitive
		if out[i].Belief != out[j].Belief {
			return out[i].Belief > out[j].Belief
		}
		return out[i].Condition < out[j].Condition
	})
	return out
}

// ConditionState is the complete fused read-side state of one
// (component, condition) pair: everything a belief query surface serves,
// computed in one shot.
type ConditionState struct {
	ConditionBelief
	// Unknown is the residual unknown mass of the condition's whole group on
	// this component (1.0 before any report).
	Unknown float64
}

// ConditionState returns the pair's fused belief, plausibility, group
// unknown, report count, and health-discount fields under a single lock
// acquisition and a single evidence combination — the atomic equivalent of
// calling Belief, Plausibility, Unknown, and picking the condition's row out
// of Ranked, at a quarter of the combination cost.
func (df *DiagnosticFuser) ConditionState(component, condition string) (ConditionState, error) {
	group, err := df.GroupOf(condition)
	if err != nil {
		return ConditionState{}, err
	}
	cs := ConditionState{ConditionBelief: ConditionBelief{
		Condition: condition, Group: group, Plausibility: 1, Reliability: 1,
	}, Unknown: 1}
	df.mu.RLock()
	defer df.mu.RUnlock()
	byGroup := df.states[component]
	if byGroup == nil || byGroup[group] == nil {
		return cs, nil // vacuous: no reports yet for the pair's group
	}
	st := byGroup[group]
	hyp, err := st.frame.Hypothesis(condition)
	if err != nil {
		return ConditionState{}, err
	}
	fused, err := df.fusedLocked(st)
	if err != nil {
		return ConditionState{}, err
	}
	cs.Belief = fused.Belief(hyp)
	cs.Plausibility = fused.Plausibility(hyp)
	cs.Unknown = fused.Unknown()
	cs.Reports = st.reports[condition]
	// Best reliability across the sources asserting this condition, as in
	// Ranked: degraded only when no fresh source backs it.
	alpha, seen := 0.0, false
	//lint:allow maporder computes an order-independent maximum reliability
	for name, src := range st.sources {
		if _, ok := src.conditions[condition]; !ok {
			continue
		}
		if a := df.sourceAlpha(name, src); !seen || a > alpha {
			alpha, seen = a, true
		}
	}
	if seen {
		cs.Reliability = alpha
		cs.Degraded = alpha < 1-1e-9
	}
	return cs, nil
}

// GroupMembers returns the member conditions of a logical failure group, in
// registration order (nil for an unknown group). Evidence for any member
// reweights every other member's belief and the group's unknown mass, so
// caches must treat the whole membership as one invalidation unit.
func (df *DiagnosticFuser) GroupMembers(group string) []string {
	conds, ok := df.groups[group]
	if !ok {
		return nil
	}
	return append([]string(nil), conds...)
}

// Components returns every component with at least one fused report.
func (df *DiagnosticFuser) Components() []string {
	df.mu.RLock()
	defer df.mu.RUnlock()
	out := make([]string, 0, len(df.states))
	//lint:allow maporder component names are sorted before return
	for c := range df.states {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// ReportCount returns the total number of fused reports.
func (df *DiagnosticFuser) ReportCount() int {
	df.mu.RLock()
	defer df.mu.RUnlock()
	return df.totalFusedN
}

// NaiveFuser is the E8 ablation baseline: a single global frame over ALL
// conditions, exactly the construction §5.3 rejects because it "assumes
// mutual exclusivity of failures". It shares the DiagnosticFuser interface
// shape for belief queries.
type NaiveFuser struct {
	mu    sync.Mutex
	frame *dempster.Frame
	state map[string]*dempster.Mass // component -> mass
}

// NewNaiveFuser builds the single-frame baseline over all conditions (plus
// the reserved "other" hypothesis, matching the grouped fuser's frames).
func NewNaiveFuser(conditions []string) (*NaiveFuser, error) {
	frame, err := dempster.NewFrame(append(append([]string(nil), conditions...), otherHypothesis)...)
	if err != nil {
		return nil, err
	}
	return &NaiveFuser{frame: frame, state: make(map[string]*dempster.Mass)}, nil
}

// AddReport fuses a report into the single global frame.
func (nf *NaiveFuser) AddReport(component, condition string, belief float64) (float64, error) {
	if belief > 0.999 {
		belief = 0.999
	}
	nf.mu.Lock()
	defer nf.mu.Unlock()
	m, ok := nf.state[component]
	if !ok {
		m = dempster.VacuousMass(nf.frame)
	}
	hyp, err := nf.frame.Hypothesis(condition)
	if err != nil {
		return 0, err
	}
	ev, err := dempster.SimpleSupport(nf.frame, hyp, belief)
	if err != nil {
		return 0, err
	}
	combined, _, err := dempster.Combine(m, ev)
	if err != nil {
		return 0, err
	}
	nf.state[component] = combined
	return combined.Belief(hyp), nil
}

// Belief returns the fused belief in a condition.
func (nf *NaiveFuser) Belief(component, condition string) (float64, error) {
	nf.mu.Lock()
	defer nf.mu.Unlock()
	m, ok := nf.state[component]
	if !ok {
		return 0, nil
	}
	hyp, err := nf.frame.Hypothesis(condition)
	if err != nil {
		return 0, err
	}
	return m.Belief(hyp), nil
}
