package fusion

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/dempster"
	"repro/internal/proto"
)

// Checkpoint snapshots for the PDME's durable journal. Every slice is
// sorted so identical fusion states encode identically, and masses are
// carried as focal-set member lists so a snapshot survives frame-layout
// changes as long as group membership itself is unchanged. Float64 values
// round-trip bit-exactly through JSON (Go emits the shortest
// uniquely-decoding representation), which is what lets a recovered PDME
// reproduce Ranked/Belief output bit-for-bit.

// FocalMass is one focal set of a source's accumulated evidence.
type FocalMass struct {
	// Members are the frame hypotheses in the focal set (condition names
	// plus the reserved unknown hypothesis), sorted by frame order.
	Members []string `json:"members"`
	Mass    float64  `json:"mass"`
}

// SourceSnapshot is one knowledge source's evidence within a group state.
type SourceSnapshot struct {
	Source     string      `json:"source"`
	LastReport time.Time   `json:"last_report,omitempty"`
	Conditions []string    `json:"conditions,omitempty"`
	Focal      []FocalMass `json:"focal"`
}

// GroupSnapshot is the full per-(component, logical failure group) state.
type GroupSnapshot struct {
	Component string           `json:"component"`
	Group     string           `json:"group"`
	Sources   []SourceSnapshot `json:"sources"`
	// Reports counts per-condition report arrivals, keyed by condition.
	Reports map[string]int `json:"reports,omitempty"`
}

// DiagnosticState is a serializable snapshot of a DiagnosticFuser.
type DiagnosticState struct {
	Groups     []GroupSnapshot `json:"groups"`
	TotalFused int             `json:"total_fused"`
}

// Snapshot captures the fuser's accumulated evidence for checkpointing.
func (df *DiagnosticFuser) Snapshot() DiagnosticState {
	df.mu.RLock()
	defer df.mu.RUnlock()
	st := DiagnosticState{TotalFused: df.totalFusedN}
	//lint:allow maporder snapshot groups are fully sorted by (component, group) before return
	for component, byGroup := range df.states {
		//lint:allow maporder snapshot groups are fully sorted by (component, group) before return
		for group, gs := range byGroup {
			snap := GroupSnapshot{Component: component, Group: group}
			//lint:allow maporder sources are sorted by id before the snapshot is returned
			for id, src := range gs.sources {
				ss := SourceSnapshot{Source: id, LastReport: src.lastReport}
				//lint:allow maporder condition names are sorted two lines down
				for c := range src.conditions {
					ss.Conditions = append(ss.Conditions, c)
				}
				sort.Strings(ss.Conditions)
				for _, set := range src.mass.FocalSets() {
					ss.Focal = append(ss.Focal, FocalMass{
						Members: gs.frame.Names(set),
						Mass:    src.mass.Get(set),
					})
				}
				snap.Sources = append(snap.Sources, ss)
			}
			sort.Slice(snap.Sources, func(i, k int) bool { return snap.Sources[i].Source < snap.Sources[k].Source })
			if len(gs.reports) > 0 {
				snap.Reports = make(map[string]int, len(gs.reports))
				//lint:allow maporder map-to-map copy; insertion order cannot affect contents
				for c, n := range gs.reports {
					snap.Reports[c] = n
				}
			}
			st.Groups = append(st.Groups, snap)
		}
	}
	sort.Slice(st.Groups, func(i, k int) bool {
		if st.Groups[i].Component != st.Groups[k].Component {
			return st.Groups[i].Component < st.Groups[k].Component
		}
		return st.Groups[i].Group < st.Groups[k].Group
	})
	return st
}

// Restore replaces the fuser's evidence with a snapshot. The group
// configuration is NOT part of the snapshot — it comes from construction —
// so a snapshot naming a group or condition the current configuration does
// not know is refused rather than silently misfiled.
func (df *DiagnosticFuser) Restore(st DiagnosticState) error {
	df.mu.Lock()
	defer df.mu.Unlock()
	states := make(map[string]map[string]*groupState)
	restore := func(snap GroupSnapshot) error {
		if _, ok := df.groups[snap.Group]; !ok {
			return fmt.Errorf("fusion: restore: unknown group %q", snap.Group)
		}
		frame, err := newGroupFrame(df.groups, snap.Group)
		if err != nil {
			return err
		}
		gs := &groupState{
			frame:   frame,
			sources: make(map[string]*sourceEvidence),
			reports: make(map[string]int),
		}
		//lint:allow maporder map-to-map copy; insertion order cannot affect contents
		for c, n := range snap.Reports {
			gs.reports[c] = n
		}
		for _, ss := range snap.Sources {
			src := &sourceEvidence{
				mass:       dempster.NewMass(frame),
				lastReport: ss.LastReport,
				conditions: make(map[string]struct{}, len(ss.Conditions)),
			}
			for _, c := range ss.Conditions {
				src.conditions[c] = struct{}{}
			}
			for _, fm := range ss.Focal {
				set, err := frame.SetOf(fm.Members...)
				if err != nil {
					return fmt.Errorf("fusion: restore %s/%s source %q: %w",
						snap.Component, snap.Group, ss.Source, err)
				}
				if err := src.mass.Set(set, fm.Mass); err != nil {
					return fmt.Errorf("fusion: restore %s/%s source %q: %w",
						snap.Component, snap.Group, ss.Source, err)
				}
			}
			gs.sources[ss.Source] = src
		}
		byGroup, ok := states[snap.Component]
		if !ok {
			byGroup = make(map[string]*groupState)
			states[snap.Component] = byGroup
		}
		byGroup[snap.Group] = gs
		return nil
	}
	for _, snap := range st.Groups {
		if err := restore(snap); err != nil {
			return err
		}
	}
	df.states = states
	df.totalFusedN = st.TotalFused
	return nil
}

// PrognosticEntry is one fused (component, condition) prognostic vector.
type PrognosticEntry struct {
	Component string                 `json:"component"`
	Condition string                 `json:"condition"`
	Vector    proto.PrognosticVector `json:"vector"`
}

// PrognosticState is a serializable snapshot of a PrognosticFuser, sorted
// by (component, condition).
type PrognosticState []PrognosticEntry

// Snapshot captures the fused prognostic vectors for checkpointing.
func (pf *PrognosticFuser) Snapshot() PrognosticState {
	pf.mu.RLock()
	defer pf.mu.RUnlock()
	st := make(PrognosticState, 0, len(pf.fused))
	//lint:allow maporder entries are fully sorted by (component, condition) before return
	for k, v := range pf.fused {
		st = append(st, PrognosticEntry{
			Component: k.component,
			Condition: k.condition,
			Vector:    append(proto.PrognosticVector(nil), v...),
		})
	}
	sort.Slice(st, func(i, k int) bool {
		if st[i].Component != st[k].Component {
			return st[i].Component < st[k].Component
		}
		return st[i].Condition < st[k].Condition
	})
	return st
}

// Restore replaces the fuser's vectors with a snapshot.
func (pf *PrognosticFuser) Restore(st PrognosticState) error {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	fused := make(map[progKey]proto.PrognosticVector, len(st))
	for _, e := range st {
		if e.Component == "" || e.Condition == "" {
			return fmt.Errorf("fusion: restore: entry missing component or condition")
		}
		if err := e.Vector.Validate(); err != nil {
			return fmt.Errorf("fusion: restore %s/%s: %w", e.Component, e.Condition, err)
		}
		fused[progKey{e.Component, e.Condition}] = append(proto.PrognosticVector(nil), e.Vector...)
	}
	pf.fused = fused
	return nil
}
