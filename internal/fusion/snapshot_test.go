package fusion

import (
	"encoding/json"
	"math"
	"testing"
	"time"

	"repro/internal/proto"
)

// TestDiagnosticSnapshotRoundtrip: Snapshot → JSON → Restore reproduces
// every fused belief bit-for-bit — the property the PDME's recovery
// guarantee (identical Ranked/Belief after a crash) rests on.
func TestDiagnosticSnapshotRoundtrip(t *testing.T) {
	groups := testGroups()
	df, err := NewDiagnosticFuser(groups)
	if err != nil {
		t.Fatal(err)
	}
	at := time.Date(1998, 8, 1, 0, 0, 0, 0, time.UTC)
	reports := []struct {
		component, condition, source string
		belief                       float64
	}{
		{"motor/1", "motor imbalance", "vibration", 0.6},
		{"motor/1", "motor imbalance", "current", 0.55},
		{"motor/1", "motor misalignment", "vibration", 0.3},
		{"motor/1", "oil whirl", "oil", 0.7},
		{"pump/2", "stator electrical unbalance", "current", 0.42},
	}
	for i, r := range reports {
		if _, err := df.AddReportFrom(r.component, r.condition, r.source,
			at.Add(time.Duration(i)*time.Hour), r.belief); err != nil {
			t.Fatal(err)
		}
	}

	st := df.Snapshot()
	blob, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var decoded DiagnosticState
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	restored, err := NewDiagnosticFuser(groups)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(decoded); err != nil {
		t.Fatal(err)
	}

	if got, want := restored.ReportCount(), df.ReportCount(); got != want {
		t.Errorf("restored report count %d, want %d", got, want)
	}
	for _, comp := range df.Components() {
		for _, cb := range df.Ranked(comp) {
			b, err := restored.Belief(comp, cb.Condition)
			if err != nil {
				t.Fatalf("restored Belief(%s, %s): %v", comp, cb.Condition, err)
			}
			if math.Float64bits(b) != math.Float64bits(cb.Belief) {
				t.Errorf("%s/%s: restored belief %v != original %v (not bit-exact)",
					comp, cb.Condition, b, cb.Belief)
			}
			pl, err := restored.Plausibility(comp, cb.Condition)
			if err != nil || math.Float64bits(pl) != math.Float64bits(cb.Plausibility) {
				t.Errorf("%s/%s: restored plausibility %v != original %v (err %v)",
					comp, cb.Condition, pl, cb.Plausibility, err)
			}
		}
	}
	// Evidence (not just fused output) survived: a post-restore report
	// fuses against the recovered masses exactly as it would have live.
	next := at.Add(100 * time.Hour)
	bLive, err := df.AddReportFrom("motor/1", "motor imbalance", "vibration", next, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	bRec, err := restored.AddReportFrom("motor/1", "motor imbalance", "vibration", next, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(bLive) != math.Float64bits(bRec) {
		t.Errorf("post-restore fusion diverges: live %v, recovered %v", bLive, bRec)
	}
}

// TestDiagnosticRestoreRefusesUnknownNames: a snapshot naming a group or
// condition absent from the configured failure groups is refused rather
// than silently dropped — the operator changed the groups between runs and
// must know the checkpoint no longer applies.
func TestDiagnosticRestoreRefusesUnknownNames(t *testing.T) {
	df, err := NewDiagnosticFuser(testGroups())
	if err != nil {
		t.Fatal(err)
	}
	if err := df.Restore(DiagnosticState{Groups: []GroupSnapshot{{
		Component: "motor/1", Group: "hydraulic",
	}}}); err == nil {
		t.Error("unknown group accepted")
	}
	if err := df.Restore(DiagnosticState{Groups: []GroupSnapshot{{
		Component: "motor/1", Group: "structural",
		Sources: []SourceSnapshot{{
			Source: "vibration",
			Focal:  []FocalMass{{Members: []string{"cavitation"}, Mass: 0.5}},
		}},
	}}}); err == nil {
		t.Error("unknown condition in a focal set accepted")
	}
}

// TestPrognosticSnapshotRoundtrip: fused prognostic vectors survive
// snapshot/restore bit-exactly, and later fusion continues from them.
func TestPrognosticSnapshotRoundtrip(t *testing.T) {
	pf := NewPrognosticFuser()
	v1 := proto.PrognosticVector{{Probability: 0.3, HorizonSeconds: 24 * 3600}, {Probability: 0.8, HorizonSeconds: 96 * 3600}}
	v2 := proto.PrognosticVector{{Probability: 0.4, HorizonSeconds: 36 * 3600}, {Probability: 0.9, HorizonSeconds: 120 * 3600}}
	if _, err := pf.AddReport("motor/1", "motor imbalance", v1); err != nil {
		t.Fatal(err)
	}
	if _, err := pf.AddReport("motor/1", "motor imbalance", v2); err != nil {
		t.Fatal(err)
	}
	if _, err := pf.AddReport("pump/2", "oil whirl", v1); err != nil {
		t.Fatal(err)
	}

	st := pf.Snapshot()
	blob, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var decoded PrognosticState
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	restored := NewPrognosticFuser()
	if err := restored.Restore(decoded); err != nil {
		t.Fatal(err)
	}

	for _, comp := range []string{"motor/1", "pump/2"} {
		for _, cond := range pf.Conditions(comp) {
			want, got := pf.Fused(comp, cond), restored.Fused(comp, cond)
			if len(want) != len(got) {
				t.Fatalf("%s/%s: restored vector has %d points, want %d", comp, cond, len(got), len(want))
			}
			for i := range want {
				if math.Float64bits(want[i].Probability) != math.Float64bits(got[i].Probability) ||
					math.Float64bits(want[i].HorizonSeconds) != math.Float64bits(got[i].HorizonSeconds) {
					t.Errorf("%s/%s[%d]: restored %+v != original %+v", comp, cond, i, got[i], want[i])
				}
			}
		}
	}
	// An invalid vector in a snapshot is refused.
	if err := restored.Restore(PrognosticState{{
		Component: "x", Condition: "y",
		Vector: proto.PrognosticVector{{Probability: 2, HorizonSeconds: 3600}},
	}}); err == nil {
		t.Error("invalid prognostic vector accepted on restore")
	}
}
