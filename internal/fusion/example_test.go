package fusion_test

import (
	"fmt"
	"time"

	"repro/internal/fusion"
	"repro/internal/proto"
)

// ExampleFuseConservative reproduces the paper's §5.4 worked example: a
// weaker report is ignored, a stronger one dominates.
func ExampleFuseConservative() {
	const month = 30 * 86400.0
	base := proto.PrognosticVector{
		{Probability: 0.01, HorizonSeconds: 3 * month},
		{Probability: 0.5, HorizonSeconds: 4 * month},
		{Probability: 0.99, HorizonSeconds: 5 * month},
	}
	strong := proto.PrognosticVector{{Probability: 0.95, HorizonSeconds: 4.5 * month}}
	fused, err := fusion.FuseConservative(base, strong)
	if err != nil {
		panic(err)
	}
	at := func(months float64) float64 {
		return fused.ProbabilityAt(time.Duration(months * month * float64(time.Second)))
	}
	fmt.Printf("P(fail by 4.0 months) = %.2f\n", at(4))
	fmt.Printf("P(fail by 4.5 months) = %.2f\n", at(4.5))
	// Output:
	// P(fail by 4.0 months) = 0.50
	// P(fail by 4.5 months) = 0.95
}

// ExampleDiagnosticFuser shows grouped Dempster-Shafer fusion: reinforcing
// reports raise belief, and independent groups do not compete.
func ExampleDiagnosticFuser() {
	groups := fusion.Groups{
		"structural": {"motor imbalance", "motor misalignment"},
		"electrical": {"stator electrical unbalance"},
	}
	df, err := fusion.NewDiagnosticFuser(groups)
	if err != nil {
		panic(err)
	}
	// Two sources agree on imbalance.
	if _, err := df.AddReport("motor/1", "motor imbalance", 0.6); err != nil {
		panic(err)
	}
	if _, err := df.AddReport("motor/1", "motor imbalance", 0.5); err != nil {
		panic(err)
	}
	// An electrical fault is independent evidence in its own group.
	if _, err := df.AddReport("motor/1", "stator electrical unbalance", 0.9); err != nil {
		panic(err)
	}
	bi, _ := df.Belief("motor/1", "motor imbalance")
	be, _ := df.Belief("motor/1", "stator electrical unbalance")
	unknown, _ := df.Unknown("motor/1", "structural")
	fmt.Printf("Bel(imbalance) = %.2f\n", bi)
	fmt.Printf("Bel(electrical) = %.2f\n", be)
	fmt.Printf("unknown (structural group) = %.2f\n", unknown)
	// Output:
	// Bel(imbalance) = 0.80
	// Bel(electrical) = 0.90
	// unknown (structural group) = 0.20
}
