package fusion

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/proto"
)

func testGroups() Groups {
	return Groups{
		"electrical": {"motor rotor bar problem", "stator electrical unbalance"},
		"structural": {"motor imbalance", "motor misalignment", "bearing housing looseness"},
		"lubricant":  {"oil whirl", "motor bearing outer race defect"},
	}
}

func TestGroupsValidate(t *testing.T) {
	if err := testGroups().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Groups{}).Validate(); err == nil {
		t.Error("empty groups")
	}
	if err := (Groups{"g": nil}).Validate(); err == nil {
		t.Error("empty group")
	}
	if err := (Groups{"a": {"x"}, "b": {"x"}}).Validate(); err == nil {
		t.Error("duplicate condition across groups")
	}
}

func TestAddReportAndBelief(t *testing.T) {
	df, err := NewDiagnosticFuser(testGroups())
	if err != nil {
		t.Fatal(err)
	}
	b, err := df.AddReport("motor/1", "motor imbalance", 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b-0.6) > 1e-9 {
		t.Errorf("first report belief %g", b)
	}
	// Reinforcing report: belief grows (1 - 0.4*0.5 = 0.8).
	b, err = df.AddReport("motor/1", "motor imbalance", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b-0.8) > 1e-9 {
		t.Errorf("reinforced belief %g, want 0.8", b)
	}
	got, err := df.Belief("motor/1", "motor imbalance")
	if err != nil || math.Abs(got-b) > 1e-12 {
		t.Errorf("Belief readback %g err %v", got, err)
	}
	// Unknown mass shrinks from 1 as evidence arrives.
	u, err := df.Unknown("motor/1", "structural")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u-0.2) > 1e-9 {
		t.Errorf("unknown %g, want 0.2", u)
	}
	// Fresh component: vacuous.
	u, _ = df.Unknown("pump/9", "structural")
	if u != 1 {
		t.Errorf("fresh unknown %g", u)
	}
	b, err = df.Belief("pump/9", "oil whirl")
	if err != nil || b != 0 {
		t.Errorf("fresh belief %g %v", b, err)
	}
	pl, err := df.Plausibility("pump/9", "oil whirl")
	if err != nil || pl != 1 {
		t.Errorf("fresh plausibility %g %v", pl, err)
	}
}

func TestValidationErrors(t *testing.T) {
	df, err := NewDiagnosticFuser(testGroups())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := df.AddReport("", "motor imbalance", 0.5); err == nil {
		t.Error("empty component")
	}
	if _, err := df.AddReport("m", "ghost condition", 0.5); err == nil {
		t.Error("unknown condition")
	}
	if _, err := df.AddReport("m", "motor imbalance", -0.1); err == nil {
		t.Error("negative belief")
	}
	if _, err := df.AddReport("m", "motor imbalance", 1.5); err == nil {
		t.Error("belief > 1")
	}
	if _, err := df.Belief("m", "ghost"); err == nil {
		t.Error("belief of unknown condition")
	}
	if _, err := df.Unknown("m", "ghost group"); err == nil {
		t.Error("unknown group")
	}
	if _, err := df.GroupOf("ghost"); err == nil {
		t.Error("group of unknown condition")
	}
	if _, err := NewDiagnosticFuser(Groups{"a": {"x"}, "b": {"x"}}); err == nil {
		t.Error("bad groups accepted")
	}
}

func TestCertainReportsDoNotTotalConflict(t *testing.T) {
	// Two sources certain of different conditions in the same group: the
	// 0.999 clamp must keep combination possible.
	df, err := NewDiagnosticFuser(testGroups())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := df.AddReport("m", "motor imbalance", 1.0); err != nil {
		t.Fatal(err)
	}
	if _, err := df.AddReport("m", "motor misalignment", 1.0); err != nil {
		t.Fatalf("conflicting certain reports must not fail: %v", err)
	}
}

func TestConflictingReportsWithinGroupShareProbability(t *testing.T) {
	// §5.3: failures within a group "might be mistaken for one another, so
	// they are logically related and should share probabilities". Two
	// conflicting reports in one group suppress each other's belief.
	df, err := NewDiagnosticFuser(testGroups())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := df.AddReport("m", "motor imbalance", 0.8); err != nil {
		t.Fatal(err)
	}
	if _, err := df.AddReport("m", "motor misalignment", 0.8); err != nil {
		t.Fatal(err)
	}
	bi, _ := df.Belief("m", "motor imbalance")
	bm, _ := df.Belief("m", "motor misalignment")
	if bi > 0.5 || bm > 0.5 {
		t.Errorf("conflicting in-group beliefs not suppressed: %g, %g", bi, bm)
	}
	// Symmetric evidence: symmetric beliefs.
	if math.Abs(bi-bm) > 1e-9 {
		t.Errorf("asymmetric: %g vs %g", bi, bm)
	}
}

// TestIndependentGroupsStayConcurrent reproduces the design point of §5.3:
// failures in DIFFERENT groups are independent and can both be fully
// believed — the naive single-frame treatment forces them to compete.
func TestIndependentGroupsStayConcurrent(t *testing.T) {
	df, err := NewDiagnosticFuser(testGroups())
	if err != nil {
		t.Fatal(err)
	}
	allConds := []string{}
	for _, cs := range testGroups() {
		allConds = append(allConds, cs...)
	}
	nf, err := NewNaiveFuser(allConds)
	if err != nil {
		t.Fatal(err)
	}
	// Three strong independent reports: an electrical fault, a structural
	// fault, and a lubricant fault, all on the same machine.
	evidence := []struct {
		cond   string
		belief float64
	}{
		{"motor rotor bar problem", 0.9},
		{"motor imbalance", 0.9},
		{"oil whirl", 0.9},
	}
	for _, e := range evidence {
		for i := 0; i < 3; i++ { // three reinforcing reports each
			if _, err := df.AddReport("m", e.cond, e.belief); err != nil {
				t.Fatal(err)
			}
			if _, err := nf.AddReport("m", e.cond, e.belief); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, e := range evidence {
		grouped, _ := df.Belief("m", e.cond)
		naive, _ := nf.Belief("m", e.cond)
		if grouped < 0.99 {
			t.Errorf("%s: grouped belief %g should stay near 1 (independent faults)", e.cond, grouped)
		}
		if naive > 0.7 {
			t.Errorf("%s: naive belief %g should be suppressed by forced exclusivity", e.cond, naive)
		}
		if grouped <= naive {
			t.Errorf("%s: grouped %g should exceed naive %g", e.cond, grouped, naive)
		}
	}
}

func TestRankedList(t *testing.T) {
	df, err := NewDiagnosticFuser(testGroups())
	if err != nil {
		t.Fatal(err)
	}
	reports := []struct {
		cond   string
		belief float64
		n      int
	}{
		{"motor imbalance", 0.7, 2},
		{"oil whirl", 0.4, 1},
		{"motor rotor bar problem", 0.9, 3},
	}
	for _, r := range reports {
		for i := 0; i < r.n; i++ {
			if _, err := df.AddReport("m", r.cond, r.belief); err != nil {
				t.Fatal(err)
			}
		}
	}
	ranked := df.Ranked("m")
	if len(ranked) != 3 {
		t.Fatalf("ranked %d entries", len(ranked))
	}
	if ranked[0].Condition != "motor rotor bar problem" {
		t.Errorf("top %q", ranked[0].Condition)
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Belief > ranked[i-1].Belief {
			t.Error("not sorted by belief")
		}
	}
	for _, cb := range ranked {
		if cb.Plausibility < cb.Belief {
			t.Errorf("%s: Pl %g < Bel %g", cb.Condition, cb.Plausibility, cb.Belief)
		}
		if cb.Group == "" || cb.Reports == 0 {
			t.Errorf("incomplete entry %+v", cb)
		}
	}
	if cs := df.Components(); len(cs) != 1 || cs[0] != "m" {
		t.Errorf("components %v", cs)
	}
	if df.ReportCount() != 6 {
		t.Errorf("report count %d", df.ReportCount())
	}
	if len(df.Ranked("ghost")) != 0 {
		t.Error("ranked for unknown component")
	}
}

func TestConcurrentFusion(t *testing.T) {
	df, err := NewDiagnosticFuser(testGroups())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			conds := []string{"motor imbalance", "oil whirl", "motor rotor bar problem"}
			for i := 0; i < 50; i++ {
				if _, err := df.AddReport("m", conds[i%3], 0.3); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if df.ReportCount() != 400 {
		t.Errorf("count %d", df.ReportCount())
	}
}

// --- prognostic fusion (§5.4) ---

const month = 30 * 86400.0 // seconds

// TestPaperPrognosticExample1 reproduces the first §5.4 worked example:
// a component good for 3 months then degrading (((3mo,.01)(4mo,.5)
// (5mo,.99))) combined with a weaker report ((4.5mo,.12)) — "we will ignore
// the second report, and stick with the first which is more conservative."
func TestPaperPrognosticExample1(t *testing.T) {
	v1 := proto.PrognosticVector{
		{Probability: 0.01, HorizonSeconds: 3 * month},
		{Probability: 0.5, HorizonSeconds: 4 * month},
		{Probability: 0.99, HorizonSeconds: 5 * month},
	}
	v2 := proto.PrognosticVector{{Probability: 0.12, HorizonSeconds: 4.5 * month}}
	fused, err := FuseConservative(v1, v2)
	if err != nil {
		t.Fatal(err)
	}
	// The fused CURVE is exactly the first vector's curve: the weak report
	// leaves no trace. (The paper's example vector happens to be collinear —
	// 0.49/month throughout — so the point list may be simplified, but the
	// interpolated curve must match everywhere.)
	if err := fused.Validate(); err != nil {
		t.Fatal(err)
	}
	for h := 3 * month; h <= 5*month; h += month / 16 {
		d := time.Duration(h * float64(time.Second))
		if math.Abs(fused.ProbabilityAt(d)-v1.ProbabilityAt(d)) > 1e-9 {
			t.Fatalf("fused at %.2f months = %g, original %g",
				h/month, fused.ProbabilityAt(d), v1.ProbabilityAt(d))
		}
	}
	// In particular, at the weak report's own horizon the original curve
	// value (0.745) stands, not the report's 0.12.
	at45 := fused.ProbabilityAt(time.Duration(4.5 * month * float64(time.Second)))
	if math.Abs(at45-0.745) > 1e-9 {
		t.Errorf("fused at 4.5mo = %g, want 0.745", at45)
	}
}

// TestPaperPrognosticExample2 reproduces the second example: "If, however,
// the second report indicates a much higher likelihood of failure ((4.5
// months, .95)) then this report would dominate, and the extrapolation of
// the curve beyond this point would indicate an even earlier demise."
func TestPaperPrognosticExample2(t *testing.T) {
	v1 := proto.PrognosticVector{
		{Probability: 0.01, HorizonSeconds: 3 * month},
		{Probability: 0.5, HorizonSeconds: 4 * month},
		{Probability: 0.99, HorizonSeconds: 5 * month},
	}
	v2 := proto.PrognosticVector{{Probability: 0.95, HorizonSeconds: 4.5 * month}}
	fused, err := FuseConservative(v1, v2)
	if err != nil {
		t.Fatal(err)
	}
	// The 4.5-month point must now carry the dominating 0.95.
	at45 := fused.ProbabilityAt(time.Duration(4.5 * month * float64(time.Second)))
	if math.Abs(at45-0.95) > 1e-9 {
		t.Errorf("fused at 4.5mo = %g, want 0.95", at45)
	}
	// Earlier demise: the fused curve reaches 99% before the original's
	// 5 months.
	maxH := time.Duration(8 * month * float64(time.Second))
	tFused, ok := fused.TimeToProbability(0.99, maxH)
	if !ok {
		t.Fatal("fused never reaches 0.99")
	}
	tOrig, ok := v1.TimeToProbability(0.99, maxH)
	if !ok {
		t.Fatal("original never reaches 0.99")
	}
	if tFused >= tOrig {
		t.Errorf("fused demise %v not earlier than original %v", tFused, tOrig)
	}
	// The early part of the curve is untouched.
	at3 := fused.ProbabilityAt(time.Duration(3 * month * float64(time.Second)))
	if math.Abs(at3-0.01) > 1e-9 {
		t.Errorf("fused at 3mo = %g, want 0.01", at3)
	}
}

func TestFuseConservativeEdgeCases(t *testing.T) {
	// Empty input.
	fused, err := FuseConservative()
	if err != nil || fused != nil {
		t.Errorf("empty: %v %v", fused, err)
	}
	// All-empty vectors.
	fused, err = FuseConservative(proto.PrognosticVector{}, nil)
	if err != nil || fused != nil {
		t.Errorf("all empty: %v %v", fused, err)
	}
	// Single vector: returned as-is.
	v := proto.PrognosticVector{{Probability: 0.5, HorizonSeconds: 100}}
	fused, err = FuseConservative(v, nil)
	if err != nil || len(fused) != 1 || fused[0] != v[0] {
		t.Errorf("single: %v %v", fused, err)
	}
	// Invalid vector rejected.
	if _, err := FuseConservative(proto.PrognosticVector{{Probability: 2, HorizonSeconds: 1}}); err == nil {
		t.Error("invalid vector accepted")
	}
	// Output is always a valid vector.
	a := proto.PrognosticVector{{Probability: 0.2, HorizonSeconds: 100}, {Probability: 0.6, HorizonSeconds: 300}}
	b := proto.PrognosticVector{{Probability: 0.4, HorizonSeconds: 200}, {Probability: 0.5, HorizonSeconds: 250}}
	fused, err = FuseConservative(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := fused.Validate(); err != nil {
		t.Errorf("fused invalid: %v (%+v)", err, fused)
	}
}

func TestFusedDominatesInputsProperty(t *testing.T) {
	// Property: the fused curve is >= every input curve at every sampled
	// horizon at or after that input's first point, and valid.
	prop := func(seed int64) bool {
		rng := newRand(seed)
		var vectors []proto.PrognosticVector
		for i := 0; i < 1+rng.intn(4); i++ {
			vectors = append(vectors, randomVector(rng))
		}
		fused, err := FuseConservative(vectors...)
		if err != nil {
			return false
		}
		if fused.Validate() != nil {
			return false
		}
		// The guarantee holds over the fused vector's own domain (beyond the
		// last fused point, extrapolations of individual reports and the
		// fused vector can diverge — §5.4 only defines the curve over the
		// reported horizons).
		var maxH float64
		for _, v := range vectors {
			if len(v) > 0 && v[len(v)-1].HorizonSeconds > maxH {
				maxH = v[len(v)-1].HorizonSeconds
			}
		}
		for _, v := range vectors {
			if len(v) == 0 {
				continue
			}
			for h := v[0].HorizonSeconds; h <= maxH; h += 13 {
				// Round up: plain truncation can land the first sample a
				// nanosecond BELOW v's first point, outside the domain where
				// domination is guaranteed (the fused curve may still be
				// climbing from another input's earlier, lower point there).
				d := time.Duration(math.Ceil(h * float64(time.Second)))
				if fused.ProbabilityAt(d) < v.ProbabilityAt(d)-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPrognosticFuser(t *testing.T) {
	pf := NewPrognosticFuser()
	v1 := proto.PrognosticVector{{Probability: 0.3, HorizonSeconds: 100}}
	fused, err := pf.AddReport("m", "motor imbalance", v1)
	if err != nil || len(fused) != 1 {
		t.Fatalf("first add: %v %v", fused, err)
	}
	v2 := proto.PrognosticVector{{Probability: 0.8, HorizonSeconds: 100}}
	fused, err = pf.AddReport("m", "motor imbalance", v2)
	if err != nil {
		t.Fatal(err)
	}
	if got := fused.ProbabilityAt(100 * time.Second); math.Abs(got-0.8) > 1e-9 {
		t.Errorf("fused at 100s = %g", got)
	}
	// Readback.
	cur := pf.Fused("m", "motor imbalance")
	if len(cur) == 0 {
		t.Fatal("empty fused readback")
	}
	// Unmentioned pair.
	if v := pf.Fused("m", "ghost"); v != nil && len(v) != 0 {
		t.Error("ghost pair has vector")
	}
	// Conditions listing.
	if cs := pf.Conditions("m"); len(cs) != 1 || cs[0] != "motor imbalance" {
		t.Errorf("conditions %v", cs)
	}
	// Time to failure.
	if _, ok := pf.TimeToFailure("m", "motor imbalance", 0.5, 1000*time.Second); !ok {
		t.Error("time to failure not found")
	}
	// Validation.
	if _, err := pf.AddReport("", "c", v1); err == nil {
		t.Error("empty component")
	}
	if _, err := pf.AddReport("m", "", v1); err == nil {
		t.Error("empty condition")
	}
	if _, err := pf.AddReport("m", "c", proto.PrognosticVector{{Probability: 2, HorizonSeconds: 1}}); err == nil {
		t.Error("invalid vector")
	}
	// Empty vector add is a no-op returning current state.
	got, err := pf.AddReport("m", "motor imbalance", nil)
	if err != nil || len(got) == 0 {
		t.Errorf("empty add: %v %v", got, err)
	}
}

// --- tiny deterministic generator (mirrors proto's test helper) ---

type testRand struct{ state uint64 }

func newRand(seed int64) *testRand {
	return &testRand{state: uint64(seed)*2862933555777941757 + 3037000493}
}

func (r *testRand) next() uint64 {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return r.state
}

func (r *testRand) float() float64 { return float64(r.next()>>11) / float64(1<<53) }
func (r *testRand) intn(n int) int { return int(r.next() % uint64(n)) }

func randomVector(rng *testRand) proto.PrognosticVector {
	n := rng.intn(4)
	v := make(proto.PrognosticVector, 0, n)
	horizon, prob := 0.0, 0.0
	for i := 0; i < n; i++ {
		horizon += 10 + rng.float()*100
		prob += rng.float() * (1 - prob) * 0.8
		v = append(v, proto.PrognosticPoint{Probability: prob, HorizonSeconds: horizon})
	}
	return v
}

func BenchmarkDiagnosticFusion(b *testing.B) {
	df, err := NewDiagnosticFuser(testGroups())
	if err != nil {
		b.Fatal(err)
	}
	conds := []string{"motor imbalance", "oil whirl", "motor rotor bar problem"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := df.AddReport("m", conds[i%3], 0.3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPrognosticFusion(b *testing.B) {
	pf := NewPrognosticFuser()
	vs := []proto.PrognosticVector{
		{{Probability: 0.1, HorizonSeconds: 100}, {Probability: 0.5, HorizonSeconds: 200}, {Probability: 0.9, HorizonSeconds: 400}},
		{{Probability: 0.3, HorizonSeconds: 150}, {Probability: 0.7, HorizonSeconds: 300}},
		{{Probability: 0.2, HorizonSeconds: 120}},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pf.AddReport("m", "c", vs[i%3]); err != nil {
			b.Fatal(err)
		}
	}
}
