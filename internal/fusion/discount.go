package fusion

// DiscountSummary applies Shafer discounting with factor alpha to a fused
// (belief, plausibility, unknown) triple arriving as a shard summary, for
// aggregators that hold only the shard's read-side numbers rather than its
// underlying mass functions. Discounting a mass m to αm + (1-α)·Θ maps the
// derived intervals linearly:
//
//	Bel' = α·Bel        Pl' = 1 - α·(1-Pl)        Θ' = 1 - α + α·Θ
//
// which matches dempster.Discount applied before the interval is read out.
// alpha is clamped to [0,1]; alpha 1 is the identity, alpha 0 collapses the
// summary to total ignorance (Bel 0, Pl 1, Θ 1) — exactly how a lost
// shard's contribution degrades monotonically toward Unknown.
func DiscountSummary(belief, plausibility, unknown, alpha float64) (b, pl, u float64) {
	if alpha < 0 {
		alpha = 0
	}
	if alpha > 1 {
		alpha = 1
	}
	return alpha * belief, 1 - alpha*(1-plausibility), 1 - alpha + alpha*unknown
}
