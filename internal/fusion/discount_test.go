package fusion

import (
	"math"
	"testing"
	"time"

	"repro/internal/dempster"
)

// fakeDiscounter maps source id to a fixed reliability factor; sources not
// listed are fully reliable.
type fakeDiscounter struct {
	alpha map[string]float64
}

func (f *fakeDiscounter) Reliability(source string, _ time.Time) float64 {
	if a, ok := f.alpha[source]; ok {
		return a
	}
	return 1
}

var discountGroups = Groups{
	"bearing": {"outer-race-fault", "inner-race-fault"},
	"balance": {"unbalance"},
}

// dt is a fixed test epoch (no wall clock in deterministic packages).
var dt = time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)

func TestAddReportFromMatchesAnonymous(t *testing.T) {
	// With no discounter, source attribution must not change fused numbers:
	// Dempster combination is associative/commutative, and single-source
	// evidence takes the exact same code path as before.
	a, err := NewDiagnosticFuser(discountGroups)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewDiagnosticFuser(discountGroups)
	if err != nil {
		t.Fatal(err)
	}
	beliefs := []float64{0.7, 0.5, 0.8}
	for i, bel := range beliefs {
		if _, err := a.AddReport("chiller", "outer-race-fault", bel); err != nil {
			t.Fatal(err)
		}
		if _, err := b.AddReportFrom("chiller", "outer-race-fault", "dc-0", dt.Add(time.Duration(i)*time.Minute), bel); err != nil {
			t.Fatal(err)
		}
	}
	ba, err := a.Belief("chiller", "outer-race-fault")
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.Belief("chiller", "outer-race-fault")
	if err != nil {
		t.Fatal(err)
	}
	if ba != bb {
		t.Fatalf("attributed belief %g != anonymous belief %g", bb, ba)
	}
}

func TestDiscountingShiftsBeliefToUnknown(t *testing.T) {
	df, err := NewDiagnosticFuser(discountGroups)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := df.AddReportFrom("chiller", "outer-race-fault", "dc-0", dt, 0.8); err != nil {
		t.Fatal(err)
	}
	fresh, _ := df.Belief("chiller", "outer-race-fault")
	freshUnknown, _ := df.Unknown("chiller", "bearing")
	if math.Abs(fresh-0.8) > 1e-12 {
		t.Fatalf("fresh belief = %g, want 0.8", fresh)
	}

	disc := &fakeDiscounter{alpha: map[string]float64{"dc-0": 1}}
	df.SetDiscounter(disc)
	prevBelief, prevUnknown := fresh, freshUnknown
	for _, alpha := range []float64{0.75, 0.5, 0.25, 0} {
		disc.alpha["dc-0"] = alpha
		bel, err := df.Belief("chiller", "outer-race-fault")
		if err != nil {
			t.Fatal(err)
		}
		unk, err := df.Unknown("chiller", "bearing")
		if err != nil {
			t.Fatal(err)
		}
		if bel > prevBelief || unk < prevUnknown {
			t.Fatalf("alpha %g: belief %g (prev %g) / unknown %g (prev %g) not monotone", alpha, bel, prevBelief, unk, prevUnknown)
		}
		if math.Abs(bel-alpha*0.8) > 1e-12 {
			t.Fatalf("alpha %g: belief = %g, want %g", alpha, bel, alpha*0.8)
		}
		prevBelief, prevUnknown = bel, unk
	}
	// Fully discounted single source: total ignorance.
	if prevBelief != 0 || math.Abs(prevUnknown-1) > 1e-12 {
		t.Fatalf("alpha 0: belief %g unknown %g, want 0 and 1", prevBelief, prevUnknown)
	}
	// Recovery is automatic: restore reliability and the original numbers
	// come back with no re-reporting.
	disc.alpha["dc-0"] = 1
	bel, _ := df.Belief("chiller", "outer-race-fault")
	unk, _ := df.Unknown("chiller", "bearing")
	if bel != fresh || unk != freshUnknown {
		t.Fatalf("after recovery belief %g unknown %g, want %g and %g", bel, unk, fresh, freshUnknown)
	}
}

func TestStaleSourceNeverOutranksLiveContradiction(t *testing.T) {
	// The ISSUE invariant: a quarantined source's stale conclusion must not
	// rank above a live contradicting one. dc-stale asserted outer-race
	// strongly; dc-live asserts inner-race moderately. Once dc-stale's
	// reliability falls low enough, the live conclusion ranks first.
	df, err := NewDiagnosticFuser(discountGroups)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := df.AddReportFrom("chiller", "outer-race-fault", "dc-stale", dt, 0.95); err != nil {
		t.Fatal(err)
	}
	if _, err := df.AddReportFrom("chiller", "inner-race-fault", "dc-live", dt.Add(time.Hour), 0.6); err != nil {
		t.Fatal(err)
	}
	disc := &fakeDiscounter{alpha: map[string]float64{"dc-stale": 1}}
	df.SetDiscounter(disc)
	ranked := df.Ranked("chiller")
	if len(ranked) != 2 || ranked[0].Condition != "outer-race-fault" {
		t.Fatalf("with both fresh, stronger assertion should lead: %+v", ranked)
	}
	if ranked[0].Degraded || ranked[1].Degraded {
		t.Fatalf("nothing should be degraded at full reliability: %+v", ranked)
	}

	disc.alpha["dc-stale"] = 0.1
	ranked = df.Ranked("chiller")
	if ranked[0].Condition != "inner-race-fault" {
		t.Fatalf("stale source outranks live contradiction: %+v", ranked)
	}
	var stale ConditionBelief
	for _, cb := range ranked {
		if cb.Condition == "outer-race-fault" {
			stale = cb
		}
	}
	if !stale.Degraded || math.Abs(stale.Reliability-0.1) > 1e-12 {
		t.Fatalf("stale conclusion should be marked degraded at α=0.1: %+v", stale)
	}
	live := ranked[0]
	if live.Degraded || live.Reliability != 1 {
		t.Fatalf("live conclusion should stay undegraded: %+v", live)
	}
}

func TestDegradedNeedsAllSourcesStale(t *testing.T) {
	// Two sources assert the same condition; only one goes stale. The
	// conclusion keeps a fresh backer, so it is not degraded.
	df, err := NewDiagnosticFuser(discountGroups)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := df.AddReportFrom("pump", "unbalance", "dc-0", dt, 0.7); err != nil {
		t.Fatal(err)
	}
	if _, err := df.AddReportFrom("pump", "unbalance", "dc-1", dt, 0.7); err != nil {
		t.Fatal(err)
	}
	df.SetDiscounter(&fakeDiscounter{alpha: map[string]float64{"dc-0": 0.2}})
	ranked := df.Ranked("pump")
	if len(ranked) != 1 {
		t.Fatalf("ranked: %+v", ranked)
	}
	if ranked[0].Degraded || ranked[0].Reliability != 1 {
		t.Fatalf("conclusion with a fresh backer should not be degraded: %+v", ranked[0])
	}
	// Corroboration from the discounted source still counts, just weaker:
	// belief must sit between the single-fresh-source value and the
	// two-fresh-sources value.
	single := 0.7
	both := 1 - (1-0.7)*(1-0.7)
	bel, _ := df.Belief("pump", "unbalance")
	if bel <= single || bel >= both {
		t.Fatalf("partially discounted corroboration: belief %g not in (%g,%g)", bel, single, both)
	}
}

func TestDiscountSummaryMatchesMassDiscount(t *testing.T) {
	// The interval-level formula used on shard summaries must be exactly
	// dempster.Discount read out through Belief/Plausibility/Unknown.
	frame, err := dempster.NewFrame("a", "b", "c")
	if err != nil {
		t.Fatal(err)
	}
	ha, err := frame.Hypothesis("a")
	if err != nil {
		t.Fatal(err)
	}
	hab, err := frame.SetOf("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	m := dempster.NewMass(frame)
	if err := m.Set(ha, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := m.Set(hab, 0.3); err != nil {
		t.Fatal(err)
	}
	if err := m.Set(frame.Theta(), 0.2); err != nil {
		t.Fatal(err)
	}
	for _, alpha := range []float64{0, 0.25, 0.6, 1} {
		dm, err := dempster.Discount(m, alpha)
		if err != nil {
			t.Fatal(err)
		}
		wantB, wantPl, wantU := dm.Belief(ha), dm.Plausibility(ha), dm.Unknown()
		gotB, gotPl, gotU := DiscountSummary(m.Belief(ha), m.Plausibility(ha), m.Unknown(), alpha)
		if math.Abs(gotB-wantB) > 1e-12 || math.Abs(gotPl-wantPl) > 1e-12 || math.Abs(gotU-wantU) > 1e-12 {
			t.Fatalf("alpha %g: got (%g,%g,%g), want (%g,%g,%g)",
				alpha, gotB, gotPl, gotU, wantB, wantPl, wantU)
		}
	}
}

func TestDiscountSummaryEdges(t *testing.T) {
	b, pl, u := DiscountSummary(0.7, 0.8, 0.2, 0)
	if b != 0 || pl != 1 || u != 1 {
		t.Fatalf("alpha 0 must be total ignorance, got (%g,%g,%g)", b, pl, u)
	}
	b, pl, u = DiscountSummary(0.7, 0.8, 0.2, 1)
	if b != 0.7 || pl != 0.8 || u != 0.2 {
		t.Fatalf("alpha 1 must be identity, got (%g,%g,%g)", b, pl, u)
	}
	if b, _, _ = DiscountSummary(0.7, 0.8, 0.2, 1.5); b != 0.7 {
		t.Fatalf("alpha clamps to 1, got belief %g", b)
	}
}

func TestDiscounterAlphaClamped(t *testing.T) {
	// A misbehaving discounter returning out-of-range α must surface as an
	// error from Discount, not corrupt masses.
	df, err := NewDiagnosticFuser(discountGroups)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := df.AddReportFrom("pump", "unbalance", "dc-0", dt, 0.7); err != nil {
		t.Fatal(err)
	}
	df.SetDiscounter(&fakeDiscounter{alpha: map[string]float64{"dc-0": -0.5}})
	if _, err := df.Belief("pump", "unbalance"); err == nil {
		t.Fatal("negative reliability should error")
	}
}
