package fusion

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/proto"
)

// FuseConservative combines prognostic vectors per §5.4: "combine the lists
// taking the most conservative estimate at any given time period, and
// interpolating a smooth curve from point to point". Conservative means the
// highest failure probability — the fused curve is the pointwise maximum of
// the input curves (each interpolated/extrapolated per proto's §5.4
// semantics), sampled at the union of the inputs' horizons and simplified
// by dropping collinear interior points.
//
// The paper's worked examples hold by construction: a weaker report whose
// point lies under the existing curve is ignored (the fused curve equals
// the original); a stronger report dominates at its horizon and steepens
// the extrapolated tail, indicating "an even earlier demise".
func FuseConservative(vectors ...proto.PrognosticVector) (proto.PrognosticVector, error) {
	var nonEmpty []proto.PrognosticVector
	for i, v := range vectors {
		if err := v.Validate(); err != nil {
			return nil, fmt.Errorf("fusion: vector %d: %w", i, err)
		}
		if len(v) > 0 {
			nonEmpty = append(nonEmpty, v)
		}
	}
	if len(nonEmpty) == 0 {
		return nil, nil
	}
	if len(nonEmpty) == 1 {
		return append(proto.PrognosticVector(nil), nonEmpty[0]...), nil
	}
	// Union of horizons, plus each curve's clamp point — the horizon where
	// its extrapolated tail reaches probability 1 (a kink in the piecewise-
	// linear claim that must be a fused sample point for the fused curve to
	// dominate every input everywhere).
	horizonSet := map[float64]bool{}
	var maxH float64
	for _, v := range nonEmpty {
		for _, p := range v {
			horizonSet[p.HorizonSeconds] = true
			if p.HorizonSeconds > maxH {
				maxH = p.HorizonSeconds
			}
		}
	}
	for _, v := range nonEmpty {
		if h, ok := clampHorizon(v); ok && h < maxH {
			horizonSet[h] = true
		}
	}
	horizons := make([]float64, 0, len(horizonSet))
	//lint:allow maporder horizons are sorted before the fused curve is built
	for h := range horizonSet {
		horizons = append(horizons, h)
	}
	sort.Float64s(horizons)
	fused := make(proto.PrognosticVector, 0, len(horizons))
	prevP := 0.0
	for _, h := range horizons {
		best := 0.0
		for _, v := range nonEmpty {
			if p, claims := claimAt(v, h); claims && p > best {
				best = p
			}
		}
		// Max of monotone curves is monotone, but guard against float
		// artifacts so the output always validates.
		if best < prevP {
			best = prevP
		}
		fused = append(fused, proto.PrognosticPoint{Probability: best, HorizonSeconds: h})
		prevP = best
	}
	return simplify(fused), nil
}

// clampHorizon returns the horizon at which v's extrapolated tail reaches
// probability 1, if it does so at a finite point past its last sample.
func clampHorizon(v proto.PrognosticVector) (float64, bool) {
	if len(v) == 0 {
		return 0, false
	}
	last := v[len(v)-1]
	if last.Probability >= 1 {
		return last.HorizonSeconds, true
	}
	var slope float64
	if len(v) >= 2 {
		pen := v[len(v)-2]
		if last.HorizonSeconds > pen.HorizonSeconds {
			slope = (last.Probability - pen.Probability) / (last.HorizonSeconds - pen.HorizonSeconds)
		}
	} else if last.HorizonSeconds > 0 {
		slope = last.Probability / last.HorizonSeconds
	}
	if slope <= 0 {
		return 0, false
	}
	return last.HorizonSeconds + (1-last.Probability)/slope, true
}

// claimAt evaluates one report's failure-probability claim at horizon h
// seconds. A report makes no claim before its own first horizon — this is
// what makes the §5.4 example hold: the weak ((4.5 months, .12)) report is
// ignored rather than dragging the fused curve up at 3 months, because it
// says nothing about 3 months. Within its span the report interpolates
// linearly; beyond its last point it extrapolates along the last segment's
// slope (a single-point report extrapolates from the origin), clamped to 1.
func claimAt(v proto.PrognosticVector, h float64) (float64, bool) {
	if len(v) == 0 || h < v[0].HorizonSeconds {
		return 0, false
	}
	t := time.Duration(h * float64(time.Second))
	return v.ProbabilityAt(t), true
}

// simplify removes interior points that lie (within tolerance) on the line
// between their neighbours, so a dominated report leaves no trace in the
// fused vector.
func simplify(v proto.PrognosticVector) proto.PrognosticVector {
	if len(v) <= 2 {
		return v
	}
	const tol = 1e-9
	out := proto.PrognosticVector{v[0]}
	for i := 1; i < len(v)-1; i++ {
		a := out[len(out)-1]
		b := v[i]
		c := v[i+1]
		span := c.HorizonSeconds - a.HorizonSeconds
		if span <= 0 {
			continue
		}
		frac := (b.HorizonSeconds - a.HorizonSeconds) / span
		interp := a.Probability + frac*(c.Probability-a.Probability)
		if math.Abs(b.Probability-interp) > tol {
			out = append(out, b)
		}
	}
	out = append(out, v[len(v)-1])
	return out
}

// PrognosticFuser accumulates prognostic vectors per (component, condition)
// and keeps the running conservative fusion. Safe for concurrent use.
// Per §5.6, "prognostic knowledge fusion generates a new prognostic vector
// for each suspect component whenever a new prognostic report arrives."
type PrognosticFuser struct {
	mu    sync.RWMutex
	fused map[progKey]proto.PrognosticVector
}

type progKey struct{ component, condition string }

// NewPrognosticFuser returns an empty prognostic fuser.
func NewPrognosticFuser() *PrognosticFuser {
	return &PrognosticFuser{fused: make(map[progKey]proto.PrognosticVector)}
}

// AddReport fuses a new prognostic vector for the (component, condition)
// pair and returns the updated fused vector.
func (pf *PrognosticFuser) AddReport(component, condition string, v proto.PrognosticVector) (proto.PrognosticVector, error) {
	if component == "" || condition == "" {
		return nil, fmt.Errorf("fusion: empty component or condition")
	}
	if err := v.Validate(); err != nil {
		return nil, err
	}
	if len(v) == 0 {
		return pf.Fused(component, condition), nil
	}
	pf.mu.Lock()
	defer pf.mu.Unlock()
	k := progKey{component, condition}
	cur := pf.fused[k]
	var fused proto.PrognosticVector
	var err error
	if len(cur) == 0 {
		fused = append(proto.PrognosticVector(nil), v...)
	} else {
		fused, err = FuseConservative(cur, v)
		if err != nil {
			return nil, err
		}
	}
	pf.fused[k] = fused
	return append(proto.PrognosticVector(nil), fused...), nil
}

// Fused returns the current fused vector for a (component, condition) pair
// (nil when no prognostic reports have arrived).
func (pf *PrognosticFuser) Fused(component, condition string) proto.PrognosticVector {
	pf.mu.RLock()
	defer pf.mu.RUnlock()
	v := pf.fused[progKey{component, condition}]
	return append(proto.PrognosticVector(nil), v...)
}

// Conditions returns the conditions with fused prognostics for a component.
func (pf *PrognosticFuser) Conditions(component string) []string {
	pf.mu.RLock()
	defer pf.mu.RUnlock()
	var out []string
	//lint:allow maporder condition names are sorted before return
	for k := range pf.fused {
		if k.component == component {
			out = append(out, k.condition)
		}
	}
	sort.Strings(out)
	return out
}

// TimeToFailure returns the earliest fused horizon at which the failure
// probability reaches target, the §3.3 "time to failure" estimate.
func (pf *PrognosticFuser) TimeToFailure(component, condition string, target float64, max time.Duration) (time.Duration, bool) {
	return pf.Fused(component, condition).TimeToProbability(target, max)
}
