package pdme

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fusion"
	"repro/internal/oosm"
	"repro/internal/proto"
	"repro/internal/relstore"
)

func testGroups() fusion.Groups {
	return fusion.Groups{
		"electrical": {"motor rotor bar problem", "stator electrical unbalance"},
		"structural": {"motor imbalance", "motor misalignment"},
		"lubricant":  {"oil whirl", "motor bearing outer race defect"},
	}
}

func newTestPDME(t testing.TB) *PDME {
	t.Helper()
	model, err := oosm.NewModel(relstore.NewMemory())
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(model, testGroups())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func report(ks, component, condition string, sev, belief float64, at time.Time, vec proto.PrognosticVector) *proto.Report {
	return &proto.Report{
		DCID:               "dc-1",
		KnowledgeSourceID:  ks,
		SensedObjectID:     component,
		MachineConditionID: condition,
		Severity:           sev,
		Belief:             belief,
		Timestamp:          at,
		Prognostics:        vec,
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, testGroups()); err == nil {
		t.Error("nil model")
	}
	model, err := oosm.NewModel(relstore.NewMemory())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(model, fusion.Groups{}); err == nil {
		t.Error("empty groups")
	}
}

func TestDeliverFusesViaOOSMEvents(t *testing.T) {
	p := newTestPDME(t)
	defer p.Close()
	at := time.Date(1998, 9, 1, 12, 0, 0, 0, time.UTC)
	if err := p.Deliver(report("ks/dli", "motor/1", "motor imbalance", 0.5, 0.6, at, nil)); err != nil {
		t.Fatal(err)
	}
	b, err := p.Belief("motor/1", "motor imbalance")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b-0.6) > 1e-9 {
		t.Errorf("belief %g", b)
	}
	// Reinforcing report from another source.
	if err := p.Deliver(report("ks/sbfr", "motor/1", "motor imbalance", 0.5, 0.5, at.Add(time.Minute), nil)); err != nil {
		t.Fatal(err)
	}
	b, _ = p.Belief("motor/1", "motor imbalance")
	if math.Abs(b-0.8) > 1e-9 {
		t.Errorf("fused belief %g, want 0.8", b)
	}
	if p.ReceivedReports() != 2 {
		t.Errorf("received %d", p.ReceivedReports())
	}
	// The report objects live in the OOSM repository.
	ids, err := p.Model().FindByProp(ReportClass, "sensed", "motor/1")
	if err != nil || len(ids) != 2 {
		t.Errorf("OOSM report repository: %v %v", ids, err)
	}
	// One conclusion object, updated in place.
	concl, err := p.Model().Instances(ConclusionClass)
	if err != nil || len(concl) != 1 {
		t.Fatalf("conclusions %v %v", concl, err)
	}
	props, err := p.Model().Get(concl[0])
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(props["belief"].(float64)-0.8) > 1e-9 {
		t.Errorf("conclusion belief %v", props["belief"])
	}
	if props["group"] != "structural" {
		t.Errorf("conclusion group %v", props["group"])
	}
	u := props["unknown"].(float64)
	if math.Abs(u-0.2) > 1e-9 {
		t.Errorf("conclusion unknown %g", u)
	}
}

func TestDeliverValidation(t *testing.T) {
	p := newTestPDME(t)
	defer p.Close()
	at := time.Now()
	bad := report("ks", "m", "motor imbalance", 2.0, 0.5, at, nil)
	if err := p.Deliver(bad); err == nil {
		t.Error("invalid report accepted")
	}
	unknownCond := report("ks", "m", "ghost condition", 0.5, 0.5, at, nil)
	if err := p.Deliver(unknownCond); err == nil {
		t.Error("condition outside groups accepted")
	}
}

func TestPrognosticFusionAcrossSources(t *testing.T) {
	p := newTestPDME(t)
	defer p.Close()
	at := time.Now()
	v1 := proto.PrognosticVector{
		{Probability: 0.01, HorizonSeconds: 3 * 30 * 86400},
		{Probability: 0.5, HorizonSeconds: 4 * 30 * 86400},
		{Probability: 0.99, HorizonSeconds: 5 * 30 * 86400},
	}
	v2 := proto.PrognosticVector{{Probability: 0.95, HorizonSeconds: 4.5 * 30 * 86400}}
	if err := p.Deliver(report("ks/dli", "motor/1", "oil whirl", 0.5, 0.7, at, v1)); err != nil {
		t.Fatal(err)
	}
	if err := p.Deliver(report("ks/wnn", "motor/1", "oil whirl", 0.6, 0.7, at, v2)); err != nil {
		t.Fatal(err)
	}
	fused := p.FusedPrognostic("motor/1", "oil whirl")
	if len(fused) == 0 {
		t.Fatal("no fused prognostic")
	}
	at45 := fused.ProbabilityAt(time.Duration(4.5 * 30 * 86400 * float64(time.Second)))
	if math.Abs(at45-0.95) > 1e-9 {
		t.Errorf("fused at 4.5mo = %g, want 0.95 (dominating report)", at45)
	}
}

func TestPrioritizedList(t *testing.T) {
	p := newTestPDME(t)
	defer p.Close()
	at := time.Now()
	day := 86400.0
	urgent := proto.PrognosticVector{{Probability: 0.9, HorizonSeconds: 3 * day}}
	lazy := proto.PrognosticVector{{Probability: 0.5, HorizonSeconds: 180 * day}}
	send := func(component, cond string, belief float64, vec proto.PrognosticVector) {
		t.Helper()
		if err := p.Deliver(report("ks", component, cond, 0.5, belief, at, vec)); err != nil {
			t.Fatal(err)
		}
	}
	send("pump/2", "oil whirl", 0.4, lazy)
	send("motor/1", "motor imbalance", 0.9, urgent)
	send("motor/1", "motor rotor bar problem", 0.9, lazy)

	list := p.PrioritizedList()
	if len(list) != 3 {
		t.Fatalf("list %v", list)
	}
	// Equal beliefs: the urgent prognostic ranks first.
	if list[0].Condition != "motor imbalance" {
		t.Errorf("top item %q", list[0].Condition)
	}
	if list[1].Condition != "motor rotor bar problem" {
		t.Errorf("second item %q", list[1].Condition)
	}
	if list[2].Component != "pump/2" {
		t.Errorf("third item %+v", list[2])
	}
	if !list[0].HasPrognostic || list[0].TimeToHalf > 4*24*time.Hour {
		t.Errorf("urgent item prognostic %v", list[0].TimeToHalf)
	}
}

// TestFigure2Scenario reproduces the Figure 2 display state: "for machine
// A/C Compressor Motor 1, six condition reports from four different
// knowledge sources (expert systems) have been received, some conflicting
// and some reinforcing", with fused predictions rendered below.
func TestFigure2Scenario(t *testing.T) {
	p := newTestPDME(t)
	defer p.Close()
	machine := "A/C Compressor Motor 1"
	at := time.Date(1998, 9, 1, 8, 0, 0, 0, time.UTC)
	day := 86400.0
	vec := proto.PrognosticVector{{Probability: 0.5, HorizonSeconds: 30 * day}}
	reports := []*proto.Report{
		report("ks/dli", machine, "motor imbalance", 0.55, 0.8, at, vec),
		report("ks/sbfr", machine, "motor imbalance", 0.5, 0.6, at.Add(5*time.Minute), nil),
		report("ks/wnn", machine, "motor misalignment", 0.4, 0.5, at.Add(10*time.Minute), nil),
		report("ks/fuzzy", machine, "oil whirl", 0.3, 0.4, at.Add(15*time.Minute), vec),
		report("ks/dli", machine, "oil whirl", 0.35, 0.5, at.Add(20*time.Minute), nil),
		report("ks/wnn", machine, "motor rotor bar problem", 0.6, 0.7, at.Add(25*time.Minute), nil),
	}
	for _, r := range reports {
		if err := p.Deliver(r); err != nil {
			t.Fatal(err)
		}
	}
	view, err := p.RenderBrowser(machine)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(view, "6 condition reports from 4 knowledge sources") {
		t.Errorf("header wrong:\n%s", view)
	}
	for _, want := range []string{
		"motor imbalance", "motor misalignment", "oil whirl",
		"motor rotor bar problem", "fused predictions", "unknown possibilities",
	} {
		if !strings.Contains(view, want) {
			t.Errorf("view missing %q:\n%s", want, view)
		}
	}
	// Conflicting in-group reports (imbalance vs misalignment) suppress
	// each other relative to reinforced imbalance.
	bImb, _ := p.Belief(machine, "motor imbalance")
	bMis, _ := p.Belief(machine, "motor misalignment")
	if bImb <= bMis {
		t.Errorf("reinforced imbalance (%g) should outrank single misalignment (%g)", bImb, bMis)
	}
	t.Logf("\n%s", view)
}

func TestConclusionLinksToModelObject(t *testing.T) {
	p := newTestPDME(t)
	defer p.Close()
	// Create the sensed machine in the model first.
	if err := p.Model().RegisterClass(oosm.Class{
		Name:  "motor",
		Props: map[string]oosm.PropType{"name": oosm.PropString},
	}); err != nil {
		t.Fatal(err)
	}
	id, err := p.Model().Create("motor", map[string]any{"name": "M1"})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Deliver(report("ks", id.String(), "motor imbalance", 0.5, 0.6, time.Now(), nil)); err != nil {
		t.Fatal(err)
	}
	// The conclusion refers-to the machine object.
	concls, err := p.Model().RelatedTo(id, oosm.RefersTo)
	if err != nil || len(concls) != 1 {
		t.Fatalf("refers-to links: %v %v", concls, err)
	}
	if concls[0].Class != ConclusionClass {
		t.Errorf("linked class %s", concls[0].Class)
	}
}

func TestServeOverTCP(t *testing.T) {
	p := newTestPDME(t)
	defer p.Close()
	addr, srv, err := p.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := proto.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(report("ks", "motor/1", "motor imbalance", 0.5, 0.7, time.Now(), nil)); err != nil {
		t.Fatal(err)
	}
	b, _ := p.Belief("motor/1", "motor imbalance")
	if math.Abs(b-0.7) > 1e-9 {
		t.Errorf("belief over TCP %g", b)
	}
	// Rejected conditions surface to the TCP client.
	if err := c.Send(report("ks", "motor/1", "ghost", 0.5, 0.7, time.Now(), nil)); err == nil {
		t.Error("ghost condition should be rejected over TCP")
	}
}

func TestConcurrentDelivery(t *testing.T) {
	p := newTestPDME(t)
	defer p.Close()
	var wg sync.WaitGroup
	conds := []string{"motor imbalance", "oil whirl", "motor rotor bar problem"}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				r := report("ks", "m", conds[i%3], 0.5, 0.3, time.Now(), nil)
				if err := p.Deliver(r); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if p.ReceivedReports() != 160 {
		t.Errorf("received %d", p.ReceivedReports())
	}
	for _, c := range conds {
		b, err := p.Belief("m", c)
		if err != nil || b <= 0.99 {
			t.Errorf("%s: belief %g err %v", c, b, err)
		}
	}
}

func TestRegisterKnowledgeSource(t *testing.T) {
	p := newTestPDME(t)
	defer p.Close()
	id, err := p.RegisterKnowledgeSource("ks/dli", "DLI vibration expert system")
	if err != nil {
		t.Fatal(err)
	}
	props, err := p.Model().Get(id)
	if err != nil || props["name"] != "ks/dli" {
		t.Errorf("%v %v", props, err)
	}
}

func BenchmarkDeliverAndFuse(b *testing.B) {
	model, err := oosm.NewModel(relstore.NewMemory())
	if err != nil {
		b.Fatal(err)
	}
	p, err := New(model, testGroups())
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	at := time.Now()
	conds := []string{"motor imbalance", "oil whirl", "motor rotor bar problem"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := report("ks", "m", conds[i%3], 0.5, 0.3, at, nil)
		if err := p.Deliver(r); err != nil {
			b.Fatal(err)
		}
	}
}
