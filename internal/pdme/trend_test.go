package pdme

import (
	"math"
	"testing"
	"time"
)

// TestTrendProjectionOnDevelopingFault exercises the §10.1 temporal
// reasoning: a fault whose reported severity rises steadily is projected to
// reach the Extreme grade at the right time.
func TestTrendProjectionOnDevelopingFault(t *testing.T) {
	p := newTestPDME(t)
	defer p.Close()
	start := time.Date(1998, 9, 1, 0, 0, 0, 0, time.UTC)
	// Severity grows 0.05 per 4-hour test: 0.20, 0.25, ... 0.55 over 8
	// reports.
	for i := 0; i < 8; i++ {
		sev := 0.20 + 0.05*float64(i)
		r := report("ks/dli", "motor/1", "motor imbalance", sev, 0.8,
			start.Add(time.Duration(i)*4*time.Hour), nil)
		if err := p.Deliver(r); err != nil {
			t.Fatal(err)
		}
	}
	proj, err := p.TrendProjection("motor/1", "motor imbalance", 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if !proj.Reaches {
		t.Fatal("rising severity should project a crossing")
	}
	// 0.75 = 0.20 + 0.05·k → k = 11 tests → 44 hours after start.
	want := start.Add(44 * time.Hour)
	if d := proj.Crossing.Sub(want); math.Abs(d.Hours()) > 1 {
		t.Errorf("crossing %v, want %v (Δ %v)", proj.Crossing, want, d)
	}
	// History is retrievable.
	if h := p.SeverityHistory("motor/1", "motor imbalance"); len(h) != 8 {
		t.Errorf("history %d", len(h))
	}
	// Too few observations for another pair.
	if err := p.Deliver(report("ks", "motor/1", "oil whirl", 0.3, 0.5, start, nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.TrendProjection("motor/1", "oil whirl", 0.75); err == nil {
		t.Error("one observation should not fit")
	}
}

func TestTrendProjectionStableFaultDoesNotCross(t *testing.T) {
	p := newTestPDME(t)
	defer p.Close()
	start := time.Date(1998, 9, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 6; i++ {
		r := report("ks/dli", "motor/1", "motor imbalance", 0.35, 0.8,
			start.Add(time.Duration(i)*4*time.Hour), nil)
		if err := p.Deliver(r); err != nil {
			t.Fatal(err)
		}
	}
	proj, err := p.TrendProjection("motor/1", "motor imbalance", 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if proj.Reaches {
		t.Errorf("stable severity projected a crossing at %v", proj.Crossing)
	}
}
