package pdme

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/oosm"
	"repro/internal/proto"
)

// TestResidentModelBasedAlgorithm hosts the §5.7 example: "a model-based
// diagnostic and prognostic system ... might use only the OOSM". The toy
// algorithm reasons purely over the relationship graph — any motor that is
// part-of a chiller whose sibling compressor already carries a strong fused
// oil-whirl conclusion gets a precautionary misalignment check report.
func TestResidentModelBasedAlgorithm(t *testing.T) {
	p, ids := shipFixture(t)
	defer p.Close()
	at := time.Date(1998, 11, 1, 0, 0, 0, 0, time.UTC)

	// Establish the compressor conclusion via the normal DC path.
	if err := p.Deliver(report("ks/dli", ids["compressor"].String(), "oil whirl", 0.6, 0.9, at, nil)); err != nil {
		t.Fatal(err)
	}

	modelBased := func(model *oosm.Model) ([]*proto.Report, error) {
		var out []*proto.Report
		chillers, err := model.Instances("chiller")
		if err != nil {
			return nil, err
		}
		for _, ch := range chillers {
			parts, err := model.RelatedTo(ch, oosm.PartOf)
			if err != nil {
				return nil, err
			}
			troubled := false
			for _, part := range parts {
				if b, err := p.Belief(part.String(), "oil whirl"); err == nil && b > 0.7 {
					troubled = true
				}
			}
			if !troubled {
				continue
			}
			for _, part := range parts {
				if part.Class != "motor" {
					continue
				}
				out = append(out, &proto.Report{
					KnowledgeSourceID:  "ks/model-based",
					SensedObjectID:     part.String(),
					MachineConditionID: "motor misalignment",
					Severity:           0.3,
					Belief:             0.4,
					Explanation:        "model-based: sibling compressor instability warrants alignment check",
					Timestamp:          at.Add(time.Minute),
				})
			}
		}
		return out, nil
	}
	if err := p.HostResidentAlgorithm("model-based", modelBased); err != nil {
		t.Fatal(err)
	}
	// Registration validation.
	if err := p.HostResidentAlgorithm("model-based", modelBased); err == nil {
		t.Error("duplicate name accepted")
	}
	if err := p.HostResidentAlgorithm("", modelBased); err == nil {
		t.Error("empty name accepted")
	}
	if err := p.HostResidentAlgorithm("x", nil); err == nil {
		t.Error("nil algorithm accepted")
	}
	if names := p.ResidentAlgorithms(); len(names) != 1 || names[0] != "model-based" {
		t.Errorf("hosted %v", names)
	}

	n, err := p.RunResidentAlgorithms()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("delivered %d resident reports, want 1", n)
	}
	b, err := p.Belief(ids["motor"].String(), "motor misalignment")
	if err != nil {
		t.Fatal(err)
	}
	if b <= 0 {
		t.Error("resident report did not fuse")
	}
	// The report is in the OOSM repository like any DC report.
	reports, err := p.Model().FindByProp(ReportClass, "ks_id", "ks/model-based")
	if err != nil || len(reports) != 1 {
		t.Errorf("resident report not in repository: %v %v", reports, err)
	}
}

func TestResidentAlgorithmErrorsPropagate(t *testing.T) {
	p := newTestPDME(t)
	defer p.Close()
	if err := p.HostResidentAlgorithm("boom", func(*oosm.Model) ([]*proto.Report, error) {
		return nil, fmt.Errorf("model unavailable")
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunResidentAlgorithms(); err == nil {
		t.Fatal("algorithm error should propagate")
	}
	// A report that fails validation also surfaces.
	p2 := newTestPDME(t)
	defer p2.Close()
	if err := p2.HostResidentAlgorithm("bad-report", func(*oosm.Model) ([]*proto.Report, error) {
		return []*proto.Report{{KnowledgeSourceID: "x"}}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := p2.RunResidentAlgorithms(); err == nil {
		t.Fatal("invalid resident report should propagate")
	}
}
