package pdme

import (
	"math"
	"testing"
	"time"

	"repro/internal/health"
	"repro/internal/proto"
)

var healthT0 = time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)

func testHealthConfig() health.Config {
	return health.Config{
		LateAfter:        30 * time.Minute,
		SilentAfter:      time.Hour,
		FreshFor:         time.Hour,
		StalenessHorizon: 6 * time.Hour,
		ReliabilityFloor: 0.05,
	}
}

func dcReport(dcid, component, condition string, belief float64, at time.Time) *proto.Report {
	r := report("ks/dli", component, condition, 0.5, belief, at, nil)
	r.DCID = dcid
	return r
}

func heartbeat(dcid string, at time.Time) *proto.Heartbeat {
	return &proto.Heartbeat{DCID: dcid, SentAt: at, Incarnation: 1}
}

func TestHealthDiscountingDecayAndRecovery(t *testing.T) {
	p := newTestPDME(t)
	defer p.Close()
	if err := p.ConfigureHealth(testHealthConfig()); err != nil {
		t.Fatal(err)
	}
	// dc-0 asserts an imbalance; dc-1 only heartbeats (it advances event
	// time without contributing evidence).
	if err := p.Deliver(dcReport("dc-0", "chiller/1", "motor imbalance", 0.8, healthT0)); err != nil {
		t.Fatal(err)
	}
	fresh, err := p.Belief("chiller/1", "motor imbalance")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fresh-0.8) > 1e-12 {
		t.Fatalf("fresh belief %g, want 0.8", fresh)
	}
	freshUnknown, _ := p.Unknown("chiller/1", "structural")

	// Silence dc-0: event time advances through dc-1's heartbeats. Belief
	// must fall monotonically toward Unknown as staleness grows.
	prevBelief, prevUnknown := fresh, freshUnknown
	for _, age := range []time.Duration{2 * time.Hour, 4 * time.Hour, 7 * time.Hour} {
		if err := p.ObserveHeartbeat(heartbeat("dc-1", healthT0.Add(age))); err != nil {
			t.Fatal(err)
		}
		bel, err := p.Belief("chiller/1", "motor imbalance")
		if err != nil {
			t.Fatal(err)
		}
		unk, err := p.Unknown("chiller/1", "structural")
		if err != nil {
			t.Fatal(err)
		}
		if bel >= prevBelief || unk <= prevUnknown {
			t.Fatalf("at age %v belief %g (prev %g) / unknown %g (prev %g): no decay", age, bel, prevBelief, unk, prevUnknown)
		}
		prevBelief, prevUnknown = bel, unk
	}
	if p.Health().StateOf("dc-0") != health.StateSilent {
		t.Fatalf("dc-0 state %v, want silent", p.Health().StateOf("dc-0"))
	}
	// Past the horizon with the silent penalty, belief sits at the floor's
	// scale and the prioritized list marks the conclusion degraded.
	items := p.PrioritizedList()
	if len(items) != 1 || !items[0].Degraded {
		t.Fatalf("prioritized list %+v, want one degraded item", items)
	}
	// Recovery: dc-0 reports again with a fresh timestamp; belief strictly
	// exceeds the single-report value (stale evidence still corroborates).
	if err := p.Deliver(dcReport("dc-0", "chiller/1", "motor imbalance", 0.8, healthT0.Add(7*time.Hour))); err != nil {
		t.Fatal(err)
	}
	bel, _ := p.Belief("chiller/1", "motor imbalance")
	if bel < 0.8-1e-9 {
		t.Fatalf("post-recovery belief %g, want at least 0.8", bel)
	}
	if p.Health().StateOf("dc-0") != health.StateAlive {
		t.Fatalf("dc-0 state %v after recovery, want alive", p.Health().StateOf("dc-0"))
	}
	items = p.PrioritizedList()
	if len(items) != 1 || items[0].Degraded {
		t.Fatalf("prioritized list %+v, want recovery to clear degraded", items)
	}
}

func TestHealthRegistryTracksWithoutDiscounting(t *testing.T) {
	// Without ConfigureHealth the registry still tracks liveness, but
	// fused numbers never move with staleness (backward compatibility).
	p := newTestPDME(t)
	defer p.Close()
	if err := p.Deliver(dcReport("dc-0", "chiller/1", "motor imbalance", 0.8, healthT0)); err != nil {
		t.Fatal(err)
	}
	if err := p.ObserveHeartbeat(heartbeat("dc-1", healthT0.Add(24*time.Hour))); err != nil {
		t.Fatal(err)
	}
	if got := p.Health().StateOf("dc-0"); got != health.StateSilent {
		t.Fatalf("dc-0 state %v, want silent (tracking always on)", got)
	}
	bel, err := p.Belief("chiller/1", "motor imbalance")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bel-0.8) > 1e-12 {
		t.Fatalf("belief %g moved without discounting enabled", bel)
	}
	snap := p.Health().Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot %+v, want dc-0 and dc-1", snap)
	}
	if len(snap[0].Sources) != 1 || snap[0].Sources[0].Source != "ks/dli" {
		t.Fatalf("dc-0 sources %+v", snap[0].Sources)
	}
}

func TestSuspectChannelsStoredInModel(t *testing.T) {
	p := newTestPDME(t)
	defer p.Close()
	r := dcReport("dc-0", "chiller/1", "motor imbalance", 0.15, healthT0)
	r.SuspectChannels = []string{"vib/motor-de", "proc/evap_temp"}
	if err := p.Deliver(r); err != nil {
		t.Fatal(err)
	}
	ids, err := p.Model().FindByProp(ReportClass, "suspect", "vib/motor-de,proc/evap_temp")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 {
		t.Fatalf("stored suspect prop not queryable: %v", ids)
	}
}

func TestConfigureHealthRejectsBadConfig(t *testing.T) {
	p := newTestPDME(t)
	defer p.Close()
	bad := testHealthConfig()
	bad.ReliabilityFloor = 1.5
	if err := p.ConfigureHealth(bad); err == nil {
		t.Fatal("invalid health config should be rejected")
	}
}
