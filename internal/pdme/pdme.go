// Package pdme implements the Prognostic/Diagnostic Monitoring Engine, "the
// logical center of the MPROS system" (§3.1): it collects diagnostic and
// prognostic conclusions from DC-resident algorithms, fuses conflicting and
// reinforcing source conclusions, and forms "a prioritized list for the use
// of maintenance personnel".
//
// The knowledge-fusion wiring follows §5.1's four-step format exactly:
//
//  1. New reports arriving to the PDME are posted in the OOSM.
//  2. New reports posted in the OOSM generate "new data" messages to the
//     knowledge fusion components (the OOSM event model, §4.5).
//  3. The knowledge fusion components access the newly arrived data from
//     the OOSM and perform diagnostic and prognostic fusion.
//  4. Conclusions from the knowledge fusion components are posted to the
//     OOSM and presented in user displays.
//
// The PDME implements proto.Sink, so it terminates both the TCP report
// server and the in-process bus.
package pdme

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/fusion"
	"repro/internal/health"
	"repro/internal/historian"
	"repro/internal/journal"
	"repro/internal/oosm"
	"repro/internal/proto"
	"repro/internal/trend"
)

// Class names the PDME registers in the OOSM.
const (
	// ReportClass holds §7.2 failure prediction reports.
	ReportClass = "failure_prediction_report"
	// ConclusionClass holds fused KF conclusions.
	ConclusionClass = "kf_conclusion"
	// KnowledgeSourceClass registers report-producing expert systems.
	KnowledgeSourceClass = "knowledge_source"
)

// PDME is the monitoring engine.
type PDME struct {
	model *oosm.Model
	diag  *fusion.DiagnosticFuser
	prog  *fusion.PrognosticFuser
	// hist is the degradation historian (§4.6 data management): fused
	// severities and lifetime archives land here, and the §10.1 consumers
	// (trend projection, hazard refinement) query it back.
	hist *historian.Store
	// ownHist marks a store the PDME created itself (closed on Close).
	ownHist bool

	mu sync.Mutex
	// conclusionIDs maps component|condition to the OOSM conclusion object,
	// so fused updates rewrite one object instead of accumulating.
	conclusionIDs map[string]oosm.ObjectID
	received      int
	sub           *oosm.Subscription
	// resident hosts §5.7 PDME-resident algorithms.
	resident residentHost
	// dedup suppresses at-least-once redelivery from DC uplinks. It lives
	// on the PDME (not the server) so suppression survives a report-server
	// Close/Serve bounce — evidence is never double-counted across restarts.
	dedup *proto.Dedup
	// registry tracks fleet health from heartbeats and report arrivals. It
	// always exists (event-time, default thresholds) so health displays
	// work out of the box; staleness discounting of fused evidence only
	// engages after ConfigureHealth.
	registry *health.Registry
	// inv, when set, brackets every delivery's fusion-state mutation so a
	// read-side cache can refuse to serve or store across the write window.
	inv Invalidator

	// acceptMu orders accepted envelopes against checkpoints: deliveries
	// and heartbeats hold the read side across journal append + state
	// mutation, Checkpoint holds the write side while pinning its watermark
	// and snapshotting, so a checkpoint always describes a whole prefix of
	// the journal.
	acceptMu sync.RWMutex
	// jrnl, when set, is the durability journal (see journal.go); guarded
	// by mu like the other handles.
	jrnl            *journal.Journal
	checkpointEvery int
	journalErr      error
	// ckptFlight keeps automatic checkpoints single-flight.
	ckptFlight sync.Mutex
}

// Invalidator is the read-side cache's write-window hook. BeginMutation is
// called before a delivered report touches any fusion state for the
// (component, condition) pair, EndMutation after the report's fusion,
// conclusion post, and health observation have all completed — between the
// two, cached views of the pair (and of anything aggregating it) are neither
// served nor stored. Both run synchronously on the delivering goroutine and
// must not call back into the PDME.
type Invalidator interface {
	BeginMutation(component, condition string)
	EndMutation(component, condition string)
}

// New builds a PDME over a ship model and the logical failure groups for
// diagnostic fusion, backed by a private in-memory historian. It registers
// the report/conclusion classes and subscribes knowledge fusion to report
// arrivals.
func New(model *oosm.Model, groups fusion.Groups) (*PDME, error) {
	return NewWithHistorian(model, groups, nil)
}

// NewWithHistorian builds a PDME whose severity histories and lifetime
// archives live in the given historian store (nil: a private in-memory
// store) — pass a disk-backed store for the shipboard configuration, where
// degradation history must survive restarts.
func NewWithHistorian(model *oosm.Model, groups fusion.Groups, hist *historian.Store) (*PDME, error) {
	if model == nil {
		return nil, fmt.Errorf("pdme: nil model")
	}
	diag, err := fusion.NewDiagnosticFuser(groups)
	if err != nil {
		return nil, err
	}
	ownHist := hist == nil
	if hist == nil {
		hist, err = historian.Open(historian.Options{})
		if err != nil {
			return nil, err
		}
	}
	registry, err := health.NewRegistry(health.Config{})
	if err != nil {
		return nil, err
	}
	p := &PDME{
		model:         model,
		diag:          diag,
		prog:          fusion.NewPrognosticFuser(),
		hist:          hist,
		ownHist:       ownHist,
		conclusionIDs: make(map[string]oosm.ObjectID),
		dedup:         proto.NewDedup(0),
		registry:      registry,
	}
	classes := []oosm.Class{
		{Name: ReportClass, Props: map[string]oosm.PropType{
			"dc_id":       oosm.PropString,
			"ks_id":       oosm.PropString,
			"sensed":      oosm.PropString,
			"condition":   oosm.PropString,
			"severity":    oosm.PropFloat,
			"belief":      oosm.PropFloat,
			"explanation": oosm.PropString,
			"recommend":   oosm.PropString,
			"timestamp":   oosm.PropTime,
			"prognostics": oosm.PropString, // JSON-encoded §7.3 vector
			"suspect":     oosm.PropString, // comma-joined guard-flagged channels
		}},
		{Name: ConclusionClass, Props: map[string]oosm.PropType{
			"component":    oosm.PropString,
			"condition":    oosm.PropString,
			"group":        oosm.PropString,
			"belief":       oosm.PropFloat,
			"plausibility": oosm.PropFloat,
			"unknown":      oosm.PropFloat,
			"prognostics":  oosm.PropString,
			"updated_at":   oosm.PropTime,
		}},
		{Name: KnowledgeSourceClass, Props: map[string]oosm.PropType{
			"name":        oosm.PropString,
			"description": oosm.PropString,
		}},
	}
	for _, c := range classes {
		if err := model.RegisterClass(c); err != nil {
			return nil, err
		}
	}
	// §5.1 step 2: new reports in the OOSM wake knowledge fusion.
	p.sub = model.SubscribeClass(ReportClass, oosm.ObjectCreated, func(e oosm.Event) {
		// Event handlers must not fail the mutation; fusion errors are
		// recorded on the conclusion object pathway and surfaced by tests.
		_ = p.fuseFromModel(e.Object)
	})
	return p, nil
}

// Close cancels the model subscription, writes a final checkpoint and
// closes the journal when one is open, and, when the PDME owns its
// historian (New rather than NewWithHistorian), closes it.
func (p *PDME) Close() {
	p.sub.Cancel()
	if jr := p.journalHandle(); jr != nil {
		// Best effort: a failed final checkpoint just means the next open
		// replays the tail; every accepted record is already in the WAL.
		if err := p.Checkpoint(); err != nil {
			p.mu.Lock()
			p.journalErr = err
			p.mu.Unlock()
		}
		_ = jr.Close() // best effort: same reasoning
		p.mu.Lock()
		p.jrnl = nil
		p.mu.Unlock()
	}
	if p.ownHist {
		_ = p.hist.Close()
	}
}

// Historian exposes the degradation history store.
func (p *PDME) Historian() *historian.Store { return p.hist }

// Model returns the PDME's ship model.
func (p *PDME) Model() *oosm.Model { return p.model }

// SetInvalidator installs (or, with nil, removes) the read-side cache's
// write-window hook. Install before traffic: deliveries already in flight
// when the hook lands are not bracketed.
func (p *PDME) SetInvalidator(inv Invalidator) {
	p.mu.Lock()
	p.inv = inv
	p.mu.Unlock()
}

func (p *PDME) invalidator() Invalidator {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.inv
}

// Deliver implements proto.Sink: §5.1 step 1 — post the report into the
// OOSM. Fusion then runs via the model's event notification.
func (p *PDME) Deliver(r *proto.Report) error {
	return p.DeliverTagged(r, r.DCID, 0, 0)
}

// DeliverTagged implements proto.TaggedSink: Deliver plus the wire
// delivery tag, so a journaling PDME records (dcid, boot, seq) with the
// report and marks its own dedup window inside the accept critical
// section — a resend arriving after a crash + recovery is then still
// recognized as a duplicate. Untagged callers pass zero boot and seq.
func (p *PDME) DeliverTagged(r *proto.Report, dcid string, boot, seq uint64) error {
	if err := r.Validate(); err != nil {
		return err
	}
	// Reports about conditions outside every failure group are rejected at
	// the door so the sender sees the configuration problem.
	if _, err := p.diag.GroupOf(r.MachineConditionID); err != nil {
		return err
	}
	p.acceptMu.RLock()
	err := p.acceptReport(r, dcid, boot, seq)
	p.acceptMu.RUnlock()
	if err != nil {
		return err
	}
	p.maybeCheckpoint()
	return nil
}

// acceptReport is the accept critical section: journal append (fsynced),
// OOSM post + synchronous fusion, health observation, dedup mark. Callers
// hold acceptMu (read side).
func (p *PDME) acceptReport(r *proto.Report, dcid string, boot, seq uint64) error {
	// Open the read-side write window before any fusion state can change
	// (the OOSM create below runs fusion synchronously via the event model)
	// and close it only after the health observation lands too.
	if inv := p.invalidator(); inv != nil {
		inv.BeginMutation(r.SensedObjectID, r.MachineConditionID)
		defer inv.EndMutation(r.SensedObjectID, r.MachineConditionID)
	}
	// Write-ahead: the accepted envelope is durable before any derived
	// state changes, so a crash at any later point replays it.
	if err := p.appendJournal(journalKindReport, journaledReport{
		DCID: dcid, Boot: boot, Seq: seq, Report: r,
	}); err != nil {
		return err
	}
	progJSON, err := json.Marshal(r.Prognostics)
	if err != nil {
		return fmt.Errorf("pdme: encode prognostics: %w", err)
	}
	_, err = p.model.Create(ReportClass, map[string]any{
		"dc_id":       r.DCID,
		"ks_id":       r.KnowledgeSourceID,
		"sensed":      r.SensedObjectID,
		"condition":   r.MachineConditionID,
		"severity":    r.Severity,
		"belief":      r.Belief,
		"explanation": r.Explanation,
		"recommend":   r.Recommendations,
		"timestamp":   r.Timestamp,
		"prognostics": string(progJSON),
		"suspect":     strings.Join(r.SuspectChannels, ","),
	})
	if err != nil {
		return err
	}
	// A delivered report is liveness evidence for its DC, heartbeats or not.
	p.Health().ObserveReport(r.DCID, r.KnowledgeSourceID, r.Timestamp)
	// Mark the dedup window while still inside the accept section, so a
	// checkpoint can never see the fusion effect without the mark (the
	// server's own post-accept Mark is idempotent with this one).
	if seq > 0 {
		p.dedupHandle().Mark(dcid, boot, seq)
	}
	p.mu.Lock()
	p.received++
	p.mu.Unlock()
	return nil
}

// ObserveHeartbeat implements proto.HeartbeatSink by forwarding fleet
// heartbeats into the health registry (journaled: silence inferences
// survive a PDME crash).
func (p *PDME) ObserveHeartbeat(hb *proto.Heartbeat) error {
	return p.acceptHeartbeat(hb)
}

// SendHeartbeat lets a co-resident DC (wired straight to the PDME with no
// uplink in between) satisfy the dc.HeartbeatUplink contract: the heartbeat
// is observed directly, skipping the wire.
func (p *PDME) SendHeartbeat(hb *proto.Heartbeat) error {
	return p.acceptHeartbeat(hb)
}

func (p *PDME) acceptHeartbeat(hb *proto.Heartbeat) error {
	if err := hb.Validate(); err != nil {
		return err
	}
	p.acceptMu.RLock()
	err := func() error {
		if err := p.appendJournal(journalKindHeartbeat, hb); err != nil {
			return err
		}
		return p.Health().ObserveHeartbeat(hb)
	}()
	p.acceptMu.RUnlock()
	if err != nil {
		return err
	}
	p.maybeCheckpoint()
	return nil
}

// ConfigureDedup replaces the duplicate-suppression window with one of the
// given per-DC capacity (<=0: proto.DefaultDedupWindow, 4096 sequences).
// Size it above the deepest burst a DC spool can replay after an outage.
// Call before any traffic and before OpenJournal — replacing the window
// drops suppression history.
func (p *PDME) ConfigureDedup(window int) {
	p.mu.Lock()
	p.dedup = proto.NewDedup(window)
	p.mu.Unlock()
}

func (p *PDME) dedupHandle() *proto.Dedup {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dedup
}

// Health exposes the fleet-health registry for displays and tests.
func (p *PDME) Health() *health.Registry {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.registry
}

// ConfigureHealth replaces the health registry with one built from cfg and
// engages staleness discounting: from here on every source's fused evidence
// is Shafer-discounted by its report age and DC liveness state on each
// query, so beliefs decay toward Unknown when a DC goes quiet and recover
// when it returns. Call before any traffic — replacing the registry drops
// previously observed liveness history.
func (p *PDME) ConfigureHealth(cfg health.Config) error {
	registry, err := health.NewRegistry(cfg)
	if err != nil {
		return err
	}
	p.mu.Lock()
	p.registry = registry
	p.mu.Unlock()
	p.diag.SetDiscounter(registry)
	return nil
}

// fuseFromModel is §5.1 step 3: read the newly posted report back from the
// OOSM and run both fusion layers, then post conclusions (step 4).
func (p *PDME) fuseFromModel(reportID oosm.ObjectID) error {
	props, err := p.model.Get(reportID)
	if err != nil {
		return err
	}
	component, _ := props["sensed"].(string)
	condition, _ := props["condition"].(string)
	belief, _ := props["belief"].(float64)
	severity, _ := props["severity"].(float64)
	ts, _ := props["timestamp"].(time.Time)
	dcid, _ := props["dc_id"].(string)

	// §10.1 temporal reasoning: record the severity history in the
	// historian so developing faults can be projected forward (and, on
	// disk-backed stores, survive a PDME restart).
	if err := p.observeSeverity(component, condition, ts, severity); err != nil {
		return err
	}
	// Evidence is attributed to the originating DC so the health registry
	// can discount a stale source's whole contribution. Reports without a
	// DC id stay anonymous and are never discounted.
	fusedBelief, err := p.diag.AddReportFrom(component, condition, dcid, ts, belief)
	if err != nil {
		return err
	}
	var vec proto.PrognosticVector
	if s, ok := props["prognostics"].(string); ok && s != "" && s != "null" {
		if err := json.Unmarshal([]byte(s), &vec); err != nil {
			return fmt.Errorf("pdme: decode prognostics: %w", err)
		}
	}
	fusedVec := vec
	if len(vec) > 0 {
		fusedVec, err = p.prog.AddReport(component, condition, vec)
		if err != nil {
			return err
		}
	} else {
		fusedVec = p.prog.Fused(component, condition)
	}
	return p.postConclusion(component, condition, fusedBelief, fusedVec, ts)
}

// postConclusion writes (or rewrites) the fused conclusion object for a
// (component, condition) pair.
func (p *PDME) postConclusion(component, condition string, belief float64, vec proto.PrognosticVector, at time.Time) error {
	group, err := p.diag.GroupOf(condition)
	if err != nil {
		return err
	}
	pl, err := p.diag.Plausibility(component, condition)
	if err != nil {
		return err
	}
	unknown, err := p.diag.Unknown(component, group)
	if err != nil {
		return err
	}
	vecJSON, err := json.Marshal(vec)
	if err != nil {
		return err
	}
	props := map[string]any{
		"component":    component,
		"condition":    condition,
		"group":        group,
		"belief":       belief,
		"plausibility": pl,
		"unknown":      unknown,
		"prognostics":  string(vecJSON),
		"updated_at":   at,
	}
	key := component + "|" + condition
	p.mu.Lock()
	id, exists := p.conclusionIDs[key]
	p.mu.Unlock()
	if !exists {
		// A persistent model may already hold this pair's conclusion from a
		// previous process life; adopt it instead of accumulating twins.
		if adopted, ok := p.findConclusion(component, condition); ok {
			id, exists = adopted, true
			p.mu.Lock()
			p.conclusionIDs[key] = id
			p.mu.Unlock()
		}
	}
	if exists {
		return p.model.SetProps(id, props)
	}
	id, err = p.model.Create(ConclusionClass, props)
	if err != nil {
		return err
	}
	p.mu.Lock()
	p.conclusionIDs[key] = id
	p.mu.Unlock()
	// Link the conclusion to the sensed object when it exists in the model.
	if objID, err := oosm.ParseObjectID(component); err == nil && p.model.Exists(objID) {
		if err := p.model.Relate(oosm.RefersTo, id, objID); err != nil {
			return err
		}
	}
	return nil
}

// findConclusion looks a (component, condition) conclusion object up in
// the model itself, for processes whose conclusionIDs cache is younger
// than the model (recovery over a persistent store).
func (p *PDME) findConclusion(component, condition string) (oosm.ObjectID, bool) {
	ids, err := p.model.FindByProp(ConclusionClass, "component", component)
	if err != nil {
		return oosm.ObjectID{}, false
	}
	for _, id := range ids {
		props, err := p.model.Get(id)
		if err != nil {
			continue
		}
		if c, _ := props["condition"].(string); c == condition {
			return id, true
		}
	}
	return oosm.ObjectID{}, false
}

// ConclusionUpdatedAt returns the event time of the newest evidence folded
// into a (component, condition) conclusion — the conclusion object's
// updated_at property — and whether such a conclusion exists. Shard
// forwarders stamp outgoing FusedSummary envelopes with it, so aggregator
// ordering and staleness discounting run on event time, not arrival time.
func (p *PDME) ConclusionUpdatedAt(component, condition string) (time.Time, bool) {
	id, ok := p.findConclusion(component, condition)
	if !ok {
		return time.Time{}, false
	}
	props, err := p.model.Get(id)
	if err != nil {
		return time.Time{}, false
	}
	at, ok := props["updated_at"].(time.Time)
	return at, ok
}

// ReceivedReports returns the number of reports accepted.
func (p *PDME) ReceivedReports() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.received
}

// Belief returns the fused belief in a condition on a component.
func (p *PDME) Belief(component, condition string) (float64, error) {
	return p.diag.Belief(component, condition)
}

// Unknown returns the residual unknown mass for a component's group.
func (p *PDME) Unknown(component, group string) (float64, error) {
	return p.diag.Unknown(component, group)
}

// Plausibility returns the fused plausibility of a condition on a component.
func (p *PDME) Plausibility(component, condition string) (float64, error) {
	return p.diag.Plausibility(component, condition)
}

// GroupOf returns the logical failure group of a condition.
func (p *PDME) GroupOf(condition string) (string, error) {
	return p.diag.GroupOf(condition)
}

// GroupMembers returns the member conditions of a logical failure group —
// the invalidation unit for read-side caches, since evidence for any member
// reweights every other member's belief and the group's unknown mass.
func (p *PDME) GroupMembers(group string) []string {
	return p.diag.GroupMembers(group)
}

// ConditionSnapshot returns the full fused read-side state of a pair
// (belief, plausibility, group unknown, report count, reliability/degraded)
// in one atomic fusion read, plus the pair's fused prognostic vector.
func (p *PDME) ConditionSnapshot(component, condition string) (fusion.ConditionState, proto.PrognosticVector, error) {
	cs, err := p.diag.ConditionState(component, condition)
	if err != nil {
		return fusion.ConditionState{}, nil, err
	}
	return cs, p.prog.Fused(component, condition), nil
}

// FusedPrognostic returns the fused §7.3 vector for a pair.
func (p *PDME) FusedPrognostic(component, condition string) proto.PrognosticVector {
	return p.prog.Fused(component, condition)
}

// MaintenanceItem is one row of the prioritized maintenance list.
type MaintenanceItem struct {
	Component string
	fusion.ConditionBelief
	// TimeToHalf is the fused time until 50% failure probability (0 and
	// false when no prognostic exists).
	TimeToHalf    time.Duration
	HasPrognostic bool
}

// PrioritizedList returns fused conclusions across all components ranked
// most-urgent first: primarily by fused belief, with prognostic urgency
// (shorter time to 50% failure) breaking ties. The diagnostic half is one
// consistent snapshot (fusion.RankedAll): a report fused mid-call never
// appears for one component while missing for another.
func (p *PDME) PrioritizedList() []MaintenanceItem {
	var out []MaintenanceItem
	const horizon = 2 * 365 * 24 * time.Hour
	ranked := p.diag.RankedAll()
	components := make([]string, 0, len(ranked))
	//lint:allow maporder component names are sorted before the list is assembled
	for component := range ranked {
		components = append(components, component)
	}
	sort.Strings(components)
	for _, component := range components {
		for _, cb := range ranked[component] {
			item := MaintenanceItem{Component: component, ConditionBelief: cb}
			if d, ok := p.prog.TimeToFailure(component, cb.Condition, 0.5, horizon); ok {
				item.TimeToHalf = d
				item.HasPrognostic = true
			}
			out = append(out, item)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		//lint:allow floateq sort tie-break needs a strict weak order; a tolerance would make it intransitive
		if a.Belief != b.Belief {
			return a.Belief > b.Belief
		}
		switch {
		case a.HasPrognostic && b.HasPrognostic && a.TimeToHalf != b.TimeToHalf:
			return a.TimeToHalf < b.TimeToHalf
		case a.HasPrognostic != b.HasPrognostic:
			return a.HasPrognostic
		}
		if a.Component != b.Component {
			return a.Component < b.Component
		}
		return a.Condition < b.Condition
	})
	return out
}

// TrendProjection fits the severity history of a (component, condition)
// pair — queried back from the historian — and projects when it will reach
// the severity threshold: the §10.1 temporal-reasoning extension
// ("scrutinize failure histories and provide better projections of future
// faults as they develop"). It needs at least three reports for the pair.
func (p *PDME) TrendProjection(component, condition string, threshold float64) (trend.Projection, error) {
	return trend.ProjectPoints(p.SeverityHistory(component, condition), threshold)
}

// SeverityHistory returns the recorded severity observations for a pair in
// time order (historian queries sort, whatever the arrival order was).
func (p *PDME) SeverityHistory(component, condition string) []trend.Point {
	it, err := p.hist.Query(severityChannel(component, condition), time.Time{}, time.Time{})
	if err != nil {
		return nil // channel not yet created: no reports for the pair
	}
	points := make([]trend.Point, 0, it.Remaining())
	for it.Next() {
		s := it.At()
		points = append(points, trend.Point{At: s.At, Value: s.Value})
	}
	return points
}

// Serve starts a TCP report server delivering into this PDME and returns
// the bound address and the server handle for shutdown. Every Serve shares
// the PDME's dedup window, so sequence-tagged reports redelivered across a
// server restart are acked without a second fusion.
func (p *PDME) Serve(addr string) (string, *proto.Server, error) {
	return p.ServeWithIdleTimeout(addr, proto.DefaultIdleTimeout)
}

// ServeWithIdleTimeout is Serve with an explicit per-connection idle
// deadline (0 disables deadlines) for deployments whose DCs report rarely.
func (p *PDME) ServeWithIdleTimeout(addr string, idle time.Duration) (string, *proto.Server, error) {
	srv := proto.NewServer(p)
	srv.SetDedup(p.dedupHandle())
	srv.SetHeartbeatSink(p)
	srv.SetIdleTimeout(idle)
	bound, err := srv.Start(addr)
	if err != nil {
		return "", nil, err
	}
	return bound, srv, nil
}

// DedupHits returns how many redelivered reports were suppressed.
func (p *PDME) DedupHits() int64 { return p.dedupHandle().Hits() }
