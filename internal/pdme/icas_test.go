package pdme

import (
	"strings"
	"testing"
	"time"

	"repro/internal/proto"
)

func TestExportSnapshotRoundTrip(t *testing.T) {
	p, ids := shipFixture(t)
	defer p.Close()
	at := time.Date(1998, 10, 1, 0, 0, 0, 0, time.UTC)
	day := 86400.0
	vec := proto.PrognosticVector{{Probability: 0.6, HorizonSeconds: 20 * day}}
	if err := p.Deliver(report("ks/dli", ids["motor"].String(), "motor imbalance", 0.6, 0.9, at, vec)); err != nil {
		t.Fatal(err)
	}
	if err := p.Deliver(report("ks/wnn", ids["compressor"].String(), "oil whirl", 0.4, 0.5, at, nil)); err != nil {
		t.Fatal(err)
	}

	data, err := p.ExportJSON(at, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := ParseSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != SnapshotVersion || snap.Reports != 2 {
		t.Errorf("header %+v", snap)
	}
	if len(snap.Conditions) != 2 {
		t.Fatalf("conditions %v", snap.Conditions)
	}
	// Ranked: the strong imbalance first, with its prognostic horizon.
	first := snap.Conditions[0]
	if first.Condition != "motor imbalance" || first.Belief < 0.89 {
		t.Errorf("first condition %+v", first)
	}
	if first.TimeToHalfSec <= 0 {
		t.Error("missing time-to-half")
	}
	if first.Group == "" || first.Reports != 1 {
		t.Errorf("incomplete export %+v", first)
	}
	// The strong motor fault triggers a proximity advisory for the pump.
	if len(snap.Advisories) == 0 {
		t.Fatal("no advisories exported")
	}
	if snap.Advisories[0].Kind != "proximity" ||
		!strings.Contains(snap.Advisories[0].Subject, "pump") {
		t.Errorf("advisory %+v", snap.Advisories[0])
	}
}

func TestExportSnapshotValidation(t *testing.T) {
	p := newTestPDME(t)
	defer p.Close()
	if _, err := p.ExportSnapshot(time.Time{}, 2); err == nil {
		t.Error("zero time accepted")
	}
	// Threshold > 1 omits advisories without error.
	snap, err := p.ExportSnapshot(time.Now(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Advisories) != 0 || len(snap.Conditions) != 0 {
		t.Errorf("fresh snapshot not empty: %+v", snap)
	}
	// Bad payloads.
	if _, err := ParseSnapshot([]byte("{")); err == nil {
		t.Error("bad json accepted")
	}
	if _, err := ParseSnapshot([]byte(`{"version":"other/9"}`)); err == nil {
		t.Error("wrong version accepted")
	}
}
