package pdme

import (
	"strings"
	"testing"
	"time"

	"repro/internal/oosm"
)

// shipFixture builds a small ship: chiller with motor and compressor parts,
// a pump adjacent to the motor, and a condenser downstream of the
// compressor along a flow edge.
func shipFixture(t *testing.T) (*PDME, map[string]oosm.ObjectID) {
	t.Helper()
	p := newTestPDME(t)
	classes := []oosm.Class{
		{Name: "chiller", Props: map[string]oosm.PropType{"name": oosm.PropString}},
		{Name: "motor", Props: map[string]oosm.PropType{"name": oosm.PropString}},
		{Name: "compressor", Props: map[string]oosm.PropType{"name": oosm.PropString}},
		{Name: "pump", Props: map[string]oosm.PropType{"name": oosm.PropString}},
		{Name: "condenser", Props: map[string]oosm.PropType{"name": oosm.PropString}},
	}
	for _, c := range classes {
		if err := p.Model().RegisterClass(c); err != nil {
			t.Fatal(err)
		}
	}
	ids := map[string]oosm.ObjectID{}
	for _, spec := range []struct{ class, name string }{
		{"chiller", "Chiller 1"}, {"motor", "Motor 1"}, {"compressor", "Compressor 1"},
		{"pump", "CHW Pump 1"}, {"condenser", "Condenser 1"},
	} {
		id, err := p.Model().Create(spec.class, map[string]any{"name": spec.name})
		if err != nil {
			t.Fatal(err)
		}
		ids[spec.class] = id
	}
	mustRelate := func(kind oosm.RelKind, from, to oosm.ObjectID) {
		if err := p.Model().Relate(kind, from, to); err != nil {
			t.Fatal(err)
		}
	}
	mustRelate(oosm.PartOf, ids["motor"], ids["chiller"])
	mustRelate(oosm.PartOf, ids["compressor"], ids["chiller"])
	mustRelate(oosm.Proximity, ids["pump"], ids["motor"])
	mustRelate(oosm.Flow, ids["compressor"], ids["condenser"])
	return p, ids
}

func TestSystemHealthRollsUpFromParts(t *testing.T) {
	p, ids := shipFixture(t)
	defer p.Close()
	// Healthy assembly: zero health findings.
	overall, breakdown, err := p.SystemHealth(ids["chiller"])
	if err != nil {
		t.Fatal(err)
	}
	if overall.WorstBelief != 0 {
		t.Errorf("healthy overall %+v", overall)
	}
	if len(breakdown) != 3 { // chiller + 2 parts
		t.Errorf("breakdown %v", breakdown)
	}
	// Fault the motor (a constituent part).
	at := time.Now()
	if err := p.Deliver(report("ks", ids["motor"].String(), "motor imbalance", 0.6, 0.9, at, nil)); err != nil {
		t.Fatal(err)
	}
	overall, breakdown, err = p.SystemHealth(ids["chiller"])
	if err != nil {
		t.Fatal(err)
	}
	if overall.WorstBelief < 0.89 {
		t.Errorf("system health did not roll up: %+v", overall)
	}
	if !strings.Contains(overall.WorstCondition, "motor imbalance") {
		t.Errorf("condition %q", overall.WorstCondition)
	}
	if breakdown[0].Object != ids["motor"] {
		t.Errorf("worst part %v", breakdown[0])
	}
	// Missing object errors.
	if _, _, err := p.SystemHealth(oosm.ObjectID{Class: "motor", Num: 999}); err == nil {
		t.Error("missing root accepted")
	}
}

func TestSpatialAdvisories(t *testing.T) {
	p, ids := shipFixture(t)
	defer p.Close()
	at := time.Now()
	// A strong structural fault on the motor: the adjacent pump should get
	// a proximity advisory.
	if err := p.Deliver(report("ks", ids["motor"].String(), "motor imbalance", 0.7, 0.95, at, nil)); err != nil {
		t.Fatal(err)
	}
	// A strong fault on the compressor: the condenser is downstream.
	if err := p.Deliver(report("ks", ids["compressor"].String(), "oil whirl", 0.6, 0.9, at, nil)); err != nil {
		t.Fatal(err)
	}
	// A weak report that must NOT generate advisories.
	if err := p.Deliver(report("ks", ids["compressor"].String(), "motor misalignment", 0.2, 0.2, at, nil)); err != nil {
		t.Fatal(err)
	}
	advisories, err := p.SpatialAdvisories(0.7)
	if err != nil {
		t.Fatal(err)
	}
	var prox, flow int
	for _, a := range advisories {
		switch a.Kind {
		case ProximityAdvisory:
			prox++
			if a.Subject != ids["pump"] || a.Cause != ids["motor"] {
				t.Errorf("proximity advisory wrong: %+v", a)
			}
		case FlowAdvisory:
			flow++
			if a.Subject != ids["condenser"] || a.Cause != ids["compressor"] {
				t.Errorf("flow advisory wrong: %+v", a)
			}
		}
		if a.Message == "" {
			t.Error("empty message")
		}
	}
	if prox != 1 {
		t.Errorf("%d proximity advisories, want 1", prox)
	}
	if flow != 1 {
		t.Errorf("%d flow advisories, want 1", flow)
	}
	// Sorted by belief descending.
	for i := 1; i < len(advisories); i++ {
		if advisories[i].Belief > advisories[i-1].Belief {
			t.Error("advisories not sorted")
		}
	}
	// Threshold validation.
	if _, err := p.SpatialAdvisories(0); err == nil {
		t.Error("zero threshold accepted")
	}
	if _, err := p.SpatialAdvisories(1.5); err == nil {
		t.Error("threshold > 1 accepted")
	}
	if ProximityAdvisory.String() != "proximity" || FlowAdvisory.String() != "flow" ||
		AdvisoryKind(9).String() != "unknown" {
		t.Error("advisory kind names")
	}
}

func TestSpatialAdvisoriesIgnoreUnmodelledComponents(t *testing.T) {
	p := newTestPDME(t)
	defer p.Close()
	// Report about a component that has no OOSM object: no advisories, no
	// error.
	if err := p.Deliver(report("ks", "ghost/1", "motor imbalance", 0.7, 0.95, time.Now(), nil)); err != nil {
		t.Fatal(err)
	}
	advisories, err := p.SpatialAdvisories(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(advisories) != 0 {
		t.Errorf("advisories for unmodelled component: %+v", advisories)
	}
}
