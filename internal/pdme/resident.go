package pdme

import (
	"fmt"
	"sync"

	"repro/internal/oosm"
	"repro/internal/proto"
)

// §5.7: "the PDME has the capability to host prognostic and diagnostic
// algorithms. Some reasons for placing the algorithms in the PDME rather
// than the DC include: the algorithm requires data from widely separate
// parts of the ship, [or] the algorithm can reason from PDME resident
// components (a model-based diagnostic and prognostic system, for instance,
// might use only the OOSM)." Phase 1 ran everything in the DCs; this file
// provides the hosting capability itself.

// ResidentAlgorithm is a PDME-hosted knowledge source: it reads the ship
// model (and anything reachable from it) and returns zero or more §7.2
// reports, which the PDME feeds through the same fusion path as DC reports.
type ResidentAlgorithm func(model *oosm.Model) ([]*proto.Report, error)

type residentEntry struct {
	name string
	run  ResidentAlgorithm
}

type residentHost struct {
	mu   sync.Mutex
	algs []residentEntry
}

// HostResidentAlgorithm registers a PDME-resident algorithm under a unique
// name.
func (p *PDME) HostResidentAlgorithm(name string, alg ResidentAlgorithm) error {
	if name == "" || alg == nil {
		return fmt.Errorf("pdme: resident algorithm needs a name and a function")
	}
	p.resident.mu.Lock()
	defer p.resident.mu.Unlock()
	for _, e := range p.resident.algs {
		if e.name == name {
			return fmt.Errorf("pdme: resident algorithm %q already hosted", name)
		}
	}
	p.resident.algs = append(p.resident.algs, residentEntry{name: name, run: alg})
	return nil
}

// ResidentAlgorithms returns the hosted algorithm names in registration
// order.
func (p *PDME) ResidentAlgorithms() []string {
	p.resident.mu.Lock()
	defer p.resident.mu.Unlock()
	out := make([]string, len(p.resident.algs))
	for i, e := range p.resident.algs {
		out[i] = e.name
	}
	return out
}

// RunResidentAlgorithms executes every hosted algorithm against the ship
// model and delivers the reports they produce into fusion. It returns the
// number of reports delivered; the first algorithm or delivery error aborts
// the sweep.
func (p *PDME) RunResidentAlgorithms() (int, error) {
	p.resident.mu.Lock()
	algs := make([]residentEntry, len(p.resident.algs))
	copy(algs, p.resident.algs)
	p.resident.mu.Unlock()
	delivered := 0
	for _, e := range algs {
		reports, err := e.run(p.model)
		if err != nil {
			return delivered, fmt.Errorf("pdme: resident algorithm %q: %w", e.name, err)
		}
		for _, r := range reports {
			if err := p.Deliver(r); err != nil {
				return delivered, fmt.Errorf("pdme: resident algorithm %q report: %w", e.name, err)
			}
			delivered++
		}
	}
	return delivered, nil
}
