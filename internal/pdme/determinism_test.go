package pdme

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/proto"
)

// TestPrioritizedListDeterministicUnderConcurrentDeliver proves the §5.4
// ranking is a pure function of each source's delivered evidence sequence:
// the same per-DC report streams, interleaved arbitrarily across delivering
// goroutines, always rank to the same bit-identical list. Cross-source
// interleaving cannot perturb the result because sources combine in sorted
// id order and every float summation runs in a fixed order; within one
// source the transport already serializes reports (one TCP connection per
// DC), which the one-goroutine-per-DC fixture models. Run with -race.
func TestPrioritizedListDeterministicUnderConcurrentDeliver(t *testing.T) {
	virtual := time.Date(1998, 8, 1, 0, 0, 0, 0, time.UTC)
	build := func() []MaintenanceItem {
		p := newTestPDME(t)
		defer p.Close()
		// 4 DCs × 25 reports, one goroutine per DC so every interleaving
		// preserves each source's own report order.
		conditions := []string{
			"motor rotor bar problem", "motor imbalance", "oil whirl",
			"stator electrical unbalance",
		}
		var wg sync.WaitGroup
		errs := make(chan error, 4)
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 25; i++ {
					r := &proto.Report{
						DCID:               fmt.Sprintf("dc-%d", g),
						KnowledgeSourceID:  fmt.Sprintf("ks-%d", g),
						SensedObjectID:     fmt.Sprintf("pump-%d", i%3),
						MachineConditionID: conditions[g],
						Severity:           0.3 + 0.1*float64(i%5),
						Belief:             0.2 + 0.15*float64(i%5),
						Timestamp:          virtual.Add(time.Duration(g*100+i) * time.Minute),
					}
					if err := p.Deliver(r); err != nil {
						errs <- err
						return
					}
				}
			}(g)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		// Interleaved concurrent reads must not perturb the final list.
		var rg sync.WaitGroup
		for r := 0; r < 2; r++ {
			rg.Add(1)
			go func() {
				defer rg.Done()
				for i := 0; i < 20; i++ {
					_ = p.PrioritizedList()
				}
			}()
		}
		rg.Wait()
		return p.PrioritizedList()
	}

	want := build()
	if len(want) == 0 {
		t.Fatal("empty prioritized list")
	}
	for trial := 1; trial <= 4; trial++ {
		got := build()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: prioritized list depends on delivery interleaving\n got: %+v\nwant: %+v",
				trial, got, want)
		}
	}
	// The ordering invariant itself: a strict weak order ending in the
	// unique (component, condition) key, so equal-belief rows (no
	// prognostics here) still have exactly one legal order.
	for i := 1; i < len(want); i++ {
		a, b := want[i-1], want[i]
		if a.Belief < b.Belief {
			t.Fatalf("list not sorted by belief at %d: %g < %g", i, a.Belief, b.Belief)
		}
		if a.Belief == b.Belief {
			if a.Component > b.Component || (a.Component == b.Component && a.Condition >= b.Condition) {
				t.Fatalf("tie at %d not broken by (component, condition): %+v vs %+v", i, a, b)
			}
		}
	}
}

// TestPrioritizedListStableWhileDelivering reads the list concurrently with
// live deliveries and checks only invariants every snapshot must satisfy —
// ordering and internal consistency — since content is in motion. Run with
// -race to prove the snapshot path is safe against the mutating goroutine.
func TestPrioritizedListStableWhileDelivering(t *testing.T) {
	p := newTestPDME(t)
	defer p.Close()
	virtual := time.Date(1998, 8, 1, 0, 0, 0, 0, time.UTC)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			r := report("ks-live", fmt.Sprintf("pump-%d", i%4), "motor misalignment",
				0.5, 0.4, virtual.Add(time.Duration(i)*time.Minute), nil)
			if err := p.Deliver(r); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for {
		select {
		case <-done:
			return
		default:
		}
		items := p.PrioritizedList()
		for i := 1; i < len(items); i++ {
			if items[i-1].Belief < items[i].Belief {
				t.Fatalf("snapshot not sorted: %+v", items)
			}
		}
		for _, it := range items {
			if it.Belief < 0 || it.Belief > 1 || it.Plausibility < it.Belief-1e-9 {
				t.Fatalf("inconsistent snapshot row: %+v", it)
			}
		}
	}
}
