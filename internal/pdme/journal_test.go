package pdme

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fusion"
	"repro/internal/oosm"
	"repro/internal/proto"
	"repro/internal/relstore"
)

func newJournaledPDME(t testing.TB, dir string, every int) *PDME {
	t.Helper()
	p := newTestPDME(t)
	if _, err := p.OpenJournal(JournalOptions{Dir: dir, CheckpointEvery: every}); err != nil {
		t.Fatal(err)
	}
	return p
}

// journalFixtureReports is a small, varied traffic mix: several components,
// reinforcing sources, prognostics, and tagged delivery ids.
func journalFixtureReports(t0 time.Time) []*proto.Report {
	vec := proto.PrognosticVector{{Probability: 0.3, HorizonSeconds: 24 * 3600}, {Probability: 0.8, HorizonSeconds: 96 * 3600}}
	return []*proto.Report{
		report("ks/dli", "motor/1", "motor imbalance", 0.5, 0.6, t0, nil),
		report("ks/sbfr", "motor/1", "motor imbalance", 0.55, 0.5, t0.Add(time.Minute), vec),
		report("ks/dli", "motor/1", "oil whirl", 0.3, 0.4, t0.Add(2*time.Minute), nil),
		report("ks/mset", "pump/2", "stator electrical unbalance", 0.7, 0.65, t0.Add(3*time.Minute), nil),
		report("ks/dli", "motor/1", "motor imbalance", 0.6, 0.55, t0.Add(4*time.Minute), nil),
	}
}

func deliverFixture(t *testing.T, p *PDME, t0 time.Time) {
	t.Helper()
	for i, r := range journalFixtureReports(t0) {
		if err := p.DeliverTagged(r, "dc-1", 7, uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.ObserveHeartbeat(&proto.Heartbeat{
		DCID: "dc-1", SentAt: t0.Add(5 * time.Minute), Incarnation: 7, SpoolDepth: 2,
	}); err != nil {
		t.Fatal(err)
	}
}

// assertSameFusionState checks the recovery guarantee: Ranked/Belief output
// of the recovered engine is bit-for-bit identical to the reference.
func assertSameFusionState(t *testing.T, ref, got *PDME) {
	t.Helper()
	if got.ReceivedReports() != ref.ReceivedReports() {
		t.Errorf("received = %d, want %d", got.ReceivedReports(), ref.ReceivedReports())
	}
	refList, gotList := ref.PrioritizedList(), got.PrioritizedList()
	if len(gotList) != len(refList) {
		t.Fatalf("prioritized list has %d items, want %d", len(gotList), len(refList))
	}
	for i := range refList {
		r, g := refList[i], gotList[i]
		if g.Component != r.Component || g.Condition != r.Condition {
			t.Fatalf("item %d: (%s, %s), want (%s, %s)", i, g.Component, g.Condition, r.Component, r.Condition)
		}
		if math.Float64bits(g.Belief) != math.Float64bits(r.Belief) ||
			math.Float64bits(g.Plausibility) != math.Float64bits(r.Plausibility) {
			t.Errorf("%s/%s: belief/pl (%v, %v), want bit-exact (%v, %v)",
				g.Component, g.Condition, g.Belief, g.Plausibility, r.Belief, r.Plausibility)
		}
		if g.Reports != r.Reports {
			t.Errorf("%s/%s: %d reports, want %d", g.Component, g.Condition, g.Reports, r.Reports)
		}
		if g.HasPrognostic != r.HasPrognostic || g.TimeToHalf != r.TimeToHalf {
			t.Errorf("%s/%s: prognostic (%v, %v), want (%v, %v)",
				g.Component, g.Condition, g.HasPrognostic, g.TimeToHalf, r.HasPrognostic, r.TimeToHalf)
		}
	}
}

// TestJournalRecoveryMatchesUndisturbedRun: kill a journaled PDME without
// any shutdown courtesy (no Close, no checkpoint), recover into a fresh
// engine, and compare against an undisturbed engine that saw the same
// traffic: Ranked/Belief bit-for-bit, dedup suppression intact, heartbeat
// history restored.
func TestJournalRecoveryMatchesUndisturbedRun(t *testing.T) {
	t0 := time.Date(1998, 9, 1, 12, 0, 0, 0, time.UTC)
	dir := t.TempDir()

	ref := newTestPDME(t)
	defer ref.Close()
	deliverFixture(t, ref, t0)

	crashed := newJournaledPDME(t, dir, -1) // no automatic checkpoints: pure WAL replay
	deliverFixture(t, crashed, t0)
	// Crash: the engine is abandoned mid-flight, never Closed.

	recovered := newTestPDME(t)
	defer recovered.Close()
	stats, err := recovered.OpenJournal(JournalOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if stats.CheckpointLoaded {
		t.Error("no checkpoint was written, yet one loaded")
	}
	if stats.ReportsReplayed != 5 || stats.HeartbeatsReplayed != 1 || stats.SkippedRecords != 0 {
		t.Errorf("replayed %d reports + %d heartbeats, %d skipped; want 5 + 1, 0 skipped",
			stats.ReportsReplayed, stats.HeartbeatsReplayed, stats.SkippedRecords)
	}
	assertSameFusionState(t, ref, recovered)

	// The dedup window survived: a spool replay of an already-fused report
	// is suppressed, not double-fused.
	if !recovered.dedupHandle().Seen("dc-1", 7, 3) {
		t.Error("pre-crash sequence not suppressed after recovery")
	}
	if recovered.dedupHandle().Seen("dc-1", 7, 6) {
		t.Error("never-sent sequence suppressed after recovery")
	}
	// Heartbeat history survived.
	snap := recovered.Health().Snapshot()
	if len(snap) != 1 || snap[0].DCID != "dc-1" || snap[0].SpoolDepth != 2 {
		t.Errorf("recovered health snapshot %+v, want dc-1 with spool depth 2", snap)
	}
	// The recovered engine keeps fusing correctly on top of replayed state.
	next := report("ks/dli", "motor/1", "motor imbalance", 0.6, 0.5, t0.Add(time.Hour), nil)
	if err := recovered.DeliverTagged(next, "dc-1", 7, 6); err != nil {
		t.Fatal(err)
	}
	if err := ref.DeliverTagged(next, "dc-1", 7, 6); err != nil {
		t.Fatal(err)
	}
	assertSameFusionState(t, ref, recovered)
}

// TestJournalRecoveryFromCheckpointPlusTail: traffic that spans an
// automatic checkpoint recovers from checkpoint-load + tail-replay, not
// full-history replay, and still matches the undisturbed run bit-for-bit.
func TestJournalRecoveryFromCheckpointPlusTail(t *testing.T) {
	t0 := time.Date(1998, 9, 1, 12, 0, 0, 0, time.UTC)
	dir := t.TempDir()

	ref := newTestPDME(t)
	defer ref.Close()
	crashed := newJournaledPDME(t, dir, 4) // checkpoint after the 4th record

	for round := 0; round < 3; round++ {
		base := t0.Add(time.Duration(round) * time.Hour)
		deliverFixture(t, ref, base)
		deliverFixture(t, crashed, base)
	}
	if err := crashed.JournalError(); err != nil {
		t.Fatalf("automatic checkpoint failed: %v", err)
	}
	open, lastSeq, ckptSeq, tail := crashed.JournalInfo()
	if !open || ckptSeq == 0 || lastSeq != 18 {
		t.Fatalf("journal info open=%v last=%d ckpt=%d tail=%d; want open, last=18, a checkpoint", open, lastSeq, ckptSeq, tail)
	}

	recovered := newTestPDME(t)
	defer recovered.Close()
	stats, err := recovered.OpenJournal(JournalOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.CheckpointLoaded || stats.CheckpointSeq != ckptSeq {
		t.Errorf("checkpoint loaded=%v seq=%d, want loaded at %d", stats.CheckpointLoaded, stats.CheckpointSeq, ckptSeq)
	}
	if replayed := stats.ReportsReplayed + stats.HeartbeatsReplayed; replayed != int(lastSeq-ckptSeq) {
		t.Errorf("replayed %d tail records, want %d (last %d - checkpoint %d)",
			replayed, lastSeq-ckptSeq, lastSeq, ckptSeq)
	}
	if stats.SkippedRecords != 0 {
		t.Errorf("%d records skipped", stats.SkippedRecords)
	}
	assertSameFusionState(t, ref, recovered)
}

// TestExplicitCheckpointAndReopen: Checkpoint() + clean Close, then reopen
// — the canonical restart path — recovers with an empty tail.
func TestExplicitCheckpointAndReopen(t *testing.T) {
	t0 := time.Date(1998, 9, 1, 12, 0, 0, 0, time.UTC)
	dir := t.TempDir()

	ref := newTestPDME(t)
	defer ref.Close()
	deliverFixture(t, ref, t0)

	first := newJournaledPDME(t, dir, -1)
	deliverFixture(t, first, t0)
	if err := first.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	first.Close()

	second := newTestPDME(t)
	defer second.Close()
	stats, err := second.OpenJournal(JournalOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.CheckpointLoaded {
		t.Fatal("checkpoint not loaded on reopen")
	}
	if stats.ReportsReplayed+stats.HeartbeatsReplayed != 0 {
		t.Errorf("tail replayed %d records after a clean checkpointed shutdown",
			stats.ReportsReplayed+stats.HeartbeatsReplayed)
	}
	assertSameFusionState(t, ref, second)
}

// TestRecoverySkipsInapplicableRecords: a WAL written under one failure
// -group configuration replays into an engine whose groups no longer know a
// condition — that record is counted skipped, the rest recover.
func TestRecoverySkipsInapplicableRecords(t *testing.T) {
	t0 := time.Date(1998, 9, 1, 12, 0, 0, 0, time.UTC)
	dir := t.TempDir()

	writer := newJournaledPDME(t, dir, -1)
	if err := writer.Deliver(report("ks/dli", "motor/1", "motor imbalance", 0.5, 0.6, t0, nil)); err != nil {
		t.Fatal(err)
	}
	if err := writer.Deliver(report("ks/dli", "motor/1", "oil whirl", 0.3, 0.4, t0.Add(time.Minute), nil)); err != nil {
		t.Fatal(err)
	}

	model, err := oosm.NewModel(relstore.NewMemory())
	if err != nil {
		t.Fatal(err)
	}
	// "oil whirl" is gone from the narrowed groups.
	narrowed, err := New(model, fusion.Groups{"structural": {"motor imbalance", "motor misalignment"}})
	if err != nil {
		t.Fatal(err)
	}
	defer narrowed.Close()
	stats, err := narrowed.OpenJournal(JournalOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ReportsReplayed != 1 || stats.SkippedRecords != 1 {
		t.Errorf("replayed=%d skipped=%d, want 1 replayed + 1 skipped", stats.ReportsReplayed, stats.SkippedRecords)
	}
	if b, err := narrowed.Belief("motor/1", "motor imbalance"); err != nil || math.Abs(b-0.6) > 1e-9 {
		t.Errorf("surviving condition belief %v (err %v), want 0.6", b, err)
	}
}

// recoveryInvalidator records the write-window calls plus whole-cache
// invalidations, standing in for the serving tier.
type recoveryInvalidator struct {
	mu      sync.Mutex
	begins  int
	ends    int
	flushes atomic.Int64
}

func (ri *recoveryInvalidator) BeginMutation(component, condition string) {
	ri.mu.Lock()
	ri.begins++
	ri.mu.Unlock()
}

func (ri *recoveryInvalidator) EndMutation(component, condition string) {
	ri.mu.Lock()
	ri.ends++
	ri.mu.Unlock()
}

func (ri *recoveryInvalidator) InvalidateAll() { ri.flushes.Add(1) }

// TestOpenJournalBumpsCacheEpoch: when the installed invalidator supports
// whole-cache invalidation, recovery triggers exactly one — views must
// never serve entries cached against pre-crash state.
func TestOpenJournalBumpsCacheEpoch(t *testing.T) {
	t0 := time.Date(1998, 9, 1, 12, 0, 0, 0, time.UTC)
	dir := t.TempDir()
	writer := newJournaledPDME(t, dir, -1)
	deliverFixture(t, writer, t0)

	p := newTestPDME(t)
	defer p.Close()
	ri := &recoveryInvalidator{}
	p.SetInvalidator(ri)
	if _, err := p.OpenJournal(JournalOptions{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	if got := ri.flushes.Load(); got != 1 {
		t.Errorf("InvalidateAll called %d times on recovery, want 1", got)
	}
	// Replay itself ran inside write windows, like live traffic.
	ri.mu.Lock()
	defer ri.mu.Unlock()
	if ri.begins == 0 || ri.begins != ri.ends {
		t.Errorf("write windows unbalanced during replay: %d begins, %d ends", ri.begins, ri.ends)
	}
}

// TestDoubleOpenRefused: a second OpenJournal on the same engine fails.
func TestDoubleOpenRefused(t *testing.T) {
	p := newJournaledPDME(t, t.TempDir(), -1)
	defer p.Close()
	if _, err := p.OpenJournal(JournalOptions{Dir: t.TempDir()}); err == nil {
		t.Error("second OpenJournal accepted")
	}
}

// BenchmarkDeliverJournaled is BenchmarkDeliverAndFuse with the journal
// open: the delta is the durability tax (fsynced append per delivery).
func BenchmarkDeliverJournaled(b *testing.B) {
	model, err := oosm.NewModel(relstore.NewMemory())
	if err != nil {
		b.Fatal(err)
	}
	p, err := New(model, testGroups())
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	if _, err := p.OpenJournal(JournalOptions{Dir: b.TempDir()}); err != nil {
		b.Fatal(err)
	}
	at := time.Now()
	conds := []string{"motor imbalance", "oil whirl", "motor rotor bar problem"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := report("ks", "m", conds[i%3], 0.5, 0.3, at, nil)
		if err := p.Deliver(r); err != nil {
			b.Fatal(err)
		}
	}
}
