package pdme

import (
	"encoding/json"
	"fmt"
	"math"
	"time"

	"repro/internal/fusion"
	"repro/internal/health"
	"repro/internal/journal"
	"repro/internal/proto"
)

// Durability: every envelope the PDME accepts (report or heartbeat,
// post-dedup) is appended and fsynced to a write-ahead journal before the
// fusion mutation commits, and a periodic checkpoint snapshots the full
// derived state — per-source fusion evidence, dedup watermarks + boot
// epochs, health observation history, the received counter — so recovery
// is checkpoint-load + tail-replay rather than full-history replay.
//
// Consistency: deliveries hold acceptMu (read side) across journal append
// + fusion mutation + dedup mark; Checkpoint takes the write side, so the
// watermark it pins and the state it snapshots describe the same accepted
// prefix. Replay re-applies only fusion effects (diagnostic/prognostic
// evidence, conclusion objects, health observations, dedup marks, the
// severity history) — it does not re-post report objects into the OOSM,
// because Ranked/Belief output is a pure function of the fusion state and
// re-posting would double OOSM report objects kept in a persistent model.

// Journal record kinds.
const (
	journalKindReport    = byte(1)
	journalKindHeartbeat = byte(2)
)

// DefaultCheckpointEvery is how many journaled records accumulate before
// an automatic checkpoint when JournalOptions.CheckpointEvery is zero.
const DefaultCheckpointEvery = 1024

// journaledReport is the WAL body for an accepted report: the report plus
// the wire delivery tag, so replay can re-mark the dedup window and a
// resend after recovery is still recognized as a duplicate.
type journaledReport struct {
	DCID   string        `json:"dcid,omitempty"`
	Boot   uint64        `json:"boot,omitempty"`
	Seq    uint64        `json:"seq,omitempty"`
	Report *proto.Report `json:"report"`
}

// checkpointState is the checkpoint blob: every piece of derived state a
// crash would otherwise lose. JSON keeps float64 bit-exact (Go emits the
// shortest uniquely-decoding representation), which recovery's
// bit-for-bit Ranked/Belief guarantee rests on.
type checkpointState struct {
	Received int                    `json:"received"`
	Dedup    proto.DedupState       `json:"dedup"`
	Diag     fusion.DiagnosticState `json:"diag"`
	Prog     fusion.PrognosticState `json:"prog,omitempty"`
	Health   health.RegistryState   `json:"health"`
}

// JournalOptions configures the PDME's durability subsystem.
type JournalOptions struct {
	// Dir roots the WAL and checkpoint files.
	Dir string
	// CheckpointEvery is the automatic checkpoint cadence in accepted
	// records (0: DefaultCheckpointEvery; negative: no automatic
	// checkpoints — the owner calls Checkpoint itself).
	CheckpointEvery int
}

// RecoveryStats summarizes what OpenJournal restored.
type RecoveryStats struct {
	// CheckpointLoaded reports whether a durable checkpoint was restored;
	// CheckpointSeq is the journal sequence it covered.
	CheckpointLoaded bool
	CheckpointSeq    uint64
	// ReportsReplayed / HeartbeatsReplayed count tail records re-applied on
	// top of the checkpoint; SkippedRecords counts tail records that no
	// longer decode or apply (e.g. a condition removed from the failure
	// groups between runs).
	ReportsReplayed    int
	HeartbeatsReplayed int
	SkippedRecords     int
	// TornBytes is how much of an interrupted final append was truncated.
	TornBytes int64
}

// RecoveryInvalidator is an Invalidator that can also drop every cached
// entry at once. When the installed invalidator implements it, OpenJournal
// bumps the cache epoch after replay so views never serve pre-crash
// entries.
type RecoveryInvalidator interface {
	Invalidator
	InvalidateAll()
}

// OpenJournal opens (or creates) the durability journal in opts.Dir,
// recovers checkpoint + tail into this PDME, and arms the journaled accept
// path: from here on every accepted envelope is fsynced before its fusion
// mutation commits. Call after ConfigureHealth/ConfigureDedup and before
// any traffic.
func (p *PDME) OpenJournal(opts JournalOptions) (RecoveryStats, error) {
	var stats RecoveryStats
	if p.journalHandle() != nil {
		return stats, fmt.Errorf("pdme: journal already open")
	}
	jr, rec, err := journal.Open(opts.Dir)
	if err != nil {
		return stats, err
	}
	stats.TornBytes = rec.TornBytes
	if rec.Checkpoint != nil {
		var st checkpointState
		if err := json.Unmarshal(rec.Checkpoint, &st); err != nil {
			_ = jr.Close() // best effort: the decode error is the story
			return stats, fmt.Errorf("pdme: decode checkpoint: %w", err)
		}
		if err := p.restoreCheckpoint(st); err != nil {
			_ = jr.Close() // best effort: the restore error is the story
			return stats, err
		}
		stats.CheckpointLoaded = true
		stats.CheckpointSeq = rec.CheckpointSeq
	}
	for _, r := range rec.Tail {
		switch r.Kind {
		case journalKindReport:
			var jrp journaledReport
			if err := json.Unmarshal(r.Body, &jrp); err != nil {
				stats.SkippedRecords++
				continue
			}
			if err := p.replayReport(&jrp); err != nil {
				stats.SkippedRecords++
				continue
			}
			stats.ReportsReplayed++
		case journalKindHeartbeat:
			var hb proto.Heartbeat
			if err := json.Unmarshal(r.Body, &hb); err != nil {
				stats.SkippedRecords++
				continue
			}
			if err := p.Health().ObserveHeartbeat(&hb); err != nil {
				stats.SkippedRecords++
				continue
			}
			stats.HeartbeatsReplayed++
		default:
			stats.SkippedRecords++
		}
	}
	every := opts.CheckpointEvery
	if every == 0 {
		every = DefaultCheckpointEvery
	}
	p.mu.Lock()
	p.jrnl = jr
	p.checkpointEvery = every
	p.mu.Unlock()
	// Cache epoch bump: anything a view cached before the crash describes
	// fusion state that no longer exists.
	if ri, ok := p.invalidator().(RecoveryInvalidator); ok {
		ri.InvalidateAll()
	}
	return stats, nil
}

// restoreCheckpoint loads a checkpoint blob into the live state.
func (p *PDME) restoreCheckpoint(st checkpointState) error {
	if err := p.diag.Restore(st.Diag); err != nil {
		return fmt.Errorf("pdme: restore diagnostic state: %w", err)
	}
	if err := p.prog.Restore(st.Prog); err != nil {
		return fmt.Errorf("pdme: restore prognostic state: %w", err)
	}
	p.dedupHandle().Restore(st.Dedup)
	p.Health().RestoreState(st.Health)
	p.mu.Lock()
	p.received = st.Received
	p.mu.Unlock()
	return nil
}

// replayReport re-applies one journaled report's fusion effects — see the
// file comment for why the OOSM report object itself is not re-posted.
func (p *PDME) replayReport(jrp *journaledReport) error {
	r := jrp.Report
	if r == nil {
		return fmt.Errorf("pdme: journaled report without a report")
	}
	if err := r.Validate(); err != nil {
		return err
	}
	component, condition := r.SensedObjectID, r.MachineConditionID
	if _, err := p.diag.GroupOf(condition); err != nil {
		return err
	}
	// Same write window as the live accept path: an invalidator attached
	// before recovery must not serve a view of a half-replayed pair.
	if inv := p.invalidator(); inv != nil {
		inv.BeginMutation(component, condition)
		defer inv.EndMutation(component, condition)
	}
	if err := p.replaySeverity(component, condition, r.Timestamp, r.Severity); err != nil {
		return err
	}
	fusedBelief, err := p.diag.AddReportFrom(component, condition, r.DCID, r.Timestamp, r.Belief)
	if err != nil {
		return err
	}
	fusedVec := r.Prognostics
	if len(r.Prognostics) > 0 {
		fusedVec, err = p.prog.AddReport(component, condition, r.Prognostics)
		if err != nil {
			return err
		}
	} else {
		fusedVec = p.prog.Fused(component, condition)
	}
	if err := p.postConclusion(component, condition, fusedBelief, fusedVec, r.Timestamp); err != nil {
		return err
	}
	p.Health().ObserveReport(r.DCID, r.KnowledgeSourceID, r.Timestamp)
	if jrp.Seq > 0 {
		p.dedupHandle().Mark(jrp.DCID, jrp.Boot, jrp.Seq)
	}
	p.mu.Lock()
	p.received++
	p.mu.Unlock()
	return nil
}

// replaySeverity is observeSeverity made idempotent against a disk-backed
// historian that already recorded the sample before the crash: an
// identical (timestamp, value) point in the channel means this replay
// already happened.
func (p *PDME) replaySeverity(component, condition string, at time.Time, severity float64) error {
	name := severityChannel(component, condition)
	if p.hist.HasChannel(name) {
		if it, err := p.hist.Query(name, at, at); err == nil {
			for it.Next() {
				s := it.At()
				if s.At.Equal(at) && math.Float64bits(s.Value) == math.Float64bits(severity) {
					return nil
				}
			}
		}
	}
	return p.observeSeverity(component, condition, at, severity)
}

// Checkpoint quiesces the accept path, snapshots the full derived state at
// the current journal watermark, and durably replaces the checkpoint file
// (after which the WAL is compacted to the records above the watermark).
func (p *PDME) Checkpoint() error {
	jr := p.journalHandle()
	if jr == nil {
		return fmt.Errorf("pdme: no journal open")
	}
	p.acceptMu.Lock()
	seq := jr.LastSeq()
	if seq == 0 {
		// Nothing accepted since the journal began; nothing to cover.
		p.acceptMu.Unlock()
		return nil
	}
	st := checkpointState{
		Received: p.ReceivedReports(),
		Dedup:    p.dedupHandle().State(),
		Diag:     p.diag.Snapshot(),
		Prog:     p.prog.Snapshot(),
		Health:   p.Health().ExportState(),
	}
	p.acceptMu.Unlock()
	blob, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("pdme: encode checkpoint: %w", err)
	}
	return jr.WriteCheckpoint(seq, blob)
}

// maybeCheckpoint runs an automatic checkpoint when the journal tail has
// outgrown the configured cadence. Single-flight; a failure is recorded
// for JournalError rather than failing the delivery that tripped it (the
// delivery itself is already durable in the WAL).
func (p *PDME) maybeCheckpoint() {
	jr := p.journalHandle()
	p.mu.Lock()
	every := p.checkpointEvery
	p.mu.Unlock()
	if jr == nil || every <= 0 || jr.SinceCheckpoint() < every {
		return
	}
	if !p.ckptFlight.TryLock() {
		return // one automatic checkpoint at a time
	}
	defer p.ckptFlight.Unlock()
	if err := p.Checkpoint(); err != nil {
		p.mu.Lock()
		p.journalErr = err
		p.mu.Unlock()
	}
}

// JournalError returns the most recent automatic-checkpoint failure (nil
// when healthy). Deliveries keep succeeding through checkpoint failures —
// the WAL still has every record — but recovery degrades toward
// full-tail replay, so daemons surface this.
func (p *PDME) JournalError() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.journalErr
}

// JournalInfo reports whether a journal is open, the last appended
// sequence, the durable checkpoint watermark, and the tail length above
// it.
func (p *PDME) JournalInfo() (open bool, lastSeq, checkpointSeq uint64, tail int) {
	jr := p.journalHandle()
	if jr == nil {
		return false, 0, 0, 0
	}
	return true, jr.LastSeq(), jr.CheckpointSeq(), jr.SinceCheckpoint()
}

func (p *PDME) journalHandle() *journal.Journal {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.jrnl
}

// appendJournal journals one accepted envelope. Callers hold acceptMu
// (read side); the append is fsynced before return.
func (p *PDME) appendJournal(kind byte, body any) error {
	jr := p.journalHandle()
	if jr == nil {
		return nil
	}
	blob, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("pdme: encode journal record: %w", err)
	}
	if _, err := jr.Append(kind, blob); err != nil {
		return fmt.Errorf("pdme: journal accept: %w", err)
	}
	return nil
}
