package pdme

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/proto"
)

// §5.1: "The knowledge fusion components must be able to accommodate inputs
// which are incomplete, time-disordered, fragmentary, and which have gaps,
// inconsistencies, and contradictions."

// TestTimeDisorderedReports delivers the same report set in timestamp order
// and in shuffled order: fused beliefs are identical (Dempster combination
// is commutative) and the trend projection still fits correctly (the
// fitter orders by timestamp, not arrival).
func TestTimeDisorderedReports(t *testing.T) {
	start := time.Date(1998, 9, 1, 0, 0, 0, 0, time.UTC)
	build := func() []*proto.Report {
		var reports []*proto.Report
		for i := 0; i < 10; i++ {
			reports = append(reports, report("ks", "motor/1", "motor imbalance",
				0.2+0.05*float64(i), 0.4, start.Add(time.Duration(i)*4*time.Hour), nil))
		}
		return reports
	}
	run := func(shuffleSeed int64) (float64, time.Time) {
		p := newTestPDME(t)
		defer p.Close()
		reports := build()
		if shuffleSeed != 0 {
			rng := rand.New(rand.NewSource(shuffleSeed))
			rng.Shuffle(len(reports), func(i, j int) {
				reports[i], reports[j] = reports[j], reports[i]
			})
		}
		for _, r := range reports {
			if err := p.Deliver(r); err != nil {
				t.Fatal(err)
			}
		}
		b, err := p.Belief("motor/1", "motor imbalance")
		if err != nil {
			t.Fatal(err)
		}
		proj, err := p.TrendProjection("motor/1", "motor imbalance", 0.9)
		if err != nil {
			t.Fatal(err)
		}
		if !proj.Reaches {
			t.Fatal("rising trend should project")
		}
		return b, proj.Crossing
	}
	bOrdered, crossOrdered := run(0)
	for _, seed := range []int64{1, 2, 3} {
		bShuffled, crossShuffled := run(seed)
		if math.Abs(bOrdered-bShuffled) > 1e-12 {
			t.Errorf("seed %d: fused belief differs: %g vs %g", seed, bOrdered, bShuffled)
		}
		if d := crossOrdered.Sub(crossShuffled); math.Abs(d.Seconds()) > 1 {
			t.Errorf("seed %d: trend crossing differs by %v", seed, d)
		}
	}
}

// TestFragmentaryReports delivers reports with every optional field absent:
// no prognostics, no explanation, no recommendations, no DC id. Fusion must
// accept them.
func TestFragmentaryReports(t *testing.T) {
	p := newTestPDME(t)
	defer p.Close()
	r := &proto.Report{
		KnowledgeSourceID:  "ks",
		SensedObjectID:     "motor/1",
		MachineConditionID: "motor imbalance",
		Severity:           0.5,
		Belief:             0.5,
		Timestamp:          time.Now(),
	}
	if err := p.Deliver(r); err != nil {
		t.Fatal(err)
	}
	b, err := p.Belief("motor/1", "motor imbalance")
	if err != nil || math.Abs(b-0.5) > 1e-12 {
		t.Errorf("fragmentary report fused wrong: %g %v", b, err)
	}
	if v := p.FusedPrognostic("motor/1", "motor imbalance"); len(v) != 0 {
		t.Errorf("no prognostic was sent, got %v", v)
	}
}

// TestContradictoryReports: two sources flatly contradict each other within
// a group; fusion keeps both suppressed and the unknown mass reflects the
// contradiction instead of picking a winner arbitrarily.
func TestContradictoryReports(t *testing.T) {
	p := newTestPDME(t)
	defer p.Close()
	at := time.Now()
	if err := p.Deliver(report("ks/a", "m", "motor imbalance", 0.5, 0.9, at, nil)); err != nil {
		t.Fatal(err)
	}
	if err := p.Deliver(report("ks/b", "m", "motor misalignment", 0.5, 0.9, at, nil)); err != nil {
		t.Fatal(err)
	}
	bi, _ := p.Belief("m", "motor imbalance")
	bm, _ := p.Belief("m", "motor misalignment")
	if math.Abs(bi-bm) > 1e-9 {
		t.Errorf("symmetric contradiction resolved asymmetrically: %g vs %g", bi, bm)
	}
	if bi > 0.6 {
		t.Errorf("contradicted belief too confident: %g", bi)
	}
}
