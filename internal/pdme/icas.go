package pdme

import (
	"encoding/json"
	"fmt"
	"time"
)

// §1 requires "open interfaces to provide machinery condition and raw
// sensor data to other shipboard systems such as ICAS (Integrated Condition
// Assessment System)". This file is that interface: a versioned JSON
// snapshot of the PDME's fused condition state that an external consumer
// can poll, in the spirit of the MIMOSA open-standards alignment §3.3
// mentions.

// SnapshotVersion identifies the export schema.
const SnapshotVersion = "mpros-condition-snapshot/1"

// ConditionExport is one fused conclusion in the snapshot.
type ConditionExport struct {
	Component     string  `json:"component"`
	Condition     string  `json:"condition"`
	Group         string  `json:"group"`
	Belief        float64 `json:"belief"`
	Plausibility  float64 `json:"plausibility"`
	Reports       int     `json:"reports"`
	TimeToHalfSec float64 `json:"time_to_half_seconds,omitempty"`
}

// Snapshot is the full export document.
type Snapshot struct {
	Version     string            `json:"version"`
	GeneratedAt time.Time         `json:"generated_at"`
	Reports     int               `json:"reports_received"`
	Conditions  []ConditionExport `json:"conditions"`
	Advisories  []AdvisoryExport  `json:"advisories,omitempty"`
}

// AdvisoryExport is one §10.1 spatial advisory in the snapshot.
type AdvisoryExport struct {
	Kind    string  `json:"kind"`
	Subject string  `json:"subject"`
	Cause   string  `json:"cause"`
	Belief  float64 `json:"belief"`
	Message string  `json:"message"`
}

// ExportSnapshot assembles the condition snapshot at the given timestamp.
// Advisories are included for conclusions at or above advisoryThreshold
// (pass a value > 1 to omit them).
func (p *PDME) ExportSnapshot(at time.Time, advisoryThreshold float64) (*Snapshot, error) {
	if at.IsZero() {
		return nil, fmt.Errorf("pdme: zero snapshot time")
	}
	snap := &Snapshot{
		Version:     SnapshotVersion,
		GeneratedAt: at,
		Reports:     p.ReceivedReports(),
	}
	for _, item := range p.PrioritizedList() {
		ce := ConditionExport{
			Component:    item.Component,
			Condition:    item.Condition,
			Group:        item.Group,
			Belief:       item.Belief,
			Plausibility: item.Plausibility,
			Reports:      item.Reports,
		}
		if item.HasPrognostic {
			ce.TimeToHalfSec = item.TimeToHalf.Seconds()
		}
		snap.Conditions = append(snap.Conditions, ce)
	}
	if advisoryThreshold <= 1 {
		advisories, err := p.SpatialAdvisories(advisoryThreshold)
		if err != nil {
			return nil, err
		}
		for _, a := range advisories {
			snap.Advisories = append(snap.Advisories, AdvisoryExport{
				Kind:    a.Kind.String(),
				Subject: a.Subject.String(),
				Cause:   a.Cause.String(),
				Belief:  a.Belief,
				Message: a.Message,
			})
		}
	}
	return snap, nil
}

// ExportJSON renders the snapshot as indented JSON.
func (p *PDME) ExportJSON(at time.Time, advisoryThreshold float64) ([]byte, error) {
	snap, err := p.ExportSnapshot(at, advisoryThreshold)
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(snap, "", "  ")
}

// ParseSnapshot decodes an exported snapshot, validating the version — the
// consumer half of the open interface.
func ParseSnapshot(data []byte) (*Snapshot, error) {
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("pdme: decode snapshot: %w", err)
	}
	if snap.Version != SnapshotVersion {
		return nil, fmt.Errorf("pdme: unsupported snapshot version %q", snap.Version)
	}
	return &snap, nil
}
