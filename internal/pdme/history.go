package pdme

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/hazard"
	"repro/internal/historian"
	"repro/internal/proto"
)

// This file is the PDME's use of the historian (§4.6 data management +
// §10.1 future directions): fused severities stream into per-pair
// channels, and unit lifetimes accumulate into per-condition archives that
// back hazard/survival refinement — "next generation software will use
// more complex failure analysis using historical data" (§1).

// SeverityRollupTier is the downsampling resolution maintained on severity
// channels: one min/max/mean bucket per day of reports, enough for
// month-scale trend displays without touching raw points.
const SeverityRollupTier = 24 * time.Hour

func severityChannel(component, condition string) string {
	return "severity/" + component + "|" + condition
}

func lifetimeChannel(condition string, censored bool) string {
	if censored {
		return "lifetimes/" + condition + "/censored"
	}
	return "lifetimes/" + condition + "/failed"
}

// observeSeverity appends one fused-report severity to the pair's channel,
// creating it on first sight.
func (p *PDME) observeSeverity(component, condition string, at time.Time, severity float64) error {
	name := severityChannel(component, condition)
	// EnsureChannel every time (idempotent): recovered channels do not
	// remember their tier configuration, so this also rebuilds the rollup
	// tier from recovered data after a restart.
	if err := p.hist.EnsureChannel(historian.ChannelConfig{
		Name:  name,
		Tiers: []time.Duration{SeverityRollupTier},
	}); err != nil {
		return err
	}
	return p.hist.Append(name, at, severity)
}

// SeverityRollups returns the per-day severity envelope for a pair
// (min/max/mean per SeverityRollupTier bucket), oldest first.
func (p *PDME) SeverityRollups(component, condition string) []historian.Rollup {
	rolls, err := p.hist.QueryRollup(severityChannel(component, condition),
		SeverityRollupTier, time.Time{}, time.Time{})
	if err != nil {
		return nil
	}
	return rolls
}

// RecordLifetime archives one unit's time-on-test for a condition: hours
// of operation until it failed (censored=false) or until observation
// stopped with the unit still healthy (censored=true). The archive is the
// §9 "archives of maintenance data" the hazard refinement fits.
func (p *PDME) RecordLifetime(condition string, at time.Time, hours float64, censored bool) error {
	if condition == "" {
		return fmt.Errorf("pdme: empty condition")
	}
	if hours <= 0 {
		return fmt.Errorf("pdme: non-positive lifetime %g h", hours)
	}
	name := lifetimeChannel(condition, censored)
	if !p.hist.HasChannel(name) {
		if err := p.hist.EnsureChannel(historian.ChannelConfig{Name: name}); err != nil {
			return err
		}
	}
	return p.hist.Append(name, at, hours)
}

// LifetimeObservations reads a condition's archived lifetimes back as
// hazard observations (failed and censored), in recording-time order.
func (p *PDME) LifetimeObservations(condition string) ([]hazard.Observation, error) {
	type stamped struct {
		at  time.Time
		obs hazard.Observation
	}
	var all []stamped
	for _, censored := range []bool{false, true} {
		name := lifetimeChannel(condition, censored)
		if !p.hist.HasChannel(name) {
			continue
		}
		it, err := p.hist.Query(name, time.Time{}, time.Time{})
		if err != nil {
			return nil, err
		}
		for it.Next() {
			s := it.At()
			all = append(all, stamped{at: s.At, obs: hazard.Observation{Time: s.Value, Censored: censored}})
		}
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("pdme: no lifetime archive for condition %q", condition)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].at.Before(all[j].at) })
	out := make([]hazard.Observation, len(all))
	for i, s := range all {
		out[i] = s.obs
	}
	return out, nil
}

// FitLifeDistribution fits a Weibull life distribution over the archived
// lifetimes of a condition (needs at least three uncensored failures).
func (p *PDME) FitLifeDistribution(condition string) (hazard.Weibull, error) {
	obs, err := p.LifetimeObservations(condition)
	if err != nil {
		return hazard.Weibull{}, err
	}
	return hazard.FitWeibull(obs)
}

// RefinePrognosticFromHistory is the full §10.1 loop: fit the condition's
// archived lifetimes and condition the fitted distribution on the unit's
// age, yielding a §7.3 prognostic vector P(fail by age+h | alive at age)
// for each horizon (hours).
func (p *PDME) RefinePrognosticFromHistory(condition string, ageHours float64, horizonsHours []float64) (proto.PrognosticVector, error) {
	fit, err := p.FitLifeDistribution(condition)
	if err != nil {
		return nil, err
	}
	return hazard.RefinePrognostic(fit, ageHours, horizonsHours)
}
