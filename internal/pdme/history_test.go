package pdme

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/hazard"
	"repro/internal/historian"
	"repro/internal/oosm"
	"repro/internal/relstore"
)

// TestSeverityHistorySurvivesRestart: with a disk-backed historian, a
// PDME restart (new model, new engine, same store directory) retains the
// severity history and the trend projection it feeds — the §4.6/§10.1
// durability the in-memory tracker could not provide.
func TestSeverityHistorySurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	start := time.Date(1998, 9, 1, 0, 0, 0, 0, time.UTC)

	newEngine := func() (*PDME, *historian.Store) {
		store, err := historian.Open(historian.Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		model, err := oosm.NewModel(relstore.NewMemory())
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewWithHistorian(model, testGroups(), store)
		if err != nil {
			t.Fatal(err)
		}
		return p, store
	}

	p1, store1 := newEngine()
	for i := 0; i < 6; i++ {
		r := report("ks/dli", "motor/1", "motor imbalance", 0.2+0.05*float64(i), 0.8,
			start.Add(time.Duration(i)*4*time.Hour), nil)
		if err := p1.Deliver(r); err != nil {
			t.Fatal(err)
		}
	}
	p1.Close()
	if err := store1.Close(); err != nil {
		t.Fatal(err)
	}

	p2, store2 := newEngine()
	defer func() {
		p2.Close()
		store2.Close()
	}()
	h := p2.SeverityHistory("motor/1", "motor imbalance")
	if len(h) != 6 {
		t.Fatalf("restarted PDME sees %d observations, want 6", len(h))
	}
	// Two more reports continue the same series across the restart.
	for i := 6; i < 8; i++ {
		r := report("ks/dli", "motor/1", "motor imbalance", 0.2+0.05*float64(i), 0.8,
			start.Add(time.Duration(i)*4*time.Hour), nil)
		if err := p2.Deliver(r); err != nil {
			t.Fatal(err)
		}
	}
	proj, err := p2.TrendProjection("motor/1", "motor imbalance", 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if !proj.Reaches {
		t.Fatal("rising severity should project a crossing")
	}
	want := start.Add(44 * time.Hour) // 0.75 = 0.20 + 0.05·k → k=11 tests
	if d := proj.Crossing.Sub(want); math.Abs(d.Hours()) > 1 {
		t.Errorf("crossing %v, want %v (Δ %v)", proj.Crossing, want, d)
	}
	if rolls := p2.SeverityRollups("motor/1", "motor imbalance"); len(rolls) == 0 {
		t.Error("no severity rollups after restart")
	}
}

// TestLifetimeArchiveBacksHazardFit: lifetimes recorded through the PDME
// accumulate in the historian and fit back to the generating Weibull —
// hazard refinement driven by stored history, not hand-built lists.
func TestLifetimeArchiveBacksHazardFit(t *testing.T) {
	p := newTestPDME(t)
	defer p.Close()
	truth := hazard.Weibull{Shape: 2.5, Scale: 4000}
	rng := rand.New(rand.NewSource(5))
	at := time.Date(1997, 1, 1, 0, 0, 0, 0, time.UTC)
	const cond = "motor bearing outer race defect"
	failures, censored := 0, 0
	for i := 0; i < 400; i++ {
		life := truth.Quantile(rng.Float64())
		at = at.Add(13 * time.Hour)
		if life > 6000 { // observation window truncation
			if err := p.RecordLifetime(cond, at, 6000, true); err != nil {
				t.Fatal(err)
			}
			censored++
		} else {
			if err := p.RecordLifetime(cond, at, life, false); err != nil {
				t.Fatal(err)
			}
			failures++
		}
	}
	obs, err := p.LifetimeObservations(cond)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 400 {
		t.Fatalf("archive holds %d observations, want 400", len(obs))
	}
	gotFail := 0
	for _, o := range obs {
		if !o.Censored {
			gotFail++
		}
	}
	if gotFail != failures {
		t.Fatalf("archive holds %d failures, recorded %d", gotFail, failures)
	}
	fit, err := p.FitLifeDistribution(cond)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Shape-truth.Shape) > 0.5 || math.Abs(fit.Scale-truth.Scale)/truth.Scale > 0.1 {
		t.Fatalf("fit Weibull(k=%.2f, λ=%.0f), truth Weibull(k=%.1f, λ=%.0f)",
			fit.Shape, fit.Scale, truth.Shape, truth.Scale)
	}
	vec, err := p.RefinePrognosticFromHistory(cond, 3000, []float64{500, 1000, 2000})
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != 3 {
		t.Fatalf("vector %v", vec)
	}
	for i := 1; i < len(vec); i++ {
		if vec[i].Probability < vec[i-1].Probability {
			t.Fatalf("non-monotone refined vector %v", vec)
		}
	}
	// An aged unit must be likelier to fail soon than a young one.
	young, err := p.RefinePrognosticFromHistory(cond, 100, []float64{1000})
	if err != nil {
		t.Fatal(err)
	}
	old, err := p.RefinePrognosticFromHistory(cond, 4000, []float64{1000})
	if err != nil {
		t.Fatal(err)
	}
	if old[0].Probability <= young[0].Probability {
		t.Fatalf("age conditioning inverted: young %.3f, old %.3f",
			young[0].Probability, old[0].Probability)
	}
}

func TestRecordLifetimeValidation(t *testing.T) {
	p := newTestPDME(t)
	defer p.Close()
	at := time.Date(1998, 1, 1, 0, 0, 0, 0, time.UTC)
	if err := p.RecordLifetime("", at, 100, false); err == nil {
		t.Error("empty condition accepted")
	}
	if err := p.RecordLifetime("oil whirl", at, 0, false); err == nil {
		t.Error("zero lifetime accepted")
	}
	if _, err := p.LifetimeObservations("oil whirl"); err == nil {
		t.Error("empty archive should error")
	}
	if _, err := p.FitLifeDistribution("oil whirl"); err == nil {
		t.Error("fit over empty archive should error")
	}
}
