package pdme

import (
	"fmt"
	"sort"

	"repro/internal/oosm"
)

// This file implements the §10.1 "Future Directions For Knowledge Fusion"
// extensions over the ship model's relationship graph:
//
//   - Multi-level reasoning: "we could reason about the health of a system
//     based on the health of a constituent part. Currently, only the parts
//     are tracked."
//   - Spatial reasoning: "proximity (for example, a device is vibrating
//     because a component next to it is broken and vibrating wildly) and
//     flow ... one component passing fouled fluids on to other components
//     downstream."

// ComponentHealth summarizes one model object's fused condition state.
type ComponentHealth struct {
	// Object is the model object.
	Object oosm.ObjectID
	// WorstBelief is the highest fused belief across its conditions
	// (0 when nothing has been reported).
	WorstBelief float64
	// WorstCondition names that condition ("" when healthy).
	WorstCondition string
}

// componentHealth computes a single object's worst fused condition.
func (p *PDME) componentHealth(id oosm.ObjectID) ComponentHealth {
	h := ComponentHealth{Object: id}
	for _, cb := range p.diag.Ranked(id.String()) {
		if cb.Belief > h.WorstBelief {
			h.WorstBelief = cb.Belief
			h.WorstCondition = cb.Condition
		}
	}
	return h
}

// SystemHealth rolls constituent-part conclusions up the part-of hierarchy:
// the health of root is bounded by its own conclusions and those of every
// transitive constituent. It returns the assembly's worst finding and the
// per-part breakdown (worst first).
func (p *PDME) SystemHealth(root oosm.ObjectID) (ComponentHealth, []ComponentHealth, error) {
	if !p.model.Exists(root) {
		return ComponentHealth{}, nil, fmt.Errorf("pdme: %v does not exist", root)
	}
	// Parts point at their assembly with part-of edges; walk them inward.
	parts, err := p.transitiveParts(root)
	if err != nil {
		return ComponentHealth{}, nil, err
	}
	breakdown := make([]ComponentHealth, 0, len(parts)+1)
	breakdown = append(breakdown, p.componentHealth(root))
	for _, part := range parts {
		breakdown = append(breakdown, p.componentHealth(part))
	}
	sort.Slice(breakdown, func(i, j int) bool {
		return breakdown[i].WorstBelief > breakdown[j].WorstBelief
	})
	overall := ComponentHealth{Object: root}
	if len(breakdown) > 0 && breakdown[0].WorstBelief > 0 {
		overall.WorstBelief = breakdown[0].WorstBelief
		overall.WorstCondition = fmt.Sprintf("%s (at %s)",
			breakdown[0].WorstCondition, breakdown[0].Object)
	}
	return overall, breakdown, nil
}

// transitiveParts collects every object that is transitively part-of root.
func (p *PDME) transitiveParts(root oosm.ObjectID) ([]oosm.ObjectID, error) {
	seen := map[oosm.ObjectID]bool{root: true}
	var out []oosm.ObjectID
	frontier := []oosm.ObjectID{root}
	for len(frontier) > 0 {
		var next []oosm.ObjectID
		for _, id := range frontier {
			parts, err := p.model.RelatedTo(id, oosm.PartOf)
			if err != nil {
				return nil, err
			}
			for _, part := range parts {
				if !seen[part] {
					seen[part] = true
					out = append(out, part)
					next = append(next, part)
				}
			}
		}
		frontier = next
	}
	return out, nil
}

// AdvisoryKind distinguishes the two §10.1 spatial mechanisms.
type AdvisoryKind int

const (
	// ProximityAdvisory warns that a neighbour's strong structural fault
	// can induce vibration readings on this component.
	ProximityAdvisory AdvisoryKind = iota
	// FlowAdvisory warns that an upstream component's fault can propagate
	// along a fluid/electrical/mechanical flow path.
	FlowAdvisory
)

// String names the advisory kind.
func (k AdvisoryKind) String() string {
	switch k {
	case ProximityAdvisory:
		return "proximity"
	case FlowAdvisory:
		return "flow"
	default:
		return "unknown"
	}
}

// Advisory is one spatial-reasoning finding.
type Advisory struct {
	Kind AdvisoryKind
	// Subject is the component the advisory is about.
	Subject oosm.ObjectID
	// Cause is the faulted component inducing the advisory.
	Cause oosm.ObjectID
	// Condition is the cause's fused condition.
	Condition string
	// Belief is the cause's fused belief.
	Belief float64
	// Message is the human-readable advisory.
	Message string
}

// SpatialAdvisories inspects the model neighbourhood of every strongly
// believed conclusion (belief >= threshold) and emits advisories for
// proximate components (vibration induction) and flow-downstream components
// (propagation of fouled fluids or disturbed energy).
func (p *PDME) SpatialAdvisories(threshold float64) ([]Advisory, error) {
	if threshold <= 0 || threshold > 1 {
		return nil, fmt.Errorf("pdme: threshold %g outside (0,1]", threshold)
	}
	var out []Advisory
	for _, component := range p.diag.Components() {
		id, err := oosm.ParseObjectID(component)
		if err != nil || !p.model.Exists(id) {
			continue // reports about objects not modelled in the OOSM
		}
		for _, cb := range p.diag.Ranked(component) {
			if cb.Belief < threshold {
				continue
			}
			// Proximity: undirected neighbourhood.
			for _, dir := range []func(oosm.ObjectID, oosm.RelKind) ([]oosm.ObjectID, error){
				p.model.Related, p.model.RelatedTo,
			} {
				nbrs, err := dir(id, oosm.Proximity)
				if err != nil {
					return nil, err
				}
				for _, n := range nbrs {
					out = append(out, Advisory{
						Kind: ProximityAdvisory, Subject: n, Cause: id,
						Condition: cb.Condition, Belief: cb.Belief,
						Message: fmt.Sprintf(
							"%s readings may be induced by adjacent %s (%s, Bel=%.2f)",
							n, id, cb.Condition, cb.Belief),
					})
				}
			}
			// Flow: directed downstream only.
			downstream, err := p.model.TransitiveRelated(id, oosm.Flow, 0)
			if err != nil {
				return nil, err
			}
			for _, dst := range downstream {
				out = append(out, Advisory{
					Kind: FlowAdvisory, Subject: dst, Cause: id,
					Condition: cb.Condition, Belief: cb.Belief,
					Message: fmt.Sprintf(
						"%s is downstream of %s (%s, Bel=%.2f); inspect for propagated effects",
						dst, id, cb.Condition, cb.Belief),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		//lint:allow floateq sort tie-break needs a strict weak order; a tolerance would make it intransitive
		if out[i].Belief != out[j].Belief {
			return out[i].Belief > out[j].Belief
		}
		return out[i].Message < out[j].Message
	})
	return out, nil
}
