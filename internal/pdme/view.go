package pdme

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/oosm"
	"repro/internal/proto"
)

// RenderBrowser produces the textual equivalent of the Figure 2 MPROS user
// interface for one machine: the condition reports received for it (per
// knowledge source), then "the predictions of failure for each machine
// condition group ... at the bottom of the screen". The display is rebuilt
// from the OOSM, which "serves as a repository of diagnostic conclusions —
// both those of the individual algorithms and those reached by KF" (§3.1).
func (p *PDME) RenderBrowser(component string) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "=== MPROS — machine %s ===\n", component)

	// Individual algorithm reports, from the OOSM repository.
	reportIDs, err := p.model.FindByProp(ReportClass, "sensed", component)
	if err != nil {
		return "", err
	}
	type row struct {
		ts       time.Time
		ks, cond string
		sev, bel float64
	}
	rows := make([]row, 0, len(reportIDs))
	sources := map[string]bool{}
	for _, id := range reportIDs {
		props, err := p.model.Get(id)
		if err != nil {
			return "", err
		}
		r := row{}
		r.ts, _ = props["timestamp"].(time.Time)
		r.ks, _ = props["ks_id"].(string)
		r.cond, _ = props["condition"].(string)
		r.sev, _ = props["severity"].(float64)
		r.bel, _ = props["belief"].(float64)
		rows = append(rows, r)
		sources[r.ks] = true
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].ts.Before(rows[j].ts) })
	fmt.Fprintf(&b, "%d condition reports from %d knowledge sources\n\n", len(rows), len(sources))
	fmt.Fprintf(&b, "%-20s %-10s %-38s %-9s %-7s %s\n",
		"TIME", "SOURCE", "CONDITION", "SEVERITY", "BELIEF", "GRADE")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %-10s %-38s %-9.2f %-7.2f %s\n",
			r.ts.Format("2006-01-02 15:04"), r.ks, r.cond, r.sev, r.bel,
			proto.GradeSeverity(r.sev))
	}

	// Fused predictions per condition group.
	b.WriteString("\n--- fused predictions (knowledge fusion) ---\n")
	items := p.PrioritizedList()
	printed := false
	for _, it := range items {
		if it.Component != component {
			continue
		}
		printed = true
		fmt.Fprintf(&b, "%-38s group=%-22s Bel=%.3f Pl=%.3f",
			it.Condition, it.Group, it.Belief, it.Plausibility)
		if it.HasPrognostic {
			fmt.Fprintf(&b, "  t(P=0.5)=%s", formatDuration(it.TimeToHalf))
		}
		b.WriteByte('\n')
	}
	if !printed {
		b.WriteString("(no fused conclusions)\n")
	}
	// Residual unknowns per group with any evidence.
	groupsSeen := map[string]bool{}
	for _, it := range items {
		if it.Component == component && !groupsSeen[it.Group] {
			groupsSeen[it.Group] = true
			if u, err := p.Unknown(component, it.Group); err == nil {
				fmt.Fprintf(&b, "unknown possibilities in %-22s %.3f\n", it.Group+":", u)
			}
		}
	}
	return b.String(), nil
}

// formatDuration renders maintenance-scale horizons as days/weeks/months.
func formatDuration(d time.Duration) string {
	days := d.Hours() / 24
	switch {
	case days < 1:
		return fmt.Sprintf("%.0fh", d.Hours())
	case days < 14:
		return fmt.Sprintf("%.1fd", days)
	case days < 60:
		return fmt.Sprintf("%.1fw", days/7)
	default:
		return fmt.Sprintf("%.1fmo", days/30)
	}
}

// RegisterKnowledgeSource records a knowledge source object in the OOSM.
func (p *PDME) RegisterKnowledgeSource(name, description string) (oosm.ObjectID, error) {
	return p.model.Create(KnowledgeSourceClass, map[string]any{
		"name":        name,
		"description": description,
	})
}
