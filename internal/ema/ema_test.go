package ema

import (
	"math"
	"testing"
)

func TestHealthyBaseline(t *testing.T) {
	sim, err := NewSimulator(DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	samples := sim.Run(500)
	if len(samples) != 500 {
		t.Fatalf("got %d samples", len(samples))
	}
	var sum float64
	for i, s := range samples {
		if s.Tick != i {
			t.Fatalf("tick %d mislabeled as %d", i, s.Tick)
		}
		if s.CPOS != 0 {
			t.Fatalf("cpos moved without command: %g", s.CPOS)
		}
		sum += s.Current
	}
	mean := sum / 500
	if math.Abs(mean-1.0) > 0.02 {
		t.Errorf("baseline mean %g, want ≈1.0", mean)
	}
}

func TestCommandProducesCposStepAndDelayedSpike(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NoiseStd = 0 // deterministic
	sim, err := NewSimulator(cfg, []Event{{Tick: 10, Kind: Command, PositionDelta: 2}})
	if err != nil {
		t.Fatal(err)
	}
	samples := sim.Run(30)
	if samples[9].CPOS != 0 || samples[10].CPOS != 2 {
		t.Fatalf("cpos step wrong: %g -> %g", samples[9].CPOS, samples[10].CPOS)
	}
	// Current is flat until CommandLatency after the step.
	for i := 0; i < 10+cfg.CommandLatency; i++ {
		if math.Abs(samples[i].Current-cfg.BaseCurrent) > 1e-9 {
			t.Fatalf("tick %d current %g before spike should be baseline", i, samples[i].Current)
		}
	}
	// Peak reaches baseline + height during the spike.
	peak := 0.0
	for _, s := range samples[12:18] {
		if s.Current > peak {
			peak = s.Current
		}
	}
	if math.Abs(peak-(cfg.BaseCurrent+cfg.SpikeHeight)) > 1e-9 {
		t.Errorf("spike peak %g, want %g", peak, cfg.BaseCurrent+cfg.SpikeHeight)
	}
	// Current returns to baseline after the spike.
	last := samples[29]
	if math.Abs(last.Current-cfg.BaseCurrent) > 1e-9 {
		t.Errorf("current did not settle: %g", last.Current)
	}
}

func TestStictionSpikeWithoutCposChange(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NoiseStd = 0
	sim, err := NewSimulator(cfg, []Event{{Tick: 5, Kind: StictionSpike}})
	if err != nil {
		t.Fatal(err)
	}
	samples := sim.Run(20)
	for _, s := range samples {
		if s.CPOS != 0 {
			t.Fatal("stiction spike must not move cpos")
		}
	}
	if samples[5].Current <= cfg.BaseCurrent {
		t.Error("spike should start immediately at its tick")
	}
}

func TestValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SpikeRiseTicks = 0
	if _, err := NewSimulator(cfg, nil); err == nil {
		t.Error("zero rise ticks should error")
	}
	if _, err := NewSimulator(DefaultConfig(), []Event{{Tick: 10}, {Tick: 5}}); err == nil {
		t.Error("unsorted events should error")
	}
}

func TestScenarioBuilders(t *testing.T) {
	h := HealthyScenario(10, 3, 20)
	if len(h) != 3 || h[0].Tick != 10 || h[2].Tick != 50 || h[0].Kind != Command {
		t.Errorf("healthy %v", h)
	}
	s := StictionScenario(5, 4, 10)
	if len(s) != 4 || s[3].Tick != 35 || s[0].Kind != StictionSpike {
		t.Errorf("stiction %v", s)
	}
	m := MergeEvents(h, s)
	if len(m) != 7 {
		t.Fatalf("merged %d", len(m))
	}
	for i := 1; i < len(m); i++ {
		if m[i].Tick < m[i-1].Tick {
			t.Fatal("merge not sorted")
		}
	}
}

func TestReproducibility(t *testing.T) {
	run := func() []Sample {
		cfg := DefaultConfig()
		cfg.Seed = 99
		sim, err := NewSimulator(cfg, StictionScenario(10, 3, 20))
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run(100)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d", i)
		}
	}
}

func TestOverlappingSpikesSuperimpose(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NoiseStd = 0
	sim, err := NewSimulator(cfg, []Event{
		{Tick: 5, Kind: StictionSpike},
		{Tick: 5, Kind: StictionSpike},
	})
	if err != nil {
		t.Fatal(err)
	}
	samples := sim.Run(15)
	peak := 0.0
	for _, s := range samples {
		if s.Current > peak {
			peak = s.Current
		}
	}
	want := cfg.BaseCurrent + 2*cfg.SpikeHeight
	if math.Abs(peak-want) > 1e-9 {
		t.Errorf("superimposed peak %g, want %g", peak, want)
	}
}
