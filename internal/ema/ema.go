// Package ema simulates the electro-mechanical actuator of the paper's
// Figure 3 workload: "EMAs are essentially large solenoids meant to replace
// hydraulic actuators for the steering of rocket engines. Prediction of
// this fault was done by recognizing stiction in the mechanism" — spikes in
// the drive motor current that are not associated with a commanded position
// change (CPOS).
//
// The simulator produces two sample streams at a fixed tick rate: drive
// motor current and commanded position. Commanded moves produce a current
// spike that trails the CPOS step by a configurable latency (a real
// actuator draws extra current while it accelerates). Stiction events
// inject the same spike shape with no CPOS change. Both ride on Gaussian
// measurement noise.
package ema

import (
	"fmt"
	"math/rand"
)

// Config parametrizes the actuator simulation.
type Config struct {
	// BaseCurrent is the quiescent drive current (normalized units).
	BaseCurrent float64
	// SpikeHeight is the current rise of a spike above baseline.
	SpikeHeight float64
	// SpikeRiseTicks and SpikeFallTicks shape the spike ramp.
	SpikeRiseTicks int
	SpikeFallTicks int
	// CommandLatency is how many ticks after a CPOS change the commanded
	// move's current spike begins.
	CommandLatency int
	// NoiseStd is the standard deviation of current measurement noise.
	NoiseStd float64
	// Seed makes the run reproducible.
	Seed int64
}

// DefaultConfig returns parameters matching the thresholds in
// sbfr.EMASource (spikes rise >0.5/tick above a ~1.0 baseline).
func DefaultConfig() Config {
	return Config{
		BaseCurrent:    1.0,
		SpikeHeight:    2.0,
		SpikeRiseTicks: 2,
		SpikeFallTicks: 2,
		CommandLatency: 2,
		NoiseStd:       0.03,
	}
}

// Event is a scheduled occurrence in the simulation.
type Event struct {
	// Tick is when the event begins.
	Tick int
	// Kind distinguishes commanded moves from stiction spikes.
	Kind EventKind
	// PositionDelta is the commanded position change (Command events).
	PositionDelta float64
}

// EventKind enumerates simulation events.
type EventKind int

const (
	// Command is an operator-commanded position change: CPOS steps, and the
	// current spikes CommandLatency ticks later.
	Command EventKind = iota
	// StictionSpike is an uncommanded current spike caused by the sticking
	// mechanism — the fault precursor the Figure 3 machines count.
	StictionSpike
)

// Sample is one tick of simulated sensor data.
type Sample struct {
	Tick    int
	Current float64
	CPOS    float64
}

// Simulator generates the two-channel EMA stream.
type Simulator struct {
	cfg  Config
	rng  *rand.Rand
	cpos float64
	// spikeUntil maps ticks to residual spike amplitude contributions.
	spikes []spike
	tick   int
	events []Event
	next   int
}

type spike struct{ start int }

// NewSimulator builds a simulator with the given config and event schedule.
// Events must be sorted by tick.
func NewSimulator(cfg Config, events []Event) (*Simulator, error) {
	if cfg.SpikeRiseTicks < 1 || cfg.SpikeFallTicks < 1 {
		return nil, fmt.Errorf("ema: spike ramps must be at least one tick")
	}
	for i := 1; i < len(events); i++ {
		if events[i].Tick < events[i-1].Tick {
			return nil, fmt.Errorf("ema: events not sorted by tick")
		}
	}
	return &Simulator{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		events: events,
	}, nil
}

// Step produces the next sample.
func (s *Simulator) Step() Sample {
	// Activate due events.
	for s.next < len(s.events) && s.events[s.next].Tick == s.tick {
		ev := s.events[s.next]
		s.next++
		switch ev.Kind {
		case Command:
			s.cpos += ev.PositionDelta
			s.spikes = append(s.spikes, spike{start: s.tick + s.cfg.CommandLatency})
		case StictionSpike:
			s.spikes = append(s.spikes, spike{start: s.tick})
		}
	}
	current := s.cfg.BaseCurrent + s.rng.NormFloat64()*s.cfg.NoiseStd
	// Superimpose active spikes (triangular ramp up then down).
	total := s.cfg.SpikeRiseTicks + s.cfg.SpikeFallTicks
	kept := s.spikes[:0]
	for _, sp := range s.spikes {
		age := s.tick - sp.start
		if age < 0 {
			kept = append(kept, sp)
			continue
		}
		if age < total {
			var frac float64
			if age < s.cfg.SpikeRiseTicks {
				frac = float64(age+1) / float64(s.cfg.SpikeRiseTicks)
			} else {
				frac = float64(total-age-1) / float64(s.cfg.SpikeFallTicks)
			}
			current += s.cfg.SpikeHeight * frac
			kept = append(kept, sp)
		}
	}
	s.spikes = kept
	out := Sample{Tick: s.tick, Current: current, CPOS: s.cpos}
	s.tick++
	return out
}

// Run produces n samples.
func (s *Simulator) Run(n int) []Sample {
	out := make([]Sample, n)
	for i := range out {
		out[i] = s.Step()
	}
	return out
}

// Scenario builders -------------------------------------------------------

// HealthyScenario schedules only commanded moves: numMoves commands spaced
// spacing ticks apart starting at start.
func HealthyScenario(start, numMoves, spacing int) []Event {
	out := make([]Event, 0, numMoves)
	for i := 0; i < numMoves; i++ {
		out = append(out, Event{Tick: start + i*spacing, Kind: Command, PositionDelta: 1})
	}
	return out
}

// StictionScenario schedules commanded moves interleaved with uncommanded
// stiction spikes: the degradation signature of an EMA approaching seize-up.
func StictionScenario(start, numSpikes, spacing int) []Event {
	out := make([]Event, 0, numSpikes)
	for i := 0; i < numSpikes; i++ {
		out = append(out, Event{Tick: start + i*spacing, Kind: StictionSpike})
	}
	return out
}

// MergeEvents combines schedules into one sorted schedule.
func MergeEvents(lists ...[]Event) []Event {
	var all []Event
	for _, l := range lists {
		all = append(all, l...)
	}
	// Insertion sort: schedules are short.
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && all[j].Tick < all[j-1].Tick; j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	return all
}
