// Package atomicfield catches mixed plain/atomic access to the same
// variable.
//
// Once any site reads or writes a counter through sync/atomic
// (atomic.AddInt64(&s.n, 1), atomic.LoadUint64(&v), ...), *every* access to
// that variable must be atomic: a plain `s.n++` or `if s.n > 0` elsewhere is
// a data race the race detector only reports when the interleaving happens
// to fire. The uplink/serving/health counter surfaces are read by operator
// endpoints while senders mutate them, so a half-converted counter corrupts
// the very statistics (drops, dedup hits, heartbeat losses) operators use to
// detect trouble. Fields migrated to the typed atomic.Int64/atomic.Uint64
// wrappers are immune by construction — the wrapper has no plain accessors
// — which is the conversion this analyzer pushes toward.
//
// Scope: the whole module, test files included (a racy test counter flakes
// the suite just as effectively as a racy production one).
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the atomicfield check.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc: "a variable accessed via sync/atomic anywhere must be accessed " +
		"atomically everywhere; convert to atomic.Int64/atomic.Uint64",
	Run: run,
}

// atomicFuncs are the sync/atomic package-level functions whose first
// argument is the address of the variable being accessed atomically.
var atomicFuncs = map[string]bool{}

func init() {
	for _, op := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"} {
		for _, ty := range []string{"Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer"} {
			atomicFuncs[op+ty] = true
		}
	}
}

func run(pass *analysis.Pass) error {
	// First sweep: every variable (struct field or plain var) whose address
	// is taken by a sync/atomic call, plus the &x operand nodes themselves so
	// the second sweep can exempt them.
	atomicObjs := make(map[types.Object]token.Pos) // object -> first atomic access
	atomicOperands := make(map[ast.Expr]bool)      // the &x argument expressions
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || !atomicFuncs[fn.Name()] {
				return true
			}
			addr, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			if obj := referencedObject(pass, addr.X); obj != nil {
				if _, seen := atomicObjs[obj]; !seen {
					atomicObjs[obj] = addr.X.Pos()
				}
				atomicOperands[addr.X] = true
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return nil
	}

	// Second sweep: any other mention of those variables is a plain access.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok && atomicOperands[e] {
				return false // the atomic access itself: skip its subtree
			}
			obj := usedObject(pass, n)
			if obj == nil {
				return true
			}
			if first, ok := atomicObjs[obj]; ok {
				pass.Reportf(n.Pos(),
					"plain access to %s, which is accessed atomically at %s; "+
						"use sync/atomic everywhere or migrate to atomic.Int64/atomic.Uint64",
					obj.Name(), pass.Fset.Position(first))
			}
			return true
		})
	}
	return nil
}

// referencedObject resolves the variable an atomic call's address operand
// names: a field selection (s.n) or a bare variable (n).
func referencedObject(pass *analysis.Pass, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if selection, ok := pass.TypesInfo.Selections[e]; ok {
			return selection.Obj()
		}
		return pass.TypesInfo.Uses[e.Sel]
	case *ast.Ident:
		return pass.TypesInfo.Uses[e]
	case *ast.IndexExpr:
		// Array-of-counters idiom (&buckets[i]): track the array variable.
		return referencedObject(pass, e.X)
	}
	return nil
}

// usedObject resolves a use-site node to the variable it mentions: the Sel
// of a field selection, or a plain identifier use (declarations are not
// uses — `var n int64` is not an access).
func usedObject(pass *analysis.Pass, n ast.Node) types.Object {
	switch n := n.(type) {
	case *ast.SelectorExpr:
		if selection, ok := pass.TypesInfo.Selections[n]; ok {
			if v, ok := selection.Obj().(*types.Var); ok && v.IsField() {
				return v
			}
		}
	case *ast.Ident:
		if v, ok := pass.TypesInfo.Uses[n].(*types.Var); ok && !v.IsField() {
			return v
		}
	}
	return nil
}
