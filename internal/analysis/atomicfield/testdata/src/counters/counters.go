// Package counters exercises atomicfield. The analyzer is module-wide, so
// the stand-in segment is arbitrary.
package counters

import "sync/atomic"

// Stats mixes a correctly-converted typed atomic with a half-converted
// plain int64.
type Stats struct {
	sent    atomic.Uint64 // typed wrapper: immune by construction
	dropped int64
}

func (s *Stats) Drop() {
	atomic.AddInt64(&s.dropped, 1)
}

func (s *Stats) Sent() {
	s.sent.Add(1)
}

// Dropped is the finding class: a plain read racing the atomic writers.
func (s *Stats) Dropped() int64 {
	return s.dropped // want "plain access to dropped"
}

func (s *Stats) reset() {
	s.dropped = 0 // want "plain access to dropped"
}

// A package-level counter accessed both ways is flagged the same.
var torn int64

func bump() {
	atomic.AddInt64(&torn, 1)
}

func read() int64 {
	return torn // want "plain access to torn"
}

// Consistent atomic access is clean (a declaration is not an access).
var clean int64

func bumpClean()       { atomic.AddInt64(&clean, 1) }
func readClean() int64 { return atomic.LoadInt64(&clean) }

// The allow escape hatch: a plain write proven to happen-before the atomic
// readers exist.
var staged int64

func stage() {
	staged = 7 //lint:allow atomicfield initialization happens before the reading goroutine starts
	atomic.AddInt64(&staged, 1)
}
