package ingester

import "errors"

type Hub struct {
	buffered   chan int
	unbuffered chan int
}

func NewHub() *Hub {
	return &Hub{
		buffered:   make(chan int, 16),
		unbuffered: make(chan int),
	}
}

//mpros:ingest event fan-in
func (h *Hub) Ingest(v int) error {
	h.buffered <- v // fine: field is buffered at its only make site

	select {
	case h.unbuffered <- v: // fine: lossy select-with-default
	default:
	}

	h.unbuffered <- v // want "channel send may block ingest"

	select {
	case h.unbuffered <- v: // want "channel send may block ingest"
	}

	local := make(chan int, 1)
	local <- v // fine: local buffered make

	bad := make(chan int)
	bad <- v // want "channel send may block ingest"

	forward(h.buffered, v)
	return nil
}

// forward receives the channel as a parameter, so its capacity is unknown at
// the send site and the chain is reported.
func forward(ch chan int, v int) {
	ch <- v // want "may block ingest.*reachable via ingester.Hub.Ingest -> ingester.forward"
}

//mpros:ingest guarded variant
func Guarded(h *Hub, v int, errs chan error) error {
	if v < 0 {
		errs <- errors.New("negative") // fine: failure path is cold
		return errors.New("negative")
	}
	h.buffered <- v
	return nil
}

//mpros:hotpath tick path is covered too
func Tick(h *Hub, v int) {
	h.buffered <- v // fine

	//lint:allow sendblock deliberate backpressure point, consumer is same-process
	h.unbuffered <- v
}

// Unreached is not reachable from any root; sends here are not ingest's
// problem.
func Unreached(ch chan int) {
	ch <- 1
}
